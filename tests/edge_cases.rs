//! Degenerate-shape and failure-injection coverage across the whole stack:
//! the library must handle pathological layers and inputs gracefully —
//! correct results where defined, clean errors where not, never silent
//! nonsense.

use escalate::algo::pipeline::{compress_layer, CompressionConfig};
use escalate::algo::quant::TernaryCoeffs;
use escalate::algo::reorg::forward_eq3;
use escalate::algo::{decompose, decompose_adaptive};
use escalate::models::{synth, LayerShape};
use escalate::sim::fallback::simulate_dense;
use escalate::sim::SimConfig;
use escalate::tensor::{conv, Tensor};

#[test]
fn one_by_one_input_fc_as_unit_conv() {
    // The FC-as-1×1-convolution conversion of §4.1: a 1×1 input through a
    // 1×1 kernel is a plain matrix-vector product.
    let fc = LayerShape::fc("fc", 64, 10);
    assert_eq!(fc.macs(), 640);
    let stats = simulate_dense(&fc, &SimConfig::default(), 64 * 10);
    assert!(stats.cycles >= 1);
    assert!(stats.fallback);
    assert_eq!(stats.mac_ops, 640);
}

#[test]
fn single_channel_layers_decompose() {
    let l = LayerShape::conv("c1", 1, 4, 8, 8, 3, 1, 1);
    let w = synth::weights(&l, 3, 0.1, 1);
    let d = decompose(&w, 3).expect("C=1 layers are fine");
    assert_eq!(d.c(), 1);
    let input = synth::activations(&l, 0.5, 1);
    let (out, _) = forward_eq3(&d, &input, 1, 1);
    assert_eq!(out.shape(), &[4, 8, 8]);
}

#[test]
fn single_output_channel_ternarizes() {
    let coeffs = Tensor::from_fn(&[1, 16, 6], |i| (i[1] as f32 - 8.0) * 0.1);
    let t = TernaryCoeffs::ternarize(&coeffs, 0.05).expect("K=1 slices are fine");
    assert_eq!(t.w_pos.len(), 1);
    assert!(t.nnz() > 0);
}

#[test]
fn kernel_larger_than_input_produces_empty_output() {
    // conv_out_size saturates at zero; the reference conv returns an
    // empty tensor rather than panicking.
    assert_eq!(conv::conv_out_size(2, 5, 1, 0), 0);
    let input = Tensor::ones(&[1, 2, 2]);
    let weight = Tensor::ones(&[1, 1, 5, 5]);
    let out = conv::conv2d(&input, &weight, 1, 0);
    assert_eq!(out.shape(), &[1, 0, 0]);
    assert!(out.is_empty());
}

#[test]
fn all_zero_weights_compress_to_nearly_nothing() {
    // Inject a dead layer: decomposition and ternarization must not
    // divide by zero, and the encoding collapses to presence bits.
    let w = Tensor::zeros(&[8, 8, 3, 3]);
    let d = decompose(&w, 6).expect("zero weights decompose");
    let t = TernaryCoeffs::ternarize(&d.coeffs, 0.05).expect("zero coeffs ternarize");
    assert_eq!(t.nnz(), 0);
    assert!(
        t.w_pos.iter().all(|&w| w > 0.0),
        "scales stay positive even for dead slices"
    );
    assert!(d.reconstruct().all_close(&w, 1e-6));
}

#[test]
fn nan_weights_are_contained() {
    // A NaN injected into the weights must not crash decomposition (the
    // Jacobi loop guards its rotations); the error metric then reports
    // non-finite, which the caller can detect.
    let mut w = synth::weights(&LayerShape::conv("n", 4, 4, 6, 6, 3, 1, 1), 6, 0.1, 3);
    let idx = w.offset(&[1, 1, 1, 1]);
    w.as_mut_slice()[idx] = f32::NAN;
    // Either a convergence error or a result; both are acceptable, a hang
    // or panic is not.
    match decompose(&w, 4) {
        Ok(d) => {
            let _ = d.reconstruct();
        }
        Err(e) => {
            assert!(!e.to_string().is_empty());
        }
    }
}

#[test]
fn extreme_sparsity_targets_are_achievable() {
    let l = LayerShape::conv("x", 16, 16, 8, 8, 3, 1, 1);
    for target in [0.0f64, 0.999] {
        let lc = compress_layer(&l, &CompressionConfig::default(), target, 5)
            .expect("extreme targets compress");
        assert!(lc.compressed_bits > 0);
        if target > 0.99 {
            assert!(lc.coeff_sparsity() > 0.95, "got {}", lc.coeff_sparsity());
        }
    }
}

#[test]
fn tiny_spatial_maps_simulate() {
    // 1×1 feature maps (the paper's FC conversion) through the full
    // decomposed simulation path.
    use escalate::algo::quant::threshold_for_sparsity;
    use escalate::sim::workload::CoefMasks;
    use escalate::sim::{simulate_layer, LayerWorkload, WorkloadMode};
    let coeffs = Tensor::from_fn(&[8, 32, 1], |i| ((i[0] + i[1]) % 3) as f32 - 1.0);
    let t = threshold_for_sparsity(&coeffs, 0.5);
    let tern = TernaryCoeffs::ternarize(&coeffs, t).expect("valid threshold");
    let lw = LayerWorkload {
        name: "fc".into(),
        shape: LayerShape::fc("fc", 32, 8),
        out_channels: 8,
        mode: WorkloadMode::Decomposed(CoefMasks::from_ternary(&tern)),
        act_sparsity: 0.3,
        out_sparsity: 0.3,
        weight_bytes: 64,
    };
    let s = simulate_layer(&lw, &SimConfig::default(), 0);
    assert!(s.cycles >= 1);
    assert!(s.mac_ops > 0);
}

#[test]
fn adaptive_decomposition_handles_rank_one_and_full_rank() {
    // Rank-1 weights want M=1; white-noise weights want full rank.
    let l = LayerShape::conv("a", 8, 8, 6, 6, 3, 1, 1);
    let low = synth::weights(&l, 1, 0.0, 7);
    assert_eq!(decompose_adaptive(&low, 0.99).expect("decomposes").m(), 1);
    let noisy = synth::weights(&l, 9, 2.0, 7);
    assert!(decompose_adaptive(&noisy, 0.999).expect("decomposes").m() >= 7);
}

#[test]
fn strided_layers_never_produce_zero_cost() {
    // Stride larger than the kernel still costs at least one cycle per
    // element in the MAC model.
    use escalate::sim::mac::MacRow;
    let row = MacRow::new(6, 1);
    assert_eq!(row.cycles_per_position(), 1);
    assert_eq!(row.position_cycles(0), 1);
}
