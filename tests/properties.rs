//! Cross-crate property-based tests on randomized layer shapes.

use escalate::algo::decompose;
use escalate::algo::quant::{threshold_for_sparsity, TernaryCoeffs};
use escalate::algo::reorg::{forward_eq2, forward_eq3};
use escalate::models::{synth, LayerShape};
use escalate::sim::workload::CoefMasks;
use escalate::sim::{simulate_layer, LayerWorkload, SimConfig, Workload, WorkloadMode};
use escalate_bench::run_escalate_workload;
use proptest::prelude::*;

fn small_layer() -> impl Strategy<Value = LayerShape> {
    (2usize..10, 2usize..12, 5usize..9, 1usize..3)
        .prop_map(|(c, k, x, stride)| LayerShape::conv("prop", c, k, x, x, 3, stride, 1))
}

/// A deterministic synthetic decomposed layer (the engine-test recipe).
fn synthetic_layer(name: &str, c: usize, k: usize, x: usize, act_sparsity: f64) -> LayerWorkload {
    let coeffs = escalate::tensor::Tensor::from_fn(&[k, c, 6], |i| {
        let h = (i[0] * 7919 + i[1] * 104_729 + i[2] * 1_299_709) % 1000;
        if h < 850 {
            0.0
        } else if h % 2 == 0 {
            1.0
        } else {
            -1.0
        }
    });
    let t = TernaryCoeffs::ternarize(&coeffs, 0.0).expect("valid threshold");
    LayerWorkload {
        name: name.to_string(),
        shape: LayerShape::conv(name, c, k, x, x, 3, 1, 1),
        out_channels: k,
        mode: WorkloadMode::Decomposed(CoefMasks::from_ternary(&t)),
        act_sparsity,
        out_sparsity: act_sparsity,
        weight_bytes: 1000,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Eq.(2) and Eq.(3) agree on arbitrary small layers.
    #[test]
    fn computation_orders_agree(layer in small_layer(), m in 1usize..9, seed in 0u64..1000) {
        let w = synth::weights(&layer, 9, 0.2, seed);
        let d = decompose(&w, m).expect("decomposition succeeds");
        let input = synth::activations(&layer, 0.5, seed);
        let (o2, _) = forward_eq2(&d, &input, layer.stride, layer.pad);
        let (o3, _) = forward_eq3(&d, &input, layer.stride, layer.pad);
        prop_assert!(o2.all_close(&o3, 1e-2), "rel err {}", o2.relative_error(&o3));
    }

    /// Ternarization hits any requested sparsity within tolerance on
    /// continuous coefficients, and dequantization preserves the pattern.
    #[test]
    fn ternarization_sparsity_control(k in 2usize..12, c in 2usize..12, target in 0.1f64..0.95) {
        let coeffs = escalate::tensor::Tensor::from_fn(&[k, c, 6], |i| {
            ((i[0] * 97 + i[1] * 31 + i[2] * 7) as f32 * 0.613).sin()
        });
        let t = threshold_for_sparsity(&coeffs, target);
        let tern = TernaryCoeffs::ternarize(&coeffs, t).expect("valid threshold");
        prop_assert!((tern.sparsity() - target).abs() < 0.12,
            "target {target} got {}", tern.sparsity());
        let deq = tern.dequantize();
        for (q, v) in tern.ternary.iter().zip(deq.as_slice()) {
            prop_assert_eq!(*q == 0, *v == 0.0);
        }
    }

    /// The simulator is monotone in activation density: more nonzero
    /// activations never reduce cycles.
    #[test]
    fn simulator_monotone_in_activation_density(seed in 0u64..50) {
        let coeffs = escalate::tensor::Tensor::from_fn(&[32, 64, 6], |i| {
            if (i[0] * 131 + i[1] * 17 + i[2]) % 10 < 8 { 0.0 } else { 1.0 }
        });
        let t = TernaryCoeffs::ternarize(&coeffs, 0.0).expect("valid threshold");
        let mk = |sa: f64| LayerWorkload {
            name: "prop".into(),
            shape: LayerShape::conv("prop", 64, 32, 12, 12, 3, 1, 1),
            out_channels: 32,
            mode: WorkloadMode::Decomposed(CoefMasks::from_ternary(&t)),
            act_sparsity: sa,
            out_sparsity: sa,
            weight_bytes: 100,
        };
        let cfg = SimConfig::default();
        let dense = simulate_layer(&mk(0.1), &cfg, seed);
        let sparse = simulate_layer(&mk(0.9), &cfg, seed);
        prop_assert!(dense.cycles >= sparse.cycles,
            "dense {} < sparse {}", dense.cycles, sparse.cycles);
        prop_assert!(dense.ca_adds >= sparse.ca_adds);
    }

    /// Opting into the cross-point derived-state cache
    /// (`SimConfig::share_derived`) can never change results: for
    /// randomized shapes, hardware points, batch sizes (input seeds
    /// averaged) and thread counts, every averaged f64 of the shared run
    /// matches the cold run bit-for-bit, and the per-layer trace is
    /// equal component-for-component. The process-global cache is warm
    /// or cold arbitrarily across cases — irrelevant by design, which is
    /// exactly the property under test.
    #[test]
    fn derived_sharing_is_bit_identical(
        c in 16usize..96,
        k in 8usize..40,
        x in 6usize..14,
        n_pe_i in 0usize..4,
        bus_i in 0usize..4,
        threads in 1usize..5,
        seeds in 1u64..4,
    ) {
        let n_pe = [8usize, 16, 32, 64][n_pe_i];
        let bus = [8usize, 16, 32, 64][bus_i];
        let w = Workload {
            model_name: "prop-shared".into(),
            layers: vec![
                synthetic_layer("shared-a", c, k, x, 0.5),
                synthetic_layer("shared-b", k.max(2), c, x, 0.3),
            ],
        };
        let cold_cfg = SimConfig {
            n_pe,
            input_bus_bytes: bus,
            threads,
            ..SimConfig::default()
        };
        let shared_cfg = SimConfig {
            share_derived: true,
            ..cold_cfg
        };
        let cold = run_escalate_workload(&w, &cold_cfg, seeds);
        let shared = run_escalate_workload(&w, &shared_cfg, seeds);
        prop_assert_eq!(cold.cycles.to_bits(), shared.cycles.to_bits());
        prop_assert_eq!(cold.dram_bytes.to_bits(), shared.dram_bytes.to_bits());
        prop_assert_eq!(cold.energy_pj.to_bits(), shared.energy_pj.to_bits());
        prop_assert_eq!(cold.first_seed_stats, shared.first_seed_stats);
    }

    /// Compression accounting is internally consistent for any layer and
    /// sparsity target.
    #[test]
    fn compression_accounting_invariants(
        layer in small_layer(),
        target in 0.3f64..0.98,
        seed in 0u64..100,
    ) {
        use escalate::algo::pipeline::{compress_layer, CompressionConfig};
        let lc = compress_layer(&layer, &CompressionConfig::default(), target, seed)
            .expect("compression succeeds");
        prop_assert_eq!(lc.original_bits, lc.original_params * 32);
        prop_assert!(lc.compressed_bits > 0);
        prop_assert!(lc.coeff_nnz <= lc.coeff_total);
        prop_assert!(lc.remaining_params <= lc.original_params + lc.coeff_total);
        prop_assert!(lc.weight_error.is_finite());
        prop_assert!((0.0..=1.0).contains(&lc.coeff_sparsity()));
    }
}

/// A derived-state cache far too small for the working set evicts
/// constantly — and the results still match cold runs exactly, because
/// sharing is an opportunistic fast path, never a correctness dependency.
#[test]
fn derived_eviction_pressure_keeps_results_identical() {
    use escalate::sim::shared::{
        derived_cache_evictions, set_derived_cache_capacity, DEFAULT_DERIVED_CAP,
    };
    let before = derived_cache_evictions();
    set_derived_cache_capacity(2);
    // Distinct layers × seeds: far more than 2 derived entries.
    for (i, (c, k)) in [(24usize, 16usize), (40, 12), (56, 20), (32, 24)]
        .into_iter()
        .enumerate()
    {
        let lw = synthetic_layer(&format!("evict-{i}"), c, k, 8, 0.4);
        let cold = SimConfig::default();
        let shared = SimConfig {
            share_derived: true,
            ..cold
        };
        for seed in [3u64, 9] {
            assert_eq!(
                simulate_layer(&lw, &cold, seed),
                simulate_layer(&lw, &shared, seed),
                "layer {i} seed {seed}"
            );
        }
    }
    let evicted = derived_cache_evictions() - before;
    set_derived_cache_capacity(DEFAULT_DERIVED_CAP);
    // 4 layers × 2 seeds of masks+plans+walks through a 2-entry cache:
    // eviction pressure must actually have occurred (other tests share
    // the process-global cache, so assert a floor, not an exact count).
    assert!(evicted >= 8, "expected sustained evictions, saw {evicted}");
}
