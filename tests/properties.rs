//! Cross-crate property-based tests on randomized layer shapes.

use escalate::algo::decompose;
use escalate::algo::quant::{threshold_for_sparsity, TernaryCoeffs};
use escalate::algo::reorg::{forward_eq2, forward_eq3};
use escalate::models::{synth, LayerShape};
use escalate::sim::workload::CoefMasks;
use escalate::sim::{simulate_layer, LayerWorkload, SimConfig, WorkloadMode};
use proptest::prelude::*;

fn small_layer() -> impl Strategy<Value = LayerShape> {
    (2usize..10, 2usize..12, 5usize..9, 1usize..3)
        .prop_map(|(c, k, x, stride)| LayerShape::conv("prop", c, k, x, x, 3, stride, 1))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Eq.(2) and Eq.(3) agree on arbitrary small layers.
    #[test]
    fn computation_orders_agree(layer in small_layer(), m in 1usize..9, seed in 0u64..1000) {
        let w = synth::weights(&layer, 9, 0.2, seed);
        let d = decompose(&w, m).expect("decomposition succeeds");
        let input = synth::activations(&layer, 0.5, seed);
        let (o2, _) = forward_eq2(&d, &input, layer.stride, layer.pad);
        let (o3, _) = forward_eq3(&d, &input, layer.stride, layer.pad);
        prop_assert!(o2.all_close(&o3, 1e-2), "rel err {}", o2.relative_error(&o3));
    }

    /// Ternarization hits any requested sparsity within tolerance on
    /// continuous coefficients, and dequantization preserves the pattern.
    #[test]
    fn ternarization_sparsity_control(k in 2usize..12, c in 2usize..12, target in 0.1f64..0.95) {
        let coeffs = escalate::tensor::Tensor::from_fn(&[k, c, 6], |i| {
            ((i[0] * 97 + i[1] * 31 + i[2] * 7) as f32 * 0.613).sin()
        });
        let t = threshold_for_sparsity(&coeffs, target);
        let tern = TernaryCoeffs::ternarize(&coeffs, t).expect("valid threshold");
        prop_assert!((tern.sparsity() - target).abs() < 0.12,
            "target {target} got {}", tern.sparsity());
        let deq = tern.dequantize();
        for (q, v) in tern.ternary.iter().zip(deq.as_slice()) {
            prop_assert_eq!(*q == 0, *v == 0.0);
        }
    }

    /// The simulator is monotone in activation density: more nonzero
    /// activations never reduce cycles.
    #[test]
    fn simulator_monotone_in_activation_density(seed in 0u64..50) {
        let coeffs = escalate::tensor::Tensor::from_fn(&[32, 64, 6], |i| {
            if (i[0] * 131 + i[1] * 17 + i[2]) % 10 < 8 { 0.0 } else { 1.0 }
        });
        let t = TernaryCoeffs::ternarize(&coeffs, 0.0).expect("valid threshold");
        let mk = |sa: f64| LayerWorkload {
            name: "prop".into(),
            shape: LayerShape::conv("prop", 64, 32, 12, 12, 3, 1, 1),
            out_channels: 32,
            mode: WorkloadMode::Decomposed(CoefMasks::from_ternary(&t)),
            act_sparsity: sa,
            out_sparsity: sa,
            weight_bytes: 100,
        };
        let cfg = SimConfig::default();
        let dense = simulate_layer(&mk(0.1), &cfg, seed);
        let sparse = simulate_layer(&mk(0.9), &cfg, seed);
        prop_assert!(dense.cycles >= sparse.cycles,
            "dense {} < sparse {}", dense.cycles, sparse.cycles);
        prop_assert!(dense.ca_adds >= sparse.ca_adds);
    }

    /// Compression accounting is internally consistent for any layer and
    /// sparsity target.
    #[test]
    fn compression_accounting_invariants(
        layer in small_layer(),
        target in 0.3f64..0.98,
        seed in 0u64..100,
    ) {
        use escalate::algo::pipeline::{compress_layer, CompressionConfig};
        let lc = compress_layer(&layer, &CompressionConfig::default(), target, seed)
            .expect("compression succeeds");
        prop_assert_eq!(lc.original_bits, lc.original_params * 32);
        prop_assert!(lc.compressed_bits > 0);
        prop_assert!(lc.coeff_nnz <= lc.coeff_total);
        prop_assert!(lc.remaining_params <= lc.original_params + lc.coeff_total);
        prop_assert!(lc.weight_error.is_finite());
        prop_assert!((0.0..=1.0).contains(&lc.coeff_sparsity()));
    }
}
