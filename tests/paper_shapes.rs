//! Shape tests for the paper's headline results: these assert the
//! *qualitative* claims of the evaluation (who wins, where, and by
//! roughly what factor), which is what this reproduction is calibrated to
//! preserve. Absolute cycle counts are not asserted.

use escalate::algo::compress_model;
use escalate::algo::pipeline::CompressionConfig;
use escalate::models::{Dataset, ModelProfile};
use escalate::sim::SimConfig;
use escalate_bench::run_model;

/// Table 1 shape: CIFAR models compress by tens-to-hundreds×, ImageNet
/// models by single-digits-to-tens, sparsity lands near the profile
/// target, and pruning ratios are positive.
#[test]
fn compression_bands_match_table1() {
    for profile in ModelProfile::all() {
        // MobileNet/ResNet-152 are exercised by the table1 binary; keep
        // the test suite fast with the three cheapest models.
        if !["VGG16", "ResNet18", "MobileNet"].contains(&profile.name.as_str()) {
            continue;
        }
        let r =
            compress_model(&profile, &CompressionConfig::default()).expect("compression succeeds");
        let ratio = r.compression_ratio();
        match profile.dataset {
            Dataset::Cifar10 => assert!(ratio > 20.0, "{}: {ratio}", profile.name),
            Dataset::ImageNet => assert!(ratio > 2.0, "{}: {ratio}", profile.name),
        }
        assert!(
            (r.coeff_sparsity() - profile.coeff_sparsity).abs() < 0.05,
            "{}: sparsity {} vs target {}",
            profile.name,
            r.coeff_sparsity(),
            profile.coeff_sparsity
        );
        assert!(r.pruning_ratio() > 0.0, "{}", profile.name);
    }
}

/// Figure 8 shape on a CIFAR model: ESCALATE > SparTen > Eyeriss in
/// speedup, ESCALATE best in energy efficiency.
#[test]
fn vgg16_accelerator_ordering() {
    let profile = ModelProfile::for_model("VGG16").expect("known model");
    let run = run_model(&profile, &SimConfig::default(), 2).expect("simulation succeeds");
    let esc = run.speedup_over_eyeriss(&run.escalate);
    let sparten = run.speedup_over_eyeriss(&run.sparten);
    let scnn = run.speedup_over_eyeriss(&run.scnn);
    assert!(esc > sparten, "ESCALATE {esc} vs SparTen {sparten}");
    assert!(esc > scnn, "ESCALATE {esc} vs SCNN {scnn}");
    assert!(
        esc > 5.0,
        "ESCALATE should be far above Eyeriss on VGG16: {esc}"
    );

    let e_esc = run.efficiency_over_eyeriss(&run.escalate);
    let e_sp = run.efficiency_over_eyeriss(&run.sparten);
    let e_sc = run.efficiency_over_eyeriss(&run.scnn);
    assert!(
        e_esc > e_sp && e_esc > e_sc,
        "energy: ESC {e_esc}, SparTen {e_sp}, SCNN {e_sc}"
    );
    assert!(e_esc > 5.0, "CIFAR energy win should exceed 5x: {e_esc}");
}

/// Figure 9 shape: Eyeriss moves an order of magnitude more DRAM than
/// ESCALATE on weight-dominated CIFAR models.
#[test]
fn vgg16_dram_reduction() {
    let profile = ModelProfile::for_model("VGG16").expect("known model");
    let run = run_model(&profile, &SimConfig::default(), 2).expect("simulation succeeds");
    let ratio = run.dram_vs_escalate(&run.eyeriss);
    assert!(
        ratio > 5.0,
        "Eyeriss should move >5x the DRAM of ESCALATE on VGG16: {ratio}"
    );
}

/// Figure 11 shape: the first (dense fallback) layer of ResNet18 is
/// slower than Eyeriss; early compressed layers approach the C/M bound.
#[test]
fn resnet18_layerwise_shape() {
    let profile = ModelProfile::for_model("ResNet18").expect("known model");
    let run = run_model(&profile, &SimConfig::default(), 1).expect("simulation succeeds");
    let esc = &run.escalate.first_seed_stats.layers;
    let eye = &run.eyeriss.first_seed_stats.layers;
    assert!(esc[0].fallback, "first layer uses the dense fallback");
    let first_speedup = eye[0].cycles as f64 / esc[0].cycles as f64;
    assert!(
        first_speedup < 1.5,
        "fallback should not beat Eyeriss by much: {first_speedup}"
    );

    // Early block: C = 64, M = 6 → C/M ≈ 10.7; speedup within [4, C/M*2].
    let early = eye[1].cycles as f64 / esc[1].cycles as f64;
    assert!(
        (4.0..22.0).contains(&early),
        "early-layer speedup {early} out of C/M band"
    );

    // Late block (C = 512) speedup exceeds the early one.
    let last = esc.len() - 1;
    let late = eye[last].cycles as f64 / esc[last].cycles as f64;
    assert!(
        late > early,
        "late layers should outpace early ones: {late} vs {early}"
    );
}

/// Figure 13 shape: ImageNet-sparsity workloads leave MACs idle; CIFAR
/// sparsity (>95%) does not.
#[test]
fn mac_idle_tracks_sparsity() {
    let mobilenet = ModelProfile::for_model("MobileNet").expect("known model");
    let run = run_model(&mobilenet, &SimConfig::default(), 1).expect("simulation succeeds");
    let idle: u64 = run
        .escalate
        .first_seed_stats
        .layers
        .iter()
        .map(|l| l.mac_idle_cycles)
        .sum();
    let slots: u64 = run
        .escalate
        .first_seed_stats
        .layers
        .iter()
        .map(|l| l.mac_cycle_slots)
        .sum();
    let frac = idle as f64 / slots as f64;
    assert!(frac > 0.05, "MobileNet should show idle MACs: {frac}");

    let resnet18 = ModelProfile::for_model("ResNet18").expect("known model");
    let run = run_model(&resnet18, &SimConfig::default(), 1).expect("simulation succeeds");
    let idle: u64 = run
        .escalate
        .first_seed_stats
        .layers
        .iter()
        .map(|l| l.mac_idle_cycles)
        .sum();
    let slots: u64 = run
        .escalate
        .first_seed_stats
        .layers
        .iter()
        .map(|l| l.mac_cycle_slots)
        .sum();
    let cifar_frac = idle as f64 / slots as f64;
    assert!(
        cifar_frac < frac,
        "high sparsity should reduce idling: {cifar_frac} vs {frac}"
    );
}

/// Figure 12 shape: growing M from 4 to 8 (with the MAC budget held)
/// increases latency and decreases compression.
#[test]
fn m_tradeoff_direction() {
    let profile = ModelProfile::for_model("ResNet18").expect("known model");
    let mut last_cycles = 0.0;
    let mut last_comp = f64::INFINITY;
    for m in [4usize, 6, 8] {
        let cfg = CompressionConfig {
            m,
            ..CompressionConfig::default()
        };
        let artifacts = escalate_bench::compress(&profile, &cfg).expect("compression succeeds");
        let stats = escalate::algo::ModelCompression {
            model_name: "r18".into(),
            layers: artifacts.iter().map(|a| a.stats.clone()).collect(),
        };
        let run =
            escalate_bench::run_escalate(&profile, &artifacts, &SimConfig::default().with_m(m), 1);
        assert!(run.cycles > last_cycles, "latency should grow with M");
        assert!(
            stats.compression_ratio() < last_comp,
            "compression should fall with M"
        );
        last_cycles = run.cycles;
        last_comp = stats.compression_ratio();
    }
}

/// Table 4 totals are reproduced by the component model.
#[test]
fn table4_totals() {
    use escalate::energy::area::{PeBlockArea, TOTAL_AREA_MM2, TOTAL_POWER_MW};
    let b = PeBlockArea::from_components();
    assert!((b.area_mm2 - TOTAL_AREA_MM2).abs() < 1e-3);
    assert!((b.power_mw - TOTAL_POWER_MW).abs() < 1e-2);
}
