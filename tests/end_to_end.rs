//! End-to-end integration: compression pipeline → workload → simulator →
//! energy model, exercised through the public facade API exactly as a
//! downstream user would drive it.

use escalate::algo::compress_model_artifacts;
use escalate::algo::pipeline::CompressionConfig;
use escalate::energy::{layer_energy, model_energy, BufferCaps, UnitEnergy};
use escalate::models::ModelProfile;
use escalate::sim::{simulate_model, SimConfig, Workload, WorkloadMode};

fn mobilenet_run() -> (
    escalate::sim::ModelStats,
    Vec<escalate::algo::CompressedLayer>,
) {
    let profile = ModelProfile::for_model("MobileNet").expect("known model");
    let artifacts = compress_model_artifacts(&profile, &CompressionConfig::default())
        .expect("compression succeeds");
    let workload = Workload::from_artifacts("MobileNet", &artifacts, &profile);
    (
        simulate_model(&workload, &SimConfig::default(), 0),
        artifacts,
    )
}

#[test]
fn simulation_covers_every_compressed_unit() {
    let (stats, artifacts) = mobilenet_run();
    assert_eq!(stats.layers.len(), artifacts.len());
    for (s, a) in stats.layers.iter().zip(&artifacts) {
        assert_eq!(s.name, a.stats.name);
        assert!(s.cycles > 0, "{}", s.name);
        assert_eq!(s.fallback, a.quantized.is_none(), "{}", s.name);
    }
}

#[test]
fn dram_weight_traffic_equals_compressed_size() {
    let (stats, artifacts) = mobilenet_run();
    for (s, a) in stats.layers.iter().zip(&artifacts) {
        assert_eq!(
            s.dram.weights,
            (a.stats.compressed_bits as u64).div_ceil(8),
            "{}: weights stream once, compressed",
            s.name
        );
    }
}

#[test]
fn mac_ops_respect_the_decomposed_compute_model() {
    let profile = ModelProfile::for_model("MobileNet").expect("known model");
    let artifacts = compress_model_artifacts(&profile, &CompressionConfig::default())
        .expect("compression succeeds");
    let workload = Workload::from_artifacts("MobileNet", &artifacts, &profile);
    let stats = simulate_model(&workload, &SimConfig::default(), 0);
    for (lw, s) in workload.layers.iter().zip(&stats.layers) {
        if let WorkloadMode::Decomposed(masks) = &lw.mode {
            // K × positions × M × ceil(RS / stride²) MAC operations.
            let rs_eff = (lw.shape.r * lw.shape.s).div_ceil(lw.shape.stride * lw.shape.stride);
            let expect = (masks.k() * lw.positions() * masks.m() * rs_eff) as u64;
            assert_eq!(s.mac_ops, expect, "{}", s.name);
        }
    }
}

#[test]
fn energy_model_is_consistent_across_granularities() {
    let (stats, _) = mobilenet_run();
    let caps = BufferCaps::default();
    let units = UnitEnergy::table3();
    let total = model_energy(&stats, &caps, &units);
    let summed: f64 = stats
        .layers
        .iter()
        .map(|l| layer_energy(l, &caps, &units).total_pj())
        .sum();
    assert!((total.total_pj() - summed).abs() / summed < 1e-9);
    assert!(total.total_pj() > 0.0);
    // DRAM energy follows the Table 3 constant exactly.
    assert!((total.dram_pj - stats.total_dram().total() as f64 * 100.0).abs() < 1e-6);
}

#[test]
fn simulation_is_deterministic_per_seed() {
    let profile = ModelProfile::for_model("MobileNet").expect("known model");
    let artifacts = compress_model_artifacts(&profile, &CompressionConfig::default())
        .expect("compression succeeds");
    let workload = Workload::from_artifacts("MobileNet", &artifacts, &profile);
    let a = simulate_model(&workload, &SimConfig::default(), 3);
    let b = simulate_model(&workload, &SimConfig::default(), 3);
    assert_eq!(a.total_cycles(), b.total_cycles());
    assert_eq!(a.total_dram(), b.total_dram());
    // Different input seeds change cycles (activation draw) but not the
    // deterministic op counts.
    let c = simulate_model(&workload, &SimConfig::default(), 4);
    assert_eq!(a.total_mac_ops(), c.total_mac_ops());
}

#[test]
fn dsc_pairs_are_fused_into_single_units() {
    let (_, artifacts) = mobilenet_run();
    let fused = artifacts
        .iter()
        .filter(|a| a.fused_pointwise.is_some())
        .count();
    assert_eq!(fused, 13, "MobileNet has 13 dw+pw pairs");
    for a in &artifacts {
        if let Some(pw) = &a.fused_pointwise {
            assert_eq!(a.out_channels(), pw.k);
            let q = a.quantized.as_ref().expect("fused units carry artifacts");
            let [k, c, m] = q.coeffs.shape();
            assert_eq!(k, pw.k);
            assert_eq!(c, a.shape.c);
            assert!(m <= 6);
        }
    }
}
