//! Cross-crate numerical equivalence: the decomposed, reorganized, and
//! quantized computation paths must all approximate the dense reference
//! convolution, across layer shapes, strides, and paddings.

use escalate::algo::decompose;
use escalate::algo::dsc::{decompose_dsc, dsc_forward};
use escalate::algo::quant::HybridQuantized;
use escalate::algo::reorg::{forward_eq2, forward_eq3};
use escalate::models::{synth, LayerShape};
use escalate::tensor::conv::conv2d;

fn layer_cases() -> Vec<LayerShape> {
    vec![
        LayerShape::conv("s1", 8, 16, 12, 12, 3, 1, 1),
        LayerShape::conv("s2", 16, 8, 13, 13, 3, 2, 1),
        LayerShape::conv("5x5", 4, 6, 10, 10, 5, 1, 2),
        LayerShape::conv("nopad", 6, 6, 9, 9, 3, 1, 0),
    ]
}

#[test]
fn decomposed_orders_match_direct_convolution_at_full_rank() {
    for layer in layer_cases() {
        let rs = layer.r * layer.s;
        let w = synth::weights(&layer, rs, 0.2, 11);
        let d = decompose(&w, rs).expect("full-rank decomposition");
        let input = synth::activations(&layer, 0.4, 3);
        let direct = conv2d(&input, &w, layer.stride, layer.pad);
        let (o2, _) = forward_eq2(&d, &input, layer.stride, layer.pad);
        let (o3, _) = forward_eq3(&d, &input, layer.stride, layer.pad);
        assert!(
            direct.all_close(&o2, 1e-2),
            "{}: eq2 err {}",
            layer.name,
            direct.relative_error(&o2)
        );
        assert!(
            direct.all_close(&o3, 1e-2),
            "{}: eq3 err {}",
            layer.name,
            direct.relative_error(&o3)
        );
    }
}

#[test]
fn truncation_error_is_graceful_on_low_rank_weights() {
    let layer = LayerShape::conv("t", 12, 24, 10, 10, 3, 1, 1);
    // Weights with true rank 4: M = 4 should be near-exact, M = 2 lossy
    // but bounded.
    let w = synth::weights(&layer, 4, 0.0, 5);
    let input = synth::activations(&layer, 0.5, 9);
    let direct = conv2d(&input, &w, 1, 1);
    let d4 = decompose(&w, 4).expect("decomposition succeeds");
    let (o4, _) = forward_eq3(&d4, &input, 1, 1);
    assert!(direct.relative_error(&o4) < 1e-2);
    let d2 = decompose(&w, 2).expect("decomposition succeeds");
    let (o2, _) = forward_eq3(&d2, &input, 1, 1);
    let e2 = direct.relative_error(&o2);
    assert!(
        e2 > 1e-3 && e2 < 1.0,
        "rank-2 error should be lossy but bounded: {e2}"
    );
}

#[test]
fn hybrid_quantized_forward_is_bounded_and_qat_improves_it() {
    use escalate::algo::qat::{retrain_coeffs, QatConfig};
    let layer = LayerShape::conv("q", 16, 16, 8, 8, 3, 1, 1);
    let w = synth::weights(&layer, 6, 0.05, 21);
    let d = decompose(&w, 6).expect("decomposition succeeds");
    let input = synth::activations(&layer, 0.5, 2);
    let (reference, _) = forward_eq3(&d, &input, 1, 1);

    // Post-training ternarization (threshold 0 keeps every coefficient) is
    // coarse but bounded...
    let h = HybridQuantized::quantize(&d, 0.0).expect("valid threshold");
    let (quantized, _) = forward_eq3(&h.to_decomposed(), &input, 1, 1);
    let ptq_err = reference.relative_error(&quantized);
    assert!(ptq_err < 1.0, "ternary PTQ error out of range: {ptq_err}");

    // ...and quantization-aware retraining tightens it.
    let qat = retrain_coeffs(
        &d.coeffs,
        &QatConfig {
            epochs: 120,
            threshold: 0.0,
            ..QatConfig::default()
        },
    )
    .expect("retraining succeeds");
    let mut dq = d.clone();
    dq.coeffs = qat.coeffs.dequantize();
    let (retrained, _) = forward_eq3(&dq, &input, 1, 1);
    let qat_err = reference.relative_error(&retrained);
    // retrain_coeffs guarantees the retrained coefficients approximate the
    // full-precision ones no worse than plain ternarization — but in
    // coefficient space. That bound transfers to the layer output only in
    // expectation (orthonormal basis, uncorrelated inputs), so the
    // output-space comparison gets a small multiplicative margin.
    assert!(
        qat.final_error <= qat.initial_error + 1e-6,
        "QAT must not regress in coefficient space: {} vs {}",
        qat.final_error,
        qat.initial_error
    );
    assert!(
        qat_err <= ptq_err * 1.02,
        "QAT output error should track PTQ: {qat_err} vs {ptq_err}"
    );
}

#[test]
fn dsc_decomposition_matches_depthwise_separable_reference() {
    let c = 10;
    let k = 14;
    let dw = synth::weights(&LayerShape::dwconv("dw", c, 8, 8, 3, 1, 1), 9, 0.3, 31);
    let pw = synth::pointwise_weights(c, k, 32);
    let input = synth::activations(&LayerShape::dwconv("dw", c, 8, 8, 3, 1, 1), 0.4, 8);
    let reference = dsc_forward(&input, &dw, &pw, 1, 1);
    let d = decompose_dsc(&dw, &pw, 9).expect("full-rank DSC decomposition");
    let (ours, _) = forward_eq3(&d, &input, 1, 1);
    assert!(
        reference.all_close(&ours, 1e-2),
        "DSC unified form diverges: {}",
        reference.relative_error(&ours)
    );
}

#[test]
fn two_layer_chain_with_output_requantization() {
    use escalate::algo::quant::requantize_output;
    // A two-layer chain: the inter-layer feature map is re-quantized to
    // 8 bits per channel (§3.2) and must barely perturb the final output.
    let l1 = LayerShape::conv("l1", 8, 12, 10, 10, 3, 1, 1);
    let l2 = LayerShape::conv("l2", 12, 10, 10, 10, 3, 1, 1);
    let w1 = synth::weights(&l1, 9, 0.2, 41);
    let w2 = synth::weights(&l2, 9, 0.2, 43);
    let input = synth::activations(&l1, 0.4, 6);

    let mid = conv2d(&input, &w1, 1, 1).relu();
    let reference = conv2d(&mid, &w2, 1, 1);

    let (mid_q, scales) = requantize_output(&mid, 8).expect("valid bits");
    assert_eq!(scales.len(), 12);
    let quantized = conv2d(&mid_q, &w2, 1, 1);

    let err = reference.relative_error(&quantized);
    assert!(
        err < 0.02,
        "8-bit inter-layer requantization error too large: {err}"
    );
    // 4-bit requantization is visibly worse but still bounded.
    let (mid_q4, _) = requantize_output(&mid, 4).expect("valid bits");
    let q4 = conv2d(&mid_q4, &w2, 1, 1);
    let err4 = reference.relative_error(&q4);
    assert!(err4 > err && err4 < 0.3, "4-bit error {err4}");
}

#[test]
fn sparsified_coefficients_degrade_smoothly() {
    use escalate::algo::quant::{threshold_for_sparsity, TernaryCoeffs};
    let layer = LayerShape::conv("sp", 24, 24, 8, 8, 3, 1, 1);
    let w = synth::weights(&layer, 6, 0.05, 77);
    let d = decompose(&w, 6).expect("decomposition succeeds");
    let input = synth::activations(&layer, 0.5, 4);
    let (reference, _) = forward_eq3(&d, &input, 1, 1);
    let mut last_err = 0.0f32;
    for target in [0.5f64, 0.8, 0.95] {
        let t = threshold_for_sparsity(&d.coeffs, target);
        let tern = TernaryCoeffs::ternarize(&d.coeffs, t).expect("valid threshold");
        let mut dq = d.clone();
        dq.coeffs = tern.dequantize();
        let (out, _) = forward_eq3(&dq, &input, 1, 1);
        let err = reference.relative_error(&out);
        assert!(
            err >= last_err - 0.05,
            "error should not collapse as sparsity grows"
        );
        last_err = err;
    }
}
