//! Quickstart: decompose one convolutional layer, quantize it, check the
//! two computation orders agree, and read off the compression.
//!
//! Run with: `cargo run --release --example quickstart`

use escalate::algo::decompose;
use escalate::algo::pipeline::ternary_storage_bits;
use escalate::algo::quant::HybridQuantized;
use escalate::algo::reorg::{forward_eq2, forward_eq3};
use escalate::models::{synth, LayerShape};
use escalate::tensor::conv::conv2d;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A mid-network CIFAR-scale layer: 64 -> 128 channels, 16x16 input,
    // 3x3 kernels.
    let layer = LayerShape::conv("demo", 64, 128, 16, 16, 3, 1, 1);
    println!("layer: {layer}");

    // Synthesize weights with an effective kernel rank of 6 and decompose
    // with M = 6 basis kernels (the paper's setting).
    let weights = synth::weights(&layer, 6, 0.05, 42);
    let d = decompose(&weights, 6)?;
    println!(
        "decomposed into {} basis kernels; captured energy {:.2}%",
        d.m(),
        d.captured_energy * 100.0
    );

    // The two computation orders (Eq. 2 and Eq. 3) are equivalent, but
    // Eq. 3 materializes far fewer intermediate values.
    let input = synth::activations(&layer, 0.5, 7);
    let (out2, inter2) = forward_eq2(&d, &input, layer.stride, layer.pad);
    let (out3, inter3) = forward_eq3(&d, &input, layer.stride, layer.pad);
    assert!(out2.all_close(&out3, 1e-3));
    println!("Eq.(2) intermediates: {inter2} elements; Eq.(3): {inter3} elements");

    // And both approximate the direct convolution of the original weights.
    let direct = conv2d(&input, &weights, layer.stride, layer.pad);
    println!(
        "output relative error vs dense convolution: {:.4}",
        direct.relative_error(&out3)
    );

    // Hybrid quantization: 8-bit basis, ternary coefficients (t = 0.05).
    let h = HybridQuantized::quantize(&d, 0.05)?;
    let compressed_bits = h.basis.size_bits() + ternary_storage_bits(&h.coeffs);
    let original_bits = weights.len() * 32;
    println!(
        "coefficient sparsity {:.1}%, compression {:.1}x ({} -> {} bits)",
        h.coeffs.sparsity() * 100.0,
        original_bits as f64 / compressed_bits as f64,
        original_bits,
        compressed_bits
    );
    Ok(())
}
