//! Design-space exploration: sweep the number of basis kernels `M` and PE
//! organization for a custom workload and find the latency/accuracy knee
//! (the Figure 12 methodology, applied to a user-supplied layer mix).
//!
//! Run with: `cargo run --release --example design_space`

use escalate::algo::pipeline::{accuracy_proxy, compress_layer_artifact, CompressionConfig};
use escalate::models::{LayerShape, ModelProfile};
use escalate::sim::workload::CoefMasks;
use escalate::sim::{simulate_layer, LayerWorkload, SimConfig, Workload, WorkloadMode};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A custom "edge detector" workload: a small VGG-ish stack.
    let layers = [
        LayerShape::conv("stem", 16, 32, 64, 64, 3, 1, 1),
        LayerShape::conv("mid", 32, 64, 32, 32, 3, 1, 1),
        LayerShape::conv("deep", 64, 128, 16, 16, 3, 2, 1),
        LayerShape::conv("head", 128, 128, 8, 8, 3, 1, 1),
    ];
    // Reuse the ResNet18 profile's activation statistics for the sweep.
    let profile = ModelProfile::for_model("ResNet18").expect("known model");

    println!("Design-space sweep over M (MAC budget fixed at 960):");
    println!();
    println!(
        "{:<3} {:<3} {:>12} {:>12} {:>11} {:>12}",
        "M", "l", "cycles", "latency(us)", "comp(x)", "proxy top-1"
    );
    for m in 3..=9usize {
        let sim_cfg = SimConfig::default().with_m(m);
        let cfg = CompressionConfig {
            m,
            ..CompressionConfig::default()
        };
        let mut cycles = 0u64;
        let mut orig_bits = 0usize;
        let mut comp_bits = 0usize;
        let mut err = 0.0f64;
        let mut params = 0usize;
        let mut wls = Vec::new();
        for (i, layer) in layers.iter().enumerate() {
            let a = compress_layer_artifact(layer, &cfg, 0.95, 1000 + i as u64)?;
            orig_bits += a.stats.original_bits;
            comp_bits += a.stats.compressed_bits;
            err += a.stats.weight_error as f64 * a.stats.original_params as f64;
            params += a.stats.original_params;
            let hybrid = a
                .quantized
                .as_ref()
                .expect("decomposed layer has artifacts");
            wls.push(LayerWorkload {
                name: layer.name.clone(),
                shape: layer.clone(),
                out_channels: layer.k,
                mode: WorkloadMode::Decomposed(CoefMasks::from_ternary(&hybrid.coeffs)),
                act_sparsity: 0.5,
                out_sparsity: 0.5,
                weight_bytes: (a.stats.compressed_bits as u64).div_ceil(8),
            });
        }
        let _ = Workload {
            model_name: "custom".into(),
            layers: wls.clone(),
        };
        for lw in &wls {
            cycles += simulate_layer(lw, &sim_cfg, 0).cycles;
        }
        println!(
            "{:<3} {:<3} {:>12} {:>12.1} {:>11.1} {:>12.2}",
            m,
            sim_cfg.l,
            cycles,
            cycles as f64 / sim_cfg.frequency_mhz,
            orig_bits as f64 / comp_bits as f64,
            accuracy_proxy(profile.baseline_top1, err / params as f64),
        );
    }
    println!();
    println!("Pick the smallest M whose proxy accuracy clears your target; every extra");
    println!("basis kernel costs row parallelism (l) and therefore latency.");
    Ok(())
}
