//! End-to-end hardware evaluation: compress VGG16, run it on the ESCALATE
//! accelerator simulator and the three baselines, and print the speedup,
//! energy, and DRAM comparison for this one model.
//!
//! Run with: `cargo run --release --example simulate_accelerator`

use escalate::algo::compress_model_artifacts;
use escalate::algo::pipeline::CompressionConfig;
use escalate::baselines::{BaselineWorkload, Eyeriss, LayerModel, Scnn, SparTen};
use escalate::energy::{model_energy, BufferCaps, UnitEnergy};
use escalate::models::ModelProfile;
use escalate::sim::{simulate_model, SimConfig, Workload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let profile = ModelProfile::for_model("VGG16").expect("known model");
    let sim_cfg = SimConfig::default();
    let units = UnitEnergy::table3();

    // 1. Compress the model (Table 1 pipeline) and build the workload.
    let artifacts = compress_model_artifacts(&profile, &CompressionConfig::default())?;
    let workload = Workload::from_artifacts(&profile.name, &artifacts, &profile);

    // 2. Simulate ESCALATE.
    let esc = simulate_model(&workload, &sim_cfg, 0);
    let esc_energy = model_energy(&esc, &BufferCaps::from_config(&sim_cfg), &units);

    // 3. Simulate the baselines on the pruned checkpoint.
    let bw = BaselineWorkload::for_profile(&profile);
    let caps = BufferCaps::baseline(64 * 1024);
    let accels: Vec<Box<dyn LayerModel>> = vec![
        Box::new(Eyeriss::default()),
        Box::new(Scnn::default()),
        Box::new(SparTen::default()),
    ];

    println!("{} on four accelerators:", profile.name);
    println!();
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>10}",
        "design", "cycles", "latency(ms)", "energy(mJ)", "DRAM(MB)"
    );
    println!(
        "{:<10} {:>12} {:>12.3} {:>12.3} {:>10.2}",
        "ESCALATE",
        esc.total_cycles(),
        esc.latency_ms(sim_cfg.frequency_mhz),
        esc_energy.total_mj(),
        esc.total_dram().total() as f64 / 1e6
    );
    for acc in &accels {
        let stats = acc.simulate(&bw, 0);
        let energy = model_energy(&stats, &caps, &units);
        println!(
            "{:<10} {:>12} {:>12.3} {:>12.3} {:>10.2}",
            acc.name(),
            stats.total_cycles(),
            stats.latency_ms(800.0),
            energy.total_mj(),
            stats.total_dram().total() as f64 / 1e6
        );
    }
    println!();
    println!("Per-layer ESCALATE detail (first 5 layers):");
    for l in esc.layers.iter().take(5) {
        println!(
            "  {:<12} {:>9} cycles, MAC idle {:>5.1}%, DRAM {:>8} B{}",
            l.name,
            l.cycles,
            l.mac_idle_fraction() * 100.0,
            l.dram.total(),
            if l.fallback { "  (dense fallback)" } else { "" }
        );
    }
    Ok(())
}
