//! Compress a whole network: the ResNet18 (CIFAR-10) pipeline with
//! per-layer reporting — the programmatic version of the Table 1 row.
//!
//! Run with: `cargo run --release --example compress_resnet18`

use escalate::algo::compress_model;
use escalate::algo::pipeline::{accuracy_proxy, CompressionConfig};
use escalate::models::ModelProfile;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let profile = ModelProfile::for_model("ResNet18").expect("known model");
    let cfg = CompressionConfig {
        // Enable a short quantization-aware retraining pass per layer.
        qat_epochs: 10,
        ..CompressionConfig::default()
    };
    let result = compress_model(&profile, &cfg)?;

    println!("{} ({}):", result.model_name, profile.dataset);
    println!();
    println!(
        "{:<22} {:>10} {:>10} {:>8} {:>8}",
        "layer", "params", "bits", "spar%", "ratio"
    );
    for l in &result.layers {
        println!(
            "{:<22} {:>10} {:>10} {:>7.1}% {:>7.1}x{}",
            l.name,
            l.original_params,
            l.compressed_bits,
            l.coeff_sparsity() * 100.0,
            l.compression_ratio(),
            if l.decomposed { "" } else { "  (dense 8-bit)" },
        );
    }
    println!();
    println!(
        "model: {:.2}x compression, {:.2}% coefficient sparsity, {:.2}% pruned",
        result.compression_ratio(),
        result.coeff_sparsity() * 100.0,
        result.pruning_ratio() * 100.0
    );
    println!(
        "weight error {:.3} -> proxy top-1 {:.2}% (baseline {:.2}%)",
        result.mean_weight_error(),
        accuracy_proxy(profile.baseline_top1, result.mean_weight_error()),
        profile.baseline_top1
    );
    Ok(())
}
