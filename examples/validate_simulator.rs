//! Simulator-fidelity showcase: run one layer through the three modes —
//! the sampling throughput engine, the trace-driven walk over a real
//! feature map, and the fully cycle-stepped detailed mode — and compare.
//!
//! Run with: `cargo run --release --example validate_simulator`

use escalate::algo::decompose;
use escalate::algo::quant::{threshold_for_sparsity, TernaryCoeffs};
use escalate::models::{synth, LayerShape};
use escalate::sim::detailed::simulate_layer_detailed;
use escalate::sim::trace::simulate_layer_traced;
use escalate::sim::workload::CoefMasks;
use escalate::sim::{simulate_layer, LayerWorkload, SimConfig, WorkloadMode};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A mid-size layer, compressed exactly as the pipeline would.
    let layer = LayerShape::conv("demo", 96, 64, 12, 12, 3, 1, 1);
    let weights = synth::weights(&layer, 6, 0.05, 42);
    let d = decompose(&weights, 6)?;
    let t = threshold_for_sparsity(&d.coeffs, 0.95);
    let coeffs = TernaryCoeffs::ternarize(&d.coeffs, t)?;
    println!(
        "layer {layer}, coefficient sparsity {:.1}%",
        coeffs.sparsity() * 100.0
    );

    let lw = LayerWorkload {
        name: layer.name.clone(),
        shape: layer.clone(),
        out_channels: layer.k,
        mode: WorkloadMode::Decomposed(CoefMasks::from_ternary(&coeffs)),
        act_sparsity: 0.5,
        out_sparsity: 0.5,
        weight_bytes: 4096,
    };
    let cfg = SimConfig::default();
    let ifm = synth::activations(&layer, 0.5, 7);

    // 1. Sampling engine (the mode every figure harness uses).
    let engine = simulate_layer(&lw, &cfg, 0);
    // 2. Trace-driven: every position of a real feature map.
    let traced = simulate_layer_traced(&lw, &cfg, &ifm)?;
    // 3. Detailed: cycle-stepped slices for every channel assignment.
    let detailed = simulate_layer_detailed(&lw, &cfg, &ifm)?;

    println!();
    println!(
        "{:<22} {:>10} {:>14} {:>12}",
        "mode", "cycles", "MAC idle (cyc)", "CA matches"
    );
    println!(
        "{:<22} {:>10} {:>14} {:>12}",
        "sampling engine", engine.cycles, engine.mac_idle_cycles, engine.ca_adds
    );
    println!(
        "{:<22} {:>10} {:>14} {:>12}",
        "trace-driven", traced.cycles, traced.mac_idle_cycles, traced.ca_adds
    );
    println!(
        "{:<22} {:>10} {:>14} {:>12}",
        "detailed (stepped)", detailed.cycles, detailed.mac_idle_cycles, detailed.matched
    );
    println!();
    println!(
        "trace/engine cycle ratio: {:.2}; detailed/engine: {:.2}",
        traced.cycles as f64 / engine.cycles as f64,
        detailed.cycles as f64 / engine.cycles as f64
    );
    println!("The detailed mode includes pipeline-fill and FIFO hazards the throughput");
    println!("abstraction ignores; the test suite bounds the disagreement (see");
    println!("crates/sim/tests/). Use the engine for whole-model studies, the detailed");
    println!("mode for microarchitectural questions on single layers.");
    Ok(())
}
