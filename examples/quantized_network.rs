//! End-to-end quantized inference: a three-layer synthetic CNN pushed
//! through the complete ESCALATE algorithm — decomposition, hybrid
//! quantization, the reorganized Eq.(3) forward pass, ReLU, and per-
//! channel output requantization between layers — compared against the
//! fp32 reference at each stage.
//!
//! Run with: `cargo run --release --example quantized_network`

use escalate::algo::decompose;
use escalate::algo::quant::{requantize_output, threshold_for_sparsity, HybridQuantized};
use escalate::algo::reorg::forward_eq3;
use escalate::models::{synth, LayerShape, Model};
use escalate::tensor::conv::conv2d;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small three-stage network, validated as a consistent graph.
    let layers = vec![
        LayerShape::conv("stage1", 8, 16, 16, 16, 3, 1, 1),
        LayerShape::conv("stage2", 16, 24, 16, 16, 3, 2, 1),
        LayerShape::conv("stage3", 24, 32, 8, 8, 3, 1, 1),
    ];
    let net = Model::new("demo-net", layers.clone());
    net.validate()
        .map_err(|e| format!("invalid network: {e}"))?;

    let input = synth::activations(&layers[0], 0.4, 3);
    println!("three-layer network, 90% coefficient sparsity, 8-bit inter-layer maps");
    println!();
    println!(
        "{:<10} {:>8} {:>12} {:>14} {:>16}",
        "layer", "spar%", "comp ratio", "stage err", "cumulative err"
    );

    let mut reference = input.clone();
    let mut quantized = input;
    for layer in &layers {
        let w = synth::weights(layer, 6, 0.05, 100 + layer.k as u64);
        let d = decompose(&w, 6)?;
        let t = threshold_for_sparsity(&d.coeffs, 0.90);
        let h = HybridQuantized::quantize(&d, t)?;

        // fp32 reference path: dense conv + ReLU.
        let ref_out = conv2d(&reference, &w, layer.stride, layer.pad).relu();

        // Quantized path: reorganized decomposed conv with ternary
        // coefficients, ReLU, then 8-bit per-channel requantization (the
        // form the next layer's SparseMap encoder consumes).
        let (q_out, _) = forward_eq3(&h.to_decomposed(), &quantized, layer.stride, layer.pad);
        let (q_out, _scales) = requantize_output(&q_out.relu(), 8)?;

        // Stage error: quantized layer applied to the *reference* input,
        // isolating this layer's quantization from upstream drift.
        let (stage, _) = forward_eq3(&h.to_decomposed(), &reference, layer.stride, layer.pad);
        let stage_err = ref_out.relative_error(&stage.relu());
        let cumulative = ref_out.relative_error(&q_out);

        let orig_bits = w.len() * 32;
        let comp_bits =
            h.basis.size_bits() + escalate::algo::pipeline::ternary_storage_bits(&h.coeffs);
        println!(
            "{:<10} {:>7.1}% {:>11.1}x {:>14.3} {:>16.3}",
            layer.name,
            h.coeffs.sparsity() * 100.0,
            orig_bits as f64 / comp_bits as f64,
            stage_err,
            cumulative,
        );

        reference = ref_out;
        quantized = q_out;
    }

    println!();
    println!("Per-stage error stays at the single-layer ternarization level; the");
    println!("cumulative drift grows sub-linearly because ReLU and the per-channel");
    println!("requantization re-normalize each stage (the §3.2 design). In the real");
    println!("pipeline, retraining absorbs this drift into the task loss.");
    Ok(())
}
