//! Facade crate re-exporting the full ESCALATE reproduction workspace.
//!
//! See the individual crates for details:
//! - [`tensor`] — tensor & linear algebra substrate
//! - [`models`] — CNN model zoo and synthetic workload generators
//! - [`algo`] — the ESCALATE compression algorithm (kernel decomposition,
//!   computation reorganization, hybrid quantization)
//! - [`sparse`] — SparseMap encodings and bit-gather hardware models
//! - [`sim`] — the cycle-level ESCALATE accelerator simulator
//! - [`baselines`] — Eyeriss / SCNN / SparTen baseline simulators
//! - [`energy`] — energy and area models
pub use escalate_baselines as baselines;
pub use escalate_core as algo;
pub use escalate_energy as energy;
pub use escalate_models as models;
pub use escalate_sim as sim;
pub use escalate_sparse as sparse;
pub use escalate_tensor as tensor;
