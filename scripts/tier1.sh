#!/usr/bin/env bash
# Tier-1 gate: release build, full test suite, and clippy with warnings
# denied — the checks every PR must keep green (see ROADMAP.md).
#
# Usage: scripts/tier1.sh
#
# The workspace vendors its external dependencies (vendor/ via
# [patch.crates-io]), so everything runs offline.
set -euo pipefail
cd "$(dirname "$0")/.."

# `--workspace` everywhere: the root manifest is both a package (the
# `escalate` facade) and the workspace, so bare `cargo build`/`cargo test`
# would cover only the facade and silently skip every member crate's
# binaries and test targets.
cargo build --release --offline --workspace
cargo test -q --offline --workspace
# The `simd` feature compiles the std::arch batch-kernel path; dispatch
# is at runtime (is_x86_feature_detected!), so this build+test pass is
# safe on hosts without the intrinsics — it just takes the portable
# fallback there. The kernel_diff proptests force the fast path off and
# on to pin the two monomorphizations byte-identical.
cargo test -q --offline -p escalate-sim --features simd
# The observability crate is dependency-free and cheap: exercise its full
# test matrix (unit + doc tests) explicitly so a workspace-level filter
# can never silently drop it.
cargo test -q --offline -p escalate-obs
# Criterion's `--test` mode runs each kernel benchmark once, unmeasured:
# a smoke check that the scalar/word-parallel/batched differential
# assertion and the bench wiring stay green without paying for real
# measurement (with the simd dispatch compiled in).
cargo bench --offline -p escalate-bench --bench position_kernel \
  --features escalate-sim/simd -- --test
# Golden-diff regression check over the full corpus: all 19 golden
# experiments must stay byte-identical to the committed results/ files
# (~75 s in release on a single core; the per-experiment dev-profile
# round-trips live in crates/bench/tests/report.rs).
./target/release/report --all --check
# Resumable design-space sweep smoke on the frontier-golden grid: run
# the 64-point cold grid (the exact grid committed as
# results/sweep_frontier.txt, so frontier drift fails here), "interrupt"
# it by keeping only the first 20 records, resume from the stream, and
# require the resumed stream to be byte-identical to the cold run — with
# an identical Pareto summary (it is recomputed from the parsed stream
# either way). The cold run records metrics so the cross-point
# work-sharing layer is provably engaged (derived-state cache hits).
SWEEP_DIR="$(mktemp -d)"
SERVE_DIR="$(mktemp -d)"
trap 'rm -rf "$SWEEP_DIR" "$SERVE_DIR"; kill "${SERVE_PID:-}" 2>/dev/null || true' EXIT
./target/release/escalate sweep MobileNet MobileNetV2 --samples 32 --seeds 1 \
  --out "$SWEEP_DIR/cold.jsonl" --metrics "$SWEEP_DIR/cold.metrics.json" \
  --check results/sweep_frontier.txt > "$SWEEP_DIR/cold.txt"
grep -o '"sweep.derived_hits": [0-9]*' "$SWEEP_DIR/cold.metrics.json" \
  | grep -qv ': 0$'
head -n 20 "$SWEEP_DIR/cold.jsonl" > "$SWEEP_DIR/resumed.jsonl"
./target/release/escalate sweep MobileNet MobileNetV2 --samples 32 --seeds 1 \
  --out "$SWEEP_DIR/resumed.jsonl" > "$SWEEP_DIR/resumed.txt"
cmp "$SWEEP_DIR/cold.jsonl" "$SWEEP_DIR/resumed.jsonl"
grep -q "44 sample(s) ran, 20 resumed" "$SWEEP_DIR/resumed.txt"
diff <(tail -n +2 "$SWEEP_DIR/cold.txt" | grep -v '^frontier matches') \
     <(tail -n +2 "$SWEEP_DIR/resumed.txt")
# Network-description + pipelined-schedule smoke: write a generated
# network as an escalate-network/v1 file, require the file → Model →
# file round trip to be byte-identical, and simulate it under the
# pipelined schedule (the pipeline stage/interval/stall line only
# renders when that schedule actually ran).
./target/release/escalate network gen:dilated:blocks=2 \
  --out "$SWEEP_DIR/gen.network"
./target/release/escalate network "@$SWEEP_DIR/gen.network" \
  --out "$SWEEP_DIR/gen2.network"
cmp "$SWEEP_DIR/gen.network" "$SWEEP_DIR/gen2.network"
./target/release/escalate simulate --network "$SWEEP_DIR/gen.network" \
  --schedule pipelined --seeds 1 > "$SWEEP_DIR/pipelined.txt"
grep -q '^pipeline: .* stage(s), interval ' "$SWEEP_DIR/pipelined.txt"
# Serve smoke: an ephemerally-bound daemon (port discovered via
# --port-file), one job per verb through `escalate submit`, well-formed
# escalate-run-manifest/v1 unit records, non-empty metrics, and a
# graceful drain — every step timeout-bounded so a wedged daemon fails
# the gate instead of hanging it.
./target/release/escalate serve --port-file "$SERVE_DIR/port" \
  > "$SERVE_DIR/serve.txt" 2>&1 &
SERVE_PID=$!
for _ in $(seq 1 100); do [ -s "$SERVE_DIR/port" ] && break; sleep 0.1; done
[ -s "$SERVE_DIR/port" ]
submit() { timeout 120 ./target/release/escalate submit "$@" --port-file "$SERVE_DIR/port"; }
submit ping | grep -q '"type": "pong"'
submit simulate MobileNet --seeds 1 > "$SERVE_DIR/simulate.txt"
test "$(grep -c '"schema": "escalate-run-manifest/v1"' "$SERVE_DIR/simulate.txt")" -eq 4
grep -q '"type": "done"' "$SERVE_DIR/simulate.txt"
submit compress MobileNet | grep -q '"type": "done"'
submit report table4 | grep -q '"type": "done"'
# A served custom-network pipelined job: the daemon resolves the same
# @FILE spec the CLI does and its done frame carries the pipeline line.
submit simulate "@$SWEEP_DIR/gen.network" --seeds 1 --schedule pipelined \
  > "$SERVE_DIR/network.txt"
grep -q '"type": "done"' "$SERVE_DIR/network.txt"
grep -q 'pipeline: ' "$SERVE_DIR/network.txt"
submit metrics | grep -q '"serve.jobs_done": 4'
submit shutdown | grep -q '"drained": true'
for _ in $(seq 1 300); do kill -0 "$SERVE_PID" 2>/dev/null || break; sleep 0.1; done
! kill -0 "$SERVE_PID" 2>/dev/null
grep -q "drained — 4 jobs done, 0 failed" "$SERVE_DIR/serve.txt"
cargo fmt --check
cargo clippy --all-targets --offline --workspace -- -D warnings
cargo clippy --all-targets --offline -p escalate-sim --features simd -- -D warnings

echo "tier-1: OK"
