#!/usr/bin/env bash
# Tier-1 gate: release build, full test suite, and clippy with warnings
# denied — the checks every PR must keep green (see ROADMAP.md).
#
# Usage: scripts/tier1.sh
#
# The workspace vendors its external dependencies (vendor/ via
# [patch.crates-io]), so everything runs offline.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline
cargo test -q --offline
# The observability crate is dependency-free and cheap: exercise its full
# test matrix (unit + doc tests) explicitly so a workspace-level filter
# can never silently drop it.
cargo test -q --offline -p escalate-obs
cargo fmt --check
cargo clippy --all-targets --offline -- -D warnings

echo "tier-1: OK"
