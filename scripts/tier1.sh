#!/usr/bin/env bash
# Tier-1 gate: release build, full test suite, and clippy with warnings
# denied — the checks every PR must keep green (see ROADMAP.md).
#
# Usage: scripts/tier1.sh
#
# The workspace vendors its external dependencies (vendor/ via
# [patch.crates-io]), so everything runs offline.
set -euo pipefail
cd "$(dirname "$0")/.."

# `--workspace` everywhere: the root manifest is both a package (the
# `escalate` facade) and the workspace, so bare `cargo build`/`cargo test`
# would cover only the facade and silently skip every member crate's
# binaries and test targets.
cargo build --release --offline --workspace
cargo test -q --offline --workspace
# The `simd` feature compiles the std::arch batch-kernel path; dispatch
# is at runtime (is_x86_feature_detected!), so this build+test pass is
# safe on hosts without the intrinsics — it just takes the portable
# fallback there. The kernel_diff proptests force the fast path off and
# on to pin the two monomorphizations byte-identical.
cargo test -q --offline -p escalate-sim --features simd
# The observability crate is dependency-free and cheap: exercise its full
# test matrix (unit + doc tests) explicitly so a workspace-level filter
# can never silently drop it.
cargo test -q --offline -p escalate-obs
# Criterion's `--test` mode runs each kernel benchmark once, unmeasured:
# a smoke check that the scalar/word-parallel/batched differential
# assertion and the bench wiring stay green without paying for real
# measurement (with the simd dispatch compiled in).
cargo bench --offline -p escalate-bench --bench position_kernel \
  --features escalate-sim/simd -- --test
# Golden-diff regression check over the full corpus: all 18 golden
# experiments must stay byte-identical to the committed results/ files
# (~75 s in release on a single core; the per-experiment dev-profile
# round-trips live in crates/bench/tests/report.rs).
./target/release/report --all --check
# Resumable design-space sweep smoke: run a tiny grid, "interrupt" it by
# keeping only the first record, resume from the stream, and require the
# resumed stream to be byte-identical to the cold run — with an identical
# Pareto summary (it is recomputed from the parsed stream either way).
SWEEP_DIR="$(mktemp -d)"
trap 'rm -rf "$SWEEP_DIR"' EXIT
./target/release/escalate sweep MobileNet --samples 3 --seeds 1 \
  --out "$SWEEP_DIR/cold.jsonl" > "$SWEEP_DIR/cold.txt"
head -n 1 "$SWEEP_DIR/cold.jsonl" > "$SWEEP_DIR/resumed.jsonl"
./target/release/escalate sweep MobileNet --samples 3 --seeds 1 \
  --out "$SWEEP_DIR/resumed.jsonl" > "$SWEEP_DIR/resumed.txt"
cmp "$SWEEP_DIR/cold.jsonl" "$SWEEP_DIR/resumed.jsonl"
grep -q "2 sample(s) ran, 1 resumed" "$SWEEP_DIR/resumed.txt"
diff <(tail -n +2 "$SWEEP_DIR/cold.txt") <(tail -n +2 "$SWEEP_DIR/resumed.txt")
cargo fmt --check
cargo clippy --all-targets --offline --workspace -- -D warnings
cargo clippy --all-targets --offline -p escalate-sim --features simd -- -D warnings

echo "tier-1: OK"
