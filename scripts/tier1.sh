#!/usr/bin/env bash
# Tier-1 gate: release build, full test suite, and clippy with warnings
# denied — the checks every PR must keep green (see ROADMAP.md).
#
# Usage: scripts/tier1.sh
#
# The workspace vendors its external dependencies (vendor/ via
# [patch.crates-io]), so everything runs offline.
set -euo pipefail
cd "$(dirname "$0")/.."

# `--workspace` everywhere: the root manifest is both a package (the
# `escalate` facade) and the workspace, so bare `cargo build`/`cargo test`
# would cover only the facade and silently skip every member crate's
# binaries and test targets.
cargo build --release --offline --workspace
cargo test -q --offline --workspace
# The observability crate is dependency-free and cheap: exercise its full
# test matrix (unit + doc tests) explicitly so a workspace-level filter
# can never silently drop it.
cargo test -q --offline -p escalate-obs
# Criterion's `--test` mode runs each kernel benchmark once, unmeasured:
# a smoke check that the scalar/word-parallel differential assertion and
# the bench wiring stay green without paying for real measurement.
cargo bench --offline -p escalate-bench --bench position_kernel -- --test
# Golden-diff regression check over the sub-second experiments: drift in
# the committed results/ corpus fails the gate (full-corpus checks run in
# crates/bench/tests/report.rs and via `report --check --all`).
./target/release/report --check \
  table4 rs_mapping buffer_ablation ca_ablation encoding_sweep psum_ablation
cargo fmt --check
cargo clippy --all-targets --offline --workspace -- -D warnings

echo "tier-1: OK"
