#!/usr/bin/env bash
# Tier-1 gate: release build, full test suite, and clippy with warnings
# denied — the checks every PR must keep green (see ROADMAP.md).
#
# Usage: scripts/tier1.sh
#
# The workspace vendors its external dependencies (vendor/ via
# [patch.crates-io]), so everything runs offline.
set -euo pipefail
cd "$(dirname "$0")/.."

# `--workspace` everywhere: the root manifest is both a package (the
# `escalate` facade) and the workspace, so bare `cargo build`/`cargo test`
# would cover only the facade and silently skip every member crate's
# binaries and test targets.
cargo build --release --offline --workspace
cargo test -q --offline --workspace
# The `simd` feature compiles the std::arch batch-kernel path; dispatch
# is at runtime (is_x86_feature_detected!), so this build+test pass is
# safe on hosts without the intrinsics — it just takes the portable
# fallback there. The kernel_diff proptests force the fast path off and
# on to pin the two monomorphizations byte-identical.
cargo test -q --offline -p escalate-sim --features simd
# The observability crate is dependency-free and cheap: exercise its full
# test matrix (unit + doc tests) explicitly so a workspace-level filter
# can never silently drop it.
cargo test -q --offline -p escalate-obs
# Criterion's `--test` mode runs each kernel benchmark once, unmeasured:
# a smoke check that the scalar/word-parallel/batched differential
# assertion and the bench wiring stay green without paying for real
# measurement (with the simd dispatch compiled in).
cargo bench --offline -p escalate-bench --bench position_kernel \
  --features escalate-sim/simd -- --test
# Golden-diff regression check over the sub-second experiments: drift in
# the committed results/ corpus fails the gate (full-corpus checks run in
# crates/bench/tests/report.rs and via `report --check --all`).
./target/release/report --check \
  table4 rs_mapping buffer_ablation ca_ablation encoding_sweep psum_ablation
cargo fmt --check
cargo clippy --all-targets --offline --workspace -- -D warnings
cargo clippy --all-targets --offline -p escalate-sim --features simd -- -D warnings

echo "tier-1: OK"
