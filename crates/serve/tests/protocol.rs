//! Protocol robustness: malformed frames, oversized requests,
//! mid-stream disconnects, backpressure, single-flight dedupe of
//! identical in-flight jobs, and shutdown-while-draining.
//!
//! Server lifecycles share the process-global metrics slot, so every
//! test that starts a daemon holds [`SERVER_LOCK`].

use escalate_obs::jsonl::{json_string_field, json_u64_field};
use escalate_serve::proto::{read_frame, write_frame, MAX_FRAME};
use escalate_serve::{start, submit, Request, ServeOptions};
use std::io::BufReader;
use std::net::TcpStream;
use std::sync::Mutex;
use std::time::{Duration, Instant};

static SERVER_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    SERVER_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn frame_type(frame: &str) -> String {
    json_string_field(frame, "type").unwrap_or_default()
}

/// A raw connection speaking arbitrary bytes (the well-behaved path is
/// [`submit`]).
struct Raw {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Raw {
    fn connect(port: u16) -> Raw {
        let stream = TcpStream::connect(("127.0.0.1", port)).expect("connect");
        let reader = BufReader::new(stream.try_clone().expect("clone"));
        Raw { stream, reader }
    }

    fn send(&mut self, line: &str) {
        write_frame(&mut self.stream, line).expect("send");
    }

    fn recv(&mut self) -> Option<String> {
        read_frame(&mut self.reader).expect("recv")
    }
}

fn shutdown(port: u16) -> u64 {
    let frames = submit(port, &Request::Shutdown).expect("shutdown");
    let last = frames.last().expect("shutdown frame");
    assert_eq!(frame_type(last), "shutdown", "{last}");
    json_u64_field(last, "jobs_done").expect("jobs_done")
}

/// Polls the daemon's metrics until `counter` reaches `at_least`.
fn wait_for_counter(port: u16, counter: &str, at_least: u64) -> u64 {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let frames = submit(port, &Request::Metrics).expect("metrics");
        let v = json_u64_field(frames.last().expect("metrics frame"), counter).unwrap_or(0);
        if v >= at_least || Instant::now() > deadline {
            return v;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn malformed_frames_get_errors_and_the_connection_stays_usable() {
    let _guard = lock();
    let handle = start(ServeOptions::default()).expect("start");
    let port = handle.port();

    let mut conn = Raw::connect(port);
    for (bad, names) in [
        ("not json at all", "verb"),
        ("{\"verb\": \"frobnicate\"}", "frobnicate"),
        ("{\"verb\": \"simulate\"}", "model"),
        ("{\"verb\": \"simulate\", \"model\": \"LeNet\"}", "LeNet"),
        ("{\"verb\": \"report\", \"experiment\": \"fig99\"}", "fig99"),
    ] {
        conn.send(bad);
        let reply = conn.recv().expect("reply");
        assert_eq!(frame_type(&reply), "error", "{reply}");
        assert!(
            json_string_field(&reply, "message")
                .unwrap_or_default()
                .contains(names),
            "{reply}"
        );
    }
    // The same connection still answers well-formed requests.
    conn.send(&Request::Ping.to_line());
    let reply = conn.recv().expect("pong");
    assert_eq!(frame_type(&reply), "pong", "{reply}");
    drop(conn);

    shutdown(port);
    handle.join().expect("clean exit");
}

#[test]
fn oversized_requests_are_rejected_without_buffering_them() {
    let _guard = lock();
    let handle = start(ServeOptions::default()).expect("start");
    let port = handle.port();

    let mut conn = Raw::connect(port);
    conn.send(&format!(
        "{{\"verb\": \"simulate\", \"model\": \"{}\"}}",
        "x".repeat(MAX_FRAME)
    ));
    let reply = conn.recv().expect("error frame");
    assert_eq!(frame_type(&reply), "error", "{reply}");
    assert!(
        json_string_field(&reply, "message")
            .unwrap_or_default()
            .contains("exceeds"),
        "{reply}"
    );
    // The desynchronized connection is dropped (a clean EOF, or a reset
    // if the unread tail of the oversized line still sat in the socket)...
    let eof = read_frame(&mut conn.reader);
    assert!(
        matches!(eof, Ok(None) | Err(_)),
        "connection closed after oversize: {eof:?}"
    );
    // ...but the daemon keeps serving new ones.
    let frames = submit(port, &Request::Ping).expect("ping");
    assert_eq!(frame_type(frames.last().unwrap()), "pong");

    shutdown(port);
    handle.join().expect("clean exit");
}

#[test]
fn a_mid_stream_disconnect_aborts_the_job_but_not_the_daemon() {
    let _guard = lock();
    let handle = start(ServeOptions::default()).expect("start");
    let port = handle.port();

    let mut conn = Raw::connect(port);
    conn.send(
        &Request::Simulate {
            model: "MobileNet".into(),
            m: 6,
            seeds: 1,
            schedule: "serial".into(),
        }
        .to_line(),
    );
    let accepted = conn.recv().expect("accepted");
    assert_eq!(frame_type(&accepted), "accepted", "{accepted}");
    let unit = conn.recv().expect("first unit");
    assert_eq!(frame_type(&unit), "unit", "{unit}");
    // Hang up with three units still to stream.
    drop(conn);

    // The worker hits the broken pipe, fails the job, and moves on.
    assert!(wait_for_counter(port, "serve.jobs_failed", 1) >= 1);
    let frames = submit(port, &Request::Ping).expect("daemon survives");
    assert_eq!(frame_type(frames.last().unwrap()), "pong");

    shutdown(port);
    handle.join().expect("clean exit");
}

#[test]
fn identical_in_flight_jobs_share_one_artifact_computation() {
    let _guard = lock();
    let handle = start(ServeOptions {
        workers: 2,
        ..ServeOptions::default()
    })
    .expect("start");
    let port = handle.port();

    // A config no other test uses, so this server sees a cold cache key.
    let req = Request::Compress {
        model: "MobileNet".into(),
        m: 5,
        qat: 0,
        seed: 42,
        layers: false,
    };
    let threads: Vec<_> = (0..2)
        .map(|_| {
            let req = req.clone();
            std::thread::spawn(move || submit(port, &req).expect("submit"))
        })
        .collect();
    let outputs: Vec<String> = threads
        .into_iter()
        .map(|t| {
            let frames = t.join().expect("client thread");
            let done = frames.last().expect("done frame").clone();
            assert_eq!(frame_type(&done), "done", "{done}");
            json_string_field(&done, "output").expect("output")
        })
        .collect();
    assert_eq!(outputs[0], outputs[1], "both clients get identical output");

    let frames = submit(port, &Request::Metrics).expect("metrics");
    let metrics = frames.last().expect("metrics frame").clone();
    let misses = json_u64_field(&metrics, "bench.cache_misses").unwrap_or(0);
    let hits = json_u64_field(&metrics, "bench.cache_hits").unwrap_or(0);
    let coalesced = json_u64_field(&metrics, "serve.jobs_coalesced").unwrap_or(0);
    assert_eq!(
        misses, 1,
        "one computation for two identical jobs: {metrics}"
    );
    // Which dedupe layer fired depends on the race between the two
    // submissions and the two workers: both queued together coalesce
    // into one execution; otherwise the second execution rides the
    // first's single-flight artifact slot.
    assert_eq!(
        hits + coalesced,
        1,
        "the second job rides the first's work: {metrics}"
    );

    shutdown(port);
    handle.join().expect("clean exit");
}

#[test]
fn identical_queued_submissions_coalesce_into_one_execution() {
    let _guard = lock();
    let handle = start(ServeOptions {
        workers: 1,
        ..ServeOptions::default()
    })
    .expect("start");
    let port = handle.port();

    // Occupy the single worker with a distinct job (a cold compression
    // config no other test warms) so the identical submissions below all
    // sit in the queue together while it runs.
    let mut occupier = Raw::connect(port);
    occupier.send(
        &Request::Compress {
            model: "MobileNet".into(),
            m: 7,
            qat: 0,
            seed: 42,
            layers: false,
        }
        .to_line(),
    );
    assert_eq!(frame_type(&occupier.recv().expect("reply")), "accepted");
    // Only submit the identical batch once the worker has provably
    // sealed (popped) the occupier — otherwise the first identical job
    // could be popped alone and the other two coalesce separately.
    assert!(wait_for_counter(port, "serve.jobs_executed", 1) >= 1);

    let req = Request::Simulate {
        model: "MobileNet".into(),
        m: 6,
        seeds: 1,
        schedule: "serial".into(),
    };
    let mut conns: Vec<Raw> = (0..3)
        .map(|_| {
            let mut conn = Raw::connect(port);
            conn.send(&req.to_line());
            conn
        })
        .collect();

    // Every client gets a complete stream: accepted, one unit frame per
    // accelerator design, and a done — all tagged with its own job id.
    let mut job_ids = Vec::new();
    let mut outputs = Vec::new();
    for conn in &mut conns {
        let accepted = conn.recv().expect("accepted");
        assert_eq!(frame_type(&accepted), "accepted", "{accepted}");
        let id = json_u64_field(&accepted, "job").expect("job id");
        let mut units = 0;
        loop {
            let frame = conn.recv().expect("stream");
            assert_eq!(json_u64_field(&frame, "job"), Some(id), "{frame}");
            match frame_type(&frame).as_str() {
                "unit" => units += 1,
                "done" => {
                    outputs.push(json_string_field(&frame, "output").expect("output"));
                    break;
                }
                other => panic!("unexpected {other}: {frame}"),
            }
        }
        assert_eq!(units, 4, "one unit frame per design for every client");
        job_ids.push(id);
    }
    job_ids.dedup();
    assert_eq!(job_ids.len(), 3, "three distinct job ids");
    outputs.dedup();
    assert_eq!(outputs.len(), 1, "one rendered output fanned to all");

    // One execution served all three submissions (plus the occupier).
    let frames = submit(port, &Request::Metrics).expect("metrics");
    let metrics = frames.last().expect("metrics frame").clone();
    assert_eq!(
        json_u64_field(&metrics, "serve.jobs_executed"),
        Some(2),
        "occupier + one coalesced batch: {metrics}"
    );
    assert_eq!(
        json_u64_field(&metrics, "serve.jobs_coalesced"),
        Some(2),
        "two riders on the batch: {metrics}"
    );
    assert_eq!(
        json_u64_field(&metrics, "serve.jobs_done"),
        Some(4),
        "every submission completed: {metrics}"
    );

    let jobs_done = shutdown(port);
    assert_eq!(jobs_done, 4);
    handle.join().expect("clean exit");
}

#[test]
fn a_full_queue_answers_rejected_with_a_retry_hint() {
    let _guard = lock();
    let handle = start(ServeOptions {
        workers: 1,
        queue: 1,
        ..ServeOptions::default()
    })
    .expect("start");
    let port = handle.port();

    // Saturate: one job running, one queued, then the queue is full.
    // Submissions race the worker, so flood until a rejection shows up.
    // Distinct seed counts keep the coalescer out of the way (identical
    // queued submissions would attach without consuming a slot).
    let mut conns = Vec::new();
    let mut rejected = None;
    for i in 0..8 {
        let mut conn = Raw::connect(port);
        conn.send(
            &Request::Simulate {
                model: "MobileNet".into(),
                m: 6,
                seeds: i + 1,
                schedule: "serial".into(),
            }
            .to_line(),
        );
        let reply = conn.recv().expect("reply");
        match frame_type(&reply).as_str() {
            "accepted" => conns.push(conn),
            "rejected" => {
                rejected = Some(reply);
                break;
            }
            other => panic!("unexpected {other}: {reply}"),
        }
    }
    let rejected = rejected.expect("a rejection before 8 submissions");
    assert!(
        json_u64_field(&rejected, "retry_after_ms").unwrap_or(0) > 0,
        "{rejected}"
    );
    // Accepted jobs still complete.
    for mut conn in conns {
        loop {
            let frame = conn.recv().expect("stream");
            if frame_type(&frame) == "done" {
                break;
            }
        }
    }

    shutdown(port);
    handle.join().expect("clean exit");
}

#[test]
fn shutdown_drains_accepted_jobs_before_confirming() {
    let _guard = lock();
    let handle = start(ServeOptions {
        workers: 1,
        ..ServeOptions::default()
    })
    .expect("start");
    let port = handle.port();

    // Three accepted jobs, then an immediate shutdown request.
    let mut conns: Vec<Raw> = (0..3)
        .map(|_| {
            let mut conn = Raw::connect(port);
            conn.send(
                &Request::Report {
                    experiment: "table4".into(),
                }
                .to_line(),
            );
            let reply = conn.recv().expect("reply");
            assert_eq!(frame_type(&reply), "accepted", "{reply}");
            conn
        })
        .collect();
    let jobs_done = shutdown(port);
    assert_eq!(jobs_done, 3, "every accepted job drained before the ack");
    for conn in &mut conns {
        loop {
            let frame = conn.recv().expect("each client still got its frames");
            if frame_type(&frame) == "done" {
                break;
            }
        }
    }
    let summary = handle.join().expect("clean exit");
    assert_eq!(summary.jobs_done, 3);
    assert_eq!(summary.jobs_failed, 0);
}
