//! The served output must be byte-identical to the one-shot CLI's: a
//! `simulate` job's `done.output` is exactly what `escalate simulate`
//! prints, and the streamed unit records carry the same numbers.

use escalate_bench::{render, run_model, ACCELERATOR_NAMES};
use escalate_models::ModelProfile;
use escalate_obs::jsonl::{json_f64_field, json_string_field};
use escalate_serve::{start, submit, Request, ServeOptions};
use escalate_sim::SimConfig;

#[test]
fn served_simulate_is_bit_identical_to_the_one_shot_cli() {
    let model = "MobileNet";
    let seeds = 2u64;

    // The one-shot path: exactly what `escalate simulate MobileNet
    // --seeds 2` renders (cmd_simulate = run_model + render_simulate).
    let profile = ModelProfile::for_model(model).expect("model");
    let cfg = SimConfig::default();
    let expected_run = run_model(&profile, &cfg, seeds).expect("one-shot run");
    let expected = render::render_simulate(&expected_run, &cfg);

    // The served path.
    let handle = start(ServeOptions::default()).expect("start");
    let port = handle.port();
    let frames = submit(
        port,
        &Request::Simulate {
            model: model.into(),
            m: 6,
            seeds,
            schedule: "serial".into(),
        },
    )
    .expect("submit");
    let shutdown = submit(port, &Request::Shutdown);
    handle.join().expect("clean exit");
    assert!(shutdown.is_ok());

    let done = frames.last().expect("done frame");
    assert_eq!(
        json_string_field(done, "type").as_deref(),
        Some("done"),
        "{done}"
    );
    let output = json_string_field(done, "output").expect("output");
    assert_eq!(
        output, expected,
        "served output must be byte-identical to the one-shot table"
    );

    // The streamed unit records carry the same numbers, in design order.
    let units: Vec<&String> = frames
        .iter()
        .filter(|f| json_string_field(f, "type").as_deref() == Some("unit"))
        .collect();
    assert_eq!(units.len(), ACCELERATOR_NAMES.len());
    let runs = [
        &expected_run.eyeriss,
        &expected_run.scnn,
        &expected_run.sparten,
        &expected_run.escalate,
    ];
    for (unit, run) in units.iter().zip(runs) {
        assert_eq!(
            json_string_field(unit, "name").as_deref(),
            Some(run.name.as_str()),
            "{unit}"
        );
        assert_eq!(
            json_f64_field(unit, "mean_cycles")
                .expect("cycles")
                .to_bits(),
            run.cycles.to_bits(),
            "{unit}"
        );
        assert_eq!(
            json_f64_field(unit, "mean_energy_pj")
                .expect("energy")
                .to_bits(),
            run.energy_pj.to_bits(),
            "{unit}"
        );
    }
}
