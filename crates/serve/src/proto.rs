//! The `escalate-serve/v1` wire protocol: line-delimited JSON over TCP.
//!
//! One connection carries one request — a single JSON object on one line —
//! and receives a stream of response frames, one JSON object per line,
//! until the server closes the connection. Control verbs (`ping`,
//! `metrics`, `shutdown`) answer with exactly one frame; job verbs
//! (`simulate`, `compress`, `report`) answer with an `accepted` (or
//! `rejected`/`error`) frame, then stream one `unit` frame per completed
//! work unit — each embedding an `escalate-run-manifest/v1` record — and
//! finish with a `done` frame carrying the rendered output, byte-identical
//! to the one-shot CLI's. Frames and requests are hand-rendered/scanned
//! (no external JSON dependency), mirroring the rest of the workspace.

use escalate_obs::jsonl::{json_string_field, json_u64_field};
use escalate_obs::JsonWriter;
use std::io::{BufRead, Read, Write};

/// Protocol schema identifier (the `"schema"` field of `accepted` frames).
pub const PROTOCOL_SCHEMA: &str = "escalate-serve/v1";

/// Schema tag carried by every streamed unit record, shared with the
/// one-shot CLI's `--metrics` manifest.
pub const MANIFEST_SCHEMA: &str = "escalate-run-manifest/v1";

/// Upper bound on one frame line, request or response. A request larger
/// than this is rejected before parsing (the daemon never buffers an
/// unbounded line from an untrusted client).
pub const MAX_FRAME: usize = 64 * 1024;

/// How long a rejected client should wait before retrying, in the
/// `retry_after_ms` field of `rejected` frames.
pub const RETRY_AFTER_MS: u64 = 250;

/// A parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Four-accelerator comparison (the `escalate simulate` table).
    Simulate {
        /// Model spec: a zoo name, `@FILE` network description, or
        /// `gen:NAME[:key=value,...]` generator (see `escalate_models::resolve`).
        model: String,
        /// Basis kernels M.
        m: usize,
        /// Input seeds averaged.
        seeds: u64,
        /// Schedule spelling (`"serial"` or `"pipelined"`); the wire
        /// default is `"serial"`, which keeps old clients byte-identical.
        schedule: String,
    },
    /// Compression pipeline (the `escalate compress` report).
    Compress {
        /// Model name.
        model: String,
        /// Basis kernels M.
        m: usize,
        /// QAT epochs.
        qat: usize,
        /// Compression RNG seed.
        seed: u64,
        /// Include the per-layer table.
        layers: bool,
    },
    /// One registered experiment (the `escalate report <NAME>` text).
    Report {
        /// Registry name of the experiment.
        experiment: String,
    },
    /// Render the daemon's metrics registry.
    Metrics,
    /// Liveness probe.
    Ping,
    /// Graceful drain: finish queued jobs, then exit.
    Shutdown,
}

impl Request {
    /// The verb string this request parses from / renders to.
    pub fn verb(&self) -> &'static str {
        match self {
            Request::Simulate { .. } => "simulate",
            Request::Compress { .. } => "compress",
            Request::Report { .. } => "report",
            Request::Metrics => "metrics",
            Request::Ping => "ping",
            Request::Shutdown => "shutdown",
        }
    }

    /// Whether this request enqueues a job (as opposed to a control verb
    /// the accept loop answers inline).
    pub fn is_job(&self) -> bool {
        matches!(
            self,
            Request::Simulate { .. } | Request::Compress { .. } | Request::Report { .. }
        )
    }

    /// Renders the request as its one-line JSON wire form.
    pub fn to_line(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("verb", self.verb());
        match self {
            Request::Simulate {
                model,
                m,
                seeds,
                schedule,
            } => {
                w.field_str("model", model);
                w.field_u64("m", *m as u64);
                w.field_u64("seeds", *seeds);
                w.field_str("schedule", schedule);
            }
            Request::Compress {
                model,
                m,
                qat,
                seed,
                layers,
            } => {
                w.field_str("model", model);
                w.field_u64("m", *m as u64);
                w.field_u64("qat", *qat as u64);
                w.field_u64("seed", *seed);
                w.field_bool("layers", *layers);
            }
            Request::Report { experiment } => {
                w.field_str("experiment", experiment);
            }
            Request::Metrics | Request::Ping | Request::Shutdown => {}
        }
        w.end_object();
        w.finish()
    }
}

/// Extracts a boolean field from one request line (the obs scanners cover
/// strings and numbers; requests also carry flags).
fn json_bool_field(line: &str, key: &str) -> Option<bool> {
    let needle = format!("\"{key}\": ");
    let rest = &line[line.find(&needle)? + needle.len()..];
    if rest.starts_with("true") {
        Some(true)
    } else if rest.starts_with("false") {
        Some(false)
    } else {
        None
    }
}

/// Parses one request line.
///
/// # Errors
///
/// Returns a user-facing message naming the missing/invalid field; the
/// server sends it back verbatim in an `error` frame.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let verb = json_string_field(line, "verb")
        .ok_or_else(|| "request has no \"verb\" field".to_string())?;
    let model = |l: &str| {
        json_string_field(l, "model")
            .ok_or_else(|| format!("{verb:?} request has no \"model\" field"))
    };
    match verb.as_str() {
        "simulate" => Ok(Request::Simulate {
            model: model(line)?,
            m: json_u64_field(line, "m").unwrap_or(6) as usize,
            seeds: json_u64_field(line, "seeds").unwrap_or(1),
            schedule: json_string_field(line, "schedule").unwrap_or_else(|| "serial".to_string()),
        }),
        "compress" => Ok(Request::Compress {
            model: model(line)?,
            m: json_u64_field(line, "m").unwrap_or(6) as usize,
            qat: json_u64_field(line, "qat").unwrap_or(0) as usize,
            seed: json_u64_field(line, "seed").unwrap_or(42),
            layers: json_bool_field(line, "layers").unwrap_or(false),
        }),
        "report" => Ok(Request::Report {
            experiment: json_string_field(line, "experiment")
                .ok_or_else(|| "\"report\" request has no \"experiment\" field".to_string())?,
        }),
        "metrics" => Ok(Request::Metrics),
        "ping" => Ok(Request::Ping),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!(
            "unknown verb {other:?} (expected simulate|compress|report|metrics|ping|shutdown)"
        )),
    }
}

/// Reads one frame line, bounded by [`MAX_FRAME`]. `Ok(None)` on a clean
/// EOF before any byte of a new frame.
///
/// # Errors
///
/// An oversized frame returns `InvalidData` (the caller reports it and
/// drops the connection); other I/O failures propagate.
pub fn read_frame<R: BufRead>(r: &mut R) -> std::io::Result<Option<String>> {
    let mut line = String::new();
    let n = r.by_ref().take(MAX_FRAME as u64 + 1).read_line(&mut line)?;
    if n == 0 {
        return Ok(None);
    }
    if line.len() > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame exceeds {MAX_FRAME} bytes"),
        ));
    }
    Ok(Some(line.trim_end_matches(['\n', '\r']).to_string()))
}

/// Writes one frame line and flushes it (streamed frames must not sit in
/// a buffer while later units run).
///
/// # Errors
///
/// Propagates write failures (a disconnected client).
pub fn write_frame(w: &mut dyn Write, frame: &str) -> std::io::Result<()> {
    w.write_all(frame.as_bytes())?;
    w.write_all(b"\n")?;
    w.flush()
}

fn frame(kind: &str, fill: impl FnOnce(&mut JsonWriter)) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("type", kind);
    fill(&mut w);
    w.end_object();
    w.finish()
}

/// `accepted`: the job is queued; `unit`/`done` frames follow.
pub fn frame_accepted(job: u64, queue_depth: usize) -> String {
    frame("accepted", |w| {
        w.field_str("schema", PROTOCOL_SCHEMA);
        w.field_u64("job", job);
        w.field_u64("queue_depth", queue_depth as u64);
    })
}

/// `rejected`: backpressure — the queue is full (or draining); retry
/// after `retry_after_ms`.
pub fn frame_rejected(reason: &str, retry_after_ms: u64) -> String {
    frame("rejected", |w| {
        w.field_str("reason", reason);
        w.field_u64("retry_after_ms", retry_after_ms);
    })
}

/// `error`: the request or job failed; the connection closes after this.
pub fn frame_error(job: Option<u64>, message: &str) -> String {
    frame("error", |w| {
        if let Some(id) = job {
            w.field_u64("job", id);
        }
        w.field_str("message", message);
    })
}

/// `unit`: one completed work unit, embedding its pre-rendered
/// [`MANIFEST_SCHEMA`] record verbatim.
pub fn frame_unit(job: u64, record: &str) -> String {
    frame("unit", |w| {
        w.field_u64("job", job);
        w.key("record");
        w.raw(record);
    })
}

/// `done`: the job finished; `output` is the rendered text the one-shot
/// CLI would have printed.
pub fn frame_done(job: u64, units: u64, ms: f64, output: &str) -> String {
    frame("done", |w| {
        w.field_u64("job", job);
        w.field_u64("units", units);
        w.field_f64("ms", ms);
        w.field_str("output", output);
    })
}

/// `pong`: liveness reply.
pub fn frame_pong() -> String {
    frame("pong", |w| {
        w.field_str("schema", PROTOCOL_SCHEMA);
    })
}

/// `metrics`: the registry snapshot, embedded as rendered JSON.
pub fn frame_metrics(registry_json: &str) -> String {
    frame("metrics", |w| {
        w.key("registry");
        w.raw(registry_json);
    })
}

/// `shutdown`: sent to the requester after the queue drained.
pub fn frame_shutdown(jobs_done: u64) -> String {
    frame("shutdown", |w| {
        w.field_bool("drained", true);
        w.field_u64("jobs_done", jobs_done);
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn requests_round_trip_through_their_wire_form() {
        let reqs = [
            Request::Simulate {
                model: "MobileNet".into(),
                m: 6,
                seeds: 2,
                schedule: "pipelined".into(),
            },
            Request::Compress {
                model: "VGG16".into(),
                m: 5,
                qat: 1,
                seed: 7,
                layers: true,
            },
            Request::Report {
                experiment: "table4".into(),
            },
            Request::Metrics,
            Request::Ping,
            Request::Shutdown,
        ];
        for req in reqs {
            let line = req.to_line();
            assert_eq!(parse_request(&line).as_ref(), Ok(&req), "{line}");
        }
    }

    #[test]
    fn request_defaults_apply_when_fields_are_omitted() {
        let req = parse_request("{\"verb\": \"simulate\", \"model\": \"MobileNet\"}").unwrap();
        assert_eq!(
            req,
            Request::Simulate {
                model: "MobileNet".into(),
                m: 6,
                seeds: 1,
                schedule: "serial".into(),
            }
        );
    }

    #[test]
    fn malformed_requests_name_the_problem() {
        assert!(parse_request("{}").unwrap_err().contains("verb"));
        assert!(parse_request("{\"verb\": \"simulate\"}")
            .unwrap_err()
            .contains("model"));
        assert!(parse_request("{\"verb\": \"report\"}")
            .unwrap_err()
            .contains("experiment"));
        assert!(parse_request("{\"verb\": \"frobnicate\"}")
            .unwrap_err()
            .contains("frobnicate"));
    }

    #[test]
    fn read_frame_bounds_line_length() {
        let huge = format!("{}\n", "x".repeat(MAX_FRAME + 10));
        let err = read_frame(&mut BufReader::new(huge.as_bytes())).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);

        let ok = "{\"verb\": \"ping\"}\nrest";
        let mut r = BufReader::new(ok.as_bytes());
        assert_eq!(
            read_frame(&mut r).unwrap().as_deref(),
            Some("{\"verb\": \"ping\"}")
        );
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some("rest"));
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF");
    }

    #[test]
    fn frames_are_one_line_json_objects() {
        for f in [
            frame_accepted(1, 2),
            frame_rejected("queue full", RETRY_AFTER_MS),
            frame_error(Some(3), "boom"),
            frame_unit(1, "{\"key\": \"k\"}"),
            frame_done(1, 4, 12.5, "table\ntext"),
            frame_pong(),
            frame_metrics("{\"counters\": {}}"),
            frame_shutdown(9),
        ] {
            assert!(!f.contains('\n'), "frames must be single lines: {f}");
            assert!(f.starts_with("{\"type\": \""), "{f}");
        }
        let done = frame_done(1, 4, 12.5, "table\ntext");
        assert_eq!(
            json_string_field(&done, "output").as_deref(),
            Some("table\ntext"),
            "the rendered output survives the JSON round trip"
        );
        let unit = frame_unit(7, "{\"key\": \"simulate/m/ESCALATE\"}");
        assert!(unit.contains("\"record\": {\"key\": \"simulate/m/ESCALATE\"}"));
    }
}
