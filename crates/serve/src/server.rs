//! The daemon: a TCP accept loop, a bounded job queue, and a pool of
//! worker threads draining it through the run-plan layer.
//!
//! One thread per connection parses frames and answers control verbs
//! inline; job verbs compile ([`CompiledJob::compile`]) and enqueue.
//! The queue is bounded — a full queue answers `rejected` with a
//! `retry_after_ms` hint instead of buffering unboundedly. Identical
//! submissions still waiting in the queue coalesce: the work executes
//! once and its frame stream fans out to every waiting client under
//! each client's own job id (`serve.jobs_coalesced` counts the riders). `shutdown`
//! stops the accept loop, drains every queued job, then confirms to the
//! requester. A long-running daemon refuses to start on malformed
//! tuning env vars (`ESCALATE_THREADS`/`ESCALATE_SEEDS`/
//! `ESCALATE_CACHE_CAP`): a warn-and-fall-back default that would be a
//! one-shot papercut silently misconfigures every job the daemon ever
//! serves.

use crate::job::CompiledJob;
use crate::proto::{
    frame_accepted, frame_done, frame_error, frame_metrics, frame_pong, frame_rejected,
    frame_shutdown, frame_unit, parse_request, read_frame, write_frame, Request, RETRY_AFTER_MS,
};
use escalate_bench::experiments::ExpError;
use escalate_bench::plan::{UnitOutput, UnitSink, WorkUnit};
use escalate_bench::{CACHE_CAP_ENV, SEEDS_ENV};
use escalate_core::par::{strict_positive_env, THREADS_ENV};
use escalate_obs::Registry;
use std::collections::VecDeque;
use std::io::BufReader;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// How the daemon is configured (CLI flags map onto this 1:1).
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Port to bind on 127.0.0.1; 0 picks an ephemeral port.
    pub port: u16,
    /// Worker threads draining the job queue.
    pub workers: usize,
    /// Job queue capacity; a full queue rejects with backpressure.
    pub queue: usize,
    /// Artifact cache capacity override (entries); `None` keeps the
    /// process default.
    pub cache: Option<usize>,
    /// When set, the bound port is written here (as one decimal line) —
    /// how scripts find an ephemerally-bound daemon.
    pub port_file: Option<PathBuf>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            port: 0,
            workers: 2,
            queue: 8,
            cache: None,
            port_file: None,
        }
    }
}

/// What a completed daemon run did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeSummary {
    /// Jobs that finished with a `done` frame.
    pub jobs_done: u64,
    /// Jobs that failed with an `error` frame.
    pub jobs_failed: u64,
}

fn lock_recover<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Refuses to start when a tuning env var is set but malformed.
fn audit_env() -> Result<(), String> {
    for var in [THREADS_ENV, SEEDS_ENV, CACHE_CAP_ENV] {
        strict_positive_env(var).map_err(|e| format!("refusing to start: {e}"))?;
    }
    Ok(())
}

/// One client waiting on a queued job: its own job id plus the
/// submitting connection. The mutex serializes frame writes with the
/// connection thread (the `accepted` frame is written under this lock
/// *before* the job becomes poppable, so no unit frame can precede it).
struct Client {
    id: u64,
    stream: Arc<Mutex<TcpStream>>,
}

/// One accepted job waiting for (or on) a worker. Identical submissions
/// that arrive while it is still queued attach as extra clients
/// (coalescing): the work executes once and every frame fans out to all
/// of them, each under its own job id.
struct QueuedJob {
    job: CompiledJob,
    /// [`CompiledJob::coalesce_key`], precomputed at submission.
    key: String,
    clients: Vec<Client>,
}

/// How [`JobQueue::try_push`] disposed of a submission.
enum Push {
    /// A new queue entry, at this depth.
    Queued(usize),
    /// Attached to an identical entry still in the queue (depth of the
    /// queue it joined); the work will run once for both.
    Coalesced(usize),
    /// Queue full or closed — the submitter retries later.
    Rejected,
}

/// A bounded MPMC queue: `try_push` fails fast when full (backpressure),
/// `pop` blocks until a job or close. A popped job is sealed: later
/// identical submissions start a fresh entry rather than racing the
/// in-flight execution's frame stream.
struct JobQueue {
    inner: Mutex<(VecDeque<QueuedJob>, bool)>,
    ready: Condvar,
    cap: usize,
}

impl JobQueue {
    fn new(cap: usize) -> Self {
        JobQueue {
            inner: Mutex::new((VecDeque::new(), false)),
            ready: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Enqueues or coalesces; a full (or closed) queue consumes the job
    /// and returns [`Push::Rejected`] — the caller answers `rejected`
    /// and the submitter retries with a fresh submission. Coalesced
    /// submissions never consume a queue slot (their work is already
    /// queued), so identical clients cannot be rejected behind their own
    /// job.
    fn try_push(&self, mut candidate: QueuedJob) -> Push {
        let mut inner = lock_recover(&self.inner);
        if inner.1 {
            return Push::Rejected;
        }
        if let Some(entry) = inner.0.iter_mut().find(|j| j.key == candidate.key) {
            entry.clients.append(&mut candidate.clients);
            return Push::Coalesced(inner.0.len());
        }
        if inner.0.len() >= self.cap {
            return Push::Rejected;
        }
        inner.0.push_back(candidate);
        let depth = inner.0.len();
        drop(inner);
        self.ready.notify_one();
        Push::Queued(depth)
    }

    /// Blocks for the next job; `None` once closed *and* drained.
    fn pop(&self) -> Option<QueuedJob> {
        let mut inner = lock_recover(&self.inner);
        loop {
            if let Some(job) = inner.0.pop_front() {
                return Some(job);
            }
            if inner.1 {
                return None;
            }
            inner = self
                .ready
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Stops accepting; blocked `pop`s return once the backlog drains.
    fn close(&self) {
        lock_recover(&self.inner).1 = true;
        self.ready.notify_all();
    }
}

/// Streams one `unit` frame per record down every waiting connection,
/// each under that client's own job id. A client whose write fails
/// (client gone) is dropped from the fan-out and counted as failed; only
/// once *every* client is gone does the failure surface as
/// [`ExpError::Io`], aborting the job early in `execute_streaming` — the
/// daemon itself survives either way.
struct SocketSink {
    clients: Vec<Client>,
    /// Parallel to `clients`: set once a write to that client failed.
    dead: Vec<bool>,
    units: u64,
}

impl SocketSink {
    fn new(clients: Vec<Client>) -> SocketSink {
        let dead = vec![false; clients.len()];
        SocketSink {
            clients,
            dead,
            units: 0,
        }
    }

    /// Writes one frame to every live client, rendered per client id.
    /// `Err` only when no live client remains.
    fn broadcast(&mut self, render: impl Fn(&Client) -> String) -> Result<(), ExpError> {
        let mut last_err = None;
        for (client, dead) in self.clients.iter().zip(self.dead.iter_mut()) {
            if *dead {
                continue;
            }
            let mut s = lock_recover(&client.stream);
            if let Err(e) = write_frame(&mut *s, &render(client)) {
                *dead = true;
                last_err = Some(e);
            }
        }
        match last_err {
            Some(e) if self.dead.iter().all(|d| *d) => Err(ExpError::Io(e)),
            _ => Ok(()),
        }
    }

    fn live_count(&self) -> u64 {
        self.dead.iter().filter(|d| !**d).count() as u64
    }
}

impl UnitSink for SocketSink {
    fn write_unit(&mut self, _unit: &WorkUnit, out: UnitOutput) -> Result<(), ExpError> {
        for record in &out.jsonl {
            self.broadcast(|client| frame_unit(client.id, record))?;
        }
        self.units += 1;
        Ok(())
    }
}

struct Shared {
    queue: JobQueue,
    registry: Arc<Registry>,
    shutting_down: AtomicBool,
    next_job: AtomicU64,
    jobs_done: AtomicU64,
    jobs_failed: AtomicU64,
    /// The connection that requested shutdown; it gets the final
    /// `shutdown` frame after the queue drains.
    shutdown_stream: Mutex<Option<Arc<Mutex<TcpStream>>>>,
    port: u16,
}

/// A running daemon started in-process by [`start`].
pub struct Handle {
    port: u16,
    thread: std::thread::JoinHandle<Result<ServeSummary, String>>,
}

impl Handle {
    /// The bound port (useful with `ServeOptions::port == 0`).
    pub fn port(&self) -> u16 {
        self.port
    }

    /// Waits for the daemon to exit (something must send `shutdown`).
    ///
    /// # Errors
    ///
    /// Returns the daemon's startup/runtime error message.
    ///
    /// # Panics
    ///
    /// Propagates a panic from the daemon thread.
    pub fn join(self) -> Result<ServeSummary, String> {
        self.thread.join().expect("serve thread panicked")
    }
}

/// Binds and runs the daemon on a background thread — the in-process
/// form behind the load generator and the integration tests.
///
/// # Errors
///
/// Returns the bind/startup failure message.
pub fn start(opts: ServeOptions) -> Result<Handle, String> {
    audit_env()?;
    let listener = TcpListener::bind(("127.0.0.1", opts.port))
        .map_err(|e| format!("cannot bind 127.0.0.1:{}: {e}", opts.port))?;
    let port = listener
        .local_addr()
        .map_err(|e| format!("cannot read bound address: {e}"))?
        .port();
    let thread = std::thread::Builder::new()
        .name("escalate-serve".into())
        .spawn(move || serve_on(listener, &opts))
        .map_err(|e| format!("cannot spawn serve thread: {e}"))?;
    Ok(Handle { port, thread })
}

/// Runs the daemon on an already-bound listener until a `shutdown`
/// request drains it. Installs a fresh metrics registry for the run
/// (restoring whatever was installed before on exit) and honours
/// `opts.cache` / `opts.port_file`.
///
/// # Errors
///
/// Returns startup failures (env audit, port file) as messages; runtime
/// per-connection failures are reported to that client and survived.
pub fn serve_on(listener: TcpListener, opts: &ServeOptions) -> Result<ServeSummary, String> {
    audit_env()?;
    if let Some(cap) = opts.cache {
        escalate_bench::set_artifact_cache_capacity(cap);
    }
    let port = listener
        .local_addr()
        .map_err(|e| format!("cannot read bound address: {e}"))?
        .port();
    if let Some(path) = &opts.port_file {
        std::fs::write(path, format!("{port}\n"))
            .map_err(|e| format!("cannot write port file {}: {e}", path.display()))?;
    }

    let registry = Arc::new(Registry::new());
    let previous = escalate_obs::install(Arc::clone(&registry));

    let shared = Arc::new(Shared {
        queue: JobQueue::new(opts.queue),
        registry: Arc::clone(&registry),
        shutting_down: AtomicBool::new(false),
        next_job: AtomicU64::new(1),
        jobs_done: AtomicU64::new(0),
        jobs_failed: AtomicU64::new(0),
        shutdown_stream: Mutex::new(None),
        port,
    });

    let workers: Vec<_> = (0..opts.workers.max(1))
        .map(|i| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("escalate-serve-worker-{i}"))
                .spawn(move || worker_loop(&shared))
                .map_err(|e| format!("cannot spawn worker: {e}"))
        })
        .collect::<Result<_, _>>()?;

    let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
    for stream in listener.incoming() {
        if shared.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(&shared);
        if let Ok(h) = std::thread::Builder::new()
            .name("escalate-serve-conn".into())
            .spawn(move || handle_connection(stream, &shared))
        {
            conns.push(h);
        }
        conns.retain(|h| !h.is_finished());
    }

    // Drain: no new connections; finish every queued job, then confirm.
    for h in conns {
        let _ = h.join();
    }
    shared.queue.close();
    for w in workers {
        let _ = w.join();
    }
    let summary = ServeSummary {
        jobs_done: shared.jobs_done.load(Ordering::SeqCst),
        jobs_failed: shared.jobs_failed.load(Ordering::SeqCst),
    };
    if let Some(stream) = lock_recover(&shared.shutdown_stream).take() {
        let mut s = lock_recover(&stream);
        let _ = write_frame(&mut *s, &frame_shutdown(summary.jobs_done));
    }

    escalate_obs::uninstall();
    if let Some(prev) = previous {
        escalate_obs::install(prev);
    }
    if let Some(path) = &opts.port_file {
        let _ = std::fs::remove_file(path);
    }
    Ok(summary)
}

/// Reads frames off one connection until EOF (or shutdown).
fn handle_connection(stream: TcpStream, shared: &Shared) {
    // Bound how long an idle connection can pin its thread once a drain
    // starts; sub-second so shutdown isn't held hostage by idle clients.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let stream = Arc::new(Mutex::new(stream));

    loop {
        let frame = match read_frame(&mut reader) {
            Ok(None) => break,
            Ok(Some(f)) => f,
            Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                // Oversized line: the stream is desynchronized; report
                // and drop the connection.
                let mut s = lock_recover(&stream);
                let _ = write_frame(&mut *s, &frame_error(None, &e.to_string()));
                break;
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shared.shutting_down.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
            Err(_) => break,
        };
        escalate_obs::counter_add("serve.frames", 1);
        let req = match parse_request(&frame) {
            Ok(req) => req,
            Err(msg) => {
                escalate_obs::counter_add("serve.bad_requests", 1);
                let mut s = lock_recover(&stream);
                if write_frame(&mut *s, &frame_error(None, &msg)).is_err() {
                    break;
                }
                continue;
            }
        };
        match req {
            Request::Ping => {
                let mut s = lock_recover(&stream);
                if write_frame(&mut *s, &frame_pong()).is_err() {
                    break;
                }
            }
            Request::Metrics => {
                let json = shared.registry.to_json();
                let mut s = lock_recover(&stream);
                if write_frame(&mut *s, &frame_metrics(&json)).is_err() {
                    break;
                }
            }
            Request::Shutdown => {
                *lock_recover(&shared.shutdown_stream) = Some(Arc::clone(&stream));
                shared.shutting_down.store(true, Ordering::SeqCst);
                // Wake the accept loop so it notices the flag.
                let _ = TcpStream::connect(("127.0.0.1", shared.port));
                break;
            }
            req => submit_job(&req, &stream, shared),
        }
    }
}

/// Compiles and enqueues one job verb, answering `accepted`, `rejected`,
/// or `error` on the submitting connection.
fn submit_job(req: &Request, stream: &Arc<Mutex<TcpStream>>, shared: &Shared) {
    debug_assert!(req.is_job());
    if shared.shutting_down.load(Ordering::SeqCst) {
        let mut s = lock_recover(stream);
        let _ = write_frame(&mut *s, &frame_rejected("shutting down", RETRY_AFTER_MS));
        return;
    }
    let job = match CompiledJob::compile(req) {
        Ok(job) => job,
        Err(msg) => {
            escalate_obs::counter_add("serve.bad_requests", 1);
            let mut s = lock_recover(stream);
            let _ = write_frame(&mut *s, &frame_error(None, &msg));
            return;
        }
    };
    let id = shared.next_job.fetch_add(1, Ordering::SeqCst);
    let key = job.coalesce_key();
    let queued = QueuedJob {
        job,
        key,
        clients: vec![Client {
            id,
            stream: Arc::clone(stream),
        }],
    };
    // Hold the stream lock across enqueue + accepted-frame write: the
    // worker's first unit frame needs this lock, so `accepted` always
    // reaches the wire first even though the job is already visible
    // (coalesced submissions included — a worker popping the shared
    // entry blocks on this lock before it can fan a frame here).
    let mut s = lock_recover(stream);
    match shared.queue.try_push(queued) {
        Push::Queued(depth) => {
            escalate_obs::counter_add("serve.jobs_accepted", 1);
            let _ = write_frame(&mut *s, &frame_accepted(id, depth));
        }
        Push::Coalesced(depth) => {
            escalate_obs::counter_add("serve.jobs_accepted", 1);
            escalate_obs::counter_add("serve.jobs_coalesced", 1);
            let _ = write_frame(&mut *s, &frame_accepted(id, depth));
        }
        Push::Rejected => {
            escalate_obs::counter_add("serve.jobs_rejected", 1);
            let _ = write_frame(&mut *s, &frame_rejected("queue full", RETRY_AFTER_MS));
        }
    }
}

/// One worker: pop (sealing the popped entry's client set), run once,
/// fan the stream out, report per client — until the queue closes.
fn worker_loop(shared: &Shared) {
    while let Some(queued) = shared.queue.pop() {
        let verb = queued.job.verb();
        let submissions = queued.clients.len() as u64;
        escalate_obs::counter_add("serve.jobs_executed", 1);
        let started = Instant::now();
        let mut sink = SocketSink::new(queued.clients);
        let result = {
            let _span = escalate_obs::span_labeled("serve.job", verb);
            queued.job.run(&mut sink)
        };
        let ms = started.elapsed().as_secs_f64() * 1e3;
        match result {
            Ok(output) => {
                // Every client whose stream survived the unit frames
                // gets its own complete `done`; ones that hung up
                // mid-stream failed *their* submission without failing
                // the shared work. Counted before the frames go out so a
                // client that reads its `done` always sees it reflected
                // in the metrics.
                let done = sink.live_count();
                if done > 0 {
                    shared.jobs_done.fetch_add(done, Ordering::SeqCst);
                    escalate_obs::counter_add("serve.jobs_done", done);
                }
                let failed = submissions - done;
                if failed > 0 {
                    shared.jobs_failed.fetch_add(failed, Ordering::SeqCst);
                    escalate_obs::counter_add("serve.jobs_failed", failed);
                }
                let units = sink.units;
                let _ = sink.broadcast(|client| frame_done(client.id, units, ms, &output));
            }
            Err(e) => {
                shared.jobs_failed.fetch_add(submissions, Ordering::SeqCst);
                escalate_obs::counter_add("serve.jobs_failed", submissions);
                let msg = e.to_string();
                let _ = sink.broadcast(|client| frame_error(Some(client.id), &msg));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_stream() -> Arc<Mutex<TcpStream>> {
        // A connected pair via a throwaway listener.
        let l = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let c = TcpStream::connect(l.local_addr().unwrap()).unwrap();
        let _ = l.accept().unwrap();
        Arc::new(Mutex::new(c))
    }

    fn test_job(id: u64, experiment: &str) -> QueuedJob {
        let job = CompiledJob::compile(&Request::Report {
            experiment: experiment.into(),
        })
        .unwrap();
        QueuedJob {
            key: job.coalesce_key(),
            job,
            clients: vec![Client {
                id,
                stream: test_stream(),
            }],
        }
    }

    #[test]
    fn the_queue_bounds_depth_and_drains_on_close() {
        let q = JobQueue::new(1);
        // Distinct experiments: distinct coalesce keys, so the second
        // push contends for a queue slot instead of attaching.
        assert!(matches!(q.try_push(test_job(1, "table4")), Push::Queued(1)));
        assert!(
            matches!(q.try_push(test_job(2, "fig7")), Push::Rejected),
            "cap 1 rejects the second distinct job"
        );
        q.close();
        assert!(
            matches!(q.try_push(test_job(3, "fig7")), Push::Rejected),
            "closed queue rejects"
        );
        let popped = q.pop().expect("backlog drains");
        assert_eq!(popped.clients[0].id, 1);
        assert!(q.pop().is_none(), "then closed");
    }

    #[test]
    fn identical_submissions_coalesce_until_popped() {
        let q = JobQueue::new(1);
        assert!(matches!(q.try_push(test_job(1, "table4")), Push::Queued(1)));
        // An identical submission attaches instead of being rejected,
        // even though the queue is at capacity.
        assert!(matches!(
            q.try_push(test_job(2, "table4")),
            Push::Coalesced(1)
        ));
        let popped = q.pop().expect("one sealed entry");
        assert_eq!(
            popped.clients.iter().map(|c| c.id).collect::<Vec<_>>(),
            [1, 2],
            "both clients ride the one execution, submission order kept"
        );
        // The entry is sealed: the next identical submission starts a
        // fresh one rather than racing the in-flight stream.
        assert!(matches!(q.try_push(test_job(3, "table4")), Push::Queued(1)));
    }

    #[test]
    fn env_audit_refuses_malformed_tuning_vars() {
        // Serialized via a unique var name to avoid cross-test races.
        std::env::set_var(THREADS_ENV, "zero");
        let err = audit_env().unwrap_err();
        std::env::remove_var(THREADS_ENV);
        assert!(err.contains(THREADS_ENV), "{err}");
        assert!(audit_env().is_ok());
    }
}
