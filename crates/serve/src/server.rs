//! The daemon: a TCP accept loop, a bounded job queue, and a pool of
//! worker threads draining it through the run-plan layer.
//!
//! One thread per connection parses frames and answers control verbs
//! inline; job verbs compile ([`CompiledJob::compile`]) and enqueue.
//! The queue is bounded — a full queue answers `rejected` with a
//! `retry_after_ms` hint instead of buffering unboundedly. `shutdown`
//! stops the accept loop, drains every queued job, then confirms to the
//! requester. A long-running daemon refuses to start on malformed
//! tuning env vars (`ESCALATE_THREADS`/`ESCALATE_SEEDS`/
//! `ESCALATE_CACHE_CAP`): a warn-and-fall-back default that would be a
//! one-shot papercut silently misconfigures every job the daemon ever
//! serves.

use crate::job::CompiledJob;
use crate::proto::{
    frame_accepted, frame_done, frame_error, frame_metrics, frame_pong, frame_rejected,
    frame_shutdown, frame_unit, parse_request, read_frame, write_frame, Request, RETRY_AFTER_MS,
};
use escalate_bench::experiments::ExpError;
use escalate_bench::plan::{UnitOutput, UnitSink, WorkUnit};
use escalate_bench::{CACHE_CAP_ENV, SEEDS_ENV};
use escalate_core::par::{strict_positive_env, THREADS_ENV};
use escalate_obs::Registry;
use std::collections::VecDeque;
use std::io::BufReader;
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// How the daemon is configured (CLI flags map onto this 1:1).
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Port to bind on 127.0.0.1; 0 picks an ephemeral port.
    pub port: u16,
    /// Worker threads draining the job queue.
    pub workers: usize,
    /// Job queue capacity; a full queue rejects with backpressure.
    pub queue: usize,
    /// Artifact cache capacity override (entries); `None` keeps the
    /// process default.
    pub cache: Option<usize>,
    /// When set, the bound port is written here (as one decimal line) —
    /// how scripts find an ephemerally-bound daemon.
    pub port_file: Option<PathBuf>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            port: 0,
            workers: 2,
            queue: 8,
            cache: None,
            port_file: None,
        }
    }
}

/// What a completed daemon run did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeSummary {
    /// Jobs that finished with a `done` frame.
    pub jobs_done: u64,
    /// Jobs that failed with an `error` frame.
    pub jobs_failed: u64,
}

fn lock_recover<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Refuses to start when a tuning env var is set but malformed.
fn audit_env() -> Result<(), String> {
    for var in [THREADS_ENV, SEEDS_ENV, CACHE_CAP_ENV] {
        strict_positive_env(var).map_err(|e| format!("refusing to start: {e}"))?;
    }
    Ok(())
}

/// One accepted job waiting for (or on) a worker.
struct QueuedJob {
    id: u64,
    job: CompiledJob,
    /// The submitting connection; the worker streams frames to it. The
    /// mutex serializes frame writes with the connection thread (the
    /// `accepted` frame is written under this lock *before* the job is
    /// enqueued, so no unit frame can precede it).
    stream: Arc<Mutex<TcpStream>>,
}

/// A bounded MPMC queue: `try_push` fails fast when full (backpressure),
/// `pop` blocks until a job or close.
struct JobQueue {
    inner: Mutex<(VecDeque<QueuedJob>, bool)>,
    ready: Condvar,
    cap: usize,
}

impl JobQueue {
    fn new(cap: usize) -> Self {
        JobQueue {
            inner: Mutex::new((VecDeque::new(), false)),
            ready: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Enqueues; a full (or closed) queue consumes the job and returns
    /// `None` — the caller answers `rejected` and the submitter retries
    /// with a fresh submission. On success returns the queue depth
    /// *including* the new job.
    fn try_push(&self, job: QueuedJob) -> Option<usize> {
        let mut inner = lock_recover(&self.inner);
        if inner.1 || inner.0.len() >= self.cap {
            return None;
        }
        inner.0.push_back(job);
        let depth = inner.0.len();
        drop(inner);
        self.ready.notify_one();
        Some(depth)
    }

    /// Blocks for the next job; `None` once closed *and* drained.
    fn pop(&self) -> Option<QueuedJob> {
        let mut inner = lock_recover(&self.inner);
        loop {
            if let Some(job) = inner.0.pop_front() {
                return Some(job);
            }
            if inner.1 {
                return None;
            }
            inner = self
                .ready
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Stops accepting; blocked `pop`s return once the backlog drains.
    fn close(&self) {
        lock_recover(&self.inner).1 = true;
        self.ready.notify_all();
    }
}

/// Streams one `unit` frame per record down the submitting connection.
/// A write failure (client gone) surfaces as [`ExpError::Io`], aborting
/// the job early in `execute_streaming` — the daemon itself survives.
struct SocketSink {
    stream: Arc<Mutex<TcpStream>>,
    job: u64,
    units: u64,
}

impl UnitSink for SocketSink {
    fn write_unit(&mut self, _unit: &WorkUnit, out: UnitOutput) -> Result<(), ExpError> {
        let mut s = lock_recover(&self.stream);
        for record in &out.jsonl {
            write_frame(&mut *s, &frame_unit(self.job, record)).map_err(ExpError::Io)?;
        }
        self.units += 1;
        Ok(())
    }
}

struct Shared {
    queue: JobQueue,
    registry: Arc<Registry>,
    shutting_down: AtomicBool,
    next_job: AtomicU64,
    jobs_done: AtomicU64,
    jobs_failed: AtomicU64,
    /// The connection that requested shutdown; it gets the final
    /// `shutdown` frame after the queue drains.
    shutdown_stream: Mutex<Option<Arc<Mutex<TcpStream>>>>,
    port: u16,
}

/// A running daemon started in-process by [`start`].
pub struct Handle {
    port: u16,
    thread: std::thread::JoinHandle<Result<ServeSummary, String>>,
}

impl Handle {
    /// The bound port (useful with `ServeOptions::port == 0`).
    pub fn port(&self) -> u16 {
        self.port
    }

    /// Waits for the daemon to exit (something must send `shutdown`).
    ///
    /// # Errors
    ///
    /// Returns the daemon's startup/runtime error message.
    ///
    /// # Panics
    ///
    /// Propagates a panic from the daemon thread.
    pub fn join(self) -> Result<ServeSummary, String> {
        self.thread.join().expect("serve thread panicked")
    }
}

/// Binds and runs the daemon on a background thread — the in-process
/// form behind the load generator and the integration tests.
///
/// # Errors
///
/// Returns the bind/startup failure message.
pub fn start(opts: ServeOptions) -> Result<Handle, String> {
    audit_env()?;
    let listener = TcpListener::bind(("127.0.0.1", opts.port))
        .map_err(|e| format!("cannot bind 127.0.0.1:{}: {e}", opts.port))?;
    let port = listener
        .local_addr()
        .map_err(|e| format!("cannot read bound address: {e}"))?
        .port();
    let thread = std::thread::Builder::new()
        .name("escalate-serve".into())
        .spawn(move || serve_on(listener, &opts))
        .map_err(|e| format!("cannot spawn serve thread: {e}"))?;
    Ok(Handle { port, thread })
}

/// Runs the daemon on an already-bound listener until a `shutdown`
/// request drains it. Installs a fresh metrics registry for the run
/// (restoring whatever was installed before on exit) and honours
/// `opts.cache` / `opts.port_file`.
///
/// # Errors
///
/// Returns startup failures (env audit, port file) as messages; runtime
/// per-connection failures are reported to that client and survived.
pub fn serve_on(listener: TcpListener, opts: &ServeOptions) -> Result<ServeSummary, String> {
    audit_env()?;
    if let Some(cap) = opts.cache {
        escalate_bench::set_artifact_cache_capacity(cap);
    }
    let port = listener
        .local_addr()
        .map_err(|e| format!("cannot read bound address: {e}"))?
        .port();
    if let Some(path) = &opts.port_file {
        std::fs::write(path, format!("{port}\n"))
            .map_err(|e| format!("cannot write port file {}: {e}", path.display()))?;
    }

    let registry = Arc::new(Registry::new());
    let previous = escalate_obs::install(Arc::clone(&registry));

    let shared = Arc::new(Shared {
        queue: JobQueue::new(opts.queue),
        registry: Arc::clone(&registry),
        shutting_down: AtomicBool::new(false),
        next_job: AtomicU64::new(1),
        jobs_done: AtomicU64::new(0),
        jobs_failed: AtomicU64::new(0),
        shutdown_stream: Mutex::new(None),
        port,
    });

    let workers: Vec<_> = (0..opts.workers.max(1))
        .map(|i| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("escalate-serve-worker-{i}"))
                .spawn(move || worker_loop(&shared))
                .map_err(|e| format!("cannot spawn worker: {e}"))
        })
        .collect::<Result<_, _>>()?;

    let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
    for stream in listener.incoming() {
        if shared.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(&shared);
        if let Ok(h) = std::thread::Builder::new()
            .name("escalate-serve-conn".into())
            .spawn(move || handle_connection(stream, &shared))
        {
            conns.push(h);
        }
        conns.retain(|h| !h.is_finished());
    }

    // Drain: no new connections; finish every queued job, then confirm.
    for h in conns {
        let _ = h.join();
    }
    shared.queue.close();
    for w in workers {
        let _ = w.join();
    }
    let summary = ServeSummary {
        jobs_done: shared.jobs_done.load(Ordering::SeqCst),
        jobs_failed: shared.jobs_failed.load(Ordering::SeqCst),
    };
    if let Some(stream) = lock_recover(&shared.shutdown_stream).take() {
        let mut s = lock_recover(&stream);
        let _ = write_frame(&mut *s, &frame_shutdown(summary.jobs_done));
    }

    escalate_obs::uninstall();
    if let Some(prev) = previous {
        escalate_obs::install(prev);
    }
    if let Some(path) = &opts.port_file {
        let _ = std::fs::remove_file(path);
    }
    Ok(summary)
}

/// Reads frames off one connection until EOF (or shutdown).
fn handle_connection(stream: TcpStream, shared: &Shared) {
    // Bound how long an idle connection can pin its thread once a drain
    // starts; sub-second so shutdown isn't held hostage by idle clients.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let stream = Arc::new(Mutex::new(stream));

    loop {
        let frame = match read_frame(&mut reader) {
            Ok(None) => break,
            Ok(Some(f)) => f,
            Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                // Oversized line: the stream is desynchronized; report
                // and drop the connection.
                let mut s = lock_recover(&stream);
                let _ = write_frame(&mut *s, &frame_error(None, &e.to_string()));
                break;
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shared.shutting_down.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
            Err(_) => break,
        };
        escalate_obs::counter_add("serve.frames", 1);
        let req = match parse_request(&frame) {
            Ok(req) => req,
            Err(msg) => {
                escalate_obs::counter_add("serve.bad_requests", 1);
                let mut s = lock_recover(&stream);
                if write_frame(&mut *s, &frame_error(None, &msg)).is_err() {
                    break;
                }
                continue;
            }
        };
        match req {
            Request::Ping => {
                let mut s = lock_recover(&stream);
                if write_frame(&mut *s, &frame_pong()).is_err() {
                    break;
                }
            }
            Request::Metrics => {
                let json = shared.registry.to_json();
                let mut s = lock_recover(&stream);
                if write_frame(&mut *s, &frame_metrics(&json)).is_err() {
                    break;
                }
            }
            Request::Shutdown => {
                *lock_recover(&shared.shutdown_stream) = Some(Arc::clone(&stream));
                shared.shutting_down.store(true, Ordering::SeqCst);
                // Wake the accept loop so it notices the flag.
                let _ = TcpStream::connect(("127.0.0.1", shared.port));
                break;
            }
            req => submit_job(&req, &stream, shared),
        }
    }
}

/// Compiles and enqueues one job verb, answering `accepted`, `rejected`,
/// or `error` on the submitting connection.
fn submit_job(req: &Request, stream: &Arc<Mutex<TcpStream>>, shared: &Shared) {
    debug_assert!(req.is_job());
    if shared.shutting_down.load(Ordering::SeqCst) {
        let mut s = lock_recover(stream);
        let _ = write_frame(&mut *s, &frame_rejected("shutting down", RETRY_AFTER_MS));
        return;
    }
    let job = match CompiledJob::compile(req) {
        Ok(job) => job,
        Err(msg) => {
            escalate_obs::counter_add("serve.bad_requests", 1);
            let mut s = lock_recover(stream);
            let _ = write_frame(&mut *s, &frame_error(None, &msg));
            return;
        }
    };
    let id = shared.next_job.fetch_add(1, Ordering::SeqCst);
    let queued = QueuedJob {
        id,
        job,
        stream: Arc::clone(stream),
    };
    // Hold the stream lock across enqueue + accepted-frame write: the
    // worker's first unit frame needs this lock, so `accepted` always
    // reaches the wire first even though the job is already visible.
    let mut s = lock_recover(stream);
    match shared.queue.try_push(queued) {
        Some(depth) => {
            escalate_obs::counter_add("serve.jobs_accepted", 1);
            let _ = write_frame(&mut *s, &frame_accepted(id, depth));
        }
        None => {
            escalate_obs::counter_add("serve.jobs_rejected", 1);
            let _ = write_frame(&mut *s, &frame_rejected("queue full", RETRY_AFTER_MS));
        }
    }
}

/// One worker: pop, run, stream, report — until the queue closes.
fn worker_loop(shared: &Shared) {
    while let Some(queued) = shared.queue.pop() {
        let verb = queued.job.verb();
        let started = Instant::now();
        let mut sink = SocketSink {
            stream: Arc::clone(&queued.stream),
            job: queued.id,
            units: 0,
        };
        let result = {
            let _span = escalate_obs::span_labeled("serve.job", verb);
            queued.job.run(&mut sink)
        };
        let ms = started.elapsed().as_secs_f64() * 1e3;
        match result {
            Ok(output) => {
                shared.jobs_done.fetch_add(1, Ordering::SeqCst);
                escalate_obs::counter_add("serve.jobs_done", 1);
                let mut s = lock_recover(&queued.stream);
                let _ = write_frame(&mut *s, &frame_done(queued.id, sink.units, ms, &output));
            }
            Err(e) => {
                shared.jobs_failed.fetch_add(1, Ordering::SeqCst);
                escalate_obs::counter_add("serve.jobs_failed", 1);
                let mut s = lock_recover(&queued.stream);
                let _ = write_frame(&mut *s, &frame_error(Some(queued.id), &e.to_string()));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_queue_bounds_depth_and_drains_on_close() {
        let q = JobQueue::new(1);
        let stream = || {
            // A connected pair via a throwaway listener.
            let l = TcpListener::bind(("127.0.0.1", 0)).unwrap();
            let c = TcpStream::connect(l.local_addr().unwrap()).unwrap();
            let _ = l.accept().unwrap();
            Arc::new(Mutex::new(c))
        };
        let job = |id| QueuedJob {
            id,
            job: CompiledJob::compile(&Request::Report {
                experiment: "table4".into(),
            })
            .unwrap(),
            stream: stream(),
        };
        assert_eq!(q.try_push(job(1)), Some(1));
        assert!(q.try_push(job(2)).is_none(), "cap 1 rejects the second");
        q.close();
        assert!(q.try_push(job(3)).is_none(), "closed queue rejects");
        assert_eq!(q.pop().map(|j| j.id), Some(1), "backlog drains");
        assert!(q.pop().is_none(), "then closed");
    }

    #[test]
    fn env_audit_refuses_malformed_tuning_vars() {
        // Serialized via a unique var name to avoid cross-test races.
        std::env::set_var(THREADS_ENV, "zero");
        let err = audit_env().unwrap_err();
        std::env::remove_var(THREADS_ENV);
        assert!(err.contains(THREADS_ENV), "{err}");
        assert!(audit_env().is_ok());
    }
}
