//! `escalate serve`: a batching simulation daemon on the run-plan layer.
//!
//! The daemon speaks a hand-rolled line-JSON protocol over TCP
//! (`escalate-serve/v1`, one JSON object per line in both directions;
//! see [`proto`]). Clients submit `simulate` / `compress` / `report`
//! jobs; each accepted job compiles into a [`RunPlan`] and executes
//! through [`execute_streaming`] over the shared worker pool, streaming
//! `escalate-run-manifest/v1` unit records back down the socket as
//! units complete. Identical configs in flight dedupe through the
//! bench crate's single-flight artifact cache; the job queue is
//! bounded, rejecting with a `retry_after_ms` hint under backpressure;
//! shutdown drains queued jobs before the listener exits.
//!
//! [`RunPlan`]: escalate_bench::plan::RunPlan
//! [`execute_streaming`]: escalate_bench::plan::execute_streaming

pub mod client;
pub mod job;
pub mod loadgen;
pub mod proto;
pub mod server;

pub use client::submit;
pub use job::CompiledJob;
pub use loadgen::{run_loadgen, LoadgenOptions, LoadgenReport};
pub use proto::{parse_request, read_frame, write_frame, Request};
pub use server::{serve_on, start, Handle, ServeOptions, ServeSummary};
