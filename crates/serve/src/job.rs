//! Job compilation and execution: each accepted request becomes a
//! [`RunPlan`] executed through the shared run-plan layer
//! ([`execute_streaming`]), so served work reuses exactly the code paths
//! — artifact cache, accelerator runners, renderers — of the one-shot
//! CLI, which is what makes a served job's output bit-identical to it.

use crate::proto::Request;
use crate::proto::MANIFEST_SCHEMA;
use escalate_bench::experiments::{ExpError, ReportOptions, Table};
use escalate_bench::plan::{execute_streaming, unit_seed, RunPlan, UnitOutput, UnitSink, WorkUnit};
use escalate_bench::{
    compress_cached, render, run_accelerator_by_name, AccelRun, ModelRun, ACCELERATOR_NAMES,
};
use escalate_core::pipeline::CompressionConfig;
use escalate_core::ModelCompression;
use escalate_models::ModelProfile;
use escalate_obs::JsonWriter;
use escalate_sim::{ScheduleKind, SimConfig};
use std::sync::Mutex;

/// A validated, ready-to-run job.
pub enum CompiledJob {
    /// Four-accelerator comparison: one work unit per design.
    Simulate(SimulatePlan),
    /// Compression pipeline: one work unit.
    Compress(CompressPlan),
    /// One registered experiment: one work unit.
    Report(ReportPlan),
}

impl CompiledJob {
    /// Validates a job request (model exists, experiment is registered)
    /// and compiles it into its plan. Control verbs are not jobs.
    ///
    /// # Errors
    ///
    /// Returns the user-facing message for the `error` frame.
    pub fn compile(req: &Request) -> Result<CompiledJob, String> {
        // One resolver for every model spec the daemon accepts — the same
        // zoo-name / `@FILE` / `gen:` grammar as the CLI. The profile is
        // resolved once at compile time (a network file is read here, not
        // re-read per work unit).
        let resolve = |spec: &str| escalate_models::resolve(spec).map_err(|e| e.to_string());
        match req {
            Request::Simulate {
                model,
                m,
                seeds,
                schedule,
            } => Ok(CompiledJob::Simulate(SimulatePlan {
                profile: resolve(model)?,
                cfg: SimConfig {
                    schedule: ScheduleKind::parse(schedule)?,
                    ..if *m == 6 {
                        SimConfig::default()
                    } else {
                        SimConfig::default().with_m(*m)
                    }
                },
                seeds: *seeds,
                results: Mutex::new((0..ACCELERATOR_NAMES.len()).map(|_| None).collect()),
            })),
            Request::Compress {
                model,
                m,
                qat,
                seed,
                layers,
            } => Ok(CompiledJob::Compress(CompressPlan {
                profile: resolve(model)?,
                cfg: CompressionConfig {
                    m: *m,
                    qat_epochs: *qat,
                    seed: *seed,
                    ..CompressionConfig::default()
                },
                layers: *layers,
                output: Mutex::new(None),
            })),
            Request::Report { experiment } => {
                if escalate_bench::experiments::find(experiment).is_none() {
                    return Err(format!(
                        "unknown experiment {experiment:?} (see `escalate report --list`)"
                    ));
                }
                Ok(CompiledJob::Report(ReportPlan {
                    experiment: experiment.clone(),
                    output: Mutex::new(None),
                }))
            }
            other => Err(format!("{:?} is not a job verb", other.verb())),
        }
    }

    /// The coalescing identity: two submissions with equal keys request
    /// bit-identical work (every config field participates, floats by
    /// their `Debug` form, which prints f64s losslessly enough to never
    /// merge distinct configs — serve only ever sets whole-valued
    /// knobs). The queue uses this to fan one execution out to every
    /// client waiting on the same work.
    pub fn coalesce_key(&self) -> String {
        // Custom networks make the model *name* an insufficient identity —
        // two `@FILE` submissions can share a name but describe different
        // layers — so the profile fingerprint joins the key. The `{:?}` of
        // the config covers every knob, the schedule included.
        match self {
            CompiledJob::Simulate(p) => format!(
                "simulate|{}#{:016x}|{:?}|{}",
                p.profile.name,
                p.profile.fingerprint(),
                p.cfg,
                p.seeds
            ),
            CompiledJob::Compress(p) => format!(
                "compress|{}#{:016x}|{:?}|{}",
                p.profile.name,
                p.profile.fingerprint(),
                p.cfg,
                p.layers
            ),
            CompiledJob::Report(p) => format!("report|{}", p.experiment),
        }
    }

    /// The verb label jobs are counted/timed under.
    pub fn verb(&self) -> &'static str {
        match self {
            CompiledJob::Simulate(_) => "simulate",
            CompiledJob::Compress(_) => "compress",
            CompiledJob::Report(_) => "report",
        }
    }

    /// Runs the job, streaming unit records through `sink`, and returns
    /// the rendered output text (what the one-shot CLI prints).
    ///
    /// # Errors
    ///
    /// Returns the first unit failure in unit order, or the sink's write
    /// failure (a disconnected client aborts the run early).
    pub fn run(&self, sink: &mut dyn UnitSink) -> Result<String, ExpError> {
        match self {
            CompiledJob::Simulate(plan) => {
                execute_streaming(plan, sink)?;
                plan.render()
            }
            CompiledJob::Compress(plan) => {
                execute_streaming(plan, sink)?;
                plan.take_output()
            }
            CompiledJob::Report(plan) => {
                execute_streaming(plan, sink)?;
                plan.take_output()
            }
        }
    }
}

fn lock_recover<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// One unit per accelerator design; units stream a manifest-style record
/// each, and the typed results assemble into the comparison table.
pub struct SimulatePlan {
    profile: ModelProfile,
    cfg: SimConfig,
    seeds: u64,
    /// One slot per design, filled by `run_unit` (units run on worker
    /// threads; the plan is shared by reference).
    results: Mutex<Vec<Option<AccelRun>>>,
}

impl SimulatePlan {
    /// Assembles the four unit results and renders the comparison table.
    fn render(&self) -> Result<String, ExpError> {
        let mut slots = lock_recover(&self.results);
        let mut take = |i: usize| {
            slots[i]
                .take()
                .ok_or_else(|| ExpError::Msg("simulate unit produced no result".into()))
        };
        let run = ModelRun {
            model: self.profile.name.clone(),
            eyeriss: take(0)?,
            scnn: take(1)?,
            sparten: take(2)?,
            escalate: take(3)?,
        };
        Ok(render::render_simulate(&run, &self.cfg))
    }
}

impl RunPlan for SimulatePlan {
    fn name(&self) -> &str {
        "serve/simulate"
    }

    fn units(&self) -> Result<Vec<WorkUnit>, ExpError> {
        Ok(ACCELERATOR_NAMES
            .iter()
            .enumerate()
            .map(|(i, accel)| WorkUnit {
                key: format!("simulate/{}/{accel}", self.profile.name),
                seed: unit_seed(self.seeds, i as u64),
                index: i,
            })
            .collect())
    }

    fn run_unit(&self, unit: &WorkUnit) -> Result<UnitOutput, ExpError> {
        let accel = ACCELERATOR_NAMES[unit.index];
        let run = run_accelerator_by_name(accel, &self.profile, &self.cfg, self.seeds)
            .map_err(ExpError::Pipeline)?;
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("key", &unit.key);
        w.field_str("schema", MANIFEST_SCHEMA);
        w.field_str("name", &run.name);
        w.field_f64("mean_cycles", run.cycles);
        w.field_f64("mean_dram_bytes", run.dram_bytes);
        w.field_f64("mean_energy_pj", run.energy_pj);
        w.end_object();
        let record = w.finish();
        lock_recover(&self.results)[unit.index] = Some(run);
        Ok(UnitOutput {
            table: Table::default(),
            jsonl: vec![record],
        })
    }
}

/// One-unit plan running the compression pipeline through the artifact
/// cache (identical configs in flight dedupe via its single-flight
/// slots).
pub struct CompressPlan {
    profile: ModelProfile,
    cfg: CompressionConfig,
    layers: bool,
    output: Mutex<Option<String>>,
}

impl CompressPlan {
    fn take_output(&self) -> Result<String, ExpError> {
        lock_recover(&self.output)
            .take()
            .ok_or_else(|| ExpError::Msg("compress unit produced no output".into()))
    }
}

impl RunPlan for CompressPlan {
    fn name(&self) -> &str {
        "serve/compress"
    }

    fn units(&self) -> Result<Vec<WorkUnit>, ExpError> {
        Ok(vec![WorkUnit {
            key: format!("compress/{}/m{}", self.profile.name, self.cfg.m),
            seed: self.cfg.seed,
            index: 0,
        }])
    }

    fn run_unit(&self, unit: &WorkUnit) -> Result<UnitOutput, ExpError> {
        let p = &self.profile;
        let artifacts = compress_cached(p, &self.cfg).map_err(ExpError::Pipeline)?;
        let result = ModelCompression {
            model_name: p.name.clone(),
            layers: artifacts.iter().map(|a| a.stats.clone()).collect(),
        };
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("key", &unit.key);
        w.field_str("schema", MANIFEST_SCHEMA);
        w.field_str("model", &p.name);
        w.field_f64("compression_ratio", result.compression_ratio());
        w.field_f64("compressed_mb", result.compressed_size_mb());
        w.field_f64("coeff_sparsity", result.coeff_sparsity());
        w.end_object();
        let record = w.finish();
        let text =
            render::render_compress(&p.name, p.baseline_top1, self.cfg.m, &result, self.layers);
        *lock_recover(&self.output) = Some(text);
        Ok(UnitOutput {
            table: Table::default(),
            jsonl: vec![record],
        })
    }
}

/// One-unit plan running a registered experiment through the report
/// runner (same parser and renderer as `escalate report <NAME>`).
pub struct ReportPlan {
    experiment: String,
    output: Mutex<Option<String>>,
}

impl ReportPlan {
    fn take_output(&self) -> Result<String, ExpError> {
        lock_recover(&self.output)
            .take()
            .ok_or_else(|| ExpError::Msg("report unit produced no output".into()))
    }
}

impl RunPlan for ReportPlan {
    fn name(&self) -> &str {
        "serve/report"
    }

    fn units(&self) -> Result<Vec<WorkUnit>, ExpError> {
        Ok(vec![WorkUnit {
            key: format!("report/{}", self.experiment),
            seed: 0,
            index: 0,
        }])
    }

    fn run_unit(&self, unit: &WorkUnit) -> Result<UnitOutput, ExpError> {
        let opts = ReportOptions::parse([self.experiment.clone()]).map_err(ExpError::Msg)?;
        let mut buf = Vec::new();
        escalate_bench::experiments::run_report(&opts, &mut buf)?;
        let text = String::from_utf8(buf)
            .map_err(|e| ExpError::Msg(format!("report produced non-UTF-8 output: {e}")))?;
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("key", &unit.key);
        w.field_str("schema", MANIFEST_SCHEMA);
        w.field_str("experiment", &self.experiment);
        w.end_object();
        let record = w.finish();
        *lock_recover(&self.output) = Some(text);
        Ok(UnitOutput {
            table: Table::default(),
            jsonl: vec![record],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Collects streamed records in memory.
    #[derive(Default)]
    struct MemSink {
        records: Vec<String>,
    }

    impl UnitSink for MemSink {
        fn write_unit(&mut self, _unit: &WorkUnit, out: UnitOutput) -> Result<(), ExpError> {
            self.records.extend(out.jsonl);
            Ok(())
        }
    }

    #[test]
    fn compile_validates_models_and_experiments() {
        let bad = Request::Simulate {
            model: "LeNet".into(),
            m: 6,
            seeds: 1,
            schedule: "serial".into(),
        };
        let Err(e) = CompiledJob::compile(&bad) else {
            panic!("unknown model must not compile")
        };
        assert!(e.contains("LeNet"), "{e}");
        let bad = Request::Simulate {
            model: "MobileNet".into(),
            m: 6,
            seeds: 1,
            schedule: "warp-speed".into(),
        };
        let Err(e) = CompiledJob::compile(&bad) else {
            panic!("unknown schedule must not compile")
        };
        assert!(e.contains("warp-speed"), "{e}");
        let bad = Request::Report {
            experiment: "fig99".into(),
        };
        let Err(e) = CompiledJob::compile(&bad) else {
            panic!("unknown experiment must not compile")
        };
        assert!(e.contains("fig99"), "{e}");
        assert!(CompiledJob::compile(&Request::Ping).is_err());
    }

    #[test]
    fn simulate_job_streams_four_manifest_records_and_renders_the_table() {
        let job = CompiledJob::compile(&Request::Simulate {
            model: "MobileNet".into(),
            m: 6,
            seeds: 1,
            schedule: "serial".into(),
        })
        .unwrap();
        let mut sink = MemSink::default();
        let out = job.run(&mut sink).unwrap();
        assert_eq!(sink.records.len(), 4, "one record per design");
        for (record, accel) in sink.records.iter().zip(ACCELERATOR_NAMES) {
            assert_eq!(
                escalate_obs::jsonl::json_string_field(record, "schema").as_deref(),
                Some(MANIFEST_SCHEMA)
            );
            assert_eq!(
                escalate_obs::jsonl::json_string_field(record, "name").as_deref(),
                Some(accel)
            );
            assert!(escalate_obs::jsonl::json_f64_field(record, "mean_cycles").unwrap() > 0.0);
        }
        assert!(out.contains("vs Eyeriss"), "{out}");
        assert!(out.contains("ESCALATE"), "{out}");
    }

    #[test]
    fn generator_specs_compile_and_schedules_separate_coalesce_keys() {
        let req = |schedule: &str| Request::Simulate {
            model: "gen:grouped:blocks=1,c=16,x=8".into(),
            m: 6,
            seeds: 1,
            schedule: schedule.into(),
        };
        let serial = CompiledJob::compile(&req("serial")).unwrap();
        let pipelined = CompiledJob::compile(&req("pipelined")).unwrap();
        assert_ne!(
            serial.coalesce_key(),
            pipelined.coalesce_key(),
            "a pipelined run is different work; it must not coalesce with a serial one"
        );
        // Same spec twice is the same work.
        assert_eq!(
            serial.coalesce_key(),
            CompiledJob::compile(&req("serial")).unwrap().coalesce_key()
        );
    }

    #[test]
    fn compress_job_renders_the_cli_report() {
        let job = CompiledJob::compile(&Request::Compress {
            model: "MobileNet".into(),
            m: 6,
            qat: 0,
            seed: 42,
            layers: false,
        })
        .unwrap();
        let mut sink = MemSink::default();
        let out = job.run(&mut sink).unwrap();
        assert_eq!(sink.records.len(), 1);
        assert!(out.starts_with("MobileNet (M=6):"), "{out}");
    }
}
