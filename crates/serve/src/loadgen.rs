//! A seeded traffic generator proving the daemon under load: an
//! in-process server, a deterministic request mix over the model zoo,
//! and a latency/throughput report (`BENCH_serve.json`).
//!
//! The *schedule* (verbs, models, arrival offsets) is fully determined
//! by the seed; the measured latencies of course are not.

use crate::client::submit;
use crate::proto::{Request, RETRY_AFTER_MS};
use crate::server::{start, ServeOptions};
use escalate_obs::{json_string_field, JsonWriter};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// How the load run is shaped.
#[derive(Debug, Clone)]
pub struct LoadgenOptions {
    /// Total requests to send.
    pub jobs: usize,
    /// Schedule seed (verb mix, model mix, arrival offsets).
    pub seed: u64,
    /// Daemon worker threads.
    pub workers: usize,
    /// Daemon queue capacity (small enough to exercise backpressure).
    pub queue: usize,
    /// Where to write the JSON report; `None` skips the file.
    pub out: Option<PathBuf>,
}

impl Default for LoadgenOptions {
    fn default() -> Self {
        LoadgenOptions {
            jobs: 24,
            seed: 42,
            workers: 2,
            queue: 4,
            out: None,
        }
    }
}

/// What the load run measured.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Schedule seed.
    pub seed: u64,
    /// Requests sent.
    pub jobs: usize,
    /// Requests that reached a `done` frame.
    pub done: usize,
    /// Requests that ended in an `error` frame (or I/O failure).
    pub failed: usize,
    /// Backpressure retries across all requests (`rejected` frames).
    pub retries: usize,
    /// Wall-clock for the whole run, ms.
    pub wall_ms: f64,
    /// Median submit→done latency, ms.
    pub p50_ms: f64,
    /// 99th-percentile submit→done latency, ms.
    pub p99_ms: f64,
    /// Completed jobs per wall-clock second.
    pub jobs_per_sec: f64,
    /// Daemon worker threads.
    pub workers: usize,
    /// Daemon queue capacity.
    pub queue: usize,
}

impl LoadgenReport {
    /// Renders the `escalate-serve-bench/v1` JSON document.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.field_str("schema", "escalate-serve-bench/v1");
        w.field_u64("seed", self.seed);
        w.field_u64("jobs", self.jobs as u64);
        w.field_u64("done", self.done as u64);
        w.field_u64("failed", self.failed as u64);
        w.field_u64("retries", self.retries as u64);
        w.field_f64("wall_ms", self.wall_ms);
        w.field_f64("p50_ms", self.p50_ms);
        w.field_f64("p99_ms", self.p99_ms);
        w.field_f64("jobs_per_sec", self.jobs_per_sec);
        w.field_u64("workers", self.workers as u64);
        w.field_u64("queue", self.queue as u64);
        w.field_u64("host_cores", host_cores());
        w.field_str("git_rev", &git_rev());
        w.end_object();
        w.finish()
    }
}

fn host_cores() -> u64 {
    std::thread::available_parallelism()
        .map(|n| n.get() as u64)
        .unwrap_or(1)
}

fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One scheduled request: what to send and when (offset from run start).
struct Slot {
    at: Duration,
    req: Request,
}

/// Builds the deterministic schedule: ~70% `simulate` (one seed each) /
/// ~30% `compress`, round-robin-ish over the model zoo, inter-arrival
/// draws uniform in 0..120 ms.
fn schedule(jobs: usize, seed: u64) -> Vec<Slot> {
    let zoo: Vec<String> = escalate_models::zoo_names();
    let mut rng = seed;
    let mut at = Duration::ZERO;
    (0..jobs)
        .map(|_| {
            at += Duration::from_millis(splitmix(&mut rng) % 120);
            let model = zoo[(splitmix(&mut rng) as usize) % zoo.len()].to_string();
            let req = if splitmix(&mut rng) % 10 < 7 {
                Request::Simulate {
                    model,
                    m: 6,
                    seeds: 1,
                    schedule: "serial".into(),
                }
            } else {
                Request::Compress {
                    model,
                    m: 6,
                    qat: 0,
                    seed: 42,
                    layers: false,
                }
            };
            Slot { at, req }
        })
        .collect()
}

/// What one request experienced end to end.
struct Outcome {
    done: bool,
    retries: usize,
    latency: Duration,
}

/// Submits one scheduled request, honouring `rejected` backpressure by
/// waiting `retry_after_ms` and retrying (bounded). Latency runs from
/// the *first* submit attempt to the terminal frame — a rejected job's
/// queue wait is part of what the client experienced.
fn drive(port: u16, req: &Request) -> Outcome {
    const MAX_ATTEMPTS: usize = 200;
    let started = Instant::now();
    let mut retries = 0usize;
    for _ in 0..MAX_ATTEMPTS {
        let frames = match submit(port, req) {
            Ok(f) => f,
            Err(_) => break,
        };
        match frames
            .last()
            .and_then(|f| json_string_field(f, "type"))
            .as_deref()
        {
            Some("done") => {
                return Outcome {
                    done: true,
                    retries,
                    latency: started.elapsed(),
                }
            }
            Some("rejected") => {
                retries += 1;
                std::thread::sleep(Duration::from_millis(RETRY_AFTER_MS));
            }
            _ => break,
        }
    }
    Outcome {
        done: false,
        retries,
        latency: started.elapsed(),
    }
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() as f64 - 1.0) * p).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

/// Runs the whole load experiment: start an in-process daemon, fire the
/// seeded schedule (one thread per request, sleeping to its arrival
/// offset), drain, shut the daemon down, and summarize.
///
/// # Errors
///
/// Returns daemon startup/shutdown failures and report-write failures.
pub fn run_loadgen(opts: &LoadgenOptions) -> Result<LoadgenReport, String> {
    let handle = start(ServeOptions {
        port: 0,
        workers: opts.workers,
        queue: opts.queue,
        cache: None,
        port_file: None,
    })?;
    let port = handle.port();

    let started = Instant::now();
    let threads: Vec<_> = schedule(opts.jobs, opts.seed)
        .into_iter()
        .map(|slot| {
            std::thread::spawn(move || {
                let now = started.elapsed();
                if slot.at > now {
                    std::thread::sleep(slot.at - now);
                }
                drive(port, &slot.req)
            })
        })
        .collect();
    let outcomes: Vec<Outcome> = threads
        .into_iter()
        .map(|t| t.join().expect("loadgen thread panicked"))
        .collect();
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;

    submit(port, &Request::Shutdown).map_err(|e| format!("shutdown failed: {e}"))?;
    handle.join()?;

    let mut latencies_ms: Vec<f64> = outcomes
        .iter()
        .filter(|o| o.done)
        .map(|o| o.latency.as_secs_f64() * 1e3)
        .collect();
    latencies_ms.sort_by(f64::total_cmp);
    let done = latencies_ms.len();
    let report = LoadgenReport {
        seed: opts.seed,
        jobs: opts.jobs,
        done,
        failed: opts.jobs - done,
        retries: outcomes.iter().map(|o| o.retries).sum(),
        wall_ms,
        p50_ms: percentile(&latencies_ms, 0.50),
        p99_ms: percentile(&latencies_ms, 0.99),
        jobs_per_sec: done as f64 / (wall_ms / 1e3).max(1e-9),
        workers: opts.workers,
        queue: opts.queue,
    };
    if let Some(path) = &opts.out {
        std::fs::write(path, format!("{}\n", report.to_json()))
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_schedule_is_deterministic_in_the_seed() {
        let a = schedule(16, 7);
        let b = schedule(16, 7);
        let c = schedule(16, 8);
        assert_eq!(a.len(), 16);
        assert!(a
            .iter()
            .zip(&b)
            .all(|(x, y)| x.at == y.at && x.req == y.req));
        assert!(
            a.iter()
                .zip(&c)
                .any(|(x, y)| x.req != y.req || x.at != y.at),
            "a different seed draws a different schedule"
        );
        assert!(
            a.iter().all(|s| s.req.is_job()),
            "the schedule only submits job verbs"
        );
    }

    #[test]
    fn percentiles_pick_from_the_sorted_tail() {
        let ms = [1.0, 2.0, 3.0, 4.0, 100.0];
        assert_eq!(percentile(&ms, 0.50), 3.0);
        assert_eq!(percentile(&ms, 0.99), 100.0);
        assert_eq!(percentile(&[], 0.99), 0.0);
    }
}
