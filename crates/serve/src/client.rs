//! A minimal blocking client: submit one request, collect the response
//! frames — what `escalate submit` and the load generator are built on.

use crate::proto::{read_frame, write_frame, Request};
use std::io::BufReader;
use std::net::TcpStream;

/// Submits `req` to the daemon at `127.0.0.1:port` and collects every
/// response frame until the terminal one for that verb (`done`, `pong`,
/// `metrics`, `shutdown`, `rejected`, or `error`) or EOF.
///
/// # Errors
///
/// Propagates connect/read/write failures.
pub fn submit(port: u16, req: &Request) -> std::io::Result<Vec<String>> {
    let mut stream = TcpStream::connect(("127.0.0.1", port))?;
    write_frame(&mut stream, &req.to_line())?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut frames = Vec::new();
    while let Some(frame) = read_frame(&mut reader)? {
        let terminal = is_terminal(&frame);
        frames.push(frame);
        if terminal {
            break;
        }
    }
    Ok(frames)
}

/// Whether a response frame ends the exchange for a single request.
pub fn is_terminal(frame: &str) -> bool {
    matches!(
        escalate_obs::json_string_field(frame, "type").as_deref(),
        Some("done" | "pong" | "metrics" | "shutdown" | "rejected" | "error")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{frame_accepted, frame_done, frame_pong, frame_unit};

    #[test]
    fn terminal_frames_end_an_exchange_and_streamed_ones_do_not() {
        assert!(is_terminal(&frame_pong()));
        assert!(is_terminal(&frame_done(1, 4, 1.0, "out")));
        assert!(!is_terminal(&frame_accepted(1, 1)));
        assert!(!is_terminal(&frame_unit(1, "{\"key\": \"k\"}")));
    }
}
