//! Validates the throughput engine's per-position abstraction against the
//! cycle-stepped slice model — the reproduction's analogue of the paper
//! verifying its simulator against the RTL implementation.
//!
//! The engine estimates a slice's pace as `max(stream, concentration,
//! R·S)` per position with ideal pipelining; the cycle-stepped model adds
//! the real structural hazards (FIFO back-pressure, drain/stream overlap
//! limits). The two must agree within a modest envelope across workload
//! regimes, and the stepped model must never be *faster* than the
//! analytic lower bound.

use escalate_sim::ca::position_cost;
use escalate_sim::mac::MacRow;
use escalate_sim::slice::{run_slice, PositionInput};
use escalate_sim::SimConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn positions(c: usize, ad: f64, cd: f64, m: usize, n: usize, seed: u64) -> Vec<PositionInput> {
    let mut rng = StdRng::seed_from_u64(seed);
    let words = c.div_ceil(64);
    (0..n)
        .map(|_| {
            let mut act = vec![0u64; words];
            for i in 0..c {
                if rng.gen_bool(ad) {
                    act[i / 64] |= 1 << (i % 64);
                }
            }
            let coef_masks = (0..m)
                .map(|_| {
                    let mut w = vec![0u64; words];
                    for i in 0..c {
                        if rng.gen_bool(cd) {
                            w[i / 64] |= 1 << (i % 64);
                        }
                    }
                    w
                })
                .collect();
            PositionInput {
                act_mask: act,
                coef_masks,
                c,
            }
        })
        .collect()
}

fn analytic_cycles(cfg: &SimConfig, m: usize, rs: usize, pos: &[PositionInput]) -> u64 {
    let mac = MacRow::new(m, rs);
    pos.iter()
        .map(|p| {
            let masks: Vec<&[u64]> = p.coef_masks.iter().map(Vec::as_slice).collect();
            let cost = position_cost(cfg, p.c, &p.act_mask, &masks);
            mac.position_cycles(cost.ca_cycles)
        })
        .sum()
}

fn check_regime(name: &str, c: usize, ad: f64, cd: f64, m: usize, rs: usize) {
    let cfg = SimConfig::default();
    let pos = positions(c, ad, cd, m, 60, 99);
    let analytic = analytic_cycles(&cfg, m, rs, &pos);
    let stepped = run_slice(&cfg, m, rs, &pos).cycles;
    let ratio = stepped as f64 / analytic as f64;
    // The stepped model includes pipeline fill and hazards: it may run up
    // to ~2x the ideal estimate but must never beat it by more than the
    // drain/stream overlap the analytic model ignores.
    assert!(
        (0.8..2.2).contains(&ratio),
        "{name}: stepped {stepped} vs analytic {analytic} (ratio {ratio:.2})"
    );
}

#[test]
fn mac_bound_regime_agrees() {
    check_regime("mac-bound", 32, 0.3, 0.8, 6, 9);
}

#[test]
fn stream_bound_regime_agrees() {
    check_regime("stream-bound", 512, 0.8, 0.8, 6, 9);
}

#[test]
fn sparse_coefficient_regime_agrees() {
    check_regime("sparse-coef", 512, 0.5, 0.02, 6, 9);
}

#[test]
fn pointwise_regime_agrees() {
    check_regime("pointwise", 256, 0.5, 0.15, 1, 1);
}

#[test]
fn stepped_model_reports_idle_when_ca_bound() {
    let cfg = SimConfig::default();
    let pos = positions(512, 0.9, 0.9, 6, 40, 5);
    let t = run_slice(&cfg, 6, 9, &pos);
    assert!(
        t.mac_idle_cycles > 0,
        "a stream-bound slice must idle its MACs"
    );
    // And the analytic idle estimate points the same way.
    let mac = MacRow::new(6, 9);
    let masks: Vec<&[u64]> = pos[0].coef_masks.iter().map(Vec::as_slice).collect();
    let cost = position_cost(&cfg, 512, &pos[0].act_mask, &masks);
    assert!(mac.idle_cycles(cost.ca_cycles) > 0);
}
