//! Differential suite: the batched word-parallel [`PositionKernel`] —
//! through ad-hoc binds, compiled [`LayerPlan`]s, every batch shape, and
//! (when built with `--features simd`) both sides of the `std::arch`
//! dispatch — against the scalar reference [`position_cost_scalar`],
//! byte-for-byte equal [`PositionCost`]s across random channel counts,
//! mask patterns, concentration windows, and bus widths — including
//! multi-word channels and the empty/dense extremes.
//!
//! This is the contract the kernel's three fast-path layers rest on (see
//! DESIGN.md, "the sampled-fidelity hot path"): any divergence here is a
//! correctness bug, not a tolerance question.

use escalate_sim::ca::{position_cost_scalar, CaScratch, LayerPlan, PositionKernel, MAX_BATCH};
use escalate_sim::engine::simulate_layer;
use escalate_sim::trace::simulate_layer_traced;
use escalate_sim::workload::{CoefMasks, LayerWorkload, WorkloadMode};
use escalate_sim::{PositionCost, SimConfig};
use escalate_tensor::Tensor;
use proptest::prelude::*;

/// Expands raw u64 material into a `⌈c/64⌉`-word mask with no bits at or
/// above `c`, applying a density `style`: 0 = raw, 1 = sparsified
/// (self-AND with a rotation), 2 = empty, 3 = dense (all ones).
fn mask_words(raw: &[u64], c: usize, style: u8) -> Vec<u64> {
    let words = c.div_ceil(64);
    let mut v: Vec<u64> = raw
        .iter()
        .cycle()
        .take(words)
        .map(|&w| match style {
            0 => w,
            1 => w & w.rotate_left(13),
            2 => 0,
            _ => u64::MAX,
        })
        .collect();
    let tail = c - (words - 1) * 64;
    if tail < 64 {
        *v.last_mut().expect("words >= 1") &= (1u64 << tail) - 1;
    }
    v
}

fn config(la: usize, ls: usize, bus_bytes: usize) -> SimConfig {
    SimConfig {
        look_ahead: la,
        look_aside: ls,
        input_bus_bytes: bus_bytes,
        ..SimConfig::default()
    }
}

/// Scalar reference costs of a whole position stream.
fn scalar_costs(
    cfg: &SimConfig,
    c: usize,
    acts: &[Vec<u64>],
    refs: &[&[u64]],
) -> Vec<PositionCost> {
    let mut scratch = CaScratch::new(cfg);
    acts.iter()
        .map(|a| position_cost_scalar(cfg, c, a, refs, &mut scratch))
        .collect()
}

/// Feeds `acts` through `kernel.cost_batch` in batches of `batch` (ragged
/// tail included) and asserts each answer equals the scalar reference.
fn assert_batched_matches(
    kernel: &mut PositionKernel,
    c: usize,
    acts: &[Vec<u64>],
    expect: &[PositionCost],
    batch: usize,
) -> Result<(), TestCaseError> {
    let words = c.div_ceil(64);
    let mut out = vec![PositionCost::default(); batch];
    for (chunk, exp) in acts.chunks(batch).zip(expect.chunks(batch)) {
        let flat: Vec<u64> = chunk.iter().flatten().copied().collect();
        kernel.cost_batch(&flat, chunk.len(), &mut out);
        prop_assert_eq!(&out[..chunk.len()], exp, "batch size {}", batch);
        let _ = words;
    }
    Ok(())
}

proptest! {
    /// One position, every path: scalar, ad-hoc bind, repeat call (the
    /// kernel is stateless across calls — the pinning case that replaced
    /// the deleted memo), and a one-channel compiled plan — all
    /// byte-for-byte equal.
    #[test]
    fn kernel_matches_scalar_on_any_position(
        c in 1usize..200,
        m in 1usize..7,
        raw_act in prop::collection::vec(any::<u64>(), 3),
        raw_coef in prop::collection::vec(any::<u64>(), 18),
        styles in (0u8..4, 0u8..4),
        windows in (0usize..8, 0usize..3),
        bus_bytes in 1usize..33,
    ) {
        let (act_style, coef_style) = styles;
        let (la, ls) = windows;
        let cfg = config(la, ls, bus_bytes);
        let act = mask_words(&raw_act, c, act_style);
        let coef_rows: Vec<Vec<u64>> = (0..m)
            .map(|mi| mask_words(&raw_coef[mi * 3..mi * 3 + 3], c, coef_style))
            .collect();
        let refs: Vec<&[u64]> = coef_rows.iter().map(Vec::as_slice).collect();

        let scalar = position_cost_scalar(&cfg, c, &act, &refs, &mut CaScratch::new(&cfg));
        let mut kernel = PositionKernel::new(&cfg);
        kernel.bind(c, refs.iter().copied());
        prop_assert_eq!(kernel.cost(&act), scalar);
        prop_assert_eq!(kernel.cost(&act), scalar, "repeat call must recompute identically");
        let plan = LayerPlan::build(c, m, &[0], |_, mi| refs[mi]);
        kernel.install_plan(plan);
        kernel.bind_planned(0);
        prop_assert_eq!(kernel.cost(&act), scalar, "planned bind");
    }

    /// A stream of positions through one bound kernel at batch sizes
    /// {1, 4, 8} plus a ragged prime (the run_positions usage pattern):
    /// every batched answer equals a fresh scalar evaluation, including
    /// tails shorter than the batch. Repeated masks in the stream pin the
    /// no-memo contract: identical inputs recompute identical outputs.
    #[test]
    fn batched_streams_match_scalar(
        c in 1usize..150,
        m in 1usize..7,
        raw_coef in prop::collection::vec(any::<u64>(), 18),
        raw_acts in prop::collection::vec(prop::collection::vec(any::<u64>(), 3), 1..12),
        act_style in 0u8..2,
    ) {
        let cfg = config(4, 1, 16);
        let coef_rows: Vec<Vec<u64>> = (0..m)
            .map(|mi| mask_words(&raw_coef[mi * 3..mi * 3 + 3], c, 1))
            .collect();
        let refs: Vec<&[u64]> = coef_rows.iter().map(Vec::as_slice).collect();
        // Repeat every other mask to guarantee stream-internal dupes.
        let acts: Vec<Vec<u64>> = raw_acts
            .iter()
            .enumerate()
            .map(|(i, raw)| {
                let raw = if i % 2 == 1 { &raw_acts[i - 1] } else { raw };
                mask_words(raw, c, act_style)
            })
            .collect();
        let expect = scalar_costs(&cfg, c, &acts, &refs);
        let mut kernel = PositionKernel::new(&cfg);
        kernel.bind(c, refs.iter().copied());
        for batch in [1usize, 3, 4, MAX_BATCH] {
            assert_batched_matches(&mut kernel, c, &acts, &expect, batch)?;
        }
    }

    /// Rebinding the kernel to a different channel (the per-channel loop in
    /// run_positions) never leaks state: after any bind sequence — ad hoc
    /// or through a multi-channel plan — answers still equal the scalar
    /// reference for the currently-bound masks, and installing a plan
    /// invalidates the previous bind's tables.
    #[test]
    fn rebind_sequences_stay_exact(
        c in 1usize..100,
        raw in prop::collection::vec(any::<u64>(), 12),
        binds in prop::collection::vec(0usize..4, 2..5),
    ) {
        let cfg = config(4, 1, 16);
        let mut kernel = PositionKernel::new(&cfg);
        let act = mask_words(&raw[..2], c, 0);
        let mut scratch = CaScratch::new(&cfg);
        let coef_for = |b: usize| -> Vec<Vec<u64>> {
            (0..2)
                .map(|mi| mask_words(&raw[2 + 2 * (b + mi)..4 + 2 * (b + mi)], c, 1))
                .collect()
        };
        for &b in &binds {
            let coef_rows = coef_for(b);
            let refs: Vec<&[u64]> = coef_rows.iter().map(Vec::as_slice).collect();
            kernel.bind(c, refs.iter().copied());
            let scalar = position_cost_scalar(&cfg, c, &act, &refs, &mut scratch);
            prop_assert_eq!(kernel.cost(&act), scalar);
            prop_assert_eq!(kernel.cost(&act), scalar);
        }
        // The same sequence through one compiled plan: bind_planned must
        // fully replace the previous channel's tables on every switch.
        let all_rows: Vec<Vec<Vec<u64>>> = (0..4).map(coef_for).collect();
        let channels: Vec<usize> = (0..4).collect();
        let plan = LayerPlan::build(c, 2, &channels, |k, mi| &all_rows[k][mi]);
        prop_assert!(plan.matches(c, 2, &channels, |k, mi| &all_rows[k][mi]));
        kernel.install_plan(plan);
        for &b in &binds {
            let refs: Vec<&[u64]> = all_rows[b].iter().map(Vec::as_slice).collect();
            kernel.bind_planned(b);
            let scalar = position_cost_scalar(&cfg, c, &act, &refs, &mut scratch);
            prop_assert_eq!(kernel.cost(&act), scalar, "planned bind {}", b);
        }
    }
}

// With `--features simd`: the runtime-dispatched `std::arch` path and the
// forced-portable path produce byte-identical costs on the same inputs.
// On hosts without the instructions the dispatch already takes the
// portable path and this reduces to a self-comparison (still valid, just
// not discriminating).
#[cfg(feature = "simd")]
proptest! {
    #[test]
    fn simd_dispatch_matches_portable(
        c in 1usize..200,
        m in 1usize..7,
        raw_acts in prop::collection::vec(prop::collection::vec(any::<u64>(), 3), 1..10),
        raw_coef in prop::collection::vec(any::<u64>(), 18),
        act_style in 0u8..4,
        coef_style in 0u8..4,
        windows in (0usize..8, 0usize..3),
        bus_bytes in 1usize..33,
    ) {
        let (la, ls) = windows;
        let cfg = config(la, ls, bus_bytes);
        let coef_rows: Vec<Vec<u64>> = (0..m)
            .map(|mi| mask_words(&raw_coef[mi * 3..mi * 3 + 3], c, coef_style))
            .collect();
        let refs: Vec<&[u64]> = coef_rows.iter().map(Vec::as_slice).collect();
        let acts: Vec<Vec<u64>> = raw_acts
            .iter()
            .map(|raw| mask_words(raw, c, act_style))
            .collect();
        let expect = scalar_costs(&cfg, c, &acts, &refs);
        let mut kernel = PositionKernel::new(&cfg);
        kernel.bind(c, refs.iter().copied());
        for on in [false, true] {
            escalate_sim::simd::set_enabled(on);
            let res = assert_batched_matches(&mut kernel, c, &acts, &expect, MAX_BATCH);
            escalate_sim::simd::set_enabled(true);
            res?;
        }
    }
}

fn workload(c: usize, k: usize, x: usize) -> LayerWorkload {
    use escalate_core::quant::TernaryCoeffs;
    use escalate_models::LayerShape;
    let m = 6;
    let coeffs = Tensor::from_fn(&[k, c, m], |i| {
        let h = (i[0] * 7919 + i[1] * 104729 + i[2] * 1299709) % 1000;
        if h < 900 {
            0.0
        } else if h % 2 == 0 {
            1.0
        } else {
            -1.0
        }
    });
    let t = TernaryCoeffs::ternarize(&coeffs, 0.0).unwrap();
    LayerWorkload {
        name: format!("kd{c}x{k}"),
        shape: LayerShape::conv("t", c, k, x, x, 3, 1, 1),
        out_channels: k,
        mode: WorkloadMode::Decomposed(CoefMasks::from_ternary(&t)),
        act_sparsity: 0.5,
        out_sparsity: 0.5,
        weight_bytes: 1000,
    }
}

/// End-to-end pin: whole-layer stats are bit-identical across repeated
/// runs (plan compiled, then reused from the thread-local kernel cache)
/// and across sample-width changes that force plan recompiles — for both
/// the sampled and the trace-driven fidelity.
#[test]
fn layer_stats_identical_across_plan_reuse() {
    let lw = workload(96, 32, 12);
    let ifm = escalate_models::synth::activations(&lw.shape, 0.5, 11);
    let base = SimConfig::default();
    let sampled = simulate_layer(&lw, &base, 7);
    let traced = simulate_layer_traced(&lw, &base, &ifm).unwrap();
    for round in 0..3 {
        // Round 0 may compile the plan; later rounds reuse it. In between,
        // walking a different channel sample forces a recompile — which
        // must not perturb the original answers either.
        assert_eq!(simulate_layer(&lw, &base, 7), sampled, "round={round}");
        assert_eq!(
            simulate_layer_traced(&lw, &base, &ifm).unwrap(),
            traced,
            "round={round}"
        );
        let other = SimConfig {
            sample_channels: 3 + round,
            ..base
        };
        let _ = simulate_layer(&lw, &other, 7);
    }
}
