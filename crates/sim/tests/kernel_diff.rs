//! Differential suite: the word-parallel [`PositionKernel`] (with and
//! without its memo) against the scalar reference
//! [`position_cost_scalar`], byte-for-byte equal [`PositionCost`]s across
//! random channel counts, mask patterns, concentration windows, and bus
//! widths — including multi-word channels and the empty/dense extremes.
//!
//! This is the contract the kernel's three fast-path layers rest on (see
//! DESIGN.md, "the sampled-fidelity hot path"): any divergence here is a
//! correctness bug, not a tolerance question.

use escalate_sim::ca::{position_cost_scalar, CaScratch, PositionKernel};
use escalate_sim::engine::simulate_layer;
use escalate_sim::trace::simulate_layer_traced;
use escalate_sim::workload::{CoefMasks, LayerWorkload, WorkloadMode};
use escalate_sim::SimConfig;
use escalate_tensor::Tensor;
use proptest::prelude::*;

/// Expands raw u64 material into a `⌈c/64⌉`-word mask with no bits at or
/// above `c`, applying a density `style`: 0 = raw, 1 = sparsified
/// (self-AND with a rotation), 2 = empty, 3 = dense (all ones).
fn mask_words(raw: &[u64], c: usize, style: u8) -> Vec<u64> {
    let words = c.div_ceil(64);
    let mut v: Vec<u64> = raw
        .iter()
        .cycle()
        .take(words)
        .map(|&w| match style {
            0 => w,
            1 => w & w.rotate_left(13),
            2 => 0,
            _ => u64::MAX,
        })
        .collect();
    let tail = c - (words - 1) * 64;
    if tail < 64 {
        *v.last_mut().expect("words >= 1") &= (1u64 << tail) - 1;
    }
    v
}

fn config(la: usize, ls: usize, bus_bytes: usize, memo: usize) -> SimConfig {
    SimConfig {
        look_ahead: la,
        look_aside: ls,
        input_bus_bytes: bus_bytes,
        memo_capacity: memo,
        ..SimConfig::default()
    }
}

proptest! {
    /// One position, every path: scalar, kernel uncached, kernel through a
    /// cold memo, kernel through a warm memo — all byte-for-byte equal.
    #[test]
    fn kernel_matches_scalar_on_any_position(
        c in 1usize..200,
        m in 1usize..7,
        raw_act in prop::collection::vec(any::<u64>(), 3),
        raw_coef in prop::collection::vec(any::<u64>(), 18),
        styles in (0u8..4, 0u8..4),
        windows in (0usize..8, 0usize..3),
        bus_bytes in 1usize..33,
        memo in prop_oneof![Just(0usize), Just(1), Just(8), Just(2048)],
    ) {
        let (act_style, coef_style) = styles;
        let (la, ls) = windows;
        let cfg = config(la, ls, bus_bytes, memo);
        let act = mask_words(&raw_act, c, act_style);
        let coef_rows: Vec<Vec<u64>> = (0..m)
            .map(|mi| mask_words(&raw_coef[mi * 3..mi * 3 + 3], c, coef_style))
            .collect();
        let refs: Vec<&[u64]> = coef_rows.iter().map(Vec::as_slice).collect();

        let scalar = position_cost_scalar(&cfg, c, &act, &refs, &mut CaScratch::new(&cfg));
        let mut kernel = PositionKernel::new(&cfg);
        kernel.bind(c, refs.iter().copied());
        prop_assert_eq!(kernel.cost_uncached(&act), scalar);
        prop_assert_eq!(kernel.cost(&act), scalar);
        prop_assert_eq!(kernel.cost(&act), scalar);
        if memo > 0 {
            prop_assert_eq!(kernel.memo_hits(), 1, "second memoized call must hit");
        }
    }

    /// A stream of positions through one bound kernel (the run_positions
    /// usage pattern): every answer — hit, miss, or probe-window overflow —
    /// equals a fresh scalar evaluation. Repeated masks in the stream
    /// exercise the hit path; tiny capacities exercise the overflow path.
    #[test]
    fn memoized_streams_match_scalar(
        c in 1usize..150,
        m in 1usize..7,
        raw_coef in prop::collection::vec(any::<u64>(), 18),
        raw_acts in prop::collection::vec(prop::collection::vec(any::<u64>(), 3), 1..12),
        act_style in 0u8..2,
        memo in prop_oneof![Just(0usize), Just(2), Just(2048)],
    ) {
        let cfg = config(4, 1, 16, memo);
        let coef_rows: Vec<Vec<u64>> = (0..m)
            .map(|mi| mask_words(&raw_coef[mi * 3..mi * 3 + 3], c, 1))
            .collect();
        let refs: Vec<&[u64]> = coef_rows.iter().map(Vec::as_slice).collect();
        let mut kernel = PositionKernel::new(&cfg);
        kernel.bind(c, refs.iter().copied());
        let mut scratch = CaScratch::new(&cfg);
        for (i, raw) in raw_acts.iter().enumerate() {
            // Repeat every other mask to guarantee stream-internal dupes.
            let raw = if i % 2 == 1 { &raw_acts[i - 1] } else { raw };
            let act = mask_words(raw, c, act_style);
            let scalar = position_cost_scalar(&cfg, c, &act, &refs, &mut scratch);
            prop_assert_eq!(kernel.cost(&act), scalar);
        }
    }

    /// Rebinding the kernel to a different channel (the per-channel loop in
    /// run_positions) never leaks state: after any bind sequence, answers
    /// still equal the scalar reference for the currently-bound masks.
    #[test]
    fn rebind_sequences_stay_exact(
        c in 1usize..100,
        raw in prop::collection::vec(any::<u64>(), 12),
        binds in prop::collection::vec(0usize..4, 2..5),
    ) {
        let cfg = config(4, 1, 16, 64);
        let mut kernel = PositionKernel::new(&cfg);
        let act = mask_words(&raw[..2], c, 0);
        let mut scratch = CaScratch::new(&cfg);
        for &b in &binds {
            let coef_rows: Vec<Vec<u64>> = (0..2)
                .map(|mi| mask_words(&raw[2 + 2 * (b + mi)..4 + 2 * (b + mi)], c, 1))
                .collect();
            let refs: Vec<&[u64]> = coef_rows.iter().map(Vec::as_slice).collect();
            kernel.bind(c, refs.iter().copied());
            let scalar = position_cost_scalar(&cfg, c, &act, &refs, &mut scratch);
            prop_assert_eq!(kernel.cost(&act), scalar);
            prop_assert_eq!(kernel.cost(&act), scalar);
        }
    }
}

fn workload(c: usize, k: usize, x: usize) -> LayerWorkload {
    use escalate_core::quant::TernaryCoeffs;
    use escalate_models::LayerShape;
    let m = 6;
    let coeffs = Tensor::from_fn(&[k, c, m], |i| {
        let h = (i[0] * 7919 + i[1] * 104729 + i[2] * 1299709) % 1000;
        if h < 900 {
            0.0
        } else if h % 2 == 0 {
            1.0
        } else {
            -1.0
        }
    });
    let t = TernaryCoeffs::ternarize(&coeffs, 0.0).unwrap();
    LayerWorkload {
        name: format!("kd{c}x{k}"),
        shape: LayerShape::conv("t", c, k, x, x, 3, 1, 1),
        out_channels: k,
        mode: WorkloadMode::Decomposed(CoefMasks::from_ternary(&t)),
        act_sparsity: 0.5,
        out_sparsity: 0.5,
        weight_bytes: 1000,
    }
}

/// End-to-end pin: whole-layer stats are bit-identical with the memo at
/// its default capacity, a tiny colliding capacity, and disabled — for
/// both the sampled and the trace-driven fidelity.
#[test]
fn layer_stats_identical_across_memo_capacities() {
    let lw = workload(96, 32, 12);
    let ifm = escalate_models::synth::activations(&lw.shape, 0.5, 11);
    let base = SimConfig::default();
    let sampled = simulate_layer(&lw, &base, 7);
    let traced = simulate_layer_traced(&lw, &base, &ifm).unwrap();
    for memo in [0usize, 2, 64] {
        let cfg = SimConfig {
            memo_capacity: memo,
            ..base
        };
        assert_eq!(simulate_layer(&lw, &cfg, 7), sampled, "memo={memo}");
        assert_eq!(
            simulate_layer_traced(&lw, &cfg, &ifm).unwrap(),
            traced,
            "memo={memo}"
        );
    }
}
