//! Property-based tests for the accelerator component models.

use escalate_sim::buffers::InputBuffer;
use escalate_sim::htree::HTree;
use escalate_sim::psum::PsumBanks;
use proptest::prelude::*;
use std::collections::VecDeque;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The H-tree's merged grant always equals flat arbitration over the
    /// same requests: earliest chunk wins, count = its requesters.
    #[test]
    fn htree_equals_flat_arbitration(
        reqs in prop::collection::vec(prop::option::weighted(0.7, 0u64..20), 1..33),
    ) {
        let mut tree = HTree::new(reqs.len());
        let got = tree.round(&reqs);
        let present: Vec<u64> = reqs.iter().flatten().copied().collect();
        match got {
            None => prop_assert!(present.is_empty()),
            Some((id, n)) => {
                prop_assert_eq!(Some(&id), present.iter().min());
                prop_assert_eq!(n as usize, present.iter().filter(|&&r| r == id).count());
            }
        }
    }

    /// Draining ordered per-slice queues through the H-tree serves every
    /// request exactly once, and the round count is bracketed by the
    /// number of distinct chunks and the total request count.
    #[test]
    fn htree_drain_serves_everything(
        offsets in prop::collection::vec(0u64..10, 1..9),
        chunks in 5u64..40,
    ) {
        let effective: Vec<u64> = offsets.iter().map(|&o| o.min(chunks - 1)).collect();
        let queues: Vec<VecDeque<u64>> = effective.iter().map(|&o| (o..chunks).collect()).collect();
        let total: u64 = queues.iter().map(|q| q.len() as u64).sum();
        let mut tree = HTree::new(queues.len());
        let rounds = tree.drain(queues);
        prop_assert_eq!(tree.stats().served, total);
        // At least one round per distinct chunk of the longest queue, at
        // most one per request.
        prop_assert!(rounds >= chunks - effective.iter().min().copied().unwrap_or(0));
        prop_assert!(rounds <= total);
    }

    /// The ref-counted buffer conserves chunks: every admitted chunk is
    /// evicted after exactly its consumer count of reads, and occupancy
    /// returns to zero.
    #[test]
    fn input_buffer_conserves_chunks(
        chunks in prop::collection::vec((1u32..64, 1u32..6), 1..20),
    ) {
        let cap: u32 = chunks.iter().map(|&(b, _)| b).sum::<u32>().max(1);
        let mut buf = InputBuffer::new(cap);
        let ids: Vec<(u64, u32)> = chunks
            .iter()
            .map(|&(bytes, consumers)| (buf.push(bytes, consumers).expect("fits"), consumers))
            .collect();
        for &(id, consumers) in &ids {
            for _ in 0..consumers {
                prop_assert!(buf.request(id));
            }
            prop_assert!(!buf.request(id), "chunk must be gone after last consumer");
        }
        prop_assert_eq!(buf.occupancy_bytes(), 0);
        prop_assert_eq!(buf.stats().evictions, ids.len() as u64);
        prop_assert_eq!(buf.stats().pushes, ids.len() as u64);
    }

    /// Psum accumulation is exact regardless of issue grouping, and the
    /// conflict cycles are bounded by the per-group worst case.
    #[test]
    fn psum_accumulation_is_grouping_invariant(
        writes in prop::collection::vec((0usize..64, -8i32..8), 1..80),
        banks in 1usize..9,
        group in 1usize..8,
    ) {
        let mut grouped = PsumBanks::new(banks, 64usize.div_ceil(banks));
        for g in writes.chunks(group) {
            let g: Vec<(usize, f32)> = g.iter().map(|&(a, v)| (a, v as f32)).collect();
            grouped.issue(&g);
        }
        let mut serial = PsumBanks::new(banks, 64usize.div_ceil(banks));
        for &(a, v) in &writes {
            serial.issue(&[(a, v as f32)]);
        }
        prop_assert_eq!(grouped.drain(), serial.drain());
        // Serial issue is conflict-free; grouped cycles never exceed the
        // serial count and never undercut the group count.
        prop_assert_eq!(serial.stats().conflict_cycles, 0);
        prop_assert!(grouped.stats().cycles() <= serial.stats().cycles());
        prop_assert!(grouped.stats().cycles() >= writes.len().div_ceil(group) as u64);
    }
}
