//! Integration tests for the observability layer.
//!
//! Two contracts are pinned down here:
//!
//! 1. **Reconciliation** — counters recorded through `escalate-obs`
//!    during an engine run must equal the [`ModelStats`] the run returns,
//!    count for count (the observer flushes the very stats objects the
//!    caller receives, so any drift is a bug in the wiring).
//! 2. **Non-perturbation** — installing a recorder must not change
//!    simulation results by a single bit, at any thread count: observers
//!    only read the event stream.

use escalate_core::quant::TernaryCoeffs;
use escalate_models::LayerShape;
use escalate_obs::Registry;
use escalate_sim::engine::simulate_layer_observed;
use escalate_sim::workload::{CoefMasks, LayerWorkload, WorkloadMode};
use escalate_sim::{simulate_model, ModelStats, ObsObserver, SimConfig, Workload};
use escalate_tensor::Tensor;
use proptest::prelude::*;
use std::sync::Arc;

fn decomposed(
    c: usize,
    k: usize,
    x: usize,
    coef_sparsity: f64,
    act_sparsity: f64,
) -> LayerWorkload {
    let m = 6;
    let coeffs = Tensor::from_fn(&[k, c, m], |i| {
        let h = (i[0] * 7919 + i[1] * 104729 + i[2] * 1299709) % 1000;
        if (h as f64) < coef_sparsity * 1000.0 {
            0.0
        } else if h % 2 == 0 {
            1.0
        } else {
            -1.0
        }
    });
    let t = TernaryCoeffs::ternarize(&coeffs, 0.0).unwrap();
    LayerWorkload {
        name: format!("obs{c}x{k}"),
        shape: LayerShape::conv("o", c, k, x, x, 3, 1, 1),
        out_channels: k,
        mode: WorkloadMode::Decomposed(CoefMasks::from_ternary(&t)),
        act_sparsity,
        out_sparsity: act_sparsity,
        weight_bytes: 500,
    }
}

fn dense(c: usize, k: usize, x: usize) -> LayerWorkload {
    LayerWorkload {
        name: "obs-dense".into(),
        shape: LayerShape::conv("o", c, k, x, x, 3, 1, 1),
        out_channels: k,
        mode: WorkloadMode::Dense,
        act_sparsity: 0.5,
        out_sparsity: 0.5,
        weight_bytes: 500,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Whatever the layer mix, the `sim.*` engine counters in a private
    /// registry reconcile exactly with the returned stats: layer count,
    /// fallback count, and the cycle/MAC/CA-add/traffic totals.
    #[test]
    fn observer_counters_reconcile_with_model_stats(
        c in 16usize..80,
        k in 4usize..20,
        cs in 30u32..95,
        asp in 10u32..80,
        with_fallback in prop::option::weighted(0.5, 0u32..1),
    ) {
        let cfg = SimConfig::default();
        let mut layers = vec![
            decomposed(c, k, 8, cs as f64 / 100.0, asp as f64 / 100.0),
            decomposed(c / 2 + 1, k, 6, cs as f64 / 100.0, asp as f64 / 100.0),
        ];
        if with_fallback.is_some() {
            layers.push(dense(c, k, 6));
        }

        let reg = Arc::new(Registry::new());
        let mut model = ModelStats {
            model_name: "prop".into(),
            layers: Vec::new(),
            pipeline: None,
        };
        {
            let mut obs = ObsObserver::new(Arc::clone(&reg));
            for lw in &layers {
                model.layers.push(simulate_layer_observed(lw, &cfg, 0, &mut obs));
            }
        }

        prop_assert_eq!(reg.counter("sim.layers"), model.layers.len() as u64);
        let fallbacks = model.layers.iter().filter(|l| l.fallback).count() as u64;
        prop_assert_eq!(reg.counter("sim.fallback_layers"), fallbacks);
        prop_assert_eq!(reg.counter("sim.cycles"), model.total_cycles());
        prop_assert_eq!(reg.counter("sim.mac_ops"), model.total_mac_ops());
        prop_assert_eq!(reg.counter("sim.ca_adds"), model.total_ca_adds());
        prop_assert_eq!(
            reg.counter("sim.gather_passes"),
            model.layers.iter().map(|l| l.gather_passes).sum::<u64>()
        );
        prop_assert_eq!(reg.counter("sim.dram_bytes"), model.total_dram().total());
        prop_assert_eq!(reg.counter("sim.sram_bytes"), model.total_sram().total());

        // The layer-cycles histogram saw every layer once and sums to the
        // same total as the counter.
        let snap = reg.snapshot();
        let h = &snap.histograms["sim.layer_cycles"];
        prop_assert_eq!(h.count(), model.layers.len() as u64);
        prop_assert_eq!(h.sum(), model.total_cycles());

        // Decomposed layers walked positions; a sampled CA add implies a
        // walked position.
        prop_assert!(reg.counter("sim.positions_walked") > 0);
        prop_assert!(
            reg.counter("sim.ca_adds_sampled") == 0
                || reg.counter("sim.positions_walked") > 0
        );
    }
}

/// One test (not several) owns the process-global recorder slot: tests in
/// this binary run in parallel, and a second installer would race it.
#[test]
fn installed_recorder_does_not_perturb_results() {
    let w = Workload {
        model_name: "det".into(),
        layers: vec![
            decomposed(64, 16, 10, 0.85, 0.5),
            decomposed(48, 24, 8, 0.6, 0.3),
            dense(32, 8, 6),
        ],
    };
    let seq = SimConfig {
        threads: 1,
        ..SimConfig::default()
    };
    let par = SimConfig::default();

    let baseline = simulate_model(&w, &seq, 3);

    let reg = Arc::new(Registry::new());
    escalate_obs::install(Arc::clone(&reg));
    let observed_seq = simulate_model(&w, &seq, 3);
    let observed_par = simulate_model(&w, &par, 3);
    escalate_obs::uninstall();

    assert_eq!(
        baseline, observed_seq,
        "recorder must not perturb sequential results"
    );
    assert_eq!(
        baseline, observed_par,
        "recorder must not perturb parallel results"
    );
    // And the recorder did actually see the runs: two observed passes over
    // three layers each.
    assert_eq!(reg.counter("sim.layers"), 6);
    assert_eq!(reg.counter("sim.cycles"), 2 * baseline.total_cycles());
}
