//! Layer-level cross-validation: the sampling engine against the detailed
//! mode that runs the cycle-stepped slice pipeline for every (channel,
//! slice) assignment of a small layer.

use escalate_core::quant::TernaryCoeffs;
use escalate_models::{synth, LayerShape};
use escalate_sim::detailed::simulate_layer_detailed;
use escalate_sim::workload::CoefMasks;
use escalate_sim::{simulate_layer, LayerWorkload, SimConfig, WorkloadMode};
use escalate_tensor::Tensor;

fn workload(
    c: usize,
    k: usize,
    x: usize,
    coef_sparsity: f64,
    act_sparsity: f64,
) -> (LayerWorkload, Tensor) {
    let coeffs = Tensor::from_fn(&[k, c, 6], |i| {
        let h = (i[0] * 7919 + i[1] * 104729 + i[2] * 1299709) % 1000;
        if (h as f64) < coef_sparsity * 1000.0 {
            0.0
        } else if h % 2 == 0 {
            1.0
        } else {
            -1.0
        }
    });
    let t = TernaryCoeffs::ternarize(&coeffs, 0.0).expect("valid threshold");
    let shape = LayerShape::conv("v", c, k, x, x, 3, 1, 1);
    let ifm = synth::activations(&shape, act_sparsity, 13);
    (
        LayerWorkload {
            name: format!("v{c}x{k}"),
            shape,
            out_channels: k,
            mode: WorkloadMode::Decomposed(CoefMasks::from_ternary(&t)),
            act_sparsity,
            out_sparsity: act_sparsity,
            weight_bytes: 100,
        },
        ifm,
    )
}

fn check(c: usize, k: usize, x: usize, cs: f64, as_: f64, envelope: (f64, f64)) {
    let cfg = SimConfig::default();
    let (lw, ifm) = workload(c, k, x, cs, as_);
    let engine = simulate_layer(&lw, &cfg, 0).cycles as f64;
    let detailed = simulate_layer_detailed(&lw, &cfg, &ifm)
        .expect("valid trace inputs")
        .cycles as f64;
    let ratio = detailed / engine;
    assert!(
        (envelope.0..envelope.1).contains(&ratio),
        "c={c} k={k}: detailed {detailed} vs engine {engine} (ratio {ratio:.2})"
    );
}

#[test]
fn engine_tracks_detailed_mode_mac_bound() {
    // MAC-bound: both models pace at R·S per position, pipeline fill aside.
    check(32, 48, 10, 0.9, 0.6, (0.7, 2.2));
}

#[test]
fn engine_tracks_detailed_mode_stream_bound() {
    check(192, 48, 8, 0.5, 0.2, (0.7, 2.5));
}

#[test]
fn engine_tracks_detailed_mode_high_sparsity() {
    check(192, 48, 8, 0.98, 0.6, (0.7, 2.5));
}

#[test]
fn detailed_idle_accounting_is_consistent() {
    let cfg = SimConfig::default();
    // Stream-bound: detailed idles; MAC-bound: detailed mostly busy.
    let (bound, ifm_b) = workload(256, 16, 6, 0.3, 0.1);
    let (fast, ifm_f) = workload(32, 16, 6, 0.95, 0.7);
    let db = simulate_layer_detailed(&bound, &cfg, &ifm_b).expect("valid trace inputs");
    let df = simulate_layer_detailed(&fast, &cfg, &ifm_f).expect("valid trace inputs");
    let idle_rate_bound = escalate_sim::checked_ratio(db.mac_idle_cycles, db.cycles)
        .expect("stream-bound run completed in zero cycles");
    let idle_rate_fast = escalate_sim::checked_ratio(df.mac_idle_cycles, df.cycles)
        .expect("mac-bound run completed in zero cycles");
    assert!(
        idle_rate_bound > idle_rate_fast,
        "stream-bound layers must idle more: {idle_rate_bound} vs {idle_rate_fast}"
    );
}
