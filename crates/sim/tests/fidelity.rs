//! Cross-fidelity equivalence: the three simulation modes share one core
//! (`LayerContext` + `run_positions` + `assemble_stats`), so their
//! disagreement is bounded by what they *model* differently, not by
//! drifting copies of the arithmetic.
//!
//! - The sampling engine draws synthetic Bernoulli masks over a stratified
//!   channel subset and extrapolates; the trace-driven mode walks every
//!   position of a real feature map. On a map whose density matches the
//!   engine's `act_sparsity`, their cycle counts agree within the same
//!   envelope the trace tests document (0.75..1.35).
//! - When the channel sample covers every channel
//!   (`SimConfig::sample_channels >= C`), the trace-driven mode takes the
//!   exact-count path: its `ca_adds` is an integer sum over all (channel,
//!   position) pairs and must equal the detailed mode's `matched` exactly
//!   — both count `popcount(act_mask & coef_mask)` over the same masks.

use escalate_core::quant::TernaryCoeffs;
use escalate_models::{synth, LayerShape};
use escalate_sim::detailed::simulate_layer_detailed;
use escalate_sim::trace::simulate_layer_traced;
use escalate_sim::workload::CoefMasks;
use escalate_sim::{simulate_layer, LayerWorkload, SimConfig, WorkloadMode};
use escalate_tensor::Tensor;

fn workload(
    c: usize,
    k: usize,
    x: usize,
    coef_sparsity: f64,
    act_sparsity: f64,
) -> (LayerWorkload, Tensor) {
    let coeffs = Tensor::from_fn(&[k, c, 6], |i| {
        let h = (i[0] * 7919 + i[1] * 104729 + i[2] * 1299709) % 1000;
        if (h as f64) < coef_sparsity * 1000.0 {
            0.0
        } else if h % 2 == 0 {
            1.0
        } else {
            -1.0
        }
    });
    let t = TernaryCoeffs::ternarize(&coeffs, 0.0).expect("valid threshold");
    let shape = LayerShape::conv("f", c, k, x, x, 3, 1, 1);
    let ifm = synth::activations(&shape, act_sparsity, 13);
    (
        LayerWorkload {
            name: format!("f{c}x{k}"),
            shape,
            out_channels: k,
            mode: WorkloadMode::Decomposed(CoefMasks::from_ternary(&t)),
            act_sparsity,
            out_sparsity: act_sparsity,
            weight_bytes: 100,
        },
        ifm,
    )
}

#[test]
fn sampled_engine_tracks_trace_driven_cycles() {
    let cfg = SimConfig::default();
    for (c, k, x, cs, as_) in [(64, 48, 10, 0.9, 0.5), (96, 32, 8, 0.7, 0.3)] {
        let (lw, ifm) = workload(c, k, x, cs, as_);
        let engine = simulate_layer(&lw, &cfg, 0).cycles as f64;
        let traced = simulate_layer_traced(&lw, &cfg, &ifm)
            .expect("valid trace")
            .cycles as f64;
        let ratio = traced / engine;
        assert!(
            (0.75..1.35).contains(&ratio),
            "c={c} k={k}: trace {traced} vs engine {engine} (ratio {ratio:.2})"
        );
    }
}

#[test]
fn full_channel_coverage_makes_trace_match_counts_exact() {
    // Two small decomposed layers; sample_channels lifted to cover every
    // input channel so the trace mode's aggregate is exact, not scaled.
    for (c, k, x, cs, as_) in [(24, 16, 6, 0.8, 0.4), (40, 24, 5, 0.6, 0.25)] {
        let cfg = SimConfig {
            sample_channels: c,
            ..SimConfig::default()
        };
        let (lw, ifm) = workload(c, k, x, cs, as_);
        let traced = simulate_layer_traced(&lw, &cfg, &ifm).expect("valid trace");
        let detailed = simulate_layer_detailed(&lw, &cfg, &ifm).expect("valid trace");
        assert_eq!(
            traced.ca_adds, detailed.matched,
            "c={c} k={k}: full-coverage trace ca_adds must equal detailed matched"
        );
    }
}

#[test]
fn partial_sampling_stays_close_to_exact_counts() {
    // The default 8-channel sample extrapolates; it must stay within a
    // sane band of the exact all-channel count on a uniform synthetic map.
    let (lw, ifm) = workload(64, 32, 8, 0.8, 0.4);
    let sampled_cfg = SimConfig::default();
    let exact_cfg = SimConfig {
        sample_channels: 64,
        ..SimConfig::default()
    };
    let sampled = simulate_layer_traced(&lw, &sampled_cfg, &ifm).expect("valid trace");
    let exact = simulate_layer_traced(&lw, &exact_cfg, &ifm).expect("valid trace");
    let ratio = escalate_sim::checked_ratio(sampled.ca_adds, exact.ca_adds)
        .expect("exact run matched zero pairs");
    assert!(
        (0.7..1.4).contains(&ratio),
        "sampled {} vs exact {} (ratio {ratio:.2})",
        sampled.ca_adds,
        exact.ca_adds
    );
}
