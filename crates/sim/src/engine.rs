//! The per-layer simulation engine.
//!
//! For decomposed layers the engine executes the bit-exact CA component
//! models on a deterministic sample of (output channel, input position)
//! pairs, then extrapolates by the Basis-First mapping's parallelism:
//! output channels spread over `N_PE` blocks in rounds, rows over `l`
//! slices, and the CA/MAC stages of a slice overlap via double buffering,
//! so a slice advances at `max(CA time, R·S)` per position. Dense layers
//! take the fallback path.

use crate::ca::{position_cost_with, CaScratch};
use crate::config::SimConfig;
use crate::dataflow::Mapping;
use crate::fallback::simulate_dense;
use crate::mac::MacRow;
use crate::stats::{DramTraffic, LayerStats, ModelStats, SramTraffic};
use crate::workload::{LayerWorkload, Workload, WorkloadMode};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// Output channels sampled per layer.
const SAMPLE_CHANNELS: usize = 8;
/// Input positions sampled per channel.
const SAMPLE_POSITIONS: usize = 48;

/// Simulates one layer.
///
/// `seed` controls the synthetic activation draw (the paper averages over
/// 10 random inputs; callers pass different seeds and average).
pub fn simulate_layer(lw: &LayerWorkload, cfg: &SimConfig, seed: u64) -> LayerStats {
    match &lw.mode {
        WorkloadMode::Dense => simulate_dense(&lw.shape, cfg, lw.weight_bytes),
        WorkloadMode::Decomposed(masks) => {
            let mut rng = StdRng::seed_from_u64(seed ^ hash_name(&lw.name));
            let k_total = masks.k();
            let c = masks.c();
            let m = masks.m();
            // SCNN-style scatter with stride: only ~R·S/stride² of a basis
            // kernel's products land on valid output positions, so the MAC
            // service time per intermediate element shrinks accordingly.
            let rs = (lw.shape.r * lw.shape.s).div_ceil(lw.shape.stride * lw.shape.stride).max(1);
            let mac_row = MacRow::new(m, rs);
            // Pointwise workloads (M = 1) leave M−1 CA-MAC pairs idle under
            // the plain mapping; the Basis-First dataflow instead assigns
            // each pair its own output channel (coefficients for several
            // channels fit the per-block buffer at 1 bit/position), so a
            // block retires `M` output channels per pass.
            let parallel_k = if m == 1 { cfg.m.max(1) } else { 1 };
            let mapping = Mapping::new(cfg, k_total.div_ceil(parallel_k), lw.shape.x);

            let words = c.div_ceil(64);
            let keep_prob = 1.0 - lw.act_sparsity;

            // Stratified channel sampling: per-channel coefficient counts
            // are heavy-tailed, so sample quantile representatives of the
            // nnz distribution rather than a fixed stride (which can land
            // on unrepresentative channels).
            let sk = k_total.min(SAMPLE_CHANNELS);
            let sampled_k = stratified_channels(masks, sk);
            let sp = lw.positions().clamp(1, SAMPLE_POSITIONS);

            let mut sum_pos_cycles = 0.0f64;
            let mut sum_matched = 0.0f64;
            let mut sum_gather = 0.0f64;
            let mut sum_idle = 0.0f64;
            let mut max_block_time = 0.0f64;

            // Buffers reused across every sampled (channel, position) pair;
            // the inner loop allocates nothing.
            let mut coef_masks: Vec<&[u64]> = Vec::with_capacity(m);
            let mut act = vec![0u64; words];
            let mut scratch = CaScratch::new(cfg);

            for &k in &sampled_k {
                coef_masks.clear();
                coef_masks.extend((0..m).map(|mi| masks.mask(k, mi)));
                let mut k_pos_cycles = 0.0f64;
                for _ in 0..sp {
                    draw_act_mask_into(&mut rng, c, keep_prob, &mut act);
                    let cost = position_cost_with(cfg, c, &act, &coef_masks, &mut scratch);
                    let pos_cycles = mac_row.position_cycles(cost.ca_cycles);
                    k_pos_cycles += pos_cycles as f64;
                    sum_matched += cost.matched as f64;
                    sum_gather += cost.gather_passes as f64;
                    sum_idle += mac_row.idle_cycles(cost.ca_cycles) as f64;
                }
                let mean_pos = k_pos_cycles / sp as f64;
                sum_pos_cycles += mean_pos;
                let block_time = mean_pos * (mapping.rows_per_slice() * lw.shape.y) as f64;
                max_block_time = max_block_time.max(block_time);
            }

            let samples = (sampled_k.len() * sp) as f64;
            let mean_pos_cycles = sum_pos_cycles / sampled_k.len() as f64;
            let mean_matched = sum_matched / samples;
            let mean_gather = sum_gather / samples;
            let mean_idle = sum_idle / samples;

            let positions = lw.positions() as f64;
            let positions_per_slice = (mapping.rows_per_slice() * lw.shape.y) as f64;

            // Work-queue schedule: blocks pull the next output channel
            // (group) as they finish; the layer ends when the slowest
            // block drains.
            let total_block_work =
                (k_total as f64 / parallel_k as f64) * positions_per_slice * mean_pos_cycles;
            let compute_cycles = (total_block_work / cfg.n_pe as f64).max(max_block_time).ceil() as u64;

            let mac_ops = (k_total as f64 * positions * mac_row.ops_per_position() as f64) as u64;
            let ca_adds = (k_total as f64 * positions * mean_matched) as u64;
            let gather_passes = (k_total as f64 * positions * mean_gather) as u64;
            let mac_idle = (k_total as f64 * positions * mean_idle) as u64;
            let mac_slots =
                (k_total as f64 * positions * m as f64 * mean_pos_cycles).max(1.0) as u64;

            // DRAM traffic. Weights stream once (they fit on-chip after the
            // first load thanks to coefficient compression); the compressed
            // IFM re-streams once per output-channel round unless it fits
            // in the distributed input buffers.
            let nnz_act_bytes = (lw.shape.input_size() as f64 * keep_prob).ceil() as u64;
            let ifm_bytes = nnz_act_bytes + (lw.shape.input_size() as u64).div_ceil(8);
            let rounds = mapping.rounds() as u64;
            let ifm_loads = if ifm_bytes <= cfg.total_input_buf_bytes() as u64 { 1 } else { rounds };
            // The OFM is written back SparseMap-compressed (post-ReLU
            // nonzeros plus the bit mask), like every activation tensor.
            let ofm_dense = (lw.out_channels * lw.shape.out_x() * lw.shape.out_y()) as u64;
            let ofm_bytes = (ofm_dense as f64 * (1.0 - lw.out_sparsity)).ceil() as u64 + ofm_dense.div_ceil(8);

            // SRAM traffic.
            let coef_bytes_per_pos = (c * m) as u64 / 8 + (masks.total_nnz() as u64 / k_total.max(1) as u64) / 8;
            let sram = SramTraffic {
                input_buf: nnz_act_bytes * rounds + ifm_bytes * ifm_loads,
                coef_buf: (k_total as f64 * positions) as u64 * coef_bytes_per_pos.max(1),
                psum_buf: (k_total as f64 * positions) as u64 * mac_row.psum_accesses_per_position() * 2,
                output_buf: ofm_bytes,
                act_buf: ca_adds,
            };

            // Memory-bound layers pace at the DRAM bandwidth.
            let dram_total = lw.weight_bytes + ifm_bytes * ifm_loads + ofm_bytes;
            let dram_cycles = (dram_total as f64 / cfg.dram_bytes_per_cycle).ceil() as u64;
            let cycles = compute_cycles.max(dram_cycles);

            LayerStats {
                name: lw.name.clone(),
                cycles: cycles.max(1),
                mac_ops,
                ca_adds,
                gather_passes,
                mac_idle_cycles: mac_idle,
                mac_cycle_slots: mac_slots,
                dram: DramTraffic {
                    weights: lw.weight_bytes,
                    ifm: ifm_bytes * ifm_loads,
                    ofm: ofm_bytes,
                },
                sram,
                fallback: false,
            }
        }
    }
}

/// Simulates a whole model.
///
/// Layers are independent — each draws from its own RNG stream
/// (`seed ^ hash(layer name)`) — so they run on the global thread pool
/// and reassemble in execution order, bit-identical to a sequential run.
/// `cfg.threads == 1` skips the pool entirely.
pub fn simulate_model(workload: &Workload, cfg: &SimConfig, seed: u64) -> ModelStats {
    let layers = if cfg.threads == 1 {
        workload.layers.iter().map(|lw| simulate_layer(lw, cfg, seed)).collect()
    } else {
        workload.layers.par_iter().map(|lw| simulate_layer(lw, cfg, seed)).collect()
    };
    ModelStats { model_name: workload.model_name.clone(), layers }
}

/// Quantile representatives of the per-channel coefficient-count
/// distribution: channel `i` of the sample stands for the `i`-th stratum
/// of equally many output channels.
pub(crate) fn stratified_channels(masks: &crate::workload::CoefMasks, sk: usize) -> Vec<usize> {
    let k_total = masks.k();
    let mut order: Vec<usize> = (0..k_total).collect();
    order.sort_by_key(|&k| masks.nnz_for_channel(k));
    (0..sk)
        .map(|i| order[((2 * i + 1) * k_total) / (2 * sk)])
        .collect()
}

/// Draws a Bernoulli activation mask, allocating the word vector.
///
/// Kept as the reference implementation the property tests compare
/// [`draw_act_mask_into`] against; the engine itself uses the
/// scratch-buffer variant.
#[cfg(test)]
fn draw_act_mask(rng: &mut StdRng, c: usize, words: usize, keep_prob: f64) -> Vec<u64> {
    let mut mask = vec![0u64; words];
    for ci in 0..c {
        if rng.gen_bool(keep_prob.clamp(0.0, 1.0)) {
            mask[ci / 64] |= 1u64 << (ci % 64);
        }
    }
    mask
}

/// Draws a Bernoulli activation mask into a caller-owned buffer. Consumes
/// exactly the same RNG stream as [`draw_act_mask`], so the two are
/// bit-identical for equal `(rng state, c, keep_prob)`.
pub(crate) fn draw_act_mask_into(rng: &mut StdRng, c: usize, keep_prob: f64, mask: &mut [u64]) {
    mask.fill(0);
    for ci in 0..c {
        if rng.gen_bool(keep_prob.clamp(0.0, 1.0)) {
            mask[ci / 64] |= 1u64 << (ci % 64);
        }
    }
}

fn hash_name(name: &str) -> u64 {
    name.bytes().fold(0xcbf29ce484222325u64, |h, b| (h ^ b as u64).wrapping_mul(0x100000001b3))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::CoefMasks;
    use escalate_core::quant::TernaryCoeffs;
    use escalate_models::LayerShape;
    use escalate_tensor::Tensor;

    fn workload(c: usize, k: usize, x: usize, coef_sparsity: f64, act_sparsity: f64) -> LayerWorkload {
        let m = 6;
        let coeffs = Tensor::from_fn(&[k, c, m], |i| {
            let h = (i[0] * 7919 + i[1] * 104729 + i[2] * 1299709) % 1000;
            if (h as f64) < coef_sparsity * 1000.0 {
                0.0
            } else if h % 2 == 0 {
                1.0
            } else {
                -1.0
            }
        });
        let t = TernaryCoeffs::ternarize(&coeffs, 0.0).unwrap();
        LayerWorkload {
            name: format!("c{c}k{k}x{x}"),
            shape: LayerShape::conv("t", c, k, x, x, 3, 1, 1),
            out_channels: k,
            mode: WorkloadMode::Decomposed(CoefMasks::from_ternary(&t)),
            act_sparsity,
            out_sparsity: act_sparsity,
            weight_bytes: 1000,
        }
    }

    #[test]
    fn cycles_scale_with_feature_map_size() {
        let cfg = SimConfig::default();
        let a = simulate_layer(&workload(64, 64, 16, 0.9, 0.5), &cfg, 0);
        let b = simulate_layer(&workload(64, 64, 32, 0.9, 0.5), &cfg, 0);
        assert!(b.cycles > 2 * a.cycles, "4x positions should give ~4x cycles: {} vs {}", a.cycles, b.cycles);
    }

    #[test]
    fn cycles_scale_with_output_channels() {
        let cfg = SimConfig::default();
        let a = simulate_layer(&workload(64, 64, 16, 0.9, 0.5), &cfg, 0);
        let b = simulate_layer(&workload(64, 256, 16, 0.9, 0.5), &cfg, 0);
        assert!(b.cycles > 3 * a.cycles);
    }

    #[test]
    fn dense_activations_slow_the_ca() {
        let cfg = SimConfig::default();
        let sparse = simulate_layer(&workload(256, 64, 16, 0.9, 0.8), &cfg, 0);
        let dense = simulate_layer(&workload(256, 64, 16, 0.9, 0.0), &cfg, 0);
        assert!(dense.cycles > sparse.cycles);
    }

    #[test]
    fn low_coef_sparsity_creates_mac_idle() {
        // Wide layer, dense coefficients and activations: the CA cannot
        // keep up with the 9-cycle MAC service time.
        let cfg = SimConfig::default();
        let busy = simulate_layer(&workload(512, 64, 16, 0.3, 0.3), &cfg, 0);
        assert!(busy.mac_idle_cycles > 0, "expected idle MACs");
        // High sparsity frees the CA.
        let fast = simulate_layer(&workload(512, 64, 16, 0.98, 0.7), &cfg, 0);
        assert!(fast.mac_idle_fraction() < busy.mac_idle_fraction());
    }

    #[test]
    fn speedup_bounded_by_c_over_m() {
        // With perfect sparsity the layer is MAC-bound: cycles ≈
        // K·positions·RS / (N_PE·l) — the C/M compute bound of §5.2.2.
        let cfg = SimConfig::default();
        let lw = workload(512, 64, 20, 0.99, 0.9);
        let s = simulate_layer(&lw, &cfg, 0);
        let mac_bound = (64.0 * 400.0 * 9.0 / (32.0 * 5.0)) as u64;
        assert!(s.cycles >= mac_bound, "{} < {mac_bound}", s.cycles);
        assert!(s.cycles < mac_bound * 3, "{} should be near the MAC bound {mac_bound}", s.cycles);
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = SimConfig::default();
        let lw = workload(128, 32, 16, 0.8, 0.5);
        let a = simulate_layer(&lw, &cfg, 7);
        let b = simulate_layer(&lw, &cfg, 7);
        assert_eq!(a, b);
        let c = simulate_layer(&lw, &cfg, 8);
        // Different input sample: cycle counts may differ slightly.
        assert_eq!(a.mac_ops, c.mac_ops);
    }

    #[test]
    fn small_ifm_avoids_dram_restreaming() {
        let cfg = SimConfig::default();
        // 16x16x64 compressed easily fits 40KB of input buffers.
        let small = simulate_layer(&workload(64, 256, 16, 0.9, 0.5), &cfg, 0);
        let one_load = small.dram.ifm;
        // 64x64x256 exceeds the buffers: re-streamed per round (2 rounds).
        let big = simulate_layer(&workload(256, 256, 64, 0.9, 0.5), &cfg, 0);
        assert!(big.dram.ifm > one_load);
        assert_eq!(small.dram.weights, 1000);
    }

    proptest::proptest! {
        /// The scratch-buffer mask draw must consume the identical RNG
        /// stream as the allocating reference for any `(c, keep_prob)`.
        #[test]
        fn scratch_mask_draw_matches_allocating(
            c in 1usize..300,
            keep_prob in 0.0f64..1.0,
            seed in proptest::prelude::any::<u64>(),
        ) {
            let words = c.div_ceil(64);
            let mut r_alloc = StdRng::seed_from_u64(seed);
            let mut r_scratch = StdRng::seed_from_u64(seed);
            let reference = draw_act_mask(&mut r_alloc, c, words, keep_prob);
            let mut mask = vec![u64::MAX; words]; // deliberately dirty
            draw_act_mask_into(&mut r_scratch, c, keep_prob, &mut mask);
            proptest::prop_assert_eq!(&reference, &mask);
            // Both RNGs must land in the same state afterwards.
            proptest::prop_assert_eq!(
                draw_act_mask(&mut r_alloc, c, words, keep_prob),
                {
                    draw_act_mask_into(&mut r_scratch, c, keep_prob, &mut mask);
                    mask.clone()
                }
            );
        }
    }

    #[test]
    fn model_stats_aggregate() {
        let cfg = SimConfig::default();
        let w = Workload {
            model_name: "toy".into(),
            layers: vec![workload(64, 64, 16, 0.9, 0.5), workload(64, 128, 16, 0.9, 0.5)],
        };
        let s = simulate_model(&w, &cfg, 0);
        assert_eq!(s.layers.len(), 2);
        assert_eq!(s.total_cycles(), s.layers[0].cycles + s.layers[1].cycles);
    }
}
