//! The sampled (throughput) fidelity: the default per-layer engine.
//!
//! For decomposed layers the engine drives the shared simulation core
//! ([`crate::context`]) with a synthetic [`MaskSource::Bernoulli`]: the
//! bit-exact CA component models run on a deterministic sample of
//! (output channel, input position) pairs, then
//! [`crate::context::assemble_stats`] extrapolates by the Basis-First
//! mapping's parallelism — output channels spread over `N_PE` blocks in
//! rounds, rows over `l` slices, and the CA/MAC stages of a slice overlap
//! via double buffering, so a slice advances at `max(CA time, R·S)` per
//! position. Dense layers take the fallback path.

use crate::accel::{Accelerator, Escalate};
use crate::config::SimConfig;
use crate::context::{
    assemble_stats, run_positions, LayerContext, NoopObserver, PositionAggregate, SimObserver,
    TrafficInputs,
};
use crate::fallback::simulate_dense;
use crate::masks::{layer_seed, MaskSource};
use crate::stats::{LayerStats, ModelStats};
use crate::workload::{LayerWorkload, Workload, WorkloadMode};

/// Input positions sampled per channel.
const SAMPLE_POSITIONS: usize = 48;

/// Simulates one layer.
///
/// `seed` controls the synthetic activation draw (the paper averages over
/// 10 random inputs; callers pass different seeds and average).
///
/// When a process-global metrics recorder is installed
/// (`escalate_obs::install`), the run's events flow into it through an
/// [`crate::observe::ObsObserver`]; with none installed this is exactly
/// the zero-cost [`NoopObserver`] path. The observer only reads the event
/// stream, so results are bit-identical either way.
pub fn simulate_layer(lw: &LayerWorkload, cfg: &SimConfig, seed: u64) -> LayerStats {
    match crate::observe::ObsObserver::from_global() {
        Some(mut obs) => simulate_layer_observed(lw, cfg, seed, &mut obs),
        None => simulate_layer_observed(lw, cfg, seed, &mut NoopObserver),
    }
}

/// [`simulate_layer`] with a [`SimObserver`] receiving every sampled
/// position's CA cost and the finished layer stats (the explicit observer
/// is used as-is; the global recorder is not consulted).
pub fn simulate_layer_observed(
    lw: &LayerWorkload,
    cfg: &SimConfig,
    seed: u64,
    obs: &mut dyn SimObserver,
) -> LayerStats {
    let stats = match &lw.mode {
        WorkloadMode::Dense => simulate_dense(&lw.shape, cfg, lw.weight_bytes),
        WorkloadMode::Decomposed(_) => {
            let ctx = LayerContext::new(lw, cfg).expect("decomposed mode checked above");
            let keep_prob = 1.0 - lw.act_sparsity;
            let sampled_k = ctx.sample_channels(cfg);
            let sp = lw.positions().clamp(1, SAMPLE_POSITIONS);
            let agg = if cfg.share_derived {
                shared_walk(&ctx, lw, cfg, seed, keep_prob, sp, &sampled_k, obs)
            } else {
                let mut source =
                    MaskSource::bernoulli(layer_seed(seed, &lw.name), ctx.c, keep_prob, sp);
                run_positions(&ctx, cfg, &sampled_k, &mut source, obs)
            };

            // Traffic estimated from the profiled sparsity: nonzero
            // payload plus the SparseMap bit mask.
            let nnz_act_bytes = (lw.shape.input_size() as f64 * keep_prob).ceil() as u64;
            let ifm_bytes = nnz_act_bytes + (lw.shape.input_size() as u64).div_ceil(8);
            assemble_stats(
                &ctx,
                cfg,
                &agg,
                &TrafficInputs {
                    nnz_act_bytes,
                    ifm_bytes,
                },
            )
        }
    };
    obs.on_layer(&stats);
    stats
}

/// The [`SimConfig::share_derived`] walk: serve the folded sums from the
/// cross-point walk cache when an earlier design point already performed
/// this exact walk, otherwise run it against cached masks and publish
/// the sums.
///
/// A hit reassembles the [`PositionAggregate`] bit-for-bit: the cached
/// per-channel sums are the walk's own f64 folds, and the one
/// mapping-dependent output (`max_block_time`) is `max_mean_pos ×
/// positions_per_slice` — multiplying every per-channel mean by the same
/// positive slice size is monotone, so the max of the products is the
/// product of the max. The walk counts as a plan reuse (the cached sums
/// embody a previously compiled plan's output).
#[allow(clippy::too_many_arguments)]
fn shared_walk(
    ctx: &LayerContext,
    lw: &LayerWorkload,
    cfg: &SimConfig,
    seed: u64,
    keep_prob: f64,
    sp: usize,
    sampled_k: &[usize],
    obs: &mut dyn SimObserver,
) -> PositionAggregate {
    let ls = layer_seed(seed, &lw.name);
    let key = crate::shared::walk_key(
        ctx.c,
        ctx.m,
        sampled_k,
        |k, mi| ctx.masks.mask(k, mi),
        ls,
        keep_prob,
        sp,
        lw.shape.r * lw.shape.s,
        cfg,
    );
    if let Some(sums) = crate::shared::cached_walk(&key) {
        let agg = PositionAggregate {
            sum_pos_cycles: sums.sum_pos_cycles,
            sum_matched: sums.sum_matched,
            sum_gather: sums.sum_gather,
            sum_idle: sums.sum_idle,
            max_mean_pos: sums.max_mean_pos,
            max_block_time: sums.max_mean_pos * ctx.positions_per_slice() as f64,
            sampled_channels: sampled_k.len(),
            positions_per_channel: sp,
            plan_compiles: 0,
            plan_reuses: 1,
        };
        obs.on_walk(&agg);
        return agg;
    }
    // Hardware-invariant across design points: the walk consumes exactly
    // `sampled_k.len() × sp` masks of the layer's Bernoulli stream, so
    // the materialized block is bit-identical to the live draw.
    let (words, _hit) = crate::shared::cached_masks(ls, ctx.c, keep_prob, sp, sampled_k.len());
    let mut source = MaskSource::materialized(words, ctx.c, sp);
    let agg = run_positions(ctx, cfg, sampled_k, &mut source, obs);
    crate::shared::store_walk(key, &agg);
    agg
}

/// Simulates a whole model: ESCALATE as an [`Accelerator`], folded through
/// the provided `simulate` (layers fan out over the global thread pool
/// unless `cfg.threads == 1`; each draws from its own RNG stream, so any
/// thread count is bit-identical).
pub fn simulate_model(workload: &Workload, cfg: &SimConfig, seed: u64) -> ModelStats {
    Escalate::new(workload, cfg).simulate(seed, cfg.threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::CoefMasks;
    use escalate_core::quant::TernaryCoeffs;
    use escalate_models::LayerShape;
    use escalate_tensor::Tensor;

    fn workload(
        c: usize,
        k: usize,
        x: usize,
        coef_sparsity: f64,
        act_sparsity: f64,
    ) -> LayerWorkload {
        let m = 6;
        let coeffs = Tensor::from_fn(&[k, c, m], |i| {
            let h = (i[0] * 7919 + i[1] * 104729 + i[2] * 1299709) % 1000;
            if (h as f64) < coef_sparsity * 1000.0 {
                0.0
            } else if h % 2 == 0 {
                1.0
            } else {
                -1.0
            }
        });
        let t = TernaryCoeffs::ternarize(&coeffs, 0.0).unwrap();
        LayerWorkload {
            name: format!("c{c}k{k}x{x}"),
            shape: LayerShape::conv("t", c, k, x, x, 3, 1, 1),
            out_channels: k,
            mode: WorkloadMode::Decomposed(CoefMasks::from_ternary(&t)),
            act_sparsity,
            out_sparsity: act_sparsity,
            weight_bytes: 1000,
        }
    }

    #[test]
    fn cycles_scale_with_feature_map_size() {
        let cfg = SimConfig::default();
        let a = simulate_layer(&workload(64, 64, 16, 0.9, 0.5), &cfg, 0);
        let b = simulate_layer(&workload(64, 64, 32, 0.9, 0.5), &cfg, 0);
        assert!(
            b.cycles > 2 * a.cycles,
            "4x positions should give ~4x cycles: {} vs {}",
            a.cycles,
            b.cycles
        );
    }

    #[test]
    fn cycles_scale_with_output_channels() {
        let cfg = SimConfig::default();
        let a = simulate_layer(&workload(64, 64, 16, 0.9, 0.5), &cfg, 0);
        let b = simulate_layer(&workload(64, 256, 16, 0.9, 0.5), &cfg, 0);
        assert!(b.cycles > 3 * a.cycles);
    }

    #[test]
    fn dense_activations_slow_the_ca() {
        let cfg = SimConfig::default();
        let sparse = simulate_layer(&workload(256, 64, 16, 0.9, 0.8), &cfg, 0);
        let dense = simulate_layer(&workload(256, 64, 16, 0.9, 0.0), &cfg, 0);
        assert!(dense.cycles > sparse.cycles);
    }

    #[test]
    fn low_coef_sparsity_creates_mac_idle() {
        // Wide layer, dense coefficients and activations: the CA cannot
        // keep up with the 9-cycle MAC service time.
        let cfg = SimConfig::default();
        let busy = simulate_layer(&workload(512, 64, 16, 0.3, 0.3), &cfg, 0);
        assert!(busy.mac_idle_cycles > 0, "expected idle MACs");
        // High sparsity frees the CA.
        let fast = simulate_layer(&workload(512, 64, 16, 0.98, 0.7), &cfg, 0);
        assert!(fast.mac_idle_fraction() < busy.mac_idle_fraction());
    }

    #[test]
    fn speedup_bounded_by_c_over_m() {
        // With perfect sparsity the layer is MAC-bound: cycles ≈
        // K·positions·RS / (N_PE·l) — the C/M compute bound of §5.2.2.
        let cfg = SimConfig::default();
        let lw = workload(512, 64, 20, 0.99, 0.9);
        let s = simulate_layer(&lw, &cfg, 0);
        let mac_bound = (64.0 * 400.0 * 9.0 / (32.0 * 5.0)) as u64;
        assert!(s.cycles >= mac_bound, "{} < {mac_bound}", s.cycles);
        assert!(
            s.cycles < mac_bound * 3,
            "{} should be near the MAC bound {mac_bound}",
            s.cycles
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = SimConfig::default();
        let lw = workload(128, 32, 16, 0.8, 0.5);
        let a = simulate_layer(&lw, &cfg, 7);
        let b = simulate_layer(&lw, &cfg, 7);
        assert_eq!(a, b);
        let c = simulate_layer(&lw, &cfg, 8);
        // Different input sample: cycle counts may differ slightly.
        assert_eq!(a.mac_ops, c.mac_ops);
    }

    #[test]
    fn small_ifm_avoids_dram_restreaming() {
        let cfg = SimConfig::default();
        // 16x16x64 compressed easily fits 40KB of input buffers.
        let small = simulate_layer(&workload(64, 256, 16, 0.9, 0.5), &cfg, 0);
        let one_load = small.dram.ifm;
        // 64x64x256 exceeds the buffers: re-streamed per round (2 rounds).
        let big = simulate_layer(&workload(256, 256, 64, 0.9, 0.5), &cfg, 0);
        assert!(big.dram.ifm > one_load);
        assert_eq!(small.dram.weights, 1000);
    }

    #[test]
    fn sample_channels_knob_changes_coverage_not_determinism() {
        let lw = workload(128, 64, 16, 0.8, 0.5);
        let narrow = SimConfig::default();
        let wide = SimConfig {
            sample_channels: 64,
            ..SimConfig::default()
        };
        // Same knob, same seed: identical.
        assert_eq!(simulate_layer(&lw, &wide, 3), simulate_layer(&lw, &wide, 3));
        // Full coverage and 8-channel sampling estimate the same layer.
        let a = simulate_layer(&lw, &narrow, 3);
        let b = simulate_layer(&lw, &wide, 3);
        assert_eq!(a.mac_ops, b.mac_ops);
        let ratio = a.cycles as f64 / b.cycles as f64;
        assert!((0.7..1.4).contains(&ratio), "cycle ratio {ratio}");
    }

    #[test]
    fn shared_derived_state_is_bit_identical() {
        let lw = workload(128, 32, 16, 0.8, 0.5);
        let cold = SimConfig::default();
        let shared = SimConfig {
            share_derived: true,
            ..SimConfig::default()
        };
        for seed in [0, 7] {
            assert_eq!(
                simulate_layer(&lw, &cold, seed),
                simulate_layer(&lw, &shared, seed),
                "seed {seed}"
            );
        }
        // Warm-cache repeat: the second shared run hits both caches.
        assert_eq!(
            simulate_layer(&lw, &shared, 3),
            simulate_layer(&lw, &shared, 3)
        );
        // A different hardware point still shares masks and plans (both
        // are hardware-invariant) without changing its own results.
        let wide = SimConfig {
            input_bus_bytes: 64,
            n_pe: 8,
            ..cold
        };
        let wide_shared = SimConfig {
            share_derived: true,
            ..wide
        };
        assert_eq!(
            simulate_layer(&lw, &wide, 5),
            simulate_layer(&lw, &wide_shared, 5)
        );
    }

    #[test]
    fn walk_cache_serves_other_mappings_bit_identically() {
        // The walk sums are CA-invariant: points differing only in PE
        // count (different block/slice mapping, hence different
        // max_block_time) reuse the cached walk yet must match their own
        // cold runs exactly.
        let lw = workload(96, 48, 16, 0.85, 0.4);
        let warmup = SimConfig {
            share_derived: true,
            ..SimConfig::default()
        };
        let _ = simulate_layer(&lw, &warmup, 11);
        for n_pe in [8, 16, 64] {
            let cold = SimConfig {
                n_pe,
                ..SimConfig::default()
            };
            let shared = SimConfig {
                share_derived: true,
                ..cold
            };
            assert_eq!(
                simulate_layer(&lw, &cold, 11),
                simulate_layer(&lw, &shared, 11),
                "n_pe {n_pe}"
            );
        }
        // A different bus width is a different CA cost model: its walk is
        // keyed separately and still matches the cold run.
        let wide_cold = SimConfig {
            input_bus_bytes: 64,
            ..SimConfig::default()
        };
        let wide_shared = SimConfig {
            share_derived: true,
            ..wide_cold
        };
        assert_eq!(
            simulate_layer(&lw, &wide_cold, 11),
            simulate_layer(&lw, &wide_shared, 11)
        );
    }

    #[test]
    fn model_stats_aggregate() {
        let cfg = SimConfig::default();
        let w = Workload {
            model_name: "toy".into(),
            layers: vec![
                workload(64, 64, 16, 0.9, 0.5),
                workload(64, 128, 16, 0.9, 0.5),
            ],
        };
        let s = simulate_model(&w, &cfg, 0);
        assert_eq!(s.layers.len(), 2);
        assert_eq!(s.total_cycles(), s.layers[0].cycles + s.layers[1].cycles);
    }
}
