//! The simulation core shared by every fidelity.
//!
//! The three simulation modes — sampled ([`crate::engine`]), trace-driven
//! ([`crate::trace`]), and cycle-stepped ([`crate::detailed`]) — used to
//! re-derive the identical per-layer setup and re-implement the same
//! position walk with drifting constants. This module owns that setup
//! once:
//!
//! - [`LayerContext`] derives everything the Basis-First mapping fixes per
//!   layer (effective `R·S`, the MAC row, the pointwise `parallel_k`, the
//!   block/slice [`Mapping`], the stratified channel sample) in exactly
//!   one place;
//! - [`run_positions`] walks sampled channels × positions against any
//!   [`MaskSource`], folding per-position CA costs into a
//!   [`PositionAggregate`] with the engine's historical arithmetic order
//!   (bit-identical results);
//! - [`assemble_stats`] extrapolates an aggregate into [`LayerStats`]
//!   under one traffic model, taking only the fidelity-specific IFM byte
//!   counts as input;
//! - [`SimObserver`] is the hook through which per-position and per-slice
//!   events flow to instrumentation without touching the hot path's
//!   structure.

use crate::ca::{LayerPlan, PositionCost, PositionKernel, MAX_BATCH};
use crate::config::SimConfig;
use crate::dataflow::Mapping;
use crate::error::SimError;
use crate::mac::MacRow;
use crate::masks::MaskSource;
use crate::slice::SliceTrace;
use crate::stats::{DramTraffic, LayerStats, SramTraffic};
use crate::workload::{CoefMasks, LayerWorkload, WorkloadMode};
use escalate_tensor::Tensor;
use std::cell::RefCell;

/// Per-layer derived state of the Basis-First mapping, built once and
/// shared by every fidelity. This is the *only* place `rs`, [`MacRow`],
/// `parallel_k` and [`Mapping`] are derived from a workload.
pub struct LayerContext<'a> {
    /// The layer being simulated.
    pub lw: &'a LayerWorkload,
    /// Coefficient bitmasks of the decomposed layer.
    pub masks: &'a CoefMasks,
    /// Output channels `K`.
    pub k_total: usize,
    /// Input channels `C`.
    pub c: usize,
    /// Basis count `M`.
    pub m: usize,
    /// Mask words per channel (`⌈C/64⌉`).
    pub words: usize,
    /// Effective kernel area: SCNN-style scatter with stride means only
    /// ~`R·S/stride²` of a basis kernel's products land on valid output
    /// positions, shrinking the MAC service time per intermediate element.
    pub rs: usize,
    /// The `M`-MAC row servicing one slice.
    pub mac_row: MacRow,
    /// Output channels retired per block pass: pointwise workloads
    /// (`M = 1`) would leave `M−1` CA-MAC pairs idle, so the dataflow
    /// assigns each pair its own output channel instead.
    pub parallel_k: usize,
    /// Block/slice assignment of channels and rows.
    pub mapping: Mapping,
}

impl<'a> LayerContext<'a> {
    /// Derives the context for a decomposed layer.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NotDecomposed`] for dense-fallback workloads —
    /// they have no coefficient masks to simulate (the sampling engine
    /// routes them to [`crate::fallback`] before building a context) —
    /// and [`SimError::UnsupportedLayer`] for grouped convolutions, whose
    /// per-group reduction the decomposed datapath cannot express (the
    /// compression pipeline keeps them dense, so a decomposed grouped
    /// workload is a caller bug this catches instead of mis-simulating).
    pub fn new(lw: &'a LayerWorkload, cfg: &SimConfig) -> Result<LayerContext<'a>, SimError> {
        if let escalate_models::LayerKind::GroupedConv { .. } = lw.shape.kind {
            return Err(SimError::UnsupportedLayer {
                layer: lw.name.clone(),
                kind: lw.shape.kind.to_string(),
            });
        }
        let WorkloadMode::Decomposed(masks) = &lw.mode else {
            return Err(SimError::NotDecomposed {
                layer: lw.name.clone(),
            });
        };
        let k_total = masks.k();
        let c = masks.c();
        let m = masks.m();
        let rs = (lw.shape.r * lw.shape.s)
            .div_ceil(lw.shape.stride * lw.shape.stride)
            .max(1);
        let mac_row = MacRow::new(m, rs);
        let parallel_k = if m == 1 { cfg.m.max(1) } else { 1 };
        let mapping = Mapping::new(cfg, k_total.div_ceil(parallel_k), lw.shape.x);
        Ok(LayerContext {
            lw,
            masks,
            k_total,
            c,
            m,
            words: c.div_ceil(64),
            rs,
            mac_row,
            parallel_k,
            mapping,
        })
    }

    /// Checks a concrete feature map against the workload's shape.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::BadFeatureMap`] for non-rank-3 tensors and
    /// [`SimError::ShapeMismatch`] when the dimensions disagree.
    pub fn validate_ifm(&self, ifm: &Tensor) -> Result<(), SimError> {
        let [c, x, y]: [usize; 3] =
            ifm.shape()
                .try_into()
                .map_err(|_| SimError::BadFeatureMap {
                    layer: self.lw.name.clone(),
                    shape: ifm.shape().to_vec(),
                })?;
        if (c, x, y) != (self.c, self.lw.shape.x, self.lw.shape.y) {
            return Err(SimError::ShapeMismatch {
                layer: self.lw.name.clone(),
                expected: [self.c, self.lw.shape.x, self.lw.shape.y],
                got: [c, x, y],
            });
        }
        Ok(())
    }

    /// Input positions owned by one slice (`rows_per_slice × Y`).
    pub fn positions_per_slice(&self) -> usize {
        self.mapping.rows_per_slice() * self.lw.shape.y
    }

    /// The stratified output-channel sample: quantile representatives of
    /// the per-channel coefficient-count distribution (`cfg.sample_channels`
    /// of them, or every channel when `K` is smaller), because the counts
    /// are heavy-tailed and a fixed stride can land on unrepresentative
    /// channels.
    pub fn sample_channels(&self, cfg: &SimConfig) -> Vec<usize> {
        let sk = self.k_total.min(cfg.sample_channels.max(1));
        let mut order: Vec<usize> = (0..self.k_total).collect();
        order.sort_by_key(|&k| self.masks.nnz_for_channel(k));
        (0..sk)
            .map(|i| order[((2 * i + 1) * self.k_total) / (2 * sk)])
            .collect()
    }
}

/// A per-position event flowing through [`SimObserver::on_position`].
pub struct PositionEvent<'a> {
    /// Output channel being walked.
    pub channel: usize,
    /// Position index within the walk (`0..positions`).
    pub position: usize,
    /// The CA cost model's verdict for this position.
    pub cost: &'a PositionCost,
    /// MAC-row cycles the position occupies (`max(CA, R·S)`).
    pub mac_row_cycles: u64,
}

/// A per-slice event flowing through [`SimObserver::on_slice`] (emitted by
/// the detailed fidelity, which steps whole slices).
pub struct SliceEvent<'a> {
    /// Output channel the slice run belongs to.
    pub channel: usize,
    /// Slice index within the block (`0..l`).
    pub slice: usize,
    /// The cycle-stepped pipeline trace.
    pub trace: &'a SliceTrace,
}

/// Instrumentation hook for the simulation core: implementors receive
/// every per-position CA cost (sampled and trace-driven fidelities),
/// every cycle-stepped slice trace (detailed fidelity), and the finished
/// per-layer stats (sampled and trace-driven fidelities, dense-fallback
/// layers included). All methods default to no-ops, so observers
/// implement only what they record.
pub trait SimObserver {
    /// Called once per simulated (channel, position) pair.
    fn on_position(&mut self, _ev: &PositionEvent) {}

    /// Called once per cycle-stepped (channel, slice) run.
    fn on_slice(&mut self, _ev: &SliceEvent) {}

    /// Called once per finished channel × position walk with the folded
    /// aggregate — the hook through which kernel-level statistics (layer
    /// plan compiles/reuses) reach instrumentation.
    fn on_walk(&mut self, _agg: &PositionAggregate) {}

    /// Called once per finished layer with the stats the simulation
    /// returns — exactly the values callers see, so observer-side totals
    /// reconcile with [`crate::stats::ModelStats`] count-for-count.
    fn on_layer(&mut self, _stats: &LayerStats) {}
}

/// The do-nothing observer the plain entry points use.
pub struct NoopObserver;

impl SimObserver for NoopObserver {}

/// Folded result of one channel × position walk.
///
/// Sums are kept in the engine's historical arithmetic order — per-channel
/// position means accumulated as f64 — so the sampled fidelity stays
/// bit-identical across the refactor.
#[derive(Debug, Clone, Copy, Default)]
pub struct PositionAggregate {
    /// Σ over sampled channels of the mean per-position MAC-row cycles.
    pub sum_pos_cycles: f64,
    /// Σ matched (activation, coefficient) pairs over all samples.
    pub sum_matched: f64,
    /// Σ concentration gather passes over all samples.
    pub sum_gather: f64,
    /// Σ MAC idle cycles over all samples.
    pub sum_idle: f64,
    /// Slowest per-block drain time seen (mean position cycles × the
    /// positions one slice owns).
    pub max_block_time: f64,
    /// Largest per-channel mean position cycles seen — the
    /// mapping-invariant factor of `max_block_time` (multiplying every
    /// per-channel mean by the positive slice size is monotone, so
    /// `max_block_time = max_mean_pos × positions_per_slice` bit-for-bit),
    /// which is what lets the walk cache serve design points whose
    /// mappings differ.
    pub max_mean_pos: f64,
    /// Channels walked.
    pub sampled_channels: usize,
    /// Positions walked per channel.
    pub positions_per_channel: usize,
    /// 1 when this walk compiled a fresh [`LayerPlan`], 0 when it reused
    /// the kernel's installed plan.
    pub plan_compiles: u64,
    /// 1 when this walk reused the kernel's installed [`LayerPlan`]
    /// (verified word-for-word by [`LayerPlan::matches`]).
    pub plan_reuses: u64,
}

thread_local! {
    // One PositionKernel per host thread, reused across layers (and
    // across whole simulations) as long as the config's kernel-relevant
    // knobs are unchanged — `bind` resets all per-channel state, so the
    // reuse cannot leak state between layers and results stay
    // bit-identical at any thread count.
    static KERNEL_CACHE: RefCell<Option<PositionKernel>> = const { RefCell::new(None) };
}

/// Walks `sampled_k × source.positions()` through the bit-exact CA cost
/// model, allocating nothing per position. This is the one inner loop
/// every fidelity that aggregates per-position costs drives.
///
/// Uses a thread-local [`PositionKernel`] (rebuilt only when `cfg`'s
/// kernel-relevant knobs change), which also caches the compiled
/// [`LayerPlan`] — repeated walks of the same layer (seed sweeps,
/// fidelity comparisons) reuse the plan instead of recompiling it;
/// [`run_positions_with`] is the same walk against a caller-owned kernel.
pub fn run_positions(
    ctx: &LayerContext,
    cfg: &SimConfig,
    sampled_k: &[usize],
    source: &mut MaskSource,
    obs: &mut dyn SimObserver,
) -> PositionAggregate {
    KERNEL_CACHE.with(|cell| {
        let mut slot = cell.borrow_mut();
        let kernel = match slot.as_mut() {
            Some(k) if k.matches(cfg) => k,
            _ => slot.insert(PositionKernel::new(cfg)),
        };
        run_positions_with(ctx, cfg, sampled_k, source, obs, kernel)
    })
}

/// [`run_positions`] against a caller-owned [`PositionKernel`] (which must
/// have been built from an equivalent config). Compiles a [`LayerPlan`]
/// for the sampled channels — or reuses the kernel's installed plan when
/// it matches word-for-word — and walks positions in batches of
/// [`MAX_BATCH`]; the per-position fold order (and hence every f64
/// accumulation feeding [`assemble_stats`]) is identical to a
/// one-position-at-a-time walk.
pub fn run_positions_with(
    ctx: &LayerContext,
    cfg: &SimConfig,
    sampled_k: &[usize],
    source: &mut MaskSource,
    obs: &mut dyn SimObserver,
    kernel: &mut PositionKernel,
) -> PositionAggregate {
    assert!(kernel.matches(cfg), "kernel built from a different config");
    let _span = escalate_obs::span("ca.kernel");
    let sp = source.positions();
    let mut agg = PositionAggregate {
        sampled_channels: sampled_k.len(),
        positions_per_channel: sp,
        ..PositionAggregate::default()
    };
    let mask = |k: usize, mi: usize| ctx.masks.mask(k, mi);
    if kernel
        .plan()
        .is_some_and(|p| p.matches(ctx.c, ctx.m, sampled_k, mask))
    {
        agg.plan_reuses = 1;
    } else if cfg.share_derived {
        // The derived-state cache verifies a candidate word-for-word
        // (same gate as the local reuse above) before handing it out, so
        // a hit is a true reuse; a miss built and published a fresh plan.
        let (plan, hit) = crate::shared::cached_plan(ctx.c, ctx.m, sampled_k, mask);
        kernel.install_shared_plan(plan);
        if hit {
            agg.plan_reuses = 1;
        } else {
            agg.plan_compiles = 1;
        }
    } else {
        kernel.install_plan(LayerPlan::build(ctx.c, ctx.m, sampled_k, mask));
        agg.plan_compiles = 1;
    }
    // The batch buffers are reused across every sampled channel; all
    // channel-invariant work (coefficient copies, union masks, skip
    // tables) was precomputed by the plan, so `bind_planned` is a few
    // memcpys.
    let mut batch = vec![0u64; MAX_BATCH * ctx.words];
    let mut costs = [PositionCost::default(); MAX_BATCH];
    for (idx, &k) in sampled_k.iter().enumerate() {
        kernel.bind_planned(idx);
        let mut k_pos_cycles = 0.0f64;
        let mut p = 0usize;
        while p < sp {
            let n = MAX_BATCH.min(sp - p);
            for b in 0..n {
                // Masks are materialized in position order, so Bernoulli
                // sources consume their RNG stream exactly as the
                // unbatched walk did.
                source.mask_into(p + b, &mut batch[b * ctx.words..(b + 1) * ctx.words]);
            }
            kernel.cost_batch(&batch[..n * ctx.words], n, &mut costs);
            for (b, cost) in costs.iter().enumerate().take(n) {
                let pos_cycles = ctx.mac_row.position_cycles(cost.ca_cycles);
                k_pos_cycles += pos_cycles as f64;
                agg.sum_matched += cost.matched as f64;
                agg.sum_gather += cost.gather_passes as f64;
                agg.sum_idle += ctx.mac_row.idle_cycles(cost.ca_cycles) as f64;
                obs.on_position(&PositionEvent {
                    channel: k,
                    position: p + b,
                    cost,
                    mac_row_cycles: pos_cycles,
                });
            }
            p += n;
        }
        let mean_pos = k_pos_cycles / sp as f64;
        agg.sum_pos_cycles += mean_pos;
        agg.max_mean_pos = agg.max_mean_pos.max(mean_pos);
        let block_time = mean_pos * ctx.positions_per_slice() as f64;
        agg.max_block_time = agg.max_block_time.max(block_time);
    }
    obs.on_walk(&agg);
    agg
}

/// The fidelity-specific traffic inputs [`assemble_stats`] cannot derive
/// itself: how many IFM bytes actually move. The sampling engine estimates
/// both from the profiled sparsity; the trace-driven mode measures them on
/// the concrete feature map (exact SparseMap stream sizes).
pub struct TrafficInputs {
    /// Nonzero activation payload bytes of the input feature map.
    pub nnz_act_bytes: u64,
    /// Compressed IFM size in DRAM (payload + bit masks).
    pub ifm_bytes: u64,
}

/// Extrapolates a [`PositionAggregate`] into full-layer [`LayerStats`]
/// under the work-queue schedule and the shared DRAM/SRAM traffic model.
///
/// When the walk covered every channel and every position, the counters
/// are taken as exact integer sums (no extrapolation — this is what makes
/// full-coverage trace runs comparable, count-for-count, with the detailed
/// fidelity); otherwise they extrapolate through the engine's historical
/// mean-based estimator, preserving its f64 arithmetic order bit-for-bit.
pub fn assemble_stats(
    ctx: &LayerContext,
    cfg: &SimConfig,
    agg: &PositionAggregate,
    traffic: &TrafficInputs,
) -> LayerStats {
    let lw = ctx.lw;
    let k_total = ctx.k_total;
    let samples = (agg.sampled_channels * agg.positions_per_channel) as f64;
    let mean_pos_cycles = agg.sum_pos_cycles / agg.sampled_channels as f64;
    let mean_matched = agg.sum_matched / samples;
    let mean_gather = agg.sum_gather / samples;
    let mean_idle = agg.sum_idle / samples;

    let positions = lw.positions() as f64;
    let positions_per_slice = ctx.positions_per_slice() as f64;

    // Work-queue schedule: blocks pull the next output channel (group) as
    // they finish; the layer ends when the slowest block drains.
    let total_block_work =
        (k_total as f64 / ctx.parallel_k as f64) * positions_per_slice * mean_pos_cycles;
    let compute_cycles = (total_block_work / cfg.n_pe as f64)
        .max(agg.max_block_time)
        .ceil() as u64;

    let mac_ops = (k_total as f64 * positions * ctx.mac_row.ops_per_position() as f64) as u64;
    let full_coverage =
        agg.sampled_channels == k_total && agg.positions_per_channel == lw.positions();
    let (ca_adds, gather_passes, mac_idle) = if full_coverage {
        // The sums are exact integer counts (every addend was an integer
        // cast, well inside f64's exact range).
        (
            agg.sum_matched as u64,
            agg.sum_gather as u64,
            agg.sum_idle as u64,
        )
    } else {
        (
            (k_total as f64 * positions * mean_matched) as u64,
            (k_total as f64 * positions * mean_gather) as u64,
            (k_total as f64 * positions * mean_idle) as u64,
        )
    };
    let mac_slots = (k_total as f64 * positions * ctx.m as f64 * mean_pos_cycles).max(1.0) as u64;

    // DRAM traffic. Weights stream once (they fit on-chip after the first
    // load thanks to coefficient compression); the compressed IFM
    // re-streams once per output-channel round unless it fits in the
    // distributed input buffers.
    let rounds = ctx.mapping.rounds() as u64;
    let ifm_loads = if traffic.ifm_bytes <= cfg.total_input_buf_bytes() as u64 {
        1
    } else {
        rounds
    };
    // The OFM is written back SparseMap-compressed (post-ReLU nonzeros
    // plus the bit mask), like every activation tensor.
    let ofm_dense = (lw.out_channels * lw.shape.out_x() * lw.shape.out_y()) as u64;
    let ofm_bytes =
        (ofm_dense as f64 * (1.0 - lw.out_sparsity)).ceil() as u64 + ofm_dense.div_ceil(8);

    // SRAM traffic.
    let coef_bytes_per_pos =
        (ctx.c * ctx.m) as u64 / 8 + (ctx.masks.total_nnz() as u64 / k_total.max(1) as u64) / 8;
    let sram = SramTraffic {
        input_buf: traffic.nnz_act_bytes * rounds + traffic.ifm_bytes * ifm_loads,
        coef_buf: (k_total as f64 * positions) as u64 * coef_bytes_per_pos.max(1),
        psum_buf: (k_total as f64 * positions) as u64
            * ctx.mac_row.psum_accesses_per_position()
            * 2,
        output_buf: ofm_bytes,
        act_buf: ca_adds,
    };

    // Memory-bound layers pace at the DRAM bandwidth.
    let dram_total = lw.weight_bytes + traffic.ifm_bytes * ifm_loads + ofm_bytes;
    let dram_cycles = (dram_total as f64 / cfg.dram_bytes_per_cycle).ceil() as u64;
    let cycles = compute_cycles.max(dram_cycles);

    LayerStats {
        name: lw.name.clone(),
        cycles: cycles.max(1),
        mac_ops,
        ca_adds,
        gather_passes,
        mac_idle_cycles: mac_idle,
        mac_cycle_slots: mac_slots,
        dram: DramTraffic {
            weights: lw.weight_bytes,
            ifm: traffic.ifm_bytes * ifm_loads,
            ofm: ofm_bytes,
        },
        sram,
        fallback: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::CoefMasks;
    use escalate_core::quant::TernaryCoeffs;
    use escalate_models::LayerShape;

    fn workload(c: usize, k: usize, m: usize, x: usize) -> LayerWorkload {
        let coeffs = escalate_tensor::Tensor::from_fn(&[k, c, m], |i| {
            match (i[0] * 7 + i[1] * 3 + i[2]) % 5 {
                0 => 1.0,
                1 => -1.0,
                _ => 0.0,
            }
        });
        let t = TernaryCoeffs::ternarize(&coeffs, 0.0).unwrap();
        LayerWorkload {
            name: format!("ctx{c}x{k}"),
            shape: LayerShape::conv("t", c, k, x, x, 3, 1, 1),
            out_channels: k,
            mode: WorkloadMode::Decomposed(CoefMasks::from_ternary(&t)),
            act_sparsity: 0.5,
            out_sparsity: 0.5,
            weight_bytes: 100,
        }
    }

    #[test]
    fn context_rejects_dense_workloads() {
        let lw = LayerWorkload {
            name: "dense".into(),
            shape: LayerShape::conv("d", 3, 8, 8, 8, 3, 1, 1),
            out_channels: 8,
            mode: WorkloadMode::Dense,
            act_sparsity: 0.5,
            out_sparsity: 0.5,
            weight_bytes: 10,
        };
        let err = LayerContext::new(&lw, &SimConfig::default())
            .err()
            .expect("must reject");
        assert!(matches!(err, SimError::NotDecomposed { .. }));
    }

    #[test]
    fn context_rejects_grouped_layers_with_a_typed_error() {
        // A grouped conv must never reach the decomposed datapath — the
        // basis kernels assume a full cross-channel reduction.
        let mut lw = workload(32, 8, 6, 8);
        lw.shape = LayerShape::grouped_conv("g", 32, 8, 8, 8, 3, 1, 1, 4);
        let err = LayerContext::new(&lw, &SimConfig::default())
            .err()
            .expect("must reject");
        assert!(matches!(err, SimError::UnsupportedLayer { .. }), "{err}");
        assert!(err.to_string().contains("gconv"), "{err}");
        // Even a dense-mode grouped workload reports the kind, not a
        // misleading NotDecomposed.
        lw.mode = WorkloadMode::Dense;
        let err = LayerContext::new(&lw, &SimConfig::default())
            .err()
            .expect("must reject");
        assert!(matches!(err, SimError::UnsupportedLayer { .. }), "{err}");
    }

    #[test]
    fn context_accepts_dilated_layers() {
        // Dilation changes only output geometry; the decomposed datapath
        // applies unchanged, so the context must build.
        let mut lw = workload(32, 8, 6, 8);
        lw.shape = LayerShape::dilated_conv("d", 32, 8, 8, 8, 3, 1, 2, 2);
        let ctx = LayerContext::new(&lw, &SimConfig::default()).expect("dilated must simulate");
        assert_eq!(ctx.rs, 9, "tap count is dilation-invariant");
    }

    #[test]
    fn pointwise_layers_parallelize_channels() {
        let cfg = SimConfig::default();
        let pw = workload(64, 32, 1, 8);
        let ctx = LayerContext::new(&pw, &cfg).unwrap();
        assert_eq!(ctx.parallel_k, cfg.m);
        assert_eq!(ctx.rs, 9);
        let full = workload(64, 32, 6, 8);
        assert_eq!(LayerContext::new(&full, &cfg).unwrap().parallel_k, 1);
    }

    #[test]
    fn ifm_validation_reports_typed_errors() {
        let lw = workload(32, 8, 6, 8);
        let ctx = LayerContext::new(&lw, &SimConfig::default()).unwrap();
        assert!(ctx.validate_ifm(&Tensor::zeros(&[32, 8, 8])).is_ok());
        assert!(matches!(
            ctx.validate_ifm(&Tensor::zeros(&[32, 8])),
            Err(SimError::BadFeatureMap { .. })
        ));
        assert!(matches!(
            ctx.validate_ifm(&Tensor::zeros(&[16, 8, 8])),
            Err(SimError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn channel_sample_respects_the_config_knob() {
        let lw = workload(32, 64, 6, 8);
        let cfg = SimConfig::default();
        let ctx = LayerContext::new(&lw, &cfg).unwrap();
        assert_eq!(ctx.sample_channels(&cfg).len(), cfg.sample_channels);
        let wide = SimConfig {
            sample_channels: 1000,
            ..cfg
        };
        let all = ctx.sample_channels(&wide);
        assert_eq!(all.len(), 64, "clamped to K");
        // Full coverage is a permutation of every channel.
        let mut sorted = all.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn observer_sees_every_sampled_position() {
        struct Counter {
            positions: usize,
        }
        impl SimObserver for Counter {
            fn on_position(&mut self, _ev: &PositionEvent) {
                self.positions += 1;
            }
        }
        let lw = workload(48, 16, 6, 6);
        let cfg = SimConfig::default();
        let ctx = LayerContext::new(&lw, &cfg).unwrap();
        let sampled = ctx.sample_channels(&cfg);
        let mut source = MaskSource::bernoulli(1, ctx.c, 0.5, 10);
        let mut counter = Counter { positions: 0 };
        let agg = run_positions(&ctx, &cfg, &sampled, &mut source, &mut counter);
        assert_eq!(counter.positions, sampled.len() * 10);
        assert_eq!(agg.sampled_channels, sampled.len());
        assert_eq!(agg.positions_per_channel, 10);
    }
}
