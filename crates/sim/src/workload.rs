//! Layer workloads: the sparse structure the accelerator executes.
//!
//! The simulator consumes only the *nonzero structure* of the compressed
//! model — per-(output-channel, basis) coefficient bitmasks over the input
//! channels — plus layer shapes and activation sparsity. Workloads are
//! built from the compression pipeline's artifacts so the hardware
//! evaluation runs the very model Table 1 accounts for.

use escalate_core::quant::TernaryCoeffs;
use escalate_core::CompressedLayer;
use escalate_models::{LayerShape, ModelProfile};

/// Per-layer coefficient bitmasks: for each output channel `k` and basis
/// index `m`, one bit per input channel `c` (set when `Ce(k,c,m) ≠ 0`).
#[derive(Debug, Clone)]
pub struct CoefMasks {
    k: usize,
    c: usize,
    m: usize,
    words_per_mask: usize,
    /// Masks laid out `[k][m][word]`.
    words: Vec<u64>,
}

impl CoefMasks {
    /// Builds masks from ternary coefficients (`K×C×M`).
    pub fn from_ternary(t: &TernaryCoeffs) -> Self {
        let [k, c, m] = t.shape();
        let words_per_mask = c.div_ceil(64);
        let mut words = vec![0u64; k * m * words_per_mask];
        for ki in 0..k {
            let slice = t.slice(ki); // C×M row-major
            for ci in 0..c {
                for mi in 0..m {
                    if slice[ci * m + mi] != 0 {
                        let base = (ki * m + mi) * words_per_mask;
                        words[base + ci / 64] |= 1u64 << (ci % 64);
                    }
                }
            }
        }
        CoefMasks {
            k,
            c,
            m,
            words_per_mask,
            words,
        }
    }

    /// Number of output channels `K`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of input channels `C`.
    pub fn c(&self) -> usize {
        self.c
    }

    /// Number of basis kernels `M`.
    pub fn m(&self) -> usize {
        self.m
    }

    /// The mask words for `(k, m)` covering all `C` input channels.
    ///
    /// # Panics
    ///
    /// Panics if `k` or `m` is out of range.
    pub fn mask(&self, k: usize, m: usize) -> &[u64] {
        assert!(k < self.k && m < self.m, "mask index out of range");
        let base = (k * self.m + m) * self.words_per_mask;
        &self.words[base..base + self.words_per_mask]
    }

    /// Nonzero coefficients for output channel `k` across all bases.
    pub fn nnz_for_channel(&self, k: usize) -> usize {
        (0..self.m)
            .map(|m| {
                self.mask(k, m)
                    .iter()
                    .map(|w| w.count_ones() as usize)
                    .sum::<usize>()
            })
            .sum()
    }

    /// Total nonzero coefficients.
    pub fn total_nnz(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }
}

/// How a layer executes on the accelerator.
#[derive(Debug, Clone)]
pub enum WorkloadMode {
    /// Decomposed convolution through the CA + MAC-row pipeline.
    Decomposed(CoefMasks),
    /// Dense fallback (first layer): input-stationary on the MAC rows,
    /// CAs bypassed (§4.1).
    Dense,
}

/// One layer's workload.
#[derive(Debug, Clone)]
pub struct LayerWorkload {
    /// Name (fused DSC pairs use the combined name).
    pub name: String,
    /// Driving shape: input dims, kernel size, stride, padding.
    pub shape: LayerShape,
    /// Output channels produced (the pointwise `K` for fused DSC pairs).
    pub out_channels: usize,
    /// Execution mode.
    pub mode: WorkloadMode,
    /// Activation sparsity of this layer's input.
    pub act_sparsity: f64,
    /// ReLU sparsity of this layer's output (the next layer's input),
    /// used to size the compressed OFM write-back.
    pub out_sparsity: f64,
    /// Compressed weight footprint in bytes (DRAM weight traffic).
    pub weight_bytes: u64,
}

impl LayerWorkload {
    /// Number of input positions (`X × Y`).
    pub fn positions(&self) -> usize {
        self.shape.x * self.shape.y
    }

    /// Basis count `M` of this workload (1 for dense).
    pub fn m(&self) -> usize {
        match &self.mode {
            WorkloadMode::Decomposed(masks) => masks.m(),
            WorkloadMode::Dense => 1,
        }
    }
}

/// A whole model's workload.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Model name.
    pub model_name: String,
    /// Layers in execution order.
    pub layers: Vec<LayerWorkload>,
}

impl Workload {
    /// Builds the workload from compression artifacts and the model
    /// profile (which supplies per-layer activation sparsity).
    pub fn from_artifacts(
        model_name: &str,
        artifacts: &[CompressedLayer],
        profile: &ModelProfile,
    ) -> Workload {
        let n = artifacts.len();
        let layers = artifacts
            .iter()
            .enumerate()
            .map(|(i, a)| {
                let mode = match &a.quantized {
                    Some(h) => WorkloadMode::Decomposed(CoefMasks::from_ternary(&h.coeffs)),
                    None => WorkloadMode::Dense,
                };
                LayerWorkload {
                    name: a.stats.name.clone(),
                    shape: a.shape.clone(),
                    out_channels: a.out_channels(),
                    mode,
                    act_sparsity: profile.activation_sparsity(i, n),
                    out_sparsity: profile.activation_sparsity((i + 1).min(n - 1), n),
                    weight_bytes: (a.stats.compressed_bits as u64).div_ceil(8),
                }
            })
            .collect();
        Workload {
            model_name: model_name.to_string(),
            layers,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use escalate_tensor::Tensor;

    fn ternary(k: usize, c: usize, m: usize) -> TernaryCoeffs {
        let t = Tensor::from_fn(&[k, c, m], |i| match (i[0] + i[1] * 2 + i[2]) % 3 {
            0 => 1.0,
            1 => -1.0,
            _ => 0.0,
        });
        TernaryCoeffs::ternarize(&t, 0.0).unwrap()
    }

    #[test]
    fn masks_match_ternary_pattern() {
        let t = ternary(3, 70, 4); // C > 64 exercises multi-word masks
        let masks = CoefMasks::from_ternary(&t);
        assert_eq!(masks.total_nnz(), t.nnz());
        for k in 0..3 {
            let slice = t.slice(k);
            for c in 0..70 {
                for m in 0..4 {
                    let bit = masks.mask(k, m)[c / 64] >> (c % 64) & 1 == 1;
                    assert_eq!(bit, slice[c * 4 + m] != 0, "k={k} c={c} m={m}");
                }
            }
        }
    }

    #[test]
    fn per_channel_nnz_sums_to_total() {
        let t = ternary(5, 33, 6);
        let masks = CoefMasks::from_ternary(&t);
        let sum: usize = (0..5).map(|k| masks.nnz_for_channel(k)).sum();
        assert_eq!(sum, masks.total_nnz());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn mask_bounds_checked() {
        let masks = CoefMasks::from_ternary(&ternary(2, 8, 2));
        let _ = masks.mask(2, 0);
    }
}
