//! Dense fallback path for uncompressed layers (paper §4.1).
//!
//! The first convolutional layer (and FC layers converted to 1×1
//! convolutions) bypass the channel accumulators and run an
//! input-stationary dense schedule directly on the MAC rows. No sparsity
//! is exploited — the paper shows this layer is *slower* than Eyeriss'
//! row-stationary mapping but contributes little to total runtime
//! (Figure 11's first bar).

use crate::config::SimConfig;
use crate::dataflow::Mapping;
use crate::stats::{DramTraffic, LayerStats, SramTraffic};
use escalate_models::LayerShape;

/// Simulates a dense layer on the fallback input-stationary path.
pub fn simulate_dense(layer: &LayerShape, cfg: &SimConfig, weight_bytes: u64) -> LayerStats {
    let macs = layer.macs() as u64;
    let mapping = Mapping::new(cfg, layer.k, layer.out_x());

    // Input-stationary on the MAC rows only: utilization suffers from the
    // block/slice mapping fit and from the lack of the weight-reuse
    // pipelining a dataflow designed for dense layers would have. The 0.75
    // issue efficiency reflects the paper's observation that the fallback
    // is less efficient than Eyeriss' row-stationary schedule.
    let util = (mapping.block_utilization() * mapping.slice_utilization()).max(1e-3) * 0.75;
    let compute_cycles = ((macs as f64) / (cfg.total_macs() as f64 * util)).ceil() as u64;

    let ifm_bytes = layer.input_size() as u64; // dense 8-bit activations
    let ofm_bytes = layer.output_size() as u64;
    // Input-stationary: weights re-stream once per input tile round.
    let rounds = mapping.rounds() as u64;
    let dram_cycles =
        ((weight_bytes + ifm_bytes + ofm_bytes) as f64 / cfg.dram_bytes_per_cycle).ceil() as u64;
    let cycles = compute_cycles.max(dram_cycles);

    LayerStats {
        name: layer.name.clone(),
        cycles: cycles.max(1),
        mac_ops: macs,
        ca_adds: 0,
        gather_passes: 0,
        mac_idle_cycles: 0,
        mac_cycle_slots: cycles.max(1) * cfg.total_macs() as u64,
        dram: DramTraffic {
            weights: weight_bytes,
            ifm: ifm_bytes,
            ofm: ofm_bytes,
        },
        sram: SramTraffic {
            input_buf: ifm_bytes * rounds,
            coef_buf: weight_bytes,
            psum_buf: 2 * macs * 2, // 16-bit read-modify-write per MAC
            output_buf: ofm_bytes,
            act_buf: macs,
        },
        fallback: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_layer_cycles_scale_with_macs() {
        let cfg = SimConfig::default();
        let small = LayerShape::conv("s", 3, 64, 32, 32, 3, 1, 1);
        let large = LayerShape::conv("l", 3, 64, 224, 224, 7, 2, 3);
        let a = simulate_dense(&small, &cfg, 1000);
        let b = simulate_dense(&large, &cfg, 1000);
        assert!(b.cycles > a.cycles);
        assert_eq!(a.mac_ops, small.macs() as u64);
        assert!(a.fallback);
    }

    #[test]
    fn dense_layer_never_beats_mac_bound() {
        let cfg = SimConfig::default();
        let layer = LayerShape::conv("s", 3, 64, 32, 32, 3, 1, 1);
        let s = simulate_dense(&layer, &cfg, 0);
        let bound = layer.macs() as u64 / cfg.total_macs() as u64;
        assert!(s.cycles >= bound);
    }

    #[test]
    fn traffic_is_dense_sized() {
        let cfg = SimConfig::default();
        let layer = LayerShape::conv("s", 3, 64, 32, 32, 3, 1, 1);
        let s = simulate_dense(&layer, &cfg, 1728);
        assert_eq!(s.dram.ifm, (3 * 32 * 32) as u64);
        assert_eq!(s.dram.ofm, (64 * 32 * 32) as u64);
        assert_eq!(s.dram.weights, 1728);
    }
}
