//! The Basis-First dataflow mapping (paper §4.1, Figure 3).
//!
//! Basis-First confines one output channel to one PE block (so the
//! per-block coefficient buffers never need cross-block traffic), maps
//! feature-map rows to PE slices at a stride of `l`, and maps each
//! intermediate channel `m` to one CA-MAC pair inside a slice. Output
//! channels beyond `N_PE` are processed in sequential rounds.

use crate::config::SimConfig;

/// The static mapping of a layer onto the PE array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mapping {
    /// Output channels of this layer.
    pub out_channels: usize,
    /// Feature-map rows each slice processes.
    pub rows: usize,
    /// PE blocks available.
    pub n_pe: usize,
    /// Slices per block.
    pub l: usize,
}

impl Mapping {
    /// Builds the mapping for a layer with `out_channels` channels and
    /// `rows` feature-map rows.
    pub fn new(cfg: &SimConfig, out_channels: usize, rows: usize) -> Self {
        Mapping {
            out_channels,
            rows,
            n_pe: cfg.n_pe,
            l: cfg.l,
        }
    }

    /// Number of sequential output-channel rounds (`⌈K / N_PE⌉`).
    pub fn rounds(&self) -> usize {
        self.out_channels.div_ceil(self.n_pe)
    }

    /// The PE block an output channel maps to within its round.
    pub fn block_of(&self, k: usize) -> usize {
        k % self.n_pe
    }

    /// The round an output channel is processed in.
    pub fn round_of(&self, k: usize) -> usize {
        k / self.n_pe
    }

    /// The slice a feature-map row maps to (rows are interleaved at
    /// stride `l`).
    pub fn slice_of(&self, row: usize) -> usize {
        row % self.l
    }

    /// Rows assigned to one slice (`⌈rows / l⌉` for the busiest slice).
    pub fn rows_per_slice(&self) -> usize {
        self.rows.div_ceil(self.l)
    }

    /// Fraction of PE blocks busy averaged over rounds (tail rounds may be
    /// partially filled).
    pub fn block_utilization(&self) -> f64 {
        if self.out_channels == 0 {
            return 0.0;
        }
        self.out_channels as f64 / (self.rounds() * self.n_pe) as f64
    }

    /// Fraction of slices busy (rows may not fill all `l` slices evenly).
    pub fn slice_utilization(&self) -> f64 {
        if self.rows == 0 {
            return 0.0;
        }
        self.rows as f64 / (self.rows_per_slice() * self.l) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SimConfig {
        SimConfig::default()
    }

    #[test]
    fn rounds_cover_all_channels() {
        let m = Mapping::new(&cfg(), 100, 32);
        assert_eq!(m.rounds(), 4); // ceil(100/32)
                                   // Every channel is assigned to exactly one (round, block) pair.
        let mut seen = std::collections::HashSet::new();
        for k in 0..100 {
            assert!(seen.insert((m.round_of(k), m.block_of(k))));
            assert!(m.block_of(k) < 32);
            assert!(m.round_of(k) < m.rounds());
        }
    }

    #[test]
    fn rows_interleave_across_slices() {
        let m = Mapping::new(&cfg(), 32, 32);
        // With l = 5, rows 0..32 land on slices 0..5 cyclically.
        let mut counts = [0usize; 5];
        for r in 0..32 {
            counts[m.slice_of(r)] += 1;
        }
        assert_eq!(counts.iter().sum::<usize>(), 32);
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(
            max - min <= 1,
            "rows must balance across slices: {counts:?}"
        );
        assert_eq!(m.rows_per_slice(), max);
    }

    #[test]
    fn utilization_is_one_when_divisible() {
        let m = Mapping::new(&cfg(), 64, 30);
        assert_eq!(m.block_utilization(), 1.0);
        assert_eq!(m.slice_utilization(), 1.0);
    }

    #[test]
    fn utilization_drops_on_small_layers() {
        let m = Mapping::new(&cfg(), 16, 2);
        assert_eq!(m.rounds(), 1);
        assert!((m.block_utilization() - 0.5).abs() < 1e-12);
        assert!((m.slice_utilization() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn empty_layer_is_safe() {
        let m = Mapping::new(&cfg(), 0, 0);
        assert_eq!(m.block_utilization(), 0.0);
        assert_eq!(m.slice_utilization(), 0.0);
    }
}
