//! The cross-point derived-state cache behind [`SimConfig::share_derived`].
//!
//! A design-space sweep re-simulates the same `(network, M, input seed)`
//! workloads under many hardware configurations. Two derived artifacts of
//! a layer simulation are *hardware-invariant* — they depend only on the
//! layer, the input seed, and host-fidelity knobs, never on bus widths,
//! PE counts, or buffer sizes:
//!
//! - the synthetic Bernoulli **activation masks**: a pure function of
//!   `(layer seed, C, keep probability, sampled positions, masks drawn)` —
//!   the RNG stream is fixed by the seed, and the walk consumes exactly
//!   `sampled_channels × positions` masks in stream order;
//! - the compiled [`LayerPlan`]: a pure function of
//!   `(C, M, sampled channel ids, coefficient mask words)` — the sampled
//!   channel *selection* depends on `cfg.sample_channels` (a host knob
//!   that is part of the sweep grid), but given the selection the plan is
//!   config-independent.
//!
//! A third cache goes one level higher: the **folded walk sums**
//! ([`WalkSums`]). The per-channel sums a walk produces depend on the
//! masks, the plan, the MAC-row geometry, and the CA cost model's three
//! config knobs (bus elements, look-ahead, look-aside) — but *not* on
//! the PE count or buffer sizes, so design points that differ only in
//! those skip the walk entirely and reassemble the aggregate
//! bit-for-bit (the one mapping-dependent output, `max_block_time`, is
//! a monotone positive multiple of the cached `max_mean_pos`).
//!
//! Everything else — [`crate::context::LayerContext`]'s `parallel_k` and
//! block/slice [`crate::dataflow::Mapping`], the traffic model — depends
//! on the hardware point and is deliberately *not* cached here.
//!
//! Opting in cannot change results: cached masks are regenerated from the
//! very RNG stream the uncached path would draw (bit-identical by
//! construction, keyed by everything that feeds the stream), and a cached
//! plan is only reused after [`LayerPlan::matches`] verified it
//! word-for-word against the requested masks — a fingerprint collision
//! falls back to a fresh build, never a wrong reuse. Both caches are
//! bounded (LRU over an access stamp) and instrumented:
//! `sweep.derived_hits` / `sweep.derived_misses` /
//! `sweep.derived_evictions` count mask lookups; plan reuse flows through
//! the existing `ca.plan_reuses` / `ca.plan_compiles` counters.

use crate::ca::LayerPlan;
use crate::config::SimConfig;
use crate::context::PositionAggregate;
use crate::masks::draw_act_mask_into;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::{Arc, Mutex, OnceLock};

/// Default bound of each cache (entries). Generous for a two-network
/// sweep grid — a network contributes `layers × distinct sample-channel
/// settings` mask entries per input seed — while keeping a long sweep's
/// footprint fixed.
pub const DEFAULT_DERIVED_CAP: usize = 512;

/// A minimal bounded map with LRU eviction by access stamp. Lookups and
/// inserts are O(1); eviction scans for the stalest entry, which is fine
/// because it only runs when the cache is full.
struct LruMap<K, V> {
    entries: HashMap<K, (V, u64)>,
    stamp: u64,
    capacity: usize,
    evictions: u64,
}

impl<K: Eq + Hash + Clone, V: Clone> LruMap<K, V> {
    fn new(capacity: usize) -> Self {
        LruMap {
            entries: HashMap::new(),
            stamp: 0,
            capacity,
            evictions: 0,
        }
    }

    fn get(&mut self, key: &K) -> Option<V> {
        self.stamp += 1;
        let stamp = self.stamp;
        self.entries.get_mut(key).map(|(v, s)| {
            *s = stamp;
            v.clone()
        })
    }

    fn insert(&mut self, key: K, value: V) {
        self.stamp += 1;
        if self.capacity > 0 && !self.entries.contains_key(&key) {
            while self.entries.len() >= self.capacity {
                let stalest = self
                    .entries
                    .iter()
                    .min_by_key(|(_, (_, s))| *s)
                    .map(|(k, _)| k.clone())
                    .expect("non-empty map");
                self.entries.remove(&stalest);
                self.evictions += 1;
            }
        }
        self.entries.insert(key, (value, self.stamp));
    }

    fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
        if capacity > 0 {
            while self.entries.len() > capacity {
                let stalest = self
                    .entries
                    .iter()
                    .min_by_key(|(_, (_, s))| *s)
                    .map(|(k, _)| k.clone())
                    .expect("non-empty map");
                self.entries.remove(&stalest);
                self.evictions += 1;
            }
        }
    }
}

/// Everything that feeds the Bernoulli mask stream, floats by bit
/// pattern: `(layer seed, C, keep_prob bits, positions per channel,
/// channels walked)`.
type MaskKey = (u64, usize, u64, usize, usize);

/// Plan lookup key: geometry plus an FNV-1a fingerprint of the channel
/// ids and their coefficient mask words. The fingerprint narrows the
/// candidate; [`LayerPlan::matches`] decides.
type PlanKey = (usize, usize, u64);

/// Identity of one sampled channel × position walk — everything the
/// folded per-channel sums depend on, and nothing the mapping-dependent
/// extrapolation reads. `fp`/`fp2` are two independent FNV-1a
/// fingerprints (different offset bases) over the sampled channel ids
/// and their coefficient mask words; with every other component exact,
/// a wrong reuse needs a simultaneous 128-bit collision.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct WalkKey {
    fp: u64,
    fp2: u64,
    c: usize,
    m: usize,
    layer_seed: u64,
    keep_prob_bits: u64,
    positions: usize,
    rs: usize,
    bus: usize,
    look_ahead: usize,
    look_aside: usize,
}

/// The hardware-invariant folded sums of one walk (see
/// [`PositionAggregate`] for the field semantics). `max_mean_pos` rather
/// than `max_block_time` is cached: the latter is `max_mean_pos ×
/// positions_per_slice`, and multiplying by the (positive) slice size is
/// monotone, so the caller reassembles it bit-for-bit for *its* mapping.
#[derive(Clone, Copy)]
pub struct WalkSums {
    /// Σ over sampled channels of the mean per-position MAC-row cycles.
    pub sum_pos_cycles: f64,
    /// Σ matched (activation, coefficient) pairs over all samples.
    pub sum_matched: f64,
    /// Σ concentration gather passes over all samples.
    pub sum_gather: f64,
    /// Σ MAC idle cycles over all samples.
    pub sum_idle: f64,
    /// Largest per-channel mean position cycles.
    pub max_mean_pos: f64,
}

struct DerivedCache {
    masks: Mutex<LruMap<MaskKey, Arc<Vec<u64>>>>,
    plans: Mutex<LruMap<PlanKey, Arc<LayerPlan>>>,
    walks: Mutex<LruMap<WalkKey, WalkSums>>,
}

fn derived_cache() -> &'static DerivedCache {
    static CACHE: OnceLock<DerivedCache> = OnceLock::new();
    CACHE.get_or_init(|| DerivedCache {
        masks: Mutex::new(LruMap::new(DEFAULT_DERIVED_CAP)),
        plans: Mutex::new(LruMap::new(DEFAULT_DERIVED_CAP)),
        walks: Mutex::new(LruMap::new(DEFAULT_DERIVED_CAP)),
    })
}

/// Re-bounds the derived caches (`0` = unbounded), evicting down to the
/// new capacity immediately. Exists for eviction-pressure tests and
/// memory-conscious embedders; the default bound suits sweep grids.
pub fn set_derived_cache_capacity(capacity: usize) {
    derived_cache()
        .masks
        .lock()
        .expect("derived mask cache poisoned")
        .set_capacity(capacity);
    derived_cache()
        .plans
        .lock()
        .expect("derived plan cache poisoned")
        .set_capacity(capacity);
    derived_cache()
        .walks
        .lock()
        .expect("derived walk cache poisoned")
        .set_capacity(capacity);
}

/// Resident entries in the (mask, plan) caches.
pub fn derived_cache_len() -> (usize, usize) {
    let masks = derived_cache()
        .masks
        .lock()
        .expect("derived mask cache poisoned")
        .entries
        .len();
    let plans = derived_cache()
        .plans
        .lock()
        .expect("derived plan cache poisoned")
        .entries
        .len();
    (masks, plans)
}

/// Total evictions the derived caches have performed since process start.
pub fn derived_cache_evictions() -> u64 {
    let m = derived_cache()
        .masks
        .lock()
        .expect("derived mask cache poisoned")
        .evictions;
    let p = derived_cache()
        .plans
        .lock()
        .expect("derived plan cache poisoned")
        .evictions;
    let w = derived_cache()
        .walks
        .lock()
        .expect("derived walk cache poisoned")
        .evictions;
    m + p + w
}

/// Draws the full mask block the sampled walk will consume — `channels ×
/// positions` masks of `⌈C/64⌉` words, back-to-back in stream order —
/// from a fresh RNG at `layer_seed`. This is byte-for-byte the stream
/// [`crate::masks::MaskSource::bernoulli`] would produce, because the
/// walk consumes exactly one mask per (channel, position) in that order.
fn generate_masks(
    layer_seed: u64,
    c: usize,
    keep_prob: f64,
    positions: usize,
    channels: usize,
) -> Vec<u64> {
    let words = c.div_ceil(64);
    let mut rng = StdRng::seed_from_u64(layer_seed);
    let mut out = vec![0u64; channels * positions * words];
    for mask in out.chunks_mut(words.max(1)) {
        draw_act_mask_into(&mut rng, c, keep_prob, mask);
    }
    out
}

/// The materialized Bernoulli mask block for one `(layer, input seed,
/// fidelity)` walk, cached across design points. Returns the shared words
/// and whether this lookup hit. Concurrent misses may both generate — the
/// generation is deterministic, so last-write-wins is harmless.
pub fn cached_masks(
    layer_seed: u64,
    c: usize,
    keep_prob: f64,
    positions: usize,
    channels: usize,
) -> (Arc<Vec<u64>>, bool) {
    let key = (layer_seed, c, keep_prob.to_bits(), positions, channels);
    if let Some(hit) = derived_cache()
        .masks
        .lock()
        .expect("derived mask cache poisoned")
        .get(&key)
    {
        escalate_obs::counter_add("sweep.derived_hits", 1);
        return (hit, true);
    }
    let words = Arc::new(generate_masks(
        layer_seed, c, keep_prob, positions, channels,
    ));
    let mut masks = derived_cache()
        .masks
        .lock()
        .expect("derived mask cache poisoned");
    let before = masks.evictions;
    masks.insert(key, Arc::clone(&words));
    let evicted = masks.evictions - before;
    drop(masks);
    escalate_obs::counter_add("sweep.derived_misses", 1);
    if evicted > 0 {
        escalate_obs::counter_add("sweep.derived_evictions", evicted);
    }
    (words, false)
}

fn fnv1a(h: u64, bytes: &[u8]) -> u64 {
    bytes
        .iter()
        .fold(h, |h, &b| (h ^ b as u64).wrapping_mul(0x100000001b3))
}

/// The shared compiled [`LayerPlan`] for `(c, m, channels, masks)`,
/// building and caching it on a miss. Returns the plan and whether the
/// lookup hit. A hit is only reported after [`LayerPlan::matches`]
/// verified the stored plan word-for-word against the requested masks; a
/// fingerprint collision therefore rebuilds instead of reusing.
pub fn cached_plan<'m>(
    c: usize,
    m: usize,
    channels: &[usize],
    mask: impl Fn(usize, usize) -> &'m [u64],
) -> (Arc<LayerPlan>, bool) {
    let mut fp = 0xcbf29ce484222325u64;
    for &k in channels {
        fp = fnv1a(fp, &(k as u64).to_le_bytes());
        for mi in 0..m {
            for &w in mask(k, mi) {
                fp = fnv1a(fp, &w.to_le_bytes());
            }
        }
    }
    let key = (c, m, fp);
    let cached = derived_cache()
        .plans
        .lock()
        .expect("derived plan cache poisoned")
        .get(&key);
    if let Some(plan) = cached {
        if plan.matches(c, m, channels, &mask) {
            return (plan, true);
        }
    }
    let plan = Arc::new(LayerPlan::build(c, m, channels, &mask));
    let mut plans = derived_cache()
        .plans
        .lock()
        .expect("derived plan cache poisoned");
    let before = plans.evictions;
    plans.insert(key, Arc::clone(&plan));
    let evicted = plans.evictions - before;
    drop(plans);
    if evicted > 0 {
        escalate_obs::counter_add("sweep.derived_evictions", evicted);
    }
    (plan, false)
}

/// Builds the [`WalkKey`] for a walk of `channels × positions` against
/// this layer's masks under `cfg`'s CA cost model. Everything the folded
/// sums read is captured: the coefficient masks and sampled channel ids
/// (double-fingerprinted), the activation mask stream identity, the
/// MAC-row geometry (`m`, `rs`), and the kernel's config-relevant knobs
/// (exactly the set [`crate::ca::PositionKernel::matches`] checks).
#[allow(clippy::too_many_arguments)]
pub fn walk_key<'m>(
    c: usize,
    m: usize,
    channels: &[usize],
    mask: impl Fn(usize, usize) -> &'m [u64],
    layer_seed: u64,
    keep_prob: f64,
    positions: usize,
    rs: usize,
    cfg: &SimConfig,
) -> WalkKey {
    let mut fp = 0xcbf29ce484222325u64;
    let mut fp2 = 0x84222325cbf29ce4u64;
    for &k in channels {
        fp = fnv1a(fp, &(k as u64).to_le_bytes());
        fp2 = fnv1a(fp2, &(k as u64).to_le_bytes());
        for mi in 0..m {
            for &w in mask(k, mi) {
                fp = fnv1a(fp, &w.to_le_bytes());
                fp2 = fnv1a(fp2, &w.to_le_bytes());
            }
        }
    }
    WalkKey {
        fp,
        fp2,
        c,
        m,
        layer_seed,
        keep_prob_bits: keep_prob.to_bits(),
        positions,
        rs,
        bus: cfg.bus_elems().max(1),
        look_ahead: cfg.look_ahead,
        look_aside: cfg.look_aside,
    }
}

/// The cached folded sums for this walk, if a previous design point
/// already performed it. A hit counts as a derived hit *and* skips the
/// mask/plan lookups entirely.
pub fn cached_walk(key: &WalkKey) -> Option<WalkSums> {
    let hit = derived_cache()
        .walks
        .lock()
        .expect("derived walk cache poisoned")
        .get(key);
    if hit.is_some() {
        escalate_obs::counter_add("sweep.derived_hits", 1);
        escalate_obs::counter_add("sweep.walk_hits", 1);
    }
    hit
}

/// Publishes a finished walk's folded sums for later design points.
pub fn store_walk(key: WalkKey, agg: &PositionAggregate) {
    let mut walks = derived_cache()
        .walks
        .lock()
        .expect("derived walk cache poisoned");
    let before = walks.evictions;
    walks.insert(
        key,
        WalkSums {
            sum_pos_cycles: agg.sum_pos_cycles,
            sum_matched: agg.sum_matched,
            sum_gather: agg.sum_gather,
            sum_idle: agg.sum_idle,
            max_mean_pos: agg.max_mean_pos,
        },
    );
    let evicted = walks.evictions - before;
    drop(walks);
    if evicted > 0 {
        escalate_obs::counter_add("sweep.derived_evictions", evicted);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn generated_masks_replay_the_bernoulli_stream() {
        let (c, sp, ch) = (100usize, 7, 3);
        let words = c.div_ceil(64);
        let block = generate_masks(99, c, 0.4, sp, ch);
        assert_eq!(block.len(), ch * sp * words);
        // The uncached walk draws the same stream mask by mask.
        let mut rng = StdRng::seed_from_u64(99);
        let mut buf = vec![0u64; words];
        for i in 0..ch * sp {
            draw_act_mask_into(&mut rng, c, 0.4, &mut buf);
            assert_eq!(&block[i * words..(i + 1) * words], &buf[..], "mask {i}");
        }
    }

    #[test]
    fn mask_cache_hits_on_identical_keys_only() {
        // Unique seeds so parallel tests sharing the process-global cache
        // cannot collide with these entries.
        let seed = 0xfeed_0001u64;
        let (a, hit_a) = cached_masks(seed, 70, 0.5, 4, 2);
        assert!(!hit_a, "first lookup must miss");
        let (b, hit_b) = cached_masks(seed, 70, 0.5, 4, 2);
        assert!(hit_b, "second lookup must hit");
        assert!(Arc::ptr_eq(&a, &b), "hit must share the same block");
        let (c, hit_c) = cached_masks(seed, 70, 0.5, 4, 3);
        assert!(!hit_c, "a different mask count is a different stream");
        assert_eq!(&c[..a.len()], &a[..], "longer block shares the prefix");
    }

    #[test]
    fn plan_cache_verifies_word_for_word_before_reuse() {
        let words = 2usize;
        let mk = |seed: u64| -> Vec<u64> {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..4 * words)
                .map(|_| rng.next_u64() & !(1 << 63))
                .collect()
        };
        let masks_a = mk(0xfeed_1001);
        let mask_a = |k: usize, mi: usize| &masks_a[(k % 2 * 2 + mi) * words..][..words];
        let (p1, hit1) = cached_plan(100, 2, &[0, 1], mask_a);
        assert!(!hit1);
        let (p2, hit2) = cached_plan(100, 2, &[0, 1], mask_a);
        assert!(hit2, "identical inputs must hit");
        assert!(Arc::ptr_eq(&p1, &p2));
        // Different masks (same geometry) must not reuse the plan.
        let masks_b = mk(0xfeed_1002);
        let mask_b = |k: usize, mi: usize| &masks_b[(k % 2 * 2 + mi) * words..][..words];
        let (p3, hit3) = cached_plan(100, 2, &[0, 1], mask_b);
        assert!(!hit3);
        assert!(!Arc::ptr_eq(&p1, &p3));
        assert!(p3.matches(100, 2, &[0, 1], mask_b));
    }

    #[test]
    fn lru_map_evicts_the_stalest_entry() {
        let mut map: LruMap<u32, u32> = LruMap::new(2);
        map.insert(1, 10);
        map.insert(2, 20);
        assert_eq!(map.get(&1), Some(10)); // refresh 1 → 2 is stalest
        map.insert(3, 30);
        assert_eq!(map.evictions, 1);
        assert_eq!(map.get(&2), None, "stalest entry evicted");
        assert_eq!(map.get(&1), Some(10));
        assert_eq!(map.get(&3), Some(30));
        // Shrinking the capacity evicts immediately.
        map.set_capacity(1);
        assert_eq!(map.entries.len(), 1);
        assert_eq!(map.evictions, 2);
        // Unbounded never evicts.
        map.set_capacity(0);
        for k in 10..20 {
            map.insert(k, k);
        }
        assert_eq!(map.evictions, 2);
    }
}
