//! `std::arch` fast paths for the position kernel (the `simd` feature).
//!
//! Everything here is a *speed* path, never a *result* path: each
//! intrinsic computes bit-for-bit what the portable code computes
//! (`_pext_u64` is exactly [`escalate_sparse::gather_bits`] with the
//! operands in pext order; `_mm256_or_si256` is four `|`s), so enabling
//! the feature can never change a simulation. `tests/kernel_diff.rs`
//! pins the equivalence by running the kernel with the dispatch forced
//! off against the default dispatch.
//!
//! Dispatch is resolved at runtime with `is_x86_feature_detected!` — the
//! same binary is correct on hosts without the instructions (they take
//! the portable path), and on non-x86_64 targets this module compiles to
//! the constant `false` gate with no `std::arch` use at all.

use std::sync::atomic::{AtomicU8, Ordering};

/// Cached detection verdict: 0 = unknown, 1 = unavailable, 2 = available.
static CAPS: AtomicU8 = AtomicU8::new(0);
/// Test override: when nonzero the fast path is forced off regardless of
/// host capabilities.
static FORCED_OFF: AtomicU8 = AtomicU8::new(0);

/// Whether this host has every instruction the fast path uses
/// (`popcnt` + `bmi2` + `avx2`). Detected once, then cached.
pub fn available() -> bool {
    match CAPS.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => {
            let ok = detect();
            CAPS.store(if ok { 2 } else { 1 }, Ordering::Relaxed);
            ok
        }
    }
}

#[cfg(target_arch = "x86_64")]
fn detect() -> bool {
    std::arch::is_x86_feature_detected!("popcnt")
        && std::arch::is_x86_feature_detected!("bmi2")
        && std::arch::is_x86_feature_detected!("avx2")
}

#[cfg(not(target_arch = "x86_64"))]
fn detect() -> bool {
    false
}

/// Forces the portable path when `on` is `false` (and restores runtime
/// dispatch when `true`). A process-global test knob: the differential
/// suite uses it to prove the two paths byte-identical on the same host.
pub fn set_enabled(on: bool) {
    FORCED_OFF.store(u8::from(!on), Ordering::Relaxed);
}

/// Whether the fast path will actually be taken: available on this host
/// and not forced off by [`set_enabled`].
pub fn enabled() -> bool {
    FORCED_OFF.load(Ordering::Relaxed) == 0 && available()
}

/// Parallel bit extract: bits of `data` at the set positions of `mask`,
/// packed toward bit 0 in order — identical to
/// `escalate_sparse::gather_bits(data, mask)`.
///
/// # Safety
///
/// The host must support `bmi2` (callers dispatch on [`enabled`]).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "bmi2")]
pub unsafe fn pext(data: u64, mask: u64) -> u64 {
    core::arch::x86_64::_pext_u64(data, mask)
}

/// `dst[i] |= src[i]` over whole 256-bit lanes (scalar tail) — the
/// per-word coefficient-union fold of `LayerPlan`/`bind`.
///
/// # Safety
///
/// The host must support `avx2` (callers dispatch on [`enabled`]).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
pub unsafe fn or_words_into(dst: &mut [u64], src: &[u64]) {
    use core::arch::x86_64::{_mm256_loadu_si256, _mm256_or_si256, _mm256_storeu_si256};
    assert_eq!(dst.len(), src.len(), "union fold over equal word counts");
    let lanes = dst.len() / 4 * 4;
    for i in (0..lanes).step_by(4) {
        // SAFETY: i + 4 <= len on both slices; loadu/storeu take
        // unaligned pointers.
        unsafe {
            let d = _mm256_loadu_si256(dst.as_ptr().add(i).cast());
            let s = _mm256_loadu_si256(src.as_ptr().add(i).cast());
            _mm256_storeu_si256(dst.as_mut_ptr().add(i).cast(), _mm256_or_si256(d, s));
        }
    }
    for i in lanes..dst.len() {
        dst[i] |= src[i];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_enabled_round_trips() {
        set_enabled(false);
        assert!(!enabled());
        set_enabled(true);
        assert_eq!(enabled(), available());
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn pext_matches_gather_bits() {
        if !available() {
            return; // nothing to check on hosts without bmi2
        }
        let mut state = 0xfeed_5eed_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state
        };
        for _ in 0..200 {
            let data = next();
            let mask = next();
            // SAFETY: availability checked above.
            let fast = unsafe { pext(data & mask, mask) };
            assert_eq!(fast, escalate_sparse::gather_bits(data & mask, mask));
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn or_words_matches_scalar() {
        if !available() {
            return;
        }
        for len in [0usize, 1, 3, 4, 7, 8, 13] {
            let a: Vec<u64> = (0..len as u64).map(|i| i.wrapping_mul(0x9e37)).collect();
            let b: Vec<u64> = (0..len as u64).map(|i| !i.rotate_left(17)).collect();
            let mut fast = a.clone();
            // SAFETY: availability checked above.
            unsafe { or_words_into(&mut fast, &b) };
            let slow: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| x | y).collect();
            assert_eq!(fast, slow, "len={len}");
        }
    }
}
