//! Banked partial-sum buffer with conflict accounting (paper §4.1).
//!
//! Each MAC's products are read-modify-written into the per-slice psum
//! buffer. The paper deliberately does *not* add conflict-avoidance
//! hardware ("the output accumulation is not at the critical path ... we
//! do not attempt to reduce bank conflicts"); this model quantifies that
//! choice: products issued in the same cycle to the same bank serialize,
//! and the counters feed the ablation that confirms conflicts stay off
//! the critical path at ESCALATE's scatter pattern.

/// A banked read-modify-write partial-sum buffer.
#[derive(Debug, Clone)]
pub struct PsumBanks {
    banks: usize,
    /// Accumulator storage, `banks × depth` words.
    data: Vec<f32>,
    stats: PsumStats,
}

/// Counters for the psum buffer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PsumStats {
    /// Issue groups processed (one per cycle when conflict-free).
    pub groups: u64,
    /// Read-modify-write accesses performed.
    pub accesses: u64,
    /// Extra cycles spent serializing same-bank accesses.
    pub conflict_cycles: u64,
}

impl PsumStats {
    /// Cycles the buffer needed: one per group plus the serialization.
    pub fn cycles(&self) -> u64 {
        self.groups + self.conflict_cycles
    }

    /// Mean slowdown factor from conflicts (1.0 = conflict-free).
    pub fn conflict_factor(&self) -> f64 {
        if self.groups == 0 {
            1.0
        } else {
            self.cycles() as f64 / self.groups as f64
        }
    }
}

impl PsumBanks {
    /// Creates a buffer of `banks` banks with `depth` words each.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(banks: usize, depth: usize) -> Self {
        assert!(
            banks > 0 && depth > 0,
            "psum banks need positive dimensions"
        );
        PsumBanks {
            banks,
            data: vec![0.0; banks * depth],
            stats: PsumStats::default(),
        }
    }

    /// Number of banks.
    pub fn banks(&self) -> usize {
        self.banks
    }

    /// Issues one cycle's worth of accumulations: each `(address, value)`
    /// pair read-modify-writes `address`. Same-bank addresses serialize;
    /// the group costs `max(per-bank count)` cycles, and the overage is
    /// recorded as conflict cycles.
    ///
    /// # Panics
    ///
    /// Panics if an address exceeds the buffer capacity.
    pub fn issue(&mut self, group: &[(usize, f32)]) {
        if group.is_empty() {
            return;
        }
        let mut per_bank = vec![0u64; self.banks];
        for &(addr, v) in group {
            assert!(addr < self.data.len(), "psum address out of range");
            self.data[addr] += v;
            per_bank[addr % self.banks] += 1;
            self.stats.accesses += 1;
        }
        let worst = per_bank.into_iter().max().unwrap_or(0);
        self.stats.groups += 1;
        self.stats.conflict_cycles += worst.saturating_sub(1);
    }

    /// Reads an accumulated value.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn read(&self, addr: usize) -> f32 {
        self.data[addr]
    }

    /// Drains the buffer: returns the accumulated values and zeroes the
    /// storage (the read-to-output-buffer step between output rows).
    pub fn drain(&mut self) -> Vec<f32> {
        let out = self.data.clone();
        self.data.iter_mut().for_each(|v| *v = 0.0);
        out
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PsumStats {
        self.stats
    }
}

/// The scatter addresses one MAC's products touch for an intermediate
/// element at output-relative position `(dx, dy)` of an `R×S` kernel on a
/// `W`-wide output row buffer (the Basis-First scatter of §4.1).
pub fn scatter_addresses(dx: usize, dy: usize, r: usize, s: usize, w: usize) -> Vec<usize> {
    let mut out = Vec::with_capacity(r * s);
    for ri in 0..r {
        for si in 0..s {
            let row = dx + ri;
            let col = dy + si;
            if col < w {
                out.push(row * w + col);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulation_is_correct() {
        let mut p = PsumBanks::new(4, 8);
        p.issue(&[(0, 1.0), (5, 2.0)]);
        p.issue(&[(0, 3.0)]);
        assert_eq!(p.read(0), 4.0);
        assert_eq!(p.read(5), 2.0);
        let drained = p.drain();
        assert_eq!(drained[0], 4.0);
        assert_eq!(p.read(0), 0.0);
    }

    #[test]
    fn conflict_free_groups_cost_one_cycle() {
        let mut p = PsumBanks::new(4, 4);
        // Four accesses, four distinct banks.
        p.issue(&[(0, 1.0), (1, 1.0), (2, 1.0), (3, 1.0)]);
        assert_eq!(p.stats().cycles(), 1);
        assert_eq!(p.stats().conflict_factor(), 1.0);
    }

    #[test]
    fn same_bank_accesses_serialize() {
        let mut p = PsumBanks::new(4, 4);
        // All four hit bank 0.
        p.issue(&[(0, 1.0), (4, 1.0), (8, 1.0), (12, 1.0)]);
        assert_eq!(p.stats().cycles(), 4);
        assert_eq!(p.stats().conflict_cycles, 3);
    }

    #[test]
    fn scatter_addresses_stay_in_row_bounds() {
        // A 3x3 kernel near the right edge drops out-of-row columns.
        let a = scatter_addresses(0, 6, 3, 3, 8);
        assert_eq!(a.len(), 6); // columns 6,7 valid; 8 clipped, ×3 rows
        assert!(a.iter().all(|&x| x % 8 >= 6));
    }

    #[test]
    fn escalate_scatter_pattern_has_mild_conflicts() {
        // The M=6 MACs of a slice scatter consecutive kernel columns: with
        // 8 banks the per-cycle conflict factor stays small, supporting
        // the paper's decision to leave conflicts unoptimized.
        let mut p = PsumBanks::new(8, 128);
        for pos in 0..32usize {
            // Each of 6 MACs writes one product per cycle; simulate R*S=9
            // cycles of scatter for 6 different (dx,dy) streams.
            for step in 0..9usize {
                let group: Vec<(usize, f32)> = (0..6)
                    .map(|mac| {
                        let addr = (pos + step + mac * 17) % (8 * 16);
                        (addr, 1.0)
                    })
                    .collect();
                p.issue(&group);
            }
        }
        assert!(
            p.stats().conflict_factor() < 1.6,
            "factor {}",
            p.stats().conflict_factor()
        );
    }
}
