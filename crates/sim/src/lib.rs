#![warn(missing_docs)]

//! Cycle-level simulator of the ESCALATE accelerator (paper Section 4).
//!
//! The accelerator is a grid of `N_PE` PE blocks, each with `l` PE slices;
//! a slice pairs `M` channel accumulators (CAs, implementing the
//! Dilution-Concentration sparse-skipping mechanism of §4.2) with a row of
//! `M` MACs holding the basis kernels in local FIFOs. The *Basis-First*
//! dataflow (§4.1) confines each output channel to one PE block and each
//! feature-map row to one slice, so coefficients live in per-block buffers
//! and input rows stream from distributed, reference-counted circular
//! buffers (§4.3).
//!
//! The simulator executes the real component models (the bit-exact
//! dilution and concentration structures from `escalate-sparse`) on
//! sampled positions of each layer, then scales by the dataflow's
//! parallelism to produce per-layer cycle counts, idle-cycle accounting,
//! and SRAM/DRAM traffic — the quantities Figures 8–13 are built from.
//! Sampling is the one deliberate abstraction over the paper's fully
//! cycle-accurate simulator; it preserves throughput statistics while
//! keeping whole-model runs fast (see DESIGN.md).
//!
//! # Examples
//!
//! ```no_run
//! use escalate_core::pipeline::CompressionConfig;
//! use escalate_models::ModelProfile;
//! use escalate_sim::{simulate_model, SimConfig, Workload};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let profile = ModelProfile::for_model("ResNet18").expect("known model");
//! let artifacts = escalate_core::compress_model_artifacts(&profile, &CompressionConfig::default())?;
//! let workload = Workload::from_artifacts("ResNet18", &artifacts, &profile);
//! let stats = simulate_model(&workload, &SimConfig::default(), 0);
//! println!("total cycles: {}", stats.total_cycles());
//! # Ok(())
//! # }
//! ```

pub mod buffers;
pub mod ca;
pub mod config;
pub mod dataflow;
pub mod detailed;
pub mod engine;
pub mod fallback;
pub mod htree;
pub mod mac;
pub mod psum;
pub mod slice;
pub mod stats;
pub mod trace;
pub mod workload;

pub use config::SimConfig;
pub use engine::{simulate_layer, simulate_model};
pub use stats::{LayerStats, ModelStats};
pub use workload::{LayerWorkload, Workload, WorkloadMode};
