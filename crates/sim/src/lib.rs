#![warn(missing_docs)]

//! Cycle-level simulator of the ESCALATE accelerator (paper Section 4).
//!
//! The accelerator is a grid of `N_PE` PE blocks, each with `l` PE slices;
//! a slice pairs `M` channel accumulators (CAs, implementing the
//! Dilution-Concentration sparse-skipping mechanism of §4.2) with a row of
//! `M` MACs holding the basis kernels in local FIFOs. The *Basis-First*
//! dataflow (§4.1) confines each output channel to one PE block and each
//! feature-map row to one slice, so coefficients live in per-block buffers
//! and input rows stream from distributed, reference-counted circular
//! buffers (§4.3).
//!
//! The simulator executes the real component models (the bit-exact
//! dilution and concentration structures from `escalate-sparse`) on
//! sampled positions of each layer, then scales by the dataflow's
//! parallelism to produce per-layer cycle counts, idle-cycle accounting,
//! and SRAM/DRAM traffic — the quantities Figures 8–13 are built from.
//! Sampling is the one deliberate abstraction over the paper's fully
//! cycle-accurate simulator; it preserves throughput statistics while
//! keeping whole-model runs fast (see DESIGN.md).
//!
//! # The simulation core
//!
//! Three fidelities share one core instead of forking it:
//!
//! - **Sampled** ([`engine::simulate_layer`]): synthetic Bernoulli
//!   activation masks on a stratified channel/position sample,
//!   extrapolated to the full layer. The default — fast enough for
//!   whole-model seed sweeps.
//! - **Trace-driven** ([`trace::simulate_layer_traced`]): the same cost
//!   model against a real `C×X×Y` feature map, every position walked,
//!   exact compressed-stream traffic.
//! - **Detailed** ([`detailed::simulate_layer_detailed`]): the
//!   cycle-stepped slice pipeline ([`slice::run_slice`]) for every
//!   (channel, slice) assignment — exact but quadratic.
//!
//! The shared pieces live in [`context`] and [`masks`]:
//! [`context::LayerContext`] owns the per-layer derivation (effective
//! `R·S`, [`mac::MacRow`], pointwise `parallel_k`,
//! [`dataflow::Mapping`], the stratified channel sample — derived in
//! exactly one place); [`masks::MaskSource`] unifies where activation
//! masks come from (Bernoulli draws vs a real feature map);
//! [`context::run_positions`] is the one inner loop and
//! [`context::assemble_stats`] the one extrapolation into
//! [`LayerStats`]; [`context::SimObserver`] hooks per-position,
//! per-slice, and per-layer events for instrumentation — the
//! [`observe::ObsObserver`] adapter turns that stream into `escalate-obs`
//! counters/histograms, and the plain entry points route through it
//! automatically whenever a process-global recorder is installed. Invalid
//! inputs surface as typed [`error::SimError`]s.
//!
//! On top sits the object-safe [`Accelerator`] trait ([`accel`]):
//! a model-bound simulator exposing `num_layers`/`simulate_layer`, with
//! the provided [`Accelerator::simulate`] folding per-layer stats into
//! [`ModelStats`] once for every design. ESCALATE implements it via
//! [`accel::Escalate`]; the baselines in `escalate-baselines` implement
//! it through their `LayerModel` adapter. Adding a fourth accelerator is
//! ~100 lines: implement a per-layer cost model, expose it through
//! `Accelerator` (directly or via `BaselineSim`), and every harness —
//! seed averaging, energy attachment, figure binaries — picks it up
//! unchanged.
//!
//! # Examples
//!
//! ```no_run
//! use escalate_core::pipeline::CompressionConfig;
//! use escalate_models::ModelProfile;
//! use escalate_sim::{simulate_model, SimConfig, Workload};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let profile = ModelProfile::for_model("ResNet18").expect("known model");
//! let artifacts = escalate_core::compress_model_artifacts(&profile, &CompressionConfig::default())?;
//! let workload = Workload::from_artifacts("ResNet18", &artifacts, &profile);
//! let stats = simulate_model(&workload, &SimConfig::default(), 0);
//! println!("total cycles: {}", stats.total_cycles());
//! # Ok(())
//! # }
//! ```

pub mod accel;
pub mod buffers;
pub mod ca;
pub mod config;
pub mod context;
pub mod dataflow;
pub mod detailed;
pub mod engine;
pub mod error;
pub mod fallback;
pub mod htree;
pub mod mac;
pub mod masks;
pub mod observe;
pub mod psum;
pub mod shared;
#[cfg(feature = "simd")]
pub mod simd;
pub mod slice;
pub mod stats;
pub mod trace;
pub mod workload;

pub use accel::{schedule_for, Accelerator, Escalate, LayerPipelined, LayerSerial, Schedule};
pub use ca::{LayerPlan, PositionCost, PositionKernel, MAX_BATCH};
pub use config::{DesignPoint, ScheduleKind, SimConfig};
pub use context::{LayerContext, NoopObserver, SimObserver};
pub use engine::{simulate_layer, simulate_model};
pub use error::SimError;
pub use masks::MaskSource;
pub use observe::ObsObserver;
pub use stats::{checked_ratio, LayerStats, ModelStats, PipelineStats};
pub use workload::{LayerWorkload, Workload, WorkloadMode};
