//! The distributed input-buffer design (paper §4.3, Figure 2(c)).
//!
//! Instead of one unified input buffer, ESCALATE gives each slice
//! position its own buffer shared by the slices at that position across
//! all PE blocks. Chunks of compressed activations live in a circular
//! queue; each chunk carries a reference count of the slices that still
//! need it and is evicted when the count reaches zero. Requests are
//! collected through an H-tree of arbitrators that merge identical
//! requests (one broadcast serves every requesting slice) and prioritize
//! earlier chunks so the queue drains in order.

use std::collections::VecDeque;

/// One chunk of compressed activations in the circular queue.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Chunk {
    id: u64,
    bytes: u32,
    /// Slices that have not consumed this chunk yet.
    refs: u32,
}

/// A reference-counted circular input buffer.
///
/// # Examples
///
/// ```
/// use escalate_sim::buffers::InputBuffer;
///
/// let mut buf = InputBuffer::new(1024);
/// let id = buf.push(64, 4).expect("fits");
/// // Four consumers read the chunk; it is evicted on the last read.
/// for _ in 0..4 {
///     assert!(buf.request(id));
/// }
/// assert_eq!(buf.occupancy_bytes(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct InputBuffer {
    capacity: u32,
    used: u32,
    next_id: u64,
    queue: VecDeque<Chunk>,
    stats: BufferStats,
}

/// Counters for one input buffer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BufferStats {
    /// Chunks admitted.
    pub pushes: u64,
    /// Chunk broadcasts served (merged requests count once).
    pub broadcasts: u64,
    /// Individual slice reads satisfied.
    pub reads: u64,
    /// Chunks evicted after their last consumer.
    pub evictions: u64,
    /// Push attempts rejected for lack of space (DRAM stall pressure).
    pub rejections: u64,
    /// Bytes served to consumers (broadcast bytes × consumers).
    pub bytes_read: u64,
}

impl InputBuffer {
    /// Creates a buffer with the given byte capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: u32) -> Self {
        assert!(capacity > 0, "buffer capacity must be positive");
        InputBuffer {
            capacity,
            used: 0,
            next_id: 0,
            queue: VecDeque::new(),
            stats: BufferStats::default(),
        }
    }

    /// Admits a chunk of `bytes` to be consumed by `consumers` slices.
    /// Returns its ID, or `None` when the buffer is full (the producer
    /// must stall).
    pub fn push(&mut self, bytes: u32, consumers: u32) -> Option<u64> {
        if bytes == 0 || consumers == 0 {
            return None;
        }
        if self.used + bytes > self.capacity {
            self.stats.rejections += 1;
            return None;
        }
        let id = self.next_id;
        self.next_id += 1;
        self.used += bytes;
        self.queue.push_back(Chunk {
            id,
            bytes,
            refs: consumers,
        });
        self.stats.pushes += 1;
        Some(id)
    }

    /// One slice requests chunk `id`. Returns `true` when served; the
    /// chunk is evicted when its last consumer has read it.
    pub fn request(&mut self, id: u64) -> bool {
        let Some(pos) = self.queue.iter().position(|c| c.id == id) else {
            return false;
        };
        self.stats.reads += 1;
        self.stats.broadcasts += 1;
        self.stats.bytes_read += self.queue[pos].bytes as u64;
        self.queue[pos].refs -= 1;
        if self.queue[pos].refs == 0 {
            self.used -= self.queue[pos].bytes;
            self.queue.remove(pos);
            self.stats.evictions += 1;
        }
        true
    }

    /// An H-tree-merged request: `count` slices ask for chunk `id` in the
    /// same cycle and are served by a single broadcast.
    pub fn request_merged(&mut self, id: u64, count: u32) -> bool {
        let Some(pos) = self.queue.iter().position(|c| c.id == id) else {
            return false;
        };
        let served = count.min(self.queue[pos].refs);
        self.stats.reads += served as u64;
        self.stats.broadcasts += 1;
        self.stats.bytes_read += self.queue[pos].bytes as u64 * served as u64;
        self.queue[pos].refs -= served;
        if self.queue[pos].refs == 0 {
            self.used -= self.queue[pos].bytes;
            self.queue.remove(pos);
            self.stats.evictions += 1;
        }
        true
    }

    /// Bytes currently held.
    pub fn occupancy_bytes(&self) -> u32 {
        self.used
    }

    /// Number of resident chunks.
    pub fn resident_chunks(&self) -> usize {
        self.queue.len()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> BufferStats {
        self.stats
    }
}

/// An arbitrator node of the H-tree: merges children's requests,
/// prioritizing the *earliest* chunk ID (the paper's greedy policy, which
/// drains the circular queue in order).
///
/// Returns the winning chunk ID and how many children requested it.
pub fn arbitrate(requests: &[u64]) -> Option<(u64, u32)> {
    let winner = *requests.iter().min()?;
    let count = requests.iter().filter(|&&r| r == winner).count() as u32;
    Some((winner, count))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_full_rejection() {
        let mut buf = InputBuffer::new(100);
        assert!(buf.push(60, 1).is_some());
        assert!(buf.push(60, 1).is_none());
        assert_eq!(buf.stats().rejections, 1);
        assert_eq!(buf.occupancy_bytes(), 60);
    }

    #[test]
    fn refcount_eviction() {
        let mut buf = InputBuffer::new(100);
        let id = buf.push(40, 3).unwrap();
        assert!(buf.request(id));
        assert!(buf.request(id));
        assert_eq!(buf.resident_chunks(), 1);
        assert!(buf.request(id));
        assert_eq!(buf.resident_chunks(), 0);
        assert_eq!(buf.stats().evictions, 1);
        // A fourth request misses.
        assert!(!buf.request(id));
    }

    #[test]
    fn eviction_frees_space_for_new_chunks() {
        let mut buf = InputBuffer::new(100);
        let a = buf.push(80, 1).unwrap();
        assert!(buf.push(30, 1).is_none());
        buf.request(a);
        assert!(buf.push(30, 1).is_some());
    }

    #[test]
    fn merged_requests_count_one_broadcast() {
        let mut buf = InputBuffer::new(100);
        let id = buf.push(20, 5).unwrap();
        assert!(buf.request_merged(id, 5));
        let s = buf.stats();
        assert_eq!(s.broadcasts, 1);
        assert_eq!(s.reads, 5);
        assert_eq!(s.bytes_read, 100);
        assert_eq!(buf.resident_chunks(), 0);
    }

    #[test]
    fn merged_request_clamps_to_remaining_refs() {
        let mut buf = InputBuffer::new(100);
        let id = buf.push(20, 2).unwrap();
        assert!(buf.request_merged(id, 5));
        assert_eq!(buf.stats().reads, 2);
        assert_eq!(buf.resident_chunks(), 0);
    }

    #[test]
    fn arbitration_prefers_earliest_chunk() {
        assert_eq!(arbitrate(&[7, 3, 3, 9]), Some((3, 2)));
        assert_eq!(arbitrate(&[]), None);
        assert_eq!(arbitrate(&[5, 5, 5]), Some((5, 3)));
    }

    #[test]
    fn fifo_order_is_preserved() {
        let mut buf = InputBuffer::new(1000);
        let ids: Vec<u64> = (0..5).map(|i| buf.push(10 + i, 1).unwrap()).collect();
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
        // Serving in arbitrated (earliest-first) order drains front-first.
        for id in ids {
            let (win, n) = arbitrate(&[id]).unwrap();
            assert!(buf.request_merged(win, n));
        }
        assert_eq!(buf.resident_chunks(), 0);
    }

    #[test]
    fn zero_sized_pushes_rejected() {
        let mut buf = InputBuffer::new(10);
        assert!(buf.push(0, 1).is_none());
        assert!(buf.push(5, 0).is_none());
    }
}
