//! Simulation statistics: cycles, operation counts, and memory traffic.

/// A rate guarded against non-positive and non-finite values: anything
/// that would make a division blow up (zero, negative, NaN, infinity) is
/// clamped to a tiny positive floor. One helper so every per-rate method
/// ([`ModelStats::latency_ms`], [`ModelStats::pipelined_cycles`]) guards
/// the same way instead of each hand-rolling (or forgetting) the check.
fn guarded_rate(rate: f64) -> f64 {
    if rate.is_finite() {
        rate.max(1e-9)
    } else {
        1e-9
    }
}

/// Ratio of two counters with an honest denominator: `None` when the
/// denominator is zero instead of a silently-inflated `den.max(1)` value
/// that masks a true zero. Comparison code (fidelity checks, validation
/// reports) decides explicitly what a zero baseline means for it.
pub fn checked_ratio(num: u64, den: u64) -> Option<f64> {
    (den != 0).then(|| num as f64 / den as f64)
}

/// DRAM traffic of one layer, in bytes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramTraffic {
    /// Weight bytes read (compressed representation).
    pub weights: u64,
    /// Input-feature-map bytes read (including re-streams).
    pub ifm: u64,
    /// Output-feature-map bytes written.
    pub ofm: u64,
}

impl DramTraffic {
    /// Total DRAM bytes moved.
    pub fn total(&self) -> u64 {
        self.weights + self.ifm + self.ofm
    }
}

/// On-chip SRAM traffic of one layer, in bytes accessed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SramTraffic {
    /// Distributed input-buffer reads.
    pub input_buf: u64,
    /// Per-block coefficient-buffer reads.
    pub coef_buf: u64,
    /// Partial-sum buffer accesses (read-modify-write counted twice).
    pub psum_buf: u64,
    /// Output-buffer writes.
    pub output_buf: u64,
    /// Activation staging buffer accesses.
    pub act_buf: u64,
}

impl SramTraffic {
    /// Total SRAM bytes accessed.
    pub fn total(&self) -> u64 {
        self.input_buf + self.coef_buf + self.psum_buf + self.output_buf + self.act_buf
    }
}

/// Per-layer simulation result.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LayerStats {
    /// Layer (or fused pair) name.
    pub name: String,
    /// Execution cycles for this layer.
    pub cycles: u64,
    /// Multiply-accumulate operations executed in the MAC rows.
    pub mac_ops: u64,
    /// Additions performed by the channel accumulators (matched pairs).
    pub ca_adds: u64,
    /// Bit-gather network invocations (dilution passes).
    pub gather_passes: u64,
    /// Cycles MACs spent idle waiting on the CAs (summed over MACs).
    pub mac_idle_cycles: u64,
    /// Total MAC cycle slots (`cycles × active MACs`), for utilization.
    pub mac_cycle_slots: u64,
    /// DRAM traffic.
    pub dram: DramTraffic,
    /// SRAM traffic.
    pub sram: SramTraffic,
    /// Whether the layer ran on the dense fallback path.
    pub fallback: bool,
}

impl LayerStats {
    /// Fraction of MAC cycle slots spent idle, in `[0, 1]`.
    pub fn mac_idle_fraction(&self) -> f64 {
        if self.mac_cycle_slots == 0 {
            return 0.0;
        }
        self.mac_idle_cycles as f64 / self.mac_cycle_slots as f64
    }
}

/// Steady-state accounting of a layer-pipelined schedule (see
/// [`crate::accel::LayerPipelined`]): stage partitioning, the pacing
/// interval, fill latency, stall slack, and inter-stage buffer pressure.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Pipeline stages the layers were grouped into.
    pub stages: usize,
    /// Steady-state initiation interval: cycles between finished
    /// inferences, set by the slowest stage.
    pub interval_cycles: u64,
    /// Fill latency of one inference through every stage.
    pub latency_cycles: u64,
    /// Σ over stages of `interval − stage_time`: PE-cycles idled by stage
    /// imbalance.
    pub stall_cycles: u64,
    /// Stage boundaries whose inter-layer feature map exceeded on-chip
    /// buffering and spilled through DRAM.
    pub spilled_boundaries: u64,
    /// Feature-map bytes crossing spilled boundaries (per inference,
    /// before the write + re-read doubling).
    pub spilled_bytes: u64,
    /// Largest inter-stage feature-map handoff in bytes.
    pub peak_buffer_bytes: u64,
}

/// Whole-model simulation result.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ModelStats {
    /// Model name.
    pub model_name: String,
    /// Per-layer results in execution order.
    pub layers: Vec<LayerStats>,
    /// Present when the run used a layer-pipelined schedule; `None` under
    /// the default layer-serial fold (which keeps serial output — and all
    /// of its goldens — byte-identical).
    pub pipeline: Option<PipelineStats>,
}

impl ModelStats {
    /// Total cycles across layers (layers execute sequentially).
    pub fn total_cycles(&self) -> u64 {
        self.layers.iter().map(|l| l.cycles).sum()
    }

    /// Total DRAM bytes.
    pub fn total_dram(&self) -> DramTraffic {
        let mut t = DramTraffic::default();
        for l in &self.layers {
            t.weights += l.dram.weights;
            t.ifm += l.dram.ifm;
            t.ofm += l.dram.ofm;
        }
        t
    }

    /// Total SRAM bytes.
    pub fn total_sram(&self) -> SramTraffic {
        let mut t = SramTraffic::default();
        for l in &self.layers {
            t.input_buf += l.sram.input_buf;
            t.coef_buf += l.sram.coef_buf;
            t.psum_buf += l.sram.psum_buf;
            t.output_buf += l.sram.output_buf;
            t.act_buf += l.sram.act_buf;
        }
        t
    }

    /// Total MAC operations.
    pub fn total_mac_ops(&self) -> u64 {
        self.layers.iter().map(|l| l.mac_ops).sum()
    }

    /// Total CA additions.
    pub fn total_ca_adds(&self) -> u64 {
        self.layers.iter().map(|l| l.ca_adds).sum()
    }

    /// Cycles under the schedule that produced these stats: the pipeline
    /// fill latency when a pipelined schedule ran, the serial layer sum
    /// otherwise. Harnesses that compare schedules should use this
    /// instead of [`ModelStats::total_cycles`].
    pub fn schedule_cycles(&self) -> u64 {
        match &self.pipeline {
            Some(p) => p.latency_cycles,
            None => self.total_cycles(),
        }
    }

    /// Inference latency in milliseconds at the given frequency.
    ///
    /// A non-positive or non-finite frequency is clamped to a tiny
    /// positive floor rather than producing `inf`/`NaN` latencies that
    /// poison every downstream mean.
    pub fn latency_ms(&self, frequency_mhz: f64) -> f64 {
        self.total_cycles() as f64 / guarded_rate(frequency_mhz * 1e3)
    }

    /// Cycles under cross-layer double buffering: the next layer's weights
    /// prefetch while the current layer computes, so the model paces at
    /// `max(Σ compute, Σ DRAM)` instead of the per-layer maxima that
    /// [`ModelStats::total_cycles`] sums. A lower bound on the schedule;
    /// the default accounting stays conservative.
    pub fn pipelined_cycles(&self, dram_bytes_per_cycle: f64) -> u64 {
        let compute: u64 = self.layers.iter().map(|l| l.cycles).sum();
        let dram =
            (self.total_dram().total() as f64 / guarded_rate(dram_bytes_per_cycle)).ceil() as u64;
        compute.max(dram)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_totals_sum_fields() {
        let d = DramTraffic {
            weights: 1,
            ifm: 2,
            ofm: 3,
        };
        assert_eq!(d.total(), 6);
        let s = SramTraffic {
            input_buf: 1,
            coef_buf: 2,
            psum_buf: 3,
            output_buf: 4,
            act_buf: 5,
        };
        assert_eq!(s.total(), 15);
    }

    #[test]
    fn idle_fraction_handles_zero_slots() {
        let l = LayerStats::default();
        assert_eq!(l.mac_idle_fraction(), 0.0);
    }

    #[test]
    fn model_aggregation() {
        let mut m = ModelStats {
            model_name: "x".into(),
            pipeline: None,
            layers: vec![],
        };
        for i in 1..=3u64 {
            m.layers.push(LayerStats {
                name: format!("l{i}"),
                cycles: i * 10,
                mac_ops: i,
                dram: DramTraffic {
                    weights: i,
                    ifm: i,
                    ofm: i,
                },
                ..LayerStats::default()
            });
        }
        assert_eq!(m.total_cycles(), 60);
        assert_eq!(m.total_mac_ops(), 6);
        assert_eq!(m.total_dram().total(), 18);
        assert!((m.latency_ms(800.0) - 60.0 / 800_000.0).abs() < 1e-12);
    }

    #[test]
    fn latency_is_finite_for_degenerate_frequencies() {
        let m = ModelStats {
            model_name: "x".into(),
            pipeline: None,
            layers: vec![LayerStats {
                cycles: 1000,
                ..LayerStats::default()
            }],
        };
        for f in [0.0, -800.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let ms = m.latency_ms(f);
            assert!(ms.is_finite(), "frequency {f}: latency {ms}");
            assert!(ms >= 0.0, "frequency {f}: latency {ms}");
        }
        // Sane inputs are unaffected by the guard.
        assert!((m.latency_ms(800.0) - 1000.0 / 800_000.0).abs() < 1e-12);
    }

    #[test]
    fn pipelined_cycles_guards_degenerate_bandwidth() {
        let m = ModelStats {
            model_name: "x".into(),
            pipeline: None,
            layers: vec![LayerStats {
                cycles: 10,
                dram: DramTraffic {
                    weights: 100,
                    ifm: 0,
                    ofm: 0,
                },
                ..LayerStats::default()
            }],
        };
        // Zero/NaN bandwidth degenerates to "DRAM dominates", not a panic
        // or a nonsense cast of inf to u64.
        for bw in [0.0, -4.0, f64::NAN] {
            assert!(m.pipelined_cycles(bw) >= m.total_cycles());
        }
        assert_eq!(m.pipelined_cycles(10.0), 10);
    }

    #[test]
    fn checked_ratio_reports_zero_denominators() {
        assert_eq!(checked_ratio(6, 3), Some(2.0));
        assert_eq!(checked_ratio(0, 3), Some(0.0));
        assert_eq!(checked_ratio(6, 0), None);
        assert_eq!(checked_ratio(0, 0), None);
    }

    #[test]
    fn pipelined_cycles_is_the_larger_of_compute_and_dram() {
        let m = ModelStats {
            model_name: "x".into(),
            pipeline: None,
            layers: vec![
                LayerStats {
                    cycles: 100,
                    dram: DramTraffic {
                        weights: 6400,
                        ifm: 0,
                        ofm: 0,
                    },
                    ..LayerStats::default()
                },
                LayerStats {
                    cycles: 100,
                    dram: DramTraffic {
                        weights: 0,
                        ifm: 0,
                        ofm: 0,
                    },
                    ..LayerStats::default()
                },
            ],
        };
        // Compute 200 cycles; DRAM 6400 B at 64 B/cycle = 100 cycles.
        assert_eq!(m.pipelined_cycles(64.0), 200);
        // At 8 B/cycle DRAM dominates: 800 cycles.
        assert_eq!(m.pipelined_cycles(8.0), 800);
        assert!(m.pipelined_cycles(64.0) <= m.total_cycles());
    }
}
