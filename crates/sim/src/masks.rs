//! Activation mask sources: where per-position nonzero patterns come from.
//!
//! Every simulation fidelity consumes the same thing per (output channel,
//! input position) pair — a bit mask of nonzero input channels — but the
//! fidelities obtain it differently: the sampling engine draws synthetic
//! Bernoulli masks from the layer's profiled sparsity, while the
//! trace-driven and detailed modes read real masks extracted from a
//! concrete `C×X×Y` feature map. [`MaskSource`] unifies the two behind one
//! cursor so the shared position loop in [`crate::context`] is written
//! once.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Extracts the per-position activation nonzero masks from a `C×X×Y`
/// feature map: element `[x*Y + y]` holds one bit per channel.
///
/// # Panics
///
/// Panics if `ifm` is not rank-3. Drivers validate shapes against the
/// workload first (see [`crate::context::LayerContext::validate_ifm`]),
/// which reports a typed [`crate::error::SimError`] instead.
pub fn position_masks(ifm: &escalate_tensor::Tensor) -> Vec<Vec<u64>> {
    let [c, x, y]: [usize; 3] = ifm.shape().try_into().expect("ifm must be C*X*Y");
    let words = c.div_ceil(64);
    let mut masks = vec![vec![0u64; words]; x * y];
    let data = ifm.as_slice();
    for ci in 0..c {
        for xi in 0..x {
            for yi in 0..y {
                if data[(ci * x + xi) * y + yi] != 0.0 {
                    masks[xi * y + yi][ci / 64] |= 1u64 << (ci % 64);
                }
            }
        }
    }
    masks
}

/// Mixes an input seed with a layer name (FNV-1a), giving each layer its
/// own independent RNG stream so layers can simulate in parallel while
/// staying bit-identical to a sequential run.
pub(crate) fn layer_seed(seed: u64, name: &str) -> u64 {
    seed ^ name.bytes().fold(0xcbf29ce484222325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x100000001b3)
    })
}

/// A supply of per-position activation masks for one sampled channel walk.
///
/// The core loop walks positions `0..positions()` once per sampled output
/// channel. A [`MaskSource::Bernoulli`] source draws a fresh synthetic
/// mask on every call (one continuous RNG stream across channels — the
/// engine's historical draw order); a [`MaskSource::Trace`] source returns
/// the real mask of the requested position, identical for every channel.
pub enum MaskSource<'a> {
    /// Synthetic Bernoulli draws from the profiled activation sparsity.
    Bernoulli {
        /// Per-layer RNG stream (seeded via [`layer_seed`]).
        rng: StdRng,
        /// Input channel count `C`.
        c: usize,
        /// Probability that a channel is nonzero (`1 − sparsity`).
        keep_prob: f64,
        /// Positions sampled per channel.
        positions: usize,
    },
    /// Real per-position masks extracted from a feature map.
    Trace {
        /// One mask per input position (`X·Y` entries).
        masks: &'a [Vec<u64>],
    },
    /// A pre-drawn Bernoulli stream shared across design points (the
    /// derived-state cache of [`crate::shared`]): the masks the
    /// [`MaskSource::Bernoulli`] walk would draw, materialized
    /// back-to-back in stream order and replayed through a cursor. Like
    /// the live stream, the requested position index is ignored — each
    /// call returns the next mask.
    Materialized {
        /// The mask block, `channels × positions × words` words flat.
        words: Arc<Vec<u64>>,
        /// Words per mask (`⌈C/64⌉`).
        words_per_mask: usize,
        /// Next mask index in the stream.
        cursor: usize,
        /// Positions walked per channel.
        positions: usize,
    },
}

impl<'a> MaskSource<'a> {
    /// A synthetic source drawing `positions` masks per channel from the
    /// layer's RNG stream.
    pub fn bernoulli(
        layer_seed: u64,
        c: usize,
        keep_prob: f64,
        positions: usize,
    ) -> MaskSource<'static> {
        MaskSource::Bernoulli {
            rng: StdRng::seed_from_u64(layer_seed),
            c,
            keep_prob,
            positions,
        }
    }

    /// A trace source walking every position of a real feature map.
    pub fn trace(masks: &'a [Vec<u64>]) -> MaskSource<'a> {
        MaskSource::Trace { masks }
    }

    /// A source replaying a materialized mask block from its start:
    /// `words` must hold whole masks of `⌈c/64⌉` words, at least as many
    /// as the walk will consume.
    pub fn materialized(words: Arc<Vec<u64>>, c: usize, positions: usize) -> MaskSource<'static> {
        MaskSource::Materialized {
            words,
            words_per_mask: c.div_ceil(64),
            cursor: 0,
            positions,
        }
    }

    /// Positions walked per sampled channel.
    pub fn positions(&self) -> usize {
        match self {
            MaskSource::Bernoulli { positions, .. } => *positions,
            MaskSource::Trace { masks } => masks.len(),
            MaskSource::Materialized { positions, .. } => *positions,
        }
    }

    /// The activation mask for position `pos` of the current channel walk.
    ///
    /// Bernoulli sources draw into `buf` (advancing the RNG stream and
    /// ignoring `pos`); trace sources return the stored mask unbuffered.
    pub fn mask<'b>(&'b mut self, pos: usize, buf: &'b mut [u64]) -> &'b [u64]
    where
        'a: 'b,
    {
        match self {
            MaskSource::Bernoulli {
                rng, c, keep_prob, ..
            } => {
                draw_act_mask_into(rng, *c, *keep_prob, buf);
                buf
            }
            MaskSource::Trace { masks } => &masks[pos],
            MaskSource::Materialized {
                words,
                words_per_mask,
                cursor,
                ..
            } => {
                let at = *cursor * *words_per_mask;
                *cursor += 1;
                &words[at..at + *words_per_mask]
            }
        }
    }

    /// [`MaskSource::mask`], materialized into `buf` unconditionally — the
    /// form the batched position walk uses to pack several masks
    /// back-to-back. Bernoulli sources consume exactly the same RNG
    /// stream as [`MaskSource::mask`]; trace sources copy the stored
    /// words.
    ///
    /// # Panics
    ///
    /// Panics if `buf` is shorter than the mask's word count.
    pub fn mask_into(&mut self, pos: usize, buf: &mut [u64]) {
        match self {
            MaskSource::Bernoulli {
                rng, c, keep_prob, ..
            } => draw_act_mask_into(rng, *c, *keep_prob, buf),
            MaskSource::Trace { masks } => buf.copy_from_slice(&masks[pos]),
            MaskSource::Materialized {
                words,
                words_per_mask,
                cursor,
                ..
            } => {
                let at = *cursor * *words_per_mask;
                *cursor += 1;
                buf.copy_from_slice(&words[at..at + *words_per_mask]);
            }
        }
    }
}

/// Draws a Bernoulli activation mask into a caller-owned buffer. Consumes
/// exactly one `gen_bool` per input channel, so equal `(rng state, c,
/// keep_prob)` always produce identical masks and identical successor
/// states.
pub(crate) fn draw_act_mask_into(rng: &mut StdRng, c: usize, keep_prob: f64, mask: &mut [u64]) {
    mask.fill(0);
    for ci in 0..c {
        if rng.gen_bool(keep_prob.clamp(0.0, 1.0)) {
            mask[ci / 64] |= 1u64 << (ci % 64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use escalate_tensor::Tensor;

    /// Reference allocating draw the property test compares
    /// [`draw_act_mask_into`] against.
    fn draw_act_mask(rng: &mut StdRng, c: usize, words: usize, keep_prob: f64) -> Vec<u64> {
        let mut mask = vec![0u64; words];
        for ci in 0..c {
            if rng.gen_bool(keep_prob.clamp(0.0, 1.0)) {
                mask[ci / 64] |= 1u64 << (ci % 64);
            }
        }
        mask
    }

    #[test]
    fn bernoulli_source_matches_direct_stream() {
        // Walking a Bernoulli source position-by-position consumes the
        // same stream as drawing masks directly from the seeded RNG.
        let (c, sp) = (100usize, 5);
        let words = c.div_ceil(64);
        let mut source = MaskSource::bernoulli(42, c, 0.5, sp);
        let mut rng = StdRng::seed_from_u64(42);
        let mut buf = vec![0u64; words];
        for p in 0..2 * sp {
            let expect = draw_act_mask(&mut rng, c, words, 0.5);
            assert_eq!(source.mask(p % sp, &mut buf), &expect[..], "draw {p}");
        }
    }

    #[test]
    fn trace_source_returns_stored_masks() {
        let masks = vec![vec![0b101u64], vec![0b010u64], vec![0b111u64]];
        let mut source = MaskSource::trace(&masks);
        assert_eq!(source.positions(), 3);
        let mut buf = vec![u64::MAX]; // must be ignored
        for (p, m) in masks.iter().enumerate() {
            assert_eq!(source.mask(p, &mut buf), &m[..]);
        }
    }

    #[test]
    fn materialized_source_replays_the_bernoulli_stream() {
        let (c, sp, ch) = (70usize, 4, 3);
        let words = c.div_ceil(64);
        let mut block = vec![0u64; ch * sp * words];
        let mut rng = StdRng::seed_from_u64(7);
        for m in block.chunks_mut(words) {
            draw_act_mask_into(&mut rng, c, 0.5, m);
        }
        let mut mat = MaskSource::materialized(Arc::new(block), c, sp);
        let mut bern = MaskSource::bernoulli(7, c, 0.5, sp);
        assert_eq!(mat.positions(), sp);
        let (mut b1, mut b2) = (vec![0u64; words], vec![0u64; words]);
        for i in 0..ch * sp {
            // Both sources ignore the position index and advance their
            // stream — the walk passes `i % sp` per channel.
            mat.mask_into(i % sp, &mut b1);
            bern.mask_into(i % sp, &mut b2);
            assert_eq!(b1, b2, "mask {i}");
        }
    }

    #[test]
    fn position_masks_match_tensor_nonzeros() {
        let (c, x, y) = (70, 3, 4);
        let ifm = Tensor::from_fn(&[c, x, y], |i| {
            if (i[0] + i[1] * 2 + i[2]) % 3 == 0 {
                1.0
            } else {
                0.0
            }
        });
        let masks = position_masks(&ifm);
        assert_eq!(masks.len(), x * y);
        for xi in 0..x {
            for yi in 0..y {
                for ci in 0..c {
                    let bit = masks[xi * y + yi][ci / 64] >> (ci % 64) & 1 == 1;
                    assert_eq!(bit, ifm.get(&[ci, xi, yi]) != 0.0, "c={ci} x={xi} y={yi}");
                }
            }
        }
    }

    proptest::proptest! {
        /// The scratch-buffer mask draw must consume the identical RNG
        /// stream as the allocating reference for any `(c, keep_prob)`.
        #[test]
        fn scratch_mask_draw_matches_allocating(
            c in 1usize..300,
            keep_prob in 0.0f64..1.0,
            seed in proptest::prelude::any::<u64>(),
        ) {
            let words = c.div_ceil(64);
            let mut r_alloc = StdRng::seed_from_u64(seed);
            let mut r_scratch = StdRng::seed_from_u64(seed);
            let reference = draw_act_mask(&mut r_alloc, c, words, keep_prob);
            let mut mask = vec![u64::MAX; words]; // deliberately dirty
            draw_act_mask_into(&mut r_scratch, c, keep_prob, &mut mask);
            proptest::prop_assert_eq!(&reference, &mask);
            // Both RNGs must land in the same state afterwards.
            proptest::prop_assert_eq!(
                draw_act_mask(&mut r_alloc, c, words, keep_prob),
                {
                    draw_act_mask_into(&mut r_scratch, c, keep_prob, &mut mask);
                    mask.clone()
                }
            );
        }
    }
}
