//! Accelerator configuration (paper Table 2).

/// Whole-network schedule mode: how per-layer work shares the PE array.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum ScheduleKind {
    /// Layers run one after another, each using the full PE array — the
    /// paper's evaluation schedule and the default.
    #[default]
    LayerSerial,
    /// All layers are resident at once: the PE array is partitioned
    /// across pipeline stages proportionally to their work, inter-layer
    /// feature maps hand off through on-chip buffers (spilling to DRAM
    /// when they exceed the configured SRAM), and steady-state throughput
    /// paces at the slowest stage (HPIPE-style layer pipelining).
    Pipelined,
}

impl ScheduleKind {
    /// Canonical CLI/wire spelling (`"serial"` / `"pipelined"`).
    pub fn as_str(&self) -> &'static str {
        match self {
            ScheduleKind::LayerSerial => "serial",
            ScheduleKind::Pipelined => "pipelined",
        }
    }

    /// Parses the CLI/wire spelling.
    ///
    /// # Errors
    ///
    /// Returns a message listing the accepted spellings.
    pub fn parse(s: &str) -> Result<ScheduleKind, String> {
        match s {
            "serial" => Ok(ScheduleKind::LayerSerial),
            "pipelined" => Ok(ScheduleKind::Pipelined),
            other => Err(format!(
                "unknown schedule {other:?} (expected \"serial\" or \"pipelined\")"
            )),
        }
    }
}

impl std::fmt::Display for ScheduleKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Configuration of the ESCALATE accelerator.
///
/// The default reproduces Table 2: `M = 6`, `N_PE = 32`, `l = 5`, a
/// 16-byte input bus, 8-bit activations, and the listed buffer sizes, at
/// 800 MHz (the synthesized frequency of §5.2.1). The total multiplier
/// count is `N_PE × l × M = 960`.
///
/// # Examples
///
/// ```
/// use escalate_sim::SimConfig;
///
/// let cfg = SimConfig::default();
/// assert_eq!(cfg.total_macs(), 960);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Number of basis kernels / CA-MAC pairs per slice (`M`).
    pub m: usize,
    /// Number of PE blocks (`N_PE`).
    pub n_pe: usize,
    /// Number of PE slices per block (`l`).
    pub l: usize,
    /// Input bus width in bytes (activations per cycle at 8 bits).
    pub input_bus_bytes: usize,
    /// Activation/weight precision in bits.
    pub precision_bits: usize,
    /// Capacity of each distributed input buffer in bytes.
    pub input_buf_bytes: usize,
    /// Per-block coefficient buffer in bytes.
    pub coef_buf_bytes: usize,
    /// Output buffer in bytes.
    pub output_buf_bytes: usize,
    /// Per-slice partial-sum buffer in bytes.
    pub psum_buf_bytes: usize,
    /// Per-slice activation staging buffer in bytes (Table 2: 16 B × 4).
    pub act_buf_bytes: usize,
    /// Concentration look-ahead window (rows).
    pub look_ahead: usize,
    /// Concentration look-aside window (columns).
    pub look_aside: usize,
    /// Clock frequency in MHz.
    pub frequency_mhz: f64,
    /// DRAM bandwidth in bytes per cycle (64 B/cycle ≈ 51.2 GB/s at
    /// 800 MHz — a dual-channel DDR4-3200 interface, the class of system
    /// the paper's ramulator runs model). Layers whose traffic exceeds
    /// compute become memory-bound.
    pub dram_bytes_per_cycle: f64,
    /// Output channels the sampled and trace-driven fidelities walk per
    /// layer (clamped to `K`): stratified quantile representatives of the
    /// per-channel coefficient-count distribution. Raising it toward `K`
    /// trades simulation speed for estimator variance — set it to `K` (or
    /// any large value) to cover every channel exactly. This knob
    /// configures the host simulator, not the modeled hardware.
    pub sample_channels: usize,
    /// Host threads for the simulation harness: `0` = auto (the
    /// `ESCALATE_THREADS` environment variable, else all cores), `1`
    /// forces sequential execution. Results are bit-identical for any
    /// value — every parallel stage is order-preserving with per-item
    /// RNG seeding. This knob configures the host simulator, not the
    /// modeled hardware.
    pub threads: usize,
    /// Opt-in to the process-wide derived-state cache ([`crate::shared`]):
    /// hardware-invariant per-layer artifacts — materialized Bernoulli
    /// activation masks and compiled [`crate::ca::LayerPlan`]s — are
    /// shared across runs keyed by everything that determines them.
    /// Results are bit-identical either way (cached masks replay the
    /// exact RNG stream; cached plans are verified word-for-word before
    /// reuse); sharing only changes speed. Design-space sweeps enable it;
    /// the default is off. This knob configures the host simulator, not
    /// the modeled hardware.
    pub share_derived: bool,
    /// Whole-network schedule mode (see [`ScheduleKind`]). The default
    /// layer-serial mode reproduces the paper's evaluation and every
    /// existing golden bit-for-bit.
    pub schedule: ScheduleKind,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            m: 6,
            n_pe: 32,
            l: 5,
            input_bus_bytes: 16,
            precision_bits: 8,
            input_buf_bytes: 8 * 1024,
            coef_buf_bytes: 512,
            output_buf_bytes: 4 * 1024,
            psum_buf_bytes: 2 * 1024,
            act_buf_bytes: 16 * 4,
            look_ahead: 4,
            look_aside: 1,
            frequency_mhz: 800.0,
            dram_bytes_per_cycle: 64.0,
            sample_channels: 8,
            threads: 0,
            share_derived: false,
            schedule: ScheduleKind::default(),
        }
    }
}

impl SimConfig {
    /// Total number of multipliers (`N_PE × l × M`).
    pub fn total_macs(&self) -> usize {
        self.n_pe * self.l * self.m
    }

    /// Activations delivered per cycle by the input bus.
    pub fn bus_elems(&self) -> usize {
        (self.input_bus_bytes * 8) / self.precision_bits.max(1)
    }

    /// Total input-buffer capacity across the `l` distributed buffers.
    pub fn total_input_buf_bytes(&self) -> usize {
        self.input_buf_bytes * self.l
    }

    /// A design-space variant with `m` basis kernels, shrinking `l` to keep
    /// the multiplier budget constant (the Figure 12 trade-off).
    pub fn with_m(&self, m: usize) -> SimConfig {
        assert!(m > 0, "m must be positive");
        let budget = self.total_macs();
        let l = (budget / (self.n_pe * m)).max(1);
        SimConfig { m, l, ..*self }
    }

    /// Cycle time in nanoseconds.
    pub fn cycle_ns(&self) -> f64 {
        1000.0 / self.frequency_mhz
    }
}

/// One sampled point of the accelerator design space: the dimensions the
/// `escalate sweep` engine explores, with everything else pinned to the
/// Table 2 defaults. `l` stays at its default — the sweep varies the
/// multiplier budget through `m` and `n_pe` directly, so area and
/// throughput move together instead of being renormalized away (the
/// fixed-budget `M`↔`l` trade-off is Figure 12's separate study, see
/// [`SimConfig::with_m`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DesignPoint {
    /// Basis kernels / CA-MAC pairs per slice (`M`).
    pub m: usize,
    /// PE blocks (`N_PE`).
    pub n_pe: usize,
    /// Input bus width in bytes.
    pub input_bus_bytes: usize,
    /// Per-buffer capacity of each distributed input buffer (bytes).
    pub input_buf_bytes: usize,
    /// Per-block coefficient buffer (bytes).
    pub coef_buf_bytes: usize,
    /// Per-slice partial-sum buffer (bytes).
    pub psum_buf_bytes: usize,
    /// Output buffer (bytes).
    pub output_buf_bytes: usize,
    /// Host-fidelity knob: output channels the sampled walk covers.
    pub sample_channels: usize,
}

impl DesignPoint {
    /// The paper's design point (Table 2).
    pub fn table2() -> DesignPoint {
        let cfg = SimConfig::default();
        DesignPoint {
            m: cfg.m,
            n_pe: cfg.n_pe,
            input_bus_bytes: cfg.input_bus_bytes,
            input_buf_bytes: cfg.input_buf_bytes,
            coef_buf_bytes: cfg.coef_buf_bytes,
            psum_buf_bytes: cfg.psum_buf_bytes,
            output_buf_bytes: cfg.output_buf_bytes,
            sample_channels: cfg.sample_channels,
        }
    }

    /// Materializes the sampled point as a full simulator configuration
    /// (Table 2 defaults for every dimension the sweep does not explore).
    ///
    /// # Panics
    ///
    /// Panics when any sampled dimension is zero — a zero-wide bus or
    /// empty buffer is a sampler bug, not a simulable design.
    pub fn to_config(self) -> SimConfig {
        assert!(
            self.m > 0
                && self.n_pe > 0
                && self.input_bus_bytes > 0
                && self.input_buf_bytes > 0
                && self.coef_buf_bytes > 0
                && self.psum_buf_bytes > 0
                && self.output_buf_bytes > 0
                && self.sample_channels > 0,
            "degenerate design point: {self:?}"
        );
        SimConfig {
            m: self.m,
            n_pe: self.n_pe,
            input_bus_bytes: self.input_bus_bytes,
            input_buf_bytes: self.input_buf_bytes,
            coef_buf_bytes: self.coef_buf_bytes,
            psum_buf_bytes: self.psum_buf_bytes,
            output_buf_bytes: self.output_buf_bytes,
            sample_channels: self.sample_channels,
            ..SimConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table2() {
        let c = SimConfig::default();
        assert_eq!(c.m, 6);
        assert_eq!(c.n_pe, 32);
        assert_eq!(c.l, 5);
        assert_eq!(c.input_bus_bytes, 16);
        assert_eq!(c.input_buf_bytes, 8192);
        assert_eq!(c.coef_buf_bytes, 512);
        assert_eq!(c.psum_buf_bytes, 2048);
        assert_eq!(c.total_macs(), 960);
        assert_eq!(c.bus_elems(), 16);
        assert_eq!(c.sample_channels, 8);
    }

    #[test]
    fn with_m_preserves_mac_budget_approximately() {
        let base = SimConfig::default();
        for m in [4usize, 5, 6, 7, 8] {
            let v = base.with_m(m);
            assert!(v.total_macs() <= base.total_macs());
            assert!(v.l >= 1);
            // Within one slice of the budget.
            assert!(base.total_macs() - v.total_macs() < base.n_pe * m);
        }
    }

    #[test]
    fn larger_m_means_smaller_l() {
        let base = SimConfig::default();
        assert!(base.with_m(8).l <= base.with_m(4).l);
    }

    #[test]
    fn schedule_kind_round_trips_its_spelling() {
        for kind in [ScheduleKind::LayerSerial, ScheduleKind::Pipelined] {
            assert_eq!(ScheduleKind::parse(kind.as_str()), Ok(kind));
        }
        let e = ScheduleKind::parse("warp").unwrap_err();
        assert!(e.contains("serial") && e.contains("pipelined"), "{e}");
        assert_eq!(ScheduleKind::default(), ScheduleKind::LayerSerial);
    }

    #[test]
    fn cycle_time_at_800mhz() {
        assert!((SimConfig::default().cycle_ns() - 1.25).abs() < 1e-9);
    }

    #[test]
    fn table2_design_point_materializes_the_default_config() {
        assert_eq!(DesignPoint::table2().to_config(), SimConfig::default());
    }

    #[test]
    fn design_point_overrides_only_the_explored_dimensions() {
        let p = DesignPoint {
            m: 4,
            n_pe: 64,
            input_bus_bytes: 32,
            input_buf_bytes: 4096,
            coef_buf_bytes: 1024,
            psum_buf_bytes: 4096,
            output_buf_bytes: 8192,
            sample_channels: 16,
        };
        let cfg = p.to_config();
        assert_eq!(cfg.m, 4);
        assert_eq!(cfg.n_pe, 64);
        assert_eq!(cfg.input_bus_bytes, 32);
        assert_eq!(cfg.input_buf_bytes, 4096);
        assert_eq!(cfg.coef_buf_bytes, 1024);
        assert_eq!(cfg.psum_buf_bytes, 4096);
        assert_eq!(cfg.output_buf_bytes, 8192);
        assert_eq!(cfg.sample_channels, 16);
        // Unexplored dimensions stay at Table 2.
        let d = SimConfig::default();
        assert_eq!(cfg.l, d.l);
        assert_eq!(cfg.look_ahead, d.look_ahead);
        assert_eq!(cfg.frequency_mhz, d.frequency_mhz);
        assert_eq!(cfg.act_buf_bytes, d.act_buf_bytes);
    }

    #[test]
    #[should_panic(expected = "degenerate design point")]
    fn zero_dimension_design_points_are_rejected() {
        DesignPoint {
            m: 0,
            ..DesignPoint::table2()
        }
        .to_config();
    }
}
