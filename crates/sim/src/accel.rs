//! The accelerator abstraction the whole harness runs through.
//!
//! An [`Accelerator`] is a model-bound simulator instance: it knows how
//! many layers its workload has and how to produce [`LayerStats`] for any
//! one of them. The provided [`Accelerator::simulate`] is the *single*
//! fold from per-layer stats into [`ModelStats`] — ESCALATE and every
//! baseline in `escalate-baselines` go through it, so the seed-averaging
//! harness in `escalate-bench` treats all designs uniformly through one
//! `&dyn Accelerator` runner.
//!
//! The trait is object-safe and `Sync`: harnesses iterate heterogeneous
//! accelerator lists and fan input seeds out across threads against a
//! shared instance.

use crate::config::{ScheduleKind, SimConfig};
use crate::engine::simulate_layer;
use crate::stats::{LayerStats, ModelStats, PipelineStats};
use crate::workload::Workload;
use rayon::prelude::*;

/// A model-bound accelerator simulator.
pub trait Accelerator: Sync {
    /// Accelerator display name (e.g. `"ESCALATE"`, `"Eyeriss"`).
    fn name(&self) -> &str;

    /// The `ModelStats::model_name` tag for this run. Defaults to the
    /// lower-cased accelerator name (the baselines' convention); ESCALATE
    /// overrides it with the workload's model name.
    fn model_name(&self) -> String {
        self.name().to_lowercase()
    }

    /// Number of layers in the bound workload.
    fn num_layers(&self) -> usize;

    /// Simulates one layer. `seed` selects the synthetic input draw;
    /// deterministic accelerator models ignore it.
    fn simulate_layer(&self, index: usize, seed: u64) -> LayerStats;

    /// Simulates the whole model: the one fold from per-layer stats into
    /// [`ModelStats`]. Layers are independent, so with `threads != 1` they
    /// fan out over the global pool and reassemble in execution order —
    /// bit-identical to the sequential walk. The default is the
    /// layer-serial schedule; ESCALATE overrides this to dispatch on
    /// [`SimConfig::schedule`].
    fn simulate(&self, seed: u64, threads: usize) -> ModelStats {
        serial_fold(self, seed, threads)
    }
}

/// The one per-layer fold every schedule builds on: simulate each layer
/// independently and reassemble in execution order (sequentially or over
/// the global pool — bit-identical either way).
fn serial_fold<A: Accelerator + ?Sized>(acc: &A, seed: u64, threads: usize) -> ModelStats {
    let layers = if threads == 1 {
        (0..acc.num_layers())
            .map(|i| acc.simulate_layer(i, seed))
            .collect()
    } else {
        (0..acc.num_layers())
            .into_par_iter()
            .map(|i| acc.simulate_layer(i, seed))
            .collect()
    };
    ModelStats {
        model_name: acc.model_name(),
        layers,
        pipeline: None,
    }
}

/// A whole-network schedule: how per-layer simulation results compose
/// into a model-level result. The layer-serial fold is the paper's
/// evaluation schedule; the layer-pipelined schedule models all layers
/// resident at once on a partitioned PE array.
pub trait Schedule: Sync {
    /// Canonical schedule name (matches [`ScheduleKind::as_str`]).
    fn name(&self) -> &'static str;

    /// Runs the accelerator's layers under this schedule.
    fn run(&self, acc: &dyn Accelerator, cfg: &SimConfig, seed: u64, threads: usize) -> ModelStats;
}

/// The paper's schedule: layers run one after another, each using the
/// full PE array; model cycles are the plain layer sum.
pub struct LayerSerial;

impl Schedule for LayerSerial {
    fn name(&self) -> &'static str {
        ScheduleKind::LayerSerial.as_str()
    }

    fn run(
        &self,
        acc: &dyn Accelerator,
        _cfg: &SimConfig,
        seed: u64,
        threads: usize,
    ) -> ModelStats {
        serial_fold(acc, seed, threads)
    }
}

/// HPIPE-style layer pipelining: consecutive layers are grouped into at
/// most `N_PE` stages balanced by work, each stage gets a PE share
/// proportional to its work, inter-stage feature maps hand off through
/// on-chip buffers (spilling through DRAM when they exceed the configured
/// SRAM), and steady state paces at the slowest stage.
pub struct LayerPipelined;

impl Schedule for LayerPipelined {
    fn name(&self) -> &'static str {
        ScheduleKind::Pipelined.as_str()
    }

    fn run(&self, acc: &dyn Accelerator, cfg: &SimConfig, seed: u64, threads: usize) -> ModelStats {
        let mut stats = serial_fold(acc, seed, threads);
        stats.pipeline = Some(pipeline_model(&stats, cfg));
        stats
    }
}

/// The schedule implementation for a [`ScheduleKind`].
pub fn schedule_for(kind: ScheduleKind) -> &'static dyn Schedule {
    match kind {
        ScheduleKind::LayerSerial => &LayerSerial,
        ScheduleKind::Pipelined => &LayerPipelined,
    }
}

/// Analytic steady-state model of the layer-pipelined schedule, built on
/// the per-layer results of the serial fold (whose cycles assume the full
/// PE array):
///
/// 1. consecutive layers group into `min(layers, N_PE/2)` stages, closing
///    a stage once it holds its proportional share of the remaining work
///    (capping at half the array keeps the one-PE-minimum grants from
///    consuming every PE, which would strand a dominant layer on a
///    single PE);
/// 2. each stage is allocated PEs proportionally to its work
///    (water-filling, at least one PE each, summing to `N_PE`), and its
///    time scales by `N_PE / allocated` — work-proportional slowdown;
/// 3. each stage boundary hands its producer's compressed OFM to the
///    consumer; when it exceeds the on-chip handoff capacity (the
///    distributed input buffers plus the output buffer) the boundary
///    spills through DRAM and the producer pays the write + re-read;
/// 4. the initiation interval is the slowest stage; fill latency is the
///    stage sum; stall cycles are the slack the interval leaves in every
///    other stage.
///
/// Emits `sim.pipeline_stalls` and a `sim.stage_occupancy_bytes`
/// histogram through `escalate-obs`.
fn pipeline_model(stats: &ModelStats, cfg: &SimConfig) -> PipelineStats {
    let n = stats.layers.len();
    if n == 0 {
        return PipelineStats::default();
    }
    let cycles: Vec<u64> = stats.layers.iter().map(|l| l.cycles).collect();
    let total: u64 = cycles.iter().sum();
    let stage_count = n.min((cfg.n_pe / 2).max(1));

    // 1. Group consecutive layers into work-balanced stages.
    let mut groups: Vec<std::ops::Range<usize>> = Vec::with_capacity(stage_count);
    let mut start = 0usize;
    let mut acc = 0u64;
    let mut done = 0u64;
    for (i, &layer_cycles) in cycles.iter().enumerate() {
        acc += layer_cycles;
        let groups_left = stage_count - groups.len();
        if groups_left <= 1 {
            continue;
        }
        // Close when this stage reached its share of the remaining work,
        // or when every remaining stage needs one of the remaining layers.
        let target = (total - done).div_ceil(groups_left as u64);
        let must_close = n - i - 1 == groups_left - 1;
        if acc >= target || must_close {
            groups.push(start..i + 1);
            start = i + 1;
            done += acc;
            acc = 0;
        }
    }
    groups.push(start..n);
    let works: Vec<u64> = groups
        .iter()
        .map(|g| cycles[g.clone()].iter().sum::<u64>().max(1))
        .collect();
    let total_work: u64 = works.iter().sum();

    // 2. Water-filling PE allocation proportional to stage work.
    let n_pe = cfg.n_pe.max(groups.len()) as u64;
    let mut alloc: Vec<u64> = works
        .iter()
        .map(|&w| ((n_pe as u128 * w as u128) / total_work as u128).max(1) as u64)
        .collect();
    let most_starved = |alloc: &[u64]| {
        // Largest work-per-PE; ties break on the earliest stage.
        (0..alloc.len())
            .max_by(|&a, &b| {
                (works[a] as u128 * alloc[b] as u128)
                    .cmp(&(works[b] as u128 * alloc[a] as u128))
                    .then(b.cmp(&a))
            })
            .expect("at least one stage")
    };
    while alloc.iter().sum::<u64>() > n_pe {
        // Reclaim from the most over-provisioned stage that can spare one.
        let i = (0..alloc.len())
            .filter(|&i| alloc[i] > 1)
            .min_by(|&a, &b| {
                (works[a] as u128 * alloc[b] as u128)
                    .cmp(&(works[b] as u128 * alloc[a] as u128))
                    .then(a.cmp(&b))
            })
            .expect("allocations exceed stage count");
        alloc[i] -= 1;
    }
    while alloc.iter().sum::<u64>() < n_pe {
        let i = most_starved(&alloc);
        alloc[i] += 1;
    }

    // 3. Stage times under the allocation, plus DRAM spills at
    // over-capacity boundaries.
    let mut times: Vec<u64> = works
        .iter()
        .zip(&alloc)
        .map(|(&w, &a)| ((w as u128 * n_pe as u128).div_ceil(a as u128)) as u64)
        .collect();
    let handoff_capacity = (cfg.total_input_buf_bytes() + cfg.output_buf_bytes) as u64;
    let mut spilled = 0u64;
    let mut spilled_bytes = 0u64;
    let mut peak = 0u64;
    for (i, g) in groups.iter().enumerate().take(groups.len() - 1) {
        let bytes = stats.layers[g.end - 1].dram.ofm;
        escalate_obs::observe("sim.stage_occupancy_bytes", bytes);
        peak = peak.max(bytes);
        if bytes > handoff_capacity {
            spilled += 1;
            spilled_bytes += bytes;
            let penalty = (2.0 * bytes as f64 / cfg.dram_bytes_per_cycle.max(1e-9)).ceil() as u64;
            times[i] += penalty;
        }
    }

    // 4. Interval, latency, and stage-balance stalls.
    let interval = *times.iter().max().expect("at least one stage");
    let latency: u64 = times.iter().sum();
    let stall: u64 = times.iter().map(|&t| interval - t).sum();
    escalate_obs::counter_add("sim.pipeline_stalls", stall);

    PipelineStats {
        stages: groups.len(),
        interval_cycles: interval,
        latency_cycles: latency,
        stall_cycles: stall,
        spilled_boundaries: spilled,
        spilled_bytes,
        peak_buffer_bytes: peak,
    }
}

/// ESCALATE itself as an [`Accelerator`]: the sampled engine bound to a
/// compressed-model workload and a [`SimConfig`].
pub struct Escalate<'a> {
    workload: &'a Workload,
    cfg: &'a SimConfig,
}

impl<'a> Escalate<'a> {
    /// Binds the engine to a workload and configuration.
    pub fn new(workload: &'a Workload, cfg: &'a SimConfig) -> Self {
        Escalate { workload, cfg }
    }
}

impl Accelerator for Escalate<'_> {
    fn name(&self) -> &str {
        "ESCALATE"
    }

    fn model_name(&self) -> String {
        self.workload.model_name.clone()
    }

    fn num_layers(&self) -> usize {
        self.workload.layers.len()
    }

    fn simulate_layer(&self, index: usize, seed: u64) -> LayerStats {
        simulate_layer(&self.workload.layers[index], self.cfg, seed)
    }

    /// ESCALATE dispatches on [`SimConfig::schedule`]; the baselines keep
    /// the default layer-serial fold (they model the published designs,
    /// which have no pipelined mode).
    fn simulate(&self, seed: u64, threads: usize) -> ModelStats {
        schedule_for(self.cfg.schedule).run(self, self.cfg, seed, threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{CoefMasks, LayerWorkload, WorkloadMode};
    use escalate_core::quant::TernaryCoeffs;
    use escalate_models::LayerShape;
    use escalate_tensor::Tensor;

    fn toy_workload() -> Workload {
        let layers = (0..3)
            .map(|i| {
                let (c, k) = (32 + 16 * i, 32);
                let coeffs =
                    Tensor::from_fn(&[k, c, 6], |ix| match (ix[0] + ix[1] * 2 + ix[2]) % 4 {
                        0 => 1.0,
                        1 => -1.0,
                        _ => 0.0,
                    });
                let t = TernaryCoeffs::ternarize(&coeffs, 0.0).unwrap();
                LayerWorkload {
                    name: format!("l{i}"),
                    shape: LayerShape::conv("t", c, k, 8, 8, 3, 1, 1),
                    out_channels: k,
                    mode: WorkloadMode::Decomposed(CoefMasks::from_ternary(&t)),
                    act_sparsity: 0.5,
                    out_sparsity: 0.5,
                    weight_bytes: 100,
                }
            })
            .collect();
        Workload {
            model_name: "toy".into(),
            layers,
        }
    }

    #[test]
    fn escalate_keeps_the_workload_model_name() {
        let w = toy_workload();
        let cfg = SimConfig::default();
        let acc = Escalate::new(&w, &cfg);
        assert_eq!(acc.name(), "ESCALATE");
        let stats = acc.simulate(0, 1);
        assert_eq!(stats.model_name, "toy");
        assert_eq!(stats.layers.len(), 3);
    }

    #[test]
    fn provided_fold_matches_per_layer_calls() {
        let w = toy_workload();
        let cfg = SimConfig::default();
        let acc = Escalate::new(&w, &cfg);
        let whole = acc.simulate(5, 1);
        for (i, l) in whole.layers.iter().enumerate() {
            assert_eq!(*l, acc.simulate_layer(i, 5), "layer {i}");
        }
    }

    #[test]
    fn serial_schedule_is_byte_identical_to_the_plain_fold() {
        let w = toy_workload();
        let cfg = SimConfig::default();
        let acc = Escalate::new(&w, &cfg);
        let via_schedule = schedule_for(ScheduleKind::LayerSerial).run(&acc, &cfg, 3, 1);
        let direct = serial_fold(&acc, 3, 1);
        assert_eq!(via_schedule, direct);
        assert_eq!(via_schedule.pipeline, None);
        assert_eq!(acc.simulate(3, 1), direct, "default config is serial");
    }

    #[test]
    fn pipelined_schedule_attaches_consistent_pipeline_stats() {
        let w = toy_workload();
        let cfg = SimConfig {
            schedule: ScheduleKind::Pipelined,
            ..SimConfig::default()
        };
        let acc = Escalate::new(&w, &cfg);
        let stats = acc.simulate(3, 1);
        let p = stats.pipeline.as_ref().expect("pipelined run");
        // Per-layer results are untouched by the schedule.
        let serial_cfg = SimConfig::default();
        let serial = Escalate::new(&w, &serial_cfg).simulate(3, 1);
        assert_eq!(stats.layers, serial.layers);
        // Three layers on 32 PEs: one stage per layer.
        assert_eq!(p.stages, 3);
        assert!(p.interval_cycles <= p.latency_cycles);
        assert!(p.interval_cycles >= p.latency_cycles.div_ceil(p.stages as u64));
        // Slack accounting: Σ(interval − tᵢ) = stages·interval − latency.
        assert_eq!(
            p.stall_cycles,
            p.stages as u64 * p.interval_cycles - p.latency_cycles
        );
        // Work conservation: with Σalloc = N_PE and stage time scaling by
        // N_PE/alloc, the slowest stage can never undercut the serial sum
        // — partitioning trades cycles for pinned weights, not speed.
        assert!(p.interval_cycles >= serial.total_cycles());
        assert!(p.latency_cycles >= serial.total_cycles());
        // Rounding and integer PE grants cost at most a small factor on a
        // balanced three-stage toy.
        assert!(p.interval_cycles < 2 * serial.total_cycles(), "{p:?}");
        assert_eq!(stats.schedule_cycles(), p.latency_cycles);
    }

    #[test]
    fn pipeline_model_accounts_spilled_boundaries() {
        use crate::stats::DramTraffic;
        // Two equal stages on a four-PE array; the boundary OFM exceeds
        // the on-chip handoff capacity, so the producer pays the DRAM
        // round trip.
        let cfg = SimConfig {
            n_pe: 4,
            ..SimConfig::default()
        };
        let capacity = (cfg.total_input_buf_bytes() + cfg.output_buf_bytes) as u64;
        let layer = |name: &str, ofm| LayerStats {
            name: name.into(),
            cycles: 1000,
            dram: DramTraffic {
                weights: 0,
                ifm: 0,
                ofm,
            },
            ..LayerStats::default()
        };
        let fits = ModelStats {
            model_name: "fits".into(),
            layers: vec![layer("a", capacity), layer("b", 0)],
            pipeline: None,
        };
        let p = pipeline_model(&fits, &cfg);
        assert_eq!(p.stages, 2);
        assert_eq!(p.spilled_boundaries, 0);
        assert_eq!(p.peak_buffer_bytes, capacity);
        // Equal work → two PEs each → both stages at 2× their serial time.
        assert_eq!(p.interval_cycles, 2000);
        assert_eq!(p.stall_cycles, 0);

        let spills = ModelStats {
            model_name: "spills".into(),
            layers: vec![layer("a", capacity + 640), layer("b", 0)],
            pipeline: None,
        };
        let p = pipeline_model(&spills, &cfg);
        assert_eq!(p.spilled_boundaries, 1);
        let penalty = (2.0 * (capacity + 640) as f64 / cfg.dram_bytes_per_cycle).ceil() as u64;
        assert_eq!(p.interval_cycles, 2000 + penalty);
        assert_eq!(p.stall_cycles, penalty);
    }

    #[test]
    fn pipeline_stages_cap_at_half_the_pe_array() {
        let layers: Vec<LayerStats> = (0..10)
            .map(|i| LayerStats {
                name: format!("l{i}"),
                cycles: 100 + i,
                ..LayerStats::default()
            })
            .collect();
        let stats = ModelStats {
            model_name: "m".into(),
            layers,
            pipeline: None,
        };
        let cfg = SimConfig {
            n_pe: 4,
            ..SimConfig::default()
        };
        let p = pipeline_model(&stats, &cfg);
        assert_eq!(p.stages, 2, "stages cap at half the PE array");
        let wide = SimConfig::default();
        assert_eq!(pipeline_model(&stats, &wide).stages, 10);
    }

    #[test]
    fn trait_is_object_safe_and_threads_agnostic() {
        let w = toy_workload();
        let cfg = SimConfig::default();
        let acc: &dyn Accelerator = &Escalate::new(&w, &cfg);
        assert_eq!(
            acc.simulate(1, 1),
            acc.simulate(1, 0),
            "thread count changed results"
        );
    }
}
