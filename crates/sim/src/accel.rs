//! The accelerator abstraction the whole harness runs through.
//!
//! An [`Accelerator`] is a model-bound simulator instance: it knows how
//! many layers its workload has and how to produce [`LayerStats`] for any
//! one of them. The provided [`Accelerator::simulate`] is the *single*
//! fold from per-layer stats into [`ModelStats`] — ESCALATE and every
//! baseline in `escalate-baselines` go through it, so the seed-averaging
//! harness in `escalate-bench` treats all designs uniformly through one
//! `&dyn Accelerator` runner.
//!
//! The trait is object-safe and `Sync`: harnesses iterate heterogeneous
//! accelerator lists and fan input seeds out across threads against a
//! shared instance.

use crate::config::SimConfig;
use crate::engine::simulate_layer;
use crate::stats::{LayerStats, ModelStats};
use crate::workload::Workload;
use rayon::prelude::*;

/// A model-bound accelerator simulator.
pub trait Accelerator: Sync {
    /// Accelerator display name (e.g. `"ESCALATE"`, `"Eyeriss"`).
    fn name(&self) -> &str;

    /// The `ModelStats::model_name` tag for this run. Defaults to the
    /// lower-cased accelerator name (the baselines' convention); ESCALATE
    /// overrides it with the workload's model name.
    fn model_name(&self) -> String {
        self.name().to_lowercase()
    }

    /// Number of layers in the bound workload.
    fn num_layers(&self) -> usize;

    /// Simulates one layer. `seed` selects the synthetic input draw;
    /// deterministic accelerator models ignore it.
    fn simulate_layer(&self, index: usize, seed: u64) -> LayerStats;

    /// Simulates the whole model: the one fold from per-layer stats into
    /// [`ModelStats`]. Layers are independent, so with `threads != 1` they
    /// fan out over the global pool and reassemble in execution order —
    /// bit-identical to the sequential walk.
    fn simulate(&self, seed: u64, threads: usize) -> ModelStats {
        let layers = if threads == 1 {
            (0..self.num_layers())
                .map(|i| self.simulate_layer(i, seed))
                .collect()
        } else {
            (0..self.num_layers())
                .into_par_iter()
                .map(|i| self.simulate_layer(i, seed))
                .collect()
        };
        ModelStats {
            model_name: self.model_name(),
            layers,
        }
    }
}

/// ESCALATE itself as an [`Accelerator`]: the sampled engine bound to a
/// compressed-model workload and a [`SimConfig`].
pub struct Escalate<'a> {
    workload: &'a Workload,
    cfg: &'a SimConfig,
}

impl<'a> Escalate<'a> {
    /// Binds the engine to a workload and configuration.
    pub fn new(workload: &'a Workload, cfg: &'a SimConfig) -> Self {
        Escalate { workload, cfg }
    }
}

impl Accelerator for Escalate<'_> {
    fn name(&self) -> &str {
        "ESCALATE"
    }

    fn model_name(&self) -> String {
        self.workload.model_name.clone()
    }

    fn num_layers(&self) -> usize {
        self.workload.layers.len()
    }

    fn simulate_layer(&self, index: usize, seed: u64) -> LayerStats {
        simulate_layer(&self.workload.layers[index], self.cfg, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{CoefMasks, LayerWorkload, WorkloadMode};
    use escalate_core::quant::TernaryCoeffs;
    use escalate_models::LayerShape;
    use escalate_tensor::Tensor;

    fn toy_workload() -> Workload {
        let layers = (0..3)
            .map(|i| {
                let (c, k) = (32 + 16 * i, 32);
                let coeffs =
                    Tensor::from_fn(&[k, c, 6], |ix| match (ix[0] + ix[1] * 2 + ix[2]) % 4 {
                        0 => 1.0,
                        1 => -1.0,
                        _ => 0.0,
                    });
                let t = TernaryCoeffs::ternarize(&coeffs, 0.0).unwrap();
                LayerWorkload {
                    name: format!("l{i}"),
                    shape: LayerShape::conv("t", c, k, 8, 8, 3, 1, 1),
                    out_channels: k,
                    mode: WorkloadMode::Decomposed(CoefMasks::from_ternary(&t)),
                    act_sparsity: 0.5,
                    out_sparsity: 0.5,
                    weight_bytes: 100,
                }
            })
            .collect();
        Workload {
            model_name: "toy".into(),
            layers,
        }
    }

    #[test]
    fn escalate_keeps_the_workload_model_name() {
        let w = toy_workload();
        let cfg = SimConfig::default();
        let acc = Escalate::new(&w, &cfg);
        assert_eq!(acc.name(), "ESCALATE");
        let stats = acc.simulate(0, 1);
        assert_eq!(stats.model_name, "toy");
        assert_eq!(stats.layers.len(), 3);
    }

    #[test]
    fn provided_fold_matches_per_layer_calls() {
        let w = toy_workload();
        let cfg = SimConfig::default();
        let acc = Escalate::new(&w, &cfg);
        let whole = acc.simulate(5, 1);
        for (i, l) in whole.layers.iter().enumerate() {
            assert_eq!(*l, acc.simulate_layer(i, 5), "layer {i}");
        }
    }

    #[test]
    fn trait_is_object_safe_and_threads_agnostic() {
        let w = toy_workload();
        let cfg = SimConfig::default();
        let acc: &dyn Accelerator = &Escalate::new(&w, &cfg);
        assert_eq!(
            acc.simulate(1, 1),
            acc.simulate(1, 0),
            "thread count changed results"
        );
    }
}
