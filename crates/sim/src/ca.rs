//! Channel-accumulator cycle model: one input position through
//! Dilution-Concentration (paper §4.2, Figure 2(b)).
//!
//! For one output channel and one input position, the nonzero activations
//! of all `C` input channels stream over the 16-byte bus in chunks. Each
//! of the `M` CAs matches the stream against its own coefficient mask
//! with the bit-exact dilution model, folds survivors into its
//! concentration buffer, and reduces them through the adder tree. The CA
//! time for the position is the maximum of the bus streaming time and the
//! slowest CA's concentration drain.
//!
//! Two implementations produce the identical [`PositionCost`]:
//!
//! - [`position_cost_scalar`] walks activation bits one at a time and runs
//!   the full [`dilute_into`] + [`ConcentrationBuffer`] machinery for
//!   every (basis, word) pair — the reference model, kept for
//!   differential testing;
//! - [`PositionKernel`] is the word-parallel production path: per-channel
//!   invariants (coefficient-union mask, per-basis masks) are bound once,
//!   chunk-skipping and match counts come from popcount arithmetic over
//!   whole words, empty-intersection words skip dilution entirely, and a
//!   per-channel memo table short-circuits repeated activation masks.
//!   `tests/kernel_diff.rs` pins the two byte-for-byte equal.

use crate::config::SimConfig;
use escalate_sparse::{dilute_into, gather_bits, ConcentrationBuffer, DilutionInput};

/// Unit activation values: the timing model only cares which positions are
/// nonzero, so every nonzero activation streams as `1.0`.
static UNIT_ACTS: [f32; 64] = [1.0; 64];
/// All-positive coefficient signs (sign bits are irrelevant to timing).
static NO_SIGNS: [bool; 64] = [false; 64];

/// Reusable scratch state for [`position_cost_scalar`]: the concentration
/// buffer and the diluted-slot buffer, so the per-position hot loop
/// allocates nothing after warm-up.
///
/// A scratch is tied to the [`SimConfig`] it was built from (adder-tree
/// width and look-ahead/look-aside windows); build a new one when the
/// config changes.
#[derive(Debug, Clone)]
pub struct CaScratch {
    buf: ConcentrationBuffer,
    slots: Vec<Option<f32>>,
}

impl CaScratch {
    /// Creates scratch state for simulations under `cfg`.
    pub fn new(cfg: &SimConfig) -> Self {
        let bus = cfg.bus_elems().max(1);
        CaScratch {
            buf: ConcentrationBuffer::new(bus, cfg.look_ahead, cfg.look_aside),
            slots: Vec::with_capacity(64),
        }
    }
}

/// Per-position CA simulation result.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PositionCost {
    /// Cycles the CA stage needs for this position.
    pub ca_cycles: u64,
    /// Matched (activation, coefficient) pairs accumulated.
    pub matched: u64,
    /// Dilution gather passes executed.
    pub gather_passes: u64,
    /// Bus cycles spent streaming the activation chunks.
    pub stream_cycles: u64,
}

/// Simulates one input position for one output channel.
///
/// `act_mask` has one bit per input channel (set = nonzero activation);
/// `coef_masks[m]` are the per-basis coefficient masks over the same
/// channels; `c` is the channel count.
///
/// # Panics
///
/// Panics if the mask word counts disagree with `c`.
pub fn position_cost(
    cfg: &SimConfig,
    c: usize,
    act_mask: &[u64],
    coef_masks: &[&[u64]],
) -> PositionCost {
    position_cost_scalar(cfg, c, act_mask, coef_masks, &mut CaScratch::new(cfg))
}

/// The scalar reference implementation of [`position_cost`] with
/// caller-owned scratch buffers: activation bits are walked one at a time
/// and every (basis, word) pair runs the full dilution + concentration
/// machinery. [`PositionKernel`] is the word-parallel production path;
/// this function is retained as the ground truth it is differentially
/// tested against (`tests/kernel_diff.rs`). Results are identical to
/// [`position_cost`].
///
/// # Panics
///
/// Panics if the mask word counts disagree with `c`, or (in debug builds)
/// if `scratch` was built from a config with a different bus width.
pub fn position_cost_scalar(
    cfg: &SimConfig,
    c: usize,
    act_mask: &[u64],
    coef_masks: &[&[u64]],
    scratch: &mut CaScratch,
) -> PositionCost {
    debug_assert_eq!(
        scratch.buf.width(),
        cfg.bus_elems().max(1),
        "scratch built from a different config"
    );
    let words = c.div_ceil(64);
    assert_eq!(act_mask.len(), words, "activation mask word count");
    for cm in coef_masks {
        assert_eq!(cm.len(), words, "coefficient mask word count");
    }

    // Chunk-skipping: the compressed activations are stored in bus-width
    // chunks, and the sparse maps stream ahead of the values (§4.2.2), so
    // a slice only requests the chunks whose positions intersect at least
    // one of its coefficient masks. At high coefficient sparsity most
    // chunks are skipped — this is where Dilution-Concentration converts
    // sparsity into time.
    let bus = cfg.bus_elems().max(1);
    let mut fetched_chunks = 0u64;
    {
        let mut in_chunk = 0usize;
        let mut chunk_needed = false;
        for wi in 0..words {
            let mut aw = act_mask[wi];
            while aw != 0 {
                let bit = aw.trailing_zeros() as usize;
                aw &= aw - 1;
                if !chunk_needed {
                    for cm in coef_masks {
                        if cm[wi] >> bit & 1 == 1 {
                            chunk_needed = true;
                            break;
                        }
                    }
                }
                in_chunk += 1;
                if in_chunk == bus {
                    if chunk_needed {
                        fetched_chunks += 1;
                    }
                    in_chunk = 0;
                    chunk_needed = false;
                }
            }
        }
        if in_chunk > 0 && chunk_needed {
            fetched_chunks += 1;
        }
    }
    // A position always costs at least one bus cycle, even when every
    // chunk was skipped: the sparse maps themselves stream ahead of the
    // values, so the CA spends a cycle discovering there is nothing to
    // fetch. This ≥ 1 floor is intentional and pinned by
    // `all_chunks_skipped_costs_the_one_cycle_floor`; the word-parallel
    // kernel preserves it exactly.
    let stream_cycles = fetched_chunks.max(1);

    let mut matched = 0u64;
    let mut gather_passes = 0u64;
    let mut worst_conc = 0u64;

    // One value per nonzero activation; the magnitudes are irrelevant to
    // timing, so use unit values.
    for cm in coef_masks {
        scratch.buf.reset();
        for (wi, (&aw, &cw)) in act_mask.iter().zip(cm.iter()).enumerate() {
            let width = (c - wi * 64).min(64);
            if aw == 0 {
                continue;
            }
            let out = dilute_into(
                &DilutionInput {
                    act_values: &UNIT_ACTS[..aw.count_ones() as usize],
                    act_map: aw,
                    coef_signs: &NO_SIGNS[..cw.count_ones() as usize],
                    coef_map: cw,
                    width,
                },
                &mut scratch.slots,
            );
            gather_passes += 1;
            matched += out.matched as u64;
            scratch.buf.push_slots(&scratch.slots);
        }
        let (_, stats) = scratch.buf.drain_sum();
        worst_conc = worst_conc.max(stats.rows_drained as u64);
    }

    PositionCost {
        ca_cycles: stream_cycles.max(worst_conc).max(1),
        matched,
        gather_passes,
        stream_cycles,
    }
}

/// Linear-probe length before the memo gives up on a (over-)full table and
/// simply recomputes without caching. Bounds the worst-case probe cost.
const MEMO_PROBE_LIMIT: usize = 16;

/// Flat open-addressed memo of `act_mask → PositionCost` for one bound
/// (layer, channel): within that scope the coefficient masks are fixed, so
/// the cost is a pure function of the activation mask words. Keys are
/// compared word-for-word (never hash-only), so a hit is exact by
/// construction — the memo can change speed, never results.
#[derive(Debug, Clone)]
struct Memo {
    /// Slot count (a power of two), or 0 when memoization is disabled.
    cap: usize,
    /// Key width in words (rebound per channel).
    words: usize,
    occupied: Vec<bool>,
    /// `cap × words` key storage, flat — no per-probe allocation.
    keys: Vec<u64>,
    vals: Vec<PositionCost>,
}

/// Result of probing the memo for a key.
enum Probe {
    /// Key present at this slot.
    Hit(usize),
    /// Key absent; this free slot can take it.
    Free(usize),
    /// Probe window exhausted without a hit or a free slot.
    Full,
}

impl Memo {
    fn new(capacity: usize) -> Memo {
        let cap = if capacity == 0 {
            0
        } else {
            capacity.next_power_of_two()
        };
        Memo {
            cap,
            words: 0,
            occupied: vec![false; cap],
            keys: Vec::new(),
            vals: vec![PositionCost::default(); cap],
        }
    }

    /// Drops every entry and sizes keys for `words`-word masks. Called on
    /// every channel rebind: the memo is only valid while the coefficient
    /// masks are fixed.
    fn clear(&mut self, words: usize) {
        if self.cap == 0 {
            return;
        }
        if self.words != words {
            self.words = words;
            self.keys = vec![0u64; self.cap * words];
        }
        self.occupied.fill(false);
    }

    /// FNV-1a folded over the mask words. For single-word keys (`c ≤ 64`)
    /// this is one xor-multiply — the fast path the common layer sizes hit.
    fn hash(&self, key: &[u64]) -> u64 {
        const OFFSET: u64 = 0xcbf29ce484222325;
        const PRIME: u64 = 0x100000001b3;
        if let [w] = key {
            return (OFFSET ^ w).wrapping_mul(PRIME);
        }
        key.iter().fold(OFFSET, |h, &w| (h ^ w).wrapping_mul(PRIME))
    }

    fn probe(&self, key: &[u64]) -> Probe {
        let mask = self.cap - 1;
        let mut i = (self.hash(key) as usize) & mask;
        for _ in 0..MEMO_PROBE_LIMIT.min(self.cap) {
            if !self.occupied[i] {
                return Probe::Free(i);
            }
            let stored = &self.keys[i * self.words..(i + 1) * self.words];
            if stored == key {
                return Probe::Hit(i);
            }
            i = (i + 1) & mask;
        }
        Probe::Full
    }

    fn insert(&mut self, slot: usize, key: &[u64], val: PositionCost) {
        self.occupied[slot] = true;
        self.keys[slot * self.words..(slot + 1) * self.words].copy_from_slice(key);
        self.vals[slot] = val;
    }
}

/// The word-parallel position-cost kernel: the production implementation
/// of the Dilution-Concentration cycle model, result-identical to
/// [`position_cost_scalar`].
///
/// A kernel is built once per config ([`PositionKernel::new`]) and rebound
/// per (layer, output channel) ([`PositionKernel::bind`]); binding hoists
/// everything the per-position loop would otherwise re-derive:
///
/// 1. **Loop-invariant hoisting** — the coefficient-union mask (`OR` over
///    the `M` bases, per word) and a private flat copy of the per-basis
///    masks are computed once per channel;
/// 2. **Word-parallel fast paths** — chunk-skipping is popcount arithmetic
///    over `act & union` per word (never per bit), `matched` is
///    `popcount(act & coef)` directly, dilution is skipped for words with
///    empty intersection (their holes are accounted through
///    [`ConcentrationBuffer::push_holes`]) and whole bases with an empty
///    position-wide intersection skip the concentration drain entirely
///    (all-hole streams drain zero rows);
/// 3. **Per-channel memoization** — the cost is a pure function of the
///    activation mask while the channel is bound, so a flat
///    open-addressed memo (single-`u64` key for `c ≤ 64`, FNV-of-words
///    otherwise; exact word-for-word key compare) short-circuits repeated
///    masks. The memo is dropped on every [`PositionKernel::bind`].
///
/// [`PositionKernel::memo_hits`]/[`PositionKernel::memo_misses`] count
/// across binds (callers snapshot deltas per layer).
#[derive(Debug, Clone)]
pub struct PositionKernel {
    bus: usize,
    look_ahead: usize,
    look_aside: usize,
    memo_capacity: usize,
    c: usize,
    words: usize,
    m: usize,
    /// Flat `m × words` copy of the bound channel's coefficient masks.
    coef: Vec<u64>,
    /// Per-word OR over the `m` coefficient masks.
    union_mask: Vec<u64>,
    buf: ConcentrationBuffer,
    memo: Memo,
    memo_hits: u64,
    memo_misses: u64,
}

impl PositionKernel {
    /// Creates an unbound kernel for simulations under `cfg`. Call
    /// [`PositionKernel::bind`] before [`PositionKernel::cost`].
    pub fn new(cfg: &SimConfig) -> PositionKernel {
        let bus = cfg.bus_elems().max(1);
        PositionKernel {
            bus,
            look_ahead: cfg.look_ahead,
            look_aside: cfg.look_aside,
            memo_capacity: cfg.memo_capacity,
            c: 0,
            words: 0,
            m: 0,
            coef: Vec::new(),
            union_mask: Vec::new(),
            buf: ConcentrationBuffer::new(bus, cfg.look_ahead, cfg.look_aside),
            memo: Memo::new(cfg.memo_capacity),
            memo_hits: 0,
            memo_misses: 0,
        }
    }

    /// Whether this kernel was built from an equivalent config (same bus
    /// width, concentration windows, and memo capacity) and can be reused
    /// for simulations under `cfg` without reconstruction.
    pub fn matches(&self, cfg: &SimConfig) -> bool {
        self.bus == cfg.bus_elems().max(1)
            && self.look_ahead == cfg.look_ahead
            && self.look_aside == cfg.look_aside
            && self.memo_capacity == cfg.memo_capacity
    }

    /// Binds the kernel to one (layer, channel): copies the `M` coefficient
    /// masks, computes their per-word union, and drops the memo (its
    /// entries were only valid for the previous channel's masks).
    ///
    /// # Panics
    ///
    /// Panics if a mask's word count disagrees with `c`.
    pub fn bind<'m>(&mut self, c: usize, coef_masks: impl IntoIterator<Item = &'m [u64]>) {
        let words = c.div_ceil(64);
        self.c = c;
        self.words = words;
        self.coef.clear();
        self.union_mask.clear();
        self.union_mask.resize(words, 0);
        let mut m = 0usize;
        for cm in coef_masks {
            assert_eq!(cm.len(), words, "coefficient mask word count");
            for (u, &w) in self.union_mask.iter_mut().zip(cm) {
                *u |= w;
            }
            self.coef.extend_from_slice(cm);
            m += 1;
        }
        self.m = m;
        self.memo.clear(words);
    }

    /// Memo hits accumulated since construction.
    pub fn memo_hits(&self) -> u64 {
        self.memo_hits
    }

    /// Memo misses accumulated since construction (memoization disabled
    /// counts every position as a miss).
    pub fn memo_misses(&self) -> u64 {
        self.memo_misses
    }

    /// The cost of one position under the bound channel's masks, consulting
    /// the memo first. Results are identical to
    /// [`PositionKernel::cost_uncached`] — and to the scalar reference —
    /// because memo hits require an exact key match.
    ///
    /// # Panics
    ///
    /// Panics if `act_mask` disagrees with the bound channel width or has
    /// bits at or above `c`.
    pub fn cost(&mut self, act_mask: &[u64]) -> PositionCost {
        if self.memo.cap == 0 {
            self.memo_misses += 1;
            return self.cost_uncached(act_mask);
        }
        assert_eq!(act_mask.len(), self.words, "activation mask word count");
        match self.memo.probe(act_mask) {
            Probe::Hit(i) => {
                self.memo_hits += 1;
                self.memo.vals[i]
            }
            Probe::Free(i) => {
                self.memo_misses += 1;
                let cost = self.cost_uncached(act_mask);
                self.memo.insert(i, act_mask, cost);
                cost
            }
            Probe::Full => {
                self.memo_misses += 1;
                self.cost_uncached(act_mask)
            }
        }
    }

    /// The word-parallel cost computation, bypassing the memo.
    ///
    /// # Panics
    ///
    /// See [`PositionKernel::cost`].
    pub fn cost_uncached(&mut self, act_mask: &[u64]) -> PositionCost {
        let words = self.words;
        assert_eq!(act_mask.len(), words, "activation mask word count");
        if words > 0 {
            let tail = self.c - (words - 1) * 64;
            if tail < 64 {
                assert_eq!(
                    act_mask[words - 1] >> tail,
                    0,
                    "activation map has bits beyond width"
                );
            }
        }
        let bus = self.bus;

        // Chunk-skipping by rank arithmetic: activation bit number `r`
        // (counting set bits across all words) lands in chunk `r / bus`,
        // and a chunk is fetched iff it holds at least one bit of
        // `act ∩ union`. Needed bits are visited in rank order, so chunk
        // indices are non-decreasing and deduplication is one compare.
        let mut fetched_chunks = 0u64;
        let mut last_chunk = u64::MAX; // sentinel: no chunk fetched yet
        let mut base = 0usize; // rank of this word's first activation bit
        let mut nz_words = 0u64;
        for (wi, &aw) in act_mask.iter().enumerate() {
            if aw == 0 {
                continue;
            }
            nz_words += 1;
            let cnt = aw.count_ones() as usize;
            let needed = aw & self.union_mask[wi];
            if needed == aw {
                // Every activation bit of this word is needed: the chunk
                // range [base/bus, (base+cnt-1)/bus] is fetched wholesale.
                let clo = (base / bus) as u64;
                let chi = ((base + cnt - 1) / bus) as u64;
                let lo = if last_chunk == u64::MAX {
                    clo
                } else {
                    clo.max(last_chunk + 1)
                };
                if chi >= lo {
                    fetched_chunks += chi - lo + 1;
                    last_chunk = chi;
                }
            } else if needed != 0 {
                let mut bits = needed;
                while bits != 0 {
                    let b = bits.trailing_zeros();
                    bits &= bits - 1;
                    let rank = (aw & ((1u64 << b) - 1)).count_ones() as usize;
                    let chunk = ((base + rank) / bus) as u64;
                    if chunk != last_chunk {
                        fetched_chunks += 1;
                        last_chunk = chunk;
                    }
                }
            }
            base += cnt;
        }
        // Same ≥ 1 floor as the scalar path: a position always costs at
        // least one bus cycle (see position_cost_scalar).
        let stream_cycles = fetched_chunks.max(1);

        let mut matched = 0u64;
        let mut worst_conc = 0u64;
        for mi in 0..self.m {
            let cw = &self.coef[mi * words..(mi + 1) * words];
            // `matched` per basis is pure popcount arithmetic; a basis
            // whose intersection with the whole position is empty streams
            // only holes, and an all-hole stream drains zero rows — skip
            // its concentration entirely.
            let mut basis_matched = 0u64;
            for (&aw, &w) in act_mask.iter().zip(cw) {
                basis_matched += (aw & w).count_ones() as u64;
            }
            matched += basis_matched;
            if basis_matched == 0 {
                continue;
            }
            self.buf.reset();
            for (&aw, &w) in act_mask.iter().zip(cw) {
                if aw == 0 {
                    continue;
                }
                let inter = aw & w;
                let cnt = aw.count_ones() as usize;
                if inter == 0 {
                    // Dilution word-skip: an empty intersection dilutes to
                    // all holes — account for them without the gathers.
                    self.buf.push_holes(cnt);
                } else {
                    // The filter mask over compressed activations is the
                    // intersection gathered at the activation positions —
                    // exactly dilution's filter, without the slot stream.
                    let filter = gather_bits(inter, aw);
                    self.buf.push_unit_mask(filter, cnt);
                }
            }
            let (_, stats) = self.buf.drain_sum();
            worst_conc = worst_conc.max(stats.rows_drained as u64);
        }

        PositionCost {
            ca_cycles: stream_cycles.max(worst_conc).max(1),
            matched,
            // One dilution gather pass per (basis, nonzero word), exactly
            // as the scalar path counts them — including skipped words and
            // skipped bases, whose gathers the hardware still schedules.
            gather_passes: nz_words * self.m as u64,
            stream_cycles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SimConfig {
        SimConfig::default()
    }

    /// Runs the same inputs through the scalar path, the kernel, and the
    /// memoized kernel (twice, to exercise the hit path) and requires all
    /// answers equal. Returns the agreed cost.
    fn cost_all_paths(
        cfg: &SimConfig,
        c: usize,
        act: &[u64],
        coef_masks: &[&[u64]],
    ) -> PositionCost {
        let scalar = position_cost(cfg, c, act, coef_masks);
        let mut kernel = PositionKernel::new(cfg);
        kernel.bind(c, coef_masks.iter().copied());
        assert_eq!(kernel.cost_uncached(act), scalar, "word-parallel kernel");
        assert_eq!(kernel.cost(act), scalar, "memo miss path");
        assert_eq!(kernel.cost(act), scalar, "memo hit path");
        assert_eq!(kernel.memo_hits(), 1);
        scalar
    }

    #[test]
    fn dense_position_is_bus_bound() {
        // All 64 channels nonzero, all coefficients nonzero: 64 activations
        // over a 16-wide bus = 4 cycles, and the adder tree matches.
        let act = [u64::MAX];
        let coef = [u64::MAX];
        let cost = cost_all_paths(&cfg(), 64, &act, &[&coef, &coef]);
        assert_eq!(cost.stream_cycles, 4);
        assert_eq!(cost.ca_cycles, 4);
        assert_eq!(cost.matched, 128); // 64 per CA × 2 CAs
    }

    #[test]
    fn empty_activations_cost_one_cycle() {
        let act = [0u64];
        let coef = [u64::MAX];
        let cost = cost_all_paths(&cfg(), 64, &act, &[&coef]);
        assert_eq!(cost.ca_cycles, 1);
        assert_eq!(cost.matched, 0);
        assert_eq!(cost.gather_passes, 0);
    }

    #[test]
    fn all_chunks_skipped_costs_the_one_cycle_floor() {
        // Nonzero activations whose intersection with *every* basis is
        // empty: every chunk is skipped, yet the position still costs one
        // bus cycle — the ≥ 1 floor is intentional (the sparse maps stream
        // ahead of the values, so discovering "nothing to fetch" takes a
        // cycle). Behavior-pinning regression for the fast path.
        let act = [0x0000_0000_FFFF_FFFFu64];
        let hi = [0xFFFF_FFFF_0000_0000u64];
        let zero = [0u64];
        let cost = cost_all_paths(&cfg(), 64, &act, &[&hi, &zero, &hi]);
        assert_eq!(cost.stream_cycles, 1);
        assert_eq!(cost.ca_cycles, 1);
        assert_eq!(cost.matched, 0);
        assert_eq!(cost.gather_passes, 3); // one per (basis, nonzero word)
    }

    #[test]
    fn sparse_coefficients_reduce_matches_not_stream() {
        let act = [u64::MAX];
        let sparse_coef = [0x0101_0101_0101_0101u64]; // 8 of 64
        let dense_coef = [u64::MAX];
        let s = cost_all_paths(&cfg(), 64, &act, &[&sparse_coef]);
        let d = cost_all_paths(&cfg(), 64, &act, &[&dense_coef]);
        assert_eq!(s.stream_cycles, d.stream_cycles);
        assert!(s.matched < d.matched);
        assert!(s.ca_cycles <= d.ca_cycles);
    }

    #[test]
    fn multiword_channels_accumulate() {
        // 128 channels, half nonzero activations.
        let act = [0xAAAA_AAAA_AAAA_AAAAu64; 2];
        let coef = [u64::MAX; 2];
        let cost = cost_all_paths(&cfg(), 128, &act, &[&coef]);
        assert_eq!(cost.matched, 64);
        assert_eq!(cost.stream_cycles, 4); // 64 nonzeros / 16 per cycle
    }

    #[test]
    fn ca_time_covers_slowest_accumulator() {
        let act = [u64::MAX];
        let dense = [u64::MAX];
        let empty = [0u64];
        let mixed = cost_all_paths(&cfg(), 64, &act, &[&dense, &empty]);
        let only_dense = cost_all_paths(&cfg(), 64, &act, &[&dense]);
        assert_eq!(mixed.ca_cycles, only_dense.ca_cycles);
    }

    #[test]
    fn reused_scratch_matches_fresh_calls() {
        let cfg = cfg();
        let mut scratch = CaScratch::new(&cfg);
        let patterns: [([u64; 2], [u64; 2]); 4] = [
            ([u64::MAX; 2], [u64::MAX; 2]),
            ([0xAAAA_AAAA_AAAA_AAAA; 2], [0x0101_0101_0101_0101; 2]),
            ([0x00FF_00FF_00FF_00FF, 0], [u64::MAX, 0x0F0F]),
            ([0, 0], [u64::MAX; 2]),
        ];
        for (act, coef) in &patterns {
            let fresh = position_cost(&cfg, 128, act, &[&coef[..], &coef[..]]);
            let reused =
                position_cost_scalar(&cfg, 128, act, &[&coef[..], &coef[..]], &mut scratch);
            assert_eq!(fresh, reused);
        }
    }

    #[test]
    fn rebinding_drops_the_memo_and_changes_answers() {
        let cfg = cfg();
        let mut kernel = PositionKernel::new(&cfg);
        let act = [0x0F0F_0F0F_0F0F_0F0Fu64];
        let dense = [u64::MAX];
        kernel.bind(64, [&dense[..]]);
        let with_dense = kernel.cost(&act);
        assert_eq!(with_dense.matched, 32);
        // Rebinding to a disjoint basis must invalidate the cached entry.
        let disjoint = [0xF0F0_F0F0_F0F0_F0F0u64];
        kernel.bind(64, [&disjoint[..]]);
        let with_disjoint = kernel.cost(&act);
        assert_eq!(with_disjoint.matched, 0);
        assert_eq!(kernel.memo_hits(), 0, "stale hit across bind");
        assert_eq!(kernel.memo_misses(), 2);
    }

    #[test]
    fn memo_disabled_still_matches() {
        let cfg = SimConfig {
            memo_capacity: 0,
            ..cfg()
        };
        let act = [0xDEAD_BEEF_0BAD_F00Du64, 0x1234];
        let coef = [0xFF00_FF00_FF00_FF00u64, 0x0FF0];
        let scalar = position_cost(&cfg, 78, &[act[0], act[1] & 0x3FFF], &[&coef[..]]);
        let mut kernel = PositionKernel::new(&cfg);
        kernel.bind(78, [&coef[..]]);
        let a = [act[0], act[1] & 0x3FFF];
        assert_eq!(kernel.cost(&a), scalar);
        assert_eq!(kernel.cost(&a), scalar);
        assert_eq!(kernel.memo_hits(), 0);
        assert_eq!(kernel.memo_misses(), 2);
    }

    #[test]
    fn memo_overflow_degrades_to_recompute() {
        // Capacity 1 (rounded to 1 slot): the second distinct mask cannot
        // be cached, but answers must stay correct.
        let cfg = SimConfig {
            memo_capacity: 1,
            ..cfg()
        };
        let coef = [u64::MAX];
        let mut kernel = PositionKernel::new(&cfg);
        kernel.bind(64, [&coef[..]]);
        let masks = [[0x1u64], [0x3u64], [0x7u64], [0x1u64], [0x3u64]];
        for m in &masks {
            assert_eq!(kernel.cost(m), position_cost(&cfg, 64, m, &[&coef]));
        }
        assert!(kernel.memo_hits() >= 1, "repeat of the cached mask hits");
    }

    #[test]
    #[should_panic(expected = "mask word count")]
    fn word_count_mismatch_panics() {
        let act = [0u64; 2];
        let coef = [0u64];
        let _ = position_cost(&cfg(), 64, &act, &[&coef]);
    }

    #[test]
    #[should_panic(expected = "beyond width")]
    fn kernel_rejects_bits_beyond_c() {
        let mut kernel = PositionKernel::new(&cfg());
        let coef = [u64::MAX];
        kernel.bind(40, [&coef[..]]);
        let _ = kernel.cost_uncached(&[1u64 << 45]);
    }
}
