//! Channel-accumulator cycle model: one input position through
//! Dilution-Concentration (paper §4.2, Figure 2(b)).
//!
//! For one output channel and one input position, the nonzero activations
//! of all `C` input channels stream over the 16-byte bus in chunks. Each
//! of the `M` CAs matches the stream against its own coefficient mask
//! with the bit-exact dilution model, folds survivors into its
//! concentration buffer, and reduces them through the adder tree. The CA
//! time for the position is the maximum of the bus streaming time and the
//! slowest CA's concentration drain.

use crate::config::SimConfig;
use escalate_sparse::{dilute_into, ConcentrationBuffer, DilutionInput};

/// Unit activation values: the timing model only cares which positions are
/// nonzero, so every nonzero activation streams as `1.0`.
static UNIT_ACTS: [f32; 64] = [1.0; 64];
/// All-positive coefficient signs (sign bits are irrelevant to timing).
static NO_SIGNS: [bool; 64] = [false; 64];

/// Reusable scratch state for [`position_cost_with`]: the concentration
/// buffer and the diluted-slot buffer, so the per-position hot loop
/// allocates nothing after warm-up.
///
/// A scratch is tied to the [`SimConfig`] it was built from (adder-tree
/// width and look-ahead/look-aside windows); build a new one when the
/// config changes.
#[derive(Debug, Clone)]
pub struct CaScratch {
    buf: ConcentrationBuffer,
    slots: Vec<Option<f32>>,
}

impl CaScratch {
    /// Creates scratch state for simulations under `cfg`.
    pub fn new(cfg: &SimConfig) -> Self {
        let bus = cfg.bus_elems().max(1);
        CaScratch {
            buf: ConcentrationBuffer::new(bus, cfg.look_ahead, cfg.look_aside),
            slots: Vec::with_capacity(64),
        }
    }
}

/// Per-position CA simulation result.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PositionCost {
    /// Cycles the CA stage needs for this position.
    pub ca_cycles: u64,
    /// Matched (activation, coefficient) pairs accumulated.
    pub matched: u64,
    /// Dilution gather passes executed.
    pub gather_passes: u64,
    /// Bus cycles spent streaming the activation chunks.
    pub stream_cycles: u64,
}

/// Simulates one input position for one output channel.
///
/// `act_mask` has one bit per input channel (set = nonzero activation);
/// `coef_masks[m]` are the per-basis coefficient masks over the same
/// channels; `c` is the channel count.
///
/// # Panics
///
/// Panics if the mask word counts disagree with `c`.
pub fn position_cost(
    cfg: &SimConfig,
    c: usize,
    act_mask: &[u64],
    coef_masks: &[&[u64]],
) -> PositionCost {
    position_cost_with(cfg, c, act_mask, coef_masks, &mut CaScratch::new(cfg))
}

/// [`position_cost`] with caller-owned scratch buffers, for hot loops that
/// evaluate many positions: reusing a [`CaScratch`] across calls makes the
/// per-position work allocation-free. Results are identical to
/// [`position_cost`].
///
/// # Panics
///
/// Panics if the mask word counts disagree with `c`, or (in debug builds)
/// if `scratch` was built from a config with a different bus width.
pub fn position_cost_with(
    cfg: &SimConfig,
    c: usize,
    act_mask: &[u64],
    coef_masks: &[&[u64]],
    scratch: &mut CaScratch,
) -> PositionCost {
    debug_assert_eq!(
        scratch.buf.width(),
        cfg.bus_elems().max(1),
        "scratch built from a different config"
    );
    let words = c.div_ceil(64);
    assert_eq!(act_mask.len(), words, "activation mask word count");
    for cm in coef_masks {
        assert_eq!(cm.len(), words, "coefficient mask word count");
    }

    // Chunk-skipping: the compressed activations are stored in bus-width
    // chunks, and the sparse maps stream ahead of the values (§4.2.2), so
    // a slice only requests the chunks whose positions intersect at least
    // one of its coefficient masks. At high coefficient sparsity most
    // chunks are skipped — this is where Dilution-Concentration converts
    // sparsity into time.
    let bus = cfg.bus_elems().max(1);
    let mut fetched_chunks = 0u64;
    {
        let mut in_chunk = 0usize;
        let mut chunk_needed = false;
        for wi in 0..words {
            let mut aw = act_mask[wi];
            while aw != 0 {
                let bit = aw.trailing_zeros() as usize;
                aw &= aw - 1;
                if !chunk_needed {
                    for cm in coef_masks {
                        if cm[wi] >> bit & 1 == 1 {
                            chunk_needed = true;
                            break;
                        }
                    }
                }
                in_chunk += 1;
                if in_chunk == bus {
                    if chunk_needed {
                        fetched_chunks += 1;
                    }
                    in_chunk = 0;
                    chunk_needed = false;
                }
            }
        }
        if in_chunk > 0 && chunk_needed {
            fetched_chunks += 1;
        }
    }
    let stream_cycles = fetched_chunks.max(1);

    let mut matched = 0u64;
    let mut gather_passes = 0u64;
    let mut worst_conc = 0u64;

    // One value per nonzero activation; the magnitudes are irrelevant to
    // timing, so use unit values.
    for cm in coef_masks {
        scratch.buf.reset();
        for (wi, (&aw, &cw)) in act_mask.iter().zip(cm.iter()).enumerate() {
            let width = (c - wi * 64).min(64);
            if aw == 0 {
                continue;
            }
            let out = dilute_into(
                &DilutionInput {
                    act_values: &UNIT_ACTS[..aw.count_ones() as usize],
                    act_map: aw,
                    coef_signs: &NO_SIGNS[..cw.count_ones() as usize],
                    coef_map: cw,
                    width,
                },
                &mut scratch.slots,
            );
            gather_passes += 1;
            matched += out.matched as u64;
            scratch.buf.push_slots(&scratch.slots);
        }
        let (_, stats) = scratch.buf.drain_sum();
        worst_conc = worst_conc.max(stats.rows_drained as u64);
    }

    PositionCost {
        ca_cycles: stream_cycles.max(worst_conc).max(1),
        matched,
        gather_passes,
        stream_cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SimConfig {
        SimConfig::default()
    }

    #[test]
    fn dense_position_is_bus_bound() {
        // All 64 channels nonzero, all coefficients nonzero: 64 activations
        // over a 16-wide bus = 4 cycles, and the adder tree matches.
        let act = [u64::MAX];
        let coef = [u64::MAX];
        let cost = position_cost(&cfg(), 64, &act, &[&coef, &coef]);
        assert_eq!(cost.stream_cycles, 4);
        assert_eq!(cost.ca_cycles, 4);
        assert_eq!(cost.matched, 128); // 64 per CA × 2 CAs
    }

    #[test]
    fn empty_activations_cost_one_cycle() {
        let act = [0u64];
        let coef = [u64::MAX];
        let cost = position_cost(&cfg(), 64, &act, &[&coef]);
        assert_eq!(cost.ca_cycles, 1);
        assert_eq!(cost.matched, 0);
        assert_eq!(cost.gather_passes, 0);
    }

    #[test]
    fn sparse_coefficients_reduce_matches_not_stream() {
        let act = [u64::MAX];
        let sparse_coef = [0x0101_0101_0101_0101u64]; // 8 of 64
        let dense_coef = [u64::MAX];
        let s = position_cost(&cfg(), 64, &act, &[&sparse_coef]);
        let d = position_cost(&cfg(), 64, &act, &[&dense_coef]);
        assert_eq!(s.stream_cycles, d.stream_cycles);
        assert!(s.matched < d.matched);
        assert!(s.ca_cycles <= d.ca_cycles);
    }

    #[test]
    fn multiword_channels_accumulate() {
        // 128 channels, half nonzero activations.
        let act = [0xAAAA_AAAA_AAAA_AAAAu64; 2];
        let coef = [u64::MAX; 2];
        let cost = position_cost(&cfg(), 128, &act, &[&coef]);
        assert_eq!(cost.matched, 64);
        assert_eq!(cost.stream_cycles, 4); // 64 nonzeros / 16 per cycle
    }

    #[test]
    fn ca_time_covers_slowest_accumulator() {
        let act = [u64::MAX];
        let dense = [u64::MAX];
        let empty = [0u64];
        let mixed = position_cost(&cfg(), 64, &act, &[&dense, &empty]);
        let only_dense = position_cost(&cfg(), 64, &act, &[&dense]);
        assert_eq!(mixed.ca_cycles, only_dense.ca_cycles);
    }

    #[test]
    fn reused_scratch_matches_fresh_calls() {
        let cfg = cfg();
        let mut scratch = CaScratch::new(&cfg);
        let patterns: [([u64; 2], [u64; 2]); 4] = [
            ([u64::MAX; 2], [u64::MAX; 2]),
            ([0xAAAA_AAAA_AAAA_AAAA; 2], [0x0101_0101_0101_0101; 2]),
            ([0x00FF_00FF_00FF_00FF, 0], [u64::MAX, 0x0F0F]),
            ([0, 0], [u64::MAX; 2]),
        ];
        for (act, coef) in &patterns {
            let fresh = position_cost(&cfg, 128, act, &[&coef[..], &coef[..]]);
            let reused = position_cost_with(&cfg, 128, act, &[&coef[..], &coef[..]], &mut scratch);
            assert_eq!(fresh, reused);
        }
    }

    #[test]
    #[should_panic(expected = "mask word count")]
    fn word_count_mismatch_panics() {
        let act = [0u64; 2];
        let coef = [0u64];
        let _ = position_cost(&cfg(), 64, &act, &[&coef]);
    }
}
