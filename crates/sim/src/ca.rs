//! Channel-accumulator cycle model: one input position through
//! Dilution-Concentration (paper §4.2, Figure 2(b)).
//!
//! For one output channel and one input position, the nonzero activations
//! of all `C` input channels stream over the 16-byte bus in chunks. Each
//! of the `M` CAs matches the stream against its own coefficient mask
//! with the bit-exact dilution model, folds survivors into its
//! concentration buffer, and reduces them through the adder tree. The CA
//! time for the position is the maximum of the bus streaming time and the
//! slowest CA's concentration drain.
//!
//! Two implementations produce the identical [`PositionCost`]:
//!
//! - [`position_cost_scalar`] walks activation bits one at a time and runs
//!   the full [`dilute_into`] + [`ConcentrationBuffer`] machinery for
//!   every (basis, word) pair — the reference model, kept for
//!   differential testing;
//! - [`PositionKernel`] is the batched word-parallel production path: a
//!   compiled [`LayerPlan`] holds every per-channel invariant (coefficient
//!   copies, union masks, per-basis nonzero-word skip tables),
//!   [`PositionKernel::cost_batch`] evaluates up to [`MAX_BATCH`]
//!   positions per pass over the bound coefficient words, concentration
//!   drains run on the bitmask
//!   [`MaskConcentration`](escalate_sparse::MaskConcentration) model, and
//!   (behind the `simd` cargo feature) the whole batch is recompiled with
//!   `popcnt`/`bmi2`/`avx2` enabled and dispatched at runtime.
//!   `tests/kernel_diff.rs` pins every path byte-for-byte equal to the
//!   scalar reference.
//!
//! The per-channel memo that rode along in earlier revisions is gone: on
//! the real grid its hit rate measured 0.0000 (BENCH_sim.json) because
//! Bernoulli-drawn multi-word activation masks essentially never repeat
//! within one channel bind, and the bit-identity contract forbids coarser
//! keying — so it was pure probe overhead and was deleted rather than
//! rekeyed (see DESIGN.md §2.2 for the verdict).

use crate::config::SimConfig;
use escalate_sparse::{dilute_into, ConcentrationBuffer, DilutionInput, MaskConcentration};

#[cfg(all(feature = "simd", target_arch = "x86_64"))]
use crate::simd;

/// Unit activation values: the timing model only cares which positions are
/// nonzero, so every nonzero activation streams as `1.0`.
static UNIT_ACTS: [f32; 64] = [1.0; 64];
/// All-positive coefficient signs (sign bits are irrelevant to timing).
static NO_SIGNS: [bool; 64] = [false; 64];

/// Positions evaluated per [`PositionKernel::cost_batch`] pass — the walk
/// in `run_positions` hands the kernel up to this many activation masks at
/// a time so coefficient words, skip tables, and the dispatch branch are
/// amortized across the batch.
pub const MAX_BATCH: usize = 8;

/// Reusable scratch state for [`position_cost_scalar`]: the concentration
/// buffer and the diluted-slot buffer, so the per-position hot loop
/// allocates nothing after warm-up.
///
/// A scratch is tied to the [`SimConfig`] it was built from (adder-tree
/// width and look-ahead/look-aside windows); build a new one when the
/// config changes.
#[derive(Debug, Clone)]
pub struct CaScratch {
    buf: ConcentrationBuffer,
    slots: Vec<Option<f32>>,
}

impl CaScratch {
    /// Creates scratch state for simulations under `cfg`.
    pub fn new(cfg: &SimConfig) -> Self {
        let bus = cfg.bus_elems().max(1);
        CaScratch {
            buf: ConcentrationBuffer::new(bus, cfg.look_ahead, cfg.look_aside),
            slots: Vec::with_capacity(64),
        }
    }
}

/// Per-position CA simulation result.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PositionCost {
    /// Cycles the CA stage needs for this position.
    pub ca_cycles: u64,
    /// Matched (activation, coefficient) pairs accumulated.
    pub matched: u64,
    /// Dilution gather passes executed.
    pub gather_passes: u64,
    /// Bus cycles spent streaming the activation chunks.
    pub stream_cycles: u64,
}

/// Simulates one input position for one output channel.
///
/// `act_mask` has one bit per input channel (set = nonzero activation);
/// `coef_masks[m]` are the per-basis coefficient masks over the same
/// channels; `c` is the channel count.
///
/// # Panics
///
/// Panics if the mask word counts disagree with `c`.
pub fn position_cost(
    cfg: &SimConfig,
    c: usize,
    act_mask: &[u64],
    coef_masks: &[&[u64]],
) -> PositionCost {
    position_cost_scalar(cfg, c, act_mask, coef_masks, &mut CaScratch::new(cfg))
}

/// The scalar reference implementation of [`position_cost`] with
/// caller-owned scratch buffers: activation bits are walked one at a time
/// and every (basis, word) pair runs the full dilution + concentration
/// machinery. [`PositionKernel`] is the word-parallel production path;
/// this function is retained as the ground truth it is differentially
/// tested against (`tests/kernel_diff.rs`). Results are identical to
/// [`position_cost`].
///
/// # Panics
///
/// Panics if the mask word counts disagree with `c`, or (in debug builds)
/// if `scratch` was built from a config with a different bus width.
pub fn position_cost_scalar(
    cfg: &SimConfig,
    c: usize,
    act_mask: &[u64],
    coef_masks: &[&[u64]],
    scratch: &mut CaScratch,
) -> PositionCost {
    debug_assert_eq!(
        scratch.buf.width(),
        cfg.bus_elems().max(1),
        "scratch built from a different config"
    );
    let words = c.div_ceil(64);
    assert_eq!(act_mask.len(), words, "activation mask word count");
    for cm in coef_masks {
        assert_eq!(cm.len(), words, "coefficient mask word count");
    }

    // Chunk-skipping: the compressed activations are stored in bus-width
    // chunks, and the sparse maps stream ahead of the values (§4.2.2), so
    // a slice only requests the chunks whose positions intersect at least
    // one of its coefficient masks. At high coefficient sparsity most
    // chunks are skipped — this is where Dilution-Concentration converts
    // sparsity into time.
    let bus = cfg.bus_elems().max(1);
    let mut fetched_chunks = 0u64;
    {
        let mut in_chunk = 0usize;
        let mut chunk_needed = false;
        for wi in 0..words {
            let mut aw = act_mask[wi];
            while aw != 0 {
                let bit = aw.trailing_zeros() as usize;
                aw &= aw - 1;
                if !chunk_needed {
                    for cm in coef_masks {
                        if cm[wi] >> bit & 1 == 1 {
                            chunk_needed = true;
                            break;
                        }
                    }
                }
                in_chunk += 1;
                if in_chunk == bus {
                    if chunk_needed {
                        fetched_chunks += 1;
                    }
                    in_chunk = 0;
                    chunk_needed = false;
                }
            }
        }
        if in_chunk > 0 && chunk_needed {
            fetched_chunks += 1;
        }
    }
    // A position always costs at least one bus cycle, even when every
    // chunk was skipped: the sparse maps themselves stream ahead of the
    // values, so the CA spends a cycle discovering there is nothing to
    // fetch. This ≥ 1 floor is intentional and pinned by
    // `all_chunks_skipped_costs_the_one_cycle_floor`; the word-parallel
    // kernel preserves it exactly.
    let stream_cycles = fetched_chunks.max(1);

    let mut matched = 0u64;
    let mut gather_passes = 0u64;
    let mut worst_conc = 0u64;

    // One value per nonzero activation; the magnitudes are irrelevant to
    // timing, so use unit values.
    for cm in coef_masks {
        scratch.buf.reset();
        for (wi, (&aw, &cw)) in act_mask.iter().zip(cm.iter()).enumerate() {
            let width = (c - wi * 64).min(64);
            if aw == 0 {
                continue;
            }
            let out = dilute_into(
                &DilutionInput {
                    act_values: &UNIT_ACTS[..aw.count_ones() as usize],
                    act_map: aw,
                    coef_signs: &NO_SIGNS[..cw.count_ones() as usize],
                    coef_map: cw,
                    width,
                },
                &mut scratch.slots,
            );
            gather_passes += 1;
            matched += out.matched as u64;
            scratch.buf.push_slots(&scratch.slots);
        }
        let (_, stats) = scratch.buf.drain_sum();
        worst_conc = worst_conc.max(stats.rows_drained as u64);
    }

    PositionCost {
        ca_cycles: stream_cycles.max(worst_conc).max(1),
        matched,
        gather_passes,
        stream_cycles,
    }
}

/// A compiled per-(layer, config) table of everything the position walk
/// would otherwise re-derive per channel: flat copies of the `M`
/// coefficient masks for every sampled channel, their per-word unions
/// (the chunk-skip filter), and per-basis skip tables listing the words
/// whose coefficient mask is nonzero — the only words a basis can match
/// in, so the batch loop walks those and charges everything between them
/// as coalesced hole runs.
///
/// A plan is built once by [`LayerPlan::build`] and installed into a
/// [`PositionKernel`] ([`PositionKernel::install_plan`]); `run_positions`
/// caches it through the thread-local kernel cache and reuses it across
/// seeds and fidelities of the same layer. Reuse is gated by
/// [`LayerPlan::matches`], which compares the stored mask words for full
/// equality — never a hash — so a stale plan can never change results.
#[derive(Debug, Clone)]
pub struct LayerPlan {
    c: usize,
    words: usize,
    m: usize,
    /// Sampled channel ids, in walk order (the reuse identity).
    channels: Vec<usize>,
    /// `channels × m × words` coefficient mask copies, flat.
    coef: Vec<u64>,
    /// `channels × words` per-word unions over the `m` masks, flat.
    union_mask: Vec<u64>,
    /// Concatenated per-(channel, basis) lists of nonzero-word indices.
    nz_words: Vec<u32>,
    /// `channels × m + 1` offsets into [`LayerPlan::nz_words`].
    nz_index: Vec<u32>,
}

impl LayerPlan {
    /// Compiles the plan for `channels` of a layer with `c` input channels
    /// and `m` bases; `mask(k, mi)` returns basis `mi` of channel `k`.
    ///
    /// # Panics
    ///
    /// Panics if a mask's word count disagrees with `c`.
    pub fn build<'m>(
        c: usize,
        m: usize,
        channels: &[usize],
        mask: impl Fn(usize, usize) -> &'m [u64],
    ) -> LayerPlan {
        let words = c.div_ceil(64);
        let mut plan = LayerPlan {
            c,
            words,
            m,
            channels: channels.to_vec(),
            coef: Vec::with_capacity(channels.len() * m * words),
            union_mask: vec![0u64; channels.len() * words],
            nz_words: Vec::new(),
            nz_index: Vec::with_capacity(channels.len() * m + 1),
        };
        plan.nz_index.push(0);
        for (ci, &k) in channels.iter().enumerate() {
            let union = &mut plan.union_mask[ci * words..(ci + 1) * words];
            for mi in 0..m {
                let cm = mask(k, mi);
                assert_eq!(cm.len(), words, "coefficient mask word count");
                or_words(union, cm);
                for (wi, &w) in cm.iter().enumerate() {
                    if w != 0 {
                        plan.nz_words.push(wi as u32);
                    }
                }
                plan.nz_index.push(plan.nz_words.len() as u32);
                plan.coef.extend_from_slice(cm);
            }
        }
        plan
    }

    /// Whether this plan was compiled from exactly these inputs: same
    /// geometry, same channel sample, and word-for-word identical masks.
    pub fn matches<'m>(
        &self,
        c: usize,
        m: usize,
        channels: &[usize],
        mask: impl Fn(usize, usize) -> &'m [u64],
    ) -> bool {
        if self.c != c || self.m != m || self.channels != channels {
            return false;
        }
        let words = self.words;
        for (ci, &k) in channels.iter().enumerate() {
            for mi in 0..m {
                let stored = &self.coef[(ci * m + mi) * words..(ci * m + mi + 1) * words];
                if stored != mask(k, mi) {
                    return false;
                }
            }
        }
        true
    }

    /// The channel ids this plan was compiled for, in walk order.
    pub fn channels(&self) -> &[usize] {
        &self.channels
    }
}

/// Per-word OR fold, through the AVX2 lane helper when the `simd` fast
/// path is live.
fn or_words(dst: &mut [u64], src: &[u64]) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if simd::enabled() {
        // SAFETY: avx2 availability is part of `simd::enabled`.
        unsafe { simd::or_words_into(dst, src) };
        return;
    }
    for (d, &s) in dst.iter_mut().zip(src) {
        *d |= s;
    }
}

/// The dilution filter over compressed activations: the intersection bits
/// gathered at the activation positions (`gather_bits(inter, aw)`), built
/// with one rank popcount per survivor — or a single `pext` on the x86
/// fast path.
#[inline(always)]
fn filter_mask(inter: u64, aw: u64, fast: bool) -> u64 {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if fast {
        // SAFETY: the batch entry dispatched here only after
        // `simd::enabled()` confirmed bmi2.
        return unsafe { simd::pext(inter, aw) };
    }
    let _ = fast;
    let mut filter = 0u64;
    let mut bits = inter;
    while bits != 0 {
        let b = bits.trailing_zeros();
        bits &= bits - 1;
        let rank = (aw & ((1u64 << b) - 1)).count_ones();
        filter |= 1u64 << rank;
    }
    filter
}

/// The drain model behind the kernel: the bitmask
/// [`MaskConcentration`] when the adder tree is at most 64 wide (every
/// Table 2 configuration), the full slot buffer beyond that.
#[derive(Debug, Clone)]
enum DrainBuf {
    Bits(MaskConcentration),
    Slots(ConcentrationBuffer),
}

impl DrainBuf {
    fn new(bus: usize, la: usize, ls: usize) -> DrainBuf {
        if bus <= 64 {
            DrainBuf::Bits(MaskConcentration::new(bus, la, ls))
        } else {
            DrainBuf::Slots(ConcentrationBuffer::new(bus, la, ls))
        }
    }

    #[inline(always)]
    fn push_holes(&mut self, n: usize) {
        match self {
            DrainBuf::Bits(b) => b.push_holes(n),
            DrainBuf::Slots(s) => s.push_holes(n),
        }
    }

    #[inline(always)]
    fn push_mask(&mut self, mask: u64, n: usize) {
        match self {
            DrainBuf::Bits(b) => b.push_mask(mask, n),
            DrainBuf::Slots(s) => s.push_unit_mask(mask, n),
        }
    }

    /// Drains everything, returning the rows the adder tree consumed.
    #[inline(always)]
    fn drain(&mut self) -> u64 {
        match self {
            DrainBuf::Bits(b) => b.drain() as u64,
            DrainBuf::Slots(s) => {
                let before = s.stats().rows_drained;
                let (_, stats) = s.drain_sum();
                (stats.rows_drained - before) as u64
            }
        }
    }
}

/// The batched word-parallel position-cost kernel: the production
/// implementation of the Dilution-Concentration cycle model,
/// result-identical to [`position_cost_scalar`].
///
/// A kernel is built once per config ([`PositionKernel::new`]) and fed a
/// compiled [`LayerPlan`] ([`PositionKernel::install_plan`]); per channel
/// the walk calls [`PositionKernel::bind_planned`] (or the ad-hoc
/// [`PositionKernel::bind`], which compiles a one-channel plan on the
/// spot) and then [`PositionKernel::cost_batch`] over the positions. The
/// fast-path layers, from the outside in:
///
/// 1. **Compiled plans** — coefficient copies, per-word unions, and
///    per-basis nonzero-word skip tables come precomputed from the
///    [`LayerPlan`], so binding a channel is a few memcpys;
/// 2. **Position batching** — up to [`MAX_BATCH`] positions per
///    [`PositionKernel::cost_batch`] call share one pass over the bound
///    coefficient words (basis-major loop) and one activation
///    popcount-prefix table;
/// 3. **Word-parallel arithmetic** — chunk-skipping is rank arithmetic
///    over `act ∩ union`, `matched` is popcount over the skip-table
///    words, dilution filters are one rank popcount per survivor (or one
///    `pext`), hole runs between matchable words coalesce into single
///    `push_holes` calls, trailing holes are elided (they can never
///    drain a row), and drains run on the bitmask
///    [`MaskConcentration`] rows;
/// 4. **`std::arch` dispatch** (`simd` feature) — the whole batch is
///    recompiled with `popcnt`/`bmi2`/`avx2` enabled and selected by a
///    runtime `is_x86_feature_detected!` gate, with the portable
///    `u64::count_ones` path as the everywhere-correct fallback.
#[derive(Debug, Clone)]
pub struct PositionKernel {
    bus: usize,
    look_ahead: usize,
    look_aside: usize,
    /// Bound-channel geometry (mirrors the plan entry or the ad-hoc bind).
    c: usize,
    words: usize,
    m: usize,
    /// Flat `m × words` copy of the bound channel's coefficient masks.
    coef: Vec<u64>,
    /// Per-word OR over the `m` coefficient masks.
    union_mask: Vec<u64>,
    /// Concatenated per-basis nonzero-word lists of the bound channel.
    nz_words: Vec<u32>,
    /// `m + 1` offsets into [`PositionKernel::nz_words`].
    nz_index: Vec<u32>,
    /// Installed layer plan, if any — shared when it came from the
    /// derived-state cache ([`crate::shared`]).
    plan: Option<std::sync::Arc<LayerPlan>>,
    /// Concentration drain model (bitmask rows for bus ≤ 64).
    conc: DrainBuf,
    /// Batch scratch: per-position activation popcount prefix sums,
    /// `n × (words + 1)`, flat.
    pref: Vec<u32>,
}

impl PositionKernel {
    /// Creates an unbound kernel for simulations under `cfg`. Call
    /// [`PositionKernel::bind`] or [`PositionKernel::bind_planned`] before
    /// [`PositionKernel::cost`].
    pub fn new(cfg: &SimConfig) -> PositionKernel {
        let bus = cfg.bus_elems().max(1);
        PositionKernel {
            bus,
            look_ahead: cfg.look_ahead,
            look_aside: cfg.look_aside,
            c: 0,
            words: 0,
            m: 0,
            coef: Vec::new(),
            union_mask: Vec::new(),
            nz_words: Vec::new(),
            nz_index: Vec::new(),
            plan: None,
            conc: DrainBuf::new(bus, cfg.look_ahead, cfg.look_aside),
            pref: Vec::new(),
        }
    }

    /// Whether this kernel was built from an equivalent config (same bus
    /// width and concentration windows) and can be reused for simulations
    /// under `cfg` without reconstruction.
    pub fn matches(&self, cfg: &SimConfig) -> bool {
        self.bus == cfg.bus_elems().max(1)
            && self.look_ahead == cfg.look_ahead
            && self.look_aside == cfg.look_aside
    }

    /// Installs a compiled [`LayerPlan`]; [`PositionKernel::bind_planned`]
    /// then binds its channels by index. Replaces any previous plan and
    /// invalidates the current bind.
    pub fn install_plan(&mut self, plan: LayerPlan) {
        self.install_shared_plan(std::sync::Arc::new(plan));
    }

    /// [`PositionKernel::install_plan`] for a plan shared with other
    /// kernels (the derived-state cache hands these out); binding only
    /// reads the plan, so sharing cannot change results.
    pub fn install_shared_plan(&mut self, plan: std::sync::Arc<LayerPlan>) {
        self.c = 0;
        self.words = 0;
        self.m = 0;
        self.plan = Some(plan);
    }

    /// The installed plan, if any — callers probe it with
    /// [`LayerPlan::matches`] to decide between reuse and recompile.
    pub fn plan(&self) -> Option<&LayerPlan> {
        self.plan.as_deref()
    }

    /// Binds channel `idx` of the installed plan: copies its precompiled
    /// coefficient words, union, and skip tables into the bind slots.
    ///
    /// # Panics
    ///
    /// Panics if no plan is installed or `idx` is out of range.
    pub fn bind_planned(&mut self, idx: usize) {
        let plan = self.plan.as_ref().expect("no layer plan installed");
        assert!(idx < plan.channels.len(), "plan channel index out of range");
        let (words, m) = (plan.words, plan.m);
        self.c = plan.c;
        self.words = words;
        self.m = m;
        self.coef.clear();
        self.coef
            .extend_from_slice(&plan.coef[idx * m * words..(idx + 1) * m * words]);
        self.union_mask.clear();
        self.union_mask
            .extend_from_slice(&plan.union_mask[idx * words..(idx + 1) * words]);
        let lo = plan.nz_index[idx * m] as usize;
        let hi = plan.nz_index[(idx + 1) * m] as usize;
        self.nz_words.clear();
        self.nz_words.extend_from_slice(&plan.nz_words[lo..hi]);
        self.nz_index.clear();
        self.nz_index.extend(
            plan.nz_index[idx * m..=(idx + 1) * m]
                .iter()
                .map(|&o| o - lo as u32),
        );
    }

    /// Binds the kernel to one (layer, channel) without a plan: compiles
    /// the union and skip tables for these masks on the spot. Equivalent
    /// to installing a one-channel [`LayerPlan`] and binding it.
    ///
    /// # Panics
    ///
    /// Panics if a mask's word count disagrees with `c`.
    pub fn bind<'m>(&mut self, c: usize, coef_masks: impl IntoIterator<Item = &'m [u64]>) {
        let words = c.div_ceil(64);
        self.c = c;
        self.words = words;
        self.coef.clear();
        self.union_mask.clear();
        self.union_mask.resize(words, 0);
        self.nz_words.clear();
        self.nz_index.clear();
        self.nz_index.push(0);
        let mut m = 0usize;
        for cm in coef_masks {
            assert_eq!(cm.len(), words, "coefficient mask word count");
            or_words(&mut self.union_mask, cm);
            for (wi, &w) in cm.iter().enumerate() {
                if w != 0 {
                    self.nz_words.push(wi as u32);
                }
            }
            self.nz_index.push(self.nz_words.len() as u32);
            self.coef.extend_from_slice(cm);
            m += 1;
        }
        self.m = m;
    }

    /// The cost of one position under the bound channel's masks — a batch
    /// of one. The kernel is stateless across calls: repeated calls with
    /// the same mask recompute and return the identical cost.
    ///
    /// # Panics
    ///
    /// Panics if `act_mask` disagrees with the bound channel width or has
    /// bits at or above `c`.
    pub fn cost(&mut self, act_mask: &[u64]) -> PositionCost {
        let mut out = [PositionCost::default()];
        self.cost_batch(act_mask, 1, &mut out);
        out[0]
    }

    /// The costs of `n ≤ MAX_BATCH` positions in one pass over the bound
    /// coefficient words: `acts` holds the `n` activation masks
    /// back-to-back (`n × words` words), `out[..n]` receives the costs in
    /// position order. Results are identical to `n` separate
    /// [`PositionKernel::cost`] calls — batching changes speed, never
    /// values.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or exceeds [`MAX_BATCH`], `acts` is not
    /// `n × words` long, `out` is shorter than `n`, or any mask has bits
    /// at or above `c`.
    pub fn cost_batch(&mut self, acts: &[u64], n: usize, out: &mut [PositionCost]) {
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        if simd::enabled() {
            // SAFETY: popcnt/bmi2/avx2 presence verified by the runtime
            // gate inside `simd::enabled`.
            unsafe { self.cost_batch_x86(acts, n, out) };
            return;
        }
        self.cost_batch_impl(acts, n, out, false);
    }

    /// The batch body recompiled with the x86 bit-manipulation features
    /// enabled, so every `count_ones` is a hardware `popcnt` and the
    /// filter build is a `pext`.
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    #[target_feature(enable = "popcnt", enable = "bmi2", enable = "avx2")]
    unsafe fn cost_batch_x86(&mut self, acts: &[u64], n: usize, out: &mut [PositionCost]) {
        self.cost_batch_impl(acts, n, out, true);
    }

    /// The shared batch body; `fast` routes the filter build through
    /// `pext` (only ever `true` under the `target_feature` entry).
    #[inline(always)]
    fn cost_batch_impl(&mut self, acts: &[u64], n: usize, out: &mut [PositionCost], fast: bool) {
        let words = self.words;
        assert!(
            (1..=MAX_BATCH).contains(&n),
            "batch of 1..=MAX_BATCH positions"
        );
        assert_eq!(acts.len(), n * words, "activation mask word count");
        assert!(out.len() >= n, "cost buffer shorter than the batch");
        if words > 0 {
            let tail = self.c - (words - 1) * 64;
            if tail < 64 {
                for b in 0..n {
                    assert_eq!(
                        acts[b * words + words - 1] >> tail,
                        0,
                        "activation map has bits beyond width"
                    );
                }
            }
        }
        let bus = self.bus;

        // One pass of popcount prefix sums per batch: pref[b][w] is the
        // number of activation bits strictly before word `w` of position
        // `b`. Hole runs between matchable words become one subtraction,
        // and every basis of every position reuses the same table.
        self.pref.clear();
        let mut nz_act_words = [0u64; MAX_BATCH];
        for b in 0..n {
            let mut acc = 0u32;
            self.pref.push(0);
            for &aw in &acts[b * words..(b + 1) * words] {
                acc += aw.count_ones();
                if aw != 0 {
                    nz_act_words[b] += 1;
                }
                self.pref.push(acc);
            }
        }

        // Streaming: chunk-skipping by rank arithmetic, per position.
        // Activation bit number `r` (counting set bits across all words)
        // lands in chunk `r / bus`, and a chunk is fetched iff it holds at
        // least one bit of `act ∩ union`. Needed bits are visited in rank
        // order, so chunk indices are non-decreasing and deduplication is
        // one compare.
        let mut stream = [0u64; MAX_BATCH];
        for b in 0..n {
            let act = &acts[b * words..(b + 1) * words];
            let mut fetched_chunks = 0u64;
            let mut last_chunk = u64::MAX; // sentinel: no chunk fetched yet
            let mut base = 0usize; // rank of this word's first activation bit
            for (wi, &aw) in act.iter().enumerate() {
                if aw == 0 {
                    continue;
                }
                let cnt = aw.count_ones() as usize;
                let needed = aw & self.union_mask[wi];
                if needed == aw {
                    // Every activation bit of this word is needed: the chunk
                    // range [base/bus, (base+cnt-1)/bus] is fetched wholesale.
                    let clo = (base / bus) as u64;
                    let chi = ((base + cnt - 1) / bus) as u64;
                    let lo = if last_chunk == u64::MAX {
                        clo
                    } else {
                        clo.max(last_chunk + 1)
                    };
                    if chi >= lo {
                        fetched_chunks += chi - lo + 1;
                        last_chunk = chi;
                    }
                } else if needed != 0 {
                    let mut bits = needed;
                    while bits != 0 {
                        let bit = bits.trailing_zeros();
                        bits &= bits - 1;
                        let rank = (aw & ((1u64 << bit) - 1)).count_ones() as usize;
                        let chunk = ((base + rank) / bus) as u64;
                        if chunk != last_chunk {
                            fetched_chunks += 1;
                            last_chunk = chunk;
                        }
                    }
                }
                base += cnt;
            }
            // Same ≥ 1 floor as the scalar path: a position always costs
            // at least one bus cycle (see position_cost_scalar).
            stream[b] = fetched_chunks.max(1);
        }

        // Accumulation: basis-major over the batch, so each basis's
        // coefficient words and skip table are loaded once for all `n`
        // positions.
        let mut matched = [0u64; MAX_BATCH];
        let mut worst_conc = [0u64; MAX_BATCH];
        for mi in 0..self.m {
            let cw = &self.coef[mi * words..(mi + 1) * words];
            let nz = &self.nz_words[self.nz_index[mi] as usize..self.nz_index[mi + 1] as usize];
            for b in 0..n {
                let act = &acts[b * words..(b + 1) * words];
                let pref = &self.pref[b * (words + 1)..(b + 1) * (words + 1)];
                // `matched` per basis is popcount arithmetic over the words
                // the skip table says can match at all; a basis whose
                // intersection with the whole position is empty streams
                // only holes, and an all-hole stream drains zero rows —
                // skip its concentration entirely.
                let mut basis_matched = 0u64;
                for &wi in nz {
                    let wi = wi as usize;
                    basis_matched += (act[wi] & cw[wi]).count_ones() as u64;
                }
                matched[b] += basis_matched;
                if basis_matched == 0 {
                    continue;
                }
                // Walk only the matchable words; everything between them
                // dilutes to holes whose count is a prefix-sum
                // subtraction, coalesced into single pushes. Trailing
                // holes are elided entirely: holes after the last
                // survivor can never cause an adder-tree row to drain.
                let mut pending_holes = 0usize;
                let mut prev = 0usize;
                for &wi in nz {
                    let wi = wi as usize;
                    pending_holes += (pref[wi] - pref[prev]) as usize;
                    let aw = act[wi];
                    if aw != 0 {
                        let inter = aw & cw[wi];
                        let cnt = aw.count_ones() as usize;
                        if inter == 0 {
                            // Dilution word-skip: an empty intersection
                            // dilutes to all holes.
                            pending_holes += cnt;
                        } else {
                            if pending_holes > 0 {
                                self.conc.push_holes(pending_holes);
                                pending_holes = 0;
                            }
                            self.conc.push_mask(filter_mask(inter, aw, fast), cnt);
                        }
                    }
                    prev = wi + 1;
                }
                worst_conc[b] = worst_conc[b].max(self.conc.drain());
            }
        }

        for b in 0..n {
            out[b] = PositionCost {
                ca_cycles: stream[b].max(worst_conc[b]).max(1),
                matched: matched[b],
                // One dilution gather pass per (basis, nonzero word),
                // exactly as the scalar path counts them — including
                // skipped words and skipped bases, whose gathers the
                // hardware still schedules.
                gather_passes: nz_act_words[b] * self.m as u64,
                stream_cycles: stream[b],
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SimConfig {
        SimConfig::default()
    }

    /// Runs the same inputs through the scalar path, the kernel bound
    /// ad hoc (twice — it is stateless), and the kernel bound through a
    /// one-channel [`LayerPlan`], and requires all answers equal. Returns
    /// the agreed cost.
    fn cost_all_paths(
        cfg: &SimConfig,
        c: usize,
        act: &[u64],
        coef_masks: &[&[u64]],
    ) -> PositionCost {
        let scalar = position_cost(cfg, c, act, coef_masks);
        let mut kernel = PositionKernel::new(cfg);
        kernel.bind(c, coef_masks.iter().copied());
        assert_eq!(kernel.cost(act), scalar, "word-parallel kernel");
        assert_eq!(kernel.cost(act), scalar, "repeat call (stateless)");
        let plan = LayerPlan::build(c, coef_masks.len(), &[0], |_, mi| coef_masks[mi]);
        kernel.install_plan(plan);
        kernel.bind_planned(0);
        assert_eq!(kernel.cost(act), scalar, "planned bind");
        scalar
    }

    #[test]
    fn dense_position_is_bus_bound() {
        // All 64 channels nonzero, all coefficients nonzero: 64 activations
        // over a 16-wide bus = 4 cycles, and the adder tree matches.
        let act = [u64::MAX];
        let coef = [u64::MAX];
        let cost = cost_all_paths(&cfg(), 64, &act, &[&coef, &coef]);
        assert_eq!(cost.stream_cycles, 4);
        assert_eq!(cost.ca_cycles, 4);
        assert_eq!(cost.matched, 128); // 64 per CA × 2 CAs
    }

    #[test]
    fn empty_activations_cost_one_cycle() {
        let act = [0u64];
        let coef = [u64::MAX];
        let cost = cost_all_paths(&cfg(), 64, &act, &[&coef]);
        assert_eq!(cost.ca_cycles, 1);
        assert_eq!(cost.matched, 0);
        assert_eq!(cost.gather_passes, 0);
    }

    #[test]
    fn all_chunks_skipped_costs_the_one_cycle_floor() {
        // Nonzero activations whose intersection with *every* basis is
        // empty: every chunk is skipped, yet the position still costs one
        // bus cycle — the ≥ 1 floor is intentional (the sparse maps stream
        // ahead of the values, so discovering "nothing to fetch" takes a
        // cycle). Behavior-pinning regression for the fast path.
        let act = [0x0000_0000_FFFF_FFFFu64];
        let hi = [0xFFFF_FFFF_0000_0000u64];
        let zero = [0u64];
        let cost = cost_all_paths(&cfg(), 64, &act, &[&hi, &zero, &hi]);
        assert_eq!(cost.stream_cycles, 1);
        assert_eq!(cost.ca_cycles, 1);
        assert_eq!(cost.matched, 0);
        assert_eq!(cost.gather_passes, 3); // one per (basis, nonzero word)
    }

    #[test]
    fn sparse_coefficients_reduce_matches_not_stream() {
        let act = [u64::MAX];
        let sparse_coef = [0x0101_0101_0101_0101u64]; // 8 of 64
        let dense_coef = [u64::MAX];
        let s = cost_all_paths(&cfg(), 64, &act, &[&sparse_coef]);
        let d = cost_all_paths(&cfg(), 64, &act, &[&dense_coef]);
        assert_eq!(s.stream_cycles, d.stream_cycles);
        assert!(s.matched < d.matched);
        assert!(s.ca_cycles <= d.ca_cycles);
    }

    #[test]
    fn multiword_channels_accumulate() {
        // 128 channels, half nonzero activations.
        let act = [0xAAAA_AAAA_AAAA_AAAAu64; 2];
        let coef = [u64::MAX; 2];
        let cost = cost_all_paths(&cfg(), 128, &act, &[&coef]);
        assert_eq!(cost.matched, 64);
        assert_eq!(cost.stream_cycles, 4); // 64 nonzeros / 16 per cycle
    }

    #[test]
    fn ca_time_covers_slowest_accumulator() {
        let act = [u64::MAX];
        let dense = [u64::MAX];
        let empty = [0u64];
        let mixed = cost_all_paths(&cfg(), 64, &act, &[&dense, &empty]);
        let only_dense = cost_all_paths(&cfg(), 64, &act, &[&dense]);
        assert_eq!(mixed.ca_cycles, only_dense.ca_cycles);
    }

    #[test]
    fn reused_scratch_matches_fresh_calls() {
        let cfg = cfg();
        let mut scratch = CaScratch::new(&cfg);
        let patterns: [([u64; 2], [u64; 2]); 4] = [
            ([u64::MAX; 2], [u64::MAX; 2]),
            ([0xAAAA_AAAA_AAAA_AAAA; 2], [0x0101_0101_0101_0101; 2]),
            ([0x00FF_00FF_00FF_00FF, 0], [u64::MAX, 0x0F0F]),
            ([0, 0], [u64::MAX; 2]),
        ];
        for (act, coef) in &patterns {
            let fresh = position_cost(&cfg, 128, act, &[&coef[..], &coef[..]]);
            let reused =
                position_cost_scalar(&cfg, 128, act, &[&coef[..], &coef[..]], &mut scratch);
            assert_eq!(fresh, reused);
        }
    }

    #[test]
    fn batched_costs_equal_single_calls() {
        let cfg = cfg();
        let coef = [0x0101_0101_0101_0101u64, 0x00F0_0000_0000_000Fu64];
        let mut kernel = PositionKernel::new(&cfg);
        kernel.bind(128, [&coef[..]]);
        // 7 positions: a ragged tail over any batch split.
        let acts: Vec<[u64; 2]> = (0..7)
            .map(|i| [0xDEAD_BEEF_0BAD_F00Du64.rotate_left(i * 9), 0x1234 << i])
            .collect();
        let singles: Vec<PositionCost> = acts.iter().map(|a| kernel.cost(a)).collect();
        for n in [1usize, 2, 3, 7] {
            let flat: Vec<u64> = acts[..n].iter().flatten().copied().collect();
            let mut out = vec![PositionCost::default(); n];
            kernel.cost_batch(&flat, n, &mut out);
            assert_eq!(out, singles[..n], "batch of {n}");
        }
    }

    #[test]
    fn rebinding_changes_answers() {
        let cfg = cfg();
        let mut kernel = PositionKernel::new(&cfg);
        let act = [0x0F0F_0F0F_0F0F_0F0Fu64];
        let dense = [u64::MAX];
        kernel.bind(64, [&dense[..]]);
        assert_eq!(kernel.cost(&act).matched, 32);
        // Rebinding to a disjoint basis must replace every table.
        let disjoint = [0xF0F0_F0F0_F0F0_F0F0u64];
        kernel.bind(64, [&disjoint[..]]);
        assert_eq!(kernel.cost(&act).matched, 0);
    }

    #[test]
    fn plan_binds_match_ad_hoc_binds() {
        let cfg = cfg();
        let masks: Vec<Vec<Vec<u64>>> = (0..3)
            .map(|k| {
                (0..2)
                    .map(|mi| vec![(0x9E37_79B9u64 << k).rotate_left(mi * 13 + k), 0x0FFF >> k])
                    .collect()
            })
            .collect();
        let channels = [2usize, 0, 1];
        let plan = LayerPlan::build(100, 2, &channels, |k, mi| &masks[k][mi]);
        assert_eq!(plan.channels(), &channels);
        assert!(plan.matches(100, 2, &channels, |k, mi| &masks[k][mi]));
        assert!(!plan.matches(100, 2, &[0, 1, 2], |k, mi| &masks[k][mi]));

        let act = [0xFFFF_0000_FFFF_0000u64, 0x0ABC];
        let mut planned = PositionKernel::new(&cfg);
        planned.install_plan(plan);
        let mut adhoc = PositionKernel::new(&cfg);
        for (idx, &k) in channels.iter().enumerate() {
            planned.bind_planned(idx);
            adhoc.bind(100, masks[k].iter().map(Vec::as_slice));
            assert_eq!(planned.cost(&act), adhoc.cost(&act), "channel {k}");
        }
    }

    #[test]
    fn plan_matches_rejects_changed_masks() {
        let base = [vec![0xFFu64], vec![0x0Fu64]];
        let plan = LayerPlan::build(64, 2, &[0], |_, mi| &base[mi]);
        assert!(plan.matches(64, 2, &[0], |_, mi| &base[mi]));
        let tweaked = [vec![0xFFu64], vec![0x1Fu64]];
        assert!(!plan.matches(64, 2, &[0], |_, mi| &tweaked[mi]));
        assert!(!plan.matches(64, 1, &[0], |_, mi| &base[mi]));
        assert!(!plan.matches(128, 2, &[0], |_, mi| &base[mi]));
    }

    #[test]
    #[should_panic(expected = "mask word count")]
    fn word_count_mismatch_panics() {
        let act = [0u64; 2];
        let coef = [0u64];
        let _ = position_cost(&cfg(), 64, &act, &[&coef]);
    }

    #[test]
    #[should_panic(expected = "beyond width")]
    fn kernel_rejects_bits_beyond_c() {
        let mut kernel = PositionKernel::new(&cfg());
        let coef = [u64::MAX];
        kernel.bind(40, [&coef[..]]);
        let _ = kernel.cost(&[1u64 << 45]);
    }

    #[test]
    #[should_panic(expected = "no layer plan installed")]
    fn bind_planned_without_plan_panics() {
        let mut kernel = PositionKernel::new(&cfg());
        kernel.bind_planned(0);
    }
}
