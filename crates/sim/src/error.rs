//! Typed simulation errors.
//!
//! The trace-driven and detailed fidelities validate their inputs (the
//! workload must be decomposed, the feature map must match the layer
//! shape) and report violations as [`SimError`] values instead of
//! panicking, so the CLI can surface bad inputs as ordinary error
//! messages. `SimError` converts into
//! [`escalate_core::EscalateError`] for callers that mix simulation with
//! the compression pipeline.

use escalate_core::EscalateError;

/// An invalid input to one of the simulation fidelities.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The workload runs on the dense fallback path and has no
    /// coefficient masks to simulate.
    NotDecomposed {
        /// Name of the offending layer.
        layer: String,
    },
    /// The input feature map is not a rank-3 `C×X×Y` tensor.
    BadFeatureMap {
        /// Name of the offending layer.
        layer: String,
        /// The tensor shape that was supplied.
        shape: Vec<usize>,
    },
    /// The layer kind is not supported by the decomposed datapath.
    UnsupportedLayer {
        /// Name of the offending layer.
        layer: String,
        /// The layer kind that cannot be simulated here.
        kind: String,
    },
    /// The feature map's dimensions disagree with the workload's shape.
    ShapeMismatch {
        /// Name of the offending layer.
        layer: String,
        /// `(C, X, Y)` the workload expects.
        expected: [usize; 3],
        /// `(C, X, Y)` the feature map provides.
        got: [usize; 3],
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::NotDecomposed { layer } => {
                write!(f, "layer {layer} is not decomposed; only decomposed workloads have coefficient masks to simulate")
            }
            SimError::UnsupportedLayer { layer, kind } => {
                write!(
                    f,
                    "layer {layer}: {kind} layers have no decomposed datapath; grouped \
                     convolutions run on the dense fallback instead"
                )
            }
            SimError::BadFeatureMap { layer, shape } => {
                write!(
                    f,
                    "layer {layer}: feature map must be a rank-3 C*X*Y tensor, got shape {shape:?}"
                )
            }
            SimError::ShapeMismatch {
                layer,
                expected,
                got,
            } => {
                write!(
                    f,
                    "layer {layer}: feature map is {}x{}x{} but the workload expects {}x{}x{}",
                    got[0], got[1], got[2], expected[0], expected[1], expected[2]
                )
            }
        }
    }
}

impl std::error::Error for SimError {}

impl From<SimError> for EscalateError {
    fn from(e: SimError) -> Self {
        EscalateError::Simulation {
            what: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_names_the_layer() {
        let errs = [
            SimError::NotDecomposed {
                layer: "conv1".into(),
            },
            SimError::BadFeatureMap {
                layer: "conv1".into(),
                shape: vec![3, 4],
            },
            SimError::ShapeMismatch {
                layer: "conv1".into(),
                expected: [64, 8, 8],
                got: [32, 8, 8],
            },
        ];
        for e in errs {
            let s = e.to_string();
            assert!(s.contains("conv1"), "{s}");
        }
    }

    #[test]
    fn converts_into_core_error() {
        let e = EscalateError::from(SimError::NotDecomposed { layer: "fc".into() });
        assert!(e.to_string().contains("fc"));
    }
}
