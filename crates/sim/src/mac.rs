//! MAC-row model (paper §4, Figure 2(a)).
//!
//! Each PE slice ends in a row of `M` MAC units; each MAC holds one basis
//! kernel in a small FIFO loaded before the layer starts. Following the
//! SCNN-style scatter the paper adopts (§4.1), a MAC multiplies each
//! intermediate element produced by its CA with all `R·S` weights of its
//! basis kernel, read-modify-writing products into the partial-sum buffer
//! — so consuming one element takes `R·S` cycles, and the `M` MACs of a
//! slice run in parallel on the `M` intermediate channels of the same
//! position.

/// Timing/occupancy model of one slice's MAC row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MacRow {
    /// Number of MAC units (`M`).
    pub m: usize,
    /// Basis kernel area (`R·S`), i.e. FIFO depth and per-element service
    /// cycles.
    pub kernel_area: usize,
}

impl MacRow {
    /// Creates a MAC row for `m` basis kernels of `kernel_area` weights.
    ///
    /// # Panics
    ///
    /// Panics if either argument is zero.
    pub fn new(m: usize, kernel_area: usize) -> Self {
        assert!(
            m > 0 && kernel_area > 0,
            "MAC row needs positive m and kernel area"
        );
        MacRow { m, kernel_area }
    }

    /// Cycles to consume one position's worth of intermediate elements
    /// (one element per MAC, serviced in parallel).
    pub fn cycles_per_position(&self) -> u64 {
        self.kernel_area as u64
    }

    /// MAC operations issued per position (every MAC scatters `R·S`
    /// products).
    pub fn ops_per_position(&self) -> u64 {
        (self.m * self.kernel_area) as u64
    }

    /// Partial-sum buffer accesses per position: one read-modify-write
    /// (two accesses) per product.
    pub fn psum_accesses_per_position(&self) -> u64 {
        2 * self.ops_per_position()
    }

    /// Idle MAC cycles at a position where the CA stage took `ca_cycles`:
    /// every MAC waits out the difference (§6.2).
    pub fn idle_cycles(&self, ca_cycles: u64) -> u64 {
        ca_cycles.saturating_sub(self.cycles_per_position()) * self.m as u64
    }

    /// The steady-state pipeline time of one position: CA and MAC stages
    /// overlap via double buffering, so the slice advances at the pace of
    /// the slower stage.
    pub fn position_cycles(&self, ca_cycles: u64) -> u64 {
        ca_cycles.max(self.cycles_per_position())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_by_three_kernel_takes_nine_cycles() {
        let row = MacRow::new(6, 9);
        assert_eq!(row.cycles_per_position(), 9);
        assert_eq!(row.ops_per_position(), 54);
        assert_eq!(row.psum_accesses_per_position(), 108);
    }

    #[test]
    fn fast_ca_leaves_macs_busy() {
        let row = MacRow::new(6, 9);
        assert_eq!(row.idle_cycles(4), 0);
        assert_eq!(row.position_cycles(4), 9);
    }

    #[test]
    fn slow_ca_stalls_all_macs() {
        let row = MacRow::new(6, 9);
        assert_eq!(row.idle_cycles(15), 6 * 6);
        assert_eq!(row.position_cycles(15), 15);
    }

    #[test]
    fn pointwise_kernel_is_single_cycle() {
        let row = MacRow::new(1, 1);
        assert_eq!(row.cycles_per_position(), 1);
        assert_eq!(row.position_cycles(3), 3);
        assert_eq!(row.idle_cycles(3), 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_m_rejected() {
        let _ = MacRow::new(0, 9);
    }
}
