//! The [`SimObserver`] → `escalate-obs` adapter: turns the simulation
//! core's event stream into counters and histograms.
//!
//! [`ObsObserver`] follows the batch-locally/flush-coarsely rule of the
//! metrics layer: per-position and per-slice events (millions per model)
//! fold into plain local fields — no lock, no allocation — and reach the
//! shared [`Registry`] in one flush when the observer drops. Layer-level
//! stats flush immediately in [`SimObserver::on_layer`], because they
//! arrive once per layer.
//!
//! # Recorded metrics
//!
//! Counters (engine-visible totals — these reconcile exactly with the
//! [`crate::stats::ModelStats`] a run returns, because they are flushed
//! from the very [`LayerStats`] values the caller receives):
//!
//! - `sim.layers` — layers simulated (fallback layers included);
//! - `sim.fallback_layers` — layers that ran on the dense fallback path;
//! - `sim.cycles`, `sim.mac_ops`, `sim.ca_adds`, `sim.gather_passes`,
//!   `sim.mac_idle_cycles` — sums of the per-layer fields;
//! - `sim.dram_bytes`, `sim.sram_bytes` — total traffic.
//!
//! Counters (sampled-walk internals, from per-position events):
//!
//! - `sim.positions_walked` — (channel, position) pairs actually walked;
//! - `sim.ca_adds_sampled` — matched pairs accumulated during the walk
//!   (pre-extrapolation);
//! - `sim.ca_skip_positions` — walked positions the sparse mechanism
//!   skipped entirely (no coefficient matched any streamed activation);
//! - `sim.buffer_stall_cycles` — cycles the detailed fidelity's streaming
//!   front end stalled on full concentration buffers (buffer conflicts);
//! - `sim.slices_stepped` — cycle-stepped (channel, slice) runs;
//! - `ca.plan_compiles` / `ca.plan_reuses` — channel × position walks
//!   that compiled a fresh kernel [`crate::ca::LayerPlan`] vs reused the
//!   cached one (from per-walk aggregates).
//!
//! Histograms: `sim.position_ca_cycles` (CA cycles per walked position)
//! and `sim.layer_cycles` (cycles per layer).

use crate::context::{PositionAggregate, PositionEvent, SimObserver, SliceEvent};
use crate::stats::LayerStats;
use escalate_obs::{Histogram, Registry};
use std::sync::Arc;

/// A [`SimObserver`] that aggregates the event stream into an
/// `escalate-obs` [`Registry`].
///
/// Create one per simulation run (or per layer — flushes add up). The
/// per-event accumulation is allocation-free; the registry is touched
/// once per layer plus once on drop.
#[derive(Debug)]
pub struct ObsObserver {
    registry: Arc<Registry>,
    positions: u64,
    matched: u64,
    skip_positions: u64,
    stall_cycles: u64,
    slices: u64,
    plan_compiles: u64,
    plan_reuses: u64,
    ca_cycles: Histogram,
}

impl ObsObserver {
    /// An observer recording into `registry`.
    pub fn new(registry: Arc<Registry>) -> Self {
        ObsObserver {
            registry,
            positions: 0,
            matched: 0,
            skip_positions: 0,
            stall_cycles: 0,
            slices: 0,
            plan_compiles: 0,
            plan_reuses: 0,
            ca_cycles: Histogram::new(),
        }
    }

    /// An observer bound to the process-global registry, or `None` when
    /// no recorder is installed (the caller should then use
    /// [`crate::context::NoopObserver`], which costs nothing).
    pub fn from_global() -> Option<ObsObserver> {
        escalate_obs::global().map(ObsObserver::new)
    }

    /// Flushes the locally-accumulated event counters to the registry.
    /// Called automatically on drop; idempotent in between (flushed
    /// values reset to zero).
    pub fn flush(&mut self) {
        let reg = &self.registry;
        for (name, v) in [
            ("sim.positions_walked", &mut self.positions),
            ("sim.ca_adds_sampled", &mut self.matched),
            ("sim.ca_skip_positions", &mut self.skip_positions),
            ("sim.buffer_stall_cycles", &mut self.stall_cycles),
            ("sim.slices_stepped", &mut self.slices),
            ("ca.plan_compiles", &mut self.plan_compiles),
            ("ca.plan_reuses", &mut self.plan_reuses),
        ] {
            if *v > 0 {
                reg.counter_add(name, *v);
                *v = 0;
            }
        }
        reg.merge_histogram("sim.position_ca_cycles", &self.ca_cycles);
        self.ca_cycles = Histogram::new();
    }
}

impl SimObserver for ObsObserver {
    fn on_position(&mut self, ev: &PositionEvent) {
        self.positions += 1;
        self.matched += ev.cost.matched;
        if ev.cost.matched == 0 {
            self.skip_positions += 1;
        }
        self.ca_cycles.observe(ev.cost.ca_cycles);
    }

    fn on_slice(&mut self, ev: &SliceEvent) {
        self.slices += 1;
        self.stall_cycles += ev.trace.stream_stall_cycles;
    }

    fn on_walk(&mut self, agg: &PositionAggregate) {
        // One walk per (layer, seed): batch locally like the per-position
        // events and flush with them.
        self.plan_compiles += agg.plan_compiles;
        self.plan_reuses += agg.plan_reuses;
    }

    fn on_layer(&mut self, stats: &LayerStats) {
        let reg = &self.registry;
        reg.counter_add("sim.layers", 1);
        if stats.fallback {
            reg.counter_add("sim.fallback_layers", 1);
        }
        reg.counter_add("sim.cycles", stats.cycles);
        reg.counter_add("sim.mac_ops", stats.mac_ops);
        reg.counter_add("sim.ca_adds", stats.ca_adds);
        reg.counter_add("sim.gather_passes", stats.gather_passes);
        reg.counter_add("sim.mac_idle_cycles", stats.mac_idle_cycles);
        reg.counter_add("sim.dram_bytes", stats.dram.total());
        reg.counter_add("sim.sram_bytes", stats.sram.total());
        reg.observe("sim.layer_cycles", stats.cycles);
    }
}

impl Drop for ObsObserver {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ca::PositionCost;
    use crate::stats::DramTraffic;

    fn cost(matched: u64, ca_cycles: u64) -> PositionCost {
        PositionCost {
            ca_cycles,
            matched,
            gather_passes: 1,
            stream_cycles: 1,
        }
    }

    #[test]
    fn position_events_batch_and_flush_on_drop() {
        let reg = Arc::new(Registry::new());
        {
            let mut obs = ObsObserver::new(Arc::clone(&reg));
            for (m, c) in [(3, 5), (0, 1), (2, 4)] {
                obs.on_position(&PositionEvent {
                    channel: 0,
                    position: 0,
                    cost: &cost(m, c),
                    mac_row_cycles: c,
                });
            }
            // Nothing reaches the registry before the flush.
            assert_eq!(reg.counter("sim.positions_walked"), 0);
        }
        assert_eq!(reg.counter("sim.positions_walked"), 3);
        assert_eq!(reg.counter("sim.ca_adds_sampled"), 5);
        assert_eq!(reg.counter("sim.ca_skip_positions"), 1);
        let snap = reg.snapshot();
        assert_eq!(snap.histograms["sim.position_ca_cycles"].count(), 3);
        assert_eq!(snap.histograms["sim.position_ca_cycles"].sum(), 10);
    }

    #[test]
    fn flush_is_idempotent() {
        let reg = Arc::new(Registry::new());
        let mut obs = ObsObserver::new(Arc::clone(&reg));
        obs.on_position(&PositionEvent {
            channel: 0,
            position: 0,
            cost: &cost(1, 2),
            mac_row_cycles: 2,
        });
        obs.flush();
        obs.flush();
        drop(obs);
        assert_eq!(reg.counter("sim.positions_walked"), 1);
        assert_eq!(reg.counter("sim.ca_adds_sampled"), 1);
    }

    #[test]
    fn layer_stats_flush_immediately() {
        let reg = Arc::new(Registry::new());
        let mut obs = ObsObserver::new(Arc::clone(&reg));
        let stats = LayerStats {
            name: "l".into(),
            cycles: 100,
            mac_ops: 40,
            ca_adds: 7,
            fallback: true,
            dram: DramTraffic {
                weights: 1,
                ifm: 2,
                ofm: 3,
            },
            ..LayerStats::default()
        };
        obs.on_layer(&stats);
        assert_eq!(reg.counter("sim.layers"), 1);
        assert_eq!(reg.counter("sim.fallback_layers"), 1);
        assert_eq!(reg.counter("sim.cycles"), 100);
        assert_eq!(reg.counter("sim.mac_ops"), 40);
        assert_eq!(reg.counter("sim.ca_adds"), 7);
        assert_eq!(reg.counter("sim.dram_bytes"), 6);
    }
}
