//! Detailed layer simulation: the cycle-stepped slice pipeline scaled out
//! to the full PE array with the Basis-First work-queue schedule.
//!
//! Where [`crate::engine`] samples positions and extrapolates, this mode
//! runs [`crate::slice`] for every (output channel, slice) assignment of
//! a layer against real per-position activation masks and takes the
//! schedule's critical path: blocks pull output channels from a shared
//! queue; a block's time for one channel is its slowest slice; the layer
//! ends when the last block drains. It is exact w.r.t. the slice pipeline
//! but quadratic in layer size — use it for small layers and for
//! validating the engine (see `tests/detailed_validation.rs` and
//! `tests/fidelity.rs`). Layer setup comes from the shared
//! [`LayerContext`]; each stepped slice flows through the
//! [`SimObserver`] hook.

use crate::config::SimConfig;
use crate::context::{LayerContext, NoopObserver, SimObserver, SliceEvent};
use crate::error::SimError;
use crate::masks::position_masks;
use crate::slice::{run_slice, PositionInput, SliceTrace};
use crate::workload::LayerWorkload;
use escalate_tensor::Tensor;

/// Result of a detailed layer run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DetailedStats {
    /// Layer cycles: the critical path of the block-level work queue.
    pub cycles: u64,
    /// Sum of all slices' MAC idle cycles.
    pub mac_idle_cycles: u64,
    /// Sum of all slices' stream stalls.
    pub stream_stall_cycles: u64,
    /// Total matched pairs accumulated.
    pub matched: u64,
    /// Output-channel assignments executed.
    pub channels: usize,
}

/// Runs a decomposed layer in detailed mode against a concrete input
/// feature map.
///
/// # Errors
///
/// Returns a [`SimError`] if the workload is not decomposed or the
/// feature map disagrees with the layer shape.
pub fn simulate_layer_detailed(
    lw: &LayerWorkload,
    cfg: &SimConfig,
    ifm: &Tensor,
) -> Result<DetailedStats, SimError> {
    match crate::observe::ObsObserver::from_global() {
        Some(mut obs) => simulate_layer_detailed_observed(lw, cfg, ifm, &mut obs),
        None => simulate_layer_detailed_observed(lw, cfg, ifm, &mut NoopObserver),
    }
}

/// [`simulate_layer_detailed`] with a [`SimObserver`] receiving every
/// cycle-stepped slice trace.
///
/// # Errors
///
/// See [`simulate_layer_detailed`].
pub fn simulate_layer_detailed_observed(
    lw: &LayerWorkload,
    cfg: &SimConfig,
    ifm: &Tensor,
    obs: &mut dyn SimObserver,
) -> Result<DetailedStats, SimError> {
    let ctx = LayerContext::new(lw, cfg)?;
    ctx.validate_ifm(ifm)?;
    let (c, m, k_total) = (ctx.c, ctx.m, ctx.k_total);
    let y = lw.shape.y;

    // Per-position activation masks, grouped by slice ownership
    // (row i → slice i % l).
    let pos_masks = position_masks(ifm);
    let slice_rows: Vec<Vec<usize>> = (0..cfg.l)
        .map(|s| (s..lw.shape.x).step_by(cfg.l).collect())
        .collect();

    // Per output channel: the slowest slice's cycle count.
    let mut channel_time = Vec::with_capacity(k_total);
    let mut total = DetailedStats::default();
    for k in 0..k_total {
        let coef_masks: Vec<Vec<u64>> = (0..m).map(|mi| ctx.masks.mask(k, mi).to_vec()).collect();
        let mut worst = 0u64;
        for (si, rows) in slice_rows.iter().enumerate() {
            if rows.is_empty() {
                continue;
            }
            let positions: Vec<PositionInput> = rows
                .iter()
                .flat_map(|&xi| (0..y).map(move |yi| xi * y + yi))
                .map(|p| PositionInput {
                    act_mask: pos_masks[p].clone(),
                    coef_masks: coef_masks.clone(),
                    c,
                })
                .collect();
            let t: SliceTrace = run_slice(cfg, m, ctx.rs, &positions);
            obs.on_slice(&SliceEvent {
                channel: k,
                slice: si,
                trace: &t,
            });
            worst = worst.max(t.cycles);
            total.mac_idle_cycles += t.mac_idle_cycles;
            total.stream_stall_cycles += t.stream_stall_cycles;
            total.matched += t.matched;
        }
        channel_time.push(worst);
    }
    total.channels = k_total;

    // Work-queue schedule over N_PE blocks: longest-processing-time-first
    // is what the hardware's greedy pull approximates; we replay the
    // in-order pull (channels arrive in index order).
    let mut block_loads = vec![0u64; cfg.n_pe];
    for &t in &channel_time {
        let idx = block_loads
            .iter()
            .enumerate()
            .min_by_key(|&(_, &load)| load)
            .map(|(i, _)| i)
            .expect("at least one block");
        block_loads[idx] += t;
    }
    total.cycles = block_loads.into_iter().max().unwrap_or(0);
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{CoefMasks, WorkloadMode};
    use escalate_core::quant::TernaryCoeffs;
    use escalate_models::{synth, LayerShape};

    fn workload(c: usize, k: usize, x: usize, coef_sparsity: f64) -> (LayerWorkload, Tensor) {
        let coeffs = Tensor::from_fn(&[k, c, 6], |i| {
            let h = (i[0] * 7919 + i[1] * 104729 + i[2] * 1299709) % 1000;
            if (h as f64) < coef_sparsity * 1000.0 {
                0.0
            } else {
                1.0
            }
        });
        let t = TernaryCoeffs::ternarize(&coeffs, 0.0).unwrap();
        let shape = LayerShape::conv("d", c, k, x, x, 3, 1, 1);
        let ifm = synth::activations(&shape, 0.5, 7);
        (
            LayerWorkload {
                name: "detailed".into(),
                shape,
                out_channels: k,
                mode: WorkloadMode::Decomposed(CoefMasks::from_ternary(&t)),
                act_sparsity: 0.5,
                out_sparsity: 0.5,
                weight_bytes: 100,
            },
            ifm,
        )
    }

    #[test]
    fn covers_every_channel_and_counts_matches() {
        let (lw, ifm) = workload(32, 8, 6, 0.8);
        let d = simulate_layer_detailed(&lw, &SimConfig::default(), &ifm).unwrap();
        assert_eq!(d.channels, 8);
        assert!(d.cycles > 0);
        assert!(d.matched > 0);
    }

    #[test]
    fn more_channels_than_blocks_serialize() {
        let cfg = SimConfig::default();
        let (small, ifm_s) = workload(16, 32, 6, 0.9);
        let (large, ifm_l) = workload(16, 96, 6, 0.9);
        let ds = simulate_layer_detailed(&small, &cfg, &ifm_s).unwrap();
        let dl = simulate_layer_detailed(&large, &cfg, &ifm_l).unwrap();
        // 96 channels over 32 blocks = 3 rounds vs 1: ~3x the time.
        let ratio = dl.cycles as f64 / ds.cycles as f64;
        assert!((2.0..4.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn dense_coefficients_cost_more_than_sparse() {
        let cfg = SimConfig::default();
        let (dense, ifm_d) = workload(128, 8, 6, 0.2);
        let (sparse, ifm_s) = workload(128, 8, 6, 0.98);
        let dd = simulate_layer_detailed(&dense, &cfg, &ifm_d).unwrap();
        let ds = simulate_layer_detailed(&sparse, &cfg, &ifm_s).unwrap();
        assert!(dd.cycles >= ds.cycles);
        assert!(dd.matched > ds.matched);
    }

    #[test]
    fn bad_inputs_return_typed_errors() {
        let (lw, _) = workload(32, 8, 6, 0.8);
        let cfg = SimConfig::default();
        let err = simulate_layer_detailed(&lw, &cfg, &Tensor::zeros(&[32, 7, 6])).unwrap_err();
        assert!(matches!(err, SimError::ShapeMismatch { .. }), "{err}");
    }

    #[test]
    fn observer_sees_every_stepped_slice() {
        struct Slices(usize);
        impl crate::context::SimObserver for Slices {
            fn on_slice(&mut self, _ev: &SliceEvent) {
                self.0 += 1;
            }
        }
        let (lw, ifm) = workload(32, 8, 6, 0.8);
        let cfg = SimConfig::default();
        let mut obs = Slices(0);
        simulate_layer_detailed_observed(&lw, &cfg, &ifm, &mut obs).unwrap();
        // 6 rows over l=5 slices: 5 non-empty slices per channel.
        assert_eq!(obs.0, 8 * 5);
    }
}
