//! Cycle-stepped model of one PE slice (Figure 2(a), executed cycle by
//! cycle).
//!
//! The throughput engine in [`crate::engine`] estimates a slice's time per
//! position as `max(stream, concentration, R·S)`. This module implements
//! the slice as an explicit cycle-by-cycle pipeline — chunk streaming into
//! the `M` channel accumulators, per-cycle concentration drains, a small
//! element FIFO between each CA and its MAC, and `R·S`-cycle MAC service —
//! and is used by the test suite to validate the engine's abstraction the
//! way the paper validates its simulator against the RTL.
//!
//! The model is exact about structural hazards (FIFO back-pressure, bus
//! occupancy, drain/arrival overlap) but, like the rest of the simulator,
//! does not model wire-level timing.

use crate::config::SimConfig;
use escalate_sparse::{dilute, ConcentrationBuffer, DilutionInput};

/// The work of one input position for one output channel: the activation
/// mask over `C` channels plus each accumulator's coefficient mask.
#[derive(Debug, Clone)]
pub struct PositionInput {
    /// Activation nonzero mask, one bit per input channel.
    pub act_mask: Vec<u64>,
    /// Coefficient masks, one per CA (length `M`), same word count.
    pub coef_masks: Vec<Vec<u64>>,
    /// Number of input channels covered.
    pub c: usize,
}

/// Result of running a slice trace cycle by cycle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SliceTrace {
    /// Total cycles until the last MAC finished.
    pub cycles: u64,
    /// Cycles each MAC spent idle waiting for its CA, summed over MACs.
    pub mac_idle_cycles: u64,
    /// Cycles the streaming front end stalled on full CA buffers.
    pub stream_stall_cycles: u64,
    /// Elements delivered to the MACs (positions × M).
    pub elements: u64,
    /// Matched (activation, coefficient) pairs accumulated.
    pub matched: u64,
}

/// Per-CA pipeline state.
struct CaState {
    buf: ConcentrationBuffer,
    /// Rows still to drain for the current position after stream end.
    draining: bool,
    /// Completed elements waiting for the MAC (FIFO depth 2).
    fifo: usize,
}

/// Runs one slice over a sequence of positions, cycle-stepped.
///
/// The slice processes positions in order: the bus streams the current
/// position's needed chunks (one per cycle, shared by all CAs); each CA
/// dilutes the chunk into its concentration buffer and drains up to one
/// row per cycle into its adder tree; when a position's stream has ended
/// and a CA's buffer is empty, the accumulated element enters that CA's
/// output FIFO; each MAC pops its FIFO and is busy `R·S` cycles per
/// element. Streaming of position `p+1` may begin while MACs work on `p`
/// (double buffering), but stalls when any CA FIFO is full.
///
/// # Panics
///
/// Panics if the positions' mask word counts are inconsistent with `c` or
/// the number of coefficient masks differs from `m`.
pub fn run_slice(cfg: &SimConfig, m: usize, rs: usize, positions: &[PositionInput]) -> SliceTrace {
    assert!(m > 0 && rs > 0, "slice needs positive m and kernel area");
    let bus = cfg.bus_elems().max(1);
    let mut trace = SliceTrace::default();

    // Pre-dilute every position into per-CA slot streams and the fetched
    // chunk schedule (which chunks of the compressed stream the slice
    // requests). This mirrors the mask pipeline running ahead of the
    // datapath (§4.2.2): mask work never blocks the value stream.
    struct Prepared {
        /// Per chunk: per CA the diluted slots (empty when chunk skipped).
        chunks: Vec<Vec<Vec<Option<f32>>>>,
    }
    let prepared: Vec<Prepared> = positions
        .iter()
        .map(|p| {
            let words = p.c.div_ceil(64);
            assert_eq!(p.act_mask.len(), words, "act mask word count");
            assert_eq!(p.coef_masks.len(), m, "one coefficient mask per CA");
            // Enumerate nonzero activation positions in order.
            let mut nz: Vec<usize> = Vec::new();
            for w in 0..words {
                let mut word = p.act_mask[w];
                while word != 0 {
                    let b = word.trailing_zeros() as usize;
                    word &= word - 1;
                    nz.push(w * 64 + b);
                }
            }
            let mut chunks = Vec::new();
            for group in nz.chunks(bus) {
                // Build a dilution input per CA restricted to this chunk.
                let mut per_ca = Vec::with_capacity(m);
                let mut needed = false;
                for cm in &p.coef_masks {
                    assert_eq!(cm.len(), words, "coef mask word count");
                    let mut act_map = 0u64;
                    let mut coef_map = 0u64;
                    for (i, &pos) in group.iter().enumerate() {
                        act_map |= 1u64 << i;
                        if cm[pos / 64] >> (pos % 64) & 1 == 1 {
                            coef_map |= 1u64 << i;
                        }
                    }
                    let act_values = vec![1.0f32; group.len()];
                    let coef_signs = vec![false; coef_map.count_ones() as usize];
                    let out = dilute(&DilutionInput {
                        act_values: &act_values,
                        act_map,
                        coef_signs: &coef_signs,
                        coef_map,
                        width: group.len(),
                    });
                    if out.matched > 0 {
                        needed = true;
                    }
                    per_ca.push(out.slots);
                }
                if needed {
                    chunks.push(per_ca);
                } // fully-unmatched chunks are never requested (§4.2.1)
            }
            Prepared { chunks }
        })
        .collect();

    // Cycle loop.
    let mut cas: Vec<CaState> = (0..m)
        .map(|_| CaState {
            buf: ConcentrationBuffer::new(bus, cfg.look_ahead, cfg.look_aside),
            draining: false,
            fifo: 0,
        })
        .collect();
    let mut mac_busy = vec![0u64; m];
    let mut pos_idx = 0usize; // position currently streaming
    let mut chunk_idx = 0usize;
    let mut consumed = vec![0u64; m]; // elements fully processed per MAC
    let total_positions = positions.len() as u64;
    let mut cycle = 0u64;
    let deadline = 1_000_000u64 + positions.len() as u64 * 10_000;

    while consumed.iter().any(|&c| c < total_positions) {
        cycle += 1;
        assert!(cycle < deadline, "slice model did not converge");

        // MACs: count down busy time, pop FIFOs.
        for i in 0..m {
            if mac_busy[i] > 0 {
                mac_busy[i] -= 1;
                if mac_busy[i] == 0 {
                    consumed[i] += 1;
                }
            }
            if mac_busy[i] == 0 && cas[i].fifo > 0 {
                cas[i].fifo -= 1;
                mac_busy[i] = rs as u64;
            } else if mac_busy[i] == 0 && consumed[i] < total_positions {
                trace.mac_idle_cycles += 1;
            }
        }

        // CAs: drain one concentration row per cycle; finish elements.
        for ca in cas.iter_mut() {
            if ca.draining {
                if ca.buf.pending_rows() > 0 {
                    // One adder-tree row per cycle.
                    let _ = ca.buf.drain_one();
                }
                if ca.buf.pending_rows() == 0 && ca.fifo < 2 {
                    ca.fifo += 1;
                    ca.draining = false;
                    trace.elements += 1;
                }
            }
        }

        // Stream: deliver one chunk of the current position to all CAs,
        // unless a CA is still finishing the previous position (its
        // element has not yet entered the FIFO) — structural hazard.
        if pos_idx < positions.len() {
            let busy = cas.iter().any(|ca| ca.draining || ca.fifo >= 2);
            if busy && chunk_idx == 0 {
                trace.stream_stall_cycles += 1;
            } else {
                let p = &prepared[pos_idx];
                if chunk_idx < p.chunks.len() {
                    for (ca, slots) in cas.iter_mut().zip(&p.chunks[chunk_idx]) {
                        trace.matched += slots.iter().flatten().count() as u64;
                        ca.buf.push_slots(slots);
                    }
                    chunk_idx += 1;
                }
                if chunk_idx >= p.chunks.len() {
                    // Position fully streamed: barrier; CAs drain and then
                    // emit their elements.
                    for ca in cas.iter_mut() {
                        ca.draining = true;
                    }
                    pos_idx += 1;
                    chunk_idx = 0;
                }
            }
        }
    }

    trace.cycles = cycle;
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn position(
        c: usize,
        act_density: f64,
        coef_density: f64,
        m: usize,
        rng: &mut StdRng,
    ) -> PositionInput {
        let words = c.div_ceil(64);
        let mut act = vec![0u64; words];
        for i in 0..c {
            if rng.gen_bool(act_density) {
                act[i / 64] |= 1 << (i % 64);
            }
        }
        let coefs = (0..m)
            .map(|_| {
                let mut w = vec![0u64; words];
                for i in 0..c {
                    if rng.gen_bool(coef_density) {
                        w[i / 64] |= 1 << (i % 64);
                    }
                }
                w
            })
            .collect();
        PositionInput {
            act_mask: act,
            coef_masks: coefs,
            c,
        }
    }

    fn run(c: usize, ad: f64, cd: f64, m: usize, rs: usize, n: usize, seed: u64) -> SliceTrace {
        let mut rng = StdRng::seed_from_u64(seed);
        let positions: Vec<PositionInput> =
            (0..n).map(|_| position(c, ad, cd, m, &mut rng)).collect();
        run_slice(&SimConfig::default(), m, rs, &positions)
    }

    #[test]
    fn mac_bound_workload_runs_at_rs_per_position() {
        // Few activations, dense coefficients: stream and concentration
        // are trivially fast, so the slice paces at R·S per position.
        let t = run(32, 0.2, 0.9, 6, 9, 50, 1);
        let per_pos = t.cycles as f64 / 50.0;
        assert!(
            (9.0..14.0).contains(&per_pos),
            "got {per_pos} cycles/position"
        );
        assert!(
            t.mac_idle_cycles < t.cycles * 2,
            "MACs should be mostly busy"
        );
    }

    #[test]
    fn stream_bound_workload_paces_at_chunk_rate() {
        // 512 dense activations (32 chunks) and dense coefficients: the
        // bus dominates the 9-cycle MAC service time.
        let t = run(512, 0.9, 0.9, 6, 9, 20, 2);
        let per_pos = t.cycles as f64 / 20.0;
        assert!(per_pos > 25.0, "expected stream-bound pace, got {per_pos}");
        assert!(
            t.mac_idle_cycles > 0,
            "MACs must idle on a stream-bound slice"
        );
    }

    #[test]
    fn chunk_skipping_accelerates_sparse_coefficients() {
        let dense = run(512, 0.5, 0.6, 6, 9, 20, 3);
        let sparse = run(512, 0.5, 0.005, 6, 9, 20, 3);
        assert!(
            sparse.cycles < dense.cycles,
            "skipped chunks must save cycles: {} vs {}",
            sparse.cycles,
            dense.cycles
        );
        assert!(sparse.matched < dense.matched);
    }

    #[test]
    fn elements_cover_every_position_and_ca() {
        let t = run(64, 0.5, 0.5, 4, 9, 30, 4);
        assert_eq!(t.elements, 30 * 4);
    }

    #[test]
    fn empty_positions_still_produce_elements() {
        // All-zero activations: every CA still emits its (zero) element so
        // the MACs stay in lockstep with the position sequence.
        let t = run(64, 0.0, 0.5, 3, 9, 10, 5);
        assert_eq!(t.elements, 30);
        assert!(t.cycles >= 9 * 10);
    }
}
