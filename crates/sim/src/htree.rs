//! The H-tree request network of the distributed input buffers
//! (paper §4.3).
//!
//! Buffer-access requests from the PE slices are collected through a
//! binary tree of arbitrators. Each node forwards the *earliest* chunk ID
//! among its children's requests (the greedy policy that drains the
//! circular queue in order) and counts how many slices the winning
//! request can be broadcast to, so one buffer read serves every slice
//! waiting on that chunk.

use crate::buffers::arbitrate;

/// A binary H-tree arbitrating `leaves` slice requests per cycle.
#[derive(Debug, Clone)]
pub struct HTree {
    leaves: usize,
    levels: usize,
    stats: HTreeStats,
}

/// Counters for an H-tree.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HTreeStats {
    /// Arbitration rounds performed.
    pub rounds: u64,
    /// Winning requests issued to the buffer.
    pub grants: u64,
    /// Total requesters served (merged into the grants).
    pub served: u64,
    /// Requests deferred to a later round.
    pub deferred: u64,
}

impl HTree {
    /// Creates a tree over `leaves` slices.
    ///
    /// # Panics
    ///
    /// Panics if `leaves` is zero.
    pub fn new(leaves: usize) -> Self {
        assert!(leaves > 0, "H-tree needs at least one leaf");
        let levels = (usize::BITS - (leaves - 1).leading_zeros()) as usize;
        HTree {
            leaves,
            levels,
            stats: HTreeStats::default(),
        }
    }

    /// Number of arbitration levels (request latency in cycles).
    pub fn levels(&self) -> usize {
        self.levels.max(1)
    }

    /// One arbitration round: `requests[i]` is slice `i`'s outstanding
    /// chunk ID (or `None`). Returns the winning chunk and how many
    /// slices it serves, or `None` when no slice is requesting.
    ///
    /// # Panics
    ///
    /// Panics if `requests.len()` differs from the leaf count.
    pub fn round(&mut self, requests: &[Option<u64>]) -> Option<(u64, u32)> {
        assert_eq!(requests.len(), self.leaves, "one request slot per leaf");
        self.stats.rounds += 1;
        // Level-by-level pairwise merge, each node applying the greedy
        // earliest-chunk policy.
        let mut level: Vec<Option<(u64, u32)>> =
            requests.iter().map(|r| r.map(|id| (id, 1u32))).collect();
        while level.len() > 1 {
            level = level
                .chunks(2)
                .map(|pair| match pair {
                    [Some((a, na)), Some((b, nb))] => {
                        if a == b {
                            Some((*a, na + nb))
                        } else if a < b {
                            Some((*a, *na))
                        } else {
                            Some((*b, *nb))
                        }
                    }
                    [one] | [one, None] => *one,
                    [None, other] => *other,
                    _ => unreachable!("chunks(2) yields 1- or 2-element slices"),
                })
                .collect();
        }
        let winner = level[0];
        if let Some((id, n)) = winner {
            self.stats.grants += 1;
            self.stats.served += n as u64;
            let requesting = requests.iter().flatten().count() as u64;
            self.stats.deferred += requesting - n as u64;
            Some((id, n))
        } else {
            None
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> HTreeStats {
        self.stats
    }

    /// Drains a full request pattern to completion: every slice has an
    /// ordered list of chunk IDs to read; each round grants one chunk and
    /// advances the slices it served. Returns the number of rounds.
    pub fn drain(&mut self, mut pending: Vec<std::collections::VecDeque<u64>>) -> u64 {
        assert_eq!(pending.len(), self.leaves, "one queue per leaf");
        let mut rounds = 0u64;
        loop {
            let requests: Vec<Option<u64>> = pending.iter().map(|q| q.front().copied()).collect();
            match self.round(&requests) {
                None => break,
                Some((id, _)) => {
                    rounds += 1;
                    for q in pending.iter_mut() {
                        if q.front() == Some(&id) {
                            q.pop_front();
                        }
                    }
                }
            }
        }
        rounds
    }
}

/// Sanity re-export check: the leaf arbitration policy matches the tree's.
pub fn leaf_policy(requests: &[u64]) -> Option<(u64, u32)> {
    arbitrate(requests)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    #[test]
    fn levels_are_log2() {
        assert_eq!(HTree::new(1).levels(), 1);
        assert_eq!(HTree::new(2).levels(), 1);
        assert_eq!(HTree::new(5).levels(), 3);
        assert_eq!(HTree::new(32).levels(), 5);
    }

    #[test]
    fn tree_matches_flat_arbitration() {
        let mut tree = HTree::new(8);
        let reqs = [
            Some(7u64),
            Some(3),
            None,
            Some(3),
            Some(9),
            None,
            Some(3),
            Some(12),
        ];
        let flat: Vec<u64> = reqs.iter().flatten().copied().collect();
        assert_eq!(tree.round(&reqs), leaf_policy(&flat));
        assert_eq!(tree.round(&reqs), Some((3, 3)));
    }

    #[test]
    fn empty_round_grants_nothing() {
        let mut tree = HTree::new(4);
        assert_eq!(tree.round(&[None; 4]), None);
        assert_eq!(tree.stats().grants, 0);
    }

    #[test]
    fn identical_requests_merge_into_one_broadcast() {
        let mut tree = HTree::new(32);
        let reqs = vec![Some(5u64); 32];
        assert_eq!(tree.round(&reqs), Some((5, 32)));
        let s = tree.stats();
        assert_eq!(s.grants, 1);
        assert_eq!(s.served, 32);
        assert_eq!(s.deferred, 0);
    }

    #[test]
    fn in_order_consumers_drain_in_chunk_count_rounds() {
        // All slices read chunks 0..N in lockstep: one round per chunk.
        let mut tree = HTree::new(8);
        let queues: Vec<VecDeque<u64>> = (0..8).map(|_| (0..100u64).collect()).collect();
        assert_eq!(tree.drain(queues), 100);
    }

    #[test]
    fn skewed_consumers_still_drain_without_starvation() {
        // Slices offset by their index: earliest-chunk priority serves the
        // laggard first, so everyone finishes.
        let mut tree = HTree::new(4);
        let queues: Vec<VecDeque<u64>> = (0..4).map(|s| (s as u64..100).collect()).collect();
        let rounds = tree.drain(queues);
        // Lower bound: the union of requested chunks; upper bound: the sum.
        assert!(rounds >= 100);
        assert!(rounds <= 4 * 100);
        assert_eq!(tree.stats().served, 100 + (100 - 1) + (100 - 2) + (100 - 3));
    }

    #[test]
    fn greedy_priority_prefers_earliest() {
        let mut tree = HTree::new(2);
        // The slice asking for the older chunk wins every round.
        assert_eq!(tree.round(&[Some(10), Some(2)]), Some((2, 1)));
        assert_eq!(tree.stats().deferred, 1);
    }
}
