//! Trace-driven simulation on real activation tensors.
//!
//! The throughput engine draws synthetic per-position activation masks
//! from the layer's sparsity (a Bernoulli model). This module instead
//! consumes an actual `C×X×Y` feature map — e.g. one produced by
//! `escalate_models::synth::activations`, or a real intermediate map from
//! the algorithm crate's forward passes — walks *every* position, and
//! runs the same bit-exact CA cost model. It is the reproduction's
//! trace-based mode (the paper's simulators are fully trace driven), used
//! to validate the sampling engine and available for exact small-layer
//! studies.

use crate::ca::{position_cost_with, CaScratch};
use crate::config::SimConfig;
use crate::dataflow::Mapping;
use crate::mac::MacRow;
use crate::stats::LayerStats;
use crate::workload::{LayerWorkload, WorkloadMode};
use escalate_tensor::Tensor;

/// Extracts the per-position activation nonzero masks from a `C×X×Y`
/// feature map: element `[x*Y + y]` holds one bit per channel.
///
/// # Panics
///
/// Panics if `ifm` is not rank-3.
pub fn position_masks(ifm: &Tensor) -> Vec<Vec<u64>> {
    let [c, x, y]: [usize; 3] = ifm.shape().try_into().expect("ifm must be C*X*Y");
    let words = c.div_ceil(64);
    let mut masks = vec![vec![0u64; words]; x * y];
    let data = ifm.as_slice();
    for ci in 0..c {
        for xi in 0..x {
            for yi in 0..y {
                if data[(ci * x + xi) * y + yi] != 0.0 {
                    masks[xi * y + yi][ci / 64] |= 1u64 << (ci % 64);
                }
            }
        }
    }
    masks
}

/// Simulates a decomposed layer against a concrete input feature map,
/// walking every position of every sampled output channel (all channels
/// when `K ≤ 32`).
///
/// Returns the same [`LayerStats`] the sampling engine produces; traffic
/// accounting uses the map's true nonzero count rather than the profile
/// sparsity.
///
/// # Panics
///
/// Panics if the workload is not decomposed, or the feature map's shape
/// disagrees with the workload's.
pub fn simulate_layer_traced(lw: &LayerWorkload, cfg: &SimConfig, ifm: &Tensor) -> LayerStats {
    let WorkloadMode::Decomposed(masks) = &lw.mode else {
        panic!("trace-driven simulation requires a decomposed workload");
    };
    let [c, x, y]: [usize; 3] = ifm.shape().try_into().expect("ifm must be C*X*Y");
    assert_eq!(c, masks.c(), "feature-map channels must match the workload");
    assert_eq!((x, y), (lw.shape.x, lw.shape.y), "feature-map size must match the workload");

    let k_total = masks.k();
    let m = masks.m();
    let rs = (lw.shape.r * lw.shape.s).div_ceil(lw.shape.stride * lw.shape.stride).max(1);
    let mac_row = MacRow::new(m, rs);
    let parallel_k = if m == 1 { cfg.m.max(1) } else { 1 };
    let mapping = Mapping::new(cfg, k_total.div_ceil(parallel_k), lw.shape.x);

    let pos_masks = position_masks(ifm);
    let sk = k_total.min(32);
    let sampled_k = crate::engine::stratified_channels(masks, sk);

    let mut sum_pos_cycles = 0.0f64;
    let mut matched = 0.0f64;
    let mut gather = 0.0f64;
    let mut idle = 0.0f64;
    let mut max_block_time = 0.0f64;
    let mut coef_masks: Vec<&[u64]> = Vec::with_capacity(m);
    let mut scratch = CaScratch::new(cfg);
    for &k in &sampled_k {
        coef_masks.clear();
        coef_masks.extend((0..m).map(|mi| masks.mask(k, mi)));
        let mut k_cycles = 0.0f64;
        for am in &pos_masks {
            let cost = position_cost_with(cfg, c, am, &coef_masks, &mut scratch);
            k_cycles += mac_row.position_cycles(cost.ca_cycles) as f64;
            matched += cost.matched as f64;
            gather += cost.gather_passes as f64;
            idle += mac_row.idle_cycles(cost.ca_cycles) as f64;
        }
        // Per-slice share of this channel's rows.
        let slice_share = (mapping.rows_per_slice() * lw.shape.y) as f64 / pos_masks.len() as f64;
        sum_pos_cycles += k_cycles;
        max_block_time = max_block_time.max(k_cycles * slice_share);
    }

    let scale = k_total as f64 / sampled_k.len() as f64;
    let positions_frac = (mapping.rows_per_slice() * lw.shape.y) as f64 / pos_masks.len() as f64;
    let total_block_work = sum_pos_cycles * scale * positions_frac / parallel_k as f64;
    let compute_cycles = (total_block_work / cfg.n_pe as f64).max(max_block_time).ceil() as u64;

    // Exact compressed stream size from the Figure 4(a) layout (values +
    // 2-level maps across the l slice streams).
    let streams = escalate_sparse::actcodec::encode_feature_map(ifm.as_slice(), c, x, y, cfg.l);
    let nnz_act_bytes = ifm.nnz() as u64;
    let ifm_bytes: u64 = streams.iter().map(|s| s.size_bits(8) as u64).sum::<u64>().div_ceil(8);
    let rounds = mapping.rounds() as u64;
    let ifm_loads = if ifm_bytes <= cfg.total_input_buf_bytes() as u64 { 1 } else { rounds };
    let ofm_dense = (lw.out_channels * lw.shape.out_x() * lw.shape.out_y()) as u64;
    let ofm_bytes = (ofm_dense as f64 * (1.0 - lw.out_sparsity)).ceil() as u64 + ofm_dense.div_ceil(8);
    let dram_total = lw.weight_bytes + ifm_bytes * ifm_loads + ofm_bytes;
    let dram_cycles = (dram_total as f64 / cfg.dram_bytes_per_cycle).ceil() as u64;

    LayerStats {
        name: lw.name.clone(),
        cycles: compute_cycles.max(dram_cycles).max(1),
        mac_ops: (k_total * pos_masks.len()) as u64 * mac_row.ops_per_position(),
        ca_adds: (matched * scale) as u64,
        gather_passes: (gather * scale) as u64,
        mac_idle_cycles: (idle * scale) as u64,
        mac_cycle_slots: (sum_pos_cycles * scale * m as f64).max(1.0) as u64,
        dram: crate::stats::DramTraffic {
            weights: lw.weight_bytes,
            ifm: ifm_bytes * ifm_loads,
            ofm: ofm_bytes,
        },
        sram: crate::stats::SramTraffic {
            input_buf: nnz_act_bytes * rounds + ifm_bytes * ifm_loads,
            coef_buf: (k_total * pos_masks.len()) as u64,
            psum_buf: (k_total * pos_masks.len()) as u64 * mac_row.psum_accesses_per_position() * 2,
            output_buf: ofm_bytes,
            act_buf: (matched * scale) as u64,
        },
        fallback: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate_layer;
    use crate::workload::CoefMasks;
    use escalate_core::quant::TernaryCoeffs;
    use escalate_models::{synth, LayerShape};

    fn workload(c: usize, k: usize, x: usize, coef_sparsity: f64, act_sparsity: f64) -> LayerWorkload {
        let m = 6;
        let coeffs = Tensor::from_fn(&[k, c, m], |i| {
            let h = (i[0] * 7919 + i[1] * 104729 + i[2] * 1299709) % 1000;
            if (h as f64) < coef_sparsity * 1000.0 {
                0.0
            } else if h % 2 == 0 {
                1.0
            } else {
                -1.0
            }
        });
        let t = TernaryCoeffs::ternarize(&coeffs, 0.0).unwrap();
        LayerWorkload {
            name: format!("tr{c}x{k}"),
            shape: LayerShape::conv("t", c, k, x, x, 3, 1, 1),
            out_channels: k,
            mode: WorkloadMode::Decomposed(CoefMasks::from_ternary(&t)),
            act_sparsity,
            out_sparsity: act_sparsity,
            weight_bytes: 1000,
        }
    }

    #[test]
    fn position_masks_match_tensor_pattern() {
        let l = LayerShape::conv("t", 70, 8, 6, 6, 3, 1, 1);
        let ifm = synth::activations(&l, 0.5, 3);
        let masks = position_masks(&ifm);
        assert_eq!(masks.len(), 36);
        for xi in 0..6 {
            for yi in 0..6 {
                for ci in 0..70 {
                    let bit = masks[xi * 6 + yi][ci / 64] >> (ci % 64) & 1 == 1;
                    assert_eq!(bit, ifm.get(&[ci, xi, yi]) != 0.0);
                }
            }
        }
    }

    #[test]
    fn traced_and_sampled_agree_on_matched_statistics() {
        let lw = workload(96, 32, 12, 0.9, 0.5);
        let ifm = synth::activations(&lw.shape, 0.5, 11);
        let traced = simulate_layer_traced(&lw, &SimConfig::default(), &ifm);
        let sampled = simulate_layer(&lw, &SimConfig::default(), 0);
        // Same op model.
        assert_eq!(traced.mac_ops, sampled.mac_ops);
        // Matched-pair estimates within 15% (different randomness, same
        // statistics).
        let ratio = traced.ca_adds as f64 / sampled.ca_adds.max(1) as f64;
        assert!((0.85..1.18).contains(&ratio), "ca_adds ratio {ratio}");
    }

    #[test]
    fn traced_and_sampled_cycles_agree() {
        for (cs, as_) in [(0.95, 0.6), (0.7, 0.3)] {
            let lw = workload(128, 64, 10, cs, as_);
            let ifm = synth::activations(&lw.shape, as_, 5);
            let traced = simulate_layer_traced(&lw, &SimConfig::default(), &ifm).cycles as f64;
            let sampled = simulate_layer(&lw, &SimConfig::default(), 0).cycles as f64;
            let ratio = traced / sampled;
            assert!((0.75..1.35).contains(&ratio), "cs={cs} as={as_}: ratio {ratio}");
        }
    }

    #[test]
    fn spatially_correlated_activations_shift_costs() {
        // The synthetic generator produces spatially-correlated maps; the
        // traced run must still produce finite, covered stats.
        let lw = workload(64, 16, 8, 0.8, 0.7);
        let ifm = synth::activations(&lw.shape, 0.7, 21);
        let t = simulate_layer_traced(&lw, &SimConfig::default(), &ifm);
        assert!(t.cycles > 0);
        assert!(t.ca_adds > 0);
        assert_eq!(t.dram.weights, 1000);
    }

    #[test]
    #[should_panic(expected = "decomposed workload")]
    fn dense_workloads_are_rejected() {
        let lw = LayerWorkload {
            name: "d".into(),
            shape: LayerShape::conv("d", 3, 8, 8, 8, 3, 1, 1),
            out_channels: 8,
            mode: WorkloadMode::Dense,
            act_sparsity: 0.5,
            out_sparsity: 0.5,
            weight_bytes: 10,
        };
        let ifm = Tensor::zeros(&[3, 8, 8]);
        let _ = simulate_layer_traced(&lw, &SimConfig::default(), &ifm);
    }
}
