//! Trace-driven simulation on real activation tensors.
//!
//! The throughput engine draws synthetic per-position activation masks
//! from the layer's sparsity (a Bernoulli model). This module instead
//! consumes an actual `C×X×Y` feature map — e.g. one produced by
//! `escalate_models::synth::activations`, or a real intermediate map from
//! the algorithm crate's forward passes — walks *every* position of the
//! sampled channels through the shared core ([`crate::context`]), and
//! runs the same bit-exact CA cost model. It is the reproduction's
//! trace-based mode (the paper's simulators are fully trace driven), used
//! to validate the sampling engine and available for exact small-layer
//! studies (set `SimConfig::sample_channels` to `K` for full channel
//! coverage).

use crate::config::SimConfig;
use crate::context::{
    assemble_stats, run_positions, LayerContext, NoopObserver, SimObserver, TrafficInputs,
};
use crate::error::SimError;
use crate::masks::MaskSource;
use crate::stats::LayerStats;
use crate::workload::LayerWorkload;
use escalate_tensor::Tensor;

pub use crate::masks::position_masks;

/// Simulates a decomposed layer against a concrete input feature map,
/// walking every position of every sampled output channel
/// (`cfg.sample_channels` of them; all channels when `K` is smaller).
///
/// Returns the same [`LayerStats`] the sampling engine produces; traffic
/// accounting uses the map's true nonzero count rather than the profile
/// sparsity.
///
/// # Errors
///
/// Returns a [`SimError`] if the workload is not decomposed, or the
/// feature map's shape disagrees with the workload's.
///
/// As with the sampled engine, an installed process-global metrics
/// recorder receives the run's events; otherwise this is the zero-cost
/// no-op path.
pub fn simulate_layer_traced(
    lw: &LayerWorkload,
    cfg: &SimConfig,
    ifm: &Tensor,
) -> Result<LayerStats, SimError> {
    match crate::observe::ObsObserver::from_global() {
        Some(mut obs) => simulate_layer_traced_observed(lw, cfg, ifm, &mut obs),
        None => simulate_layer_traced_observed(lw, cfg, ifm, &mut NoopObserver),
    }
}

/// [`simulate_layer_traced`] with a [`SimObserver`] receiving every
/// walked position's CA cost.
///
/// # Errors
///
/// See [`simulate_layer_traced`].
pub fn simulate_layer_traced_observed(
    lw: &LayerWorkload,
    cfg: &SimConfig,
    ifm: &Tensor,
    obs: &mut dyn SimObserver,
) -> Result<LayerStats, SimError> {
    let ctx = LayerContext::new(lw, cfg)?;
    ctx.validate_ifm(ifm)?;

    let pos_masks = position_masks(ifm);
    let sampled_k = ctx.sample_channels(cfg);
    let mut source = MaskSource::trace(&pos_masks);
    let agg = run_positions(&ctx, cfg, &sampled_k, &mut source, obs);

    // Exact compressed stream size from the Figure 4(a) layout (values +
    // 2-level maps across the l slice streams).
    let streams = escalate_sparse::actcodec::encode_feature_map(
        ifm.as_slice(),
        ctx.c,
        lw.shape.x,
        lw.shape.y,
        cfg.l,
    );
    let nnz_act_bytes = ifm.nnz() as u64;
    let ifm_bytes: u64 = streams
        .iter()
        .map(|s| s.size_bits(8) as u64)
        .sum::<u64>()
        .div_ceil(8);
    let stats = assemble_stats(
        &ctx,
        cfg,
        &agg,
        &TrafficInputs {
            nnz_act_bytes,
            ifm_bytes,
        },
    );
    obs.on_layer(&stats);
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate_layer;
    use crate::workload::{CoefMasks, WorkloadMode};
    use escalate_core::quant::TernaryCoeffs;
    use escalate_models::{synth, LayerShape};

    fn workload(
        c: usize,
        k: usize,
        x: usize,
        coef_sparsity: f64,
        act_sparsity: f64,
    ) -> LayerWorkload {
        let m = 6;
        let coeffs = Tensor::from_fn(&[k, c, m], |i| {
            let h = (i[0] * 7919 + i[1] * 104729 + i[2] * 1299709) % 1000;
            if (h as f64) < coef_sparsity * 1000.0 {
                0.0
            } else if h % 2 == 0 {
                1.0
            } else {
                -1.0
            }
        });
        let t = TernaryCoeffs::ternarize(&coeffs, 0.0).unwrap();
        LayerWorkload {
            name: format!("tr{c}x{k}"),
            shape: LayerShape::conv("t", c, k, x, x, 3, 1, 1),
            out_channels: k,
            mode: WorkloadMode::Decomposed(CoefMasks::from_ternary(&t)),
            act_sparsity,
            out_sparsity: act_sparsity,
            weight_bytes: 1000,
        }
    }

    #[test]
    fn position_masks_match_tensor_pattern() {
        let l = LayerShape::conv("t", 70, 8, 6, 6, 3, 1, 1);
        let ifm = synth::activations(&l, 0.5, 3);
        let masks = position_masks(&ifm);
        assert_eq!(masks.len(), 36);
        for xi in 0..6 {
            for yi in 0..6 {
                for ci in 0..70 {
                    let bit = masks[xi * 6 + yi][ci / 64] >> (ci % 64) & 1 == 1;
                    assert_eq!(bit, ifm.get(&[ci, xi, yi]) != 0.0);
                }
            }
        }
    }

    #[test]
    fn traced_and_sampled_agree_on_matched_statistics() {
        let lw = workload(96, 32, 12, 0.9, 0.5);
        let ifm = synth::activations(&lw.shape, 0.5, 11);
        let traced = simulate_layer_traced(&lw, &SimConfig::default(), &ifm).unwrap();
        let sampled = simulate_layer(&lw, &SimConfig::default(), 0);
        // Same op model.
        assert_eq!(traced.mac_ops, sampled.mac_ops);
        // Matched-pair estimates within 20% (both fidelities now walk the
        // same stratified channel sample; the randomness differs — real
        // spatially-correlated map vs Bernoulli draws).
        let ratio = crate::stats::checked_ratio(traced.ca_adds, sampled.ca_adds)
            .expect("sampled run matched zero pairs");
        assert!((0.8..1.25).contains(&ratio), "ca_adds ratio {ratio}");
    }

    #[test]
    fn traced_and_sampled_cycles_agree() {
        for (cs, as_) in [(0.95, 0.6), (0.7, 0.3)] {
            let lw = workload(128, 64, 10, cs, as_);
            let ifm = synth::activations(&lw.shape, as_, 5);
            let traced = simulate_layer_traced(&lw, &SimConfig::default(), &ifm)
                .unwrap()
                .cycles as f64;
            let sampled = simulate_layer(&lw, &SimConfig::default(), 0).cycles as f64;
            let ratio = traced / sampled;
            assert!(
                (0.75..1.35).contains(&ratio),
                "cs={cs} as={as_}: ratio {ratio}"
            );
        }
    }

    #[test]
    fn spatially_correlated_activations_shift_costs() {
        // The synthetic generator produces spatially-correlated maps; the
        // traced run must still produce finite, covered stats.
        let lw = workload(64, 16, 8, 0.8, 0.7);
        let ifm = synth::activations(&lw.shape, 0.7, 21);
        let t = simulate_layer_traced(&lw, &SimConfig::default(), &ifm).unwrap();
        assert!(t.cycles > 0);
        assert!(t.ca_adds > 0);
        assert_eq!(t.dram.weights, 1000);
    }

    #[test]
    fn dense_workloads_are_rejected() {
        let lw = LayerWorkload {
            name: "d".into(),
            shape: LayerShape::conv("d", 3, 8, 8, 8, 3, 1, 1),
            out_channels: 8,
            mode: WorkloadMode::Dense,
            act_sparsity: 0.5,
            out_sparsity: 0.5,
            weight_bytes: 10,
        };
        let ifm = Tensor::zeros(&[3, 8, 8]);
        let err = simulate_layer_traced(&lw, &SimConfig::default(), &ifm).unwrap_err();
        assert!(matches!(err, SimError::NotDecomposed { .. }), "{err}");
    }

    #[test]
    fn mismatched_feature_maps_are_rejected() {
        let lw = workload(64, 16, 8, 0.8, 0.5);
        let cfg = SimConfig::default();
        let wrong_rank = Tensor::zeros(&[64, 8]);
        assert!(matches!(
            simulate_layer_traced(&lw, &cfg, &wrong_rank),
            Err(SimError::BadFeatureMap { .. })
        ));
        let wrong_shape = Tensor::zeros(&[64, 9, 8]);
        assert!(matches!(
            simulate_layer_traced(&lw, &cfg, &wrong_shape),
            Err(SimError::ShapeMismatch { .. })
        ));
    }
}
