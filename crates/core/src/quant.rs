//! Hybrid quantization (paper §3.2).
//!
//! The two decomposed weight components have very different reuse
//! frequencies: the `M` basis kernels participate in every output-channel
//! computation, while each coefficient is used for exactly one
//! (input, output)-channel pair. ESCALATE therefore keeps the basis at
//! 8 bits and pushes the coefficients to *ternary* values with per-filter
//! positive/negative scaling factors (Eq. (4)). To keep the hardware
//! multiplier-free in stage 1, the negative/positive scale quotient is
//! further quantized to a 2-bit shift code so the sign can be attached to
//! each activation and the negative scale applied as a shift.

use crate::decompose::Decomposed;
use crate::error::EscalateError;
use escalate_tensor::Tensor;

/// Linearly (symmetrically) quantizes a tensor to the given bit width,
/// returning the dequantized tensor and the storage cost in bits.
///
/// Used for the basis kernels (8 bits by default) and for the uniform /
/// basis-only policies of the Figure 7 sweep.
///
/// # Errors
///
/// Returns [`EscalateError::InvalidQuantization`] when `bits` is 0 or > 16.
pub fn quantize_linear(t: &Tensor, bits: u32) -> Result<(Tensor, usize), EscalateError> {
    if bits == 0 || bits > 16 {
        return Err(EscalateError::InvalidQuantization {
            what: format!("bits={bits}"),
        });
    }
    let qmax = ((1i32 << (bits - 1)) - 1) as f32;
    let max = t.max_abs();
    if max == 0.0 {
        return Ok((t.clone(), t.len() * bits as usize + 32));
    }
    let scale = max / qmax;
    let deq = t.map(|v| (v / scale).round().clamp(-qmax, qmax) * scale);
    // Storage: `bits` per value plus one fp32 scale.
    Ok((deq, t.len() * bits as usize + 32))
}

/// Linearly quantizes a tensor with one symmetric scale per contiguous
/// group of `group_len` elements (e.g. per output-channel coefficient
/// slice), returning the dequantized tensor and the storage cost in bits.
///
/// # Errors
///
/// Returns [`EscalateError::InvalidQuantization`] when `bits` is 0 or > 16,
/// or when `group_len` is zero or does not divide the tensor length.
pub fn quantize_linear_grouped(
    t: &Tensor,
    bits: u32,
    group_len: usize,
) -> Result<(Tensor, usize), EscalateError> {
    if bits == 0 || bits > 16 {
        return Err(EscalateError::InvalidQuantization {
            what: format!("bits={bits}"),
        });
    }
    if group_len == 0 || !t.len().is_multiple_of(group_len) {
        return Err(EscalateError::InvalidQuantization {
            what: format!("group_len={group_len}"),
        });
    }
    let qmax = ((1i32 << (bits - 1)) - 1) as f32;
    let mut out = Vec::with_capacity(t.len());
    let groups = t.len() / group_len;
    for g in 0..groups {
        let slice = &t.as_slice()[g * group_len..(g + 1) * group_len];
        let max = slice.iter().fold(0.0f32, |a, &v| a.max(v.abs()));
        if max == 0.0 {
            out.extend_from_slice(slice);
            continue;
        }
        let scale = max / qmax;
        out.extend(
            slice
                .iter()
                .map(|&v| (v / scale).round().clamp(-qmax, qmax) * scale),
        );
    }
    // Storage: `bits` per value plus one 8-bit scale per group.
    let size = t.len() * bits as usize + groups * 8;
    Ok((Tensor::from_vec(t.shape(), out), size))
}

/// Re-quantizes an output feature map (`K×X'×Y'`) to `bits` with one
/// symmetric scale per output channel — the §3.2 step that matches each
/// channel's range after the per-filter coefficient scaling, so the next
/// layer receives uniformly-scaled 8-bit activations.
///
/// Returns the dequantized map and the per-channel scales.
///
/// # Errors
///
/// Returns [`EscalateError::InvalidQuantization`] when `bits` is 0 or > 16.
///
/// # Panics
///
/// Panics if `ofm` is not rank-3.
pub fn requantize_output(ofm: &Tensor, bits: u32) -> Result<(Tensor, Vec<f32>), EscalateError> {
    if bits == 0 || bits > 16 {
        return Err(EscalateError::InvalidQuantization {
            what: format!("bits={bits}"),
        });
    }
    let [k, x, y]: [usize; 3] = ofm.shape().try_into().expect("ofm must be K*X'*Y'");
    let plane = x * y;
    let qmax = ((1i32 << (bits - 1)) - 1) as f32;
    let mut out = Vec::with_capacity(ofm.len());
    let mut scales = Vec::with_capacity(k);
    for ki in 0..k {
        let slice = &ofm.as_slice()[ki * plane..(ki + 1) * plane];
        let max = slice.iter().fold(0.0f32, |a, &v| a.max(v.abs()));
        let scale = if max == 0.0 { 1.0 } else { max / qmax };
        scales.push(scale);
        out.extend(
            slice
                .iter()
                .map(|&v| (v / scale).round().clamp(-qmax, qmax) * scale),
        );
    }
    Ok((Tensor::from_vec(ofm.shape(), out), scales))
}

/// The 8-bit quantized basis kernels.
#[derive(Debug, Clone)]
pub struct QuantizedBasis {
    /// Quantized integer values, `M×R×S` in row-major order.
    pub q: Vec<i8>,
    /// Symmetric scale: real value = `q * scale`.
    pub scale: f32,
    shape: [usize; 3],
}

impl QuantizedBasis {
    /// Quantizes a basis tensor (`M×R×S`) to 8 bits symmetric.
    ///
    /// # Panics
    ///
    /// Panics if `basis` is not rank-3.
    pub fn quantize(basis: &Tensor) -> Self {
        let shape: [usize; 3] = basis.shape().try_into().expect("basis must be M*R*S");
        let max = basis.max_abs();
        let scale = if max == 0.0 { 1.0 } else { max / 127.0 };
        let q = basis
            .as_slice()
            .iter()
            .map(|&v| (v / scale).round().clamp(-127.0, 127.0) as i8)
            .collect();
        QuantizedBasis { q, scale, shape }
    }

    /// Dequantizes back to an `M×R×S` tensor.
    pub fn dequantize(&self) -> Tensor {
        Tensor::from_vec(
            &self.shape,
            self.q.iter().map(|&v| v as f32 * self.scale).collect(),
        )
    }

    /// Storage cost in bits (8 per value plus the fp32 scale).
    pub fn size_bits(&self) -> usize {
        self.q.len() * 8 + 32
    }

    /// Shape `[M, R, S]`.
    pub fn shape(&self) -> [usize; 3] {
        self.shape
    }
}

/// The 2-bit quotient codebook: the negative scale is the positive scale
/// shifted by `QUOTIENT_SHIFTS[code]` bit positions.
pub const QUOTIENT_SHIFTS: [i8; 4] = [-1, 0, 1, 2];

/// The quotient multiplier for a 2-bit code.
pub fn quotient_value(code: u8) -> f32 {
    debug_assert!(code < 4, "quotient codes are 2 bits");
    2.0f32.powi(QUOTIENT_SHIFTS[code as usize & 3] as i32)
}

/// Encodes a positive quotient to the nearest 2-bit shift code.
pub fn encode_quotient(q: f32) -> u8 {
    let mut best = 0u8;
    let mut best_err = f32::INFINITY;
    for code in 0..4u8 {
        let err = (quotient_value(code) - q).abs();
        if err < best_err {
            best = code;
            best_err = err;
        }
    }
    best
}

/// Ternary coefficients with per-filter scaling (Eq. (4)).
#[derive(Debug, Clone)]
pub struct TernaryCoeffs {
    /// Ternary values in `{-1, 0, +1}`, `K×C×M` row-major.
    pub ternary: Vec<i8>,
    /// Per-output-channel positive scaling factor `w_k^pos`.
    pub w_pos: Vec<f32>,
    /// Per-output-channel 2-bit quotient code; the effective negative
    /// scale is `w_pos[k] * quotient_value(code[k])`.
    pub quotient_code: Vec<u8>,
    pub(crate) shape: [usize; 3],
}

impl TernaryCoeffs {
    /// Ternarizes a `K×C×M` coefficient tensor with threshold factor `t`
    /// (Eq. (4)): values within `t·max|slice|` become zero; survivors map
    /// to `±1` with per-slice scales initialized to the mean magnitude of
    /// the surviving values on each side (the standard TTQ/TWN
    /// initialization, refined further by [`crate::qat`]).
    ///
    /// # Errors
    ///
    /// Returns [`EscalateError::InvalidQuantization`] unless `0 ≤ t < 1`.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs` is not rank-3.
    pub fn ternarize(coeffs: &Tensor, t: f32) -> Result<Self, EscalateError> {
        if !(0.0..1.0).contains(&t) {
            return Err(EscalateError::InvalidQuantization {
                what: format!("t={t}"),
            });
        }
        let shape: [usize; 3] = coeffs.shape().try_into().expect("coeffs must be K*C*M");
        let [k, c, m] = shape;
        let slice_len = c * m;
        let mut ternary = vec![0i8; k * slice_len];
        let mut w_pos = Vec::with_capacity(k);
        let mut quotient_code = Vec::with_capacity(k);
        for ki in 0..k {
            let slice = &coeffs.as_slice()[ki * slice_len..(ki + 1) * slice_len];
            let max = slice.iter().fold(0.0f32, |a, &v| a.max(v.abs()));
            let thr = t * max;
            let mut pos_sum = 0.0f32;
            let mut pos_n = 0usize;
            let mut neg_sum = 0.0f32;
            let mut neg_n = 0usize;
            for (i, &v) in slice.iter().enumerate() {
                if v > thr {
                    ternary[ki * slice_len + i] = 1;
                    pos_sum += v;
                    pos_n += 1;
                } else if v < -thr {
                    ternary[ki * slice_len + i] = -1;
                    neg_sum += -v;
                    neg_n += 1;
                }
            }
            let wp = if pos_n > 0 {
                pos_sum / pos_n as f32
            } else {
                max.max(f32::MIN_POSITIVE)
            };
            let wn = if neg_n > 0 {
                neg_sum / neg_n as f32
            } else {
                wp
            };
            w_pos.push(wp);
            quotient_code.push(encode_quotient(wn / wp));
        }
        Ok(TernaryCoeffs {
            ternary,
            w_pos,
            quotient_code,
            shape,
        })
    }

    /// Shape `[K, C, M]`.
    pub fn shape(&self) -> [usize; 3] {
        self.shape
    }

    /// The effective negative scale for output channel `k`.
    pub fn w_neg(&self, k: usize) -> f32 {
        self.w_pos[k] * quotient_value(self.quotient_code[k])
    }

    /// Fraction of zero ternary values.
    pub fn sparsity(&self) -> f64 {
        if self.ternary.is_empty() {
            return 0.0;
        }
        self.ternary.iter().filter(|&&v| v == 0).count() as f64 / self.ternary.len() as f64
    }

    /// Number of nonzero ternary values.
    pub fn nnz(&self) -> usize {
        self.ternary.iter().filter(|&&v| v != 0).count()
    }

    /// Number of surviving `(k, c)` coefficient groups — input-output
    /// channel pairs with at least one nonzero coefficient across the `M`
    /// bases. This is the "remaining connections" count behind Table 1's
    /// pruning-ratio column: a pruned kernel connection disappears only
    /// when all of its basis coefficients are zero.
    pub fn nonzero_groups(&self) -> usize {
        let [k, c, m] = self.shape;
        let mut groups = 0;
        for g in 0..k * c {
            if self.ternary[g * m..(g + 1) * m].iter().any(|&v| v != 0) {
                groups += 1;
            }
        }
        groups
    }

    /// Dequantizes to a full `K×C×M` tensor.
    pub fn dequantize(&self) -> Tensor {
        let [_, c, m] = self.shape;
        let slice_len = c * m;
        let data = self
            .ternary
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                let ki = i / slice_len;
                match v {
                    1 => self.w_pos[ki],
                    -1 => -self.w_neg(ki),
                    _ => 0.0,
                }
            })
            .collect();
        Tensor::from_vec(&self.shape, data)
    }

    /// The ternary slice (length `C*M`) for output channel `k`.
    pub fn slice(&self, k: usize) -> &[i8] {
        let [_, c, m] = self.shape;
        &self.ternary[k * c * m..(k + 1) * c * m]
    }
}

/// Finds a threshold factor `t` such that [`TernaryCoeffs::ternarize`]
/// yields at least the target sparsity.
///
/// Eq. (4) zeroes an element when `|c| ≤ t · max|slice|`, so the smallest
/// sufficient `t` is the target-quantile of the per-element ratios
/// `|c| / max|slice|` — computed exactly in one pass plus a sort.
pub fn threshold_for_sparsity(coeffs: &Tensor, target: f64) -> f32 {
    let shape: [usize; 3] = coeffs.shape().try_into().expect("coeffs must be K*C*M");
    let [k, c, m] = shape;
    let slice_len = c * m;
    let mut ratios = Vec::with_capacity(coeffs.len());
    for ki in 0..k {
        let slice = &coeffs.as_slice()[ki * slice_len..(ki + 1) * slice_len];
        let max = slice.iter().fold(0.0f32, |a, &v| a.max(v.abs()));
        if max == 0.0 {
            ratios.extend(std::iter::repeat_n(0.0f32, slice.len()));
        } else {
            ratios.extend(slice.iter().map(|&v| v.abs() / max));
        }
    }
    if ratios.is_empty() {
        return 0.0;
    }
    ratios.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = ratios.len();
    let idx = ((target * n as f64).ceil() as usize)
        .min(n)
        .saturating_sub(1);
    ratios[idx].clamp(0.0, 0.999)
}

/// A fully hybrid-quantized decomposed layer: 8-bit basis plus ternary
/// coefficients.
///
/// # Examples
///
/// ```
/// use escalate_core::{decompose, HybridQuantized};
/// use escalate_tensor::Tensor;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let w = Tensor::from_fn(&[8, 4, 3, 3], |i| ((i[0] * 7 + i[1] * 3 + i[2] + i[3]) % 5) as f32 - 2.0);
/// let d = decompose(&w, 4)?;
/// let h = HybridQuantized::quantize(&d, 0.05)?;
/// assert!(h.coeffs.sparsity() >= 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct HybridQuantized {
    /// 8-bit basis kernels.
    pub basis: QuantizedBasis,
    /// Ternary coefficients with per-filter scales.
    pub coeffs: TernaryCoeffs,
}

impl HybridQuantized {
    /// Quantizes a decomposition with threshold factor `t`.
    ///
    /// # Errors
    ///
    /// Propagates [`EscalateError::InvalidQuantization`] for a bad `t`.
    pub fn quantize(d: &Decomposed, t: f32) -> Result<Self, EscalateError> {
        Ok(HybridQuantized {
            basis: QuantizedBasis::quantize(&d.basis),
            coeffs: TernaryCoeffs::ternarize(&d.coeffs, t)?,
        })
    }

    /// Reconstructs a dequantized [`Decomposed`] for forward evaluation.
    pub fn to_decomposed(&self) -> Decomposed {
        Decomposed {
            basis: self.basis.dequantize(),
            coeffs: self.coeffs.dequantize(),
            captured_energy: 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::decompose;

    fn coeffs(k: usize, c: usize, m: usize) -> Tensor {
        Tensor::from_fn(&[k, c, m], |i| {
            let v = ((i[0] * 13 + i[1] * 7 + i[2] * 3) % 17) as f32 - 8.0;
            v * 0.1
        })
    }

    #[test]
    fn linear_quant_error_shrinks_with_bits() {
        let t = coeffs(4, 6, 5);
        let mut last = f32::INFINITY;
        for bits in [2u32, 4, 6, 8, 12] {
            let (deq, _) = quantize_linear(&t, bits).unwrap();
            let err = t.relative_error(&deq);
            assert!(err <= last + 1e-6, "bits={bits}");
            last = err;
        }
        assert!(last < 1e-3);
    }

    #[test]
    fn linear_quant_rejects_bad_bits() {
        let t = coeffs(2, 2, 2);
        assert!(quantize_linear(&t, 0).is_err());
        assert!(quantize_linear(&t, 17).is_err());
    }

    #[test]
    fn grouped_quant_beats_global_on_varied_scales() {
        // Two slices with wildly different magnitudes: a global scale
        // crushes the small slice, per-slice scales do not.
        let t = Tensor::from_fn(&[2, 4, 4], |i| {
            let v = ((i[1] * 4 + i[2]) as f32 * 0.37).sin();
            if i[0] == 0 {
                v * 100.0
            } else {
                v * 0.01
            }
        });
        let (global, _) = quantize_linear(&t, 4).unwrap();
        let (grouped, _) = quantize_linear_grouped(&t, 4, 16).unwrap();
        assert!(t.relative_error(&grouped) < t.relative_error(&global));
    }

    #[test]
    fn grouped_quant_rejects_bad_groups() {
        let t = coeffs(2, 3, 2);
        assert!(quantize_linear_grouped(&t, 4, 0).is_err());
        assert!(quantize_linear_grouped(&t, 4, 5).is_err());
        assert!(quantize_linear_grouped(&t, 0, 6).is_err());
    }

    #[test]
    fn grouped_quant_error_shrinks_with_bits() {
        let t = coeffs(4, 6, 5);
        let mut last = f32::INFINITY;
        for bits in [2u32, 4, 8] {
            let (deq, _) = quantize_linear_grouped(&t, bits, 30).unwrap();
            let err = t.relative_error(&deq);
            assert!(err <= last + 1e-6, "bits={bits}");
            last = err;
        }
    }

    #[test]
    fn linear_quant_zero_tensor_is_exact() {
        let z = Tensor::zeros(&[3, 3]);
        let (deq, _) = quantize_linear(&z, 4).unwrap();
        assert_eq!(deq, z);
    }

    #[test]
    fn basis_roundtrip_is_tight() {
        let b = Tensor::from_fn(&[3, 3, 3], |i| ((i[0] + i[1] * 2 + i[2] * 4) as f32).sin());
        let q = QuantizedBasis::quantize(&b);
        assert!(
            b.relative_error(&q.dequantize()) < 0.02,
            "8-bit error too high"
        );
        assert_eq!(q.size_bits(), 27 * 8 + 32);
    }

    #[test]
    fn quotient_codebook_roundtrips() {
        for code in 0..4u8 {
            assert_eq!(encode_quotient(quotient_value(code)), code);
        }
        assert_eq!(encode_quotient(0.9), 1); // nearest to 1.0
        assert_eq!(encode_quotient(3.2), 3); // nearest to 4.0
    }

    #[test]
    fn ternarize_threshold_zero_keeps_all_nonzeros() {
        let c = coeffs(4, 3, 2);
        let t = TernaryCoeffs::ternarize(&c, 0.0).unwrap();
        let nonzeros = c.as_slice().iter().filter(|&&v| v != 0.0).count();
        assert_eq!(t.nnz(), nonzeros);
    }

    #[test]
    fn ternarize_sparsity_monotone_in_t() {
        let c = coeffs(6, 8, 6);
        let mut last = -1.0;
        for &t in &[0.0f32, 0.1, 0.3, 0.5, 0.8] {
            let s = TernaryCoeffs::ternarize(&c, t).unwrap().sparsity();
            assert!(s >= last, "t={t}");
            last = s;
        }
    }

    #[test]
    fn ternarize_rejects_bad_threshold() {
        let c = coeffs(2, 2, 2);
        assert!(TernaryCoeffs::ternarize(&c, 1.0).is_err());
        assert!(TernaryCoeffs::ternarize(&c, -0.1).is_err());
    }

    #[test]
    fn dequantize_respects_signs_and_scales() {
        let c = coeffs(3, 4, 2);
        let t = TernaryCoeffs::ternarize(&c, 0.1).unwrap();
        let d = t.dequantize();
        let slice_len = 8;
        for (i, (&tv, &dv)) in t.ternary.iter().zip(d.as_slice()).enumerate() {
            let k = i / slice_len;
            match tv {
                1 => assert!((dv - t.w_pos[k]).abs() < 1e-6),
                -1 => assert!((dv + t.w_neg(k)).abs() < 1e-6),
                _ => assert_eq!(dv, 0.0),
            }
        }
    }

    #[test]
    fn threshold_search_hits_target() {
        // Continuous values (no ties) so the quantile is sharp.
        let c = Tensor::from_fn(&[8, 16, 6], |i| {
            ((i[0] * 769 + i[1] * 97 + i[2] * 13) as f32 * 0.7315).sin()
        });
        for target in [0.5f64, 0.8, 0.95] {
            let t = threshold_for_sparsity(&c, target);
            let got = TernaryCoeffs::ternarize(&c, t).unwrap().sparsity();
            assert!((got - target).abs() < 0.02, "target={target} got={got}");
        }
    }

    #[test]
    fn hybrid_quantized_forward_error_is_bounded() {
        let w = Tensor::from_fn(&[8, 4, 3, 3], |i| {
            (((i[0] * 31 + i[1] * 17 + i[2] * 5 + i[3]) % 23) as f32 - 11.0) * 0.05
        });
        let d = decompose(&w, 6).unwrap();
        let h = HybridQuantized::quantize(&d, 0.05).unwrap();
        let dq = h.to_decomposed();
        // Ternarization is coarse but must stay in a sane range on
        // well-behaved weights.
        let err = d.coeffs.relative_error(&dq.coeffs);
        assert!(err < 0.9, "ternary coeff error {err} out of range");
        // The basis is 8-bit: nearly exact.
        assert!(d.basis.relative_error(&dq.basis) < 0.02);
    }

    #[test]
    fn requantize_output_per_channel_scales() {
        // Channels with very different ranges each keep 8-bit resolution.
        let ofm = Tensor::from_fn(&[2, 4, 4], |i| {
            let v = ((i[1] * 4 + i[2]) as f32 * 0.41).sin();
            if i[0] == 0 {
                v * 50.0
            } else {
                v * 0.05
            }
        });
        let (deq, scales) = requantize_output(&ofm, 8).unwrap();
        assert_eq!(scales.len(), 2);
        assert!(scales[0] > scales[1]);
        assert!(
            ofm.relative_error(&deq) < 0.01,
            "8-bit per-channel should be tight"
        );
    }

    #[test]
    fn requantize_rejects_bad_bits() {
        let ofm = Tensor::zeros(&[1, 2, 2]);
        assert!(requantize_output(&ofm, 0).is_err());
        assert!(requantize_output(&ofm, 17).is_err());
    }

    #[test]
    fn requantize_zero_channel_is_exact() {
        let ofm = Tensor::zeros(&[2, 3, 3]);
        let (deq, scales) = requantize_output(&ofm, 8).unwrap();
        assert_eq!(deq, ofm);
        assert_eq!(scales, vec![1.0, 1.0]);
    }

    #[test]
    fn slice_accessor_is_consistent() {
        let c = coeffs(3, 2, 2);
        let t = TernaryCoeffs::ternarize(&c, 0.2).unwrap();
        for k in 0..3 {
            assert_eq!(t.slice(k), &t.ternary[k * 4..(k + 1) * 4]);
        }
    }
}
