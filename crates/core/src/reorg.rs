//! The two computation orders of decomposed convolution (paper §3.1).
//!
//! Eq. (2) — the original PENNI order — performs the shared-kernel
//! convolutions first, producing `C·M` intermediate feature maps, then
//! accumulates them per output channel. Eq. (3) — the ESCALATE
//! reorganization — exploits distributivity to accumulate the `C` input
//! maps into `M` mixed maps *first* and convolve each with its basis
//! kernel once per output channel, shrinking the intermediate state and
//! raising reuse (each input map is used `C·M`→`K·M` times).

use crate::decompose::Decomposed;
use escalate_tensor::{conv, Tensor};

/// Forward pass in the Eq. (2) order: basis convolutions first, then
/// weighted accumulation.
///
/// `input` is `C×X×Y`; the result is `K×X'×Y'`. Also returns the number of
/// intermediate feature-map elements materialized, which is the
/// computational-bottleneck metric motivating the reorganization.
pub fn forward_eq2(d: &Decomposed, input: &Tensor, stride: usize, pad: usize) -> (Tensor, usize) {
    let [c, x, y]: [usize; 3] = input.shape().try_into().expect("input must be C*X*Y");
    assert_eq!(c, d.c(), "input channels must match decomposition");
    let ox = conv::conv_out_size(x, d.r(), stride, pad);
    let oy = conv::conv_out_size(y, d.s(), stride, pad);

    // Stage 1: depthwise-style basis convolutions → C*M intermediate maps.
    let mut inter = Vec::with_capacity(c * d.m());
    for ci in 0..c {
        let plane = Tensor::from_vec(
            &[x, y],
            input.as_slice()[ci * x * y..(ci + 1) * x * y].to_vec(),
        );
        for mi in 0..d.m() {
            inter.push(conv::conv2d_single(
                &plane,
                &d.basis_kernel(mi),
                stride,
                pad,
            ));
        }
    }
    let inter_elems = inter.iter().map(Tensor::len).sum();

    // Stage 2: weighted accumulation across C*M maps per output channel.
    let mut out = Tensor::zeros(&[d.k(), ox, oy]);
    for k in 0..d.k() {
        let mut acc = Tensor::zeros(&[ox, oy]);
        for ci in 0..c {
            for mi in 0..d.m() {
                let w = d.coeff(k, ci, mi);
                if w != 0.0 {
                    acc.axpy(w, &inter[ci * d.m() + mi]);
                }
            }
        }
        out.as_mut_slice()[k * ox * oy..(k + 1) * ox * oy].copy_from_slice(acc.as_slice());
    }
    (out, inter_elems)
}

/// Forward pass in the Eq. (3) order: per-output-channel weighted
/// accumulation of the *input* maps first, then `M` basis convolutions.
///
/// `input` is `C×X×Y`; the result is `K×X'×Y'`. Also returns the number of
/// intermediate feature-map elements materialized (now only `M` maps of
/// input size per output channel, and only `M` live at a time).
pub fn forward_eq3(d: &Decomposed, input: &Tensor, stride: usize, pad: usize) -> (Tensor, usize) {
    let [c, x, y]: [usize; 3] = input.shape().try_into().expect("input must be C*X*Y");
    assert_eq!(c, d.c(), "input channels must match decomposition");
    let ox = conv::conv_out_size(x, d.r(), stride, pad);
    let oy = conv::conv_out_size(y, d.s(), stride, pad);
    let plane = x * y;

    let mut out = Tensor::zeros(&[d.k(), ox, oy]);
    // Only M maps are ever live: the per-k mixed maps.
    let inter_elems = d.m() * plane;
    for k in 0..d.k() {
        for mi in 0..d.m() {
            // Stage 1: weighted accumulation of input maps.
            let mut mixed = Tensor::zeros(&[x, y]);
            for ci in 0..c {
                let w = d.coeff(k, ci, mi);
                if w == 0.0 {
                    continue;
                }
                let src = &input.as_slice()[ci * plane..(ci + 1) * plane];
                for (dst, &s) in mixed.as_mut_slice().iter_mut().zip(src) {
                    *dst += w * s;
                }
            }
            // Stage 2: one basis convolution, accumulated into the output.
            let contrib = conv::conv2d_single(&mixed, &d.basis_kernel(mi), stride, pad);
            let dst = &mut out.as_mut_slice()[k * ox * oy..(k + 1) * ox * oy];
            for (d_, &s) in dst.iter_mut().zip(contrib.as_slice()) {
                *d_ += s;
            }
        }
    }
    (out, inter_elems)
}

/// Count of intermediate feature-map elements under each order, for the
/// ablation bench: Eq. (2) materializes `C·M` output-sized maps, Eq. (3)
/// only `M` input-sized maps at a time.
pub fn intermediate_footprint(
    d: &Decomposed,
    x: usize,
    y: usize,
    stride: usize,
    pad: usize,
) -> (usize, usize) {
    let ox = conv::conv_out_size(x, d.r(), stride, pad);
    let oy = conv::conv_out_size(y, d.s(), stride, pad);
    (d.c() * d.m() * ox * oy, d.m() * x * y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::decompose;
    use escalate_tensor::conv::conv2d;

    fn setup(k: usize, c: usize, m: usize) -> (Decomposed, Tensor, Tensor) {
        let w = Tensor::from_fn(&[k, c, 3, 3], |i| {
            (((i[0] * 31 + i[1] * 17 + i[2] * 5 + i[3] * 3) % 13) as f32 - 6.0) * 0.1
        });
        let d = decompose(&w, m).unwrap();
        let input = Tensor::from_fn(&[c, 8, 8], |i| {
            (((i[0] * 7 + i[1] * 3 + i[2]) % 9) as f32 - 4.0) * 0.25
        });
        (d, w, input)
    }

    #[test]
    fn eq2_and_eq3_agree() {
        let (d, _, input) = setup(6, 4, 3);
        let (o2, _) = forward_eq2(&d, &input, 1, 1);
        let (o3, _) = forward_eq3(&d, &input, 1, 1);
        assert!(
            o2.all_close(&o3, 1e-3),
            "rel err {}",
            o2.relative_error(&o3)
        );
    }

    #[test]
    fn full_rank_matches_direct_convolution() {
        let (d, w, input) = setup(5, 3, 9);
        let direct = conv2d(&input, &w, 1, 1);
        let (o3, _) = forward_eq3(&d, &input, 1, 1);
        assert!(
            direct.all_close(&o3, 1e-2),
            "rel err {}",
            direct.relative_error(&o3)
        );
        let (o2, _) = forward_eq2(&d, &input, 1, 1);
        assert!(direct.all_close(&o2, 1e-2));
    }

    #[test]
    fn reconstructed_weights_match_either_order() {
        let (d, _, input) = setup(4, 4, 4);
        let direct = conv2d(&input, &d.reconstruct(), 1, 1);
        let (o3, _) = forward_eq3(&d, &input, 1, 1);
        assert!(direct.all_close(&o3, 1e-3));
    }

    #[test]
    fn agreement_holds_with_stride_and_pad() {
        let (d, _, input) = setup(4, 3, 3);
        for (stride, pad) in [(1usize, 0usize), (2, 1), (1, 2)] {
            let (o2, _) = forward_eq2(&d, &input, stride, pad);
            let (o3, _) = forward_eq3(&d, &input, stride, pad);
            assert!(o2.all_close(&o3, 1e-3), "stride={stride} pad={pad}");
            let direct = conv2d(&input, &d.reconstruct(), stride, pad);
            assert!(direct.all_close(&o3, 1e-3), "stride={stride} pad={pad}");
        }
    }

    #[test]
    fn eq3_materializes_fewer_intermediates() {
        let (d, _, input) = setup(16, 8, 4);
        let (_, i2) = forward_eq2(&d, &input, 1, 1);
        let (_, i3) = forward_eq3(&d, &input, 1, 1);
        assert!(i3 < i2, "eq3 ({i3}) should beat eq2 ({i2})");
        // Footprint helper agrees with the actual execution.
        let (f2, f3) = intermediate_footprint(&d, 8, 8, 1, 1);
        assert_eq!(i2, f2);
        assert_eq!(i3, f3);
    }

    #[test]
    fn sparse_coefficients_are_skipped_consistently() {
        let (mut d, _, input) = setup(6, 4, 3);
        // Zero out most coefficients; both orders must still agree.
        for (i, v) in d.coeffs.as_mut_slice().iter_mut().enumerate() {
            if i % 3 != 0 {
                *v = 0.0;
            }
        }
        let (o2, _) = forward_eq2(&d, &input, 1, 1);
        let (o3, _) = forward_eq3(&d, &input, 1, 1);
        assert!(o2.all_close(&o3, 1e-3));
    }
}
