//! Error type for the ESCALATE algorithm crate.

use escalate_tensor::TensorError;

/// Errors produced by decomposition, quantization and the compression
/// pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum EscalateError {
    /// A numerical routine in the tensor substrate failed.
    Numeric(TensorError),
    /// The requested basis count is invalid for the layer.
    InvalidBasisCount {
        /// Requested number of basis kernels.
        m: usize,
        /// Kernel area `R*S` bounding it.
        rs: usize,
    },
    /// The layer kind cannot be decomposed (e.g. an FC layer).
    NotDecomposable {
        /// Name of the offending layer.
        layer: String,
    },
    /// A quantization parameter is out of range.
    InvalidQuantization {
        /// Description of the invalid parameter.
        what: String,
    },
    /// A simulation was handed an invalid workload or feature map
    /// (converted from `escalate_sim`'s `SimError`).
    Simulation {
        /// Description of the invalid input.
        what: String,
    },
}

impl std::fmt::Display for EscalateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EscalateError::Numeric(e) => write!(f, "numeric failure: {e}"),
            EscalateError::InvalidBasisCount { m, rs } => {
                write!(f, "basis count {m} exceeds kernel area {rs}")
            }
            EscalateError::NotDecomposable { layer } => {
                write!(f, "layer {layer} cannot be decomposed")
            }
            EscalateError::InvalidQuantization { what } => {
                write!(f, "invalid quantization parameter: {what}")
            }
            EscalateError::Simulation { what } => {
                write!(f, "invalid simulation input: {what}")
            }
        }
    }
}

impl std::error::Error for EscalateError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EscalateError::Numeric(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for EscalateError {
    fn from(e: TensorError) -> Self {
        EscalateError::Numeric(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty() {
        let errs: Vec<EscalateError> = vec![
            EscalateError::InvalidBasisCount { m: 10, rs: 9 },
            EscalateError::NotDecomposable { layer: "fc".into() },
            EscalateError::InvalidQuantization {
                what: "bits=0".into(),
            },
            EscalateError::Simulation {
                what: "dense workload".into(),
            },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn numeric_errors_chain_source() {
        use std::error::Error;
        let e = EscalateError::from(TensorError::NoConvergence {
            routine: "jacobi",
            iterations: 3,
        });
        assert!(e.source().is_some());
    }
}
