//! Kernel-level decomposition `W = Ce · B` (paper §2.3).
//!
//! The 4-D weight tensor `K×C×R×S` is reshaped to `KC×RS` and factored by
//! a truncated SVD into `M` basis kernels shared by the whole layer and a
//! `K×C×M` coefficient tensor. Because the basis rows are orthonormal, the
//! coefficients are simply the projections of each kernel onto the basis —
//! the least-squares optimal approximation at rank `M`.

use crate::error::EscalateError;
use escalate_tensor::{linalg, Matrix, Tensor};

/// A kernel-decomposed convolutional layer: `M` shared basis kernels plus
/// per-(output, input)-channel combination coefficients.
///
/// # Examples
///
/// ```
/// use escalate_core::decompose;
/// use escalate_tensor::Tensor;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let w = Tensor::from_fn(&[4, 3, 3, 3], |i| (i[0] + i[1] + i[2] * i[3]) as f32);
/// let d = decompose(&w, 2)?;
/// assert_eq!(d.basis.shape(), &[2, 3, 3]);
/// assert_eq!(d.coeffs.shape(), &[4, 3, 2]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Decomposed {
    /// Basis kernels, `M×R×S`, with orthonormal flattened rows.
    pub basis: Tensor,
    /// Combination coefficients, `K×C×M`.
    pub coeffs: Tensor,
    /// Fraction of the weights' squared Frobenius norm captured by the
    /// `M` kept components, in `[0, 1]`.
    pub captured_energy: f32,
}

impl Decomposed {
    /// Number of basis kernels `M`.
    pub fn m(&self) -> usize {
        self.basis.shape()[0]
    }

    /// Number of output channels `K`.
    pub fn k(&self) -> usize {
        self.coeffs.shape()[0]
    }

    /// Number of input channels `C`.
    pub fn c(&self) -> usize {
        self.coeffs.shape()[1]
    }

    /// Kernel rows `R`.
    pub fn r(&self) -> usize {
        self.basis.shape()[1]
    }

    /// Kernel columns `S`.
    pub fn s(&self) -> usize {
        self.basis.shape()[2]
    }

    /// Reconstructs the approximated 4-D weight tensor `K×C×R×S`.
    pub fn reconstruct(&self) -> Tensor {
        let (k, c, m) = (self.k(), self.c(), self.m());
        let rs = self.r() * self.s();
        let coeffs = Matrix::from_vec(k * c, m, self.coeffs.as_slice().to_vec());
        let basis = Matrix::from_vec(m, rs, self.basis.as_slice().to_vec());
        let w = coeffs.matmul(&basis);
        Tensor::from_vec(&[k, c, self.r(), self.s()], w.as_slice().to_vec())
    }

    /// The `m`-th basis kernel as an `R×S` tensor.
    ///
    /// # Panics
    ///
    /// Panics if `m >= self.m()`.
    pub fn basis_kernel(&self, m: usize) -> Tensor {
        assert!(m < self.m(), "basis index out of range");
        let rs = self.r() * self.s();
        let data = self.basis.as_slice()[m * rs..(m + 1) * rs].to_vec();
        Tensor::from_vec(&[self.r(), self.s()], data)
    }

    /// The coefficient for output channel `k`, input channel `c`, basis `m`.
    pub fn coeff(&self, k: usize, c: usize, m: usize) -> f32 {
        self.coeffs.get(&[k, c, m])
    }
}

/// Decomposes a `K×C×R×S` weight tensor into `m` basis kernels.
///
/// # Errors
///
/// Returns [`EscalateError::InvalidBasisCount`] when `m` is zero or exceeds
/// the kernel area `R*S`, and propagates numerical failures from the SVD.
///
/// # Panics
///
/// Panics if `weights` is not rank-4.
pub fn decompose(weights: &Tensor, m: usize) -> Result<Decomposed, EscalateError> {
    let [k, c, r, s]: [usize; 4] = weights.shape().try_into().expect("weights must be K*C*R*S");
    let rs = r * s;
    if m == 0 || m > rs {
        return Err(EscalateError::InvalidBasisCount { m, rs });
    }
    let reshaped = Matrix::from_vec(k * c, rs, weights.as_slice().to_vec());
    let f = linalg::truncated_svd(&reshaped, m)?;
    Ok(Decomposed {
        basis: Tensor::from_vec(&[m, r, s], f.basis.as_slice().to_vec()),
        coeffs: Tensor::from_vec(&[k, c, m], f.coeffs.as_slice().to_vec()),
        captured_energy: f.captured_energy,
    })
}

/// Decomposes a weight tensor with the smallest basis count whose kept
/// components capture at least `energy_threshold` of the squared
/// Frobenius norm (PENNI's adaptive rank selection; the paper fixes
/// `M = 6` for the hardware, and §6.1 discusses the trade-off this
/// function navigates automatically).
///
/// # Errors
///
/// Propagates numerical failures; the threshold is clamped to `[0, 1]`.
///
/// # Examples
///
/// ```
/// use escalate_core::decompose::decompose_adaptive;
/// use escalate_tensor::Tensor;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Rank-1 kernels: a 99% threshold needs only one basis kernel.
/// let w = Tensor::from_fn(&[4, 3, 3, 3], |i| ((i[0] * 3 + i[1]) as f32) * ((i[2] * 3 + i[3]) as f32));
/// let d = decompose_adaptive(&w, 0.99)?;
/// assert_eq!(d.m(), 1);
/// # Ok(())
/// # }
/// ```
pub fn decompose_adaptive(
    weights: &Tensor,
    energy_threshold: f32,
) -> Result<Decomposed, EscalateError> {
    let [k, c, r, s]: [usize; 4] = weights.shape().try_into().expect("weights must be K*C*R*S");
    let rs = r * s;
    let threshold = energy_threshold.clamp(0.0, 1.0);
    let reshaped = Matrix::from_vec(k * c, rs, weights.as_slice().to_vec());
    // One eigendecomposition serves every candidate rank.
    let eig = linalg::jacobi_eigen(&reshaped.gram())?;
    let total: f32 = eig.values.iter().map(|&l| l.max(0.0)).sum();
    let mut captured = 0.0f32;
    let mut m = rs;
    for (i, &l) in eig.values.iter().enumerate() {
        captured += l.max(0.0);
        if total == 0.0 || captured >= threshold * total {
            m = i + 1;
            break;
        }
    }
    decompose(weights, m)
}

/// Decomposes a depthwise weight tensor `C×R×S` (per-channel kernels) into
/// `m` basis kernels shared across channels, returning coefficients
/// `C×M`. Used by the DSC path (Eq. (5)).
///
/// # Errors
///
/// Same as [`decompose()`].
///
/// # Panics
///
/// Panics if `weights` is not rank-3.
pub fn decompose_depthwise(weights: &Tensor, m: usize) -> Result<(Matrix, Tensor), EscalateError> {
    let [c, r, s]: [usize; 3] = weights.shape().try_into().expect("weights must be C*R*S");
    let rs = r * s;
    if m == 0 || m > rs {
        return Err(EscalateError::InvalidBasisCount { m, rs });
    }
    let reshaped = Matrix::from_vec(c, rs, weights.as_slice().to_vec());
    let f = linalg::truncated_svd(&reshaped, m)?;
    Ok((
        f.coeffs,
        Tensor::from_vec(&[m, r, s], f.basis.as_slice().to_vec()),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn low_rank_weights(k: usize, c: usize, rank: usize) -> Tensor {
        // Build exactly-rank-`rank` kernels deterministically.
        let rs = 9;
        let latent: Vec<Vec<f32>> = (0..rank)
            .map(|l| {
                (0..rs)
                    .map(|i| ((l * 13 + i * 7) % 11) as f32 - 5.0)
                    .collect()
            })
            .collect();
        let mut data = Vec::new();
        for kc in 0..k * c {
            let mut kern = vec![0.0f32; rs];
            for (l, lat) in latent.iter().enumerate() {
                let coef = ((kc * (l + 3)) % 7) as f32 - 3.0;
                for (kv, &lv) in kern.iter_mut().zip(lat) {
                    *kv += coef * lv;
                }
            }
            data.extend_from_slice(&kern);
        }
        Tensor::from_vec(&[k, c, 3, 3], data)
    }

    #[test]
    fn full_rank_reconstruction_is_exact() {
        let w = Tensor::from_fn(&[3, 2, 2, 2], |i| {
            ((i[0] * 8 + i[1] * 4 + i[2] * 2 + i[3]) as f32).sin()
        });
        let d = decompose(&w, 4).unwrap();
        assert!(d.reconstruct().all_close(&w, 1e-3));
        assert!(d.captured_energy > 0.9999);
    }

    #[test]
    fn low_rank_weights_compress_exactly() {
        let w = low_rank_weights(8, 4, 3);
        let d = decompose(&w, 3).unwrap();
        assert!(w.relative_error(&d.reconstruct()) < 1e-3);
    }

    #[test]
    fn truncation_is_monotone() {
        let w = low_rank_weights(8, 4, 6);
        let mut last = f32::INFINITY;
        for m in 1..=6 {
            let d = decompose(&w, m).unwrap();
            let err = w.relative_error(&d.reconstruct());
            assert!(err <= last + 1e-5, "m={m}: {err} > {last}");
            last = err;
        }
    }

    #[test]
    fn invalid_basis_counts_error() {
        let w = Tensor::zeros(&[2, 2, 3, 3]);
        assert!(matches!(
            decompose(&w, 0),
            Err(EscalateError::InvalidBasisCount { .. })
        ));
        assert!(matches!(
            decompose(&w, 10),
            Err(EscalateError::InvalidBasisCount { .. })
        ));
    }

    #[test]
    fn accessors_report_shapes() {
        let w = low_rank_weights(5, 3, 2);
        let d = decompose(&w, 2).unwrap();
        assert_eq!((d.k(), d.c(), d.m(), d.r(), d.s()), (5, 3, 2, 3, 3));
        assert_eq!(d.basis_kernel(1).shape(), &[3, 3]);
    }

    #[test]
    fn coeff_indexing_matches_reconstruction() {
        let w = low_rank_weights(4, 2, 2);
        let d = decompose(&w, 2).unwrap();
        // Manually reconstruct one kernel from coefficients.
        let (k, c) = (1usize, 1usize);
        let mut manual = Tensor::zeros(&[3, 3]);
        for m in 0..2 {
            manual.axpy(d.coeff(k, c, m), &d.basis_kernel(m));
        }
        let full = d.reconstruct();
        for r in 0..3 {
            for s in 0..3 {
                assert!((manual.get(&[r, s]) - full.get(&[k, c, r, s])).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn adaptive_rank_tracks_true_rank() {
        for rank in [1usize, 3, 5] {
            let w = low_rank_weights(8, 4, rank);
            let d = decompose_adaptive(&w, 0.999).unwrap();
            assert_eq!(d.m(), rank, "true rank {rank}");
            assert!(w.relative_error(&d.reconstruct()) < 0.05);
        }
    }

    #[test]
    fn adaptive_threshold_trades_rank_for_error() {
        let w = low_rank_weights(8, 4, 6);
        let tight = decompose_adaptive(&w, 0.999).unwrap();
        let loose = decompose_adaptive(&w, 0.6).unwrap();
        assert!(loose.m() <= tight.m());
        assert!(
            w.relative_error(&loose.reconstruct()) >= w.relative_error(&tight.reconstruct()) - 1e-5
        );
    }

    #[test]
    fn adaptive_handles_zero_weights() {
        let w = Tensor::zeros(&[2, 2, 3, 3]);
        let d = decompose_adaptive(&w, 0.9).unwrap();
        assert_eq!(d.m(), 1);
        assert!(d.reconstruct().all_close(&w, 1e-6));
    }

    #[test]
    fn depthwise_decomposition_reconstructs() {
        let w = Tensor::from_fn(&[6, 3, 3], |i| {
            ((i[0] + 2 * i[1] + 3 * i[2]) % 5) as f32 - 2.0
        });
        let (coeffs, basis) = decompose_depthwise(&w, 9).unwrap();
        let b = Matrix::from_vec(9, 9, basis.as_slice().to_vec());
        let recon = coeffs.matmul(&b);
        let orig = Matrix::from_vec(6, 9, w.as_slice().to_vec());
        assert!(recon.all_close(&orig, 1e-3));
    }
}
