//! Whole-model compression pipeline with exact storage accounting
//! (regenerates Table 1).
//!
//! For every convolutional layer of a model the pipeline: synthesizes
//! weights matched to the model's profile (see `escalate-models`),
//! decomposes them with `M` basis kernels, ternarizes the coefficients at
//! a threshold hitting the profile's sparsity target, quantizes the basis
//! to 8 bits, and accounts the compressed size with the 2-level SparseMap
//! encoding — per-output-channel slices, exactly as the accelerator stores
//! them (§4.2.1). The first convolutional layer stays 8-bit dense
//! (§3.2), FC layers are not counted (§5.1.2), and depthwise/pointwise
//! pairs are folded through Eq. (5).

use crate::decompose::{decompose, Decomposed};
use crate::dsc::decompose_dsc;
use crate::error::EscalateError;
use crate::qat::{retrain_coeffs, QatConfig};
use crate::quant::{threshold_for_sparsity, HybridQuantized, QuantizedBasis, TernaryCoeffs};
use escalate_models::{synth, LayerKind, LayerShape, ModelProfile};
use escalate_sparse::TwoLevelSparseMap;
use escalate_tensor::{Matrix, Tensor};
use rayon::prelude::*;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Configuration of the compression pipeline.
#[derive(Debug, Clone, Copy)]
pub struct CompressionConfig {
    /// Number of basis kernels `M` (the paper uses 6).
    pub m: usize,
    /// Bit width of the basis kernels and the dense first layer.
    pub basis_bits: u32,
    /// Effective kernel rank of the synthetic weights.
    pub weight_rank: usize,
    /// Relative full-rank noise added to the synthetic weights.
    pub weight_noise: f32,
    /// Epochs of quantization-aware retraining per layer (0 disables).
    pub qat_epochs: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Share `M`-invariant intermediates across repeated compressions of
    /// the same model (synthetic weights; whole pointwise/dense units,
    /// which never consult `M`) through bounded process-global caches.
    /// Purely a time/memory trade — every cached value is a deterministic
    /// function of its key, so results are bit-identical either way.
    /// Design-space sweeps opt in; one-shot compressions should leave it
    /// off and skip the resident cache footprint.
    pub reuse_units: bool,
}

impl Default for CompressionConfig {
    fn default() -> Self {
        CompressionConfig {
            m: 6,
            basis_bits: 8,
            weight_rank: 6,
            weight_noise: 0.05,
            qat_epochs: 0,
            seed: 42,
            reuse_units: false,
        }
    }
}

/// Compression outcome for one layer (or one fused DSC pair).
#[derive(Debug, Clone)]
pub struct LayerCompression {
    /// Layer name (for DSC pairs, the depthwise layer's name).
    pub name: String,
    /// Original storage in bits (fp32).
    pub original_bits: usize,
    /// Compressed storage in bits (basis + scales + SparseMap coefficients).
    pub compressed_bits: usize,
    /// Original parameter count.
    pub original_params: usize,
    /// Remaining parameter count (basis values + nonzero coefficients).
    pub remaining_params: usize,
    /// Total coefficient count (0 for dense-fallback layers).
    pub coeff_total: usize,
    /// Nonzero coefficient count.
    pub coeff_nnz: usize,
    /// Relative weight-space error of the compressed layer.
    pub weight_error: f32,
    /// Whether the layer went through kernel decomposition.
    pub decomposed: bool,
}

impl LayerCompression {
    /// Compression ratio of this layer.
    pub fn compression_ratio(&self) -> f64 {
        self.original_bits as f64 / self.compressed_bits.max(1) as f64
    }

    /// Coefficient sparsity of this layer (0 for dense layers).
    pub fn coeff_sparsity(&self) -> f64 {
        if self.coeff_total == 0 {
            0.0
        } else {
            1.0 - self.coeff_nnz as f64 / self.coeff_total as f64
        }
    }
}

/// Compression outcome for a whole model.
#[derive(Debug, Clone)]
pub struct ModelCompression {
    /// Model name.
    pub model_name: String,
    /// Per-layer results in execution order.
    pub layers: Vec<LayerCompression>,
}

impl ModelCompression {
    /// Whole-model compression ratio (fp32 conv weights vs compressed).
    pub fn compression_ratio(&self) -> f64 {
        let orig: usize = self.layers.iter().map(|l| l.original_bits).sum();
        let comp: usize = self.layers.iter().map(|l| l.compressed_bits).sum();
        orig as f64 / comp.max(1) as f64
    }

    /// Compressed conv model size in MiB.
    pub fn compressed_size_mb(&self) -> f64 {
        self.layers.iter().map(|l| l.compressed_bits).sum::<usize>() as f64
            / 8.0
            / (1024.0 * 1024.0)
    }

    /// Overall coefficient sparsity across decomposed layers.
    pub fn coeff_sparsity(&self) -> f64 {
        let total: usize = self.layers.iter().map(|l| l.coeff_total).sum();
        let nnz: usize = self.layers.iter().map(|l| l.coeff_nnz).sum();
        if total == 0 {
            0.0
        } else {
            1.0 - nnz as f64 / total as f64
        }
    }

    /// Pruning ratio w.r.t. the original weights (Table 1's "Prun." column):
    /// the fraction of original parameters eliminated by decomposition plus
    /// coefficient pruning.
    pub fn pruning_ratio(&self) -> f64 {
        let orig: usize = self.layers.iter().map(|l| l.original_params).sum();
        let rem: usize = self.layers.iter().map(|l| l.remaining_params).sum();
        if orig == 0 {
            0.0
        } else {
            1.0 - rem as f64 / orig as f64
        }
    }

    /// Parameter-weighted mean weight-space error.
    pub fn mean_weight_error(&self) -> f64 {
        let total: usize = self.layers.iter().map(|l| l.original_params).sum();
        if total == 0 {
            return 0.0;
        }
        self.layers
            .iter()
            .map(|l| l.weight_error as f64 * l.original_params as f64)
            .sum::<f64>()
            / total as f64
    }
}

/// Monotone accuracy proxy used where the paper reports top-1 accuracy.
///
/// With no training stack available, accuracy cannot be measured;
/// `proxy = baseline − κ·ε` maps the parameter-weighted weight-space error
/// `ε ∈ [0, 1]` to an accuracy drop. κ = 2.5 points per unit error is
/// calibrated so the default (M = 6, Table 1 sparsity) configurations land
/// near the paper's reported sub-2-point drops; retraining, which recovers
/// most of the raw quantization error in the real pipeline, is the reason
/// the calibrated κ is far below a naive error-to-accuracy slope (see
/// EXPERIMENTS.md). Only the *ordering* of policies/configurations is
/// meaningful, which is what Figures 7 and 12 compare.
pub fn accuracy_proxy(baseline_top1: f64, mean_weight_error: f64) -> f64 {
    (baseline_top1 - 2.5 * mean_weight_error).max(0.0)
}

/// Storage cost in bits of ternary coefficients under the per-filter
/// 2-level SparseMap encoding, plus the per-filter scale metadata
/// (8-bit positive scale + 2-bit quotient).
pub fn ternary_storage_bits(coeffs: &TernaryCoeffs) -> usize {
    let [k, _, _] = coeffs.shape();
    let mut bits = k * (8 + 2);
    for ki in 0..k {
        let dense: Vec<f32> = coeffs.slice(ki).iter().map(|&v| v as f32).collect();
        // Nonzero ternary values cost 1 bit (the sign).
        bits += TwoLevelSparseMap::encode(&dense).size_bits(1);
    }
    bits
}

/// Compresses one regular convolution layer via kernel decomposition.
///
/// # Errors
///
/// Propagates decomposition and quantization failures.
pub fn compress_layer(
    layer: &LayerShape,
    cfg: &CompressionConfig,
    target_sparsity: f64,
    seed: u64,
) -> Result<LayerCompression, EscalateError> {
    compress_layer_artifact(layer, cfg, target_sparsity, seed).map(|a| a.stats)
}

/// Like [`compress_layer`] but also returns the quantized artifact the
/// accelerator simulator consumes.
///
/// # Errors
///
/// Propagates decomposition and quantization failures.
pub fn compress_layer_artifact(
    layer: &LayerShape,
    cfg: &CompressionConfig,
    target_sparsity: f64,
    seed: u64,
) -> Result<CompressedLayer, EscalateError> {
    let w = synth_weights(
        layer,
        cfg.weight_rank,
        cfg.weight_noise,
        seed,
        cfg.reuse_units,
    );
    let rs = layer.r * layer.s;
    let m = cfg.m.min(rs);
    let d = {
        let _t = escalate_obs::span("pipeline.decompose");
        decompose(&w, m)?
    };
    let (stats, hybrid) = compress_decomposed(&layer.name, &w, &d, cfg, target_sparsity)?;
    Ok(CompressedLayer {
        shape: layer.clone(),
        fused_pointwise: None,
        stats,
        quantized: Some(hybrid),
    })
}

/// Shared tail of the compression paths: ternarize (optionally retrain),
/// quantize the basis, and account storage.
fn compress_decomposed(
    name: &str,
    original: &Tensor,
    d: &Decomposed,
    cfg: &CompressionConfig,
    target_sparsity: f64,
) -> Result<(LayerCompression, HybridQuantized), EscalateError> {
    let t = threshold_for_sparsity(&d.coeffs, target_sparsity);
    let coeffs = if cfg.qat_epochs > 0 {
        let _t = escalate_obs::span("pipeline.qat");
        retrain_coeffs(
            &d.coeffs,
            &QatConfig {
                epochs: cfg.qat_epochs,
                threshold: t,
                ..QatConfig::default()
            },
        )?
        .coeffs
    } else {
        let _t = escalate_obs::span("pipeline.quant");
        TernaryCoeffs::ternarize(&d.coeffs, t)?
    };
    let basis = QuantizedBasis::quantize(&d.basis);
    let hybrid = HybridQuantized { basis, coeffs };

    let _t = escalate_obs::span("pipeline.reconstruct");
    let dec = hybrid.to_decomposed();
    // `reconstruct()` always produces a `[K, C, R, S]` tensor, so which
    // branch runs is known from the geometry alone — the DSC fold (whose
    // "original" is the flattened (dw, pw) pair) never materializes the
    // reconstruction it would immediately discard.
    let recon_shape = [dec.k(), dec.c(), dec.r(), dec.s()];
    let weight_error = if original.shape() == &recon_shape[..] {
        original.relative_error(&dec.reconstruct())
    } else {
        // DSC fold: error is measured against the decomposed-then-
        // reconstructed coefficients instead.
        d.coeffs.relative_error(&dec.coeffs)
    };

    let original_params = original.len();
    let coeff_total = hybrid.coeffs.ternary.len();
    let coeff_nnz = hybrid.coeffs.nnz();
    let compressed_bits = hybrid.basis.size_bits() + ternary_storage_bits(&hybrid.coeffs);
    let stats = LayerCompression {
        name: name.to_string(),
        original_bits: original_params * 32,
        compressed_bits,
        original_params,
        remaining_params: hybrid.basis.q.len() + hybrid.coeffs.nonzero_groups(),
        coeff_total,
        coeff_nnz,
        weight_error,
        decomposed: true,
    };
    Ok((stats, hybrid))
}

/// Compresses a 1×1 (pointwise) layer: with `RS = 1` decomposition cannot
/// help, so the weights themselves are ternarized (`M = 1`, identity
/// basis).
fn compress_pointwise(
    layer: &LayerShape,
    cfg: &CompressionConfig,
    target_sparsity: f64,
    seed: u64,
) -> Result<(LayerCompression, HybridQuantized), EscalateError> {
    // Rank is irrelevant at RS=1.
    let w = synth_weights(layer, 1, 1.0, seed, cfg.reuse_units);
    let coeffs3 = w.reshape(&[layer.k, layer.c, 1]);
    let t = threshold_for_sparsity(&coeffs3, target_sparsity);
    let coeffs = {
        let _t = escalate_obs::span("pipeline.quant");
        TernaryCoeffs::ternarize(&coeffs3, t)?
    };
    let weight_error = coeffs3.relative_error(&coeffs.dequantize());
    let original_params = w.len();
    let coeff_nnz = coeffs.nnz();
    let stats = LayerCompression {
        name: layer.name.clone(),
        original_bits: original_params * 32,
        compressed_bits: ternary_storage_bits(&coeffs),
        original_params,
        remaining_params: coeff_nnz,
        coeff_total: coeffs.ternary.len(),
        coeff_nnz,
        weight_error,
        decomposed: true,
    };
    // An identity basis: one 1x1 kernel with unit weight.
    let basis = QuantizedBasis::quantize(&Tensor::ones(&[1, 1, 1]));
    Ok((stats, HybridQuantized { basis, coeffs }))
}

/// Compresses a layer kept dense at `basis_bits` (the first conv layer).
fn compress_dense(
    layer: &LayerShape,
    cfg: &CompressionConfig,
    seed: u64,
) -> Result<LayerCompression, EscalateError> {
    let w = synth_weights(layer, layer.r * layer.s, 0.3, seed, cfg.reuse_units);
    let (deq, bits) = crate::quant::quantize_linear(&w, cfg.basis_bits)?;
    Ok(LayerCompression {
        name: layer.name.clone(),
        original_bits: w.len() * 32,
        compressed_bits: bits,
        original_params: w.len(),
        remaining_params: w.len(),
        coeff_total: 0,
        coeff_nnz: 0,
        weight_error: w.relative_error(&deq),
        decomposed: false,
    })
}

/// Compresses a whole model according to its profile.
///
/// # Errors
///
/// Propagates per-layer failures.
///
/// # Examples
///
/// ```no_run
/// use escalate_core::{compress_model, pipeline::CompressionConfig};
/// use escalate_models::ModelProfile;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let profile = ModelProfile::for_model("ResNet18").expect("known model");
/// let result = compress_model(&profile, &CompressionConfig::default())?;
/// println!("{}: {:.1}x", result.model_name, result.compression_ratio());
/// # Ok(())
/// # }
/// ```
pub fn compress_model(
    profile: &ModelProfile,
    cfg: &CompressionConfig,
) -> Result<ModelCompression, EscalateError> {
    let artifacts = compress_model_artifacts(profile, cfg)?;
    Ok(ModelCompression {
        model_name: profile.name.to_string(),
        layers: artifacts.into_iter().map(|a| a.stats).collect(),
    })
}

/// One compressed layer (or fused DSC pair) together with the quantized
/// weights the accelerator simulator executes.
#[derive(Debug, Clone)]
pub struct CompressedLayer {
    /// The driving layer's shape (the depthwise layer for DSC pairs).
    pub shape: LayerShape,
    /// The pointwise layer folded into this unit (Eq. (5)), if any.
    pub fused_pointwise: Option<LayerShape>,
    /// Storage/accuracy accounting.
    pub stats: LayerCompression,
    /// The quantized decomposed weights; `None` for the dense fallback
    /// (first layer).
    pub quantized: Option<HybridQuantized>,
}

impl CompressedLayer {
    /// Number of output channels produced by this unit (the pointwise
    /// layer's `K` for fused DSC pairs).
    pub fn out_channels(&self) -> usize {
        self.fused_pointwise
            .as_ref()
            .map_or(self.shape.k, |pw| pw.k)
    }
}

/// Compresses a whole model, returning the per-layer quantized artifacts.
///
/// # Errors
///
/// Propagates per-layer failures.
pub fn compress_model_artifacts(
    profile: &ModelProfile,
    cfg: &CompressionConfig,
) -> Result<Vec<CompressedLayer>, EscalateError> {
    let _t = escalate_obs::span_labeled("pipeline.compress_model", &profile.name);
    let plan = plan_units(profile, cfg);
    escalate_obs::counter_add("pipeline.units", plan.len() as u64);
    // Units are independent and deterministic (each derives its own seed),
    // so compress them on the global pool and reassemble in plan order.
    plan.par_iter()
        .map(|unit| compress_unit(unit, cfg))
        .collect()
}

/// One independently-compressible unit of the plan.
#[derive(Debug, Clone)]
enum UnitPlan {
    /// The dense first convolution.
    Dense { layer: LayerShape, seed: u64 },
    /// A fused depthwise + pointwise pair (Eq. (5)).
    Dsc {
        dw: LayerShape,
        pw: LayerShape,
        seed: u64,
        pw_seed: u64,
        target: f64,
    },
    /// A standalone depthwise layer.
    DwOnly {
        layer: LayerShape,
        seed: u64,
        target: f64,
    },
    /// A 1×1 layer, ternary-only.
    Pointwise {
        layer: LayerShape,
        seed: u64,
        target: f64,
    },
    /// A regular decomposable convolution.
    Conv {
        layer: LayerShape,
        seed: u64,
        target: f64,
    },
}

/// Walks the conv layers and decides how each unit is compressed (the
/// sequential pairing logic), without doing any numeric work.
fn plan_units(profile: &ModelProfile, cfg: &CompressionConfig) -> Vec<UnitPlan> {
    let model = profile.model();
    let conv: Vec<&LayerShape> = model.conv_layers().collect();
    let n = conv.len();
    let mut plan = Vec::new();
    let mut i = 0usize;
    let mut first_conv_done = false;
    while i < n {
        let layer = conv[i];
        let seed = synth::layer_seed(cfg.seed, i, 0);
        let target = profile.layer_coeff_sparsity(i, n);
        if !first_conv_done && layer.kind == LayerKind::Conv {
            plan.push(UnitPlan::Dense {
                layer: layer.clone(),
                seed,
            });
            first_conv_done = true;
            i += 1;
            continue;
        }
        match layer.kind {
            LayerKind::DwConv => {
                if i + 1 < n && conv[i + 1].kind == LayerKind::PwConv && conv[i + 1].c == layer.k {
                    plan.push(UnitPlan::Dsc {
                        dw: layer.clone(),
                        pw: conv[i + 1].clone(),
                        seed,
                        pw_seed: synth::layer_seed(cfg.seed, i + 1, 0),
                        target,
                    });
                    i += 2;
                } else {
                    plan.push(UnitPlan::DwOnly {
                        layer: layer.clone(),
                        seed,
                        target,
                    });
                    i += 1;
                }
            }
            LayerKind::PwConv | LayerKind::Conv | LayerKind::DilatedConv { .. }
                if layer.r * layer.s == 1 =>
            {
                plan.push(UnitPlan::Pointwise {
                    layer: layer.clone(),
                    seed,
                    target,
                });
                i += 1;
            }
            // Dilation changes where a tap lands, not how many taps there
            // are, so the decomposition is the regular-conv one.
            LayerKind::Conv | LayerKind::DilatedConv { .. } => {
                plan.push(UnitPlan::Conv {
                    layer: layer.clone(),
                    seed,
                    target,
                });
                i += 1;
            }
            // Grouped convolutions keep full-channel basis sharing off the
            // table, so they stay dense (`LayerShape::is_decomposable` is
            // false for them) and run on the fallback datapath.
            LayerKind::GroupedConv { .. } => {
                plan.push(UnitPlan::Dense {
                    layer: layer.clone(),
                    seed,
                });
                i += 1;
            }
            LayerKind::PwConv | LayerKind::Fc => {
                i += 1;
            }
        }
    }
    plan
}

/// Default bound of each [`CompressionConfig::reuse_units`] cache
/// (entries). Sized for a sweep alternating between a couple of
/// MobileNet-class networks (≈30 units each); eviction is LRU, so even a
/// larger zoo just loses cross-network reuse, never correctness.
const DEFAULT_REUSE_CAP: usize = 128;

/// A minimal bounded map with LRU eviction by access stamp (the same
/// shape as the simulator's derived-state cache). Eviction scans for the
/// stalest entry, which is fine because it only runs when full.
struct ReuseCache<V> {
    entries: HashMap<String, (V, u64)>,
    stamp: u64,
    capacity: usize,
}

impl<V: Clone> ReuseCache<V> {
    fn new(capacity: usize) -> Self {
        ReuseCache {
            entries: HashMap::new(),
            stamp: 0,
            capacity,
        }
    }

    fn get(&mut self, key: &str) -> Option<V> {
        self.stamp += 1;
        let stamp = self.stamp;
        self.entries.get_mut(key).map(|(v, s)| {
            *s = stamp;
            v.clone()
        })
    }

    fn insert(&mut self, key: String, value: V) {
        self.stamp += 1;
        if !self.entries.contains_key(&key) {
            while self.entries.len() >= self.capacity {
                let stalest = self
                    .entries
                    .iter()
                    .min_by_key(|(_, (_, s))| *s)
                    .map(|(k, _)| k.clone())
                    .expect("non-empty map");
                self.entries.remove(&stalest);
            }
        }
        self.entries.insert(key, (value, self.stamp));
    }
}

/// The three opt-in reuse caches: synthetic weight tensors and pointwise
/// weight matrices (`M`-invariant for every unit kind), and finished
/// `M`-invariant units (pointwise/dense, which never consult `M`).
struct ReuseCaches {
    weights: Mutex<ReuseCache<Arc<Tensor>>>,
    pointwise: Mutex<ReuseCache<Arc<Matrix>>>,
    units: Mutex<ReuseCache<Arc<CompressedLayer>>>,
}

fn reuse_caches() -> &'static ReuseCaches {
    static CACHES: OnceLock<ReuseCaches> = OnceLock::new();
    CACHES.get_or_init(|| ReuseCaches {
        weights: Mutex::new(ReuseCache::new(DEFAULT_REUSE_CAP)),
        pointwise: Mutex::new(ReuseCache::new(DEFAULT_REUSE_CAP)),
        units: Mutex::new(ReuseCache::new(DEFAULT_REUSE_CAP)),
    })
}

/// [`synth::weights`], shared across design points when `reuse` is set.
/// The key carries everything the synthesis reads (the full layer shape,
/// rank, noise bits, seed), so a hit is the bit-identical tensor the
/// miss path would have built. Concurrent misses may both synthesize —
/// the result is deterministic, so last-write-wins is harmless.
fn synth_weights(
    layer: &LayerShape,
    rank: usize,
    noise: f32,
    seed: u64,
    reuse: bool,
) -> Arc<Tensor> {
    let _t = escalate_obs::span("pipeline.synth");
    if !reuse {
        return Arc::new(synth::weights(layer, rank, noise, seed));
    }
    let key = format!("{layer:?}|r{rank}|n{:08x}|s{seed}", noise.to_bits());
    if let Some(hit) = reuse_caches()
        .weights
        .lock()
        .expect("weight reuse cache poisoned")
        .get(&key)
    {
        escalate_obs::counter_add("pipeline.synth_hits", 1);
        return hit;
    }
    let w = Arc::new(synth::weights(layer, rank, noise, seed));
    escalate_obs::counter_add("pipeline.synth_misses", 1);
    reuse_caches()
        .weights
        .lock()
        .expect("weight reuse cache poisoned")
        .insert(key, Arc::clone(&w));
    w
}

/// [`synth::pointwise_weights`] with the same opt-in sharing as
/// [`synth_weights`].
fn synth_pointwise(c: usize, k: usize, seed: u64, reuse: bool) -> Arc<Matrix> {
    let _t = escalate_obs::span("pipeline.synth");
    if !reuse {
        return Arc::new(synth::pointwise_weights(c, k, seed));
    }
    let key = format!("pw|c{c}|k{k}|s{seed}");
    if let Some(hit) = reuse_caches()
        .pointwise
        .lock()
        .expect("pointwise reuse cache poisoned")
        .get(&key)
    {
        escalate_obs::counter_add("pipeline.synth_hits", 1);
        return hit;
    }
    let w = Arc::new(synth::pointwise_weights(c, k, seed));
    escalate_obs::counter_add("pipeline.synth_misses", 1);
    reuse_caches()
        .pointwise
        .lock()
        .expect("pointwise reuse cache poisoned")
        .insert(key, Arc::clone(&w));
    w
}

/// The unit-cache key for units whose artifact never consults `M` —
/// sweeping `M` over such a unit re-derives the identical artifact, so
/// design points that differ only in `M` share it. `None` for unit kinds
/// with any `M`-dependence (their reuse is the coarser per-`(model, M)`
/// artifact cache in the bench layer). The `UnitPlan` debug form embeds
/// the full layer shape, derived seeds, and the sparsity target; f64
/// formatting round-trips, so distinct targets never alias.
fn m_invariant_unit_key(unit: &UnitPlan, cfg: &CompressionConfig) -> Option<String> {
    match unit {
        UnitPlan::Dense { .. } | UnitPlan::Pointwise { .. } => {
            Some(format!("{unit:?}|bb{}", cfg.basis_bits))
        }
        UnitPlan::Dsc { .. } | UnitPlan::DwOnly { .. } | UnitPlan::Conv { .. } => None,
    }
}

/// Compresses one planned unit (pure function of the plan and config),
/// sharing `M`-invariant units across calls when
/// [`CompressionConfig::reuse_units`] is set.
fn compress_unit(
    unit: &UnitPlan,
    cfg: &CompressionConfig,
) -> Result<CompressedLayer, EscalateError> {
    let cache_key = if cfg.reuse_units {
        if let Some(key) = m_invariant_unit_key(unit, cfg) {
            if let Some(hit) = reuse_caches()
                .units
                .lock()
                .expect("unit reuse cache poisoned")
                .get(&key)
            {
                escalate_obs::counter_add("pipeline.unit_hits", 1);
                return Ok((*hit).clone());
            }
            Some(key)
        } else {
            None
        }
    } else {
        None
    };
    let out = compress_unit_fresh(unit, cfg)?;
    if let Some(key) = cache_key {
        escalate_obs::counter_add("pipeline.unit_misses", 1);
        reuse_caches()
            .units
            .lock()
            .expect("unit reuse cache poisoned")
            .insert(key, Arc::new(out.clone()));
    }
    Ok(out)
}

/// The uncached body of [`compress_unit`].
fn compress_unit_fresh(
    unit: &UnitPlan,
    cfg: &CompressionConfig,
) -> Result<CompressedLayer, EscalateError> {
    match unit {
        UnitPlan::Dense { layer, seed } => Ok(CompressedLayer {
            shape: layer.clone(),
            fused_pointwise: None,
            stats: compress_dense(layer, cfg, *seed)?,
            quantized: None,
        }),
        UnitPlan::Dsc {
            dw,
            pw,
            seed,
            pw_seed,
            target,
        } => {
            let dw_w = synth_weights(
                dw,
                cfg.weight_rank,
                cfg.weight_noise,
                *seed,
                cfg.reuse_units,
            );
            let pw_w = synth_pointwise(pw.c, pw.k, *pw_seed, cfg.reuse_units);
            let m = cfg.m.min(dw.r * dw.s);
            let d = {
                let _t = escalate_obs::span("pipeline.decompose");
                decompose_dsc(&dw_w, &pw_w, m)?
            };
            // The "original" for accounting is the dw + pw pair.
            let orig_params = dw_w.len() + pw_w.as_slice().len();
            let orig = Tensor::from_vec(&[orig_params], {
                let mut v = dw_w.as_slice().to_vec();
                v.extend_from_slice(pw_w.as_slice());
                v
            });
            let (mut stats, hybrid) = compress_decomposed(&dw.name, &orig, &d, cfg, *target)?;
            stats.name = format!("{}+{}", dw.name, pw.name);
            Ok(CompressedLayer {
                shape: dw.clone(),
                fused_pointwise: Some(pw.clone()),
                stats,
                quantized: Some(hybrid),
            })
        }
        UnitPlan::DwOnly {
            layer,
            seed,
            target,
        } => {
            let dw_w = synth_weights(
                layer,
                cfg.weight_rank,
                cfg.weight_noise,
                *seed,
                cfg.reuse_units,
            );
            let m = cfg.m.min(layer.r * layer.s);
            let (ce, basis) = {
                let _t = escalate_obs::span("pipeline.decompose");
                crate::decompose::decompose_depthwise(&dw_w, m)?
            };
            let coeffs = Tensor::from_vec(&[layer.c, 1, m], ce.as_slice().to_vec());
            let d = Decomposed {
                basis,
                coeffs,
                captured_energy: 1.0,
            };
            let (stats, hybrid) = compress_decomposed(&layer.name, &dw_w, &d, cfg, *target)?;
            Ok(CompressedLayer {
                shape: layer.clone(),
                fused_pointwise: None,
                stats,
                quantized: Some(hybrid),
            })
        }
        UnitPlan::Pointwise {
            layer,
            seed,
            target,
        } => {
            let (stats, hybrid) = compress_pointwise(layer, cfg, *target, *seed)?;
            Ok(CompressedLayer {
                shape: layer.clone(),
                fused_pointwise: None,
                stats,
                quantized: Some(hybrid),
            })
        }
        UnitPlan::Conv {
            layer,
            seed,
            target,
        } => compress_layer_artifact(layer, cfg, *target, *seed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_layer() -> LayerShape {
        LayerShape::conv("test", 16, 32, 16, 16, 3, 1, 1)
    }

    #[test]
    fn synth_reuse_returns_the_identical_tensor() {
        let layer = small_layer();
        let a = synth_weights(&layer, 3, 0.1, 0xfeed_2001, true);
        let b = synth_weights(&layer, 3, 0.1, 0xfeed_2001, true);
        assert!(Arc::ptr_eq(&a, &b), "repeat lookup must share the tensor");
        // The cached tensor is the one the uncached path would build.
        let fresh = synth_weights(&layer, 3, 0.1, 0xfeed_2001, false);
        assert_eq!(a.as_slice(), fresh.as_slice());
        // Any key component change misses.
        let c = synth_weights(&layer, 4, 0.1, 0xfeed_2001, true);
        assert!(!Arc::ptr_eq(&a, &c));
        let d = synth_weights(&layer, 3, 0.1, 0xfeed_2002, true);
        assert!(!Arc::ptr_eq(&a, &d));
    }

    #[test]
    fn m_invariant_units_are_shared_across_m_bit_identically() {
        let layer = LayerShape::conv("pw-reuse-test", 24, 32, 8, 8, 1, 1, 0);
        let unit = UnitPlan::Pointwise {
            layer,
            seed: 0xfeed_2100,
            target: 0.8,
        };
        let at = |m: usize, reuse: bool| CompressionConfig {
            m,
            reuse_units: reuse,
            ..CompressionConfig::default()
        };
        // A pointwise unit never consults M, so design points that differ
        // only in M share one artifact — and it matches a cold build
        // field-for-field (f32/f64 debug formatting round-trips, so equal
        // strings mean equal bits).
        let cold = compress_unit(&unit, &at(4, true)).unwrap();
        let warm = compress_unit(&unit, &at(7, true)).unwrap();
        let fresh = compress_unit(&unit, &at(7, false)).unwrap();
        assert_eq!(format!("{cold:?}"), format!("{warm:?}"));
        assert_eq!(format!("{warm:?}"), format!("{fresh:?}"));
        // A conv unit is M-dependent: never unit-cached (the bench
        // layer's per-(model, M) artifact cache covers exact repeats).
        let conv = UnitPlan::Conv {
            layer: small_layer(),
            seed: 0xfeed_2101,
            target: 0.8,
        };
        assert!(m_invariant_unit_key(&conv, &at(4, true)).is_none());
        let m4 = compress_unit(&conv, &at(4, true)).unwrap();
        let m6 = compress_unit(&conv, &at(6, true)).unwrap();
        assert_ne!(m4.stats.compressed_bits, m6.stats.compressed_bits);
    }

    #[test]
    fn layer_compression_hits_sparsity_target() {
        let lc = compress_layer(&small_layer(), &CompressionConfig::default(), 0.9, 1).unwrap();
        assert!(
            (lc.coeff_sparsity() - 0.9).abs() < 0.03,
            "got {}",
            lc.coeff_sparsity()
        );
        assert!(lc.decomposed);
    }

    #[test]
    fn higher_sparsity_compresses_more() {
        let cfg = CompressionConfig::default();
        let lo = compress_layer(&small_layer(), &cfg, 0.5, 1).unwrap();
        let hi = compress_layer(&small_layer(), &cfg, 0.95, 1).unwrap();
        assert!(hi.compressed_bits < lo.compressed_bits);
        assert!(hi.compression_ratio() > lo.compression_ratio());
    }

    #[test]
    fn higher_sparsity_costs_accuracy() {
        let cfg = CompressionConfig::default();
        let lo = compress_layer(&small_layer(), &cfg, 0.3, 1).unwrap();
        let hi = compress_layer(&small_layer(), &cfg, 0.97, 1).unwrap();
        assert!(hi.weight_error >= lo.weight_error);
    }

    #[test]
    fn qat_improves_weight_error() {
        let base = CompressionConfig::default();
        let with_qat = CompressionConfig {
            qat_epochs: 30,
            ..base
        };
        let plain = compress_layer(&small_layer(), &base, 0.8, 1).unwrap();
        let trained = compress_layer(&small_layer(), &with_qat, 0.8, 1).unwrap();
        assert!(trained.weight_error <= plain.weight_error + 1e-4);
    }

    #[test]
    fn compressed_bits_are_far_below_fp32() {
        let lc = compress_layer(&small_layer(), &CompressionConfig::default(), 0.9, 1).unwrap();
        assert!(
            lc.compression_ratio() > 20.0,
            "got {:.1}x",
            lc.compression_ratio()
        );
    }

    #[test]
    fn accuracy_proxy_is_monotone() {
        assert!(accuracy_proxy(93.0, 0.1) > accuracy_proxy(93.0, 0.3));
        assert_eq!(accuracy_proxy(93.0, 0.0), 93.0);
        assert!(accuracy_proxy(50.0, 10.0) >= 0.0);
    }

    #[test]
    fn model_compression_small_model_end_to_end() {
        // Use MobileNet (smallest conv param count) as the end-to-end check.
        let profile = ModelProfile::for_model("MobileNet").unwrap();
        let result = compress_model(&profile, &CompressionConfig::default()).unwrap();
        assert!(!result.layers.is_empty());
        assert!(result.compression_ratio() > 1.0);
        // DSC pairs were fused: fewer entries than conv layers.
        let conv_count = profile.model().conv_layers().count();
        assert!(result.layers.len() < conv_count);
        // Sparsity lands near the profile target.
        assert!((result.coeff_sparsity() - profile.coeff_sparsity).abs() < 0.08);
    }

    #[test]
    fn first_layer_stays_dense() {
        let profile = ModelProfile::for_model("MobileNet").unwrap();
        let result = compress_model(&profile, &CompressionConfig::default()).unwrap();
        assert!(!result.layers[0].decomposed);
        assert_eq!(result.layers[0].coeff_total, 0);
    }

    #[test]
    fn ternary_storage_accounts_scales() {
        let coeffs3 = Tensor::from_fn(&[4, 8, 6], |i| ((i[0] + i[1] * i[2]) % 3) as f32 - 1.0);
        let t = TernaryCoeffs::ternarize(&coeffs3, 0.0).unwrap();
        let bits = ternary_storage_bits(&t);
        assert!(bits >= 4 * 10, "must include per-filter scale bits");
        assert!(bits >= t.nnz(), "must include sign bits");
    }
}
