//! Process-wide threading knob for every parallel stage of the workspace
//! (compression units, simulation seeds, layers, and the accelerator
//! comparison).
//!
//! All parallelism runs on rayon's global pool, so one setting governs
//! everything. Resolution order for the thread count:
//!
//! 1. An explicit request (`SimConfig::threads`, the CLI's `--threads`).
//! 2. The `ESCALATE_THREADS` environment variable.
//! 3. The machine's available parallelism.
//!
//! Every parallel stage in the workspace is order-preserving and seeds its
//! RNGs independently per work item, so results are bit-identical for any
//! thread count, including 1.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Environment variable overriding the default thread count.
pub const THREADS_ENV: &str = "ESCALATE_THREADS";

/// What `configure_threads` resolved to (0 = not yet configured).
static RESOLVED: AtomicUsize = AtomicUsize::new(0);

fn env_threads() -> Option<usize> {
    std::env::var(THREADS_ENV)
        .ok()?
        .trim()
        .parse::<usize>()
        .ok()
        .filter(|&n| n > 0)
}

/// Resolves a requested thread count (`0` = auto) against the
/// `ESCALATE_THREADS` environment variable and the machine size.
pub fn resolve_threads(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    env_threads().unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Configures the global pool to `requested` threads (`0` = auto).
///
/// The first call wins — rayon's global pool is built once per process —
/// so harness entry points call this before any parallel work. Later calls
/// with a different count are ignored (the pool cannot be resized), which
/// is why per-run sequential forcing goes through `threads == 1` fast
/// paths instead. Returns the thread count the pool actually uses.
pub fn configure_threads(requested: usize) -> usize {
    let n = resolve_threads(requested);
    if rayon::ThreadPoolBuilder::new()
        .num_threads(n)
        .build_global()
        .is_ok()
    {
        RESOLVED.store(n, Ordering::Relaxed);
        return n;
    }
    effective_threads()
}

/// Thread count of the configured pool (or what it would default to).
pub fn effective_threads() -> usize {
    match RESOLVED.load(Ordering::Relaxed) {
        0 => rayon::current_num_threads(),
        n => n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_request_wins() {
        assert_eq!(resolve_threads(3), 3);
    }

    #[test]
    fn auto_resolves_to_positive() {
        assert!(resolve_threads(0) >= 1);
    }

    #[test]
    fn configure_is_idempotent() {
        let first = configure_threads(2);
        let second = configure_threads(7);
        assert_eq!(first, second, "the first configuration must win");
        assert!(effective_threads() >= 1);
    }
}
