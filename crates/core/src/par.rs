//! Process-wide threading knob for every parallel stage of the workspace
//! (compression units, simulation seeds, layers, and the accelerator
//! comparison).
//!
//! All parallelism runs on rayon's global pool, so one setting governs
//! everything. Resolution order for the thread count:
//!
//! 1. An explicit request (`SimConfig::threads`, the CLI's `--threads`).
//! 2. The `ESCALATE_THREADS` environment variable.
//! 3. The machine's available parallelism.
//!
//! Every parallel stage in the workspace is order-preserving and seeds its
//! RNGs independently per work item, so results are bit-identical for any
//! thread count, including 1.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Environment variable overriding the default thread count.
pub const THREADS_ENV: &str = "ESCALATE_THREADS";

/// What `configure_threads` resolved to (0 = not yet configured).
static RESOLVED: AtomicUsize = AtomicUsize::new(0);

/// Parses a positive-integer override from the environment.
///
/// `None` when `var` is unset. When it is set but not a positive integer
/// (garbage, `0`, negative), prints a one-line warning to stderr and
/// returns `None` so the caller falls back to its default — previously
/// such values were silently swallowed, which made a typo'd
/// `ESCALATE_THREADS=O8` indistinguishable from an unset one.
pub fn positive_env(var: &str) -> Option<u64> {
    let raw = std::env::var(var).ok()?;
    let parsed = parse_positive(&raw);
    if parsed.is_none() {
        eprintln!("warning: ignoring {var}={raw:?}: expected a positive integer");
    }
    parsed
}

/// The strict variant of [`positive_env`] for long-running entry points:
/// an invalid value is an error the caller must surface, not a warning
/// followed by a silent fallback. A one-shot run tolerates a fallback; a
/// daemon that starts with a half-parsed environment serves the wrong
/// configuration for its whole lifetime.
///
/// `Ok(None)` when `var` is unset, `Ok(Some(n))` for a positive integer.
///
/// # Errors
///
/// A set-but-invalid value returns a user-facing message naming the
/// variable and the offending value.
pub fn strict_positive_env(var: &str) -> Result<Option<u64>, String> {
    match std::env::var(var) {
        Err(_) => Ok(None),
        Ok(raw) => parse_positive(&raw).map(Some).ok_or_else(|| {
            format!("{var}={raw:?}: expected a positive integer (refusing to fall back)")
        }),
    }
}

/// The pure parser behind [`positive_env`]: `Some(n)` for a positive
/// integer (surrounding whitespace allowed), `None` otherwise.
pub fn parse_positive(raw: &str) -> Option<u64> {
    raw.trim().parse::<u64>().ok().filter(|&n| n > 0)
}

fn env_threads() -> Option<usize> {
    positive_env(THREADS_ENV).map(|n| n as usize)
}

/// Resolves a requested thread count (`0` = auto) against the
/// `ESCALATE_THREADS` environment variable and the machine size.
pub fn resolve_threads(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    env_threads().unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Configures the global pool to `requested` threads (`0` = auto).
///
/// The first call wins — rayon's global pool is built once per process —
/// so harness entry points call this before any parallel work. Later calls
/// with a different count are ignored (the pool cannot be resized), which
/// is why per-run sequential forcing goes through `threads == 1` fast
/// paths instead. Returns the thread count the pool actually uses.
pub fn configure_threads(requested: usize) -> usize {
    let n = resolve_threads(requested);
    if rayon::ThreadPoolBuilder::new()
        .num_threads(n)
        .build_global()
        .is_ok()
    {
        RESOLVED.store(n, Ordering::Relaxed);
        return n;
    }
    effective_threads()
}

/// Thread count of the configured pool (or what it would default to).
pub fn effective_threads() -> usize {
    match RESOLVED.load(Ordering::Relaxed) {
        0 => rayon::current_num_threads(),
        n => n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_request_wins() {
        assert_eq!(resolve_threads(3), 3);
    }

    #[test]
    fn auto_resolves_to_positive() {
        assert!(resolve_threads(0) >= 1);
    }

    #[test]
    fn parse_positive_accepts_only_positive_integers() {
        assert_eq!(parse_positive("4"), Some(4));
        assert_eq!(parse_positive(" 12 "), Some(12));
        assert_eq!(parse_positive("0"), None);
        assert_eq!(parse_positive("-3"), None);
        assert_eq!(parse_positive("eight"), None);
        assert_eq!(parse_positive(""), None);
    }

    #[test]
    fn positive_env_warns_on_garbage_and_reads_valid_values() {
        // One test (not several) so the env mutations cannot race each
        // other under the parallel test runner; the variable names are
        // unique to this test.
        std::env::set_var("ESCALATE_PAR_TEST_BAD", "many");
        assert_eq!(positive_env("ESCALATE_PAR_TEST_BAD"), None);
        std::env::set_var("ESCALATE_PAR_TEST_ZERO", "0");
        assert_eq!(positive_env("ESCALATE_PAR_TEST_ZERO"), None);
        std::env::set_var("ESCALATE_PAR_TEST_OK", " 6 ");
        assert_eq!(positive_env("ESCALATE_PAR_TEST_OK"), Some(6));
        assert_eq!(positive_env("ESCALATE_PAR_TEST_UNSET"), None);
    }

    #[test]
    fn strict_positive_env_errors_instead_of_falling_back() {
        // Unique variable names so the env mutations cannot race other
        // tests under the parallel runner.
        std::env::set_var("ESCALATE_PAR_STRICT_BAD", "O8");
        let e = strict_positive_env("ESCALATE_PAR_STRICT_BAD").unwrap_err();
        assert!(e.contains("ESCALATE_PAR_STRICT_BAD") && e.contains("O8"));
        std::env::set_var("ESCALATE_PAR_STRICT_OK", "4");
        assert_eq!(strict_positive_env("ESCALATE_PAR_STRICT_OK"), Ok(Some(4)));
        assert_eq!(strict_positive_env("ESCALATE_PAR_STRICT_UNSET"), Ok(None));
    }

    #[test]
    fn configure_is_idempotent() {
        let first = configure_threads(2);
        let second = configure_threads(7);
        assert_eq!(first, second, "the first configuration must win");
        assert!(effective_threads() >= 1);
    }
}
