//! Serialization of compressed-model artifacts.
//!
//! A small, versioned binary format (no external dependencies) so a
//! compressed model can be produced once and re-loaded by the simulator,
//! the CLI, or downstream tools. The format stores exactly what the
//! accelerator consumes: per layer, the quantized basis kernels, the
//! ternary coefficient tensor with its per-filter scales, and the storage
//! accounting.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic   b"ESCA"            4 bytes
//! version u32                currently 1
//! layers  u32
//! per layer:
//!   name            u32 len + UTF-8 bytes
//!   flags           u8  (bit 0: has quantized payload)
//!   stats           original_bits u64, compressed_bits u64,
//!                   original_params u64, remaining_params u64,
//!                   coeff_total u64, coeff_nnz u64, weight_error f32,
//!                   decomposed u8
//!   payload (when flagged):
//!     basis shape   3 × u32, basis scale f32, basis values i8 × (M·R·S)
//!     coeff shape   3 × u32 (K, C, M)
//!     w_pos         f32 × K
//!     quotient      u8 × K
//!     ternary       i8 × (K·C·M)
//! ```

use crate::pipeline::LayerCompression;
use crate::quant::{HybridQuantized, QuantizedBasis, TernaryCoeffs};
use escalate_tensor::Tensor;
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"ESCA";
const VERSION: u32 = 1;

/// Errors raised by artifact (de)serialization.
#[derive(Debug)]
pub enum ArtifactError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The stream is not an artifact file or is corrupted.
    Format(String),
    /// The artifact was written by an incompatible version.
    Version(u32),
}

impl std::fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArtifactError::Io(e) => write!(f, "artifact i/o failure: {e}"),
            ArtifactError::Format(m) => write!(f, "malformed artifact: {m}"),
            ArtifactError::Version(v) => write!(f, "unsupported artifact version {v}"),
        }
    }
}

impl std::error::Error for ArtifactError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ArtifactError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ArtifactError {
    fn from(e: io::Error) -> Self {
        ArtifactError::Io(e)
    }
}

/// A serializable compressed layer: the accounting plus the optional
/// quantized payload (absent for the dense fallback layer).
#[derive(Debug, Clone)]
pub struct LayerArtifact {
    /// Storage/accuracy accounting.
    pub stats: LayerCompression,
    /// The quantized decomposed weights, when the layer was compressed.
    pub quantized: Option<HybridQuantized>,
}

/// Writes a list of layer artifacts to `w`.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_artifacts<W: Write>(mut w: W, layers: &[LayerArtifact]) -> Result<(), ArtifactError> {
    w.write_all(MAGIC)?;
    put_u32(&mut w, VERSION)?;
    put_u32(&mut w, layers.len() as u32)?;
    for l in layers {
        put_str(&mut w, &l.stats.name)?;
        w.write_all(&[u8::from(l.quantized.is_some())])?;
        put_u64(&mut w, l.stats.original_bits as u64)?;
        put_u64(&mut w, l.stats.compressed_bits as u64)?;
        put_u64(&mut w, l.stats.original_params as u64)?;
        put_u64(&mut w, l.stats.remaining_params as u64)?;
        put_u64(&mut w, l.stats.coeff_total as u64)?;
        put_u64(&mut w, l.stats.coeff_nnz as u64)?;
        w.write_all(&l.stats.weight_error.to_le_bytes())?;
        w.write_all(&[u8::from(l.stats.decomposed)])?;
        if let Some(q) = &l.quantized {
            let [m, r, s] = q.basis.shape();
            put_u32(&mut w, m as u32)?;
            put_u32(&mut w, r as u32)?;
            put_u32(&mut w, s as u32)?;
            w.write_all(&q.basis.scale.to_le_bytes())?;
            w.write_all(&q.basis.q.iter().map(|&v| v as u8).collect::<Vec<_>>())?;
            let [k, c, cm] = q.coeffs.shape();
            put_u32(&mut w, k as u32)?;
            put_u32(&mut w, c as u32)?;
            put_u32(&mut w, cm as u32)?;
            for &v in &q.coeffs.w_pos {
                w.write_all(&v.to_le_bytes())?;
            }
            w.write_all(&q.coeffs.quotient_code)?;
            w.write_all(
                &q.coeffs
                    .ternary
                    .iter()
                    .map(|&v| v as u8)
                    .collect::<Vec<_>>(),
            )?;
        }
    }
    Ok(())
}

/// Reads a list of layer artifacts from `r`.
///
/// # Errors
///
/// Returns [`ArtifactError::Format`] for malformed input and
/// [`ArtifactError::Version`] for unknown versions.
pub fn read_artifacts<R: Read>(mut r: R) -> Result<Vec<LayerArtifact>, ArtifactError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(ArtifactError::Format("bad magic".into()));
    }
    let version = get_u32(&mut r)?;
    if version != VERSION {
        return Err(ArtifactError::Version(version));
    }
    let n = get_u32(&mut r)? as usize;
    if n > 1_000_000 {
        return Err(ArtifactError::Format(format!(
            "implausible layer count {n}"
        )));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let name = get_str(&mut r)?;
        let has_payload = get_u8(&mut r)? != 0;
        let stats = LayerCompression {
            name,
            original_bits: get_u64(&mut r)? as usize,
            compressed_bits: get_u64(&mut r)? as usize,
            original_params: get_u64(&mut r)? as usize,
            remaining_params: get_u64(&mut r)? as usize,
            coeff_total: get_u64(&mut r)? as usize,
            coeff_nnz: get_u64(&mut r)? as usize,
            weight_error: get_f32(&mut r)?,
            decomposed: get_u8(&mut r)? != 0,
        };
        let quantized = if has_payload {
            let (m, rr, s) = (
                get_u32(&mut r)? as usize,
                get_u32(&mut r)? as usize,
                get_u32(&mut r)? as usize,
            );
            check_dims(&[m, rr, s])?;
            let scale = get_f32(&mut r)?;
            let mut q = vec![0u8; m * rr * s];
            r.read_exact(&mut q)?;
            let basis_vals: Vec<f32> = q.iter().map(|&b| (b as i8) as f32 * scale).collect();
            let basis = QuantizedBasis::quantize(&Tensor::from_vec(&[m, rr, s], basis_vals));
            let (k, c, cm) = (
                get_u32(&mut r)? as usize,
                get_u32(&mut r)? as usize,
                get_u32(&mut r)? as usize,
            );
            check_dims(&[k, c, cm])?;
            let mut w_pos = Vec::with_capacity(k);
            for _ in 0..k {
                w_pos.push(get_f32(&mut r)?);
            }
            let mut quotient_code = vec![0u8; k];
            r.read_exact(&mut quotient_code)?;
            let mut tern = vec![0u8; k * c * cm];
            r.read_exact(&mut tern)?;
            let ternary: Vec<i8> = tern.into_iter().map(|b| b as i8).collect();
            if ternary.iter().any(|&v| !(-1..=1).contains(&v)) {
                return Err(ArtifactError::Format(
                    "non-ternary coefficient value".into(),
                ));
            }
            Some(HybridQuantized {
                basis,
                coeffs: TernaryCoeffs {
                    ternary,
                    w_pos,
                    quotient_code,
                    shape: [k, c, cm],
                },
            })
        } else {
            None
        };
        out.push(LayerArtifact { stats, quantized });
    }
    Ok(out)
}

fn check_dims(dims: &[usize]) -> Result<(), ArtifactError> {
    let n: usize = dims.iter().product();
    if dims.contains(&0) || n > 1 << 30 {
        return Err(ArtifactError::Format(format!("implausible dims {dims:?}")));
    }
    Ok(())
}

fn put_u32<W: Write>(w: &mut W, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}
fn put_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}
fn put_str<W: Write>(w: &mut W, s: &str) -> io::Result<()> {
    put_u32(w, s.len() as u32)?;
    w.write_all(s.as_bytes())
}
fn get_u8<R: Read>(r: &mut R) -> Result<u8, ArtifactError> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0])
}
fn get_u32<R: Read>(r: &mut R) -> Result<u32, ArtifactError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}
fn get_u64<R: Read>(r: &mut R) -> Result<u64, ArtifactError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}
fn get_f32<R: Read>(r: &mut R) -> Result<f32, ArtifactError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(f32::from_le_bytes(b))
}
fn get_str<R: Read>(r: &mut R) -> Result<String, ArtifactError> {
    let len = get_u32(r)? as usize;
    if len > 1 << 16 {
        return Err(ArtifactError::Format(format!(
            "implausible name length {len}"
        )));
    }
    let mut b = vec![0u8; len];
    r.read_exact(&mut b)?;
    String::from_utf8(b).map_err(|_| ArtifactError::Format("non-UTF-8 layer name".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{compress_layer_artifact, CompressionConfig};
    use escalate_models::LayerShape;

    fn sample_artifacts() -> Vec<LayerArtifact> {
        let layer = LayerShape::conv("t", 8, 12, 8, 8, 3, 1, 1);
        let a = compress_layer_artifact(&layer, &CompressionConfig::default(), 0.8, 3).unwrap();
        vec![
            LayerArtifact {
                stats: a.stats.clone(),
                quantized: a.quantized,
            },
            LayerArtifact {
                stats: LayerCompression {
                    name: "dense".into(),
                    original_bits: 100,
                    compressed_bits: 25,
                    original_params: 3,
                    remaining_params: 3,
                    coeff_total: 0,
                    coeff_nnz: 0,
                    weight_error: 0.01,
                    decomposed: false,
                },
                quantized: None,
            },
        ]
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let arts = sample_artifacts();
        let mut buf = Vec::new();
        write_artifacts(&mut buf, &arts).unwrap();
        let back = read_artifacts(buf.as_slice()).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].stats.name, arts[0].stats.name);
        assert_eq!(back[0].stats.compressed_bits, arts[0].stats.compressed_bits);
        assert!((back[0].stats.weight_error - arts[0].stats.weight_error).abs() < 1e-9);
        let (qa, qb) = (
            arts[0].quantized.as_ref().unwrap(),
            back[0].quantized.as_ref().unwrap(),
        );
        assert_eq!(qa.coeffs.ternary, qb.coeffs.ternary);
        assert_eq!(qa.coeffs.quotient_code, qb.coeffs.quotient_code);
        assert_eq!(qa.coeffs.shape(), qb.coeffs.shape());
        for (a, b) in qa.coeffs.w_pos.iter().zip(&qb.coeffs.w_pos) {
            assert!((a - b).abs() < 1e-9);
        }
        // The basis survives the int8 roundtrip exactly (same grid).
        assert!(qa
            .basis
            .dequantize()
            .all_close(&qb.basis.dequantize(), 1e-5));
        assert!(back[1].quantized.is_none());
        assert!(!back[1].stats.decomposed);
    }

    #[test]
    fn format_is_byte_stable() {
        // Golden snapshot of a tiny artifact: any byte-level drift in the
        // format is a breaking change and must bump VERSION.
        let tern = crate::quant::TernaryCoeffs::ternarize(
            &escalate_tensor::Tensor::from_vec(&[1, 2, 1], vec![1.0, -1.0]),
            0.0,
        )
        .unwrap();
        let basis =
            crate::quant::QuantizedBasis::quantize(&escalate_tensor::Tensor::ones(&[1, 1, 1]));
        let art = LayerArtifact {
            stats: LayerCompression {
                name: "g".into(),
                original_bits: 64,
                compressed_bits: 8,
                original_params: 2,
                remaining_params: 2,
                coeff_total: 2,
                coeff_nnz: 2,
                weight_error: 0.5,
                decomposed: true,
            },
            quantized: Some(HybridQuantized {
                basis,
                coeffs: tern,
            }),
        };
        let mut buf = Vec::new();
        write_artifacts(&mut buf, &[art]).unwrap();
        let expected: Vec<u8> = vec![
            b'E', b'S', b'C', b'A', // magic
            1, 0, 0, 0, // version
            1, 0, 0, 0, // layer count
            1, 0, 0, 0, b'g', // name
            1,    // has payload
            64, 0, 0, 0, 0, 0, 0, 0, // original_bits
            8, 0, 0, 0, 0, 0, 0, 0, // compressed_bits
            2, 0, 0, 0, 0, 0, 0, 0, // original_params
            2, 0, 0, 0, 0, 0, 0, 0, // remaining_params
            2, 0, 0, 0, 0, 0, 0, 0, // coeff_total
            2, 0, 0, 0, 0, 0, 0, 0, // coeff_nnz
            0, 0, 0, 63, // weight_error 0.5f32
            1,  // decomposed
            1, 0, 0, 0, 1, 0, 0, 0, 1, 0, 0, 0, // basis shape 1x1x1
            4, 2, 1, 60,  // basis scale 1/127 f32
            127, // basis value
            1, 0, 0, 0, 2, 0, 0, 0, 1, 0, 0, 0, // coeff shape 1x2x1
            0, 0, 128, 63, // w_pos[0] = 1.0
            1,  // quotient code (w_neg/w_pos = 1.0)
            1, 255, // ternary +1, -1
        ];
        assert_eq!(buf, expected, "artifact byte layout drifted — bump VERSION");
        // And it still parses back.
        assert_eq!(read_artifacts(buf.as_slice()).unwrap().len(), 1);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let e = read_artifacts(&b"NOPE\x01\x00\x00\x00"[..]).unwrap_err();
        assert!(matches!(e, ArtifactError::Format(_)));
    }

    #[test]
    fn future_versions_are_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&99u32.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            read_artifacts(buf.as_slice()),
            Err(ArtifactError::Version(99))
        ));
    }

    #[test]
    fn truncated_streams_fail_cleanly() {
        let arts = sample_artifacts();
        let mut buf = Vec::new();
        write_artifacts(&mut buf, &arts).unwrap();
        for cut in [3usize, 9, 20, buf.len() / 2, buf.len() - 1] {
            assert!(
                read_artifacts(&buf[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn corrupted_ternary_values_are_rejected() {
        let arts = sample_artifacts();
        let mut buf = Vec::new();
        write_artifacts(&mut buf, &arts).unwrap();
        // Flip the final ternary byte of layer 0's payload region to 7.
        // The payload's ternary block ends right before layer 1's record;
        // scan for a -1/0/1 byte run and corrupt inside it.
        let idx = buf.len() - 200;
        buf[idx] = 7;
        // Either a format error or (if we hit metadata) some other error —
        // never a silent success with an invalid coefficient.
        if let Ok(parsed) = read_artifacts(buf.as_slice()) {
            for l in parsed {
                if let Some(q) = l.quantized {
                    assert!(q.coeffs.ternary.iter().all(|&v| (-1..=1).contains(&v)));
                }
            }
        }
    }
}
