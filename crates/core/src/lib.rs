#![warn(missing_docs)]

//! The ESCALATE compression algorithm (the paper's primary contribution,
//! Section 3).
//!
//! ESCALATE compresses convolutional layers through *kernel decomposition*:
//! the reshaped weight `W' ∈ R^{KC×RS}` is factored into `M` shared basis
//! kernels `B ∈ R^{M×RS}` and a large coefficient tensor
//! `Ce ∈ R^{K×C×M}`. The forward pass then splits into two stages whose
//! order this crate reorganizes (Eq. (2) → Eq. (3)) so the weighted
//! accumulation happens *before* the basis convolutions, shrinking the
//! intermediate feature maps from `CM` channels to `M` channels.
//!
//! Modules:
//!
//! - [`mod@decompose`] — the kernel-level SVD factorization,
//! - [`reorg`] — both computation orders plus equivalence checks,
//! - [`quant`] — hybrid quantization: 8-bit basis kernels, per-filter
//!   ternary coefficients with trained scaling factors and a 2-bit
//!   negative/positive quotient (Eq. (4)),
//! - [`qat`] — a straight-through-estimator retraining loop recovering
//!   output fidelity after ternarization,
//! - [`dsc`] — decomposition of depthwise-separable convolutions and the
//!   Hadamard fold of pointwise weights into the coefficients (Eq. (5)),
//! - [`pipeline`] — the whole-model compression pipeline with exact
//!   SparseMap storage accounting (regenerates Table 1).

pub mod artifact;
pub mod decompose;
pub mod dsc;
pub mod error;
pub mod par;
pub mod pipeline;
pub mod qat;
pub mod quant;
pub mod reorg;

pub use decompose::{decompose, decompose_adaptive, Decomposed};
pub use error::EscalateError;
pub use pipeline::{
    compress_layer, compress_model, compress_model_artifacts, CompressedLayer, LayerCompression,
    ModelCompression,
};
pub use quant::{HybridQuantized, QuantizedBasis, TernaryCoeffs};
