//! Quantization-aware retraining of the ternary coefficients (paper §3.2).
//!
//! Following the trained-ternary-quantization scheme the paper adopts from
//! Zhu et al., a full-precision shadow copy of the coefficients is kept
//! during training. Each step ternarizes the shadow copy (Eq. (4)),
//! measures the error of the quantized coefficients against the target,
//! and backpropagates with a straight-through estimator: the gradient of
//! the quantized value updates both the shadow copy and the per-filter
//! scaling factors.
//!
//! The training loss here is the coefficient-space L2 error. For an
//! orthonormal basis (which [`crate::decompose()`] produces) and
//! uncorrelated inputs this equals the expected layer-output L2 error, so
//! it is the honest stand-in for the paper's task loss given that no DNN
//! training stack exists offline (see DESIGN.md).

use crate::error::EscalateError;
use crate::quant::{encode_quotient, TernaryCoeffs};
use escalate_tensor::Tensor;

/// Configuration for the retraining loop.
#[derive(Debug, Clone, Copy)]
pub struct QatConfig {
    /// Number of full passes over the coefficients.
    pub epochs: usize,
    /// Learning rate for the shadow copy.
    pub lr: f32,
    /// Learning rate for the scaling factors (typically smaller).
    pub scale_lr: f32,
    /// Ternarization threshold factor `t` of Eq. (4).
    pub threshold: f32,
}

impl Default for QatConfig {
    fn default() -> Self {
        // t = 0.05 is the paper's setting (§5.1.1).
        QatConfig {
            epochs: 50,
            lr: 0.1,
            scale_lr: 0.05,
            threshold: 0.05,
        }
    }
}

/// Result of quantization-aware retraining.
#[derive(Debug, Clone)]
pub struct QatResult {
    /// The retrained ternary coefficients.
    pub coeffs: TernaryCoeffs,
    /// Coefficient-space relative error before retraining.
    pub initial_error: f32,
    /// Coefficient-space relative error after retraining.
    pub final_error: f32,
    /// Per-epoch mean-squared-error curve.
    pub loss_curve: Vec<f32>,
}

/// Retrains ternary coefficients against the full-precision target
/// coefficients.
///
/// # Errors
///
/// Returns [`EscalateError::InvalidQuantization`] for an out-of-range
/// threshold.
///
/// # Examples
///
/// ```
/// use escalate_core::qat::{retrain_coeffs, QatConfig};
/// use escalate_tensor::Tensor;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let target = Tensor::from_fn(&[4, 8, 6], |i| ((i[0] * 3 + i[1] + i[2] * 5) % 7) as f32 - 3.0);
/// let result = retrain_coeffs(&target, &QatConfig::default())?;
/// assert!(result.final_error <= result.initial_error);
/// # Ok(())
/// # }
/// ```
pub fn retrain_coeffs(target: &Tensor, cfg: &QatConfig) -> Result<QatResult, EscalateError> {
    let initial = TernaryCoeffs::ternarize(target, cfg.threshold)?;
    let initial_error = target.relative_error(&initial.dequantize());

    let [k, c, m]: [usize; 3] = target.shape().try_into().expect("coeffs must be K*C*M");
    let slice_len = c * m;
    let n = target.len().max(1);

    // Trainable state: shadow copy + per-filter scales.
    let mut shadow: Vec<f32> = target.as_slice().to_vec();
    let mut w_pos: Vec<f32> = initial.w_pos.clone();
    let mut w_neg: Vec<f32> = (0..k).map(|ki| initial.w_neg(ki)).collect();

    let mut loss_curve = Vec::with_capacity(cfg.epochs);
    let mut ternary = vec![0i8; n];
    // Track the best epoch: epoch 0 reproduces plain ternarization, so the
    // returned result can never be worse than post-training quantization.
    type Snapshot = (f32, Vec<i8>, Vec<f32>, Vec<f32>);
    let mut best: Option<Snapshot> = None;

    for _ in 0..cfg.epochs.max(1) {
        // Scales as used by this epoch's forward pass (each slice's scale
        // is updated only after that slice has been evaluated).
        let epoch_w_pos = w_pos.clone();
        let epoch_w_neg = w_neg.clone();
        // Forward: ternarize the shadow copy with the current threshold.
        let mut mse = 0.0f32;
        for ki in 0..k {
            let range = ki * slice_len..(ki + 1) * slice_len;
            let max = shadow[range.clone()]
                .iter()
                .fold(0.0f32, |a, &v| a.max(v.abs()));
            let thr = cfg.threshold * max;
            let mut g_pos = 0.0f32;
            let mut g_neg = 0.0f32;
            for i in range {
                let t = if shadow[i] > thr {
                    1i8
                } else if shadow[i] < -thr {
                    -1
                } else {
                    0
                };
                ternary[i] = t;
                let q = match t {
                    1 => w_pos[ki],
                    -1 => -w_neg[ki],
                    _ => 0.0,
                };
                let e = q - target.as_slice()[i];
                mse += e * e;
                let g = 2.0 * e / n as f32;
                // Straight-through estimator: the quantized gradient flows
                // unchanged to the shadow copy...
                shadow[i] -= cfg.lr * g;
                // ...and, scaled by the quantizer's partial derivative, to
                // the per-filter scales.
                match t {
                    1 => g_pos += g,
                    -1 => g_neg -= g,
                    _ => {}
                }
            }
            w_pos[ki] = (w_pos[ki] - cfg.scale_lr * g_pos).max(f32::MIN_POSITIVE);
            w_neg[ki] = (w_neg[ki] - cfg.scale_lr * g_neg).max(f32::MIN_POSITIVE);
        }
        let epoch_mse = mse / n as f32;
        loss_curve.push(epoch_mse);
        if best.as_ref().is_none_or(|(b, _, _, _)| epoch_mse < *b) {
            best = Some((epoch_mse, ternary.clone(), epoch_w_pos, epoch_w_neg));
        }
    }

    let (_, best_ternary, best_w_pos, best_w_neg) = best.expect("at least one epoch ran");
    // Re-encode the 2-bit quotient from the trained scales.
    let quotient_code: Vec<u8> = (0..k)
        .map(|ki| encode_quotient(best_w_neg[ki] / best_w_pos[ki]))
        .collect();

    let result = TernaryCoeffs {
        ternary: best_ternary,
        w_pos: best_w_pos,
        quotient_code,
        shape: [k, c, m],
    };
    let final_error = target.relative_error(&result.dequantize());
    // The in-loop MSE ignores the 2-bit quotient rounding; guard against
    // the rare case where that rounding makes the "best" epoch worse than
    // plain post-training ternarization.
    if final_error > initial_error {
        return Ok(QatResult {
            coeffs: initial,
            initial_error,
            final_error: initial_error,
            loss_curve,
        });
    }
    Ok(QatResult {
        coeffs: result,
        initial_error,
        final_error,
        loss_curve,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(k: usize, c: usize, m: usize) -> Tensor {
        Tensor::from_fn(&[k, c, m], |i| {
            let h = i[0] * 131 + i[1] * 31 + i[2] * 7;
            (((h % 19) as f32) - 9.0) * 0.07 + (((h % 5) as f32) - 2.0) * 0.2
        })
    }

    #[test]
    fn retraining_never_hurts() {
        let t = target(6, 12, 6);
        let r = retrain_coeffs(&t, &QatConfig::default()).unwrap();
        assert!(
            r.final_error <= r.initial_error + 1e-6,
            "final {} vs initial {}",
            r.final_error,
            r.initial_error
        );
    }

    #[test]
    fn loss_curve_trends_down() {
        let t = target(4, 8, 6);
        let r = retrain_coeffs(
            &t,
            &QatConfig {
                epochs: 80,
                ..QatConfig::default()
            },
        )
        .unwrap();
        let first = r.loss_curve[0];
        let last = *r.loss_curve.last().unwrap();
        assert!(last < first, "loss should decrease: {first} → {last}");
    }

    #[test]
    fn already_ternary_targets_reach_zero_error() {
        // A target that is exactly representable: ±0.5 and 0.
        let t = Tensor::from_fn(&[2, 4, 4], |i| match (i[0] + i[1] + i[2]) % 3 {
            0 => 0.5,
            1 => -0.5,
            _ => 0.0,
        });
        let r = retrain_coeffs(
            &t,
            &QatConfig {
                epochs: 200,
                lr: 0.05,
                scale_lr: 0.02,
                threshold: 0.05,
            },
        )
        .unwrap();
        assert!(r.final_error < 0.05, "got {}", r.final_error);
    }

    #[test]
    fn bad_threshold_is_rejected() {
        let t = target(2, 2, 2);
        assert!(retrain_coeffs(
            &t,
            &QatConfig {
                threshold: 1.5,
                ..QatConfig::default()
            }
        )
        .is_err());
    }

    #[test]
    fn scales_stay_positive() {
        let t = target(5, 6, 4);
        let r = retrain_coeffs(
            &t,
            &QatConfig {
                epochs: 100,
                lr: 0.3,
                scale_lr: 0.2,
                threshold: 0.05,
            },
        )
        .unwrap();
        for k in 0..5 {
            assert!(r.coeffs.w_pos[k] > 0.0);
            assert!(r.coeffs.w_neg(k) > 0.0);
        }
    }
}
