//! Decomposition of depthwise-separable convolutions (paper §3.3, Eq. (5)).
//!
//! A DSC block is a depthwise convolution `W_DW ∈ R^{C×RS}` followed by a
//! pointwise convolution `W_PW ∈ R^{K×C}`. ESCALATE decomposes the
//! depthwise kernels as `W_DW = Ce' · B` and folds the pointwise weights
//! into the coefficients with a Hadamard product:
//! `Ce(k, c, m) = W_PW(k, c) · Ce'(c, m)`. The result has exactly the same
//! `(basis, coeffs)` form as a decomposed regular convolution, so the same
//! Basis-First hardware executes both.

use crate::decompose::{decompose_depthwise, Decomposed};
use crate::error::EscalateError;
use escalate_tensor::{conv, Matrix, Tensor};

/// Decomposes a DSC block into the unified `(basis, coeffs)` form.
///
/// `dw_weights` is `C×R×S`, `pw_weights` is `K×C`; the returned
/// coefficients are `K×C×M`.
///
/// # Errors
///
/// Returns [`EscalateError::InvalidBasisCount`] for a bad `m` and
/// propagates SVD failures.
///
/// # Panics
///
/// Panics if the channel counts of the two weight sets disagree.
///
/// # Examples
///
/// ```
/// use escalate_core::dsc::decompose_dsc;
/// use escalate_tensor::{Matrix, Tensor};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let dw = Tensor::from_fn(&[4, 3, 3], |i| (i[0] + i[1] * i[2]) as f32);
/// let pw = Matrix::from_vec(8, 4, (0..32).map(|v| v as f32 * 0.1).collect());
/// let d = decompose_dsc(&dw, &pw, 4)?;
/// assert_eq!(d.coeffs.shape(), &[8, 4, 4]);
/// # Ok(())
/// # }
/// ```
pub fn decompose_dsc(
    dw_weights: &Tensor,
    pw_weights: &Matrix,
    m: usize,
) -> Result<Decomposed, EscalateError> {
    let [c, _r, _s]: [usize; 3] = dw_weights
        .shape()
        .try_into()
        .expect("dw weights must be C*R*S");
    assert_eq!(
        pw_weights.cols(),
        c,
        "pointwise weights must have C columns"
    );
    let k = pw_weights.rows();

    let (ce_prime, basis) = decompose_depthwise(dw_weights, m)?;
    let m = basis.shape()[0];

    // Eq. (5): Ce(k, c, m) = W_PW(k, c) · Ce'(c, m).
    let mut coeffs = Tensor::zeros(&[k, c, m]);
    for ki in 0..k {
        for ci in 0..c {
            let w = pw_weights.get(ki, ci);
            for mi in 0..m {
                coeffs.set(&[ki, ci, mi], w * ce_prime.get(ci, mi));
            }
        }
    }
    Ok(Decomposed {
        basis,
        coeffs,
        captured_energy: 1.0,
    })
}

/// Reference DSC forward pass: depthwise convolution followed by pointwise.
///
/// `input` is `C×X×Y`; the result is `K×X'×Y'`.
pub fn dsc_forward(
    input: &Tensor,
    dw_weights: &Tensor,
    pw_weights: &Matrix,
    stride: usize,
    pad: usize,
) -> Tensor {
    let dw_out = conv::depthwise_conv2d(input, dw_weights, stride, pad);
    conv::pointwise_conv2d(&dw_out, pw_weights)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reorg::forward_eq3;

    fn setup(c: usize, k: usize) -> (Tensor, Matrix, Tensor) {
        let dw = Tensor::from_fn(&[c, 3, 3], |i| {
            (((i[0] * 29 + i[1] * 5 + i[2] * 3) % 11) as f32 - 5.0) * 0.15
        });
        let pw = Matrix::from_vec(
            k,
            c,
            (0..k * c)
                .map(|i| (((i * 17) % 13) as f32 - 6.0) * 0.1)
                .collect(),
        );
        let input = Tensor::from_fn(&[c, 6, 6], |i| {
            (((i[0] * 7 + i[1] * 3 + i[2]) % 9) as f32 - 4.0) * 0.2
        });
        (dw, pw, input)
    }

    #[test]
    fn full_rank_dsc_decomposition_matches_reference() {
        let (dw, pw, input) = setup(5, 7);
        let d = decompose_dsc(&dw, &pw, 9).unwrap();
        let reference = dsc_forward(&input, &dw, &pw, 1, 1);
        let (ours, _) = forward_eq3(&d, &input, 1, 1);
        assert!(
            reference.all_close(&ours, 1e-3),
            "rel err {}",
            reference.relative_error(&ours)
        );
    }

    #[test]
    fn dsc_equivalence_holds_with_stride() {
        let (dw, pw, input) = setup(4, 6);
        let d = decompose_dsc(&dw, &pw, 9).unwrap();
        let reference = dsc_forward(&input, &dw, &pw, 2, 1);
        let (ours, _) = forward_eq3(&d, &input, 2, 1);
        assert!(reference.all_close(&ours, 1e-3));
    }

    #[test]
    fn truncated_dsc_error_decreases_with_m() {
        let (dw, pw, input) = setup(6, 4);
        let reference = dsc_forward(&input, &dw, &pw, 1, 1);
        let mut last = f32::INFINITY;
        for m in [1usize, 3, 6, 9] {
            let d = decompose_dsc(&dw, &pw, m).unwrap();
            let (ours, _) = forward_eq3(&d, &input, 1, 1);
            let err = reference.relative_error(&ours);
            assert!(err <= last + 1e-4, "m={m}: {err} > {last}");
            last = err;
        }
        assert!(last < 1e-3, "full-rank should be exact, got {last}");
    }

    #[test]
    fn coefficient_fold_matches_manual_product() {
        let (dw, pw, _) = setup(3, 4);
        let (ce_prime, _) = decompose_depthwise(&dw, 4).unwrap();
        let d = decompose_dsc(&dw, &pw, 4).unwrap();
        for k in 0..4 {
            for c in 0..3 {
                for m in 0..4 {
                    let expect = pw.get(k, c) * ce_prime.get(c, m);
                    assert!((d.coeff(k, c, m) - expect).abs() < 1e-6);
                }
            }
        }
    }

    #[test]
    fn invalid_m_is_rejected() {
        let (dw, pw, _) = setup(3, 4);
        assert!(decompose_dsc(&dw, &pw, 0).is_err());
        assert!(decompose_dsc(&dw, &pw, 10).is_err());
    }
}
