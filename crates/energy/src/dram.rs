//! DRAM energy from access traces.
//!
//! The paper simulates its DRAM traces with ramulator and extracts energy
//! with DRAMPower, then notes (citing Yang et al.) that the result is
//! well-approximated by 100 pJ per 8 bits. We apply that approximation to
//! the simulators' byte-accurate traffic records.

use crate::units::UnitEnergy;
use escalate_sim::stats::DramTraffic;

/// Energy in pJ of a DRAM traffic record.
pub fn traffic_energy_pj(traffic: &DramTraffic, units: &UnitEnergy) -> f64 {
    traffic.total() as f64 * units.dram_pj_per_byte
}

/// Energy in millijoules of a DRAM traffic record (convenience).
pub fn traffic_energy_mj(traffic: &DramTraffic, units: &UnitEnergy) -> f64 {
    traffic_energy_pj(traffic, units) * 1e-9
}

/// A row-buffer-aware DRAM energy model (the ramulator + DRAMPower
/// substitute described in DESIGN.md).
///
/// Accesses that hit the open row pay only the column access and I/O
/// energy; misses additionally pay precharge + activate. The flat
/// 100 pJ/byte constant of Table 3 corresponds to a blended hit rate; this
/// model exposes the locality dependence so trace shapes (streaming weight
/// reads vs strided feature-map walks) can be priced differently.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramModel {
    /// Row-buffer (DRAM page) size in bytes.
    pub row_bytes: u64,
    /// Energy per byte when the row is open (column access + I/O).
    pub hit_pj_per_byte: f64,
    /// Additional energy per row activation (precharge + activate).
    pub activate_pj: f64,
}

impl Default for DramModel {
    fn default() -> Self {
        // Calibrated so a fully sequential stream costs ≈55 pJ/B and a
        // fully random byte stream far more, blending to the ≈100 pJ/B of
        // Table 3 at typical CNN-trace locality.
        DramModel {
            row_bytes: 2048,
            hit_pj_per_byte: 55.0,
            activate_pj: 25_000.0,
        }
    }
}

impl DramModel {
    /// Energy of reading/writing `bytes` as `streams` independent
    /// sequential streams (each stream opens a row every `row_bytes`).
    pub fn sequential_energy_pj(&self, bytes: u64, streams: u64) -> f64 {
        let activations = bytes.div_ceil(self.row_bytes).max(streams.max(1));
        bytes as f64 * self.hit_pj_per_byte + activations as f64 * self.activate_pj
    }

    /// Energy of `accesses` random accesses of `access_bytes` each (every
    /// access opens a new row — the worst case).
    pub fn random_energy_pj(&self, accesses: u64, access_bytes: u64) -> f64 {
        accesses as f64 * (access_bytes as f64 * self.hit_pj_per_byte + self.activate_pj)
    }

    /// Energy of a layer's traffic with CNN-typical locality: weights and
    /// OFM stream sequentially; the IFM walk re-opens rows at a rate set
    /// by `ifm_row_locality` (fraction of accesses hitting the open row).
    pub fn traffic_energy_pj(&self, traffic: &DramTraffic, ifm_row_locality: f64) -> f64 {
        let seq = self.sequential_energy_pj(traffic.weights, 1)
            + self.sequential_energy_pj(traffic.ofm, 1);
        let hit = ifm_row_locality.clamp(0.0, 1.0);
        // Misses amortize over 64-byte bursts.
        let bursts = traffic.ifm.div_ceil(64);
        let ifm = traffic.ifm as f64 * self.hit_pj_per_byte
            + bursts as f64 * (1.0 - hit) * self.activate_pj;
        seq + ifm
    }

    /// Effective pJ/byte of a traffic record at the given IFM locality —
    /// comparable against the flat Table 3 constant.
    pub fn effective_pj_per_byte(&self, traffic: &DramTraffic, ifm_row_locality: f64) -> f64 {
        self.traffic_energy_pj(traffic, ifm_row_locality) / traffic.total().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hundred_pj_per_byte() {
        let t = DramTraffic {
            weights: 10,
            ifm: 20,
            ofm: 30,
        };
        let u = UnitEnergy::table3();
        assert_eq!(traffic_energy_pj(&t, &u), 6000.0);
        assert!((traffic_energy_mj(&t, &u) - 6e-6).abs() < 1e-15);
    }

    #[test]
    fn zero_traffic_zero_energy() {
        assert_eq!(
            traffic_energy_pj(&DramTraffic::default(), &UnitEnergy::table3()),
            0.0
        );
    }

    #[test]
    fn sequential_streams_are_cheaper_than_random_access() {
        let m = DramModel::default();
        let bytes = 1 << 20;
        let seq = m.sequential_energy_pj(bytes, 1);
        let rand = m.random_energy_pj(bytes / 64, 64);
        assert!(seq < rand / 5.0, "seq {seq} vs random {rand}");
    }

    #[test]
    fn locality_reduces_ifm_energy() {
        let m = DramModel::default();
        let t = DramTraffic {
            weights: 0,
            ifm: 1 << 20,
            ofm: 0,
        };
        let good = m.traffic_energy_pj(&t, 0.95);
        let bad = m.traffic_energy_pj(&t, 0.1);
        assert!(good < bad);
    }

    #[test]
    fn blended_rate_brackets_the_table3_constant() {
        // At moderate IFM locality the effective rate straddles 100 pJ/B:
        // below it for streaming-dominated traffic, above it for
        // random-walk IFMs.
        let m = DramModel::default();
        let streaming = DramTraffic {
            weights: 1 << 20,
            ifm: 1 << 16,
            ofm: 1 << 18,
        };
        assert!(m.effective_pj_per_byte(&streaming, 0.9) < 100.0);
        let thrashing = DramTraffic {
            weights: 1 << 14,
            ifm: 1 << 20,
            ofm: 1 << 14,
        };
        assert!(m.effective_pj_per_byte(&thrashing, 0.0) > 100.0);
    }

    #[test]
    fn per_stream_minimum_activations() {
        let m = DramModel::default();
        // Tiny transfers on many streams still pay one activation each.
        let e = m.sequential_energy_pj(64, 8);
        assert!(e >= 8.0 * m.activate_pj);
    }
}
