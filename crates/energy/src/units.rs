//! Unit energy costs per 8-bit integer operation (paper Table 3).
//!
//! Extracted from commercial TSMC 65 nm technology in the paper; DRAM
//! access energy follows the 100 pJ / 8 bits approximation of Yang et al.

/// Unit energies in picojoules per 8-bit operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnitEnergy {
    /// DRAM access, pJ per byte (Table 3: 100 pJ per 8-bit).
    pub dram_pj_per_byte: f64,
    /// Multiply-accumulate, pJ per op.
    pub mac_pj: f64,
    /// Multiply, pJ per op.
    pub multiply_pj: f64,
    /// Add, pJ per op.
    pub add_pj: f64,
}

impl Default for UnitEnergy {
    fn default() -> Self {
        UnitEnergy {
            dram_pj_per_byte: 100.0,
            mac_pj: 0.407,
            multiply_pj: 0.186,
            add_pj: 0.036,
        }
    }
}

impl UnitEnergy {
    /// The Table 3 values.
    pub const fn table3() -> Self {
        UnitEnergy {
            dram_pj_per_byte: 100.0,
            mac_pj: 0.407,
            multiply_pj: 0.186,
            add_pj: 0.036,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_values() {
        let u = UnitEnergy::table3();
        assert_eq!(u.dram_pj_per_byte, 100.0);
        assert_eq!(u.mac_pj, 0.407);
        assert_eq!(u.multiply_pj, 0.186);
        assert_eq!(u.add_pj, 0.036);
    }

    #[test]
    fn mac_costs_roughly_multiply_plus_add_plus_register() {
        let u = UnitEnergy::table3();
        // Consistency of the paper's numbers: a MAC is more than its
        // multiply + add (register/update overhead).
        assert!(u.mac_pj > u.multiply_pj + u.add_pj);
    }

    #[test]
    fn dram_dwarfs_compute() {
        let u = UnitEnergy::table3();
        assert!(u.dram_pj_per_byte / u.mac_pj > 100.0);
    }
}
