#![warn(missing_docs)]

//! Energy and area models (paper §5.2.1, Tables 3 and 4).
//!
//! The paper's energy methodology reduces synthesis output to per-operation
//! constants: Table 3 gives the unit energy of 8-bit integer operations and
//! DRAM accesses under TSMC 65 nm, CACTI supplies SRAM access energy, and
//! Table 4 gives the per-PE-block component power/area from Design
//! Compiler. This crate reproduces that bookkeeping:
//!
//! - [`units`] — the Table 3 constants,
//! - [`sram`] — a CACTI-style capacity-scaling access-energy model,
//! - [`dram`] — trace bytes → picojoules,
//! - [`area`] — the Table 4 component table,
//! - [`breakdown`] — per-layer/per-model energy breakdowns (Figure 10)
//!   from the simulators' [`escalate_sim::LayerStats`] records.

pub mod area;
pub mod breakdown;
pub mod dram;
pub mod sram;
pub mod units;

pub use area::{chip_area_mm2, scaled_block_area_mm2, PeBlockArea, COMPONENTS, SRAM_MM2_PER_KB};
pub use breakdown::{layer_energy, model_energy, BufferCaps, EnergyBreakdown};
pub use units::UnitEnergy;
