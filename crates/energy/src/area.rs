//! Power and area of one ESCALATE PE block (paper Table 4, TSMC 65 nm,
//! typical corner, 1 V, 25 °C, 800 MHz).

/// One synthesized component of a PE block.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Component {
    /// Component name as in Table 4.
    pub name: &'static str,
    /// Area in mm².
    pub area_mm2: f64,
    /// Power in mW.
    pub power_mw: f64,
}

/// The Table 4 component list.
pub const COMPONENTS: [Component; 5] = [
    Component {
        name: "Activation Buffer",
        area_mm2: 0.0098,
        power_mw: 5.44,
    },
    Component {
        name: "MAC Row",
        area_mm2: 0.0159,
        power_mw: 7.79,
    },
    Component {
        name: "Dilution",
        area_mm2: 0.0450,
        power_mw: 17.77,
    },
    Component {
        name: "Concentration",
        area_mm2: 0.0906,
        power_mw: 46.74,
    },
    Component {
        name: "Coef.&Psum Buffer",
        area_mm2: 0.0538,
        power_mw: 8.33,
    },
];

/// Totals reported in Table 4.
pub const TOTAL_AREA_MM2: f64 = 0.2150;
/// Total PE-block power reported in Table 4 (mW).
pub const TOTAL_POWER_MW: f64 = 86.07;

/// Aggregated PE-block estimates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeBlockArea {
    /// Total area of one block in mm².
    pub area_mm2: f64,
    /// Total power of one block in mW.
    pub power_mw: f64,
}

impl PeBlockArea {
    /// Sums the component table.
    pub fn from_components() -> Self {
        PeBlockArea {
            area_mm2: COMPONENTS.iter().map(|c| c.area_mm2).sum(),
            power_mw: COMPONENTS.iter().map(|c| c.power_mw).sum(),
        }
    }

    /// Whole-accelerator estimates for `n_pe` blocks.
    pub fn chip(n_pe: usize) -> PeBlockArea {
        let b = PeBlockArea::from_components();
        PeBlockArea {
            area_mm2: b.area_mm2 * n_pe as f64,
            power_mw: b.power_mw * n_pe as f64,
        }
    }
}

/// Per-cycle energy of a component in pJ at the given frequency.
pub fn component_pj_per_cycle(power_mw: f64, frequency_mhz: f64) -> f64 {
    // mW / MHz = nJ per cycle = 1000 pJ per cycle.
    power_mw / frequency_mhz * 1000.0
}

/// Large-SRAM area density derived from Table 4's Coef.&Psum entry
/// (0.0538 mm² for 512 B + 5 × 2048 B = 10.75 KB at 65 nm): the price the
/// sweep's area model puts on the input/output buffer macros that sit
/// outside the synthesized PE block.
pub const SRAM_MM2_PER_KB: f64 = 0.0538 / 10.75;

/// First-order area scaling used by the design-space sweep.
///
/// Table 4 synthesizes exactly one design point (Table 2); a sweep over
/// (`M`, `N_PE`, bus width, buffer capacities) needs area *trends*, so
/// each component is scaled linearly in the structural quantity it
/// physically tracks, anchored to reproduce the Table 4 block exactly at
/// the default configuration:
///
/// - Activation Buffer — per-slice staging capacity (`l × act_buf`),
/// - MAC Row — multiplier count per block (`M × l`),
/// - Dilution — slice count `l` (one dilution unit per slice),
/// - Concentration — `l ×` bus elements (the matching network's width),
/// - Coef.&Psum Buffer — its capacity (`coef_buf + l × psum_buf`).
///
/// Whole-chip area is `N_PE` scaled blocks plus the distributed
/// input/output buffer macros priced at [`SRAM_MM2_PER_KB`]. A linear
/// model is deliberately coarse (no periphery floors, no wiring
/// overhead), but it is monotone in every dimension the sweep explores,
/// which is what a Pareto frontier needs.
pub fn scaled_block_area_mm2(cfg: &escalate_sim::SimConfig) -> f64 {
    let d = escalate_sim::SimConfig::default();
    let scale = |q: f64, q0: f64| q / q0;
    let factors = [
        scale(
            (cfg.l * cfg.act_buf_bytes) as f64,
            (d.l * d.act_buf_bytes) as f64,
        ),
        scale((cfg.m * cfg.l) as f64, (d.m * d.l) as f64),
        scale(cfg.l as f64, d.l as f64),
        scale(
            (cfg.l * cfg.bus_elems()) as f64,
            (d.l * d.bus_elems()) as f64,
        ),
        scale(
            (cfg.coef_buf_bytes + cfg.l * cfg.psum_buf_bytes) as f64,
            (d.coef_buf_bytes + d.l * d.psum_buf_bytes) as f64,
        ),
    ];
    COMPONENTS
        .iter()
        .zip(factors)
        .map(|(c, f)| c.area_mm2 * f)
        .sum()
}

/// Whole-accelerator area estimate for an arbitrary configuration:
/// `N_PE` scaled PE blocks ([`scaled_block_area_mm2`]) plus the
/// input/output buffer SRAM priced at [`SRAM_MM2_PER_KB`].
pub fn chip_area_mm2(cfg: &escalate_sim::SimConfig) -> f64 {
    let sram_kb = (cfg.total_input_buf_bytes() + cfg.output_buf_bytes) as f64 / 1024.0;
    cfg.n_pe as f64 * scaled_block_area_mm2(cfg) + sram_kb * SRAM_MM2_PER_KB
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn component_sums_match_table4_totals() {
        let b = PeBlockArea::from_components();
        assert!(
            (b.area_mm2 - TOTAL_AREA_MM2).abs() < 1e-3,
            "area {}",
            b.area_mm2
        );
        assert!(
            (b.power_mw - TOTAL_POWER_MW).abs() < 1e-2,
            "power {}",
            b.power_mw
        );
    }

    #[test]
    fn concentration_is_the_largest_component() {
        let max = COMPONENTS
            .iter()
            .max_by(|a, b| a.area_mm2.total_cmp(&b.area_mm2))
            .unwrap();
        assert_eq!(max.name, "Concentration");
    }

    #[test]
    fn chip_scales_linearly() {
        let one = PeBlockArea::from_components();
        let chip = PeBlockArea::chip(32);
        assert!((chip.area_mm2 - 32.0 * one.area_mm2).abs() < 1e-9);
        assert!((chip.power_mw - 32.0 * one.power_mw).abs() < 1e-9);
    }

    #[test]
    fn per_cycle_energy_at_800mhz() {
        // 17.77 mW at 800 MHz ≈ 22.2 pJ per cycle.
        let e = component_pj_per_cycle(17.77, 800.0);
        assert!((e - 22.2125).abs() < 1e-3);
    }

    #[test]
    fn scaled_block_reproduces_table4_at_the_default_config() {
        let cfg = escalate_sim::SimConfig::default();
        let scaled = scaled_block_area_mm2(&cfg);
        let base = PeBlockArea::from_components().area_mm2;
        assert!((scaled - base).abs() < 1e-12, "scaled {scaled} vs {base}");
    }

    #[test]
    fn chip_area_is_monotone_in_the_swept_dimensions() {
        let base = escalate_sim::SimConfig::default();
        let a0 = chip_area_mm2(&base);
        assert!(a0 > 0.0);
        let grow = |f: &dyn Fn(&mut escalate_sim::SimConfig)| {
            let mut c = base;
            f(&mut c);
            chip_area_mm2(&c)
        };
        assert!(grow(&|c| c.m = 8) > a0, "more basis kernels cost area");
        assert!(grow(&|c| c.n_pe = 64) > a0, "more PEs cost area");
        assert!(grow(&|c| c.input_bus_bytes = 32) > a0, "wider bus");
        assert!(grow(&|c| c.input_buf_bytes = 16 * 1024) > a0, "bigger SRAM");
        assert!(grow(&|c| c.psum_buf_bytes = 4096) > a0, "bigger psum");
        assert!(grow(&|c| c.output_buf_bytes = 8192) > a0, "bigger output");
    }

    #[test]
    fn chip_area_halves_ish_with_half_the_pes() {
        let base = escalate_sim::SimConfig::default();
        let mut half = base;
        half.n_pe = 16;
        // Blocks halve; the shared SRAM term does not.
        let full_blocks = 32.0 * scaled_block_area_mm2(&base);
        let half_blocks = 16.0 * scaled_block_area_mm2(&half);
        assert!((half_blocks * 2.0 - full_blocks).abs() < 1e-9);
        assert!(chip_area_mm2(&half) > half_blocks);
    }
}
