//! Power and area of one ESCALATE PE block (paper Table 4, TSMC 65 nm,
//! typical corner, 1 V, 25 °C, 800 MHz).

/// One synthesized component of a PE block.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Component {
    /// Component name as in Table 4.
    pub name: &'static str,
    /// Area in mm².
    pub area_mm2: f64,
    /// Power in mW.
    pub power_mw: f64,
}

/// The Table 4 component list.
pub const COMPONENTS: [Component; 5] = [
    Component {
        name: "Activation Buffer",
        area_mm2: 0.0098,
        power_mw: 5.44,
    },
    Component {
        name: "MAC Row",
        area_mm2: 0.0159,
        power_mw: 7.79,
    },
    Component {
        name: "Dilution",
        area_mm2: 0.0450,
        power_mw: 17.77,
    },
    Component {
        name: "Concentration",
        area_mm2: 0.0906,
        power_mw: 46.74,
    },
    Component {
        name: "Coef.&Psum Buffer",
        area_mm2: 0.0538,
        power_mw: 8.33,
    },
];

/// Totals reported in Table 4.
pub const TOTAL_AREA_MM2: f64 = 0.2150;
/// Total PE-block power reported in Table 4 (mW).
pub const TOTAL_POWER_MW: f64 = 86.07;

/// Aggregated PE-block estimates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeBlockArea {
    /// Total area of one block in mm².
    pub area_mm2: f64,
    /// Total power of one block in mW.
    pub power_mw: f64,
}

impl PeBlockArea {
    /// Sums the component table.
    pub fn from_components() -> Self {
        PeBlockArea {
            area_mm2: COMPONENTS.iter().map(|c| c.area_mm2).sum(),
            power_mw: COMPONENTS.iter().map(|c| c.power_mw).sum(),
        }
    }

    /// Whole-accelerator estimates for `n_pe` blocks.
    pub fn chip(n_pe: usize) -> PeBlockArea {
        let b = PeBlockArea::from_components();
        PeBlockArea {
            area_mm2: b.area_mm2 * n_pe as f64,
            power_mw: b.power_mw * n_pe as f64,
        }
    }
}

/// Per-cycle energy of a component in pJ at the given frequency.
pub fn component_pj_per_cycle(power_mw: f64, frequency_mhz: f64) -> f64 {
    // mW / MHz = nJ per cycle = 1000 pJ per cycle.
    power_mw / frequency_mhz * 1000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn component_sums_match_table4_totals() {
        let b = PeBlockArea::from_components();
        assert!(
            (b.area_mm2 - TOTAL_AREA_MM2).abs() < 1e-3,
            "area {}",
            b.area_mm2
        );
        assert!(
            (b.power_mw - TOTAL_POWER_MW).abs() < 1e-2,
            "power {}",
            b.power_mw
        );
    }

    #[test]
    fn concentration_is_the_largest_component() {
        let max = COMPONENTS
            .iter()
            .max_by(|a, b| a.area_mm2.total_cmp(&b.area_mm2))
            .unwrap();
        assert_eq!(max.name, "Concentration");
    }

    #[test]
    fn chip_scales_linearly() {
        let one = PeBlockArea::from_components();
        let chip = PeBlockArea::chip(32);
        assert!((chip.area_mm2 - 32.0 * one.area_mm2).abs() < 1e-9);
        assert!((chip.power_mw - 32.0 * one.power_mw).abs() < 1e-9);
    }

    #[test]
    fn per_cycle_energy_at_800mhz() {
        // 17.77 mW at 800 MHz ≈ 22.2 pJ per cycle.
        let e = component_pj_per_cycle(17.77, 800.0);
        assert!((e - 22.2125).abs() < 1e-3);
    }
}
