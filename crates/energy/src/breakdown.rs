//! Per-layer and per-model energy breakdowns (Figure 10).
//!
//! The paper builds its energy numbers the way Table 4 suggests: logic
//! components are charged their synthesized power times runtime, SRAM
//! buffers are charged per access through CACTI, and DRAM is charged
//! 100 pJ per byte over the simulated trace. We do the same:
//!
//! - **DRAM**: trace bytes × the Table 3 constant.
//! - **SRAM buffers**: access bytes × the CACTI-style per-byte energy of
//!   the buffer's capacity.
//! - **Logic** (MAC rows, dilution, concentration): Table 4 component
//!   power × active cycles, scaled across the PE blocks.
//!
//! Baseline accelerators are normalized to the same multiplier budget and
//! chip class (Table 2), so their logic is charged the same whole-chip
//! power over their own runtimes, and their operand accesses are priced
//! at their (larger, unified) buffer capacities.

use crate::area::{component_pj_per_cycle, COMPONENTS, TOTAL_POWER_MW};
use crate::sram::access_energy_pj;
use crate::units::UnitEnergy;
use escalate_sim::stats::LayerStats;
use escalate_sim::{ModelStats, SimConfig};

/// Buffer capacities used to price SRAM accesses. Defaults to the
/// ESCALATE Table 2 configuration; baselines use [`BufferCaps::baseline`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BufferCaps {
    /// Input buffer capacity (bytes).
    pub input_buf: usize,
    /// Coefficient/weight buffer capacity.
    pub coef_buf: usize,
    /// Partial-sum buffer capacity.
    pub psum_buf: usize,
    /// Output buffer capacity.
    pub output_buf: usize,
    /// Activation staging buffer capacity.
    pub act_buf: usize,
    /// Number of PE blocks (logic power scales with it).
    pub n_pe: usize,
    /// Clock frequency in MHz.
    pub frequency_mhz: f64,
    /// Whether the Table 4 per-component split applies (ESCALATE) or the
    /// whole-chip power is charged as one logic term (baselines).
    pub escalate_logic: bool,
}

impl Default for BufferCaps {
    fn default() -> Self {
        BufferCaps::from_config(&SimConfig::default())
    }
}

impl BufferCaps {
    /// Buffer capacities from a simulator configuration.
    pub fn from_config(cfg: &SimConfig) -> Self {
        BufferCaps {
            input_buf: cfg.input_buf_bytes,
            coef_buf: cfg.coef_buf_bytes,
            psum_buf: cfg.psum_buf_bytes,
            output_buf: cfg.output_buf_bytes,
            act_buf: cfg.act_buf_bytes,
            n_pe: cfg.n_pe,
            frequency_mhz: cfg.frequency_mhz,
            escalate_logic: true,
        }
    }

    /// Capacities for the baseline accelerators: one global buffer
    /// (Table 2's "proportional scaling") prices the operand accesses, and
    /// logic is charged at the normalized whole-chip power.
    pub fn baseline(glb_bytes: usize) -> Self {
        BufferCaps {
            input_buf: glb_bytes,
            coef_buf: glb_bytes,
            psum_buf: 2 * 1024,
            output_buf: 4 * 1024,
            act_buf: 64,
            n_pe: 32,
            frequency_mhz: 800.0,
            escalate_logic: false,
        }
    }
}

/// Energy breakdown in picojoules, with the Figure 10 component split.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// DRAM accesses.
    pub dram_pj: f64,
    /// MAC-row arithmetic (power × time).
    pub mac_pj: f64,
    /// Concentration units (power × time).
    pub concentration_pj: f64,
    /// Dilution units (power × time).
    pub dilution_pj: f64,
    /// Input buffers (per access).
    pub input_buf_pj: f64,
    /// Coefficient + partial-sum buffers (power × time for ESCALATE,
    /// per-access for baselines).
    pub coef_psum_pj: f64,
    /// Activation staging buffers.
    pub act_buf_pj: f64,
    /// Output buffer (negligible; omitted from Figure 10).
    pub output_buf_pj: f64,
}

impl EnergyBreakdown {
    /// Total energy in pJ.
    pub fn total_pj(&self) -> f64 {
        self.dram_pj
            + self.mac_pj
            + self.concentration_pj
            + self.dilution_pj
            + self.input_buf_pj
            + self.coef_psum_pj
            + self.act_buf_pj
            + self.output_buf_pj
    }

    /// Total energy in millijoules.
    pub fn total_mj(&self) -> f64 {
        self.total_pj() * 1e-9
    }

    fn add(&mut self, other: &EnergyBreakdown) {
        self.dram_pj += other.dram_pj;
        self.mac_pj += other.mac_pj;
        self.concentration_pj += other.concentration_pj;
        self.dilution_pj += other.dilution_pj;
        self.input_buf_pj += other.input_buf_pj;
        self.coef_psum_pj += other.coef_psum_pj;
        self.act_buf_pj += other.act_buf_pj;
        self.output_buf_pj += other.output_buf_pj;
    }
}

/// Computes the energy breakdown of one layer's stats.
pub fn layer_energy(stats: &LayerStats, caps: &BufferCaps, units: &UnitEnergy) -> EnergyBreakdown {
    let cycles = stats.cycles as f64;
    let blocks = caps.n_pe as f64;
    let per_cycle =
        |power_mw: f64| component_pj_per_cycle(power_mw, caps.frequency_mhz) * cycles * blocks;

    let mut bd = EnergyBreakdown {
        dram_pj: stats.dram.total() as f64 * units.dram_pj_per_byte,
        input_buf_pj: access_energy_pj(caps.input_buf, stats.sram.input_buf),
        output_buf_pj: access_energy_pj(caps.output_buf, stats.sram.output_buf),
        ..EnergyBreakdown::default()
    };

    if caps.escalate_logic {
        // Table 4 component powers × runtime × blocks. The dense fallback
        // bypasses the CAs, so dilution/concentration are idle (clock
        // gated) on those layers.
        bd.mac_pj = per_cycle(power_of("MAC Row"));
        bd.act_buf_pj = per_cycle(power_of("Activation Buffer"));
        bd.coef_psum_pj = per_cycle(power_of("Coef.&Psum Buffer"));
        if !stats.fallback {
            bd.dilution_pj = per_cycle(power_of("Dilution"));
            bd.concentration_pj = per_cycle(power_of("Concentration"));
        }
    } else {
        // Baselines: the normalized chip (same multiplier count and chip
        // class) is charged at the ESCALATE total block power over its own
        // runtime, plus its per-access operand traffic at GLB pricing.
        bd.mac_pj = per_cycle(TOTAL_POWER_MW);
        bd.coef_psum_pj = access_energy_pj(caps.coef_buf, stats.sram.coef_buf)
            + access_energy_pj(caps.psum_buf, stats.sram.psum_buf);
        bd.act_buf_pj = access_energy_pj(caps.act_buf, stats.sram.act_buf.min(stats.mac_ops * 2));
    }
    bd
}

fn power_of(name: &str) -> f64 {
    COMPONENTS
        .iter()
        .find(|c| c.name == name)
        .unwrap_or_else(|| panic!("unknown component {name}"))
        .power_mw
}

/// Computes the whole-model energy breakdown.
pub fn model_energy(stats: &ModelStats, caps: &BufferCaps, units: &UnitEnergy) -> EnergyBreakdown {
    let mut total = EnergyBreakdown::default();
    for l in &stats.layers {
        total.add(&layer_energy(l, caps, units));
    }
    total
}

/// Like [`layer_energy`] but prices DRAM with the row-buffer-aware
/// [`crate::dram::DramModel`] instead of the flat Table 3 constant:
/// weight and OFM streams pay sequential-access energy, the IFM walk pays
/// for row re-activations at `ifm_row_locality` (fraction of bursts
/// hitting the open row). Useful for studying how trace locality moves
/// the Figure 10 DRAM share.
pub fn layer_energy_with_dram_model(
    stats: &LayerStats,
    caps: &BufferCaps,
    units: &UnitEnergy,
    dram: &crate::dram::DramModel,
    ifm_row_locality: f64,
) -> EnergyBreakdown {
    let mut bd = layer_energy(stats, caps, units);
    bd.dram_pj = dram.traffic_energy_pj(&stats.dram, ifm_row_locality);
    bd
}

#[cfg(test)]
mod tests {
    use super::*;
    use escalate_sim::stats::{DramTraffic, SramTraffic};

    fn stats(fallback: bool) -> LayerStats {
        LayerStats {
            name: "t".into(),
            cycles: 1000,
            mac_ops: 10_000,
            ca_adds: 5_000,
            gather_passes: 500,
            mac_idle_cycles: 0,
            mac_cycle_slots: 6000,
            dram: DramTraffic {
                weights: 100,
                ifm: 200,
                ofm: 300,
            },
            sram: SramTraffic {
                input_buf: 1000,
                coef_buf: 2000,
                psum_buf: 3000,
                output_buf: 400,
                act_buf: 500,
            },
            fallback,
        }
    }

    #[test]
    fn breakdown_components_sum() {
        let b = layer_energy(&stats(false), &BufferCaps::default(), &UnitEnergy::table3());
        let manual = b.dram_pj
            + b.mac_pj
            + b.concentration_pj
            + b.dilution_pj
            + b.input_buf_pj
            + b.coef_psum_pj
            + b.act_buf_pj
            + b.output_buf_pj;
        assert!((b.total_pj() - manual).abs() < 1e-9);
        assert!(
            b.concentration_pj > b.dilution_pj,
            "Table 4: concentration draws more power"
        );
    }

    #[test]
    fn dram_uses_table3_constant() {
        let b = layer_energy(&stats(false), &BufferCaps::default(), &UnitEnergy::table3());
        assert_eq!(b.dram_pj, 600.0 * 100.0);
    }

    #[test]
    fn fallback_layers_gate_the_ca_logic() {
        let b = layer_energy(&stats(true), &BufferCaps::default(), &UnitEnergy::table3());
        assert_eq!(b.dilution_pj, 0.0);
        assert_eq!(b.concentration_pj, 0.0);
        assert!(b.mac_pj > 0.0);
    }

    #[test]
    fn model_energy_sums_layers() {
        let m = ModelStats {
            model_name: "x".into(),
            layers: vec![stats(false), stats(false)],
            pipeline: None,
        };
        let one = layer_energy(&stats(false), &BufferCaps::default(), &UnitEnergy::table3());
        let all = model_energy(&m, &BufferCaps::default(), &UnitEnergy::table3());
        assert!((all.total_pj() - 2.0 * one.total_pj()).abs() < 1e-6);
    }

    #[test]
    fn dram_model_pricing_tracks_locality() {
        use crate::dram::DramModel;
        let s = LayerStats {
            dram: DramTraffic {
                weights: 1 << 16,
                ifm: 1 << 18,
                ofm: 1 << 14,
            },
            ..stats(false)
        };
        let caps = BufferCaps::default();
        let units = UnitEnergy::table3();
        let m = DramModel::default();
        let good = layer_energy_with_dram_model(&s, &caps, &units, &m, 0.95);
        let bad = layer_energy_with_dram_model(&s, &caps, &units, &m, 0.0);
        assert!(good.dram_pj < bad.dram_pj);
        // Non-DRAM components are unchanged by the pricing swap.
        let flat = layer_energy(&s, &caps, &units);
        assert!((good.mac_pj - flat.mac_pj).abs() < 1e-9);
        assert!((good.input_buf_pj - flat.input_buf_pj).abs() < 1e-9);
    }

    #[test]
    fn baseline_logic_uses_whole_chip_power() {
        let esc = layer_energy(&stats(false), &BufferCaps::default(), &UnitEnergy::table3());
        let base = layer_energy(
            &stats(false),
            &BufferCaps::baseline(64 * 1024),
            &UnitEnergy::table3(),
        );
        // Same cycle count: the baseline's single logic term equals the sum
        // of ESCALATE's per-component terms (same chip power).
        let esc_logic =
            esc.mac_pj + esc.dilution_pj + esc.concentration_pj + esc.act_buf_pj + esc.coef_psum_pj;
        assert!((base.mac_pj - esc_logic).abs() / esc_logic < 1e-6);
    }
}
