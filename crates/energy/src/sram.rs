//! CACTI-style SRAM access-energy model.
//!
//! The paper runs CACTI 7.0 on each buffer configuration; we substitute
//! the well-known capacity scaling law CACTI itself exhibits at a fixed
//! technology node: access energy per byte grows roughly with the square
//! root of the macro capacity (bitline/wordline length). Constants are
//! fitted to published 65 nm CACTI outputs (≈0.5 pJ/B for a 1 KB scratch,
//! ≈1 pJ/B for 8 KB, ≈2.6 pJ/B for 64 KB).

/// Access energy in pJ per byte for an SRAM of the given capacity.
///
/// # Examples
///
/// ```
/// use escalate_energy::sram::access_pj_per_byte;
///
/// let small = access_pj_per_byte(512);
/// let big = access_pj_per_byte(64 * 1024);
/// assert!(big > small);
/// ```
pub fn access_pj_per_byte(capacity_bytes: usize) -> f64 {
    let kb = (capacity_bytes as f64 / 1024.0).max(1.0 / 16.0);
    0.2 + 0.3 * kb.sqrt()
}

/// Energy of accessing `bytes` from an SRAM of `capacity_bytes`.
pub fn access_energy_pj(capacity_bytes: usize, bytes: u64) -> f64 {
    access_pj_per_byte(capacity_bytes) * bytes as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_grows_with_capacity() {
        let mut last = 0.0;
        for cap in [64usize, 512, 2048, 8192, 65536] {
            let e = access_pj_per_byte(cap);
            assert!(e > last, "cap={cap}");
            last = e;
        }
    }

    #[test]
    fn calibration_points() {
        // ~1 pJ/B at 8 KB, ~2.6 pJ/B at 64 KB (65 nm CACTI ballpark).
        assert!((access_pj_per_byte(8 * 1024) - 1.05).abs() < 0.1);
        assert!((access_pj_per_byte(64 * 1024) - 2.6).abs() < 0.2);
    }

    #[test]
    fn sram_cheaper_than_dram_at_all_sizes() {
        for cap in [64usize, 1024, 65536, 1 << 20] {
            assert!(access_pj_per_byte(cap) < 100.0);
        }
    }

    #[test]
    fn total_scales_linearly_with_bytes() {
        let a = access_energy_pj(8192, 100);
        let b = access_energy_pj(8192, 200);
        assert!((b - 2.0 * a).abs() < 1e-9);
    }
}
