//! End-user tests of the `escalate` binary itself.

use std::process::Command;

fn run(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_escalate"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn help_exits_zero_with_usage() {
    let (ok, stdout, _) = run(&["help"]);
    assert!(ok);
    assert!(stdout.contains("USAGE"));
}

#[test]
fn no_arguments_fails_with_usage_on_stderr() {
    let (ok, _, stderr) = run(&[]);
    assert!(!ok);
    assert!(stderr.contains("no command"));
    assert!(stderr.contains("USAGE"));
}

#[test]
fn models_lists_the_zoo() {
    let (ok, stdout, _) = run(&["models"]);
    assert!(ok);
    assert!(stdout.contains("ResNet152"));
    assert!(stdout.contains("ImageNet"));
}

#[test]
fn bad_model_fails_cleanly() {
    let (ok, _, stderr) = run(&["simulate", "AlexNet"]);
    assert!(!ok);
    assert!(stderr.contains("AlexNet"));
}

#[test]
fn compress_produces_summary() {
    let (ok, stdout, _) = run(&["compress", "MobileNet"]);
    assert!(ok, "stdout: {stdout}");
    assert!(stdout.contains("compression"));
    assert!(stdout.contains("proxy top-1"));
}
