//! `escalate` — command-line interface to the ESCALATE reproduction.
//!
//! Run `escalate help` for usage.

mod args;
mod commands;
mod manifest;

use std::process::ExitCode;

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match args::ParsedArgs::parse(raw) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{}", commands::USAGE);
            return ExitCode::FAILURE;
        }
    };
    match commands::dispatch(&parsed) {
        Ok(out) => {
            println!("{out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
