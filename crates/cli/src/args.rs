//! Minimal argument parsing for the `escalate` CLI (no external parser
//! dependency; see DESIGN.md's dependency policy).

use std::collections::HashMap;

/// A parsed command line: the subcommand, its positional arguments, and
/// `--key value` / `--flag` options.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ParsedArgs {
    /// Subcommand name (first non-flag argument).
    pub command: String,
    /// Positional arguments after the subcommand.
    pub positional: Vec<String>,
    /// Options: `--key value` pairs; bare `--flag` maps to `"true"`.
    pub options: HashMap<String, String>,
}

/// Parsing errors with user-facing messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// No subcommand given.
    MissingCommand,
    /// An option value failed to parse.
    BadValue {
        /// Option name.
        option: String,
        /// Offending value.
        value: String,
        /// What was expected.
        expected: &'static str,
    },
    /// An unknown option was passed.
    UnknownOption(String),
    /// An option was given an explicit empty value (`--key=`).
    EmptyValue(String),
    /// An option appeared more than once.
    DuplicateOption(String),
}

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgError::MissingCommand => write!(f, "no command given (try `escalate help`)"),
            ArgError::BadValue {
                option,
                value,
                expected,
            } => {
                write!(f, "--{option}: expected {expected}, got {value:?}")
            }
            ArgError::UnknownOption(o) => write!(f, "unknown option --{o}"),
            ArgError::EmptyValue(o) => {
                write!(
                    f,
                    "--{o}= has an empty value; pass a value or drop the option"
                )
            }
            ArgError::DuplicateOption(o) => {
                write!(f, "--{o} given more than once; keep exactly one")
            }
        }
    }
}

impl std::error::Error for ArgError {}

impl ParsedArgs {
    /// Parses raw arguments (without the program name).
    ///
    /// Half-parsed configurations are hard errors, not silent fallbacks:
    /// an explicit empty value (`--key=`) and a repeated option both
    /// reject the whole line. A one-shot run would merely produce a
    /// confusing result; a daemon started this way would serve it for its
    /// whole lifetime.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError::MissingCommand`] for an empty line,
    /// [`ArgError::EmptyValue`] for `--key=`, and
    /// [`ArgError::DuplicateOption`] for a repeated option.
    pub fn parse<I, S>(args: I) -> Result<ParsedArgs, ArgError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut out = ParsedArgs::default();
        let mut iter = args.into_iter().map(Into::into).peekable();
        while let Some(a) = iter.next() {
            if let Some(key) = a.strip_prefix("--") {
                let (k, v) = if let Some((k, v)) = key.split_once('=') {
                    // `--key=value`: the value is inline (and may itself
                    // contain `=` or start with `-`).
                    if v.is_empty() {
                        return Err(ArgError::EmptyValue(k.to_string()));
                    }
                    (k.to_string(), v.to_string())
                } else {
                    let value = match iter.peek() {
                        Some(v) if !v.starts_with("--") => {
                            iter.next().expect("peeked value exists")
                        }
                        _ => "true".to_string(),
                    };
                    (key.to_string(), value)
                };
                if out.options.insert(k.clone(), v).is_some() {
                    return Err(ArgError::DuplicateOption(k));
                }
            } else if out.command.is_empty() {
                out.command = a;
            } else {
                out.positional.push(a);
            }
        }
        if out.command.is_empty() {
            return Err(ArgError::MissingCommand);
        }
        Ok(out)
    }

    /// Reads an option parsed as `T`, with a default.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError::BadValue`] when the value does not parse.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgError::BadValue {
                option: key.to_string(),
                value: v.clone(),
                expected: std::any::type_name::<T>(),
            }),
        }
    }

    /// Whether a bare flag was passed.
    pub fn flag(&self, key: &str) -> bool {
        self.options.get(key).is_some_and(|v| v == "true")
    }

    /// Rejects options outside the allowed set.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError::UnknownOption`] for the first unknown option.
    pub fn ensure_known(&self, allowed: &[&str]) -> Result<(), ArgError> {
        for k in self.options.keys() {
            if !allowed.contains(&k.as_str()) {
                return Err(ArgError::UnknownOption(k.clone()));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_command_positionals_and_options() {
        let a = ParsedArgs::parse(["simulate", "ResNet18", "--m", "7", "--verbose"]).unwrap();
        assert_eq!(a.command, "simulate");
        assert_eq!(a.positional, vec!["ResNet18"]);
        assert_eq!(a.get_or("m", 6usize).unwrap(), 7);
        assert!(a.flag("verbose"));
    }

    #[test]
    fn defaults_apply_when_missing() {
        let a = ParsedArgs::parse(["compress", "VGG16"]).unwrap();
        assert_eq!(a.get_or("m", 6usize).unwrap(), 6);
        assert_eq!(a.get_or("seeds", 10u64).unwrap(), 10);
        assert!(!a.flag("verbose"));
    }

    #[test]
    fn empty_line_is_an_error() {
        assert_eq!(
            ParsedArgs::parse(Vec::<String>::new()),
            Err(ArgError::MissingCommand)
        );
    }

    #[test]
    fn bad_values_are_reported() {
        let a = ParsedArgs::parse(["x", "--m", "six"]).unwrap();
        let e = a.get_or("m", 6usize).unwrap_err();
        assert!(matches!(e, ArgError::BadValue { .. }));
        assert!(e.to_string().contains("six"));
    }

    #[test]
    fn unknown_options_are_rejected() {
        let a = ParsedArgs::parse(["x", "--bogus", "1"]).unwrap();
        assert!(a.ensure_known(&["m", "seeds"]).is_err());
        assert!(a.ensure_known(&["bogus"]).is_ok());
    }

    #[test]
    fn flag_followed_by_flag_keeps_both() {
        let a = ParsedArgs::parse(["x", "--fast", "--m", "5"]).unwrap();
        assert!(a.flag("fast"));
        assert_eq!(a.get_or("m", 0usize).unwrap(), 5);
    }

    #[test]
    fn key_equals_value_parses_like_the_spaced_form() {
        let a = ParsedArgs::parse(["simulate", "ResNet18", "--m=7", "--seeds=2"]).unwrap();
        assert_eq!(a.get_or("m", 6usize).unwrap(), 7);
        assert_eq!(a.get_or("seeds", 10u64).unwrap(), 2);
        assert_eq!(a.positional, vec!["ResNet18"]);
    }

    #[test]
    fn equals_values_may_contain_dashes_or_equals() {
        // `-5` would be eaten as a value by the spaced form too, but the
        // `=` form is the only unambiguous spelling for values starting
        // with `--`.
        let a = ParsedArgs::parse(["x", "--offset=-5", "--path=a=b"]).unwrap();
        assert_eq!(a.get_or("offset", 0i64).unwrap(), -5);
        assert_eq!(a.options.get("path").map(String::as_str), Some("a=b"));
    }

    #[test]
    fn explicit_empty_values_are_hard_errors() {
        // `--empty=` is never a usable value and never a flag — under the
        // old parser it silently produced an option holding "", which a
        // daemon would then serve forever. Reject the whole line.
        let e = ParsedArgs::parse(["x", "--empty="]).unwrap_err();
        assert_eq!(e, ArgError::EmptyValue("empty".to_string()));
        assert!(e.to_string().contains("--empty="));
    }

    #[test]
    fn duplicate_options_are_hard_errors() {
        // Last-wins duplicates hide typos ("--m 5 ... --m 7" runs with 7
        // and no warning); both spellings of the option count.
        let e = ParsedArgs::parse(["x", "--m", "5", "--m", "7"]).unwrap_err();
        assert_eq!(e, ArgError::DuplicateOption("m".to_string()));
        let e = ParsedArgs::parse(["x", "--m=5", "--m", "7"]).unwrap_err();
        assert_eq!(e, ArgError::DuplicateOption("m".to_string()));
        let e = ParsedArgs::parse(["x", "--verbose", "--verbose"]).unwrap_err();
        assert_eq!(e, ArgError::DuplicateOption("verbose".to_string()));
    }

    #[test]
    fn equals_form_does_not_eat_the_next_token() {
        let a = ParsedArgs::parse(["x", "--m=7", "next"]).unwrap();
        assert_eq!(a.get_or("m", 0usize).unwrap(), 7);
        assert_eq!(a.positional, vec!["next"]);
    }
}
