//! Command handlers for the `escalate` CLI.

use crate::args::{ArgError, ParsedArgs};
use escalate_bench::{compress, input_seeds, run_model};
use escalate_core::artifact::{read_artifacts, write_artifacts, LayerArtifact};
use escalate_core::pipeline::CompressionConfig;
use escalate_core::ModelCompression;
use escalate_models::ModelProfile;
use escalate_sim::{ScheduleKind, SimConfig};

/// CLI-level error: argument problems or pipeline failures.
#[derive(Debug)]
pub enum CliError {
    /// Argument parsing/validation failed.
    Args(ArgError),
    /// A model spec did not resolve (unknown name, unreadable network
    /// file, or a bad generator spec); the payload is the full message.
    UnknownModel(String),
    /// The compression/simulation pipeline failed.
    Pipeline(String),
    /// `escalate report --check` found golden drift; the payload is the
    /// already-rendered check report.
    Drift(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Args(e) => write!(f, "{e}"),
            CliError::UnknownModel(m) => write!(f, "{m}"),
            CliError::Pipeline(e) => write!(f, "pipeline failure: {e}"),
            CliError::Drift(report) => write!(f, "golden drift detected:\n{report}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<ArgError> for CliError {
    fn from(e: ArgError) -> Self {
        CliError::Args(e)
    }
}

/// Usage text.
pub const USAGE: &str = "\
escalate — reproduction of the ESCALATE sparse-CNN accelerator (MICRO 2021)

USAGE:
    escalate <COMMAND> [ARGS] [OPTIONS]

COMMANDS:
    models                         list the evaluated models and their profiles
    network <SPEC>                 print (or save) a model as an editable
                                   escalate-network/v1 description file
        --out <FILE>   write the description instead of printing it
    compress <MODEL>               run the compression pipeline (Table 1 row)
        --m <N>        basis kernels (default 6)
        --qat <N>      QAT epochs per layer (default 0)
        --seed <N>     RNG seed (default 42)
        --layers       print per-layer detail
        --out <FILE>   save the compressed artifacts (.esca)
    simulate <MODEL>               compare all four accelerators
        --network <FILE|SPEC>  simulate a custom network instead of a zoo
                       model: an escalate-network/v1 file (@FILE or a bare
                       path) or a generator spec (gen:NAME:key=value,...)
        --schedule <S> layer schedule: serial (default; the paper's
                       layer-at-a-time fold) or pipelined (layers split
                       into PE-partitioned stages; adds a pipeline
                       stage/interval/stall section to the table)
        --m <N>        basis kernels (default 6)
        --seeds <N>    input samples to average
                       (default $ESCALATE_SEEDS or 10)
        --threads <N>  host threads (default $ESCALATE_THREADS or all
                       cores; 1 forces sequential; results are identical)
        --metrics <FILE>  record counters/timings during the run and
                       write a JSON run manifest (see DESIGN.md)
    sweep [MODEL ...]              sample the accelerator design space
                                   (M, PEs, bus, buffers) and stream one
                                   JSONL record per point, then print the
                                   energy x cycles x area Pareto frontier
                                   per network (default: all six models)
                                   MODEL may be any network spec
                                   (zoo name, @FILE, or gen:NAME)
        --schedule <S> serial (default) or pipelined, as for simulate
        --samples <N>  design points per network (default 8)
        --seed <N>     master sample seed (default 42)
        --seeds <N>    input samples averaged per point (default 2)
        --m <A..B>     inclusive M range (default 4..8)
        --pe <A..B>    PE-count range; powers of two sampled (default 8..64)
        --out <FILE>   JSONL stream (default sweep.jsonl); re-running the
                       same sweep resumes it — recorded points are skipped
        --sampler <S>  design-point sampler: uniform (default) or halton
                       (low-discrepancy; covers small grids evenly)
        --check <FILE>   fail on any frontier drift vs a golden file
        --update <FILE>  rewrite the frontier golden file
        --metrics <FILE> write a JSON counter snapshot after the run
                       (derived-cache hits, plan reuses, frontier cost)
        --threads <N>  host threads (as for simulate)
                       (the fixed-MAC-budget M sweep is `report fig12`)
    characterize <MODEL>           compute/traffic structure per layer
        --m <N>        basis kernels for the C/M bound (default 6)
    report [NAME ...]              drive the experiment registry (tables,
                                   figures, ablations)
        --list         enumerate the registered experiments
        --all          every golden (deterministic) experiment
        --json         emit escalate-report/v1 JSON instead of text
        --check        diff against the results/ golden corpus
        --update       regenerate the results/ golden corpus
        --out <DIR>    one file per experiment instead of stdout
        --results <DIR> golden corpus location (default results/)
    serve                          run the batching simulation daemon
                                   (line-JSON over TCP on 127.0.0.1;
                                   blocks until a shutdown request)
        --port <N>     port to bind (default 0 = ephemeral)
        --workers <N>  job worker threads (default 2)
        --queue <N>    job queue capacity; a full queue answers
                       rejected + retry_after_ms (default 8)
        --cache <N>    artifact cache capacity override (entries)
        --port-file <FILE>  write the bound port here (how scripts
                       find an ephemerally-bound daemon)
    submit <VERB> [ARG]            send one request to a running daemon
                                   and print its response frames; VERB is
                                   simulate|compress|report (ARG = model
                                   or experiment) or metrics|ping|shutdown
        --port <N>     daemon port, or --port-file <FILE> to read it
        --m/--seeds/--qat/--seed/--layers/--schedule
                       as for the one-shot verbs
    loadgen                        drive an in-process daemon with a
                                   seeded request mix and report latency
        --jobs <N>     requests to send (default 24)
        --seed <N>     schedule seed (default 42)
        --workers <N>  daemon workers (default 2)
        --queue <N>    daemon queue capacity (default 4)
        --out <FILE>   write the escalate-serve-bench/v1 JSON report
    inspect <FILE>                 summarize a saved .esca artifact
    validate <MODEL>               cross-check the three simulator
                                   fidelities on one layer
        --layer <NAME> layer to validate (default: widest layer)
    help                           show this text

MODELS: VGG16, ResNet18, ResNet152, MobileNetV2 (CIFAR-10);
        ResNet50, MobileNet (ImageNet)
        Anywhere a MODEL is expected, @FILE loads an escalate-network/v1
        description and gen:NAME[:key=value,...] generates one
        (generators: grouped, dilated, bottleneck, vit)";

/// Resolves one model spec — a zoo name, an `@FILE` network description,
/// or a `gen:NAME[:key=value,...]` generator — through the shared
/// [`escalate_models::resolve`] entry every harness uses.
fn profile(spec: &str) -> Result<ModelProfile, CliError> {
    escalate_models::resolve(spec).map_err(|e| CliError::UnknownModel(e.to_string()))
}

/// The model spec of a command: `--network SPEC` when given (a network
/// description file reads most naturally as `--network @FILE`, but the
/// `@` is optional there — a bare path works too), else the first
/// positional argument.
fn model_arg(args: &ParsedArgs) -> Result<ModelProfile, CliError> {
    if let Some(spec) = args.options.get("network") {
        let spec = spec.clone();
        // `--network model.network` means the file, not a zoo name.
        let spec = if spec.starts_with('@') || spec.starts_with("gen:") || profile(&spec).is_ok() {
            spec
        } else {
            format!("@{spec}")
        };
        return profile(&spec);
    }
    let name = args
        .positional
        .first()
        .ok_or(CliError::Args(ArgError::BadValue {
            option: "MODEL".into(),
            value: "<missing>".into(),
            expected: "a model name, @FILE, or gen:NAME spec",
        }))?;
    profile(name)
}

/// Parses a `--schedule` option into a [`ScheduleKind`] (default serial).
fn schedule_arg(args: &ParsedArgs) -> Result<ScheduleKind, CliError> {
    match args.options.get("schedule") {
        None => Ok(ScheduleKind::default()),
        Some(v) => ScheduleKind::parse(v).map_err(|msg| {
            CliError::Args(ArgError::BadValue {
                option: "schedule".into(),
                value: msg,
                expected: "serial or pipelined",
            })
        }),
    }
}

/// Dispatches a parsed command line; returns the text to print.
///
/// # Errors
///
/// Returns a [`CliError`] with a user-facing message on any failure.
pub fn dispatch(args: &ParsedArgs) -> Result<String, CliError> {
    match args.command.as_str() {
        "help" | "--help" => Ok(USAGE.to_string()),
        "models" => cmd_models(args),
        "network" => cmd_network(args),
        "compress" => cmd_compress(args),
        "simulate" => cmd_simulate(args),
        "sweep" => cmd_sweep(args),
        "characterize" => cmd_characterize(args),
        "report" => cmd_report(args),
        "inspect" => cmd_inspect(args),
        "validate" => cmd_validate(args),
        "serve" => cmd_serve(args),
        "submit" => cmd_submit(args),
        "loadgen" => cmd_loadgen(args),
        other => Err(CliError::Args(ArgError::BadValue {
            option: "COMMAND".into(),
            value: other.into(),
            expected: "one of models|compress|simulate|sweep|help",
        })),
    }
}

fn cmd_report(args: &ParsedArgs) -> Result<String, CliError> {
    args.ensure_known(&["list", "all", "json", "check", "update", "out", "results"])?;
    // Rebuild a runner argv so `escalate report` and the standalone
    // `report` binary share one parser (and its validation). The generic
    // CLI parser eats the token after a bare flag as its value
    // (`report --check table4` parses as check="table4"), so a non-"true"
    // value on a boolean flag is really the flag plus an experiment name.
    let mut argv: Vec<String> = Vec::new();
    for flag in ["list", "all", "json", "check", "update"] {
        if let Some(v) = args.options.get(flag) {
            argv.push(format!("--{flag}"));
            if v != "true" {
                argv.push(v.clone());
            }
        }
    }
    for key in ["out", "results"] {
        if let Some(v) = args.options.get(key).filter(|v| *v != "true") {
            argv.push(format!("--{key}"));
            argv.push(v.clone());
        }
    }
    argv.extend(args.positional.iter().cloned());
    let opts = escalate_bench::experiments::ReportOptions::parse(argv).map_err(|msg| {
        CliError::Args(ArgError::BadValue {
            option: "report".into(),
            value: msg,
            expected: "a report invocation (see `escalate help`)",
        })
    })?;
    let mut buf = Vec::new();
    let clean = escalate_bench::experiments::run_report(&opts, &mut buf)
        .map_err(|e| CliError::Pipeline(e.to_string()))?;
    let text = String::from_utf8(buf)
        .map_err(|e| CliError::Pipeline(format!("report produced non-UTF-8 output: {e}")))?;
    if clean {
        Ok(text)
    } else {
        Err(CliError::Drift(text))
    }
}

fn cmd_models(args: &ParsedArgs) -> Result<String, CliError> {
    args.ensure_known(&[])?;
    let mut out = format!(
        "{:<12} {:<10} {:>8} {:>8} {:>9} {:>10}\n",
        "model", "dataset", "conv(MB)", "layers", "top-1(%)", "target spar"
    );
    for p in ModelProfile::all() {
        let m = p.model();
        out.push_str(&format!(
            "{:<12} {:<10} {:>8.2} {:>8} {:>9.2} {:>9.1}%\n",
            p.name,
            p.dataset.to_string(),
            m.conv_size_mb_fp32(),
            m.conv_layers().count(),
            p.baseline_top1,
            p.coeff_sparsity * 100.0,
        ));
    }
    Ok(out)
}

/// `escalate network SPEC [--out FILE]`: resolve any model spec and emit
/// its canonical `escalate-network/v1` description — how a generated or
/// zoo network becomes an editable `.network` file.
fn cmd_network(args: &ParsedArgs) -> Result<String, CliError> {
    args.ensure_known(&["out"])?;
    let p = model_arg(args)?;
    let model = p.model();
    let text = model
        .to_description()
        .map_err(|e| CliError::Pipeline(e.to_string()))?;
    match args.options.get("out") {
        Some(path) if path != "true" => {
            std::fs::write(path, &text)
                .map_err(|e| CliError::Pipeline(format!("cannot write {path}: {e}")))?;
            Ok(format!(
                "{}: {} layer(s) -> {path}\n",
                p.name,
                model.layers().len()
            ))
        }
        Some(_) => Err(CliError::Args(ArgError::BadValue {
            option: "out".into(),
            value: "true".into(),
            expected: "a file path (use ./true for a file literally named true)",
        })),
        None => Ok(text),
    }
}

fn cmd_compress(args: &ParsedArgs) -> Result<String, CliError> {
    args.ensure_known(&["m", "qat", "seed", "layers", "out"])?;
    let p = model_arg(args)?;
    let cfg = CompressionConfig {
        m: args.get_or("m", 6usize)?,
        qat_epochs: args.get_or("qat", 0usize)?,
        seed: args.get_or("seed", 42u64)?,
        ..CompressionConfig::default()
    };
    let artifacts = compress(&p, &cfg).map_err(|e| CliError::Pipeline(e.to_string()))?;
    let result = ModelCompression {
        model_name: p.name.to_string(),
        layers: artifacts.iter().map(|a| a.stats.clone()).collect(),
    };
    if let Some(path) = args.options.get("out") {
        let file = std::fs::File::create(path)
            .map_err(|e| CliError::Pipeline(format!("cannot create {path}: {e}")))?;
        let arts: Vec<LayerArtifact> = artifacts
            .iter()
            .map(|a| LayerArtifact {
                stats: a.stats.clone(),
                quantized: a.quantized.clone(),
            })
            .collect();
        write_artifacts(std::io::BufWriter::new(file), &arts)
            .map_err(|e| CliError::Pipeline(e.to_string()))?;
    }
    Ok(escalate_bench::render::render_compress(
        &p.name,
        p.baseline_top1,
        cfg.m,
        &result,
        args.flag("layers"),
    ))
}

fn cmd_simulate(args: &ParsedArgs) -> Result<String, CliError> {
    args.ensure_known(&["m", "seeds", "threads", "metrics", "network", "schedule"])?;
    let p = model_arg(args)?;
    let schedule = schedule_arg(args)?;
    let m = args.get_or("m", 6usize)?;
    let seeds = args.get_or("seeds", input_seeds())?;
    let threads = args.get_or("threads", 0usize)?;
    let metrics_path = args.options.get("metrics").cloned();
    // A bare `--metrics` parses as the flag sentinel "true"; refuse it
    // rather than silently writing a manifest to a file named `true`.
    if metrics_path.as_deref() == Some("true") {
        return Err(CliError::Args(ArgError::BadValue {
            option: "metrics".into(),
            value: "true".into(),
            expected: "a file path (use ./true for a file literally named true)",
        }));
    }
    let mut cfg = if m == 6 {
        SimConfig::default()
    } else {
        SimConfig::default().with_m(m)
    };
    cfg.threads = threads;
    cfg.schedule = schedule;

    // With --metrics, install a recorder for the duration of the run;
    // without it the simulators take their zero-cost no-op path.
    let registry = metrics_path.as_ref().map(|_| {
        let r = std::sync::Arc::new(escalate_obs::Registry::new());
        escalate_obs::install(std::sync::Arc::clone(&r));
        r
    });
    let run = run_model(&p, &cfg, seeds);
    if registry.is_some() {
        escalate_obs::uninstall();
    }
    let run = run.map_err(|e| CliError::Pipeline(e.to_string()))?;
    if let (Some(path), Some(reg)) = (&metrics_path, &registry) {
        let json = crate::manifest::render_manifest(
            "simulate",
            &p.name,
            &cfg,
            seeds,
            &run,
            &reg.snapshot(),
        );
        std::fs::write(path, json)
            .map_err(|e| CliError::Pipeline(format!("cannot write {path}: {e}")))?;
    }
    Ok(escalate_bench::render::render_simulate(&run, &cfg))
}

fn cmd_sweep(args: &ParsedArgs) -> Result<String, CliError> {
    use escalate_bench::sweep::{parse_range, run_sweep, GoldenMode, Sampler, SweepOptions};
    args.ensure_known(&[
        "samples", "seed", "seeds", "m", "pe", "out", "threads", "sampler", "check", "update",
        "metrics", "schedule",
    ])?;
    let mut opts = SweepOptions::default();
    if !args.positional.is_empty() {
        opts.networks = args.positional.clone();
    }
    opts.schedule = schedule_arg(args)?;
    opts.samples = args.get_or("samples", opts.samples)?;
    opts.master_seed = args.get_or("seed", opts.master_seed)?;
    opts.input_seeds = args.get_or("seeds", opts.input_seeds)?;
    opts.threads = args.get_or("threads", opts.threads)?;
    if let Some(v) = args.options.get("m") {
        opts.m_range = parse_range(v).map_err(|msg| {
            CliError::Args(ArgError::BadValue {
                option: "m".into(),
                value: msg,
                expected: "an inclusive range like 4..8",
            })
        })?;
    }
    if let Some(v) = args.options.get("pe") {
        opts.pe_range = parse_range(v).map_err(|msg| {
            CliError::Args(ArgError::BadValue {
                option: "pe".into(),
                value: msg,
                expected: "an inclusive range like 8..64",
            })
        })?;
    }
    if let Some(path) = args.options.get("out") {
        // A bare `--out` parses as the flag sentinel "true"; refuse it
        // rather than silently streaming to a file named `true`.
        if path == "true" {
            return Err(CliError::Args(ArgError::BadValue {
                option: "out".into(),
                value: "true".into(),
                expected: "a file path (use ./true for a file literally named true)",
            }));
        }
        opts.out = std::path::PathBuf::from(path);
    }
    if let Some(v) = args.options.get("sampler") {
        opts.sampler = Sampler::parse(v).map_err(|msg| {
            CliError::Args(ArgError::BadValue {
                option: "sampler".into(),
                value: msg,
                expected: "uniform or halton",
            })
        })?;
    }
    // `--check`/`--update` take the golden path as their value; the bare
    // flag sentinel "true" is refused like `--out`'s.
    for (name, mode) in [("check", GoldenMode::Check), ("update", GoldenMode::Update)] {
        let Some(path) = args.options.get(name) else {
            continue;
        };
        if path == "true" {
            return Err(CliError::Args(ArgError::BadValue {
                option: name.into(),
                value: "true".into(),
                expected: "a frontier golden file path",
            }));
        }
        if opts.golden.is_some() {
            return Err(CliError::Args(ArgError::BadValue {
                option: name.into(),
                value: path.clone(),
                expected: "only one of --check/--update",
            }));
        }
        opts.golden = Some((std::path::PathBuf::from(path), mode));
    }
    let metrics_path = args.options.get("metrics").cloned();
    let registry = metrics_path.as_ref().map(|_| {
        let r = std::sync::Arc::new(escalate_obs::Registry::new());
        escalate_obs::install(std::sync::Arc::clone(&r));
        r
    });
    let mut buf = Vec::new();
    let run = run_sweep(&opts, &mut buf);
    if registry.is_some() {
        escalate_obs::uninstall();
    }
    run.map_err(|e| CliError::Pipeline(e.to_string()))?;
    if let (Some(path), Some(reg)) = (&metrics_path, &registry) {
        std::fs::write(path, reg.to_json())
            .map_err(|e| CliError::Pipeline(format!("cannot write {path}: {e}")))?;
    }
    String::from_utf8(buf)
        .map_err(|e| CliError::Pipeline(format!("sweep produced non-UTF-8 output: {e}")))
}

fn cmd_inspect(args: &ParsedArgs) -> Result<String, CliError> {
    args.ensure_known(&[])?;
    let path = args
        .positional
        .first()
        .ok_or(CliError::Args(ArgError::BadValue {
            option: "FILE".into(),
            value: "<missing>".into(),
            expected: "an artifact path",
        }))?;
    let file = std::fs::File::open(path)
        .map_err(|e| CliError::Pipeline(format!("cannot open {path}: {e}")))?;
    let arts = read_artifacts(std::io::BufReader::new(file))
        .map_err(|e| CliError::Pipeline(e.to_string()))?;
    let mut out = format!("{path}: {} layers\n", arts.len());
    out.push_str(&format!(
        "{:<24} {:>10} {:>10} {:>8} {:>6}\n",
        "layer", "origbits", "compbits", "spar%", "M"
    ));
    let mut orig = 0usize;
    let mut comp = 0usize;
    for a in &arts {
        orig += a.stats.original_bits;
        comp += a.stats.compressed_bits;
        let m = a.quantized.as_ref().map_or(0, |q| q.basis.shape()[0]);
        out.push_str(&format!(
            "{:<24} {:>10} {:>10} {:>7.1}% {:>6}\n",
            a.stats.name,
            a.stats.original_bits,
            a.stats.compressed_bits,
            a.stats.coeff_sparsity() * 100.0,
            m
        ));
    }
    out.push_str(
        &match escalate_sim::checked_ratio(orig as u64, comp as u64) {
            Some(r) => format!("\ntotal: {r:.2}x compression\n"),
            None => "\ntotal: no compressed bits recorded\n".to_string(),
        },
    );
    Ok(out)
}

fn cmd_validate(args: &ParsedArgs) -> Result<String, CliError> {
    use escalate_core::pipeline::CompressionConfig;
    use escalate_sim::detailed::simulate_layer_detailed;
    use escalate_sim::trace::simulate_layer_traced;
    use escalate_sim::{simulate_layer, Workload, WorkloadMode};

    args.ensure_known(&["layer"])?;
    let p = model_arg(args)?;
    let artifacts = compress(&p, &CompressionConfig::default())
        .map_err(|e| CliError::Pipeline(e.to_string()))?;
    let workload = Workload::from_artifacts(&p.name, &artifacts, &p);

    // Pick the requested layer, or the widest decomposed layer small
    // enough for the detailed mode.
    let lw = match args.options.get("layer") {
        Some(name) => workload
            .layers
            .iter()
            .find(|l| &l.name == name)
            .ok_or_else(|| CliError::Pipeline(format!("no layer named {name:?}")))?,
        None => workload
            .layers
            .iter()
            .filter(|l| matches!(l.mode, WorkloadMode::Decomposed(_)))
            .filter(|l| l.positions() <= 1024 && l.out_channels <= 256)
            .max_by_key(|l| l.shape.c)
            .ok_or_else(|| CliError::Pipeline("no detailed-mode-sized layer found".into()))?,
    };
    if matches!(lw.mode, WorkloadMode::Dense) {
        return Err(CliError::Pipeline(format!(
            "{} uses the dense fallback; pick a compressed layer",
            lw.name
        )));
    }
    let cfg = SimConfig::default();
    let ifm = escalate_models::synth::activations(&lw.shape, lw.act_sparsity, 7);

    let engine = simulate_layer(lw, &cfg, 0);
    let traced =
        simulate_layer_traced(lw, &cfg, &ifm).map_err(|e| CliError::Pipeline(e.to_string()))?;
    let detailed =
        simulate_layer_detailed(lw, &cfg, &ifm).map_err(|e| CliError::Pipeline(e.to_string()))?;
    let mut out = format!("layer {} of {} ({}):\n\n", lw.name, p.name, lw.shape);
    out.push_str(&format!(
        "{:<22} {:>12} {:>14}\n",
        "mode", "cycles", "CA matches"
    ));
    out.push_str(&format!(
        "{:<22} {:>12} {:>14}\n",
        "sampling engine", engine.cycles, engine.ca_adds
    ));
    out.push_str(&format!(
        "{:<22} {:>12} {:>14}\n",
        "trace-driven", traced.cycles, traced.ca_adds
    ));
    out.push_str(&format!(
        "{:<22} {:>12} {:>14}\n",
        "detailed (stepped)", detailed.cycles, detailed.matched
    ));
    let vs_engine = |cycles: u64| {
        escalate_sim::checked_ratio(cycles, engine.cycles)
            .map_or_else(|| "n/a".to_string(), |r| format!("{r:.2}"))
    };
    out.push_str(&format!(
        "\ntrace/engine = {}, detailed/engine = {}\n",
        vs_engine(traced.cycles),
        vs_engine(detailed.cycles),
    ));
    Ok(out)
}

fn cmd_characterize(args: &ParsedArgs) -> Result<String, CliError> {
    args.ensure_known(&["m"])?;
    let p = model_arg(args)?;
    let m = args.get_or("m", 6usize)?;
    let ch = escalate_models::analysis::ModelCharacter::of(&p, m);
    let mut out = format!(
        "{:<24} {:>12} {:>10} {:>10} {:>9} {:>9}\n",
        "layer", "MACs", "bytes", "intensity", "C/M", "positions"
    );
    for l in &ch.layers {
        out.push_str(&format!(
            "{:<24} {:>12} {:>10} {:>10.1} {:>9.1} {:>9}\n",
            l.name, l.macs, l.bytes, l.intensity, l.cm_bound, l.positions
        ));
    }
    out.push_str(&format!(
        "\nmodel: intensity {:.1} MAC/B, mean C/M bound {:.1}x, DSC MAC share {:.1}%\n",
        ch.mean_intensity(),
        ch.mean_cm_bound(),
        ch.dsc_mac_fraction() * 100.0
    ));
    Ok(out)
}

fn cmd_serve(args: &ParsedArgs) -> Result<String, CliError> {
    args.ensure_known(&["port", "workers", "queue", "cache", "port-file"])?;
    let opts = escalate_serve::ServeOptions {
        port: args.get_or("port", 0u16)?,
        workers: args.get_or("workers", 2usize)?,
        queue: args.get_or("queue", 8usize)?,
        cache: match args.options.get("cache") {
            None => None,
            Some(_) => Some(args.get_or("cache", 0usize)?),
        },
        port_file: args.options.get("port-file").map(std::path::PathBuf::from),
    };
    let handle = escalate_serve::start(opts).map_err(CliError::Pipeline)?;
    let port = handle.port();
    eprintln!("escalate serve: listening on 127.0.0.1:{port} (send a shutdown request to stop)");
    let summary = handle.join().map_err(CliError::Pipeline)?;
    Ok(format!(
        "escalate serve: drained — {} jobs done, {} failed\n",
        summary.jobs_done, summary.jobs_failed
    ))
}

/// Resolves the daemon port for `submit`: `--port`, or `--port-file`
/// written by an ephemerally-bound daemon.
fn submit_port(args: &ParsedArgs) -> Result<u16, CliError> {
    if args.options.contains_key("port") {
        return args.get_or("port", 0u16).map_err(CliError::Args);
    }
    let Some(path) = args.options.get("port-file") else {
        return Err(CliError::Args(ArgError::BadValue {
            option: "port".into(),
            value: "<missing>".into(),
            expected: "--port <N> or --port-file <FILE>",
        }));
    };
    let raw = std::fs::read_to_string(path)
        .map_err(|e| CliError::Pipeline(format!("cannot read port file {path}: {e}")))?;
    raw.trim().parse().map_err(|_| {
        CliError::Args(ArgError::BadValue {
            option: "port-file".into(),
            value: raw.trim().into(),
            expected: "a file holding one port number",
        })
    })
}

fn cmd_submit(args: &ParsedArgs) -> Result<String, CliError> {
    args.ensure_known(&[
        "port",
        "port-file",
        "m",
        "seeds",
        "qat",
        "seed",
        "layers",
        "schedule",
    ])?;
    let verb = args
        .positional
        .first()
        .ok_or(CliError::Args(ArgError::BadValue {
            option: "VERB".into(),
            value: "<missing>".into(),
            expected: "simulate|compress|report|metrics|ping|shutdown",
        }))?;
    let arg = |what: &'static str| {
        args.positional
            .get(1)
            .cloned()
            .ok_or(CliError::Args(ArgError::BadValue {
                option: "ARG".into(),
                value: "<missing>".into(),
                expected: what,
            }))
    };
    let req = match verb.as_str() {
        "simulate" => escalate_serve::Request::Simulate {
            model: arg("a model name, @FILE, or gen:NAME spec")?,
            m: args.get_or("m", 6usize)?,
            seeds: args.get_or("seeds", 1u64)?,
            // Validate locally so a typo fails here, not as a daemon-side
            // error frame; the wire carries the canonical spelling.
            schedule: schedule_arg(args)?.as_str().to_string(),
        },
        "compress" => escalate_serve::Request::Compress {
            model: arg("a model name")?,
            m: args.get_or("m", 6usize)?,
            qat: args.get_or("qat", 0usize)?,
            seed: args.get_or("seed", 42u64)?,
            layers: args.flag("layers"),
        },
        "report" => escalate_serve::Request::Report {
            experiment: arg("an experiment name")?,
        },
        "metrics" => escalate_serve::Request::Metrics,
        "ping" => escalate_serve::Request::Ping,
        "shutdown" => escalate_serve::Request::Shutdown,
        other => {
            return Err(CliError::Args(ArgError::BadValue {
                option: "VERB".into(),
                value: other.into(),
                expected: "simulate|compress|report|metrics|ping|shutdown",
            }))
        }
    };
    let port = submit_port(args)?;
    let frames = escalate_serve::submit(port, &req)
        .map_err(|e| CliError::Pipeline(format!("cannot reach 127.0.0.1:{port}: {e}")))?;
    let mut out = frames.join("\n");
    out.push('\n');
    Ok(out)
}

fn cmd_loadgen(args: &ParsedArgs) -> Result<String, CliError> {
    args.ensure_known(&["jobs", "seed", "workers", "queue", "out"])?;
    let opts = escalate_serve::LoadgenOptions {
        jobs: args.get_or("jobs", 24usize)?,
        seed: args.get_or("seed", 42u64)?,
        workers: args.get_or("workers", 2usize)?,
        queue: args.get_or("queue", 4usize)?,
        out: args.options.get("out").map(std::path::PathBuf::from),
    };
    let r = escalate_serve::run_loadgen(&opts).map_err(CliError::Pipeline)?;
    Ok(format!(
        "loadgen: {} jobs ({} done, {} failed, {} backpressure retries) in {:.0} ms\n\
         latency p50 {:.1} ms, p99 {:.1} ms; {:.2} jobs/s ({} workers, queue {})\n",
        r.jobs,
        r.done,
        r.failed,
        r.retries,
        r.wall_ms,
        r.p50_ms,
        r.p99_ms,
        r.jobs_per_sec,
        r.workers,
        r.queue
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(line: &[&str]) -> Result<String, CliError> {
        dispatch(&ParsedArgs::parse(line.iter().copied()).unwrap())
    }

    #[test]
    fn help_prints_usage() {
        let out = run(&["help"]).unwrap();
        assert!(out.contains("COMMANDS"));
        assert!(out.contains("simulate"));
    }

    #[test]
    fn models_lists_all_six() {
        let out = run(&["models"]).unwrap();
        for name in [
            "VGG16",
            "ResNet18",
            "ResNet152",
            "MobileNetV2",
            "ResNet50",
            "MobileNet",
        ] {
            assert!(out.contains(name), "{name} missing:\n{out}");
        }
    }

    #[test]
    fn unknown_model_is_reported() {
        let e = run(&["compress", "LeNet"]).unwrap_err();
        assert!(e.to_string().contains("LeNet"));
    }

    #[test]
    fn unknown_command_is_reported() {
        let e = run(&["frobnicate"]).unwrap_err();
        assert!(e.to_string().contains("frobnicate"));
    }

    #[test]
    fn unknown_option_is_reported() {
        let e = run(&["compress", "VGG16", "--bogus", "1"]).unwrap_err();
        assert!(e.to_string().contains("bogus"));
    }

    #[test]
    fn compress_mobilenet_end_to_end() {
        let out = run(&["compress", "MobileNet", "--layers"]).unwrap();
        assert!(out.contains("compression"));
        assert!(out.contains("dw1+pw1"), "per-layer output expected:\n{out}");
    }

    #[test]
    fn compress_saves_and_inspect_loads() {
        let dir = std::env::temp_dir().join("escalate_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mobilenet.esca");
        let p = path.to_str().unwrap();
        run(&["compress", "MobileNet", "--out", p]).unwrap();
        let out = run(&["inspect", p]).unwrap();
        assert!(out.contains("compression"), "{out}");
        assert!(out.contains("dw1+pw1"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn simulate_with_metrics_writes_a_manifest() {
        let dir = std::env::temp_dir().join("escalate_cli_metrics_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("manifest.json");
        let p = path.to_str().unwrap();
        run(&["simulate", "MobileNet", "--seeds", "1", "--metrics", p]).unwrap();
        let json = std::fs::read_to_string(&path).unwrap();
        // Structure only: other tests in this binary run in parallel and
        // may record onto the installed registry, so exact counter values
        // are asserted by the sim crate's observer tests instead.
        for needle in [
            "\"schema\": \"escalate-run-manifest/v1\"",
            "\"model\": \"MobileNet\"",
            "\"seeds\": 1",
            "\"accelerators\":",
            "\"layers\":",
            "\"metrics\":",
            "sim.cycles",
            "bench.model/MobileNet",
        ] {
            assert!(json.contains(needle), "missing {needle} in manifest");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn simulate_rejects_bare_metrics_flag() {
        let err = run(&["simulate", "MobileNet", "--seeds", "1", "--metrics"]).unwrap_err();
        assert!(
            err.to_string().contains("metrics"),
            "expected a --metrics error, got: {err}"
        );
    }

    #[test]
    fn validate_compares_fidelities() {
        let out = run(&["validate", "MobileNet"]).unwrap();
        assert!(out.contains("sampling engine"), "{out}");
        assert!(out.contains("detailed"), "{out}");
    }

    #[test]
    fn characterize_reports_structure() {
        let out = run(&["characterize", "MobileNet"]).unwrap();
        assert!(out.contains("DSC MAC share"));
        assert!(out.contains("dw1"));
    }

    #[test]
    fn report_list_enumerates_the_registry() {
        let out = run(&["report", "--list"]).unwrap();
        for name in ["table1", "fig8", "fig13", "bench_sim"] {
            assert!(out.contains(name), "{name} missing:\n{out}");
        }
    }

    #[test]
    fn report_flag_before_name_keeps_the_name() {
        // The generic parser turns `--check table4` into check="table4";
        // cmd_report must restore both the flag and the experiment name.
        let e = run(&["report", "--check", "table4", "--results", "/nonexistent"]).unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("golden drift"), "{msg}");
        assert!(msg.contains("DRIFT table4"), "{msg}");
        assert!(msg.contains("1 experiment(s) checked"), "{msg}");
    }

    #[test]
    fn report_rejects_empty_and_unknown_invocations() {
        let e = run(&["report"]).unwrap_err();
        assert!(e.to_string().contains("nothing to do"), "{e}");
        let e = run(&["report", "fig99"]).unwrap_err();
        assert!(e.to_string().contains("fig99"), "{e}");
    }

    #[test]
    fn sweep_rejects_bad_inputs() {
        let e = run(&["sweep", "MobileNet", "--m", "8..4"]).unwrap_err();
        assert!(e.to_string().contains("1 <= A <= B"), "{e}");
        let e = run(&["sweep", "MobileNet", "--pe", "nope"]).unwrap_err();
        assert!(e.to_string().contains("inclusive range"), "{e}");
        let e = run(&["sweep", "MobileNet", "--out"]).unwrap_err();
        assert!(e.to_string().contains("--out"), "{e}");
        let e = run(&["sweep", "NotANet", "--samples", "1"]).unwrap_err();
        assert!(e.to_string().contains("NotANet"), "{e}");
    }

    #[test]
    fn sweep_streams_then_resumes_without_rerunning() {
        let dir = std::env::temp_dir().join("escalate_cli_sweep_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sweep.jsonl");
        std::fs::remove_file(&path).ok();
        let p = path.to_str().unwrap();
        let line = ["sweep", "MobileNet", "--samples=1", "--seeds=1", "--out", p];
        let cold = run(&line).unwrap();
        assert!(cold.contains("1 sample(s) ran, 0 resumed"), "{cold}");
        assert!(
            cold.contains("Pareto frontier - MobileNet (1 of 1"),
            "{cold}"
        );
        // Re-running the same sweep resumes: nothing re-runs, and the
        // frontier (computed from the parsed stream) is identical.
        let resumed = run(&line).unwrap();
        assert!(resumed.contains("0 sample(s) ran, 1 resumed"), "{resumed}");
        let frontier = |s: &str| {
            s.lines()
                .skip(1)
                .map(str::to_string)
                .collect::<Vec<String>>()
        };
        assert_eq!(frontier(&cold), frontier(&resumed));
        std::fs::remove_file(&path).ok();
    }
}
