//! Run-manifest emission backing the CLI's `--metrics <FILE>` flag.
//!
//! A manifest is one JSON object capturing everything needed to interpret
//! (and re-run) a simulation: the command and model, the resolved
//! configuration, each accelerator's averaged result, ESCALATE's
//! per-layer stats, and the full metrics snapshot (counters, histograms,
//! and timing spans) recorded by the `escalate-obs` registry during the
//! run. The schema is documented in DESIGN.md ("Observability").

use escalate_bench::ModelRun;
use escalate_obs::{JsonWriter, Snapshot};
use escalate_sim::SimConfig;

/// Manifest schema identifier, bumped on incompatible layout changes.
pub const MANIFEST_SCHEMA: &str = "escalate-run-manifest/v1";

/// Renders the run manifest as a JSON string.
///
/// The `layers` section mirrors [`escalate_sim::LayerStats`] of the
/// first-seed ESCALATE run field for field, so its counters reconcile
/// exactly with the `sim.*` counters in the `metrics` section (the
/// observer flushes the very stats object the simulation returns).
pub fn render_manifest(
    command: &str,
    model: &str,
    cfg: &SimConfig,
    seeds: u64,
    run: &ModelRun,
    metrics: &Snapshot,
) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.field_str("schema", MANIFEST_SCHEMA);
    w.field_str("command", command);
    w.field_str("model", model);

    w.key("config");
    w.begin_object();
    w.field_u64("m", cfg.m as u64);
    w.field_u64("n_pe", cfg.n_pe as u64);
    w.field_u64("l", cfg.l as u64);
    w.field_f64("frequency_mhz", cfg.frequency_mhz);
    w.field_f64("dram_bytes_per_cycle", cfg.dram_bytes_per_cycle);
    w.field_u64("sample_channels", cfg.sample_channels as u64);
    w.field_u64("seeds", seeds);
    w.field_u64(
        "threads",
        escalate_core::par::resolve_threads(cfg.threads) as u64,
    );
    w.end_object();

    w.key("accelerators");
    w.begin_array();
    for r in [&run.eyeriss, &run.scnn, &run.sparten, &run.escalate] {
        w.begin_object();
        w.field_str("name", &r.name);
        w.field_f64("mean_cycles", r.cycles);
        w.field_f64("mean_dram_bytes", r.dram_bytes);
        w.field_f64("mean_energy_pj", r.energy_pj);
        w.end_object();
    }
    w.end_array();

    w.key("layers");
    w.begin_array();
    for l in &run.escalate.first_seed_stats.layers {
        w.begin_object();
        w.field_str("name", &l.name);
        w.field_u64("cycles", l.cycles);
        w.field_u64("mac_ops", l.mac_ops);
        w.field_u64("ca_adds", l.ca_adds);
        w.field_u64("gather_passes", l.gather_passes);
        w.field_u64("mac_idle_cycles", l.mac_idle_cycles);
        w.field_u64("dram_bytes", l.dram.total());
        w.field_u64("sram_bytes", l.sram.total());
        w.field_bool("fallback", l.fallback);
        w.end_object();
    }
    w.end_array();

    w.key("metrics");
    metrics.write_json(&mut w);
    w.end_object();
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use escalate_bench::AccelRun;
    use escalate_sim::{LayerStats, ModelStats};

    fn accel(name: &str) -> AccelRun {
        AccelRun {
            name: name.into(),
            cycles: 100.0,
            dram_bytes: 200.0,
            energy_pj: 300.0,
            first_seed_stats: ModelStats {
                model_name: "m".into(),
                layers: vec![LayerStats {
                    name: "l1".into(),
                    cycles: 10,
                    mac_ops: 20,
                    ca_adds: 30,
                    ..LayerStats::default()
                }],
                pipeline: None,
            },
            energy: Default::default(),
        }
    }

    #[test]
    fn manifest_contains_every_section() {
        let run = ModelRun {
            model: "m".into(),
            escalate: accel("ESCALATE"),
            eyeriss: accel("Eyeriss"),
            scnn: accel("SCNN"),
            sparten: accel("SparTen"),
        };
        let reg = escalate_obs::Registry::new();
        reg.counter_add("sim.cycles", 10);
        let json = render_manifest(
            "simulate",
            "m",
            &SimConfig::default(),
            3,
            &run,
            &reg.snapshot(),
        );
        for needle in [
            "\"schema\": \"escalate-run-manifest/v1\"",
            "\"config\":",
            "\"seeds\": 3",
            "\"accelerators\":",
            "\"ESCALATE\"",
            "\"layers\":",
            "\"ca_adds\": 30",
            "\"metrics\":",
            "\"sim.cycles\": 10",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
    }
}
