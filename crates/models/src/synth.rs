//! Seeded synthetic weight and activation generators.
//!
//! There is no offline DNN-training ecosystem, so trained checkpoints are
//! replaced by synthetic tensors that preserve the properties the ESCALATE
//! pipeline and simulators actually consume:
//!
//! - **Weights** are generated with a controllable *effective kernel rank*:
//!   each 2-D kernel is a linear combination of `rank` shared latent
//!   kernels plus scaled Gaussian noise, mirroring the empirical low-rank
//!   structure kernel decomposition exploits (PENNI's observation), and the
//!   combination coefficients are long-tailed so that ternary pruning at a
//!   threshold produces realistic sparsity.
//! - **Activations** are Gaussian maps passed through a quantile threshold
//!   ("synthetic ReLU") that hits a requested sparsity exactly, with mild
//!   spatial correlation so nonzeros cluster the way feature maps do.

use crate::layer::{LayerKind, LayerShape};
use escalate_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Standard Gaussian sample via Box–Muller (keeps us independent of
/// `rand_distr`).
fn gaussian(rng: &mut StdRng) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

/// Generates a synthetic weight tensor for a layer with a target effective
/// kernel rank.
///
/// For regular convolutions the result is `K×C×R×S`; for depthwise layers
/// `C×R×S`; for pointwise/FC layers `K×C` reshaped to `K×C×1×1`.
///
/// `rank` bounds the dimension of the subspace the kernels live in
/// (clamped to `R*S`); `noise` adds a full-rank perturbation of that
/// relative magnitude, so `noise = 0` gives exactly-rank-`rank` kernels.
///
/// # Examples
///
/// ```
/// use escalate_models::{LayerShape, synth};
///
/// let l = LayerShape::conv("l", 8, 16, 16, 16, 3, 1, 1);
/// let w = synth::weights(&l, 4, 0.0, 7);
/// assert_eq!(w.shape(), &[16, 8, 3, 3]);
/// ```
pub fn weights(layer: &LayerShape, rank: usize, noise: f32, seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_0001);
    let rs = layer.r * layer.s;
    let rank = rank.clamp(1, rs);
    let (k, c) = match layer.kind {
        LayerKind::DwConv => (1, layer.c),
        // Grouped filters only see their group's slice of the input.
        LayerKind::GroupedConv { .. } => (layer.k, layer.c / layer.groups()),
        _ => (layer.k, layer.c),
    };

    // Shared latent kernels, roughly orthogonal by random draw.
    let latent: Vec<Vec<f32>> = (0..rank)
        .map(|_| (0..rs).map(|_| gaussian(&mut rng)).collect())
        .collect();

    // Long-tailed combination coefficients: most kernels are dominated by
    // one or two latent components, which is what magnitude pruning of the
    // projected coefficients exploits.
    let mut data = Vec::with_capacity(k * c * rs);
    for _ in 0..k * c {
        let mut kernel = vec![0.0f32; rs];
        for l in &latent {
            // Laplace-like heavy tail: sign * exp-distributed magnitude.
            let mag = -gaussian(&mut rng).abs().ln_1p() + gaussian(&mut rng).abs().powi(2) * 0.4;
            let coef = if rng.gen_bool(0.5) { mag } else { -mag };
            for (kv, &lv) in kernel.iter_mut().zip(l) {
                *kv += coef * lv;
            }
        }
        for kv in kernel.iter_mut() {
            *kv += noise * gaussian(&mut rng);
        }
        data.extend_from_slice(&kernel);
    }

    // Normalize to a He-like fan-in scale so outputs are well-conditioned.
    let fan_in = (c * rs) as f32;
    let scale = (2.0 / fan_in).sqrt();
    let norm: f32 = data.iter().map(|v| v * v).sum::<f32>().sqrt() / (data.len() as f32).sqrt();
    let adj = if norm > 0.0 { scale / norm } else { scale };
    for v in data.iter_mut() {
        *v *= adj;
    }

    match layer.kind {
        LayerKind::DwConv => Tensor::from_vec(&[layer.c, layer.r, layer.s], data),
        LayerKind::GroupedConv { .. } => {
            Tensor::from_vec(&[layer.k, layer.c / layer.groups(), layer.r, layer.s], data)
        }
        _ => Tensor::from_vec(&[layer.k, layer.c, layer.r, layer.s], data),
    }
}

/// Generates a synthetic pointwise weight matrix (`K×C`) for DSC layers.
pub fn pointwise_weights(c: usize, k: usize, seed: u64) -> escalate_tensor::Matrix {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_0002);
    let scale = (2.0 / c as f32).sqrt();
    escalate_tensor::Matrix::from_vec(
        k,
        c,
        (0..k * c).map(|_| gaussian(&mut rng) * scale).collect(),
    )
}

/// Generates a synthetic input feature map (`C×X×Y`) with exactly the
/// requested sparsity (fraction of zeros), emulating post-ReLU activations.
///
/// Values are mildly spatially correlated (a 1-pole filter along rows) so
/// nonzeros cluster like real feature maps; the zero pattern comes from
/// thresholding at the requested quantile, and surviving values are
/// strictly positive like ReLU outputs.
///
/// # Panics
///
/// Panics if `sparsity` is outside `[0, 1]`.
///
/// # Examples
///
/// ```
/// use escalate_models::{LayerShape, synth};
///
/// let l = LayerShape::conv("l", 4, 8, 16, 16, 3, 1, 1);
/// let a = synth::activations(&l, 0.5, 42);
/// let zeros = a.as_slice().iter().filter(|&&v| v == 0.0).count();
/// assert!((zeros as f64 / a.len() as f64 - 0.5).abs() < 0.02);
/// ```
pub fn activations(layer: &LayerShape, sparsity: f64, seed: u64) -> Tensor {
    assert!((0.0..=1.0).contains(&sparsity), "sparsity must be in [0,1]");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_0003);
    let c = layer.c;
    let (x, y) = (layer.x, layer.y);
    let mut data = vec![0.0f32; c * x * y];
    for ci in 0..c {
        let mut prev = 0.0f32;
        for xi in 0..x {
            for yi in 0..y {
                let fresh = gaussian(&mut rng);
                let v = 0.6 * prev + 0.8 * fresh;
                prev = v;
                data[(ci * x + xi) * y + yi] = v;
            }
        }
    }
    // Threshold at the requested quantile.
    let mut sorted = data.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let cut_idx = ((sorted.len() as f64 * sparsity) as usize).min(sorted.len().saturating_sub(1));
    let cut = if sparsity >= 1.0 {
        f32::INFINITY
    } else {
        sorted[cut_idx]
    };
    for v in data.iter_mut() {
        // Shift survivors to be positive (ReLU-like) with the threshold as 0.
        *v = if *v > cut { *v - cut } else { 0.0 };
    }
    Tensor::from_vec(&[c, x, y], data)
}

/// Deterministic per-layer seed derived from a base seed, layer index, and
/// sample index, so different experiments agree on workloads.
pub fn layer_seed(base: u64, layer_index: usize, sample: usize) -> u64 {
    let mut h = base ^ 0x9E37_79B9_7F4A_7C15;
    h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9) ^ (layer_index as u64);
    h = h.wrapping_mul(0x94D0_49BB_1331_11EB) ^ (sample as u64);
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use escalate_tensor::{linalg, Matrix};

    fn reshaped(layer: &LayerShape, w: &Tensor) -> Matrix {
        let rs = layer.r * layer.s;
        Matrix::from_vec(w.len() / rs, rs, w.as_slice().to_vec())
    }

    #[test]
    fn weights_have_requested_shape() {
        let l = LayerShape::conv("l", 4, 8, 8, 8, 3, 1, 1);
        assert_eq!(weights(&l, 3, 0.1, 1).shape(), &[8, 4, 3, 3]);
        let d = LayerShape::dwconv("d", 16, 8, 8, 3, 1, 1);
        assert_eq!(weights(&d, 3, 0.1, 1).shape(), &[16, 3, 3]);
        let g = LayerShape::grouped_conv("g", 16, 8, 8, 8, 3, 1, 1, 4);
        assert_eq!(weights(&g, 3, 0.1, 1).shape(), &[8, 4, 3, 3]);
    }

    #[test]
    fn weights_are_deterministic_per_seed() {
        let l = LayerShape::conv("l", 4, 8, 8, 8, 3, 1, 1);
        assert_eq!(weights(&l, 3, 0.1, 7), weights(&l, 3, 0.1, 7));
        assert_ne!(weights(&l, 3, 0.1, 7), weights(&l, 3, 0.1, 8));
    }

    #[test]
    fn noiseless_weights_have_exact_rank() {
        let l = LayerShape::conv("l", 6, 12, 8, 8, 3, 1, 1);
        let w = weights(&l, 4, 0.0, 3);
        let m = reshaped(&l, &w);
        let f = linalg::truncated_svd(&m, 4).unwrap();
        // Rank-4 construction ⇒ rank-4 SVD reconstructs (nearly) exactly.
        assert!(f.captured_energy > 0.999, "captured {}", f.captured_energy);
    }

    #[test]
    fn noise_raises_effective_rank() {
        let l = LayerShape::conv("l", 6, 12, 8, 8, 3, 1, 1);
        let clean = reshaped(&l, &weights(&l, 2, 0.0, 3));
        let noisy = reshaped(&l, &weights(&l, 2, 0.5, 3));
        let ec = linalg::truncated_svd(&clean, 2).unwrap().captured_energy;
        let en = linalg::truncated_svd(&noisy, 2).unwrap().captured_energy;
        assert!(ec > en, "noise should spread energy: clean={ec} noisy={en}");
    }

    #[test]
    fn activations_hit_target_sparsity() {
        let l = LayerShape::conv("l", 8, 8, 32, 32, 3, 1, 1);
        for target in [0.0, 0.3, 0.5, 0.8] {
            let a = activations(&l, target, 11);
            assert!(
                (a.sparsity() - target).abs() < 0.02,
                "target {target}, got {}",
                a.sparsity()
            );
        }
    }

    #[test]
    fn activations_are_nonnegative() {
        let l = LayerShape::conv("l", 4, 4, 16, 16, 3, 1, 1);
        let a = activations(&l, 0.6, 5);
        assert!(a.as_slice().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn full_sparsity_gives_zero_map() {
        let l = LayerShape::conv("l", 2, 2, 8, 8, 3, 1, 1);
        let a = activations(&l, 1.0, 5);
        assert_eq!(a.nnz(), 0);
    }

    #[test]
    fn layer_seeds_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for layer in 0..50 {
            for sample in 0..10 {
                assert!(seen.insert(layer_seed(42, layer, sample)));
            }
        }
    }
}
