//! One front door for turning a network spec string into a profile.
//!
//! Every by-name network lookup in the workspace (CLI, sweep, serve jobs,
//! loadgen) routes through [`resolve`], so the accepted spellings and the
//! unknown-name error are identical everywhere. A spec is one of:
//!
//! - a zoo model name (`ResNet18`),
//! - `@path/to/file.network` — an `escalate-network/v1` description file
//!   (see [`crate::netdesc`]),
//! - `gen:NAME[:key=value,...]` — a parametric generator (see
//!   [`crate::generate`]).

use std::fs::File;
use std::path::Path;

use crate::generate;
use crate::netdesc::NetworkError;
use crate::profiles::ModelProfile;
use crate::zoo::Model;

/// Typed errors from [`resolve`].
#[derive(Debug)]
pub enum ResolveError {
    /// The spec names neither a zoo model nor a file/generator form.
    UnknownModel {
        /// The spec as given.
        name: String,
    },
    /// A `gen:` spec that the generators rejected.
    BadGenerator {
        /// The spec as given.
        spec: String,
        /// The generator's complaint.
        msg: String,
    },
    /// An `@file` spec whose file failed to open or parse.
    BadNetworkFile {
        /// The path as given.
        path: String,
        /// The underlying parse or I/O error.
        err: NetworkError,
    },
}

impl std::fmt::Display for ResolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResolveError::UnknownModel { name } => write!(
                f,
                "unknown model {name:?}; known models: {} (or use @FILE for a \
                 network description, gen:NAME[:key=value,...] to generate one)",
                zoo_names().join(", ")
            ),
            ResolveError::BadGenerator { spec, msg } => {
                write!(f, "bad generator spec {spec:?}: {msg}")
            }
            ResolveError::BadNetworkFile { path, err } => {
                write!(f, "network file {path:?}: {err}")
            }
        }
    }
}

impl std::error::Error for ResolveError {}

/// Names of the six zoo models, in the paper's order.
pub fn zoo_names() -> Vec<String> {
    ModelProfile::all().into_iter().map(|p| p.name).collect()
}

/// Resolves a network spec (zoo name, `@file`, or `gen:` spec) to a
/// profile ready for compression and simulation.
///
/// # Errors
///
/// Returns a [`ResolveError`] naming the spec and, for files and
/// generators, the underlying problem.
///
/// # Examples
///
/// ```
/// use escalate_models::resolve;
///
/// assert_eq!(resolve::resolve("ResNet18").unwrap().name, "ResNet18");
/// assert!(resolve::resolve("gen:grouped:groups=8").is_ok());
/// assert!(resolve::resolve("LeNet").is_err());
/// ```
pub fn resolve(spec: &str) -> Result<ModelProfile, ResolveError> {
    let spec = spec.trim();
    if let Some(path) = spec.strip_prefix('@') {
        let model = load_network(Path::new(path)).map_err(|err| ResolveError::BadNetworkFile {
            path: path.to_string(),
            err,
        })?;
        return Ok(ModelProfile::synthetic(model));
    }
    if let Some(gen_spec) = spec.strip_prefix("gen:") {
        let model = generate::generate(gen_spec).map_err(|msg| ResolveError::BadGenerator {
            spec: spec.to_string(),
            msg,
        })?;
        return Ok(ModelProfile::synthetic(model));
    }
    ModelProfile::for_model(spec).ok_or_else(|| ResolveError::UnknownModel {
        name: spec.to_string(),
    })
}

fn load_network(path: &Path) -> Result<Model, NetworkError> {
    let file = File::open(path)?;
    Model::from_reader(file)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;

    #[test]
    fn zoo_names_resolve_to_zoo_profiles() {
        for name in zoo_names() {
            let p = resolve(&name).unwrap();
            assert_eq!(p.name, name);
            assert!(p.custom.is_none());
        }
    }

    #[test]
    fn generator_specs_resolve_to_synthetic_profiles() {
        let p = resolve("gen:vit:blocks=1").unwrap();
        assert_eq!(p.name, "vit-d64x1");
        assert!(p.custom.is_some());
    }

    #[test]
    fn file_specs_round_trip_through_disk() {
        let dir = std::env::temp_dir();
        let path = dir.join("escalate_resolve_test.network");
        let model = generate::generate("grouped:blocks=2").unwrap();
        let mut f = std::fs::File::create(&path).unwrap();
        f.write_all(model.to_description().unwrap().as_bytes())
            .unwrap();
        drop(f);
        let p = resolve(&format!("@{}", path.display())).unwrap();
        assert_eq!(p.model(), model);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unknown_names_list_the_zoo_and_escape_hatches() {
        let e = resolve("LeNet").unwrap_err().to_string();
        assert!(e.contains("unknown model \"LeNet\""), "{e}");
        assert!(e.contains("VGG16") && e.contains("MobileNet"), "{e}");
        assert!(e.contains("@FILE") && e.contains("gen:NAME"), "{e}");
    }

    #[test]
    fn bad_file_and_generator_specs_carry_context() {
        let e = resolve("@/no/such/file.network").unwrap_err().to_string();
        assert!(e.contains("/no/such/file.network"), "{e}");
        let e = resolve("gen:warp").unwrap_err().to_string();
        assert!(e.contains("unknown generator"), "{e}");
    }
}
