//! Workload characterization: the compute/traffic structure that decides
//! which accelerator wins where (the analysis behind Figures 11 and 13
//! and the §6.3 discussion).

use crate::layer::{LayerKind, LayerShape};
use crate::profiles::ModelProfile;

/// Compute/traffic characterization of one layer.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerCharacter {
    /// Layer name.
    pub name: String,
    /// Dense MACs.
    pub macs: u64,
    /// Dense operand bytes (weights + IFM + OFM at 8 bits).
    pub bytes: u64,
    /// Arithmetic intensity: MACs per operand byte.
    pub intensity: f64,
    /// The ESCALATE per-layer speedup bound `C/M` (§5.2.2).
    pub cm_bound: f64,
    /// Spatial positions (SCNN's parallelism axis).
    pub positions: u64,
    /// Input channels (SparTen's and ESCALATE's parallelism axis).
    pub channels: u64,
    /// Whether the layer is depthwise or pointwise.
    pub kind: LayerKind,
}

impl LayerCharacter {
    /// Characterizes one layer for an `m`-basis decomposition.
    pub fn of(layer: &LayerShape, m: usize) -> LayerCharacter {
        let macs = layer.macs() as u64;
        let bytes = (layer.weight_params() + layer.input_size() + layer.output_size()) as u64;
        LayerCharacter {
            name: layer.name.clone(),
            macs,
            bytes,
            intensity: macs as f64 / bytes.max(1) as f64,
            cm_bound: layer.c as f64 / m.max(1) as f64,
            positions: (layer.x * layer.y) as u64,
            channels: layer.c as u64,
            kind: layer.kind,
        }
    }
}

/// Whole-model characterization.
#[derive(Debug, Clone)]
pub struct ModelCharacter {
    /// Model name.
    pub name: String,
    /// Per-layer records in execution order.
    pub layers: Vec<LayerCharacter>,
}

impl ModelCharacter {
    /// Characterizes every conv layer of a profile's model.
    pub fn of(profile: &ModelProfile, m: usize) -> ModelCharacter {
        let model = profile.model();
        ModelCharacter {
            name: profile.name.to_string(),
            layers: model
                .conv_layers()
                .map(|l| LayerCharacter::of(l, m))
                .collect(),
        }
    }

    /// MAC-weighted mean arithmetic intensity — below the machine balance
    /// (multipliers × bytes-per-cycle⁻¹) the model is memory-bound.
    pub fn mean_intensity(&self) -> f64 {
        let macs: u64 = self.layers.iter().map(|l| l.macs).sum();
        let bytes: u64 = self.layers.iter().map(|l| l.bytes).sum();
        macs as f64 / bytes.max(1) as f64
    }

    /// MAC-weighted mean `C/M` bound — the best speedup the decomposed
    /// compute reduction alone can deliver for this model.
    pub fn mean_cm_bound(&self) -> f64 {
        let macs: u64 = self.layers.iter().map(|l| l.macs).sum();
        if macs == 0 {
            return 0.0;
        }
        self.layers
            .iter()
            .map(|l| l.cm_bound * l.macs as f64)
            .sum::<f64>()
            / macs as f64
    }

    /// Fraction of MACs in depthwise/pointwise (DSC) layers — high values
    /// flag compact models that sparse accelerators struggle with (§6.3).
    pub fn dsc_mac_fraction(&self) -> f64 {
        let macs: u64 = self.layers.iter().map(|l| l.macs).sum();
        if macs == 0 {
            return 0.0;
        }
        let dsc: u64 = self
            .layers
            .iter()
            .filter(|l| matches!(l.kind, LayerKind::DwConv | LayerKind::PwConv))
            .map(|l| l.macs)
            .sum();
        dsc as f64 / macs as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intensity_reflects_reuse() {
        // A wide 3x3 layer reuses each operand many times; a pointwise
        // layer on a tiny map barely at all.
        let fat = LayerCharacter::of(&LayerShape::conv("f", 256, 256, 32, 32, 3, 1, 1), 6);
        let thin = LayerCharacter::of(&LayerShape::pwconv("t", 256, 256, 2, 2), 6);
        assert!(fat.intensity > 10.0 * thin.intensity);
    }

    #[test]
    fn cm_bound_scales_with_channels() {
        let a = LayerCharacter::of(&LayerShape::conv("a", 64, 64, 8, 8, 3, 1, 1), 6);
        let b = LayerCharacter::of(&LayerShape::conv("b", 512, 64, 8, 8, 3, 1, 1), 6);
        assert!((a.cm_bound - 64.0 / 6.0).abs() < 1e-9);
        assert!(b.cm_bound >= 7.9 * a.cm_bound);
    }

    #[test]
    fn compact_models_are_dsc_dominated() {
        let mobilenet = ModelCharacter::of(&ModelProfile::for_model("MobileNet").unwrap(), 6);
        let vgg = ModelCharacter::of(&ModelProfile::for_model("VGG16").unwrap(), 6);
        assert!(mobilenet.dsc_mac_fraction() > 0.9);
        assert_eq!(vgg.dsc_mac_fraction(), 0.0);
    }

    #[test]
    fn cifar_vgg_is_weight_dominated() {
        // VGG16-CIFAR carries 14.7M weights over tiny maps: its traffic is
        // weight-dominated and its intensity low — exactly why eliminating
        // off-chip weight accesses wins Figure 9's CIFAR bars.
        let vgg = ModelCharacter::of(&ModelProfile::for_model("VGG16").unwrap(), 6);
        let mobilenet = ModelCharacter::of(&ModelProfile::for_model("MobileNet").unwrap(), 6);
        assert!(vgg.mean_intensity() < mobilenet.mean_intensity());
        // Machine balance at 960 MACs and 64 B/cycle is 15 MAC/B; VGG sits
        // near it, flagging the memory-boundedness the simulator shows.
        assert!(vgg.mean_intensity() < 40.0);
    }

    #[test]
    fn mean_cm_bound_tracks_model_width() {
        let r18 = ModelCharacter::of(&ModelProfile::for_model("ResNet18").unwrap(), 6);
        let wide = ModelCharacter::of(&ModelProfile::for_model("ResNet152").unwrap(), 6);
        assert!(wide.mean_cm_bound() > r18.mean_cm_bound());
        // With a larger M the bound shrinks.
        let r18_m8 = ModelCharacter::of(&ModelProfile::for_model("ResNet18").unwrap(), 8);
        assert!(r18_m8.mean_cm_bound() < r18.mean_cm_bound());
    }
}
