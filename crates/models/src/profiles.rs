//! Per-model calibration profiles transcribed from Table 1 of the paper.
//!
//! The synthetic weight/activation generators are steered by these targets
//! so the simulated workloads carry the same sparsity structure the paper
//! measured; the reference columns (paper accuracies and compression
//! ratios) are reprinted by the Table 1 harness next to our measured
//! values.

use crate::zoo::Model;

/// Dataset a model was evaluated on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// CIFAR-10: 3×32×32 inputs, 10 classes.
    Cifar10,
    /// ImageNet: 3×224×224 inputs, 1000 classes.
    ImageNet,
}

impl std::fmt::Display for Dataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Dataset::Cifar10 => f.write_str("CIFAR-10"),
            Dataset::ImageNet => f.write_str("ImageNet"),
        }
    }
}

/// Calibration targets and paper-reference numbers for one model.
///
/// Zoo profiles carry Table 1 transcriptions; profiles for user-supplied
/// networks (see [`ModelProfile::synthetic`]) carry neutral defaults and
/// the layer table itself in [`ModelProfile::custom`].
#[derive(Debug, Clone)]
pub struct ModelProfile {
    /// Model name (matches [`Model::name`]).
    pub name: String,
    /// Evaluation dataset.
    pub dataset: Dataset,
    /// Paper Table 1: baseline top-1 accuracy (%).
    pub baseline_top1: f64,
    /// Paper Table 1: ESCALATE top-1 accuracy (%).
    pub escalate_top1: f64,
    /// Paper Table 1: ESCALATE compression ratio (×).
    pub paper_compression: f64,
    /// Paper Table 1: ESCALATE coefficient sparsity (%), i.e. the fraction
    /// of ternary coefficients that are zero after pruning.
    pub coeff_sparsity: f64,
    /// Paper Table 1: pruning ratio w.r.t. the original weights (%).
    pub pruning_ratio: f64,
    /// Weight sparsity of the pruned checkpoint used for the *baseline*
    /// accelerators (ADMM-NN-S for CIFAR-10, STR for ImageNet, naive L1
    /// for ResNet152), from Table 1.
    pub baseline_weight_sparsity: f64,
    /// Mean ReLU activation sparsity used for the synthetic inputs.
    pub mean_activation_sparsity: f64,
    /// Layer table for non-zoo networks (loaded from a description file or
    /// generated); `None` for the six paper models, which are built from
    /// the zoo constructors by name.
    pub custom: Option<Model>,
}

impl ModelProfile {
    /// Profiles for all six evaluated models, in the paper's order.
    pub fn all() -> Vec<ModelProfile> {
        vec![
            ModelProfile {
                name: "VGG16".to_string(),
                dataset: Dataset::Cifar10,
                baseline_top1: 93.49,
                escalate_top1: 92.74,
                paper_compression: 79.04,
                coeff_sparsity: 0.8924,
                pruning_ratio: 0.961,
                baseline_weight_sparsity: 0.983,
                mean_activation_sparsity: 0.55,
                custom: None,
            },
            ModelProfile {
                name: "ResNet18".to_string(),
                dataset: Dataset::Cifar10,
                baseline_top1: 93.79,
                escalate_top1: 93.63,
                paper_compression: 106.45,
                coeff_sparsity: 0.974,
                pruning_ratio: 0.9821,
                baseline_weight_sparsity: 0.986,
                mean_activation_sparsity: 0.50,
                custom: None,
            },
            ModelProfile {
                name: "ResNet152".to_string(),
                dataset: Dataset::Cifar10,
                baseline_top1: 95.36,
                escalate_top1: 93.86,
                paper_compression: 325.27,
                coeff_sparsity: 0.992,
                pruning_ratio: 0.994,
                baseline_weight_sparsity: 0.9249,
                mean_activation_sparsity: 0.50,
                custom: None,
            },
            ModelProfile {
                name: "MobileNetV2".to_string(),
                dataset: Dataset::Cifar10,
                baseline_top1: 94.09,
                escalate_top1: 93.32,
                paper_compression: 11.51,
                coeff_sparsity: 0.9698,
                pruning_ratio: 0.9186,
                baseline_weight_sparsity: 0.836,
                mean_activation_sparsity: 0.45,
                custom: None,
            },
            ModelProfile {
                name: "ResNet50".to_string(),
                dataset: Dataset::ImageNet,
                baseline_top1: 76.25,
                escalate_top1: 73.89,
                paper_compression: 10.92,
                coeff_sparsity: 0.8822,
                pruning_ratio: 0.9216,
                baseline_weight_sparsity: 0.9023,
                mean_activation_sparsity: 0.45,
                custom: None,
            },
            ModelProfile {
                name: "MobileNet".to_string(),
                dataset: Dataset::ImageNet,
                baseline_top1: 70.10,
                escalate_top1: 67.89,
                paper_compression: 8.92,
                coeff_sparsity: 0.676,
                pruning_ratio: 0.639,
                baseline_weight_sparsity: 0.7528,
                mean_activation_sparsity: 0.40,
                custom: None,
            },
        ]
    }

    /// Looks up a profile by model name.
    pub fn for_model(name: &str) -> Option<ModelProfile> {
        ModelProfile::all().into_iter().find(|p| p.name == name)
    }

    /// Wraps a user-supplied network (loaded or generated) in a profile
    /// with neutral calibration defaults: 90% coefficient sparsity and 90%
    /// baseline weight sparsity (mid-range for Table 1), 50% mean
    /// activation sparsity, and zeroed paper-reference columns. The
    /// dataset is inferred from the stem's spatial size.
    pub fn synthetic(model: Model) -> ModelProfile {
        let dataset = match model.layers().first() {
            Some(l) if l.x >= 128 => Dataset::ImageNet,
            _ => Dataset::Cifar10,
        };
        ModelProfile {
            name: model.name().to_string(),
            dataset,
            baseline_top1: 0.0,
            escalate_top1: 0.0,
            paper_compression: 0.0,
            coeff_sparsity: 0.90,
            pruning_ratio: 0.0,
            baseline_weight_sparsity: 0.90,
            mean_activation_sparsity: 0.50,
            custom: Some(model),
        }
    }

    /// Instantiates the [`Model`] layer table: the stored table for custom
    /// profiles, the matching zoo constructor otherwise.
    pub fn model(&self) -> Model {
        if let Some(m) = &self.custom {
            return m.clone();
        }
        match self.name.as_str() {
            "VGG16" => Model::vgg16_cifar(),
            "ResNet18" => Model::resnet18_cifar(),
            "ResNet152" => Model::resnet152_cifar(),
            "MobileNetV2" => Model::mobilenet_v2_cifar(),
            "ResNet50" => Model::resnet50_imagenet(),
            "MobileNet" => Model::mobilenet_imagenet(),
            other => unreachable!("unknown profile model {other}"),
        }
    }

    /// A stable 64-bit fingerprint over everything that shapes the
    /// simulated workload: the name, the full layer table, and the
    /// sparsity calibration targets. Two profiles that share a name but
    /// describe different networks (a zoo model vs a custom file, say)
    /// fingerprint differently, so caches keyed on it never conflate them.
    pub fn fingerprint(&self) -> u64 {
        fn eat(mut h: u64, bytes: &[u8]) -> u64 {
            for &b in bytes {
                h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
            }
            h
        }
        let mut h = 0xCBF2_9CE4_8422_2325u64; // FNV-1a offset basis
        h = eat(h, self.name.as_bytes());
        for l in self.model().layers() {
            h = eat(h, format!("{l:?}").as_bytes());
        }
        for v in [
            self.coeff_sparsity,
            self.baseline_weight_sparsity,
            self.mean_activation_sparsity,
        ] {
            h = eat(h, &v.to_bits().to_le_bytes());
        }
        h
    }

    /// Per-layer activation sparsity for layer `i` of `n`.
    ///
    /// ReLU sparsity grows with depth in trained CNNs (early layers keep
    /// most activations, late layers are highly selective); we use a
    /// linear ramp centred on the profile's mean, matching the qualitative
    /// layer-wise profiles in Figures 11 and 13.
    pub fn activation_sparsity(&self, layer_index: usize, n_layers: usize) -> f64 {
        let frac = if n_layers <= 1 {
            0.5
        } else {
            layer_index as f64 / (n_layers - 1) as f64
        };
        // ±0.15 ramp around the mean, clamped to a sane ReLU range.
        (self.mean_activation_sparsity - 0.15 + 0.30 * frac).clamp(0.05, 0.90)
    }

    /// Per-layer coefficient sparsity for layer `i` of `n`.
    ///
    /// Redundancy concentrates in late, wide layers (the paper prunes some
    /// late ResNet152 downsampling layers entirely); we ramp ±2 points
    /// around the model-level target. The ramp is kept small because model
    /// parameters concentrate in late layers, so a steep ramp would push
    /// the parameter-weighted sparsity past the Table 1 target.
    pub fn layer_coeff_sparsity(&self, layer_index: usize, n_layers: usize) -> f64 {
        let frac = if n_layers <= 1 {
            0.5
        } else {
            layer_index as f64 / (n_layers - 1) as f64
        };
        (self.coeff_sparsity - 0.01 + 0.02 * frac).clamp(0.0, 0.995)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_profiles_exist() {
        let all = ModelProfile::all();
        assert_eq!(all.len(), 6);
        let cifar = all.iter().filter(|p| p.dataset == Dataset::Cifar10).count();
        assert_eq!(cifar, 4);
    }

    #[test]
    fn lookups_match_models() {
        for p in ModelProfile::all() {
            let m = p.model();
            assert_eq!(m.name(), p.name);
            assert!(ModelProfile::for_model(&p.name).is_some());
        }
        assert!(ModelProfile::for_model("LeNet").is_none());
    }

    #[test]
    fn sparsity_targets_match_table1() {
        let r152 = ModelProfile::for_model("ResNet152").unwrap();
        assert_eq!(r152.coeff_sparsity, 0.992);
        assert_eq!(r152.paper_compression, 325.27);
        let mbn = ModelProfile::for_model("MobileNet").unwrap();
        assert_eq!(mbn.baseline_weight_sparsity, 0.7528);
    }

    #[test]
    fn activation_sparsity_ramps_and_stays_bounded() {
        let p = ModelProfile::for_model("VGG16").unwrap();
        let n = 13;
        let first = p.activation_sparsity(0, n);
        let last = p.activation_sparsity(n - 1, n);
        assert!(first < last);
        for i in 0..n {
            let s = p.activation_sparsity(i, n);
            assert!((0.05..=0.90).contains(&s));
        }
    }

    #[test]
    fn coeff_sparsity_never_exceeds_one() {
        let p = ModelProfile::for_model("ResNet152").unwrap();
        for i in 0..60 {
            assert!(p.layer_coeff_sparsity(i, 60) < 1.0);
        }
    }

    #[test]
    fn synthetic_profiles_carry_their_model() {
        let m = Model::new(
            "tiny",
            vec![crate::layer::LayerShape::conv("c1", 3, 8, 16, 16, 3, 1, 1)],
        );
        let p = ModelProfile::synthetic(m.clone());
        assert_eq!(p.name, "tiny");
        assert_eq!(p.dataset, Dataset::Cifar10);
        assert_eq!(p.model(), m);
        let big = Model::new(
            "big",
            vec![crate::layer::LayerShape::conv(
                "c1", 3, 8, 224, 224, 3, 1, 1,
            )],
        );
        assert_eq!(ModelProfile::synthetic(big).dataset, Dataset::ImageNet);
    }

    #[test]
    fn fingerprints_separate_same_named_networks() {
        let zoo = ModelProfile::for_model("VGG16").unwrap();
        assert_eq!(zoo.fingerprint(), zoo.fingerprint());
        // A custom network that borrows a zoo name must not collide.
        let fake = ModelProfile::synthetic(Model::new(
            "VGG16",
            vec![crate::layer::LayerShape::conv("c1", 3, 8, 16, 16, 3, 1, 1)],
        ));
        assert_ne!(zoo.fingerprint(), fake.fingerprint());
        // The zoo profile and an identical-table synthetic differ too
        // (calibration targets differ).
        let same_table = ModelProfile::synthetic(zoo.model());
        assert_ne!(zoo.fingerprint(), same_table.fingerprint());
    }

    #[test]
    fn accuracy_drops_are_modest() {
        // Sanity on the transcription: every model loses < 2.5 points.
        for p in ModelProfile::all() {
            let drop = p.baseline_top1 - p.escalate_top1;
            assert!((0.0..2.5).contains(&drop), "{}: {drop}", p.name);
        }
    }
}
