//! Parametric network generators for shapes the paper's zoo lacks.
//!
//! A generator spec is a name plus optional `key=value` parameters,
//! separated by commas: `grouped:blocks=4,groups=8`. The CLI and serve
//! daemon accept these prefixed with `gen:` (see [`crate::resolve`]).
//!
//! Four families are provided:
//!
//! - `grouped` — a conv stem followed by grouped 3×3 convolutions
//!   (ResNeXt-style cardinality), which exercise the dense fallback path
//!   since decomposition does not apply to grouped layers;
//! - `dilated` — a conv stem followed by dilated 3×3 convolutions with
//!   padding matched to the dilation so feature maps keep their size
//!   (DeepLab-style context aggregation);
//! - `bottleneck` — one stage of ResNet bottleneck blocks at a chosen
//!   width, reusing the exact stage builder the zoo uses;
//! - `vit` — a ViT-style block expressed as matmuls: a patchify stem and
//!   per block the QKV projection, the two attention matmuls `Q·Kᵀ`
//!   (tokens × tokens × dim) and `A·V` as pointwise layers over the token
//!   grid, the output projection, and a 4× MLP.

use crate::layer::LayerShape;
use crate::zoo::{bottleneck_stage, Model};

/// Names of the available generators, for error messages and docs.
pub const GENERATOR_NAMES: &[&str] = &["grouped", "dilated", "bottleneck", "vit"];

/// Parsed `key=value` parameters with typo detection against an allowlist.
struct Params {
    pairs: Vec<(String, usize)>,
}

impl Params {
    fn parse(spec: &str, allowed: &[&str]) -> Result<Params, String> {
        let mut pairs = vec![];
        for part in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let part = part.trim();
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("expected key=value, got {part:?}"))?;
            if !allowed.contains(&key) {
                return Err(format!(
                    "unknown parameter {key:?} (expected one of: {})",
                    allowed.join(", ")
                ));
            }
            if pairs.iter().any(|(k, _)| k == key) {
                return Err(format!("duplicate parameter {key:?}"));
            }
            let value: usize = value
                .parse()
                .map_err(|_| format!("parameter {key:?} has non-numeric value {value:?}"))?;
            if value == 0 {
                return Err(format!("parameter {key:?} must be positive"));
            }
            pairs.push((key.to_string(), value));
        }
        Ok(Params { pairs })
    }

    fn get(&self, key: &str, default: usize) -> usize {
        self.pairs
            .iter()
            .find(|(k, _)| k == key)
            .map(|&(_, v)| v)
            .unwrap_or(default)
    }
}

/// Generates a model from a spec like `grouped:blocks=4,groups=8` (the
/// part after the CLI's `gen:` prefix).
///
/// # Errors
///
/// Returns a human-readable message for unknown generator names, unknown
/// or malformed parameters, and parameter combinations that produce an
/// inconsistent network.
pub fn generate(spec: &str) -> Result<Model, String> {
    let (name, params) = match spec.split_once(':') {
        Some((n, p)) => (n.trim(), p),
        None => (spec.trim(), ""),
    };
    let model = match name {
        "grouped" => grouped(Params::parse(params, &["blocks", "groups", "c", "x"])?)?,
        "dilated" => dilated(Params::parse(params, &["blocks", "dilation", "c", "x"])?)?,
        "bottleneck" => bottleneck(Params::parse(params, &["blocks", "width", "x"])?)?,
        "vit" => vit(Params::parse(params, &["blocks", "dim", "patch", "x"])?)?,
        other => {
            return Err(format!(
                "unknown generator {other:?} (available: {})",
                GENERATOR_NAMES.join(", ")
            ))
        }
    };
    model
        .validate()
        .map_err(|e| format!("generated network is inconsistent: {e}"))?;
    Ok(model)
}

/// Conv stem + `blocks` grouped 3×3 convolutions at constant width.
fn grouped(p: Params) -> Result<Model, String> {
    let blocks = p.get("blocks", 3);
    let groups = p.get("groups", 4);
    let c = p.get("c", 64);
    let x = p.get("x", 32);
    if !c.is_multiple_of(groups) {
        return Err(format!("groups={groups} must divide c={c}"));
    }
    let mut layers = vec![LayerShape::conv("stem", 3, c, x, x, 3, 1, 1)];
    for b in 0..blocks {
        layers.push(LayerShape::grouped_conv(
            &format!("g{}", b + 1),
            c,
            c,
            x,
            x,
            3,
            1,
            1,
            groups,
        ));
    }
    Ok(Model::new(&format!("grouped-g{groups}x{blocks}"), layers))
}

/// Conv stem + `blocks` dilated 3×3 convolutions, padding matched to the
/// dilation so the map size is preserved.
fn dilated(p: Params) -> Result<Model, String> {
    let blocks = p.get("blocks", 3);
    let dilation = p.get("dilation", 2);
    let c = p.get("c", 64);
    let x = p.get("x", 32);
    let mut layers = vec![LayerShape::conv("stem", 3, c, x, x, 3, 1, 1)];
    for b in 0..blocks {
        layers.push(LayerShape::dilated_conv(
            &format!("d{}", b + 1),
            c,
            c,
            x,
            x,
            3,
            1,
            dilation,
            dilation,
        ));
    }
    Ok(Model::new(&format!("dilated-d{dilation}x{blocks}"), layers))
}

/// Conv stem + one stage of ResNet bottleneck blocks at `width`.
fn bottleneck(p: Params) -> Result<Model, String> {
    let blocks = p.get("blocks", 3);
    let width = p.get("width", 64);
    let x = p.get("x", 32);
    let mut layers = vec![LayerShape::conv("stem", 3, 64, x, x, 3, 1, 1)];
    bottleneck_stage(&mut layers, "stage1", 64, width, x, blocks, 1);
    Ok(Model::new(&format!("bottleneck-w{width}x{blocks}"), layers))
}

/// Patchify stem + `blocks` ViT encoder blocks as matmuls over the token
/// grid (`(x/patch)²` tokens of dimension `dim`).
fn vit(p: Params) -> Result<Model, String> {
    let blocks = p.get("blocks", 2);
    let dim = p.get("dim", 64);
    let patch = p.get("patch", 4);
    let x = p.get("x", 32);
    if !x.is_multiple_of(patch) {
        return Err(format!("patch={patch} must divide x={x}"));
    }
    let gs = x / patch;
    let tokens = gs * gs;
    let mut layers = vec![LayerShape::conv("patchify", 3, dim, x, x, patch, patch, 0)];
    for b in 1..=blocks {
        layers.push(LayerShape::pwconv(
            &format!("blk{b}.qkv"),
            dim,
            3 * dim,
            gs,
            gs,
        ));
        // Q·Kᵀ: tokens×tokens scores from dim-wide reductions, then A·V.
        layers.push(LayerShape::pwconv(
            &format!("blk{b}.attn_qk"),
            dim,
            tokens,
            gs,
            gs,
        ));
        layers.push(LayerShape::pwconv(
            &format!("blk{b}.attn_av"),
            tokens,
            dim,
            gs,
            gs,
        ));
        layers.push(LayerShape::pwconv(
            &format!("blk{b}.proj"),
            dim,
            dim,
            gs,
            gs,
        ));
        layers.push(LayerShape::pwconv(
            &format!("blk{b}.mlp1"),
            dim,
            4 * dim,
            gs,
            gs,
        ));
        layers.push(LayerShape::pwconv(
            &format!("blk{b}.mlp2"),
            4 * dim,
            dim,
            gs,
            gs,
        ));
    }
    Ok(Model::new(&format!("vit-d{dim}x{blocks}"), layers))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::LayerKind;

    #[test]
    fn all_generators_validate_with_defaults() {
        for name in GENERATOR_NAMES {
            let m = generate(name).unwrap_or_else(|e| panic!("{name}: {e}"));
            m.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(m.conv_macs() > 0, "{name} has no work");
        }
    }

    #[test]
    fn grouped_generator_honours_parameters() {
        let m = generate("grouped:blocks=5,groups=8,c=128,x=16").unwrap();
        assert_eq!(m.name(), "grouped-g8x5");
        let grouped: Vec<_> = m
            .layers()
            .iter()
            .filter(|l| matches!(l.kind, LayerKind::GroupedConv { .. }))
            .collect();
        assert_eq!(grouped.len(), 5);
        assert_eq!(grouped[0].groups(), 8);
        assert_eq!(grouped[0].c, 128);
    }

    #[test]
    fn dilated_generator_preserves_map_size() {
        let m = generate("dilated:dilation=3").unwrap();
        for l in m.layers() {
            assert_eq!(l.out_x(), 32, "{}: map size changed", l.name);
        }
    }

    #[test]
    fn vit_attention_macs_match_closed_form() {
        let m = generate("vit:blocks=1,dim=64,patch=4,x=32").unwrap();
        let tokens = 64; // (32/4)²
        let qk = m
            .layers()
            .iter()
            .find(|l| l.name.ends_with("attn_qk"))
            .unwrap();
        assert_eq!(qk.macs(), tokens * tokens * 64);
        let av = m
            .layers()
            .iter()
            .find(|l| l.name.ends_with("attn_av"))
            .unwrap();
        assert_eq!(av.macs(), tokens * tokens * 64);
    }

    #[test]
    fn bad_specs_name_the_problem() {
        for (spec, needle) in [
            ("warp", "unknown generator"),
            ("grouped:blocks", "expected key=value"),
            ("grouped:beans=3", "unknown parameter"),
            ("grouped:blocks=0", "must be positive"),
            ("grouped:blocks=2,blocks=3", "duplicate parameter"),
            ("grouped:groups=7,c=64", "must divide"),
            ("vit:patch=5,x=32", "must divide"),
            ("grouped:blocks=x", "non-numeric"),
        ] {
            let e = generate(spec).unwrap_err();
            assert!(e.contains(needle), "{spec:?}: got {e:?}, wanted {needle:?}");
        }
    }
}
