//! Exact layer tables for the six networks evaluated in the paper.
//!
//! CIFAR-10 models take 3×32×32 inputs; ImageNet models take 3×224×224.
//! The CIFAR variants follow the standard adaptations (3×3 stem without
//! the initial downsampling, stage spatial sizes 32/16/8/4). Only layer
//! *shapes* matter to the simulators; see `DESIGN.md` for the substitution
//! rationale.

use crate::layer::{LayerKind, LayerShape};

/// A CNN model: an ordered list of layers.
///
/// # Examples
///
/// ```
/// use escalate_models::Model;
///
/// let m = Model::resnet18_cifar();
/// assert_eq!(m.name(), "ResNet18");
/// assert!(m.conv_layers().count() > 15);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Model {
    name: String,
    layers: Vec<LayerShape>,
}

impl Model {
    /// Creates a model from a name and layer list.
    pub fn new(name: &str, layers: Vec<LayerShape>) -> Self {
        Model {
            name: name.to_string(),
            layers,
        }
    }

    /// Model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All layers, in execution order.
    pub fn layers(&self) -> &[LayerShape] {
        &self.layers
    }

    /// Only the convolutional layers (regular, depthwise, pointwise,
    /// grouped, dilated) — everything except the FC head. Grouped convs
    /// flow through here too: the compression planner routes them to the
    /// dense fallback, and the decomposed datapath rejects them with a
    /// typed `SimError::UnsupportedLayer`.
    pub fn conv_layers(&self) -> impl Iterator<Item = &LayerShape> {
        self.layers.iter().filter(|l| l.kind != LayerKind::Fc)
    }

    /// Total conv-layer weight parameters.
    pub fn conv_params(&self) -> usize {
        self.conv_layers().map(|l| l.weight_params()).sum()
    }

    /// Conv-layer model size in MiB at 32-bit floating point, the paper's
    /// baseline representation.
    pub fn conv_size_mb_fp32(&self) -> f64 {
        self.conv_params() as f64 * 4.0 / (1024.0 * 1024.0)
    }

    /// Total conv-layer MACs for one inference.
    pub fn conv_macs(&self) -> usize {
        self.conv_layers().map(|l| l.macs()).sum()
    }

    /// VGG16 adapted to CIFAR-10 (13 conv layers, 32×32 input).
    pub fn vgg16_cifar() -> Model {
        let cfg: &[(usize, usize, usize)] = &[
            // (c, k, spatial)
            (3, 64, 32),
            (64, 64, 32),
            (64, 128, 16),
            (128, 128, 16),
            (128, 256, 8),
            (256, 256, 8),
            (256, 256, 8),
            (256, 512, 4),
            (512, 512, 4),
            (512, 512, 4),
            (512, 512, 2),
            (512, 512, 2),
            (512, 512, 2),
        ];
        let mut layers: Vec<LayerShape> = cfg
            .iter()
            .enumerate()
            .map(|(i, &(c, k, sp))| {
                LayerShape::conv(&format!("conv{}", i + 1), c, k, sp, sp, 3, 1, 1)
            })
            .collect();
        layers.push(LayerShape::fc("fc", 512, 10));
        Model::new("VGG16", layers)
    }

    /// ResNet18 adapted to CIFAR-10 (BasicBlock ×`[2,2,2,2]`, 3×3 stem).
    pub fn resnet18_cifar() -> Model {
        let mut layers = vec![LayerShape::conv("conv1", 3, 64, 32, 32, 3, 1, 1)];
        basic_stage(&mut layers, "layer1", 64, 64, 32, 2, 1);
        basic_stage(&mut layers, "layer2", 64, 128, 32, 2, 2);
        basic_stage(&mut layers, "layer3", 128, 256, 16, 2, 2);
        basic_stage(&mut layers, "layer4", 256, 512, 8, 2, 2);
        layers.push(LayerShape::fc("fc", 512, 10));
        Model::new("ResNet18", layers)
    }

    /// ResNet152 adapted to CIFAR-10 (Bottleneck ×`[3,8,36,3]`, 3×3 stem).
    pub fn resnet152_cifar() -> Model {
        let mut layers = vec![LayerShape::conv("conv1", 3, 64, 32, 32, 3, 1, 1)];
        bottleneck_stage(&mut layers, "layer1", 64, 64, 32, 3, 1);
        bottleneck_stage(&mut layers, "layer2", 256, 128, 32, 8, 2);
        bottleneck_stage(&mut layers, "layer3", 512, 256, 16, 36, 2);
        bottleneck_stage(&mut layers, "layer4", 1024, 512, 8, 3, 2);
        layers.push(LayerShape::fc("fc", 2048, 10));
        Model::new("ResNet152", layers)
    }

    /// MobileNetV2 adapted to CIFAR-10 (stride-1 stem and first two stages).
    pub fn mobilenet_v2_cifar() -> Model {
        let mut layers = vec![LayerShape::conv("conv1", 3, 32, 32, 32, 3, 1, 1)];
        // (expansion t, out channels, repeats, stride) — strides adapted
        // for 32×32 inputs.
        let cfg: &[(usize, usize, usize, usize)] = &[
            (1, 16, 1, 1),
            (6, 24, 2, 1),
            (6, 32, 3, 2),
            (6, 64, 4, 2),
            (6, 96, 3, 1),
            (6, 160, 3, 2),
            (6, 320, 1, 1),
        ];
        let mut c = 32;
        let mut sp = 32;
        for (stage, &(t, out, n, s)) in cfg.iter().enumerate() {
            for rep in 0..n {
                let stride = if rep == 0 { s } else { 1 };
                inverted_residual(
                    &mut layers,
                    &format!("ir{}_{}", stage + 1, rep + 1),
                    c,
                    out,
                    sp,
                    t,
                    stride,
                );
                if stride == 2 {
                    sp /= 2;
                }
                c = out;
            }
        }
        layers.push(LayerShape::pwconv("conv_last", 320, 1280, sp, sp));
        layers.push(LayerShape::fc("fc", 1280, 10));
        Model::new("MobileNetV2", layers)
    }

    /// ResNet50 for ImageNet (Bottleneck ×`[3,4,6,3]`, 7×7 stem, 224×224).
    pub fn resnet50_imagenet() -> Model {
        let mut layers = vec![LayerShape::conv("conv1", 3, 64, 224, 224, 7, 2, 3)];
        // Max-pool takes 112×112 → 56×56 before layer1.
        bottleneck_stage(&mut layers, "layer1", 64, 64, 56, 3, 1);
        bottleneck_stage(&mut layers, "layer2", 256, 128, 56, 4, 2);
        bottleneck_stage(&mut layers, "layer3", 512, 256, 28, 6, 2);
        bottleneck_stage(&mut layers, "layer4", 1024, 512, 14, 3, 2);
        layers.push(LayerShape::fc("fc", 2048, 1000));
        Model::new("ResNet50", layers)
    }

    /// MobileNet (v1) for ImageNet (13 depthwise-separable blocks).
    pub fn mobilenet_imagenet() -> Model {
        let mut layers = vec![LayerShape::conv("conv1", 3, 32, 224, 224, 3, 2, 1)];
        // (in, out, spatial at block input, stride of the depthwise conv)
        let cfg: &[(usize, usize, usize, usize)] = &[
            (32, 64, 112, 1),
            (64, 128, 112, 2),
            (128, 128, 56, 1),
            (128, 256, 56, 2),
            (256, 256, 28, 1),
            (256, 512, 28, 2),
            (512, 512, 14, 1),
            (512, 512, 14, 1),
            (512, 512, 14, 1),
            (512, 512, 14, 1),
            (512, 512, 14, 1),
            (512, 1024, 14, 2),
            (1024, 1024, 7, 1),
        ];
        for (i, &(cin, cout, sp, s)) in cfg.iter().enumerate() {
            let n = i + 1;
            layers.push(LayerShape::dwconv(&format!("dw{n}"), cin, sp, sp, 3, s, 1));
            let out_sp = sp / s;
            layers.push(LayerShape::pwconv(
                &format!("pw{n}"),
                cin,
                cout,
                out_sp,
                out_sp,
            ));
        }
        layers.push(LayerShape::fc("fc", 1024, 1000));
        Model::new("MobileNet", layers)
    }

    /// Checks the structural consistency of a (possibly user-built) layer
    /// list: every layer must produce non-empty output, depthwise layers
    /// must have `K == C`, and — ignoring shortcut/downsample layers,
    /// whose names contain `"downsample"` — each conv layer's input
    /// channel count must match a producer earlier in the list (the
    /// previous conv layer's `K`, or any earlier layer's `K` for residual
    /// joins).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first inconsistency.
    pub fn validate(&self) -> Result<(), String> {
        let mut produced: Vec<usize> = vec![];
        let mut prev_out: Option<usize> = None;
        for l in self.conv_layers() {
            if l.out_x() == 0 || l.out_y() == 0 {
                return Err(format!(
                    "{}: kernel {}x{} cannot cover input {}x{}",
                    l.name, l.r, l.s, l.x, l.y
                ));
            }
            if l.kind == LayerKind::DwConv && l.k != l.c {
                return Err(format!(
                    "{}: depthwise layers need K == C ({} vs {})",
                    l.name, l.k, l.c
                ));
            }
            if let LayerKind::GroupedConv { groups } = l.kind {
                if groups == 0 {
                    return Err(format!("{}: groups must be positive", l.name));
                }
                if l.c % groups != 0 || l.k % groups != 0 {
                    return Err(format!(
                        "{}: groups={} must divide C={} and K={}",
                        l.name, groups, l.c, l.k
                    ));
                }
            }
            if let LayerKind::DilatedConv { dilation } = l.kind {
                if dilation == 0 {
                    return Err(format!("{}: dilation must be positive", l.name));
                }
            }
            let is_shortcut = l.name.contains("downsample");
            if !is_shortcut {
                let feeds = prev_out == Some(l.c) || produced.contains(&l.c) || produced.is_empty();
                if !feeds {
                    return Err(format!(
                        "{}: no earlier layer produces its {} input channels",
                        l.name, l.c
                    ));
                }
                prev_out = Some(l.k);
            }
            produced.push(l.k);
        }
        Ok(())
    }

    /// All six models evaluated in the paper, CIFAR-10 first.
    pub fn all_evaluated() -> Vec<Model> {
        vec![
            Model::vgg16_cifar(),
            Model::resnet18_cifar(),
            Model::resnet152_cifar(),
            Model::mobilenet_v2_cifar(),
            Model::resnet50_imagenet(),
            Model::mobilenet_imagenet(),
        ]
    }
}

/// Appends a stage of ResNet BasicBlocks (two 3×3 convs per block).
fn basic_stage(
    layers: &mut Vec<LayerShape>,
    name: &str,
    cin: usize,
    cout: usize,
    sp: usize,
    blocks: usize,
    stride: usize,
) {
    let mut c = cin;
    let mut s = stride;
    let mut x = sp;
    for b in 0..blocks {
        let out_x = x / s;
        layers.push(LayerShape::conv(
            &format!("{name}.{b}.conv1"),
            c,
            cout,
            x,
            x,
            3,
            s,
            1,
        ));
        layers.push(LayerShape::conv(
            &format!("{name}.{b}.conv2"),
            cout,
            cout,
            out_x,
            out_x,
            3,
            1,
            1,
        ));
        if s != 1 || c != cout {
            // Downsample shortcut: 1×1 strided conv.
            layers.push(LayerShape {
                name: format!("{name}.{b}.downsample"),
                kind: LayerKind::Conv,
                c,
                k: cout,
                x,
                y: x,
                r: 1,
                s: 1,
                stride: s,
                pad: 0,
            });
        }
        c = cout;
        x = out_x;
        s = 1;
    }
}

/// Appends a stage of ResNet Bottleneck blocks (1×1 → 3×3 → 1×1, ×4
/// expansion).
pub(crate) fn bottleneck_stage(
    layers: &mut Vec<LayerShape>,
    name: &str,
    cin: usize,
    width: usize,
    sp: usize,
    blocks: usize,
    stride: usize,
) {
    let expansion = 4;
    let cout = width * expansion;
    let mut c = cin;
    let mut s = stride;
    let mut x = sp;
    for b in 0..blocks {
        let out_x = x / s;
        layers.push(LayerShape::pwconv(
            &format!("{name}.{b}.conv1"),
            c,
            width,
            x,
            x,
        ));
        layers.push(LayerShape::conv(
            &format!("{name}.{b}.conv2"),
            width,
            width,
            x,
            x,
            3,
            s,
            1,
        ));
        layers.push(LayerShape::pwconv(
            &format!("{name}.{b}.conv3"),
            width,
            cout,
            out_x,
            out_x,
        ));
        if s != 1 || c != cout {
            layers.push(LayerShape {
                name: format!("{name}.{b}.downsample"),
                kind: LayerKind::Conv,
                c,
                k: cout,
                x,
                y: x,
                r: 1,
                s: 1,
                stride: s,
                pad: 0,
            });
        }
        c = cout;
        x = out_x;
        s = 1;
    }
}

/// Appends one MobileNetV2 inverted-residual block: 1×1 expand → 3×3
/// depthwise → 1×1 project. The expansion conv is skipped when `t == 1`.
fn inverted_residual(
    layers: &mut Vec<LayerShape>,
    name: &str,
    cin: usize,
    cout: usize,
    sp: usize,
    t: usize,
    stride: usize,
) {
    let hidden = cin * t;
    if t != 1 {
        layers.push(LayerShape::pwconv(
            &format!("{name}.expand"),
            cin,
            hidden,
            sp,
            sp,
        ));
    }
    layers.push(LayerShape::dwconv(
        &format!("{name}.dw"),
        hidden,
        sp,
        sp,
        3,
        stride,
        1,
    ));
    let out_sp = sp / stride;
    layers.push(LayerShape::pwconv(
        &format!("{name}.project"),
        hidden,
        cout,
        out_sp,
        out_sp,
    ));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vgg16_conv_size_matches_paper() {
        // Table 1: VGG16 CONV = 56.12 MB.
        let m = Model::vgg16_cifar();
        assert_eq!(m.conv_layers().count(), 13);
        assert!(
            (m.conv_size_mb_fp32() - 56.12).abs() < 0.1,
            "got {}",
            m.conv_size_mb_fp32()
        );
    }

    #[test]
    fn resnet18_conv_size_matches_paper() {
        // Table 1: ResNet18 CONV = 42.58 MB.
        let m = Model::resnet18_cifar();
        assert!(
            (m.conv_size_mb_fp32() - 42.58).abs() < 0.1,
            "got {}",
            m.conv_size_mb_fp32()
        );
    }

    #[test]
    fn resnet152_conv_size_close_to_paper() {
        // Table 1: ResNet152 CONV = 221.19 MB.
        let m = Model::resnet152_cifar();
        assert!(
            (m.conv_size_mb_fp32() - 221.19).abs() / 221.19 < 0.05,
            "got {}",
            m.conv_size_mb_fp32()
        );
    }

    #[test]
    fn mobilenet_v2_conv_size_close_to_paper() {
        // Table 1: MobileNetV2 CONV = 8.40 MB.
        let m = Model::mobilenet_v2_cifar();
        assert!(
            (m.conv_size_mb_fp32() - 8.40).abs() / 8.40 < 0.06,
            "got {}",
            m.conv_size_mb_fp32()
        );
    }

    #[test]
    fn resnet50_has_expected_structure() {
        let m = Model::resnet50_imagenet();
        // 1 stem + (3+4+6+3) blocks × 3 convs + 4 downsamples + fc.
        assert_eq!(m.layers().len(), 1 + 16 * 3 + 4 + 1);
        // Standard ResNet50 conv params ≈ 23.45 M.
        let p = m.conv_params() as f64 / 1e6;
        assert!((p - 23.45).abs() < 0.3, "got {p}M params");
    }

    #[test]
    fn mobilenet_alternates_dw_pw() {
        let m = Model::mobilenet_imagenet();
        assert_eq!(m.conv_layers().count(), 1 + 26);
        let dw = m
            .conv_layers()
            .filter(|l| l.kind == LayerKind::DwConv)
            .count();
        assert_eq!(dw, 13);
        // Standard MobileNet conv params ≈ 3.2 M.
        let p = m.conv_params() as f64 / 1e6;
        assert!((p - 3.2).abs() < 0.2, "got {p}M params");
    }

    #[test]
    fn spatial_dimensions_chain_consistently() {
        // Each layer's input size must equal the previous layer's output
        // size (ignoring shortcut/downsample layers and pooling drops).
        for m in Model::all_evaluated() {
            for l in m.conv_layers() {
                assert!(l.out_x() > 0, "{}: {l} produces empty output", m.name());
                assert!(l.c > 0 && l.k > 0);
            }
        }
    }

    #[test]
    fn mobilenet_v2_final_spatial_is_four() {
        let m = Model::mobilenet_v2_cifar();
        let last = m.conv_layers().last().unwrap();
        assert_eq!(
            last.x, 4,
            "CIFAR MobileNetV2 should end at 4x4, got {}",
            last.x
        );
    }

    #[test]
    fn first_layers_are_not_decomposable_stand_ins() {
        // The stem is still a Conv layer; the pipeline decides not to
        // compress it, but the shape itself is decomposable by kind.
        let m = Model::vgg16_cifar();
        assert!(m.layers()[0].is_decomposable());
    }

    #[test]
    fn all_zoo_models_validate() {
        for m in Model::all_evaluated() {
            m.validate().unwrap_or_else(|e| panic!("{}: {e}", m.name()));
        }
    }

    #[test]
    fn validate_rejects_broken_graphs() {
        // Channel mismatch: second layer expects 32 inputs, first makes 16.
        let bad = Model::new(
            "bad",
            vec![
                LayerShape::conv("a", 3, 16, 8, 8, 3, 1, 1),
                LayerShape::conv("b", 32, 16, 8, 8, 3, 1, 1),
            ],
        );
        let e = bad.validate().unwrap_err();
        assert!(e.contains("b"), "{e}");

        // Depthwise with K != C is impossible by construction via the
        // helper, but a hand-built shape can do it.
        let dw = Model::new(
            "dw",
            vec![LayerShape {
                name: "dw".into(),
                kind: LayerKind::DwConv,
                c: 8,
                k: 16,
                x: 8,
                y: 8,
                r: 3,
                s: 3,
                stride: 1,
                pad: 1,
            }],
        );
        assert!(dw.validate().unwrap_err().contains("depthwise"));

        // Kernel larger than the padded input.
        let tiny = Model::new("tiny", vec![LayerShape::conv("t", 3, 4, 2, 2, 7, 1, 0)]);
        assert!(tiny.validate().unwrap_err().contains("cannot cover"));
    }

    #[test]
    fn macs_are_positive_and_consistent() {
        for m in Model::all_evaluated() {
            assert!(m.conv_macs() > 0);
            let sum: usize = m.conv_layers().map(|l| l.macs()).sum();
            assert_eq!(sum, m.conv_macs());
        }
    }
}
