#![warn(missing_docs)]

//! CNN model zoo and synthetic workload generation for the ESCALATE
//! reproduction.
//!
//! The paper evaluates six networks: VGG16, ResNet18, ResNet152 and
//! MobileNetV2 on CIFAR-10, plus ResNet50 and MobileNet on ImageNet. The
//! accelerator simulators consume only *layer shapes*, *weight sparsity
//! structure* and *activation sparsity* — not trained parameters — so this
//! crate provides:
//!
//! - [`layer`] — layer-shape descriptions and arithmetic (MACs, parameter
//!   counts, output sizes),
//! - [`zoo`] — exact layer tables for all six evaluated networks,
//! - [`synth`] — seeded synthetic weight tensors with controllable
//!   effective kernel rank, and ReLU-like sparse activations,
//! - [`profiles`] — per-model calibration targets transcribed from Table 1
//!   of the paper (sparsity levels, reference compression ratios and
//!   accuracies) used to drive the synthetic generators and to print
//!   paper-vs-measured comparisons,
//! - [`netdesc`] — the `escalate-network/v1` description format, so
//!   workloads can be loaded from (and saved to) text files,
//! - [`generate`] — parametric generators for shapes the zoo lacks
//!   (grouped/dilated conv, bottleneck stages, ViT-style blocks),
//! - [`resolve`] — the single front door mapping a spec string (zoo name,
//!   `@file`, `gen:...`) to a [`ModelProfile`].

pub mod analysis;
pub mod generate;
pub mod layer;
pub mod netdesc;
pub mod profiles;
pub mod resolve;
pub mod synth;
pub mod zoo;

pub use layer::{LayerKind, LayerShape};
pub use netdesc::{NetworkError, NETWORK_FORMAT_VERSION};
pub use profiles::{Dataset, ModelProfile};
pub use resolve::{resolve, zoo_names, ResolveError};
pub use zoo::Model;
