//! Layer-shape descriptions and arithmetic.
//!
//! Uses the paper's notation (§2.1): `C` input channels, `K` output
//! channels (filters), `R×S` kernel, `X×Y` input spatial size. Batch size
//! is 1 throughout, as in the paper's inference evaluation.

/// The kind of a CNN layer, determining how it is computed and whether
/// ESCALATE compresses it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerKind {
    /// Regular convolution with full cross-channel reduction.
    Conv,
    /// Depthwise convolution (one kernel per input channel, `K == C`).
    DwConv,
    /// Pointwise (1×1) convolution.
    PwConv,
    /// Fully connected layer, treated as a 1×1 convolution on a 1×1 map.
    Fc,
    /// Grouped convolution: channels split into `groups` independent
    /// convolutions (`C/groups` inputs reduce into `K/groups` outputs per
    /// group). ESCALATE's kernel decomposition shares basis kernels across
    /// the *full* channel dimension, so grouped layers are not decomposed —
    /// they run on the dense fallback path.
    GroupedConv {
        /// Number of channel groups (divides both `C` and `K`).
        groups: usize,
    },
    /// Dilated convolution: `R×S` taps spread `dilation` positions apart.
    /// Dilation changes only the output geometry — the kernel still has
    /// `R·S` taps, so kernel decomposition applies unchanged.
    DilatedConv {
        /// Spacing between kernel taps (1 = a regular convolution).
        dilation: usize,
    },
}

impl std::fmt::Display for LayerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            LayerKind::Conv => "conv",
            LayerKind::DwConv => "dwconv",
            LayerKind::PwConv => "pwconv",
            LayerKind::Fc => "fc",
            LayerKind::GroupedConv { .. } => "gconv",
            LayerKind::DilatedConv { .. } => "dconv",
        };
        f.write_str(s)
    }
}

/// The shape of one CNN layer.
///
/// # Examples
///
/// ```
/// use escalate_models::LayerShape;
///
/// let l = LayerShape::conv("conv1", 3, 64, 32, 32, 3, 1, 1);
/// assert_eq!(l.out_x(), 32);
/// assert_eq!(l.macs(), 64 * 3 * 3 * 3 * 32 * 32);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LayerShape {
    /// Layer name, unique within a model.
    pub name: String,
    /// Layer kind.
    pub kind: LayerKind,
    /// Input channels `C`.
    pub c: usize,
    /// Output channels `K`.
    pub k: usize,
    /// Input rows `X`.
    pub x: usize,
    /// Input columns `Y`.
    pub y: usize,
    /// Kernel rows `R`.
    pub r: usize,
    /// Kernel columns `S`.
    pub s: usize,
    /// Stride (same in both spatial dims).
    pub stride: usize,
    /// Zero padding (same on all sides).
    pub pad: usize,
}

impl LayerShape {
    /// A regular convolution layer with square kernels and inputs.
    #[allow(clippy::too_many_arguments)]
    pub fn conv(
        name: &str,
        c: usize,
        k: usize,
        x: usize,
        y: usize,
        rs: usize,
        stride: usize,
        pad: usize,
    ) -> Self {
        LayerShape {
            name: name.to_string(),
            kind: LayerKind::Conv,
            c,
            k,
            x,
            y,
            r: rs,
            s: rs,
            stride,
            pad,
        }
    }

    /// A depthwise convolution layer (`K == C`).
    pub fn dwconv(
        name: &str,
        c: usize,
        x: usize,
        y: usize,
        rs: usize,
        stride: usize,
        pad: usize,
    ) -> Self {
        LayerShape {
            name: name.to_string(),
            kind: LayerKind::DwConv,
            c,
            k: c,
            x,
            y,
            r: rs,
            s: rs,
            stride,
            pad,
        }
    }

    /// A pointwise (1×1) convolution layer.
    pub fn pwconv(name: &str, c: usize, k: usize, x: usize, y: usize) -> Self {
        LayerShape {
            name: name.to_string(),
            kind: LayerKind::PwConv,
            c,
            k,
            x,
            y,
            r: 1,
            s: 1,
            stride: 1,
            pad: 0,
        }
    }

    /// A fully connected layer viewed as a 1×1 convolution on a 1×1 input.
    pub fn fc(name: &str, c: usize, k: usize) -> Self {
        LayerShape {
            name: name.to_string(),
            kind: LayerKind::Fc,
            c,
            k,
            x: 1,
            y: 1,
            r: 1,
            s: 1,
            stride: 1,
            pad: 0,
        }
    }

    /// A grouped convolution layer (`groups` must divide `C` and `K`).
    #[allow(clippy::too_many_arguments)]
    pub fn grouped_conv(
        name: &str,
        c: usize,
        k: usize,
        x: usize,
        y: usize,
        rs: usize,
        stride: usize,
        pad: usize,
        groups: usize,
    ) -> Self {
        LayerShape {
            name: name.to_string(),
            kind: LayerKind::GroupedConv { groups },
            c,
            k,
            x,
            y,
            r: rs,
            s: rs,
            stride,
            pad,
        }
    }

    /// A dilated convolution layer with square kernels and inputs.
    #[allow(clippy::too_many_arguments)]
    pub fn dilated_conv(
        name: &str,
        c: usize,
        k: usize,
        x: usize,
        y: usize,
        rs: usize,
        stride: usize,
        pad: usize,
        dilation: usize,
    ) -> Self {
        LayerShape {
            name: name.to_string(),
            kind: LayerKind::DilatedConv { dilation },
            c,
            k,
            x,
            y,
            r: rs,
            s: rs,
            stride,
            pad,
        }
    }

    /// Channel groups (1 for every kind but [`LayerKind::GroupedConv`]).
    pub fn groups(&self) -> usize {
        match self.kind {
            LayerKind::GroupedConv { groups } => groups.max(1),
            _ => 1,
        }
    }

    /// Kernel tap spacing (1 for every kind but
    /// [`LayerKind::DilatedConv`]).
    pub fn dilation(&self) -> usize {
        match self.kind {
            LayerKind::DilatedConv { dilation } => dilation.max(1),
            _ => 1,
        }
    }

    /// Effective kernel rows after dilation: `dilation·(R−1)+1`.
    pub fn effective_r(&self) -> usize {
        self.dilation() * self.r.saturating_sub(1) + 1
    }

    /// Effective kernel columns after dilation: `dilation·(S−1)+1`.
    pub fn effective_s(&self) -> usize {
        self.dilation() * self.s.saturating_sub(1) + 1
    }

    /// Output rows `X'`.
    pub fn out_x(&self) -> usize {
        escalate_tensor::conv::conv_out_size(self.x, self.effective_r(), self.stride, self.pad)
    }

    /// Output columns `Y'`.
    pub fn out_y(&self) -> usize {
        escalate_tensor::conv::conv_out_size(self.y, self.effective_s(), self.stride, self.pad)
    }

    /// Number of weight parameters.
    pub fn weight_params(&self) -> usize {
        match self.kind {
            LayerKind::DwConv => self.c * self.r * self.s,
            LayerKind::GroupedConv { .. } => self.k * (self.c / self.groups()) * self.r * self.s,
            _ => self.k * self.c * self.r * self.s,
        }
    }

    /// Number of multiply-accumulate operations for one inference.
    pub fn macs(&self) -> usize {
        let spatial = self.out_x() * self.out_y();
        self.weight_params() * spatial
    }

    /// Number of input activations.
    pub fn input_size(&self) -> usize {
        self.c * self.x * self.y
    }

    /// Number of output activations.
    pub fn output_size(&self) -> usize {
        self.k * self.out_x() * self.out_y()
    }

    /// Whether ESCALATE compresses this layer (the first convolutional
    /// layer of each network and FC layers use the dense fallback, §3.2 and
    /// §4.1).
    pub fn is_decomposable(&self) -> bool {
        match self.kind {
            LayerKind::Fc => false,
            // Basis kernels are shared across the full channel dimension;
            // a grouped layer's per-group reduction breaks that sharing,
            // so grouped convolutions stay on the dense fallback.
            LayerKind::GroupedConv { .. } => false,
            // A 1x1 kernel has RS = 1, so decomposition cannot shrink it;
            // pointwise layers instead fold into the coefficients (Eq. 5).
            _ => self.r * self.s > 1,
        }
    }
}

impl std::fmt::Display for LayerShape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} [{}] C={} K={} {}x{} k={}x{} s={} p={}",
            self.name,
            self.kind,
            self.c,
            self.k,
            self.x,
            self.y,
            self.r,
            self.s,
            self.stride,
            self.pad
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_arithmetic() {
        let l = LayerShape::conv("l", 64, 128, 56, 56, 3, 1, 1);
        assert_eq!(l.out_x(), 56);
        assert_eq!(l.weight_params(), 128 * 64 * 9);
        assert_eq!(l.macs(), 128 * 64 * 9 * 56 * 56);
        assert!(l.is_decomposable());
    }

    #[test]
    fn strided_conv_output() {
        let l = LayerShape::conv("l", 3, 64, 224, 224, 7, 2, 3);
        assert_eq!(l.out_x(), 112);
        assert_eq!(l.out_y(), 112);
    }

    #[test]
    fn depthwise_arithmetic() {
        let l = LayerShape::dwconv("dw", 32, 112, 112, 3, 1, 1);
        assert_eq!(l.k, 32);
        assert_eq!(l.weight_params(), 32 * 9);
        assert_eq!(l.macs(), 32 * 9 * 112 * 112);
    }

    #[test]
    fn pointwise_is_not_decomposable_alone() {
        let l = LayerShape::pwconv("pw", 32, 64, 112, 112);
        assert!(!l.is_decomposable());
        assert_eq!(l.weight_params(), 32 * 64);
    }

    #[test]
    fn grouped_conv_arithmetic() {
        let l = LayerShape::grouped_conv("g", 64, 128, 56, 56, 3, 1, 1, 4);
        assert_eq!(l.groups(), 4);
        assert_eq!(l.dilation(), 1);
        assert_eq!(l.out_x(), 56);
        // Each filter only reduces C/groups input channels.
        assert_eq!(l.weight_params(), 128 * (64 / 4) * 9);
        assert_eq!(l.macs(), 128 * 16 * 9 * 56 * 56);
        assert!(!l.is_decomposable());
    }

    #[test]
    fn dilated_conv_arithmetic() {
        let l = LayerShape::dilated_conv("d", 64, 64, 56, 56, 3, 1, 2, 2);
        assert_eq!(l.dilation(), 2);
        assert_eq!(l.groups(), 1);
        // Effective extent 2*(3-1)+1 = 5, so with pad 2 the map is preserved.
        assert_eq!(l.effective_r(), 5);
        assert_eq!(l.out_x(), 56);
        // Parameter count is unchanged by dilation.
        assert_eq!(l.weight_params(), 64 * 64 * 9);
        assert!(l.is_decomposable());
    }

    #[test]
    fn dilated_conv_without_extra_pad_shrinks_output() {
        let plain = LayerShape::conv("p", 8, 8, 32, 32, 3, 1, 1);
        let dilated = LayerShape::dilated_conv("d", 8, 8, 32, 32, 3, 1, 1, 2);
        assert_eq!(plain.out_x(), 32);
        assert_eq!(dilated.out_x(), 30);
    }

    #[test]
    fn fc_as_unit_conv() {
        let l = LayerShape::fc("fc", 512, 10);
        assert_eq!(l.macs(), 5120);
        assert_eq!(l.output_size(), 10);
        assert!(!l.is_decomposable());
    }
}
