//! Line-oriented network-description format (`escalate-network/v1`).
//!
//! Workloads stop being compile-time constants here: a [`Model`] can be
//! serialised to a small text file and read back, so the simulators accept
//! networks the zoo never defined. The format is deliberately trivial to
//! write by hand:
//!
//! ```text
//! escalate-network/v1
//! # comments and blank lines are ignored
//! model tiny
//! layer conv conv1 c=3 k=16 x=32 y=32 r=3 s=3 stride=1 pad=1
//! layer gconv g1 c=16 k=16 x=32 y=32 r=3 s=3 stride=1 pad=1 groups=4
//! layer fc fc c=16 k=10 x=1 y=1 r=1 s=1 stride=1 pad=1
//! end
//! ```
//!
//! The first non-comment line must be the exact version string; `model`
//! names the network; each `layer` line carries a kind token (`conv`,
//! `dwconv`, `pwconv`, `fc`, `gconv`, `dconv`), a whitespace-free layer
//! name and `key=value` shape fields; the trailing `end` line guards
//! against truncated files. Reading runs [`Model::validate`], so a file
//! that parses but describes an inconsistent network is still rejected.

use std::io::{self, BufRead, BufReader, Read, Write};

use crate::layer::{LayerKind, LayerShape};
use crate::zoo::Model;

/// The version line every description must start with.
pub const NETWORK_FORMAT_VERSION: &str = "escalate-network/v1";

/// Typed errors from parsing or writing a network description.
#[derive(Debug)]
pub enum NetworkError {
    /// The first line is not the supported version string.
    BadVersion {
        /// What the file's first line actually said.
        found: String,
    },
    /// No `model <name>` line before the first layer.
    MissingModelName,
    /// A line that could not be parsed.
    BadLine {
        /// 1-based line number in the input.
        line: usize,
        /// What was wrong with it.
        msg: String,
    },
    /// A shape field that must be positive was zero.
    ZeroDim {
        /// 1-based line number in the input.
        line: usize,
        /// The offending field name.
        field: &'static str,
    },
    /// The file ended before the `end` line.
    Truncated,
    /// The description parsed but fails [`Model::validate`].
    Invalid(String),
    /// An underlying I/O failure.
    Io(io::Error),
}

impl std::fmt::Display for NetworkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetworkError::BadVersion { found } => write!(
                f,
                "unsupported network description version {found:?} (expected {NETWORK_FORMAT_VERSION:?})"
            ),
            NetworkError::MissingModelName => {
                f.write_str("missing \"model <name>\" line before the first layer")
            }
            NetworkError::BadLine { line, msg } => write!(f, "line {line}: {msg}"),
            NetworkError::ZeroDim { line, field } => {
                write!(f, "line {line}: field {field:?} must be positive")
            }
            NetworkError::Truncated => {
                f.write_str("truncated network description: missing \"end\" line")
            }
            NetworkError::Invalid(msg) => write!(f, "invalid network: {msg}"),
            NetworkError::Io(e) => write!(f, "i/o error reading network description: {e}"),
        }
    }
}

impl std::error::Error for NetworkError {}

impl From<io::Error> for NetworkError {
    fn from(e: io::Error) -> Self {
        NetworkError::Io(e)
    }
}

/// Kind token used on `layer` lines; matches [`LayerKind`]'s `Display`.
fn kind_token(kind: LayerKind) -> &'static str {
    match kind {
        LayerKind::Conv => "conv",
        LayerKind::DwConv => "dwconv",
        LayerKind::PwConv => "pwconv",
        LayerKind::Fc => "fc",
        LayerKind::GroupedConv { .. } => "gconv",
        LayerKind::DilatedConv { .. } => "dconv",
    }
}

/// One parsed `key=value` field set for a layer line.
#[derive(Default)]
struct Fields {
    c: Option<usize>,
    k: Option<usize>,
    x: Option<usize>,
    y: Option<usize>,
    r: Option<usize>,
    s: Option<usize>,
    stride: Option<usize>,
    pad: Option<usize>,
    groups: Option<usize>,
    dilation: Option<usize>,
}

impl Fields {
    fn set(&mut self, line: usize, key: &str, value: usize) -> Result<(), NetworkError> {
        let slot = match key {
            "c" => &mut self.c,
            "k" => &mut self.k,
            "x" => &mut self.x,
            "y" => &mut self.y,
            "r" => &mut self.r,
            "s" => &mut self.s,
            "stride" => &mut self.stride,
            "pad" => &mut self.pad,
            "groups" => &mut self.groups,
            "dilation" => &mut self.dilation,
            other => {
                return Err(NetworkError::BadLine {
                    line,
                    msg: format!("unknown field {other:?}"),
                })
            }
        };
        if slot.is_some() {
            return Err(NetworkError::BadLine {
                line,
                msg: format!("duplicate field {key:?}"),
            });
        }
        *slot = Some(value);
        Ok(())
    }

    fn require(
        &self,
        line: usize,
        key: &'static str,
        value: Option<usize>,
        positive: bool,
    ) -> Result<usize, NetworkError> {
        let v = value.ok_or_else(|| NetworkError::BadLine {
            line,
            msg: format!("missing field {key:?}"),
        })?;
        if positive && v == 0 {
            return Err(NetworkError::ZeroDim { line, field: key });
        }
        Ok(v)
    }
}

fn parse_layer_line(line_no: usize, rest: &str) -> Result<LayerShape, NetworkError> {
    let mut tokens = rest.split_whitespace();
    let kind_tok = tokens.next().ok_or_else(|| NetworkError::BadLine {
        line: line_no,
        msg: "layer line needs a kind token".to_string(),
    })?;
    let name = tokens.next().ok_or_else(|| NetworkError::BadLine {
        line: line_no,
        msg: "layer line needs a name token".to_string(),
    })?;

    let mut fields = Fields::default();
    for tok in tokens {
        let (key, value) = tok.split_once('=').ok_or_else(|| NetworkError::BadLine {
            line: line_no,
            msg: format!("expected key=value, got {tok:?}"),
        })?;
        let value: usize = value.parse().map_err(|_| NetworkError::BadLine {
            line: line_no,
            msg: format!("field {key:?} has non-numeric value {value:?}"),
        })?;
        fields.set(line_no, key, value)?;
    }

    let kind = match kind_tok {
        "conv" => LayerKind::Conv,
        "dwconv" => LayerKind::DwConv,
        "pwconv" => LayerKind::PwConv,
        "fc" => LayerKind::Fc,
        "gconv" => LayerKind::GroupedConv {
            groups: fields.require(line_no, "groups", fields.groups, true)?,
        },
        "dconv" => LayerKind::DilatedConv {
            dilation: fields.require(line_no, "dilation", fields.dilation, true)?,
        },
        other => {
            return Err(NetworkError::BadLine {
                line: line_no,
                msg: format!("unknown layer kind {other:?}"),
            })
        }
    };
    if fields.groups.is_some() && !matches!(kind, LayerKind::GroupedConv { .. }) {
        return Err(NetworkError::BadLine {
            line: line_no,
            msg: format!("field \"groups\" is only valid on gconv layers, not {kind_tok}"),
        });
    }
    if fields.dilation.is_some() && !matches!(kind, LayerKind::DilatedConv { .. }) {
        return Err(NetworkError::BadLine {
            line: line_no,
            msg: format!("field \"dilation\" is only valid on dconv layers, not {kind_tok}"),
        });
    }

    Ok(LayerShape {
        name: name.to_string(),
        kind,
        c: fields.require(line_no, "c", fields.c, true)?,
        k: fields.require(line_no, "k", fields.k, true)?,
        x: fields.require(line_no, "x", fields.x, true)?,
        y: fields.require(line_no, "y", fields.y, true)?,
        r: fields.require(line_no, "r", fields.r, true)?,
        s: fields.require(line_no, "s", fields.s, true)?,
        stride: fields.require(line_no, "stride", fields.stride, true)?,
        pad: fields.require(line_no, "pad", fields.pad.or(Some(0)), false)?,
    })
}

impl Model {
    /// Parses an `escalate-network/v1` description and validates it.
    ///
    /// # Errors
    ///
    /// Returns a [`NetworkError`] naming the first problem: a wrong
    /// version line, a malformed or zero-dimension layer line, a missing
    /// `end` line, or a structurally inconsistent network.
    ///
    /// # Examples
    ///
    /// ```
    /// use escalate_models::Model;
    ///
    /// let text = "escalate-network/v1\nmodel tiny\n\
    ///             layer conv c1 c=3 k=8 x=16 y=16 r=3 s=3 stride=1 pad=1\nend\n";
    /// let m = Model::from_reader(text.as_bytes()).unwrap();
    /// assert_eq!(m.name(), "tiny");
    /// assert_eq!(m.layers().len(), 1);
    /// ```
    pub fn from_reader<R: Read>(reader: R) -> Result<Model, NetworkError> {
        let reader = BufReader::new(reader);
        let mut name: Option<String> = None;
        let mut layers: Vec<LayerShape> = vec![];
        let mut saw_version = false;
        let mut saw_end = false;

        for (i, line) in reader.lines().enumerate() {
            let line = line?;
            let line_no = i + 1;
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            if !saw_version {
                if trimmed != NETWORK_FORMAT_VERSION {
                    return Err(NetworkError::BadVersion {
                        found: trimmed.to_string(),
                    });
                }
                saw_version = true;
                continue;
            }
            if trimmed == "end" {
                saw_end = true;
                break;
            }
            if let Some(rest) = trimmed.strip_prefix("model ") {
                let rest = rest.trim();
                if rest.is_empty() {
                    return Err(NetworkError::MissingModelName);
                }
                name = Some(rest.to_string());
            } else if let Some(rest) = trimmed.strip_prefix("layer ") {
                if name.is_none() {
                    return Err(NetworkError::MissingModelName);
                }
                layers.push(parse_layer_line(line_no, rest)?);
            } else {
                return Err(NetworkError::BadLine {
                    line: line_no,
                    msg: format!("expected \"model\", \"layer\" or \"end\", got {trimmed:?}"),
                });
            }
        }

        if !saw_version {
            return Err(NetworkError::BadVersion {
                found: String::new(),
            });
        }
        if !saw_end {
            return Err(NetworkError::Truncated);
        }
        let name = name.ok_or(NetworkError::MissingModelName)?;
        let model = Model::new(&name, layers);
        model.validate().map_err(NetworkError::Invalid)?;
        Ok(model)
    }

    /// Writes this model as an `escalate-network/v1` description.
    ///
    /// The output round-trips through [`Model::from_reader`] bit-exactly.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::Invalid`] when a layer name contains
    /// whitespace (the format stores names as single tokens), and
    /// [`NetworkError::Io`] on write failure.
    pub fn to_writer<W: Write>(&self, mut writer: W) -> Result<(), NetworkError> {
        writeln!(writer, "{NETWORK_FORMAT_VERSION}")?;
        writeln!(writer, "model {}", self.name().trim())?;
        for l in self.layers() {
            if l.name.split_whitespace().count() != 1 || l.name != l.name.trim() {
                return Err(NetworkError::Invalid(format!(
                    "layer name {:?} must be a single whitespace-free token",
                    l.name
                )));
            }
            write!(
                writer,
                "layer {} {} c={} k={} x={} y={} r={} s={} stride={} pad={}",
                kind_token(l.kind),
                l.name,
                l.c,
                l.k,
                l.x,
                l.y,
                l.r,
                l.s,
                l.stride,
                l.pad
            )?;
            match l.kind {
                LayerKind::GroupedConv { groups } => write!(writer, " groups={groups}")?,
                LayerKind::DilatedConv { dilation } => write!(writer, " dilation={dilation}")?,
                _ => {}
            }
            writeln!(writer)?;
        }
        writeln!(writer, "end")?;
        Ok(())
    }

    /// Serialises this model to an in-memory description string.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Model::to_writer`].
    pub fn to_description(&self) -> Result<String, NetworkError> {
        let mut buf = Vec::new();
        self.to_writer(&mut buf)?;
        Ok(String::from_utf8(buf).expect("descriptions are ASCII"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn parse(text: &str) -> Result<Model, NetworkError> {
        Model::from_reader(text.as_bytes())
    }

    #[test]
    fn zoo_models_round_trip() {
        for m in Model::all_evaluated() {
            let text = m.to_description().unwrap();
            let back = parse(&text).unwrap();
            assert_eq!(m, back, "{} did not round-trip", m.name());
        }
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "# header\n\nescalate-network/v1\n# c\nmodel t\n\n\
                    layer conv c1 c=3 k=8 x=16 y=16 r=3 s=3 stride=1 pad=1\n# done\nend\n";
        let m = parse(text).unwrap();
        assert_eq!(m.layers().len(), 1);
    }

    #[test]
    fn bad_version_line_is_named() {
        let err = parse("escalate-network/v2\nmodel t\nend\n").unwrap_err();
        assert_eq!(
            err.to_string(),
            "unsupported network description version \"escalate-network/v2\" \
             (expected \"escalate-network/v1\")"
        );
        let empty = parse("").unwrap_err();
        assert!(empty
            .to_string()
            .contains("unsupported network description"));
    }

    #[test]
    fn zero_dims_are_rejected_with_field_name() {
        let text = "escalate-network/v1\nmodel t\n\
                    layer conv c1 c=0 k=8 x=16 y=16 r=3 s=3 stride=1 pad=1\nend\n";
        let err = parse(text).unwrap_err();
        assert_eq!(err.to_string(), "line 3: field \"c\" must be positive");
        // pad=0 is fine, stride=0 is not.
        let text = "escalate-network/v1\nmodel t\n\
                    layer conv c1 c=3 k=8 x=16 y=16 r=3 s=3 stride=0 pad=0\nend\n";
        let err = parse(text).unwrap_err();
        assert_eq!(err.to_string(), "line 3: field \"stride\" must be positive");
    }

    #[test]
    fn truncated_file_is_rejected() {
        let text = "escalate-network/v1\nmodel t\n\
                    layer conv c1 c=3 k=8 x=16 y=16 r=3 s=3 stride=1 pad=1\n";
        let err = parse(text).unwrap_err();
        assert_eq!(
            err.to_string(),
            "truncated network description: missing \"end\" line"
        );
    }

    #[test]
    fn malformed_layer_lines_are_rejected() {
        let base = "escalate-network/v1\nmodel t\n";
        for (line, needle) in [
            ("layer conv c1 c=3 k=8", "missing field \"x\""),
            ("layer conv c1 c=3 c=4", "duplicate field \"c\""),
            ("layer conv c1 q=3", "unknown field \"q\""),
            ("layer conv c1 c=three", "non-numeric value"),
            ("layer warp c1 c=3", "unknown layer kind \"warp\""),
            ("layer conv", "needs a name token"),
            (
                "layer gconv g c=4 k=4 x=8 y=8 r=3 s=3 stride=1 pad=1",
                "missing field \"groups\"",
            ),
            (
                "layer conv c1 c=3 k=8 x=8 y=8 r=3 s=3 stride=1 pad=1 groups=2",
                "only valid on gconv",
            ),
            ("weights blob", "expected \"model\", \"layer\" or \"end\""),
        ] {
            let err = parse(&format!("{base}{line}\nend\n")).unwrap_err();
            assert!(
                err.to_string().contains(needle),
                "{line:?}: got {err}, wanted {needle:?}"
            );
        }
    }

    #[test]
    fn layer_before_model_name_is_rejected() {
        let text = "escalate-network/v1\n\
                    layer conv c1 c=3 k=8 x=16 y=16 r=3 s=3 stride=1 pad=1\nend\n";
        let err = parse(text).unwrap_err();
        assert!(err.to_string().contains("missing \"model <name>\""));
    }

    #[test]
    fn invalid_networks_fail_validation_on_read() {
        // Parses fine, but the channel chain is broken.
        let text = "escalate-network/v1\nmodel t\n\
                    layer conv a c=3 k=16 x=16 y=16 r=3 s=3 stride=1 pad=1\n\
                    layer conv b c=32 k=16 x=16 y=16 r=3 s=3 stride=1 pad=1\nend\n";
        let err = parse(text).unwrap_err();
        assert!(matches!(err, NetworkError::Invalid(_)), "{err}");
    }

    #[test]
    fn whitespace_layer_names_cannot_be_written() {
        let m = Model::new(
            "t",
            vec![LayerShape::conv("two words", 3, 8, 16, 16, 3, 1, 1)],
        );
        let err = m.to_description().unwrap_err();
        assert!(err.to_string().contains("whitespace-free"));
    }

    /// A layer chain whose channel counts feed each other, so the model
    /// always passes [`Model::validate`].
    fn arb_model() -> impl Strategy<Value = Model> {
        let kind = 0..5usize;
        let layer = (kind, 1..6usize, 1..5usize, 1..3usize, 1..3usize, 1..3usize);
        (0..1000usize, prop::collection::vec(layer, 1..8), 1..5usize).prop_map(
            |(name_id, specs, g)| {
                let name = format!("net{name_id}");
                let mut layers = vec![];
                let mut c = 4 * g;
                for (i, (kind, kmul, rs, stride, pad, dil)) in specs.into_iter().enumerate() {
                    // Keep spatial sizes comfortably larger than the
                    // (dilated) kernel so outputs stay non-empty.
                    let x = 32;
                    let k = 4 * g * kmul;
                    let lname = format!("l{i}");
                    let l = match kind {
                        0 => LayerShape::conv(&lname, c, k, x, x, rs, stride, pad),
                        1 => LayerShape::dwconv(&lname, c, x, x, rs, stride, pad),
                        2 => LayerShape::pwconv(&lname, c, k, x, x),
                        3 => LayerShape::grouped_conv(&lname, c, k, x, x, rs, stride, pad, g),
                        _ => LayerShape::dilated_conv(&lname, c, k, x, x, rs, stride, pad, dil),
                    };
                    c = l.k;
                    layers.push(l);
                }
                layers.push(LayerShape::fc("fc", c, 10));
                Model::new(&name, layers)
            },
        )
    }

    proptest! {
        #[test]
        fn described_models_round_trip(m in arb_model()) {
            prop_assert!(m.validate().is_ok());
            let text = m.to_description().unwrap();
            let back = parse(&text).unwrap();
            prop_assert_eq!(m, back);
        }
    }
}
