//! Capacity-bounded single-flight memoization.
//!
//! [`SingleFlightCache`] keeps the per-key single-flight semantics the
//! artifact cache has always had — the first caller for a key runs the
//! computation while holding that key's slot lock, concurrent callers for
//! the same key block on the slot (not the whole map) and read the
//! finished value, errors are never cached, and a panic poisons only its
//! own slot — and adds an LRU capacity bound so a long-running process
//! (the `escalate serve` daemon) cannot grow the cache without limit.
//!
//! Eviction never touches an *in-flight* entry: a caller computing or
//! waiting on a slot holds a clone of its `Arc`, so any entry with an
//! outstanding reference (strong count > 1) is skipped. That preserves
//! single-flight under pressure — a key being computed cannot be evicted
//! and silently recomputed by a concurrent caller — at the cost of
//! allowing the map to overflow its capacity temporarily while every
//! resident entry is in flight. The bound is re-enforced on the next
//! insertion once slots settle.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Locks a mutex, recovering the data from a poisoned lock instead of
/// cascading the panic: every value behind these locks is valid at every
/// instant (a poisoned slot is simply still empty), so one panicking
/// computation must not take the whole cache down.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The result of one [`SingleFlightCache::get_or_compute`] lookup.
#[derive(Debug)]
pub struct Lookup<V> {
    /// The cached or freshly computed value.
    pub value: V,
    /// Whether the value was already cached (no compute ran).
    pub hit: bool,
    /// Entries evicted by this lookup to stay within capacity.
    pub evicted: u64,
}

struct Entry<V> {
    slot: Arc<Mutex<Option<V>>>,
    last_used: u64,
}

impl<V> Default for Entry<V> {
    fn default() -> Self {
        Entry {
            slot: Arc::default(),
            last_used: 0,
        }
    }
}

struct Inner<K, V> {
    entries: HashMap<K, Entry<V>>,
    /// Monotone lookup counter stamping `last_used` (LRU order).
    tick: u64,
    /// Maximum resident entries; `0` means unbounded.
    capacity: usize,
}

impl<K: Hash + Eq + Clone, V> Inner<K, V> {
    /// Evicts least-recently-used settled entries until the map fits the
    /// capacity (or only in-flight entries remain). Returns the count.
    fn evict_over_capacity(&mut self) -> u64 {
        if self.capacity == 0 {
            return 0;
        }
        let mut evicted = 0;
        while self.entries.len() > self.capacity {
            let victim = self
                .entries
                .iter()
                .filter(|(_, e)| Arc::strong_count(&e.slot) == 1)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone());
            match victim {
                Some(k) => {
                    self.entries.remove(&k);
                    evicted += 1;
                }
                // Every resident entry is in flight: overflow temporarily
                // rather than break single-flight.
                None => break,
            }
        }
        evicted
    }
}

/// A per-key single-flight memoization map with an LRU capacity bound.
pub struct SingleFlightCache<K, V> {
    inner: Mutex<Inner<K, V>>,
}

impl<K: Hash + Eq + Clone, V: Clone> SingleFlightCache<K, V> {
    /// Creates a cache holding at most `capacity` entries (`0` =
    /// unbounded, the historical behaviour).
    pub fn new(capacity: usize) -> SingleFlightCache<K, V> {
        SingleFlightCache {
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                tick: 0,
                capacity,
            }),
        }
    }

    /// Resident entry count.
    pub fn len(&self) -> usize {
        lock_recover(&self.inner).entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The capacity bound (`0` = unbounded).
    pub fn capacity(&self) -> usize {
        lock_recover(&self.inner).capacity
    }

    /// Whether `key` is resident (never touches LRU order).
    pub fn contains(&self, key: &K) -> bool {
        lock_recover(&self.inner).entries.contains_key(key)
    }

    /// Changes the capacity bound, evicting down to it immediately.
    /// Returns the number of entries evicted.
    pub fn set_capacity(&self, capacity: usize) -> u64 {
        let mut inner = lock_recover(&self.inner);
        inner.capacity = capacity;
        inner.evict_over_capacity()
    }

    /// Returns the cached value for `key`, or runs `compute` exactly once
    /// across concurrent callers and caches the result. Errors are not
    /// cached (the slot stays empty; the next caller retries), and a
    /// panic inside `compute` poisons only that key's slot, which later
    /// callers recover from.
    ///
    /// # Errors
    ///
    /// Propagates `compute`'s error.
    pub fn get_or_compute<E>(
        &self,
        key: K,
        compute: impl FnOnce() -> Result<V, E>,
    ) -> Result<Lookup<V>, E> {
        let (slot, evicted) = {
            let mut inner = lock_recover(&self.inner);
            inner.tick += 1;
            let tick = inner.tick;
            let entry = inner.entries.entry(key).or_default();
            entry.last_used = tick;
            let slot = Arc::clone(&entry.slot);
            (slot, inner.evict_over_capacity())
        };
        let mut guard = lock_recover(&slot);
        if let Some(hit) = guard.as_ref() {
            return Ok(Lookup {
                value: hit.clone(),
                hit: true,
                evicted,
            });
        }
        let v = compute()?;
        *guard = Some(v.clone());
        Ok(Lookup {
            value: v,
            hit: false,
            evicted,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn computes_once_across_threads() {
        let cache: SingleFlightCache<u32, u64> = SingleFlightCache::new(0);
        let calls = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    let look = cache
                        .get_or_compute(1u32, || {
                            calls.fetch_add(1, Ordering::SeqCst);
                            std::thread::sleep(std::time::Duration::from_millis(20));
                            Ok::<u64, ()>(42)
                        })
                        .unwrap();
                    assert_eq!(look.value, 42);
                });
            }
        });
        assert_eq!(calls.load(Ordering::SeqCst), 1, "compute must run once");
        let look = cache.get_or_compute(1u32, || Ok::<u64, ()>(0)).unwrap();
        assert!(look.hit, "later calls must be hits");
    }

    #[test]
    fn errors_are_not_cached() {
        let cache: SingleFlightCache<u32, u64> = SingleFlightCache::new(0);
        let err = cache.get_or_compute(1u32, || Err::<u64, &str>("boom"));
        assert_eq!(err.unwrap_err(), "boom");
        let look = cache.get_or_compute(1u32, || Ok::<u64, &str>(7)).unwrap();
        assert_eq!(look.value, 7);
        assert!(
            !look.hit,
            "the retry must recompute, not read a cached error"
        );
    }

    #[test]
    fn recovers_from_poisoned_slots() {
        let cache: SingleFlightCache<u32, u64> = SingleFlightCache::new(0);
        let poison = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = cache.get_or_compute(1u32, || -> Result<u64, ()> {
                panic!("compression panicked mid-flight")
            });
        }));
        assert!(poison.is_err());
        // The panic poisoned key 1's slot; the next caller must recover
        // and compute rather than propagate the old panic.
        let look = cache.get_or_compute(1u32, || Ok::<u64, ()>(9)).unwrap();
        assert_eq!(look.value, 9);
        assert!(!look.hit);
        // Unrelated keys were never affected.
        let look = cache.get_or_compute(2u32, || Ok::<u64, ()>(11)).unwrap();
        assert_eq!(look.value, 11);
    }

    #[test]
    fn capped_cache_stays_capped_under_churn() {
        let cache: SingleFlightCache<u32, u32> = SingleFlightCache::new(4);
        let mut evicted = 0u64;
        for k in 0..100u32 {
            let look = cache.get_or_compute(k, || Ok::<u32, ()>(k * 2)).unwrap();
            assert!(!look.hit);
            evicted += look.evicted;
            assert!(cache.len() <= 4, "len {} exceeded the cap", cache.len());
        }
        assert_eq!(evicted, 96, "every insertion past the cap evicts one");
        // The residents are exactly the four most recent keys.
        for k in 96..100u32 {
            assert!(cache.contains(&k), "key {k} should still be resident");
        }
        assert!(!cache.contains(&95));
    }

    #[test]
    fn eviction_order_is_least_recently_used() {
        let cache: SingleFlightCache<&str, u32> = SingleFlightCache::new(2);
        cache.get_or_compute("a", || Ok::<u32, ()>(1)).unwrap();
        cache.get_or_compute("b", || Ok::<u32, ()>(2)).unwrap();
        // Touch "a" so "b" becomes the LRU entry.
        let look = cache.get_or_compute("a", || Ok::<u32, ()>(0)).unwrap();
        assert!(look.hit);
        let look = cache.get_or_compute("c", || Ok::<u32, ()>(3)).unwrap();
        assert_eq!(look.evicted, 1);
        assert!(cache.contains(&"a") && cache.contains(&"c"));
        assert!(!cache.contains(&"b"), "the least recently used key goes");
    }

    #[test]
    fn set_capacity_evicts_down_immediately() {
        let cache: SingleFlightCache<u32, u32> = SingleFlightCache::new(0);
        for k in 0..10u32 {
            cache.get_or_compute(k, || Ok::<u32, ()>(k)).unwrap();
        }
        assert_eq!(cache.len(), 10);
        assert_eq!(cache.set_capacity(3), 7);
        assert_eq!(cache.len(), 3);
        for k in 7..10u32 {
            assert!(cache.contains(&k));
        }
    }

    #[test]
    fn in_flight_entries_are_never_evicted() {
        let cache: SingleFlightCache<u32, u32> = SingleFlightCache::new(1);
        std::thread::scope(|s| {
            s.spawn(|| {
                let look = cache
                    .get_or_compute(1u32, || {
                        std::thread::sleep(std::time::Duration::from_millis(60));
                        Ok::<u32, ()>(10)
                    })
                    .unwrap();
                assert_eq!(look.value, 10);
            });
            std::thread::sleep(std::time::Duration::from_millis(15));
            // Key 1 is mid-compute (its slot Arc is held); inserting key 2
            // overflows the cap of 1 rather than evicting the in-flight
            // entry out from under its caller.
            let look = cache.get_or_compute(2u32, || Ok::<u32, ()>(20)).unwrap();
            assert_eq!(look.evicted, 0, "in-flight entries are protected");
        });
        // Key 1 settled and cached: a second caller hits without recompute.
        let look = cache
            .get_or_compute(1u32, || Err::<u32, &str>("must not recompute"))
            .unwrap();
        assert!(look.hit);
    }
}
