//! The shared run-plan layer: one machinery for "enumerate work units,
//! run them deterministically in parallel, render to a sink".
//!
//! The experiment registry (paper figures), the design-space sweep, and
//! any future consumer (a served job queue, a pipelined-schedule study)
//! are the same shape: a [`RunPlan`] enumerates [`WorkUnit`]s — each
//! carrying a stable key and its own deterministic seed — [`execute`]
//! fans the pending units out over the global thread pool with an
//! order-preserving collect (so output is byte-identical to a serial
//! run at any thread count, the same contract as `core::par`), and a
//! [`UnitSink`] consumes the outputs *sequentially in unit order*. Sinks
//! decide what persistence means: an in-memory [`TableSink`] behind the
//! `report` renderers (text and `escalate-report/v1` JSON), the golden
//! check/update sinks of the report runner, or the append-only
//! [`jsonl::JsonlSink`] whose [`UnitSink::recorded`] set makes a run
//! resumable — already-recorded unit keys are skipped, not re-run.
//!
//! Failure semantics mirror the historical report runner: every pending
//! unit runs to completion, then outputs are fed to the sink in unit
//! order and the first failing unit *in that order* aborts the feed —
//! earlier units' sink effects persist, later ones are discarded.

pub mod jsonl;

pub use jsonl::JsonlSink;

use crate::experiments::{ExpError, Table};
use rayon::prelude::*;

/// One schedulable unit of work inside a [`RunPlan`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkUnit {
    /// Stable identity of the unit: the resume key a sink records, and
    /// the name failures are reported under. Two runs of the same plan
    /// with the same inputs must enumerate the same keys.
    pub key: String,
    /// The unit's own deterministic seed (derive via [`unit_seed`]); what
    /// makes a unit reproducible independently of which other units run.
    pub seed: u64,
    /// Position in the plan's enumeration order (the order sinks see).
    pub index: usize,
}

/// What one executed unit hands to the sink.
#[derive(Debug, Clone, Default)]
pub struct UnitOutput {
    /// Structured table fragment (text lines + typed records) — the
    /// report renderers consume this.
    pub table: Table,
    /// Stream records (one complete JSON object per line) for JSONL
    /// sinks. Each line should carry a `"key"` field equal to the unit's
    /// key so a later run can resume past it.
    pub jsonl: Vec<String>,
}

impl UnitOutput {
    /// An output that is just a table (the experiment-registry case).
    pub fn from_table(table: Table) -> UnitOutput {
        UnitOutput {
            table,
            jsonl: Vec::new(),
        }
    }
}

/// A plan: work-unit enumeration separated from per-unit execution.
///
/// Implementations must be pure in the harness sense: `run_unit` derives
/// everything from the unit (key/seed/index) and the plan's own
/// configuration, never from execution order — that is what lets
/// [`execute`] fan units out in parallel and lets a resumed run skip
/// recorded units without changing the survivors.
pub trait RunPlan: Sync {
    /// Plan name, for error messages and logs.
    fn name(&self) -> &str;

    /// Enumerates the plan's units, in sink order.
    ///
    /// # Errors
    ///
    /// Returns an [`ExpError`] when the plan's inputs are invalid.
    fn units(&self) -> Result<Vec<WorkUnit>, ExpError>;

    /// Runs one unit.
    ///
    /// # Errors
    ///
    /// Returns an [`ExpError`] on pipeline failures.
    fn run_unit(&self, unit: &WorkUnit) -> Result<UnitOutput, ExpError>;

    /// Optionally reorders *execution* of the pending units (the ones the
    /// sink has not recorded): returns a permutation of `0..pending.len()`
    /// giving the order workers should claim work in, or `None` for
    /// enumeration order. The sink feed always stays in unit order, so a
    /// schedule changes cache locality — units sharing expensive derived
    /// state run adjacently — but never a single output byte. A returned
    /// vector that is not a permutation of `0..pending.len()` is ignored.
    fn schedule(&self, _pending: &[&WorkUnit]) -> Option<Vec<usize>> {
        None
    }
}

/// Consumes executed units, sequentially in unit order.
pub trait UnitSink {
    /// Whether `key` is already recorded — recorded units are skipped by
    /// [`execute`] (the resume path). Default: nothing is recorded.
    fn recorded(&self, _key: &str) -> bool {
        false
    }

    /// Writes one unit's output.
    ///
    /// # Errors
    ///
    /// Returns an [`ExpError`] when the sink cannot persist the output.
    fn write_unit(&mut self, unit: &WorkUnit, out: UnitOutput) -> Result<(), ExpError>;
}

/// What [`execute`] did: how many units ran vs. resumed past.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecSummary {
    /// Units that executed this run.
    pub ran: usize,
    /// Units skipped because the sink had already recorded their keys.
    pub skipped: usize,
}

/// Derives a work unit's seed from a plan-level master seed and the
/// unit's enumeration index (splitmix64 finalizer): sample `i` draws the
/// same seed whether the plan enumerates 2 units or 2000, and regardless
/// of which units a resumed run skips.
pub fn unit_seed(master: u64, index: u64) -> u64 {
    let mut z = master ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Checks that `order` is a permutation of `0..n`.
fn is_permutation(order: &[usize], n: usize) -> bool {
    if order.len() != n {
        return false;
    }
    let mut seen = vec![false; n];
    for &i in order {
        if i >= n || seen[i] {
            return false;
        }
        seen[i] = true;
    }
    true
}

/// Drives a plan into a sink: enumerate, drop units the sink already
/// recorded, run the rest (in parallel when there is more than one — the
/// collect is order-preserving, so the sink feed and therefore every
/// rendered byte is identical to a serial run), then feed outputs to the
/// sink in unit order.
///
/// When the plan provides a [`RunPlan::schedule`], units *execute* in the
/// scheduled order (so cache-friendly neighbours run adjacently) while
/// outputs are scattered back and fed to the sink in unit order — the
/// schedule is invisible in the output bytes.
///
/// # Errors
///
/// Returns the first failing unit's error *in unit order* (outputs of
/// earlier units have already reached the sink), or the sink's own write
/// failure.
pub fn execute(plan: &dyn RunPlan, sink: &mut dyn UnitSink) -> Result<ExecSummary, ExpError> {
    let units = plan.units()?;
    let mut pending: Vec<&WorkUnit> = Vec::with_capacity(units.len());
    let mut skipped = 0usize;
    for unit in &units {
        if sink.recorded(&unit.key) {
            skipped += 1;
        } else {
            pending.push(unit);
        }
    }
    let order: Vec<usize> = match plan.schedule(&pending) {
        Some(o) if is_permutation(&o, pending.len()) => o,
        _ => (0..pending.len()).collect(),
    };
    let mut outputs: Vec<Option<Result<UnitOutput, ExpError>>> =
        (0..pending.len()).map(|_| None).collect();
    let executed: Vec<(usize, Result<UnitOutput, ExpError>)> = if pending.len() > 1 {
        order
            .par_iter()
            .map(|&i| (i, plan.run_unit(pending[i])))
            .collect()
    } else {
        order
            .iter()
            .map(|&i| (i, plan.run_unit(pending[i])))
            .collect()
    };
    for (i, out) in executed {
        outputs[i] = Some(out);
    }
    let ran = pending.len();
    for (unit, output) in pending.into_iter().zip(outputs) {
        sink.write_unit(unit, output.expect("every pending slot filled")?)?;
    }
    Ok(ExecSummary { ran, skipped })
}

/// Drives a plan into a sink like [`execute`], but feeds each unit to
/// the sink *as soon as it (and every unit before it) has finished* —
/// the streaming-consumer variant behind served jobs, where the sink is
/// a client socket that should see records while later units still run.
///
/// The sink feed is still strictly in unit order, so every byte a sink
/// sees is identical to [`execute`]'s batch feed (and to a serial run).
/// Failure semantics differ deliberately: the first failing unit *in
/// unit order* (or the first sink write failure) aborts the run early —
/// in-flight units finish, but unclaimed units never start. A one-shot
/// run wants every output it paid for; a streaming consumer is gone the
/// moment the stream errors, so finishing the tail would be pure waste.
///
/// Units run on scoped worker threads sized to the global pool
/// (`rayon::current_num_threads`), pulling units in enumeration order;
/// nested parallelism inside `run_unit` still shares the global pool's
/// token budget, so total concurrency stays bounded.
///
/// # Errors
///
/// Returns the first failing unit's error in unit order, or the sink's
/// own write failure (earlier units' sink effects persist).
///
/// # Panics
///
/// Propagates a panicking `run_unit` after the remaining workers drain.
pub fn execute_streaming(
    plan: &dyn RunPlan,
    sink: &mut dyn UnitSink,
) -> Result<ExecSummary, ExpError> {
    let units = plan.units()?;
    let mut pending: Vec<&WorkUnit> = Vec::with_capacity(units.len());
    let mut skipped = 0usize;
    for unit in &units {
        if sink.recorded(&unit.key) {
            skipped += 1;
        } else {
            pending.push(unit);
        }
    }
    let ran = pending.len();
    if pending.len() <= 1 {
        for unit in pending {
            sink.write_unit(unit, plan.run_unit(unit)?)?;
        }
        return Ok(ExecSummary { ran, skipped });
    }

    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::{Condvar, Mutex as StdMutex};

    struct Shared {
        /// One slot per pending unit, filled when that unit finishes.
        slots: StdMutex<Vec<Option<Result<UnitOutput, ExpError>>>>,
        /// Signals the feeder that a slot was filled.
        ready: Condvar,
        /// Next pending index a worker should claim.
        next: AtomicUsize,
        /// Set by the feeder on the first error: workers stop claiming.
        abort: AtomicBool,
    }

    let shared = Shared {
        slots: StdMutex::new((0..pending.len()).map(|_| None).collect()),
        ready: Condvar::new(),
        next: AtomicUsize::new(0),
        abort: AtomicBool::new(false),
    };
    let workers = rayon::current_num_threads().clamp(1, pending.len());
    let mut fed = Ok(());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                if shared.abort.load(Ordering::Relaxed) {
                    break;
                }
                let i = shared.next.fetch_add(1, Ordering::Relaxed);
                if i >= pending.len() {
                    break;
                }
                // Fill the slot even if `run_unit` panics, so the feeder
                // (waiting on this very slot) wakes up instead of
                // deadlocking; the panic itself resurfaces at scope join.
                struct FillOnUnwind<'a> {
                    shared: &'a Shared,
                    index: usize,
                    armed: bool,
                }
                impl Drop for FillOnUnwind<'_> {
                    fn drop(&mut self) {
                        if !self.armed {
                            return;
                        }
                        let mut slots = self
                            .shared
                            .slots
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner);
                        slots[self.index] = Some(Err(ExpError::Msg("work unit panicked".into())));
                        self.shared.ready.notify_all();
                    }
                }
                let mut guard = FillOnUnwind {
                    shared: &shared,
                    index: i,
                    armed: true,
                };
                let out = plan.run_unit(pending[i]);
                guard.armed = false;
                let mut slots = shared
                    .slots
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                slots[i] = Some(out);
                shared.ready.notify_all();
            });
        }
        // The feeder: consume slots strictly in unit order.
        for (i, unit) in pending.iter().enumerate() {
            let out = {
                let mut slots = shared
                    .slots
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                loop {
                    if let Some(out) = slots[i].take() {
                        break out;
                    }
                    slots = shared
                        .ready
                        .wait(slots)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
            };
            fed = out.and_then(|o| sink.write_unit(unit, o));
            if fed.is_err() {
                shared.abort.store(true, Ordering::Relaxed);
                break;
            }
        }
    });
    fed.map(|()| ExecSummary { ran, skipped })
}

/// A sink that accumulates every unit's table in unit order — the
/// in-memory backend of the report renderers.
#[derive(Debug, Default)]
pub struct TableSink {
    /// Collected tables, in unit order.
    pub tables: Vec<Table>,
}

impl UnitSink for TableSink {
    fn write_unit(&mut self, _unit: &WorkUnit, out: UnitOutput) -> Result<(), ExpError> {
        self.tables.push(out.table);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tline;

    /// A cheap deterministic plan: unit i renders one line derived from
    /// its own seed.
    struct Toy {
        n: usize,
        master: u64,
    }

    impl RunPlan for Toy {
        fn name(&self) -> &str {
            "toy"
        }

        fn units(&self) -> Result<Vec<WorkUnit>, ExpError> {
            Ok((0..self.n)
                .map(|i| WorkUnit {
                    key: format!("u{i}"),
                    seed: unit_seed(self.master, i as u64),
                    index: i,
                })
                .collect())
        }

        fn run_unit(&self, unit: &WorkUnit) -> Result<UnitOutput, ExpError> {
            if unit.key == "u-poison" {
                return Err(ExpError::Msg("poisoned unit".into()));
            }
            let mut t = Table::new("toy", "test");
            tline!(t, "{} -> {:016x}", unit.key, unit.seed);
            Ok(UnitOutput::from_table(t))
        }
    }

    #[test]
    fn unit_seeds_are_stable_and_distinct() {
        let a: Vec<u64> = (0..64).map(|i| unit_seed(42, i)).collect();
        let b: Vec<u64> = (0..64).map(|i| unit_seed(42, i)).collect();
        assert_eq!(a, b, "same master + index must reproduce");
        let mut dedup = a.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), a.len(), "64 units drew a colliding seed");
        assert_ne!(unit_seed(1, 0), unit_seed(2, 0), "master seed matters");
    }

    #[test]
    fn execute_preserves_unit_order_in_the_sink() {
        let plan = Toy { n: 8, master: 7 };
        let mut sink = TableSink::default();
        let summary = execute(&plan, &mut sink).expect("runs");
        assert_eq!(summary, ExecSummary { ran: 8, skipped: 0 });
        let rendered: Vec<String> = sink.tables.iter().map(|t| t.lines()[0].clone()).collect();
        for (i, line) in rendered.iter().enumerate() {
            assert!(line.starts_with(&format!("u{i} ->")), "{line}");
        }
    }

    /// A sink that pretends some keys are already recorded.
    struct Skipping {
        have: Vec<String>,
        inner: TableSink,
    }

    impl UnitSink for Skipping {
        fn recorded(&self, key: &str) -> bool {
            self.have.iter().any(|k| k == key)
        }

        fn write_unit(&mut self, unit: &WorkUnit, out: UnitOutput) -> Result<(), ExpError> {
            self.inner.write_unit(unit, out)
        }
    }

    #[test]
    fn execute_skips_exactly_the_recorded_keys() {
        let plan = Toy { n: 5, master: 3 };
        let mut sink = Skipping {
            have: vec!["u1".into(), "u3".into()],
            inner: TableSink::default(),
        };
        let summary = execute(&plan, &mut sink).expect("runs");
        assert_eq!(summary, ExecSummary { ran: 3, skipped: 2 });
        let keys: Vec<&str> = sink
            .inner
            .tables
            .iter()
            .map(|t| t.lines()[0].split_whitespace().next().expect("key"))
            .collect();
        assert_eq!(keys, ["u0", "u2", "u4"], "survivors keep their order");
    }

    struct Poisoned;

    impl RunPlan for Poisoned {
        fn name(&self) -> &str {
            "poisoned"
        }

        fn units(&self) -> Result<Vec<WorkUnit>, ExpError> {
            Ok(["u0", "u-poison", "u2"]
                .iter()
                .enumerate()
                .map(|(i, k)| WorkUnit {
                    key: (*k).into(),
                    seed: unit_seed(0, i as u64),
                    index: i,
                })
                .collect())
        }

        fn run_unit(&self, unit: &WorkUnit) -> Result<UnitOutput, ExpError> {
            if unit.key == "u-poison" {
                return Err(ExpError::Msg("poisoned unit".into()));
            }
            let mut t = Table::new("p", "t");
            tline!(t, "{}", unit.key);
            Ok(UnitOutput::from_table(t))
        }
    }

    #[test]
    fn first_failure_in_unit_order_aborts_after_earlier_writes() {
        let mut sink = TableSink::default();
        let err = execute(&Poisoned, &mut sink).expect_err("must fail");
        assert!(err.to_string().contains("poisoned unit"));
        // u0 (before the failure) reached the sink; u2 (after) did not.
        assert_eq!(sink.tables.len(), 1);
        assert_eq!(sink.tables[0].lines()[0], "u0");
    }

    #[test]
    fn streaming_feed_is_byte_identical_to_the_batch_feed() {
        let plan = Toy { n: 16, master: 11 };
        let mut batch = TableSink::default();
        execute(&plan, &mut batch).expect("batch");
        let mut streamed = TableSink::default();
        let summary = execute_streaming(&plan, &mut streamed).expect("streaming");
        assert_eq!(
            summary,
            ExecSummary {
                ran: 16,
                skipped: 0
            }
        );
        let render = |s: &TableSink| -> Vec<String> {
            s.tables.iter().map(|t| t.lines()[0].clone()).collect()
        };
        assert_eq!(render(&batch), render(&streamed));
    }

    #[test]
    fn streaming_skips_recorded_keys_like_execute() {
        let plan = Toy { n: 5, master: 3 };
        let mut sink = Skipping {
            have: vec!["u0".into(), "u4".into()],
            inner: TableSink::default(),
        };
        let summary = execute_streaming(&plan, &mut sink).expect("runs");
        assert_eq!(summary, ExecSummary { ran: 3, skipped: 2 });
        let keys: Vec<&str> = sink
            .inner
            .tables
            .iter()
            .map(|t| t.lines()[0].split_whitespace().next().expect("key"))
            .collect();
        assert_eq!(keys, ["u1", "u2", "u3"]);
    }

    #[test]
    fn streaming_aborts_on_the_first_failure_in_unit_order() {
        let mut sink = TableSink::default();
        let err = execute_streaming(&Poisoned, &mut sink).expect_err("must fail");
        assert!(err.to_string().contains("poisoned unit"));
        // u0 reached the sink before the failure; u2 never did.
        assert_eq!(sink.tables.len(), 1);
        assert_eq!(sink.tables[0].lines()[0], "u0");
    }

    /// A sink whose write fails on a chosen unit — exercises the abort
    /// path where the *sink*, not the unit, errors mid-stream (the
    /// disconnected-client case of a served job).
    struct FailingSink {
        fail_on: String,
        written: Vec<String>,
    }

    impl UnitSink for FailingSink {
        fn write_unit(&mut self, unit: &WorkUnit, _out: UnitOutput) -> Result<(), ExpError> {
            if unit.key == self.fail_on {
                return Err(ExpError::Msg(format!("sink lost {}", unit.key)));
            }
            self.written.push(unit.key.clone());
            Ok(())
        }
    }

    /// A plan with a custom execution schedule (reverse order, or a
    /// deliberately malformed one) that records what `schedule` was
    /// offered.
    struct Scheduled {
        inner: Toy,
        order: Vec<usize>,
        offered: std::sync::Mutex<Vec<String>>,
    }

    impl RunPlan for Scheduled {
        fn name(&self) -> &str {
            "scheduled"
        }

        fn units(&self) -> Result<Vec<WorkUnit>, ExpError> {
            self.inner.units()
        }

        fn run_unit(&self, unit: &WorkUnit) -> Result<UnitOutput, ExpError> {
            self.inner.run_unit(unit)
        }

        fn schedule(&self, pending: &[&WorkUnit]) -> Option<Vec<usize>> {
            *self.offered.lock().expect("lock") = pending.iter().map(|u| u.key.clone()).collect();
            Some(self.order.clone())
        }
    }

    #[test]
    fn schedule_sees_only_pending_units_and_never_changes_sink_order() {
        // u1/u3 are already recorded; the schedule is offered the other
        // three and reverses their execution order — the sink feed must
        // come out in unit order regardless.
        let plan = Scheduled {
            inner: Toy { n: 5, master: 9 },
            order: vec![2, 1, 0],
            offered: std::sync::Mutex::new(Vec::new()),
        };
        let mut sink = Skipping {
            have: vec!["u1".into(), "u3".into()],
            inner: TableSink::default(),
        };
        let summary = execute(&plan, &mut sink).expect("runs");
        assert_eq!(summary, ExecSummary { ran: 3, skipped: 2 });
        assert_eq!(
            *plan.offered.lock().expect("lock"),
            ["u0", "u2", "u4"],
            "schedule is offered exactly the pending units"
        );
        let keys: Vec<&str> = sink
            .inner
            .tables
            .iter()
            .map(|t| t.lines()[0].split_whitespace().next().expect("key"))
            .collect();
        assert_eq!(keys, ["u0", "u2", "u4"], "sink order is unit order");
    }

    #[test]
    fn scheduled_and_unscheduled_runs_render_identically() {
        let plain = Toy { n: 8, master: 21 };
        let mut a = TableSink::default();
        execute(&plain, &mut a).expect("plain");
        let scheduled = Scheduled {
            inner: Toy { n: 8, master: 21 },
            order: (0..8).rev().collect(),
            offered: std::sync::Mutex::new(Vec::new()),
        };
        let mut b = TableSink::default();
        execute(&scheduled, &mut b).expect("scheduled");
        let render = |s: &TableSink| -> Vec<String> {
            s.tables.iter().map(|t| t.lines()[0].clone()).collect()
        };
        assert_eq!(render(&a), render(&b), "a schedule may not change bytes");
    }

    #[test]
    fn malformed_schedules_fall_back_to_enumeration_order() {
        for bad in [vec![0, 0, 2], vec![0, 1], vec![0, 1, 7]] {
            let plan = Scheduled {
                inner: Toy { n: 3, master: 1 },
                order: bad,
                offered: std::sync::Mutex::new(Vec::new()),
            };
            let mut sink = TableSink::default();
            let summary = execute(&plan, &mut sink).expect("runs");
            assert_eq!(summary, ExecSummary { ran: 3, skipped: 0 });
            assert_eq!(sink.tables.len(), 3, "all units still ran");
        }
    }

    #[test]
    fn streaming_stops_feeding_after_a_sink_failure() {
        let plan = Toy { n: 6, master: 5 };
        let mut sink = FailingSink {
            fail_on: "u2".into(),
            written: Vec::new(),
        };
        let err = execute_streaming(&plan, &mut sink).expect_err("sink fails");
        assert!(err.to_string().contains("sink lost u2"));
        assert_eq!(sink.written, ["u0", "u1"], "writes stop at the failure");
    }
}
