//! The append-only JSONL stream sink with resume support.
//!
//! On open, the sink first repairs any torn tail: a process killed
//! mid-append can leave an unterminated final line behind, and — worse —
//! one whose `"key"` field is already complete even though the record is
//! not. Counting such a line as recorded would make the resumed run skip
//! the unit forever and leave the corrupt line in the stream; appending
//! after it would glue the next record onto the torn bytes. So an
//! unterminated tail (no trailing newline) is *truncated* before
//! anything else happens — the interrupted unit simply re-runs — which
//! is what makes a crash/restart cycle byte-identical to an
//! uninterrupted cold run.
//!
//! The surviving complete records are then indexed by their `"key"`
//! field with **keep-last semantics**: if a key's records appear in more
//! than one contiguous run (the signature of a pre-repair crash/restart
//! cycle that appended a duplicate), only the *last* run is kept —
//! consumers reading through [`JsonlSink::lines_for`] see exactly one
//! authoritative set of lines per key. [`crate::plan::execute`] then
//! skips every unit whose key is recorded, and newly executed units
//! append their records in unit order.
//!
//! Resume granularity is per unit and all-or-nothing: a unit should emit
//! one line (the sweep does), or accept that a crash between two of its
//! lines records it partially and a resume skips the remainder.

use super::{ExpError, UnitOutput, UnitSink, WorkUnit};
use escalate_obs::jsonl::{json_string_field, JsonlWriter};
use std::collections::HashMap;
use std::path::{Path, PathBuf};

/// Append-only JSONL sink: recorded keys are skipped on re-run, new
/// records are appended and flushed line-by-line.
#[derive(Debug)]
pub struct JsonlSink {
    path: PathBuf,
    writer: JsonlWriter,
    /// Key → that key's record lines (prior runs *and* this one). For
    /// keys that appear in multiple non-contiguous runs in the file, only
    /// the last run is held (keep-last resume semantics).
    records: HashMap<String, Vec<String>>,
    appended: usize,
    truncated_tail: bool,
}

/// Drops an unterminated final line (one not ending in `\n`) from the
/// file, returning whether anything was cut. A missing file is a no-op.
fn truncate_torn_tail(path: &Path) -> std::io::Result<bool> {
    let raw = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(false),
        Err(e) => return Err(e),
    };
    match raw.last() {
        None | Some(b'\n') => Ok(false),
        Some(_) => {
            let keep = raw.iter().rposition(|&b| b == b'\n').map_or(0, |p| p + 1);
            let file = std::fs::OpenOptions::new().write(true).open(path)?;
            file.set_len(keep as u64)?;
            file.sync_all()?;
            Ok(true)
        }
    }
}

/// Indexes complete record lines by key with keep-last semantics: a key
/// reappearing after other keys (or after an unkeyed line) starts a new
/// run that *replaces* its earlier one, while consecutive lines with the
/// same key extend the current run (the multi-line-unit case).
fn index_keep_last(lines: Vec<String>) -> HashMap<String, Vec<String>> {
    let mut records: HashMap<String, Vec<String>> = HashMap::new();
    let mut run_key: Option<String> = None;
    for line in lines {
        let Some(key) = json_string_field(&line, "key") else {
            run_key = None;
            continue;
        };
        if run_key.as_deref() != Some(key.as_str()) {
            // A new run for this key: discard any earlier run.
            records.insert(key.clone(), Vec::new());
            run_key = Some(key.clone());
        }
        records
            .get_mut(&key)
            .expect("run entry just ensured")
            .push(line);
    }
    records
}

impl JsonlSink {
    /// Opens (or creates) the stream at `path`: repairs a torn tail line
    /// left by a killed writer (truncating it, so the interrupted unit
    /// re-runs), then indexes the surviving records by `"key"` with
    /// keep-last semantics.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn open(path: &Path) -> std::io::Result<JsonlSink> {
        let truncated_tail = truncate_torn_tail(path)?;
        let records = index_keep_last(escalate_obs::jsonl::read_lines(path)?);
        Ok(JsonlSink {
            path: path.to_path_buf(),
            writer: JsonlWriter::append_to(path)?,
            records,
            appended: 0,
            truncated_tail,
        })
    }

    /// The stream's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records appended by *this* run (excludes resumed ones).
    pub fn appended(&self) -> usize {
        self.appended
    }

    /// Whether `open` cut a torn (unterminated) tail line left behind by
    /// a killed writer.
    pub fn truncated_tail(&self) -> bool {
        self.truncated_tail
    }

    /// The record lines held for `key` — the last contiguous run in the
    /// file plus anything appended this run — if any.
    pub fn lines_for(&self, key: &str) -> Option<&[String]> {
        self.records.get(key).map(Vec::as_slice)
    }
}

impl UnitSink for JsonlSink {
    fn recorded(&self, key: &str) -> bool {
        self.records.contains_key(key)
    }

    fn write_unit(&mut self, unit: &WorkUnit, out: UnitOutput) -> Result<(), ExpError> {
        for line in out.jsonl {
            debug_assert_eq!(
                json_string_field(&line, "key").as_deref(),
                Some(unit.key.as_str()),
                "JSONL records must carry their unit's key for resume"
            );
            self.writer.append(&line)?;
            self.records.entry(unit.key.clone()).or_default().push(line);
            self.appended += 1;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{execute, unit_seed, RunPlan};
    use crate::tline;

    /// A plan whose units each append one keyed JSONL record.
    struct Stream {
        n: usize,
    }

    impl RunPlan for Stream {
        fn name(&self) -> &str {
            "stream"
        }

        fn units(&self) -> Result<Vec<WorkUnit>, ExpError> {
            Ok((0..self.n)
                .map(|i| WorkUnit {
                    key: format!("k{i}"),
                    seed: unit_seed(9, i as u64),
                    index: i,
                })
                .collect())
        }

        fn run_unit(&self, unit: &WorkUnit) -> Result<UnitOutput, ExpError> {
            let mut w = escalate_obs::JsonWriter::new();
            w.begin_object();
            w.field_str("key", &unit.key);
            w.field_u64("seed", unit.seed);
            w.end_object();
            let mut t = crate::experiments::Table::new("stream", "test");
            tline!(t, "{}", unit.key);
            Ok(UnitOutput {
                table: t,
                jsonl: vec![w.finish()],
            })
        }
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("escalate_plan_jsonl_tests");
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir.join(name)
    }

    #[test]
    fn interrupted_stream_resumes_to_the_cold_run_bytes() {
        let cold = tmp("cold.jsonl");
        let resumed = tmp("resumed.jsonl");
        std::fs::remove_file(&cold).ok();
        std::fs::remove_file(&resumed).ok();

        let plan = Stream { n: 4 };
        let mut sink = JsonlSink::open(&cold).expect("open");
        let s = execute(&plan, &mut sink).expect("cold run");
        assert_eq!((s.ran, s.skipped), (4, 0));
        drop(sink);
        let cold_bytes = std::fs::read(&cold).expect("cold bytes");

        // "Interrupt": keep only the first two records, then resume.
        let prefix: String = String::from_utf8(cold_bytes.clone())
            .expect("utf8")
            .lines()
            .take(2)
            .map(|l| format!("{l}\n"))
            .collect();
        std::fs::write(&resumed, prefix).expect("truncate");
        let mut sink = JsonlSink::open(&resumed).expect("reopen");
        assert!(sink.recorded("k0") && sink.recorded("k1"));
        assert!(!sink.recorded("k2"));
        let s = execute(&plan, &mut sink).expect("resumed run");
        assert_eq!((s.ran, s.skipped), (2, 2), "exactly the recorded keys");
        assert_eq!(sink.appended(), 2);
        drop(sink);
        assert_eq!(
            std::fs::read(&resumed).expect("resumed bytes"),
            cold_bytes,
            "resume must reproduce the cold run byte-for-byte"
        );

        // A second resume is a no-op.
        let mut sink = JsonlSink::open(&resumed).expect("reopen");
        let s = execute(&plan, &mut sink).expect("no-op run");
        assert_eq!((s.ran, s.skipped), (0, 4));
        std::fs::remove_file(&cold).ok();
        std::fs::remove_file(&resumed).ok();
    }

    #[test]
    fn torn_tail_without_a_key_is_cut_and_rerun() {
        let path = tmp("torn.jsonl");
        // A record plus a torn (unterminated) tail from a killed writer.
        std::fs::write(&path, "{\"key\": \"k0\", \"seed\": 1}\n{\"key\": \"k1").expect("write");
        let sink = JsonlSink::open(&path).expect("open");
        assert!(sink.truncated_tail(), "the torn line must be repaired");
        assert!(sink.recorded("k0"));
        assert!(!sink.recorded("k1"), "a torn line must re-run, not resume");
        drop(sink);
        assert_eq!(
            std::fs::read_to_string(&path).expect("bytes"),
            "{\"key\": \"k0\", \"seed\": 1}\n",
            "the torn tail is gone from the file"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_with_a_complete_key_restarts_byte_identical_to_cold() {
        // The nasty case this fix exists for: the killed writer finished
        // the `"key"` field but not the record. Before the repair, the
        // key parsed, the unit was (wrongly) treated as recorded, and the
        // corrupt line stayed in the stream forever.
        let cold = tmp("crash_cold.jsonl");
        let crashed = tmp("crash_resumed.jsonl");
        std::fs::remove_file(&cold).ok();
        std::fs::remove_file(&crashed).ok();

        let plan = Stream { n: 3 };
        let mut sink = JsonlSink::open(&cold).expect("open");
        execute(&plan, &mut sink).expect("cold run");
        drop(sink);
        let cold_bytes = std::fs::read(&cold).expect("cold bytes");

        // Crash mid-append: k0 complete, k1 torn *after* its key field.
        let text = String::from_utf8(cold_bytes.clone()).expect("utf8");
        let mut lines = text.lines();
        let k0 = lines.next().expect("k0");
        let k1 = lines.next().expect("k1");
        let torn = format!("{k0}\n{}", &k1[..k1.len() - 3]);
        assert!(
            json_string_field(torn.lines().last().expect("tail"), "key").is_some(),
            "the torn tail must still carry a parseable key for this test"
        );
        std::fs::write(&crashed, torn).expect("write torn");

        let mut sink = JsonlSink::open(&crashed).expect("reopen");
        assert!(sink.truncated_tail());
        assert!(sink.recorded("k0"));
        assert!(!sink.recorded("k1"), "the torn k1 record must re-run");
        let s = execute(&plan, &mut sink).expect("restart");
        assert_eq!((s.ran, s.skipped), (2, 1));
        drop(sink);
        assert_eq!(
            std::fs::read(&crashed).expect("restart bytes"),
            cold_bytes,
            "crash/restart must be byte-identical to the cold run"
        );
        std::fs::remove_file(&cold).ok();
        std::fs::remove_file(&crashed).ok();
    }

    #[test]
    fn duplicate_keys_resolve_to_the_last_run() {
        // A stream written before the torn-tail repair existed can hold a
        // duplicate: a torn-but-keyed line followed by the unit's real
        // record from the restarted run. Consumers must see the last run.
        let path = tmp("dupes.jsonl");
        std::fs::write(
            &path,
            "{\"key\": \"a\", \"seed\": 1}\n\
             {\"key\": \"b\", \"seed\"\n\
             {\"key\": \"a\", \"seed\": 9}\n\
             {\"key\": \"b\", \"seed\": 2}\n",
        )
        .expect("write");
        let sink = JsonlSink::open(&path).expect("open");
        assert!(!sink.truncated_tail(), "every line is newline-terminated");
        assert_eq!(
            sink.lines_for("a"),
            Some(&["{\"key\": \"a\", \"seed\": 9}".to_string()][..]),
            "the later run wins"
        );
        assert_eq!(
            sink.lines_for("b"),
            Some(&["{\"key\": \"b\", \"seed\": 2}".to_string()][..]),
            "the torn-but-keyed earlier line is superseded"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn multi_line_units_keep_their_whole_run() {
        let path = tmp("multiline.jsonl");
        std::fs::write(
            &path,
            "{\"key\": \"m\", \"part\": 1}\n\
             {\"key\": \"m\", \"part\": 2}\n\
             {\"key\": \"n\", \"part\": 1}\n",
        )
        .expect("write");
        let sink = JsonlSink::open(&path).expect("open");
        assert_eq!(
            sink.lines_for("m").map(<[String]>::len),
            Some(2),
            "consecutive same-key lines are one run, not duplicates"
        );
        std::fs::remove_file(&path).ok();
    }
}
