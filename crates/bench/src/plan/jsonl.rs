//! The append-only JSONL stream sink with resume support.
//!
//! On open, the sink reads any existing records from the file and indexes
//! them by their `"key"` field; [`crate::plan::execute`] then skips every
//! unit whose key is already recorded, and newly executed units append
//! their records in unit order. Because appends happen in unit order and
//! earlier lines are never rewritten, an interrupted run followed by a
//! resumed one produces a file byte-identical to an uninterrupted cold
//! run — the property `scripts/tier1.sh`'s smoke sweep asserts.
//!
//! Resume granularity is per unit and all-or-nothing: a unit should emit
//! one line (the sweep does), or accept that a crash between two of its
//! lines records it partially and a resume skips the remainder. Lines
//! without a parseable `"key"` (e.g. the torn tail line of a killed
//! process) are kept in the file but never match a unit key, so the
//! interrupted unit simply re-runs and re-appends.

use super::{ExpError, UnitOutput, UnitSink, WorkUnit};
use escalate_obs::jsonl::{json_string_field, read_lines, JsonlWriter};
use std::collections::HashMap;
use std::path::{Path, PathBuf};

/// Append-only JSONL sink: recorded keys are skipped on re-run, new
/// records are appended and flushed line-by-line.
#[derive(Debug)]
pub struct JsonlSink {
    path: PathBuf,
    writer: JsonlWriter,
    /// Key → that key's record lines (prior runs *and* this one).
    records: HashMap<String, Vec<String>>,
    appended: usize,
}

impl JsonlSink {
    /// Opens (or creates) the stream at `path` and indexes its existing
    /// records by `"key"`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn open(path: &Path) -> std::io::Result<JsonlSink> {
        let mut records: HashMap<String, Vec<String>> = HashMap::new();
        for line in read_lines(path)? {
            if let Some(key) = json_string_field(&line, "key") {
                records.entry(key).or_default().push(line);
            }
        }
        Ok(JsonlSink {
            path: path.to_path_buf(),
            writer: JsonlWriter::append_to(path)?,
            records,
            appended: 0,
        })
    }

    /// The stream's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records appended by *this* run (excludes resumed ones).
    pub fn appended(&self) -> usize {
        self.appended
    }

    /// The record lines held for `key` (resumed or appended), if any.
    pub fn lines_for(&self, key: &str) -> Option<&[String]> {
        self.records.get(key).map(Vec::as_slice)
    }
}

impl UnitSink for JsonlSink {
    fn recorded(&self, key: &str) -> bool {
        self.records.contains_key(key)
    }

    fn write_unit(&mut self, unit: &WorkUnit, out: UnitOutput) -> Result<(), ExpError> {
        for line in out.jsonl {
            debug_assert_eq!(
                json_string_field(&line, "key").as_deref(),
                Some(unit.key.as_str()),
                "JSONL records must carry their unit's key for resume"
            );
            self.writer.append(&line)?;
            self.records.entry(unit.key.clone()).or_default().push(line);
            self.appended += 1;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{execute, unit_seed, RunPlan};
    use crate::tline;

    /// A plan whose units each append one keyed JSONL record.
    struct Stream {
        n: usize,
    }

    impl RunPlan for Stream {
        fn name(&self) -> &str {
            "stream"
        }

        fn units(&self) -> Result<Vec<WorkUnit>, ExpError> {
            Ok((0..self.n)
                .map(|i| WorkUnit {
                    key: format!("k{i}"),
                    seed: unit_seed(9, i as u64),
                    index: i,
                })
                .collect())
        }

        fn run_unit(&self, unit: &WorkUnit) -> Result<UnitOutput, ExpError> {
            let mut w = escalate_obs::JsonWriter::new();
            w.begin_object();
            w.field_str("key", &unit.key);
            w.field_u64("seed", unit.seed);
            w.end_object();
            let mut t = crate::experiments::Table::new("stream", "test");
            tline!(t, "{}", unit.key);
            Ok(UnitOutput {
                table: t,
                jsonl: vec![w.finish()],
            })
        }
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("escalate_plan_jsonl_tests");
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir.join(name)
    }

    #[test]
    fn interrupted_stream_resumes_to_the_cold_run_bytes() {
        let cold = tmp("cold.jsonl");
        let resumed = tmp("resumed.jsonl");
        std::fs::remove_file(&cold).ok();
        std::fs::remove_file(&resumed).ok();

        let plan = Stream { n: 4 };
        let mut sink = JsonlSink::open(&cold).expect("open");
        let s = execute(&plan, &mut sink).expect("cold run");
        assert_eq!((s.ran, s.skipped), (4, 0));
        drop(sink);
        let cold_bytes = std::fs::read(&cold).expect("cold bytes");

        // "Interrupt": keep only the first two records, then resume.
        let prefix: String = String::from_utf8(cold_bytes.clone())
            .expect("utf8")
            .lines()
            .take(2)
            .map(|l| format!("{l}\n"))
            .collect();
        std::fs::write(&resumed, prefix).expect("truncate");
        let mut sink = JsonlSink::open(&resumed).expect("reopen");
        assert!(sink.recorded("k0") && sink.recorded("k1"));
        assert!(!sink.recorded("k2"));
        let s = execute(&plan, &mut sink).expect("resumed run");
        assert_eq!((s.ran, s.skipped), (2, 2), "exactly the recorded keys");
        assert_eq!(sink.appended(), 2);
        drop(sink);
        assert_eq!(
            std::fs::read(&resumed).expect("resumed bytes"),
            cold_bytes,
            "resume must reproduce the cold run byte-for-byte"
        );

        // A second resume is a no-op.
        let mut sink = JsonlSink::open(&resumed).expect("reopen");
        let s = execute(&plan, &mut sink).expect("no-op run");
        assert_eq!((s.ran, s.skipped), (0, 4));
        std::fs::remove_file(&cold).ok();
        std::fs::remove_file(&resumed).ok();
    }

    #[test]
    fn torn_tail_lines_do_not_count_as_recorded() {
        let path = tmp("torn.jsonl");
        // A record plus a torn (unterminated) tail from a killed writer.
        std::fs::write(&path, "{\"key\": \"k0\", \"seed\": 1}\n{\"key\": \"k1").expect("write");
        let sink = JsonlSink::open(&path).expect("open");
        assert!(sink.recorded("k0"));
        assert!(!sink.recorded("k1"), "a torn line must re-run, not resume");
        std::fs::remove_file(&path).ok();
    }
}
