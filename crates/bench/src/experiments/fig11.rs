//! **Figure 11**: layer-wise sparsity and speedup over Eyeriss for
//! ResNet18 (the paper's subject), for all four accelerators. Takes an
//! optional model-name argument to analyze a different network.

use super::{Cell, ExpContext, ExpError, Experiment, Record, Table};
use crate::{compress_cached, tline};
use escalate_baselines::{BaselineWorkload, Eyeriss, LayerModel, Scnn, SparTen};
use escalate_core::pipeline::CompressionConfig;
use escalate_models::ModelProfile;
use escalate_sim::{simulate_model, Workload};

/// Registry entry for Figure 11.
pub struct Fig11;

impl Experiment for Fig11 {
    fn name(&self) -> &'static str {
        "fig11"
    }

    fn paper_anchor(&self) -> &'static str {
        "Figure 11"
    }

    fn summary(&self) -> &'static str {
        "layer-wise sparsity and speedup over Eyeriss (default ResNet18)"
    }

    fn run(&self, ctx: &ExpContext) -> Result<Table, ExpError> {
        let cfg = &ctx.sim;
        let name = ctx.arg_or("ResNet18");
        let profile = ModelProfile::for_model(name)
            .ok_or_else(|| ExpError::Msg(format!("unknown model {name}")))?;
        let artifacts = compress_cached(&profile, &CompressionConfig::default())?;
        let workload = Workload::from_artifacts(&profile.name, &artifacts, &profile);
        let esc = simulate_model(&workload, cfg, 0);

        let bw = BaselineWorkload::for_profile(&profile);
        let eye = Eyeriss::default().simulate(&bw, 0);
        let scnn = Scnn::default().simulate(&bw, 0);
        let sparten = SparTen::default().simulate(&bw, 0);

        let mut t = Table::new(self.name(), self.paper_anchor());
        tline!(
            t,
            "Figure 11: layer-wise speedup over Eyeriss, {} ({})",
            profile.name,
            profile.dataset
        );
        tline!(t);
        tline!(
            t,
            "{:<20} {:>5} {:>5} {:>7} {:>9} {:>9} {:>9} {:>9}",
            "Layer",
            "C",
            "K",
            "spar%",
            "SCNN",
            "SparTen",
            "ESCALATE",
            "C/M limit"
        );
        // The per-layer comparison requires unfused layer lists (ESCALATE
        // fuses dw+pw pairs on the MobileNets).
        if esc.layers.len() != eye.layers.len() {
            return Err(ExpError::Msg(format!(
                "{} fuses DSC pairs; layer-wise comparison needs an unfused model",
                profile.name
            )));
        }
        let conv: Vec<_> = profile.model().conv_layers().cloned().collect();
        let n = conv.len();
        for (i, layer) in conv.iter().enumerate() {
            let e_cycles = eye.layers[i].cycles as f64;
            let esc_l = &esc.layers[i];
            let spar = profile.layer_coeff_sparsity(i, n) * 100.0;
            let cm = layer.c as f64 / cfg.m as f64;
            tline!(
                t,
                "{:<20} {:>5} {:>5} {:>6.1}% {:>8.2}x {:>8.2}x {:>8.2}x {:>8.1}x{}",
                layer.name,
                layer.c,
                layer.k,
                spar,
                e_cycles / scnn.layers[i].cycles as f64,
                e_cycles / sparten.layers[i].cycles as f64,
                e_cycles / esc_l.cycles as f64,
                cm,
                if esc_l.fallback {
                    "  (dense fallback)"
                } else {
                    ""
                },
            );
            t.push_record(Record::new([
                ("layer", Cell::from(layer.name.clone())),
                ("c", Cell::from(layer.c)),
                ("k", Cell::from(layer.k)),
                ("sparsity_pct", spar.into()),
                (
                    "speedup_scnn",
                    (e_cycles / scnn.layers[i].cycles as f64).into(),
                ),
                (
                    "speedup_sparten",
                    (e_cycles / sparten.layers[i].cycles as f64).into(),
                ),
                ("speedup_escalate", (e_cycles / esc_l.cycles as f64).into()),
                ("cm_limit", cm.into()),
                ("fallback", esc_l.fallback.into()),
            ]));
        }
        tline!(t);
        tline!(
            t,
            "Expected shape (paper): ESCALATE slower than Eyeriss on the first layer"
        );
        tline!(
            t,
            "(dense fallback); within the first three blocks ESCALATE approaches the C/M"
        );
        tline!(
            t,
            "limit; SCNN leads in early (large-map) layers, SparTen in late (deep) ones."
        );
        Ok(t)
    }
}
