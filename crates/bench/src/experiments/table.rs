//! The structured output of one experiment: exact text lines (the golden
//! corpus under `results/` is byte-for-byte these lines) plus typed
//! records that render as JSON through [`escalate_obs::JsonWriter`].
//!
//! An experiment's `run` builds its output once; the renderers never
//! recompute anything. Text fidelity is the contract that makes
//! `report --check` a regression gate: the lines a [`Table`] holds are
//! exactly what the historical standalone binaries printed.

use escalate_obs::JsonWriter;

/// Schema identifier of the JSON rendering, bumped on incompatible
/// layout changes (sibling of `escalate-run-manifest/v1`).
pub const REPORT_SCHEMA: &str = "escalate-report/v1";

/// One typed value inside a [`Record`].
#[derive(Debug, Clone, PartialEq)]
pub enum Cell {
    /// A string value.
    Str(String),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float (non-finite values render as JSON `null`).
    F64(f64),
    /// A boolean.
    Bool(bool),
}

impl From<&str> for Cell {
    fn from(v: &str) -> Self {
        Cell::Str(v.to_string())
    }
}
impl From<String> for Cell {
    fn from(v: String) -> Self {
        Cell::Str(v)
    }
}
impl From<u64> for Cell {
    fn from(v: u64) -> Self {
        Cell::U64(v)
    }
}
impl From<usize> for Cell {
    fn from(v: usize) -> Self {
        Cell::U64(v as u64)
    }
}
impl From<i64> for Cell {
    fn from(v: i64) -> Self {
        Cell::I64(v)
    }
}
impl From<f64> for Cell {
    fn from(v: f64) -> Self {
        Cell::F64(v)
    }
}
impl From<bool> for Cell {
    fn from(v: bool) -> Self {
        Cell::Bool(v)
    }
}

/// One structured row: ordered `(field, value)` pairs.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Record {
    /// Field name → typed value, in insertion order.
    pub fields: Vec<(String, Cell)>,
}

impl Record {
    /// Builds a record from `(name, value)` pairs.
    pub fn new<I, K, V>(fields: I) -> Self
    where
        I: IntoIterator<Item = (K, V)>,
        K: Into<String>,
        V: Into<Cell>,
    {
        Record {
            fields: fields
                .into_iter()
                .map(|(k, v)| (k.into(), v.into()))
                .collect(),
        }
    }
}

/// The rendered output of one experiment.
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Registry name of the producing experiment (e.g. `"fig8"`).
    pub experiment: String,
    /// Paper anchor (e.g. `"Figure 8"`, `"§6.3"`).
    pub paper_anchor: String,
    /// Exact output lines, without trailing newlines.
    lines: Vec<String>,
    /// Structured rows for the JSON rendering.
    pub records: Vec<Record>,
}

impl Table {
    /// An empty table tagged with its experiment and paper anchor.
    pub fn new(experiment: &str, paper_anchor: &str) -> Self {
        Table {
            experiment: experiment.to_string(),
            paper_anchor: paper_anchor.to_string(),
            ..Table::default()
        }
    }

    /// Appends one text line (what the binary historically `println!`ed).
    pub fn line(&mut self, line: impl Into<String>) {
        self.lines.push(line.into());
    }

    /// Appends an empty line.
    pub fn blank(&mut self) {
        self.lines.push(String::new());
    }

    /// Appends a structured record.
    pub fn push_record(&mut self, record: Record) {
        self.records.push(record);
    }

    /// The text lines rendered so far.
    pub fn lines(&self) -> &[String] {
        &self.lines
    }

    /// Renders the exact text the historical binary printed: every line
    /// followed by `\n` (so the document ends with one trailing newline,
    /// matching `println!` semantics).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for l in &self.lines {
            out.push_str(l);
            out.push('\n');
        }
        out
    }

    /// Renders the structured JSON document
    /// (`escalate-report/v1`-schema'd, escaping via [`JsonWriter`]).
    pub fn render_json(&self) -> String {
        let mut w = JsonWriter::new();
        self.write_json(&mut w);
        w.finish()
    }

    /// Writes this table as one JSON object onto an open writer (used by
    /// multi-experiment reports to emit an array of tables).
    pub fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object();
        w.field_str("schema", REPORT_SCHEMA);
        w.field_str("experiment", &self.experiment);
        w.field_str("paper_anchor", &self.paper_anchor);
        w.key("records");
        w.begin_array();
        for r in &self.records {
            w.begin_object();
            for (k, v) in &r.fields {
                w.key(k);
                match v {
                    Cell::Str(s) => w.string(s),
                    Cell::U64(n) => w.u64(*n),
                    Cell::I64(n) => {
                        if *n < 0 {
                            // JsonWriter has no i64 emitter; negative
                            // integers are exact in f64 far beyond any
                            // value an experiment records.
                            w.f64(*n as f64);
                        } else {
                            w.u64(*n as u64);
                        }
                    }
                    Cell::F64(x) => w.f64(*x),
                    Cell::Bool(b) => w.bool(*b),
                }
            }
            w.end_object();
        }
        w.end_array();
        w.key("text");
        w.begin_array();
        for l in &self.lines {
            w.string(l);
        }
        w.end_array();
        w.end_object();
    }
}

/// `tline!(table, "fmt", args…)` — the registry's `println!`: formats and
/// appends one line to a [`Table`].
#[macro_export]
macro_rules! tline {
    ($t:expr) => { $t.blank() };
    ($t:expr, $($arg:tt)*) => { $t.line(format!($($arg)*)) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_rendering_matches_println_semantics() {
        let mut t = Table::new("x", "Figure 0");
        t.line("a");
        t.blank();
        t.line("b");
        assert_eq!(t.render_text(), "a\n\nb\n");
    }

    #[test]
    fn empty_table_renders_empty_text() {
        assert_eq!(Table::new("x", "y").render_text(), "");
    }

    #[test]
    fn json_escapes_quotes_newlines_and_controls() {
        let mut t = Table::new("esc", "§9 \"quoted\"");
        t.line("tab\there \"q\" \\ and \u{1}");
        t.push_record(Record::new([("name", Cell::from("line\nbreak"))]));
        let json = t.render_json();
        assert!(json.contains("\"paper_anchor\": \"§9 \\\"quoted\\\"\""));
        assert!(json.contains("\"tab\\there \\\"q\\\" \\\\ and \\u0001\""));
        assert!(json.contains("\"name\": \"line\\nbreak\""));
    }

    #[test]
    fn json_renders_every_cell_type() {
        let mut t = Table::new("cells", "Table 0");
        t.push_record(Record::new([
            ("s", Cell::from("v")),
            ("u", Cell::from(3u64)),
            ("i", Cell::I64(-2)),
            ("f", Cell::from(1.5)),
            ("nan", Cell::F64(f64::NAN)),
            ("b", Cell::from(true)),
        ]));
        let json = t.render_json();
        assert!(json.contains("\"schema\": \"escalate-report/v1\""));
        assert!(json.contains(
            "{\"s\": \"v\", \"u\": 3, \"i\": -2, \"f\": 1.5, \"nan\": null, \"b\": true}"
        ));
    }

    #[test]
    fn tline_formats_like_println() {
        let mut t = Table::new("m", "a");
        tline!(t, "{:<4} {:>6.2}", "x", 1.234);
        tline!(t);
        assert_eq!(t.lines(), &["x      1.23".to_string(), String::new()]);
    }
}
