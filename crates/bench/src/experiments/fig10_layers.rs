//! Companion to Figure 10: the ESCALATE energy breakdown resolved per
//! layer for one model, showing *where* in the network each component's
//! share comes from (the paper discusses shallow-vs-deep divergence at
//! the model level; this view localizes it).
//!
//! Takes an optional model-name argument (default ResNet18).

use super::{Cell, ExpContext, ExpError, Experiment, Record, Table};
use crate::{compress_cached, escalate_layer_energies, run_escalate, tline};
use escalate_core::pipeline::CompressionConfig;
use escalate_models::ModelProfile;

/// Registry entry for the layer-resolved Figure 10 companion.
pub struct Fig10Layers;

impl Experiment for Fig10Layers {
    fn name(&self) -> &'static str {
        "fig10_layers"
    }

    fn paper_anchor(&self) -> &'static str {
        "Figure 10 (per-layer)"
    }

    fn summary(&self) -> &'static str {
        "layer-resolved ESCALATE energy breakdown for one model"
    }

    fn run(&self, ctx: &ExpContext) -> Result<Table, ExpError> {
        let name = ctx.arg_or("ResNet18");
        let profile = ModelProfile::for_model(name)
            .ok_or_else(|| ExpError::Msg(format!("unknown model {name}")))?;
        let cfg = &ctx.sim;
        let artifacts = compress_cached(&profile, &CompressionConfig::default())?;
        let run = run_escalate(&profile, &artifacts, cfg, 1);
        let layers = escalate_layer_energies(&run, cfg);

        let mut t = Table::new(self.name(), self.paper_anchor());
        tline!(
            t,
            "Per-layer ESCALATE energy breakdown, {} (% of the layer's energy)",
            profile.name
        );
        tline!(t);
        tline!(
            t,
            "{:<22} {:>10} {:>7} {:>7} {:>7} {:>7} {:>7}",
            "layer",
            "total(uJ)",
            "DRAM",
            "MAC",
            "Dilut",
            "Concen",
            "bufs"
        );
        for (layer_name, e) in &layers {
            let total = e.total_pj();
            let pct = |v: f64| 100.0 * v / total.max(1e-12);
            let bufs = e.input_buf_pj + e.coef_psum_pj + e.act_buf_pj + e.output_buf_pj;
            tline!(
                t,
                "{:<22} {:>10.2} {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}%",
                layer_name,
                total * 1e-6,
                pct(e.dram_pj),
                pct(e.mac_pj),
                pct(e.dilution_pj),
                pct(e.concentration_pj),
                pct(bufs),
            );
            t.push_record(Record::new([
                ("layer", Cell::from(layer_name.clone())),
                ("total_uj", (total * 1e-6).into()),
                ("dram_pct", pct(e.dram_pj).into()),
                ("mac_pct", pct(e.mac_pj).into()),
                ("dilution_pct", pct(e.dilution_pj).into()),
                ("concentration_pct", pct(e.concentration_pj).into()),
                ("bufs_pct", pct(bufs).into()),
            ]));
        }
        let model_total: f64 = layers.iter().map(|(_, e)| e.total_pj()).sum();
        tline!(t);
        tline!(
            t,
            "model total: {:.1} uJ over {} layers",
            model_total * 1e-6,
            layers.len()
        );
        tline!(t);
        tline!(
            t,
            "Early wide-map layers are DRAM-lean and logic-dominated; layers whose"
        );
        tline!(
            t,
            "compressed inputs exceed the distributed buffers (re-streamed IFMs) and"
        );
        tline!(
            t,
            "the dense-fallback first layer carry the DRAM share — the layer-resolved"
        );
        tline!(t, "view behind the model-level Figure 10 bars.");
        Ok(t)
    }
}
