//! Ablation: the closed-form Eyeriss utilization vs an explicit
//! row-stationary mapping search (TimeLoop-lite).
//!
//! The Figure 8/9/11 baselines use a closed-form Eyeriss model (kernel-row
//! fit × scheduling efficiency). This study runs the full mapping search
//! on every ResNet18 layer and reports the per-layer gap, validating that
//! the closed form sits within the scheduling-efficiency envelope of the
//! best discoverable mapping — i.e. the normalization baseline is neither
//! sandbagged nor idealized.

use super::{Cell, ExpContext, ExpError, Experiment, Record, Table};
use crate::tline;
use escalate_baselines::rs_mapper::search;
use escalate_baselines::{BaselineWorkload, Eyeriss, LayerModel};
use escalate_models::ModelProfile;

/// Registry entry for the row-stationary mapping-search validation study.
pub struct RsMapping;

impl Experiment for RsMapping {
    fn name(&self) -> &'static str {
        "rs_mapping"
    }

    fn paper_anchor(&self) -> &'static str {
        "§5 baselines"
    }

    fn summary(&self) -> &'static str {
        "row-stationary mapping search vs the closed-form Eyeriss model"
    }

    fn run(&self, _ctx: &ExpContext) -> Result<Table, ExpError> {
        let profile = ModelProfile::for_model("ResNet18").expect("known model");
        let workload = BaselineWorkload::for_profile(&profile);
        let eye = Eyeriss::default();
        let closed = eye.simulate(&workload, 0);

        let mut t = Table::new(self.name(), self.paper_anchor());
        tline!(
            t,
            "Row-stationary mapping search vs the closed-form Eyeriss model (ResNet18)"
        );
        tline!(t);
        tline!(
            t,
            "{:<20} {:>10} {:>10} {:>7} {:>14} {:>8}",
            "Layer",
            "searched",
            "closed",
            "ratio",
            "mapping",
            "util"
        );
        let mut total_searched = 0u64;
        let mut total_closed = 0u64;
        for (w, cl) in workload.iter().zip(&closed.layers) {
            let m = search(w, 32, 32);
            total_searched += m.cycles;
            total_closed += cl.cycles;
            tline!(
                t,
                "{:<20} {:>10} {:>10} {:>6.2}x {:>6}r/{:<3}o/{:<3}f {:>7.1}%",
                w.layer.name,
                m.cycles,
                cl.cycles,
                cl.cycles as f64 / m.cycles as f64,
                m.row_replicas,
                m.cols_for_output,
                m.cols_for_filters,
                m.utilization * 100.0,
            );
            t.push_record(Record::new([
                ("layer", Cell::from(w.layer.name.clone())),
                ("searched_cycles", Cell::from(m.cycles)),
                ("closed_cycles", Cell::from(cl.cycles)),
                (
                    "closed_over_searched_x",
                    (cl.cycles as f64 / m.cycles as f64).into(),
                ),
                ("row_replicas", Cell::from(m.row_replicas)),
                ("cols_for_output", Cell::from(m.cols_for_output)),
                ("cols_for_filters", Cell::from(m.cols_for_filters)),
                ("utilization_pct", (m.utilization * 100.0).into()),
            ]));
        }
        tline!(t);
        tline!(
            t,
            "model total: searched {total_searched}, closed-form {total_closed} ({:.2}x)",
            total_closed as f64 / total_searched as f64
        );
        tline!(t);
        tline!(
            t,
            "The searched mapping is the fragmentation-only ideal; the closed form adds"
        );
        tline!(
            t,
            "the scheduling-efficiency residual real schedules pay. A model-level ratio"
        );
        tline!(
            t,
            "near 1.0-1.5x confirms the normalization baseline of Figures 8/9/11 is fair."
        );
        Ok(t)
    }
}
