//! Sensitivity study (§5.2.1's caveat): "Since the result is also related
//! to the activation sparsity, the result may vary with different input
//! samples." Quantifies (a) the run-to-run variance over random input
//! seeds at fixed sparsity, and (b) the sweep over activation-sparsity
//! levels.

use super::{Cell, ExpContext, ExpError, Experiment, Record, Table};
use crate::{compress_cached, tline};
use escalate_core::pipeline::CompressionConfig;
use escalate_models::ModelProfile;
use escalate_sim::{simulate_model, Workload};

/// Registry entry for the §5.2.1 sensitivity study.
pub struct Sensitivity;

impl Experiment for Sensitivity {
    fn name(&self) -> &'static str {
        "sensitivity"
    }

    fn paper_anchor(&self) -> &'static str {
        "§5.2.1"
    }

    fn summary(&self) -> &'static str {
        "input-seed variance and activation-sparsity sweep (ResNet18)"
    }

    fn run(&self, ctx: &ExpContext) -> Result<Table, ExpError> {
        let cfg = &ctx.sim;
        let profile = ModelProfile::for_model("ResNet18").expect("known model");
        let artifacts = compress_cached(&profile, &CompressionConfig::default())?;
        let workload = Workload::from_artifacts("ResNet18", &artifacts, &profile);

        let mut t = Table::new(self.name(), self.paper_anchor());

        // (a) Input-sample variance at the profile's sparsity.
        let cycles: Vec<f64> = (0..10u64)
            .map(|seed| simulate_model(&workload, cfg, seed).total_cycles() as f64)
            .collect();
        let mean = cycles.iter().sum::<f64>() / cycles.len() as f64;
        let var = cycles.iter().map(|c| (c - mean).powi(2)).sum::<f64>() / cycles.len() as f64;
        let cv = var.sqrt() / mean;
        tline!(t, "ResNet18, 10 random input samples at profile sparsity:");
        tline!(
            t,
            "  mean {mean:.0} cycles, coefficient of variation {:.2}%",
            cv * 100.0
        );
        tline!(t);
        t.push_record(Record::new([
            ("section", Cell::from("seed_variance")),
            ("mean_cycles", mean.into()),
            ("cv_pct", (cv * 100.0).into()),
        ]));

        // (b) Activation-sparsity sweep (all layers forced to one level).
        tline!(
            t,
            "{:>14} {:>12} {:>14}",
            "act sparsity",
            "cycles",
            "vs profile"
        );
        for sa in [0.0f64, 0.2, 0.4, 0.6, 0.8] {
            let mut w = workload.clone();
            for l in w.layers.iter_mut() {
                l.act_sparsity = sa;
                l.out_sparsity = sa;
            }
            let c = simulate_model(&w, cfg, 0).total_cycles() as f64;
            tline!(t, "{:>13.0}% {:>12.0} {:>13.2}x", sa * 100.0, c, mean / c);
            t.push_record(Record::new([
                ("section", Cell::from("sparsity_sweep")),
                ("act_sparsity_pct", (sa * 100.0).into()),
                ("cycles", c.into()),
                ("vs_profile_x", (mean / c).into()),
            ]));
        }
        tline!(t);
        tline!(
            t,
            "Denser activations lengthen the CA streams (and the DRAM traffic), so"
        );
        tline!(
            t,
            "cycles fall monotonically with activation sparsity; the per-sample"
        );
        tline!(
            t,
            "variance at a fixed level stays within a few percent, which is why the"
        );
        tline!(t, "paper's 10-sample averages are stable.");
        Ok(t)
    }
}
