//! Extension study: per-layer adaptive basis counts (PENNI's energy-
//! threshold rank selection) versus the paper's fixed `M = 6`.
//!
//! The fixed-M design keeps the hardware mapping static (every slice has
//! exactly `M` CA-MAC pairs); adaptive selection shows how much model
//! size the fixed choice leaves on the table, which is the §6.1
//! trade-off viewed from the algorithm side.

use super::{Cell, ExpContext, ExpError, Experiment, Record, Table};
use crate::tline;
use escalate_core::decompose::{decompose, decompose_adaptive};
use escalate_core::pipeline::ternary_storage_bits;
use escalate_core::quant::{
    threshold_for_sparsity, HybridQuantized, QuantizedBasis, TernaryCoeffs,
};
use escalate_models::{synth, ModelProfile};

/// Registry entry for the adaptive-M extension study.
pub struct AdaptiveM;

impl Experiment for AdaptiveM {
    fn name(&self) -> &'static str {
        "adaptive_m"
    }

    fn paper_anchor(&self) -> &'static str {
        "§6.1 (extension)"
    }

    fn summary(&self) -> &'static str {
        "PENNI-style adaptive per-layer M vs the fixed M = 6"
    }

    fn run(&self, _ctx: &ExpContext) -> Result<Table, ExpError> {
        let profile = ModelProfile::for_model("ResNet18").expect("known model");
        let model = profile.model();
        let mut t = Table::new(self.name(), self.paper_anchor());
        tline!(
            t,
            "Adaptive per-layer M (99% energy) vs fixed M = 6, ResNet18:"
        );
        tline!(t);
        tline!(
            t,
            "{:<20} {:>4} {:>6} {:>10} {:>10} {:>9} {:>9}",
            "Layer",
            "Mad",
            "Mfix",
            "bits(ad)",
            "bits(fix)",
            "err(ad)",
            "err(fix)"
        );
        let conv: Vec<_> = model
            .conv_layers()
            .filter(|l| l.is_decomposable() && l.c > 3)
            .collect();
        let n = conv.len();
        let mut total_ad = 0usize;
        let mut total_fix = 0usize;
        for (i, layer) in conv.iter().enumerate() {
            let w = synth::weights(layer, 6, 0.05, synth::layer_seed(42, i, 0));
            let target = profile.layer_coeff_sparsity(i, n);

            let quantize = |d: &escalate_core::Decomposed| -> Result<(usize, f32), ExpError> {
                let threshold = threshold_for_sparsity(&d.coeffs, target);
                let coeffs = TernaryCoeffs::ternarize(&d.coeffs, threshold)?;
                let basis = QuantizedBasis::quantize(&d.basis);
                let h = HybridQuantized { basis, coeffs };
                let bits = h.basis.size_bits() + ternary_storage_bits(&h.coeffs);
                let err = w.relative_error(&h.to_decomposed().reconstruct());
                Ok((bits, err))
            };

            let ad = decompose_adaptive(&w, 0.99)?;
            let fix = decompose(&w, 6.min(layer.r * layer.s))?;
            let (bits_ad, err_ad) = quantize(&ad)?;
            let (bits_fix, err_fix) = quantize(&fix)?;
            total_ad += bits_ad;
            total_fix += bits_fix;
            tline!(
                t,
                "{:<20} {:>4} {:>6} {:>10} {:>10} {:>9.3} {:>9.3}",
                layer.name,
                ad.m(),
                fix.m(),
                bits_ad,
                bits_fix,
                err_ad,
                err_fix
            );
            t.push_record(Record::new([
                ("layer", Cell::from(layer.name.clone())),
                ("m_adaptive", Cell::from(ad.m())),
                ("m_fixed", Cell::from(fix.m())),
                ("bits_adaptive", Cell::from(bits_ad)),
                ("bits_fixed", Cell::from(bits_fix)),
                ("err_adaptive", f64::from(err_ad).into()),
                ("err_fixed", f64::from(err_fix).into()),
            ]));
        }
        tline!(t);
        tline!(
            t,
            "total: adaptive {:.3} MB vs fixed {:.3} MB ({:+.1}%)",
            total_ad as f64 / 8.0 / 1048576.0,
            total_fix as f64 / 8.0 / 1048576.0,
            100.0 * (total_ad as f64 - total_fix as f64) / total_fix as f64
        );
        tline!(t);
        tline!(
            t,
            "Adaptive selection shrinks layers whose kernels are effectively low-rank;"
        );
        tline!(
            t,
            "the hardware cost is a per-layer reconfiguration of the CA-MAC mapping,"
        );
        tline!(t, "which the fixed-M design deliberately avoids (§6.1).");
        Ok(t)
    }
}
