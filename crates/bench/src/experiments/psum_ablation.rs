//! Ablation: partial-sum bank conflicts under the Basis-First scatter
//! (paper §4.1).
//!
//! The paper deliberately adds no conflict-avoidance hardware at the psum
//! buffer ("the output accumulation is not at the critical path ... we do
//! not attempt to reduce bank conflicts"). This study replays the MAC
//! rows' scatter pattern — `M` MACs each walking the `R·S` offsets of one
//! output position per service window — against banked psum buffers of
//! different widths and reports the serialization factor, confirming the
//! decision: even 4 banks keep the factor well under the slack the MAC
//! service time provides.

use super::{Cell, ExpContext, ExpError, Experiment, Record, Table};
use crate::tline;
use escalate_sim::psum::{scatter_addresses, PsumBanks};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Registry entry for the §4.1 psum bank-conflict study.
pub struct PsumAblation;

impl Experiment for PsumAblation {
    fn name(&self) -> &'static str {
        "psum_ablation"
    }

    fn paper_anchor(&self) -> &'static str {
        "§4.1"
    }

    fn summary(&self) -> &'static str {
        "psum bank-conflict factor under the Basis-First scatter"
    }

    fn run(&self, _ctx: &ExpContext) -> Result<Table, ExpError> {
        let m = 6usize; // MACs per slice
        let (r, s) = (3usize, 3usize);
        let out_width = 32usize; // output-row buffer width
        let positions = 2048usize;

        let mut t = Table::new(self.name(), self.paper_anchor());
        tline!(t, "Psum bank-conflict factor under the Basis-First scatter");
        tline!(
            t,
            "({m} MACs x {r}x{s} kernels, {out_width}-wide output rows, {positions} positions)"
        );
        tline!(t);
        tline!(
            t,
            "{:>6} {:>12} {:>12} {:>16}",
            "banks",
            "accesses",
            "cycles",
            "conflict factor"
        );
        for banks in [2usize, 4, 8, 16, 32] {
            let mut p = PsumBanks::new(banks, (r + 1) * out_width / banks + 1);
            let mut rng = StdRng::seed_from_u64(11);
            for _ in 0..positions {
                // Each MAC owns one intermediate element at a random column of
                // the row; per service cycle, the M MACs each write one of
                // their R·S scatter targets.
                let offsets: Vec<Vec<usize>> = (0..m)
                    .map(|_| {
                        let dy = rng.gen_range(0..out_width - s + 1);
                        scatter_addresses(0, dy, r, s, out_width)
                    })
                    .collect();
                // The MACs' service windows are phase-staggered (their CA
                // elements complete at different cycles), so MAC j walks its
                // scatter offsets shifted by j.
                for step in 0..r * s {
                    let group: Vec<(usize, f32)> = offsets
                        .iter()
                        .enumerate()
                        .filter_map(|(j, o)| o.get((step + j) % o.len()).map(|&a| (a, 1.0)))
                        .collect();
                    p.issue(&group);
                }
                let _ = p.drain();
            }
            let st = p.stats();
            tline!(
                t,
                "{:>6} {:>12} {:>12} {:>15.2}x",
                banks,
                st.accesses,
                st.cycles(),
                st.conflict_factor()
            );
            t.push_record(Record::new([
                ("banks", Cell::from(banks)),
                ("accesses", Cell::from(st.accesses)),
                ("cycles", Cell::from(st.cycles())),
                ("conflict_factor_x", st.conflict_factor().into()),
            ]));
        }
        tline!(t);
        tline!(
            t,
            "With a factor f, the psum stage needs f*R*S cycles per position against"
        );
        tline!(
            t,
            "the slice's max(CA, R*S) pace. Stream-bound layers (CA of 14-29 cycles on"
        );
        tline!(
            t,
            "the ImageNet models) absorb f up to ~2-3 for free, and the accumulation"
        );
        tline!(
            t,
            "sits behind a write queue rather than in the MAC issue path — the paper's"
        );
        tline!(
            t,
            "rationale for leaving the psum buffer unoptimized (4.1)."
        );
        Ok(t)
    }
}
