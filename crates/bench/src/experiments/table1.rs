//! **Table 1**: compression results of the ESCALATE algorithm on all six
//! evaluated models, next to the paper's reported numbers.
//!
//! Accuracy cannot be measured without a training stack; the "err" column
//! reports the parameter-weighted weight-space relative error of the
//! compressed model and "proxy top-1" applies the documented monotone
//! mapping (see EXPERIMENTS.md).

use super::{ExpContext, ExpError, Experiment, Record, Table};
use crate::tline;
use escalate_core::compress_model;
use escalate_core::pipeline::{accuracy_proxy, CompressionConfig};
use escalate_models::ModelProfile;

/// Registry entry for Table 1.
pub struct Table1;

impl Experiment for Table1 {
    fn name(&self) -> &'static str {
        "table1"
    }

    fn paper_anchor(&self) -> &'static str {
        "Table 1"
    }

    fn summary(&self) -> &'static str {
        "compression ratio / sparsity / pruning of all six models vs the paper"
    }

    fn run(&self, _ctx: &ExpContext) -> Result<Table, ExpError> {
        let cfg = CompressionConfig::default();
        let mut t = Table::new(self.name(), self.paper_anchor());
        tline!(
            t,
            "Table 1: ESCALATE compression results (M = {}, t from per-layer sparsity targets)",
            cfg.m
        );
        tline!(t);
        tline!(
            t,
            "{:<12} {:>9} {:>10} {:>10} {:>9} {:>9} {:>8} {:>8} {:>11} {:>11}",
            "Model",
            "CONV(MB)",
            "comp(MB)",
            "Comp.(x)",
            "Spar.(%)",
            "Prun.(%)",
            "err",
            "proxy",
            "paperComp",
            "paperSpar"
        );
        for profile in ModelProfile::all() {
            let model = profile.model();
            let result = compress_model(&profile, &cfg)?;
            let proxy = accuracy_proxy(profile.baseline_top1, result.mean_weight_error());
            tline!(
                t,
                "{:<12} {:>9.2} {:>10.3} {:>10.2} {:>9.2} {:>9.2} {:>8.3} {:>8.2} {:>11.2} {:>11.2}",
                profile.name,
                model.conv_size_mb_fp32(),
                result.compressed_size_mb(),
                result.compression_ratio(),
                result.coeff_sparsity() * 100.0,
                result.pruning_ratio() * 100.0,
                result.mean_weight_error(),
                proxy,
                profile.paper_compression,
                profile.coeff_sparsity * 100.0,
            );
            t.push_record(Record::new([
                ("model", super::Cell::from(profile.name)),
                ("conv_mb", model.conv_size_mb_fp32().into()),
                ("compressed_mb", result.compressed_size_mb().into()),
                ("compression_x", result.compression_ratio().into()),
                ("sparsity_pct", (result.coeff_sparsity() * 100.0).into()),
                ("pruning_pct", (result.pruning_ratio() * 100.0).into()),
                ("weight_error", result.mean_weight_error().into()),
                ("proxy_top1", proxy.into()),
                ("paper_compression_x", profile.paper_compression.into()),
                (
                    "paper_sparsity_pct",
                    (profile.coeff_sparsity * 100.0).into(),
                ),
            ]));
        }
        tline!(t);
        tline!(
            t,
            "paperComp/paperSpar: the paper's Table 1 'Ours' rows for comparison."
        );
        Ok(t)
    }
}
