//! The §6.3 discussion data point: on a sparse-aware accelerator, a large
//! redundant model (sparse VGG16) can outrun a modern compact model
//! (sparse MobileNetV2) at similar accuracy — the paper measures sparse
//! VGG16 as 1.5× faster than sparse MobileNetV2.

use super::{Cell, ExpContext, ExpError, Experiment, Record, Table};
use crate::{compress_cached, run_escalate, tline};
use escalate_core::pipeline::{accuracy_proxy, CompressionConfig};
use escalate_core::ModelCompression;
use escalate_models::ModelProfile;

/// Registry entry for the §6.3 compact-vs-redundant comparison.
pub struct Discussion;

impl Experiment for Discussion {
    fn name(&self) -> &'static str {
        "discussion"
    }

    fn paper_anchor(&self) -> &'static str {
        "§6.3"
    }

    fn summary(&self) -> &'static str {
        "redundant-but-sparse VGG16 vs compact MobileNetV2 on ESCALATE"
    }

    fn run(&self, ctx: &ExpContext) -> Result<Table, ExpError> {
        let cfg = &ctx.sim;
        let mut t = Table::new(self.name(), self.paper_anchor());
        tline!(
            t,
            "Section 6.3: redundant-but-sparse vs compact models on ESCALATE"
        );
        tline!(t);
        tline!(
            t,
            "{:<12} {:>10} {:>12} {:>12} {:>12} {:>11}",
            "Model",
            "dense MB",
            "comp. MB",
            "latency(ms)",
            "energy(mJ)",
            "proxy top-1"
        );
        let mut latencies = Vec::new();
        for name in ["VGG16", "MobileNetV2"] {
            let profile = ModelProfile::for_model(name).expect("known model");
            let artifacts = compress_cached(&profile, &CompressionConfig::default())?;
            let stats = ModelCompression {
                model_name: name.to_string(),
                layers: artifacts.iter().map(|a| a.stats.clone()).collect(),
            };
            let run = run_escalate(&profile, &artifacts, cfg, 5);
            let latency = run.cycles / (cfg.frequency_mhz * 1e3);
            let proxy = accuracy_proxy(profile.baseline_top1, stats.mean_weight_error());
            tline!(
                t,
                "{:<12} {:>10.2} {:>12.3} {:>12.4} {:>12.3} {:>11.2}",
                name,
                profile.model().conv_size_mb_fp32(),
                stats.compressed_size_mb(),
                latency,
                run.energy_pj * 1e-9,
                proxy,
            );
            t.push_record(Record::new([
                ("model", Cell::from(name)),
                ("dense_mb", profile.model().conv_size_mb_fp32().into()),
                ("compressed_mb", stats.compressed_size_mb().into()),
                ("latency_ms", latency.into()),
                ("energy_mj", (run.energy_pj * 1e-9).into()),
                ("proxy_top1", proxy.into()),
            ]));
            latencies.push(latency);
        }
        tline!(t);
        tline!(
            t,
            "sparse VGG16 is {:.2}x {} than sparse MobileNetV2 (paper: 1.5x faster at a",
            (latencies[1] / latencies[0]).max(latencies[0] / latencies[1]),
            if latencies[0] < latencies[1] {
                "faster"
            } else {
                "slower"
            },
        );
        tline!(
            t,
            "0.5%-accuracy gap). Compact models are designed for dense edge processors"
        );
        tline!(
            t,
            "and leave little sparsity for a sparse-aware accelerator to harvest (§6.3)."
        );
        Ok(t)
    }
}
