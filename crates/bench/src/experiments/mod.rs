//! The declarative experiment registry.
//!
//! Every table, figure and ablation of the evaluation is one
//! [`Experiment`]: a named, paper-anchored producer of a [`Table`]. The
//! [`registry`] lists all of them; the `report` runner (and the
//! `escalate report` CLI subcommand) drive the registry to print, export
//! (JSON), regenerate (`--update`) or regression-check (`--check`) the
//! golden corpus under `results/`. The historical standalone binaries
//! (`fig8`, `table1`, …) survive as thin wrappers over [`run_bin`].

mod context;
mod runner;
mod table;

mod adaptive_m;
mod bench_sim;
mod buffer_ablation;
mod ca_ablation;
mod discussion;
mod encoding_sweep;
mod fig10;
mod fig10_layers;
mod fig11;
mod fig12;
mod fig13;
mod fig7;
mod fig8;
mod fig9;
mod psum_ablation;
mod reorg_ablation;
mod rs_mapping;
mod schedule;
mod sensitivity;
mod table1;
mod table4;

pub use context::ExpContext;
pub use runner::{report_main, run_report, ReportOptions};
pub use table::{Cell, Record, Table, REPORT_SCHEMA};

use escalate_core::EscalateError;

/// An experiment failure: the pipeline failed, an argument was invalid,
/// or an output file could not be written.
#[derive(Debug)]
pub enum ExpError {
    /// Compression/simulation failure.
    Pipeline(EscalateError),
    /// Invalid argument or experiment-level failure, with a user-facing
    /// message.
    Msg(String),
    /// Filesystem failure (golden corpus / output directory).
    Io(std::io::Error),
}

impl std::fmt::Display for ExpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExpError::Pipeline(e) => write!(f, "{e}"),
            ExpError::Msg(m) => write!(f, "{m}"),
            ExpError::Io(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ExpError {}

impl From<EscalateError> for ExpError {
    fn from(e: EscalateError) -> Self {
        ExpError::Pipeline(e)
    }
}

impl From<std::io::Error> for ExpError {
    fn from(e: std::io::Error) -> Self {
        ExpError::Io(e)
    }
}

/// One registered experiment: a named producer of a [`Table`].
pub trait Experiment: Sync {
    /// Registry name — also the binary name and the `results/<name>.txt`
    /// golden file stem.
    fn name(&self) -> &'static str;

    /// Where in the paper the output belongs (`"Figure 8"`, `"§6.3"`, …).
    fn paper_anchor(&self) -> &'static str;

    /// One-line description for `report --list`.
    fn summary(&self) -> &'static str;

    /// Whether the output is deterministic and golden-checked.
    /// Experiments that print wall-clock measurements (`reorg_ablation`,
    /// `bench_sim`) opt out: `--check`/`--update` skip them.
    fn golden(&self) -> bool {
        true
    }

    /// Runs the experiment under `ctx`, producing its output table.
    ///
    /// # Errors
    ///
    /// Returns an [`ExpError`] on pipeline failures or invalid arguments.
    fn run(&self, ctx: &ExpContext) -> Result<Table, ExpError>;
}

/// All registered experiments, in the presentation order of the paper's
/// evaluation (tables, figures, then the ablation/extension studies).
pub fn registry() -> &'static [&'static dyn Experiment] {
    &[
        &table1::Table1,
        &fig7::Fig7,
        &table4::Table4,
        &fig8::Fig8,
        &fig9::Fig9,
        &fig10::Fig10,
        &fig10_layers::Fig10Layers,
        &fig11::Fig11,
        &fig12::Fig12,
        &fig13::Fig13,
        &sensitivity::Sensitivity,
        &discussion::Discussion,
        &adaptive_m::AdaptiveM,
        &buffer_ablation::BufferAblation,
        &ca_ablation::CaAblation,
        &encoding_sweep::EncodingSweep,
        &psum_ablation::PsumAblation,
        &reorg_ablation::ReorgAblation,
        &rs_mapping::RsMapping,
        &schedule::ScheduleCompare,
        &bench_sim::BenchSim,
    ]
}

/// Looks an experiment up by registry name.
pub fn find(name: &str) -> Option<&'static dyn Experiment> {
    registry().iter().copied().find(|e| e.name() == name)
}

/// Entry point of the thin standalone wrappers: runs the named experiment
/// with default context plus the process's positional arguments, prints
/// its text, and maps failures to a nonzero exit.
pub fn run_bin(name: &str) -> std::process::ExitCode {
    let exp = find(name).unwrap_or_else(|| panic!("experiment {name:?} is not registered"));
    let ctx = ExpContext {
        args: std::env::args().skip(1).collect(),
        ..ExpContext::default()
    };
    match exp.run(&ctx) {
        Ok(table) => {
            print!("{}", table.render_text());
            std::process::ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {name}: {e}");
            std::process::ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_complete() {
        let names: Vec<&str> = registry().iter().map(|e| e.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "duplicate registry names");
        assert_eq!(names.len(), 21, "all 21 experiments must be registered");
        for required in ["table1", "table4", "fig8", "bench_sim"] {
            assert!(names.contains(&required), "{required} missing");
        }
    }

    #[test]
    fn find_resolves_names() {
        assert_eq!(find("fig8").map(|e| e.name()), Some("fig8"));
        assert!(find("fig99").is_none());
    }

    #[test]
    fn non_deterministic_experiments_opt_out_of_golden() {
        for e in registry() {
            let timed = matches!(e.name(), "reorg_ablation" | "bench_sim");
            assert_eq!(
                e.golden(),
                !timed,
                "{}: golden flag disagrees with its determinism",
                e.name()
            );
        }
    }

    #[test]
    fn every_experiment_names_a_paper_anchor_and_summary() {
        for e in registry() {
            assert!(!e.paper_anchor().is_empty(), "{}", e.name());
            assert!(!e.summary().is_empty(), "{}", e.name());
        }
    }
}
