//! **Schedule study**: layer-pipelined vs layer-serial execution of
//! ESCALATE across the model zoo. Work-proportional PE partitioning is
//! throughput-neutral in cycles (the slowest stage can never undercut
//! the serial sum), so the interesting outputs are the latency/stall
//! cost of the partition and the steady-state DRAM saved by pinning
//! every stage's weights on chip.

use super::{Cell, ExpContext, ExpError, Experiment, Record, Table};
use crate::{geomean, ratio, tline, workload_cached};
use escalate_core::pipeline::CompressionConfig;
use escalate_models::ModelProfile;
use escalate_sim::ScheduleKind;

/// Registry entry for the pipelined-vs-serial schedule comparison.
pub struct ScheduleCompare;

impl Experiment for ScheduleCompare {
    fn name(&self) -> &'static str {
        "schedule_compare"
    }

    fn paper_anchor(&self) -> &'static str {
        "§4.1 (dataflow), extension"
    }

    fn summary(&self) -> &'static str {
        "layer-pipelined vs layer-serial ESCALATE schedule, all six models"
    }

    fn run(&self, ctx: &ExpContext) -> Result<Table, ExpError> {
        let mut t = Table::new(self.name(), self.paper_anchor());
        tline!(
            t,
            "Schedule comparison: layer-serial fold vs layer-pipelined stages"
        );
        tline!(
            t,
            "(PEs partitioned across stages by work; interval = slowest stage;"
        );
        tline!(
            t,
            " stage weights stay pinned on chip; oversized handoffs spill to DRAM)"
        );
        tline!(t);
        tline!(
            t,
            "{:<12} {:>12} {:>7} {:>12} {:>8} {:>6} {:>10} {:>10} {:>8}",
            "Model",
            "serial cyc",
            "stages",
            "interval",
            "stall%",
            "spill",
            "ser MB/inf",
            "pip MB/inf",
            "DRAM x"
        );
        tline!(t, "{}", "-".repeat(92));
        let mut dram_gains = Vec::new();
        let mut interval_costs = Vec::new();
        for profile in ModelProfile::all() {
            let workload = workload_cached(
                &profile,
                &CompressionConfig {
                    m: ctx.sim.m,
                    ..CompressionConfig::default()
                },
            )?;
            let run_with = |schedule: ScheduleKind| {
                let mut cfg = ctx.sim;
                cfg.schedule = schedule;
                crate::run_escalate_workload(&workload, &cfg, ctx.seeds)
            };
            let serial = run_with(ScheduleKind::LayerSerial);
            let pipelined = run_with(ScheduleKind::Pipelined);
            let stats = &pipelined.first_seed_stats;
            let p = stats.pipeline.as_ref().ok_or_else(|| {
                ExpError::Msg(format!(
                    "{}: pipelined run carried no pipeline stats",
                    profile.name
                ))
            })?;
            let serial_cycles = serial.first_seed_stats.total_cycles();
            // Steady-state DRAM per inference: serial refetches every
            // layer's weights; pipelined pins them per stage and instead
            // pays the write + re-read for each spilled handoff.
            let dram = stats.total_dram();
            let serial_dram = dram.total();
            let pipe_dram = dram.ifm + dram.ofm + 2 * p.spilled_bytes;
            let dram_gain = serial_dram as f64 / pipe_dram.max(1) as f64;
            let interval_cost = p.interval_cycles as f64 / serial_cycles.max(1) as f64;
            let stall_pct =
                100.0 * p.stall_cycles as f64 / (p.stages as u64 * p.interval_cycles).max(1) as f64;
            dram_gains.push(dram_gain);
            interval_costs.push(interval_cost);
            tline!(
                t,
                "{:<12} {:>12} {:>7} {:>12} {:>7.1}% {:>6} {:>10.2} {:>10.2} {:>7}",
                profile.name,
                serial_cycles,
                p.stages,
                p.interval_cycles,
                stall_pct,
                p.spilled_boundaries,
                serial_dram as f64 / 1e6,
                pipe_dram as f64 / 1e6,
                ratio(dram_gain)
            );
            t.push_record(Record::new([
                ("model", Cell::from(profile.name.as_str())),
                ("serial_cycles", serial_cycles.into()),
                ("stages", p.stages.into()),
                ("interval_cycles", p.interval_cycles.into()),
                ("latency_cycles", p.latency_cycles.into()),
                ("stall_cycles", p.stall_cycles.into()),
                ("spilled_boundaries", p.spilled_boundaries.into()),
                ("peak_buffer_bytes", p.peak_buffer_bytes.into()),
                ("serial_dram_bytes", serial_dram.into()),
                ("pipelined_dram_bytes", pipe_dram.into()),
                ("dram_gain", dram_gain.into()),
                ("interval_cost", interval_cost.into()),
            ]));
        }
        tline!(t, "{}", "-".repeat(92));
        tline!(
            t,
            "geomean: steady-state DRAM {} lower, interval {} of the serial sum",
            ratio(geomean(&dram_gains)),
            ratio(geomean(&interval_costs))
        );
        tline!(t);
        tline!(
            t,
            "Work-conserving partitioning cannot beat the serial sum per inference;"
        );
        tline!(
            t,
            "the win is weight traffic: every stage's weights load once and stay"
        );
        tline!(
            t,
            "resident, so batched inference stops paying the per-image refetch."
        );
        Ok(t)
    }
}
