//! Ablation: distributed reference-counted input buffers vs a unified
//! buffer (paper §4.3).
//!
//! Replays a Basis-First access trace (asynchronously progressing PE
//! slices reading the same activation chunks, skewed in time) against
//! (a) the ref-counted circular buffer, where a chunk is fetched once and
//! held until its last consumer reads it (fast slices stall when the
//! buffer fills), and (b) a unified FIFO buffer of the same capacity
//! without reference counts, which re-fetches chunks evicted before slow
//! slices caught up. DRAM fetches are the §4.3 cost; stalls are the price
//! the ref-counted design pays instead.

use super::{Cell, ExpContext, ExpError, Experiment, Record, Table};
use crate::tline;
use escalate_sim::buffers::InputBuffer;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, VecDeque};

/// A unified FIFO buffer without reference counting.
struct UnifiedFifo {
    capacity: u32,
    used: u32,
    resident: VecDeque<(u64, u32)>,
    fetches: u64,
}

impl UnifiedFifo {
    fn new(capacity: u32) -> Self {
        UnifiedFifo {
            capacity,
            used: 0,
            resident: VecDeque::new(),
            fetches: 0,
        }
    }

    fn read(&mut self, id: u64, bytes: u32) {
        if self.resident.iter().any(|&(rid, _)| rid == id) {
            return;
        }
        while self.used + bytes > self.capacity {
            let (_, b) = self
                .resident
                .pop_front()
                .expect("chunk larger than capacity");
            self.used -= b;
        }
        self.resident.push_back((id, bytes));
        self.used += bytes;
        self.fetches += 1;
    }
}

/// Registry entry for the §4.3 input-buffer ablation.
pub struct BufferAblation;

impl Experiment for BufferAblation {
    fn name(&self) -> &'static str {
        "buffer_ablation"
    }

    fn paper_anchor(&self) -> &'static str {
        "§4.3"
    }

    fn summary(&self) -> &'static str {
        "ref-counted distributed input buffers vs a unified FIFO"
    }

    fn run(&self, _ctx: &ExpContext) -> Result<Table, ExpError> {
        let chunks = 4096u64;
        let slices = 32u32;
        let chunk_bytes = 64u32;
        let mut rng = StdRng::seed_from_u64(42);

        let mut t = Table::new(self.name(), self.paper_anchor());
        tline!(
            t,
            "Serving one layer's trace ({chunks} chunks x {slices} skewed consumers)"
        );
        tline!(t);
        tline!(
            t,
            "{:>6} {:>10} | {:>12} {:>8} | {:>12} {:>9}",
            "skew",
            "capacity",
            "dist fetch",
            "stalls",
            "unif fetch",
            "extra DRAM"
        );
        for (skew, cap_chunks) in [(8u64, 16u32), (32, 16), (64, 32), (256, 64)] {
            // Per-slice lag: slice s starts reading chunk 0 at time lag[s].
            let lags: Vec<u64> = (0..slices).map(|_| rng.gen_range(0..=skew)).collect();

            // Distributed ref-counted buffer.
            let mut dist = InputBuffer::new(cap_chunks * chunk_bytes);
            let mut id_map: HashMap<u64, u64> = HashMap::new();
            let mut next_fetch = 0u64;
            let mut cursors = vec![0u64; slices as usize];
            let mut stalls = 0u64;
            let mut done = 0usize;
            let mut time = 0u64;
            while done < slices as usize {
                time += 1;
                done = 0;
                // Prefetch as far as capacity allows.
                while next_fetch < chunks {
                    match dist.push(chunk_bytes, slices) {
                        Some(buf_id) => {
                            id_map.insert(next_fetch, buf_id);
                            next_fetch += 1;
                        }
                        None => break,
                    }
                }
                for (s, cur) in cursors.iter_mut().enumerate() {
                    if *cur >= chunks {
                        done += 1;
                        continue;
                    }
                    if *cur + lags[s] >= time {
                        continue; // this slice has not started yet
                    }
                    if let Some(&buf_id) = id_map.get(cur) {
                        let served = dist.request(buf_id);
                        debug_assert!(served, "resident chunk must serve");
                        *cur += 1;
                    } else {
                        stalls += 1; // waiting for the producer (buffer full)
                    }
                }
            }
            let dist_fetches = dist.stats().pushes;

            // Unified FIFO: same trace, no coordination.
            let mut uni = UnifiedFifo::new(cap_chunks * chunk_bytes);
            let mut cursors = vec![0u64; slices as usize];
            let mut done = 0usize;
            let mut time = 0u64;
            while done < slices as usize {
                time += 1;
                done = 0;
                for (s, cur) in cursors.iter_mut().enumerate() {
                    if *cur >= chunks {
                        done += 1;
                        continue;
                    }
                    if *cur + lags[s] >= time {
                        continue;
                    }
                    uni.read(*cur, chunk_bytes);
                    *cur += 1;
                }
            }

            tline!(
                t,
                "{:>6} {:>9}B | {:>12} {:>8} | {:>12} {:>8.1}x",
                skew,
                cap_chunks * chunk_bytes,
                dist_fetches,
                stalls,
                uni.fetches,
                uni.fetches as f64 / dist_fetches as f64,
            );
            t.push_record(Record::new([
                ("skew", Cell::from(skew)),
                (
                    "capacity_bytes",
                    Cell::from(u64::from(cap_chunks * chunk_bytes)),
                ),
                ("distributed_fetches", Cell::from(dist_fetches)),
                ("stalls", Cell::from(stalls)),
                ("unified_fetches", Cell::from(uni.fetches)),
                (
                    "extra_dram_x",
                    (uni.fetches as f64 / dist_fetches as f64).into(),
                ),
            ]));
        }
        tline!(t);
        tline!(
            t,
            "The ref-counted circular queue fetches each chunk exactly once, stalling"
        );
        tline!(
            t,
            "fast slices when the skew exceeds the buffered window; the unified FIFO"
        );
        tline!(
            t,
            "re-fetches evicted chunks for the laggards, multiplying DRAM traffic."
        );
        Ok(t)
    }
}
