//! Emits `BENCH_sim.json`: wall-clock of the full MobileNet
//! four-accelerator grid (ESCALATE + Eyeriss + SCNN + SparTen over the
//! configured input seeds), once forced sequential (`threads = 1`) and
//! once on the full thread pool, plus the resulting speedup. The two runs
//! are asserted bit-identical before anything is written, so the file also
//! certifies the determinism contract of the parallel harness.
//!
//! The record also carries the host context that makes trajectory entries
//! from different machines comparable (`host_cores`, `git_rev`) and a
//! `kernel` section timing the Dilution-Concentration position walk —
//! scalar reference vs the word-parallel `PositionKernel`, one position
//! at a time and batched — plus the layer-plan compile/reuse counters of
//! an instrumented whole-grid run and the activation-mask repeat rate
//! that sealed the old memo's fate (exact-key hits need repeated masks;
//! Bernoulli multi-word masks essentially never repeat, hence the
//! measured 0.0000 hit rate and the memo's removal in favor of compiled
//! plans).
//!
//! A timing benchmark, so this experiment is **not** golden-checked
//! (`Experiment::golden` is `false`). The output path defaults to
//! `BENCH_sim.json` and can be overridden with the first positional arg.

use super::{Cell, ExpContext, ExpError, Experiment, Record, Table};
use crate::tline;
use crate::{run_model, ModelRun};
use escalate_models::ModelProfile;
use escalate_sim::ca::{position_cost_scalar, CaScratch, PositionKernel, MAX_BATCH};
use escalate_sim::{PositionCost, SimConfig};
use std::time::Instant;

/// Errors unless the two grids produced bit-identical results.
fn assert_identical(seq: &ModelRun, par: &ModelRun) -> Result<(), ExpError> {
    for (s, p) in [
        (&seq.escalate, &par.escalate),
        (&seq.eyeriss, &par.eyeriss),
        (&seq.scnn, &par.scnn),
        (&seq.sparten, &par.sparten),
    ] {
        if s.first_seed_stats != p.first_seed_stats {
            return Err(ExpError::Msg(format!(
                "{}: per-layer stats diverged",
                s.name
            )));
        }
        if !(s.cycles == p.cycles && s.dram_bytes == p.dram_bytes && s.energy_pj == p.energy_pj) {
            return Err(ExpError::Msg(format!(
                "{}: seed averages diverged between sequential and parallel runs",
                s.name
            )));
        }
    }
    Ok(())
}

/// Best-effort short commit hash of the working tree, `"unknown"` outside
/// a git checkout.
fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into())
}

/// Deterministic splitmix64 — mask material without RNG dependencies.
fn splitmix(seed: &mut u64) -> u64 {
    *seed = seed.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *seed;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

fn mask(seed: &mut u64, c: usize, keep_per_mille: u64) -> Vec<u64> {
    let words = c.div_ceil(64);
    let mut v: Vec<u64> = (0..words)
        .map(|_| {
            let mut w = 0u64;
            for b in 0..64 {
                if splitmix(seed) % 1000 < keep_per_mille {
                    w |= 1 << b;
                }
            }
            w
        })
        .collect();
    let tail = c - (words - 1) * 64;
    if tail < 64 {
        *v.last_mut().expect("words >= 1") &= (1u64 << tail) - 1;
    }
    v
}

/// Positions per second of the scalar path, the one-position-at-a-time
/// kernel, and the batched kernel (`cost_batch`, the production walk) on
/// a dense-activation / sparse-coefficient MobileNet-shaped channel
/// (`C = 256`, ~95% sparse coefficients, ~90% dense activations).
fn time_kernel(cfg: &SimConfig) -> Result<(f64, f64, f64), ExpError> {
    const C: usize = 256;
    const POSITIONS: usize = 48;
    let words = C.div_ceil(64);
    let mut seed = 0x5eed_c0de_u64;
    let coef: Vec<Vec<u64>> = (0..cfg.m).map(|_| mask(&mut seed, C, 50)).collect();
    let refs: Vec<&[u64]> = coef.iter().map(Vec::as_slice).collect();
    let acts: Vec<Vec<u64>> = (0..POSITIONS).map(|_| mask(&mut seed, C, 900)).collect();
    let acts_flat: Vec<u64> = acts.iter().flatten().copied().collect();

    let mut scratch = CaScratch::new(cfg);
    let mut kernel = PositionKernel::new(cfg);
    let mut costs = vec![PositionCost::default(); MAX_BATCH];

    // Equality before timing, and warm-up for every path.
    kernel.bind(C, refs.iter().copied());
    for (p, act) in acts.iter().enumerate() {
        let scalar = position_cost_scalar(cfg, C, act, &refs, &mut scratch);
        if kernel.cost(act) != scalar {
            return Err(ExpError::Msg(
                "kernel diverged from the scalar reference".into(),
            ));
        }
        let (chunk, off) = (p / MAX_BATCH, p % MAX_BATCH);
        let n = MAX_BATCH.min(POSITIONS - chunk * MAX_BATCH);
        kernel.cost_batch(
            &acts_flat[chunk * MAX_BATCH * words..(chunk * MAX_BATCH + n) * words],
            n,
            &mut costs,
        );
        if costs[off] != scalar {
            return Err(ExpError::Msg(
                "batched kernel diverged from the scalar reference".into(),
            ));
        }
    }

    // Best-of-three measurement rounds per path: positions/s from the
    // fastest round, which is the least scheduler-perturbed one.
    const ROUNDS: usize = 200;
    const TRIES: usize = 3;
    let mut sink = 0u64;
    let best = |elapsed: &mut f64, t: Instant| {
        *elapsed = elapsed.min(t.elapsed().as_secs_f64()).max(1e-12);
    };

    let mut scalar_s = f64::INFINITY;
    for _ in 0..TRIES {
        let t = Instant::now();
        for _ in 0..ROUNDS {
            for act in &acts {
                sink += position_cost_scalar(cfg, C, act, &refs, &mut scratch).ca_cycles;
            }
        }
        best(&mut scalar_s, t);
    }

    let mut single_s = f64::INFINITY;
    for _ in 0..TRIES {
        let t = Instant::now();
        for _ in 0..ROUNDS {
            kernel.bind(C, refs.iter().copied());
            for act in &acts {
                sink += kernel.cost(act).ca_cycles;
            }
        }
        best(&mut single_s, t);
    }

    let mut batched_s = f64::INFINITY;
    for _ in 0..TRIES {
        let t = Instant::now();
        for _ in 0..ROUNDS {
            kernel.bind(C, refs.iter().copied());
            let mut p = 0usize;
            while p < POSITIONS {
                let n = MAX_BATCH.min(POSITIONS - p);
                kernel.cost_batch(&acts_flat[p * words..(p + n) * words], n, &mut costs);
                for cost in &costs[..n] {
                    sink += cost.ca_cycles;
                }
                p += n;
            }
        }
        best(&mut batched_s, t);
    }
    std::hint::black_box(sink);

    let walked = (ROUNDS * POSITIONS) as f64;
    Ok((walked / scalar_s, walked / single_s, walked / batched_s))
}

/// Fraction of activation masks repeating an earlier draw in a stream of
/// `draws` — the diagnosis behind the memo's removal: an exact-key memo
/// (the only keying the bit-identity contract allows) can only hit on
/// repeats, and at `C = 256`/90% density the space of masks is so large
/// that repeats essentially never happen.
fn mask_repeat_rate(c: usize, keep_per_mille: u64, draws: usize) -> f64 {
    let mut seed = 0xd1a6_005e_u64;
    let mut seen = std::collections::HashSet::with_capacity(draws);
    let mut repeats = 0usize;
    for _ in 0..draws {
        if !seen.insert(mask(&mut seed, c, keep_per_mille)) {
            repeats += 1;
        }
    }
    repeats as f64 / draws.max(1) as f64
}

/// Registry entry for the harness wall-clock benchmark record.
pub struct BenchSim;

impl Experiment for BenchSim {
    fn name(&self) -> &'static str {
        "bench_sim"
    }

    fn paper_anchor(&self) -> &'static str {
        "harness"
    }

    fn summary(&self) -> &'static str {
        "BENCH_sim.json wall-clock + determinism certification record"
    }

    fn golden(&self) -> bool {
        false // wall-clock benchmark; output is host-dependent
    }

    fn run(&self, ctx: &ExpContext) -> Result<Table, ExpError> {
        let out_path = ctx.arg_or("BENCH_sim.json").to_string();
        // Build the global pool at full width up front: the first configuration
        // wins for the whole process, and the sequential grid (which only uses
        // `threads == 1` fast paths) must not pin the pool to one thread.
        let threads = escalate_core::par::configure_threads(0);
        let host_cores = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        let seeds = ctx.seeds;
        let profile = ModelProfile::for_model("MobileNet").expect("known model");

        let sequential_cfg = SimConfig {
            threads: 1,
            ..SimConfig::default()
        };
        let parallel_cfg = SimConfig::default();

        // Warm the artifact cache so both timings measure simulation, not the
        // shared one-off compression.
        let warm = Instant::now();
        run_model(&profile, &sequential_cfg, 1)?;
        let warmup_s = warm.elapsed().as_secs_f64();

        let t0 = Instant::now();
        let seq = run_model(&profile, &sequential_cfg, seeds)?;
        let sequential_s = t0.elapsed().as_secs_f64();

        let t0 = Instant::now();
        let par = run_model(&profile, &parallel_cfg, seeds)?;
        let parallel_s = t0.elapsed().as_secs_f64();

        assert_identical(&seq, &par)?;
        let speedup = sequential_s / parallel_s;

        // Kernel microbenchmark: the position walk itself — scalar,
        // one-position kernel, batched kernel — outside the harness so
        // the numbers isolate the per-position cost model.
        let (scalar_pps, single_pps, batched_pps) = time_kernel(&parallel_cfg)?;
        let kernel_speedup = batched_pps / scalar_pps.max(1e-12);

        // Layer-plan counters of a real (untimed) grid run, via the
        // observability layer. An installed recorder is
        // bit-non-perturbing, but it is kept out of the timed runs above
        // anyway.
        let registry = std::sync::Arc::new(escalate_obs::Registry::new());
        escalate_obs::install(std::sync::Arc::clone(&registry));
        let instrumented = run_model(&profile, &parallel_cfg, seeds);
        escalate_obs::uninstall();
        assert_identical(&seq, &instrumented?)?;
        let plan_compiles = registry.counter("ca.plan_compiles");
        let plan_reuses = registry.counter("ca.plan_reuses");
        // The number that decided the memo verdict, recorded alongside the
        // counters that replaced it.
        let repeat_rate = mask_repeat_rate(256, 900, 10_000);

        let json = format!(
            "{{\n  \"benchmark\": \"mobilenet_four_accelerator_grid\",\n  \"model\": \"MobileNet\",\n  \"accelerators\": [\"ESCALATE\", \"Eyeriss\", \"SCNN\", \"SparTen\"],\n  \"seeds\": {seeds},\n  \"threads\": {threads},\n  \"host_cores\": {host_cores},\n  \"git_rev\": \"{git_rev}\",\n  \"compression_warmup_s\": {warmup_s:.4},\n  \"sequential_s\": {sequential_s:.4},\n  \"parallel_s\": {parallel_s:.4},\n  \"speedup\": {speedup:.2},\n  \"bit_identical\": true,\n  \"kernel\": {{\n    \"shape\": \"c256_m6_coef95_act90\",\n    \"positions_per_sec_scalar\": {scalar_pps:.0},\n    \"positions_per_sec_word_parallel\": {single_pps:.0},\n    \"positions_per_sec_batched\": {batched_pps:.0},\n    \"speedup\": {kernel_speedup:.2},\n    \"plan_compiles\": {plan_compiles},\n    \"plan_reuses\": {plan_reuses},\n    \"memo\": \"removed: exact-key hit rate measured 0.0000 on the real grid\",\n    \"mask_repeat_rate\": {repeat_rate:.4}\n  }}\n}}\n",
            git_rev = git_rev(),
        );
        std::fs::write(&out_path, &json)?;

        let mut t = Table::new(self.name(), self.paper_anchor());
        tline!(t, "{json}");
        tline!(
            t,
            "wrote {out_path} ({threads} threads, {speedup:.2}x over sequential, batched kernel {kernel_speedup:.2}x over scalar, {plan_compiles} plan compiles / {plan_reuses} reuses)"
        );
        t.push_record(Record::new([
            ("out_path", Cell::from(out_path)),
            ("seeds", Cell::from(seeds)),
            ("threads", Cell::from(threads)),
            ("host_cores", Cell::from(host_cores)),
            ("sequential_s", sequential_s.into()),
            ("parallel_s", parallel_s.into()),
            ("speedup_x", speedup.into()),
            ("bit_identical", true.into()),
            ("kernel_speedup_x", kernel_speedup.into()),
            ("plan_compiles", Cell::from(plan_compiles)),
            ("plan_reuses", Cell::from(plan_reuses)),
            ("mask_repeat_rate", repeat_rate.into()),
        ]));
        Ok(t)
    }
}
