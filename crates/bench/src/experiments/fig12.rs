//! **Figure 12**: the accuracy / latency / energy trade-off as the number
//! of basis kernels `M` varies, with `l` shrunk to keep the multiplier
//! budget constant (ResNet18 and ResNet50).

use super::{Cell, ExpContext, ExpError, Experiment, Record, Table};
use crate::{compress_cached, run_escalate, tline};
use escalate_core::pipeline::{accuracy_proxy, CompressionConfig};
use escalate_core::ModelCompression;
use escalate_models::ModelProfile;
use escalate_sim::SimConfig;

/// Registry entry for Figure 12.
pub struct Fig12;

impl Experiment for Fig12 {
    fn name(&self) -> &'static str {
        "fig12"
    }

    fn paper_anchor(&self) -> &'static str {
        "Figure 12"
    }

    fn summary(&self) -> &'static str {
        "accuracy/latency/energy trade-off vs M at a fixed MAC budget"
    }

    fn run(&self, _ctx: &ExpContext) -> Result<Table, ExpError> {
        let mut t = Table::new(self.name(), self.paper_anchor());
        tline!(
            t,
            "Figure 12: accuracy and latency/energy trade-off vs M (l keeps MAC budget)"
        );
        for model in ["ResNet18", "ResNet50"] {
            let profile = ModelProfile::for_model(model).expect("known model");
            tline!(t);
            tline!(t, "{model}:");
            tline!(
                t,
                "{:<4} {:<4} {:>12} {:>12} {:>12} {:>11}",
                "M",
                "l",
                "proxy top-1",
                "latency(ms)",
                "energy(mJ)",
                "comp(x)"
            );
            for m in 4..=8usize {
                let sim_cfg = SimConfig::default().with_m(m);
                let cfg = CompressionConfig {
                    m,
                    ..CompressionConfig::default()
                };
                let artifacts = compress_cached(&profile, &cfg)?;
                let stats = ModelCompression {
                    model_name: model.to_string(),
                    layers: artifacts.iter().map(|a| a.stats.clone()).collect(),
                };
                let run = run_escalate(&profile, &artifacts, &sim_cfg, 3);
                let proxy = accuracy_proxy(profile.baseline_top1, stats.mean_weight_error());
                let latency_ms = run.cycles / (sim_cfg.frequency_mhz * 1e3);
                let energy_mj = run.energy_pj * 1e-9;
                tline!(
                    t,
                    "{:<4} {:<4} {:>12.2} {:>12.3} {:>12.3} {:>11.1}",
                    m,
                    sim_cfg.l,
                    proxy,
                    latency_ms,
                    energy_mj,
                    stats.compression_ratio(),
                );
                t.push_record(Record::new([
                    ("model", Cell::from(model)),
                    ("m", Cell::from(m)),
                    ("l", Cell::from(sim_cfg.l)),
                    ("proxy_top1", proxy.into()),
                    ("latency_ms", latency_ms.into()),
                    ("energy_mj", energy_mj.into()),
                    ("compression_x", stats.compression_ratio().into()),
                ]));
            }
        }
        tline!(t);
        tline!(
            t,
            "Expected shape (paper): accuracy rises with M; a larger M shrinks l (row"
        );
        tline!(
            t,
            "parallelism), increasing latency; energy changes little, dominated by the"
        );
        tline!(
            t,
            "off-chip-access change from the l-dependent input buffering."
        );
        Ok(t)
    }
}
