//! Ablation: sparse-encoding storage cost across the sparsity range
//! (paper §4.2.1's argument for SparseMap over CSR-style indices, and for
//! the 2-level variant at extreme sparsity).

use super::{Cell, ExpContext, ExpError, Experiment, Record, Table};
use crate::tline;
use escalate_sparse::csr::{Csr, RunLength};
use escalate_sparse::{SparseMap, TwoLevelSparseMap};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Registry entry for the §4.2.1 encoding-size sweep.
pub struct EncodingSweep;

impl Experiment for EncodingSweep {
    fn name(&self) -> &'static str {
        "encoding_sweep"
    }

    fn paper_anchor(&self) -> &'static str {
        "§4.2.1"
    }

    fn summary(&self) -> &'static str {
        "SparseMap vs 2-level vs CSR vs RLE storage across sparsity"
    }

    fn run(&self, _ctx: &ExpContext) -> Result<Table, ExpError> {
        let n = 64 * 1024;
        let mut rng = StdRng::seed_from_u64(7);
        let mut t = Table::new(self.name(), self.paper_anchor());
        tline!(
            t,
            "Storage (bits per position) of a {n}-element ternary vector"
        );
        tline!(t);
        tline!(
            t,
            "{:>9} {:>10} {:>10} {:>10} {:>10}",
            "sparsity",
            "SparseMap",
            "2-level",
            "CSR",
            "RLE(4b)"
        );
        for sparsity in [0.5, 0.8, 0.9, 0.95, 0.97, 0.99, 0.995, 0.999] {
            let dense: Vec<f32> = (0..n)
                .map(|_| {
                    if rng.gen_bool(sparsity) {
                        0.0
                    } else if rng.gen_bool(0.5) {
                        1.0
                    } else {
                        -1.0
                    }
                })
                .collect();
            // Ternary nonzeros cost 1 bit (the sign); CSR/RLE store 2-bit
            // values since they lack the per-filter scale split.
            let sm = SparseMap::encode(&dense).size_bits(1) as f64 / n as f64;
            let two = TwoLevelSparseMap::encode(&dense).size_bits(1) as f64 / n as f64;
            let csr = Csr::encode(1, n, &dense).size_bits(2) as f64 / n as f64;
            let rle = RunLength::encode(&dense, 4).size_bits(2) as f64 / n as f64;
            tline!(
                t,
                "{:>8.1}% {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
                sparsity * 100.0,
                sm,
                two,
                csr,
                rle
            );
            t.push_record(Record::new([
                ("sparsity_pct", (sparsity * 100.0).into()),
                ("sparsemap_bits", sm.into()),
                ("two_level_bits", two.into()),
                ("csr_bits", csr.into()),
                ("rle4_bits", Cell::from(rle)),
            ]));
        }
        tline!(t);
        tline!(
            t,
            "Expected shape: SparseMap beats index-based encodings at moderate sparsity"
        );
        tline!(
            t,
            "(a ternary value is cheaper than its index); the 2-level variant wins past"
        );
        tline!(t, "~97% sparsity by eliding all-zero 16-bit chunks.");
        Ok(t)
    }
}
