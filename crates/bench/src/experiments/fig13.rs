//! **Figure 13**: MAC idle-cycle fraction and coefficient sparsity per
//! layer of MobileNet (ImageNet).

use super::{Cell, ExpContext, ExpError, Experiment, Record, Table};
use crate::{bar, compress_cached, tline};
use escalate_core::pipeline::CompressionConfig;
use escalate_models::ModelProfile;
use escalate_sim::{simulate_model, Workload};

/// Registry entry for Figure 13.
pub struct Fig13;

impl Experiment for Fig13 {
    fn name(&self) -> &'static str {
        "fig13"
    }

    fn paper_anchor(&self) -> &'static str {
        "Figure 13"
    }

    fn summary(&self) -> &'static str {
        "MAC idle cycles vs coefficient sparsity per MobileNet layer"
    }

    fn run(&self, ctx: &ExpContext) -> Result<Table, ExpError> {
        let cfg = &ctx.sim;
        let profile = ModelProfile::for_model("MobileNet").expect("known model");
        let artifacts = compress_cached(&profile, &CompressionConfig::default())?;
        let workload = Workload::from_artifacts("MobileNet", &artifacts, &profile);
        let stats = simulate_model(&workload, cfg, 0);

        let mut t = Table::new(self.name(), self.paper_anchor());
        tline!(
            t,
            "Figure 13: MAC idle cycles and coefficient sparsity per MobileNet layer"
        );
        tline!(t);
        tline!(t, "{:<16} {:>8} {:>8}  idle", "Layer", "spar%", "idle%");
        for (a, l) in artifacts.iter().zip(&stats.layers) {
            let spar = a.stats.coeff_sparsity() * 100.0;
            let idle = l.mac_idle_fraction() * 100.0;
            tline!(
                t,
                "{:<16} {:>7.1}% {:>7.1}%  |{}",
                l.name,
                spar,
                idle,
                bar(idle, 100.0, 30)
            );
            t.push_record(Record::new([
                ("layer", Cell::from(l.name.clone())),
                ("sparsity_pct", spar.into()),
                ("idle_pct", idle.into()),
            ]));
        }
        let total_idle: u64 = stats.layers.iter().map(|l| l.mac_idle_cycles).sum();
        let total_slots: u64 = stats.layers.iter().map(|l| l.mac_cycle_slots).sum();
        tline!(t);
        tline!(
            t,
            "overall idle fraction: {:.1}%",
            100.0 * total_idle as f64 / total_slots.max(1) as f64
        );
        tline!(t);
        tline!(
            t,
            "Expected shape (paper): denser coefficient slices make the CA the"
        );
        tline!(
            t,
            "bottleneck, so idle MACs track (1 - sparsity); ImageNet's moderate"
        );
        tline!(
            t,
            "sparsity leaves substantial idle fractions, unlike the CIFAR models."
        );
        Ok(t)
    }
}
