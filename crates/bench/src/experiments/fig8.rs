//! **Figure 8**: normalized speedup and energy efficiency (over Eyeriss)
//! of ESCALATE, SCNN and SparTen on all six models.

use super::{Cell, ExpContext, ExpError, Experiment, Record, Table};
use crate::{geomean, ratio, run_model, tline};
use escalate_models::ModelProfile;

/// Registry entry for Figure 8.
pub struct Fig8;

impl Experiment for Fig8 {
    fn name(&self) -> &'static str {
        "fig8"
    }

    fn paper_anchor(&self) -> &'static str {
        "Figure 8"
    }

    fn summary(&self) -> &'static str {
        "speedup and energy efficiency over Eyeriss, all six models"
    }

    fn run(&self, ctx: &ExpContext) -> Result<Table, ExpError> {
        let mut speedups = Vec::new();
        let mut effs = Vec::new();

        let mut t = Table::new(self.name(), self.paper_anchor());
        tline!(
            t,
            "Figure 8: normalized speedup / energy efficiency over Eyeriss"
        );
        tline!(t);
        tline!(
            t,
            "{:<12} | {:>9} {:>9} {:>9} | {:>9} {:>9} {:>9}",
            "Model",
            "SCNN",
            "SparTen",
            "ESCALATE",
            "SCNN",
            "SparTen",
            "ESCALATE"
        );
        tline!(
            t,
            "{:<12} | {:^29} | {:^29}",
            "",
            "speedup",
            "energy efficiency"
        );
        tline!(t, "{}", "-".repeat(78));
        for profile in ModelProfile::all() {
            let run = run_model(&profile, &ctx.sim, ctx.seeds)?;
            let s = [
                run.speedup_over_eyeriss(&run.scnn),
                run.speedup_over_eyeriss(&run.sparten),
                run.speedup_over_eyeriss(&run.escalate),
            ];
            let e = [
                run.efficiency_over_eyeriss(&run.scnn),
                run.efficiency_over_eyeriss(&run.sparten),
                run.efficiency_over_eyeriss(&run.escalate),
            ];
            tline!(
                t,
                "{:<12} | {:>9} {:>9} {:>9} | {:>9} {:>9} {:>9}",
                profile.name,
                ratio(s[0]),
                ratio(s[1]),
                ratio(s[2]),
                ratio(e[0]),
                ratio(e[1]),
                ratio(e[2]),
            );
            t.push_record(Record::new([
                ("model", Cell::from(profile.name)),
                ("speedup_scnn", s[0].into()),
                ("speedup_sparten", s[1].into()),
                ("speedup_escalate", s[2].into()),
                ("efficiency_scnn", e[0].into()),
                ("efficiency_sparten", e[1].into()),
                ("efficiency_escalate", e[2].into()),
            ]));
            speedups.push(s);
            effs.push(e);
        }
        tline!(t, "{}", "-".repeat(78));
        let column = |i: usize, v: &[[f64; 3]]| -> f64 {
            geomean(&v.iter().map(|r| r[i]).collect::<Vec<f64>>())
        };
        tline!(
            t,
            "{:<12} | {:>9} {:>9} {:>9} | {:>9} {:>9} {:>9}",
            "geomean",
            ratio(column(0, &speedups)),
            ratio(column(1, &speedups)),
            ratio(column(2, &speedups)),
            ratio(column(0, &effs)),
            ratio(column(1, &effs)),
            ratio(column(2, &effs)),
        );
        t.push_record(Record::new([
            ("model", Cell::from("geomean")),
            ("speedup_scnn", column(0, &speedups).into()),
            ("speedup_sparten", column(1, &speedups).into()),
            ("speedup_escalate", column(2, &speedups).into()),
            ("efficiency_scnn", column(0, &effs).into()),
            ("efficiency_sparten", column(1, &effs).into()),
            ("efficiency_escalate", column(2, &effs).into()),
        ]));
        tline!(t);
        tline!(
            t,
            "Paper reference (means): ESCALATE speedup 17.9x over Eyeriss, 3.5x over SCNN,"
        );
        tline!(
            t,
            "2.16x over SparTen; energy efficiency 8.3x over Eyeriss, 5.19x over SCNN,"
        );
        tline!(t, "3.78x over SparTen.");
        Ok(t)
    }
}
