//! **Figure 9**: DRAM accesses of the baseline accelerators normalized to
//! ESCALATE, on all six models.

use super::{Cell, ExpContext, ExpError, Experiment, Record, Table};
use crate::{bar, geomean, run_model, tline};
use escalate_models::ModelProfile;

/// Registry entry for Figure 9.
pub struct Fig9;

impl Experiment for Fig9 {
    fn name(&self) -> &'static str {
        "fig9"
    }

    fn paper_anchor(&self) -> &'static str {
        "Figure 9"
    }

    fn summary(&self) -> &'static str {
        "DRAM accesses normalized to ESCALATE, all six models"
    }

    fn run(&self, ctx: &ExpContext) -> Result<Table, ExpError> {
        let mut t = Table::new(self.name(), self.paper_anchor());
        tline!(
            t,
            "Figure 9: DRAM accesses normalized to ESCALATE (higher = more traffic)"
        );
        tline!(t);
        tline!(
            t,
            "{:<12} {:>9} {:>9} {:>9} {:>10}",
            "Model",
            "Eyeriss",
            "SCNN",
            "SparTen",
            "ESCALATE"
        );
        let mut ratios = Vec::new();
        for profile in ModelProfile::all() {
            let run = run_model(&profile, &ctx.sim, ctx.seeds)?;
            let r = [
                run.dram_vs_escalate(&run.eyeriss),
                run.dram_vs_escalate(&run.scnn),
                run.dram_vs_escalate(&run.sparten),
            ];
            tline!(
                t,
                "{:<12} {:>8.2}x {:>8.2}x {:>8.2}x {:>9.2}x   |{}",
                profile.name,
                r[0],
                r[1],
                r[2],
                1.0,
                bar(r[0], 40.0, 30)
            );
            t.push_record(Record::new([
                ("model", Cell::from(profile.name)),
                ("dram_eyeriss_x", r[0].into()),
                ("dram_scnn_x", r[1].into()),
                ("dram_sparten_x", r[2].into()),
            ]));
            ratios.push(r);
        }
        let col = |i: usize| -> f64 { geomean(&ratios.iter().map(|r| r[i]).collect::<Vec<f64>>()) };
        tline!(t, "{}", "-".repeat(60));
        tline!(
            t,
            "{:<12} {:>8.2}x {:>8.2}x {:>8.2}x",
            "geomean",
            col(0),
            col(1),
            col(2)
        );
        t.push_record(Record::new([
            ("model", Cell::from("geomean")),
            ("dram_eyeriss_x", col(0).into()),
            ("dram_scnn_x", col(1).into()),
            ("dram_sparten_x", col(2).into()),
        ]));
        tline!(t);
        tline!(
            t,
            "Paper reference (means): Eyeriss 18.1x, SCNN 5.3x, SparTen 9.4x the DRAM"
        );
        tline!(
            t,
            "accesses of ESCALATE; CIFAR models show the big reductions, ImageNet"
        );
        tline!(t, "models are similar or favor the baselines.");
        Ok(t)
    }
}
