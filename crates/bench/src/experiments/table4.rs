//! **Table 4** (power and area of one PE block, TSMC 65 nm) from the
//! synthesis-derived component model, together with the Table 2
//! configuration the numbers correspond to and the whole-chip estimate.

use super::{Cell, ExpContext, ExpError, Experiment, Record, Table};
use crate::tline;
use escalate_energy::area::{PeBlockArea, COMPONENTS, TOTAL_AREA_MM2, TOTAL_POWER_MW};

/// Registry entry for Table 4 (and the Table 2 configuration recap).
pub struct Table4;

impl Experiment for Table4 {
    fn name(&self) -> &'static str {
        "table4"
    }

    fn paper_anchor(&self) -> &'static str {
        "Table 4"
    }

    fn summary(&self) -> &'static str {
        "PE-block power/area model (65 nm) and the whole-chip estimate"
    }

    fn run(&self, ctx: &ExpContext) -> Result<Table, ExpError> {
        let cfg = &ctx.sim;
        let mut t = Table::new(self.name(), self.paper_anchor());
        tline!(t, "Table 2: ESCALATE configuration");
        tline!(t, "  M = {}   N_PE = {}   l = {}", cfg.m, cfg.n_pe, cfg.l);
        tline!(
            t,
            "  input bus {} B, precision {} bit, buffers: input {} KB, coef {} B, output {} KB, psum {} KB, act {} B",
            cfg.input_bus_bytes,
            cfg.precision_bits,
            cfg.input_buf_bytes / 1024,
            cfg.coef_buf_bytes,
            cfg.output_buf_bytes / 1024,
            cfg.psum_buf_bytes / 1024,
            cfg.act_buf_bytes,
        );
        tline!(
            t,
            "  {} multipliers total, {} MHz",
            cfg.total_macs(),
            cfg.frequency_mhz
        );
        tline!(t);
        tline!(
            t,
            "Table 4: power and area estimation of one PE block (65 nm)"
        );
        tline!(t);
        tline!(
            t,
            "{:<20} {:>10} {:>10}",
            "Component",
            "Area(mm2)",
            "Power(mW)"
        );
        for c in COMPONENTS {
            tline!(
                t,
                "{:<20} {:>10.4} {:>10.2}",
                c.name,
                c.area_mm2,
                c.power_mw
            );
            t.push_record(Record::new([
                ("component", Cell::from(c.name)),
                ("area_mm2", c.area_mm2.into()),
                ("power_mw", c.power_mw.into()),
            ]));
        }
        let total = PeBlockArea::from_components();
        tline!(
            t,
            "{:<20} {:>10.4} {:>10.2}",
            "Total",
            total.area_mm2,
            total.power_mw
        );
        if (total.area_mm2 - TOTAL_AREA_MM2).abs() >= 1e-3
            || (total.power_mw - TOTAL_POWER_MW).abs() >= 1e-2
        {
            return Err(ExpError::Msg(
                "component totals diverged from the published Table 4 totals".into(),
            ));
        }
        tline!(t);
        let chip = PeBlockArea::chip(cfg.n_pe);
        tline!(
            t,
            "Whole accelerator ({} blocks): {:.2} mm2, {:.2} W",
            cfg.n_pe,
            chip.area_mm2,
            chip.power_mw / 1000.0
        );
        t.push_record(Record::new([
            ("component", Cell::from("chip")),
            ("area_mm2", chip.area_mm2.into()),
            ("power_mw", chip.power_mw.into()),
        ]));
        Ok(t)
    }
}
