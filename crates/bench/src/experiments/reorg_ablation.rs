//! Ablation: Eq. (2) vs Eq. (3) computation order (paper §3.1).
//!
//! Measures, per ResNet18 layer shape, the intermediate-feature-map
//! footprint and the wall-clock of the two orders of decomposed
//! convolution. The reorganization (Eq. 3) is the ESCALATE algorithm's
//! first contribution: it shrinks the intermediate state from `C·M`
//! output-sized maps to `M` input-sized maps.
//!
//! Prints wall-clock columns, so this experiment is **not** golden-checked
//! (`Experiment::golden` is `false`).

use super::{Cell, ExpContext, ExpError, Experiment, Record, Table};
use crate::tline;
use escalate_core::decompose;
use escalate_core::reorg::{forward_eq2, forward_eq3, intermediate_footprint};
use escalate_models::{synth, ModelProfile};
use std::time::Instant;

/// Registry entry for the Eq.(2)-vs-Eq.(3) reorganization ablation.
pub struct ReorgAblation;

impl Experiment for ReorgAblation {
    fn name(&self) -> &'static str {
        "reorg_ablation"
    }

    fn paper_anchor(&self) -> &'static str {
        "§3.1"
    }

    fn summary(&self) -> &'static str {
        "Eq.(2) vs Eq.(3) intermediate footprint and forward time"
    }

    fn golden(&self) -> bool {
        false // wall-clock columns are not reproducible
    }

    fn run(&self, _ctx: &ExpContext) -> Result<Table, ExpError> {
        let profile = ModelProfile::for_model("ResNet18").expect("known model");
        let mut t = Table::new(self.name(), self.paper_anchor());
        tline!(
            t,
            "Eq.(2) vs Eq.(3): intermediate footprint (elements) and forward time"
        );
        tline!(t);
        tline!(
            t,
            "{:<20} {:>5} {:>5} {:>12} {:>12} {:>9} {:>9} {:>8}",
            "Layer",
            "C",
            "K",
            "inter eq2",
            "inter eq3",
            "eq2(ms)",
            "eq3(ms)",
            "agree"
        );
        // Scale the spatial size down so the dense reference runs quickly; the
        // footprint ratio C·M/M is spatial-size independent.
        for (i, layer) in profile
            .model()
            .conv_layers()
            .filter(|l| l.is_decomposable())
            .take(9)
            .enumerate()
        {
            let mut l = layer.clone();
            l.x = l.x.min(16);
            l.y = l.y.min(16);
            let w = synth::weights(&l, 6, 0.05, synth::layer_seed(7, i, 0));
            let d = decompose(&w, 6.min(l.r * l.s))?;
            let input = synth::activations(&l, 0.5, i as u64);

            let t2 = Instant::now();
            let (o2, i2) = forward_eq2(&d, &input, l.stride, l.pad);
            let t2 = t2.elapsed();
            let t3 = Instant::now();
            let (o3, i3) = forward_eq3(&d, &input, l.stride, l.pad);
            let t3 = t3.elapsed();
            let (f2, f3) = intermediate_footprint(&d, l.x, l.y, l.stride, l.pad);
            if (i2, i3) != (f2, f3) {
                return Err(ExpError::Msg(format!(
                    "{}: footprint helper ({f2}, {f3}) disagrees with execution ({i2}, {i3})",
                    l.name
                )));
            }

            let agree = o2.all_close(&o3, 1e-2);
            tline!(
                t,
                "{:<20} {:>5} {:>5} {:>12} {:>12} {:>9.2} {:>9.2} {:>8}",
                l.name,
                l.c,
                l.k,
                i2,
                i3,
                t2.as_secs_f64() * 1e3,
                t3.as_secs_f64() * 1e3,
                if agree { "yes" } else { "NO" },
            );
            t.push_record(Record::new([
                ("layer", Cell::from(l.name.clone())),
                ("c", Cell::from(l.c)),
                ("k", Cell::from(l.k)),
                ("intermediate_eq2", Cell::from(i2)),
                ("intermediate_eq3", Cell::from(i3)),
                ("eq2_ms", (t2.as_secs_f64() * 1e3).into()),
                ("eq3_ms", (t3.as_secs_f64() * 1e3).into()),
                ("outputs_agree", agree.into()),
            ]));
        }
        tline!(t);
        tline!(
            t,
            "Eq.(3) holds only M maps live (vs C·M), enabling stream processing; both"
        );
        tline!(
            t,
            "orders produce identical outputs (distributivity of convolution)."
        );
        Ok(t)
    }
}
