//! **Figure 10**: the inference energy breakdown of ESCALATE on all six
//! models (DRAM, input buffer, MAC rows, dilution, concentration,
//! activation staging, coefficient+psum buffers). The output buffer is
//! omitted, as in the paper, because its share is negligible.

use super::{Cell, ExpContext, ExpError, Experiment, Record, Table};
use crate::{run_model, tline};
use escalate_models::ModelProfile;

/// Registry entry for Figure 10.
pub struct Fig10;

impl Experiment for Fig10 {
    fn name(&self) -> &'static str {
        "fig10"
    }

    fn paper_anchor(&self) -> &'static str {
        "Figure 10"
    }

    fn summary(&self) -> &'static str {
        "ESCALATE inference energy breakdown per model"
    }

    fn run(&self, ctx: &ExpContext) -> Result<Table, ExpError> {
        let mut t = Table::new(self.name(), self.paper_anchor());
        tline!(
            t,
            "Figure 10: ESCALATE inference energy breakdown (% of total)"
        );
        tline!(t);
        tline!(
            t,
            "{:<12} {:>9} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7} {:>10}",
            "Model",
            "DRAM",
            "InBuf",
            "MAC",
            "Dilut",
            "Concen",
            "ActBuf",
            "Cf+Ps",
            "total(uJ)"
        );
        for profile in ModelProfile::all() {
            let run = run_model(&profile, &ctx.sim, ctx.seeds)?;
            let e = &run.escalate.energy;
            let total = e.total_pj();
            let pct = |v: f64| 100.0 * v / total;
            tline!(
                t,
                "{:<12} {:>8.1}% {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}% {:>6.1}% {:>10.1}",
                profile.name,
                pct(e.dram_pj),
                pct(e.input_buf_pj),
                pct(e.mac_pj),
                pct(e.dilution_pj),
                pct(e.concentration_pj),
                pct(e.act_buf_pj),
                pct(e.coef_psum_pj),
                total * 1e-6,
            );
            t.push_record(Record::new([
                ("model", Cell::from(profile.name)),
                ("dram_pct", pct(e.dram_pj).into()),
                ("input_buf_pct", pct(e.input_buf_pj).into()),
                ("mac_pct", pct(e.mac_pj).into()),
                ("dilution_pct", pct(e.dilution_pj).into()),
                ("concentration_pct", pct(e.concentration_pj).into()),
                ("act_buf_pct", pct(e.act_buf_pj).into()),
                ("coef_psum_pct", pct(e.coef_psum_pj).into()),
                ("total_uj", (total * 1e-6).into()),
            ]));
        }
        tline!(t);
        tline!(
            t,
            "Expected shape (paper): psum/coef buffers dominate buffer energy on shallow"
        );
        tline!(
            t,
            "models (VGG16, ResNet18) via dense read-modify-write; input reads dominate"
        );
        tline!(
            t,
            "on deep 1x1-heavy models (ResNet152, MobileNetV2); DRAM weight traffic is"
        );
        tline!(t, "nearly eliminated on CIFAR models.");
        Ok(t)
    }
}
