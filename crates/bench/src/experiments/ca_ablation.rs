//! Ablation: concentration look-ahead / look-aside windows (paper §4.2.3,
//! Figure 6).
//!
//! Sweeps the look-ahead depth and look-aside width of the concentration
//! buffer on synthetic diluted streams at several match densities, and
//! reports the adder-tree occupancy (fraction of useful input slots) and
//! the cycle overhead versus perfect packing.

use super::{Cell, ExpContext, ExpError, Experiment, Record, Table};
use crate::tline;
use escalate_sparse::ConcentrationBuffer;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Registry entry for the §4.2.3 concentration-window ablation.
pub struct CaAblation;

impl Experiment for CaAblation {
    fn name(&self) -> &'static str {
        "ca_ablation"
    }

    fn paper_anchor(&self) -> &'static str {
        "§4.2.3 / Figure 6"
    }

    fn summary(&self) -> &'static str {
        "concentration look-ahead/look-aside sweep vs perfect packing"
    }

    fn run(&self, _ctx: &ExpContext) -> Result<Table, ExpError> {
        let width = 16;
        let stream_len = 16 * 1024;
        let mut t = Table::new(self.name(), self.paper_anchor());
        tline!(
            t,
            "Concentration ablation: adder-tree width {width}, {stream_len}-slot streams"
        );
        tline!(t);
        tline!(
            t,
            "{:>9} {:>6} {:>6} {:>12} {:>12} {:>11}",
            "density",
            "ahead",
            "aside",
            "rows drained",
            "vs perfect",
            "occupancy"
        );
        for density in [0.05f64, 0.1, 0.3, 0.5] {
            let mut rng = StdRng::seed_from_u64(9);
            let slots: Vec<Option<f32>> = (0..stream_len)
                .map(|i| {
                    if rng.gen_bool(density) {
                        Some(i as f32)
                    } else {
                        None
                    }
                })
                .collect();
            let survivors = slots.iter().flatten().count();
            let perfect = survivors.div_ceil(width);
            for (ahead, aside) in [(0usize, 0usize), (1, 0), (4, 0), (4, 1), (8, 2)] {
                let mut buf = ConcentrationBuffer::new(width, ahead, aside);
                buf.push_slots(&slots);
                let (_, stats) = buf.drain_sum();
                tline!(
                    t,
                    "{:>8.0}% {:>6} {:>6} {:>12} {:>11.2}x {:>10.1}%",
                    density * 100.0,
                    ahead,
                    aside,
                    stats.rows_drained,
                    stats.rows_drained as f64 / perfect as f64,
                    100.0 * stats.occupancy(width),
                );
                t.push_record(Record::new([
                    ("density_pct", (density * 100.0).into()),
                    ("look_ahead", Cell::from(ahead)),
                    ("look_aside", Cell::from(aside)),
                    ("rows_drained", Cell::from(stats.rows_drained)),
                    (
                        "vs_perfect_x",
                        (stats.rows_drained as f64 / perfect as f64).into(),
                    ),
                    ("occupancy_pct", (100.0 * stats.occupancy(width)).into()),
                ]));
            }
            tline!(t);
        }
        tline!(
            t,
            "Without look-ahead the tree drains mostly-empty rows (occupancy = match"
        );
        tline!(
            t,
            "density); a deep look-ahead window approaches perfect packing, and"
        );
        tline!(t, "look-aside mops up the residual column imbalance.");
        Ok(t)
    }
}
